// Seed-matrix driver for the consistency harness: runs N seeded nemesis
// scenarios against the simulated cluster, checks every recorded history for
// linearizability and session guarantees, and on the first violation shrinks
// the fault script to a minimal reproducer. Exit 0 = all seeds clean,
// exit 1 = violation found (reproducer printed), exit 2 = bad usage.
//
//   nemesis_matrix [--seeds N] [--base-seed S] [--rounds R] [--bug]
//
// --bug re-introduces the migration lost-update bug (copy chunks overwrite
// forwarded keys); used by CI to prove the matrix actually catches it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/check/nemesis.h"

namespace {

bool ParseU64(const char* s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  kvd::NemesisOptions options;
  options.num_seeds = 32;
  bool inject_bug = false;

  for (int i = 1; i < argc; i++) {
    uint64_t v = 0;
    if (std::strcmp(argv[i], "--bug") == 0) {
      inject_bug = true;
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc &&
               ParseU64(argv[++i], &v)) {
      options.num_seeds = static_cast<uint32_t>(v);
    } else if (std::strcmp(argv[i], "--base-seed") == 0 && i + 1 < argc &&
               ParseU64(argv[++i], &v)) {
      options.base_seed = v;
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc &&
               ParseU64(argv[++i], &v)) {
      options.scenario.rounds = static_cast<uint32_t>(v);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--base-seed S] [--rounds R] "
                   "[--bug]\n",
                   argv[0]);
      return 2;
    }
  }
  options.scenario.inject_lost_update_bug = inject_bug;

  std::printf("nemesis matrix: %u seeds from %llu, %u rounds/scenario%s\n",
              options.num_seeds,
              static_cast<unsigned long long>(options.base_seed),
              options.scenario.rounds, inject_bug ? " [BUG INJECTED]" : "");
  const kvd::NemesisResult result = kvd::RunSeedMatrix(options);
  std::printf("%s\n", result.ToString().c_str());
  return result.ok ? 0 : 1;
}
