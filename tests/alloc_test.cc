// Tests for the slab allocator stack: bitmap, mergers, host daemon,
// NIC-side allocator (paper §3.3.2, §4, Figures 8 and 12).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "src/alloc/allocation_bitmap.h"
#include "src/alloc/dstack.h"
#include "src/alloc/host_daemon.h"
#include "src/alloc/merger.h"
#include "src/alloc/slab_allocator.h"
#include "src/mem/host_memory.h"
#include "src/common/random.h"
#include "src/common/units.h"

namespace kvd {
namespace {

SlabConfig SmallConfig() {
  SlabConfig config;
  config.region_base = 0;
  config.region_size = 64 * kKiB;
  config.min_slab_bytes = 32;
  config.max_slab_bytes = 512;
  config.nic_stack_capacity = 32;
  config.sync_batch = 8;
  config.low_watermark = 2;
  config.high_watermark = 28;
  return config;
}

TEST(SlabConfigTest, ClassMath) {
  SlabConfig config = SmallConfig();
  EXPECT_EQ(config.NumClasses(), 5);
  EXPECT_EQ(config.ClassBytes(0), 32u);
  EXPECT_EQ(config.ClassBytes(4), 512u);
  EXPECT_EQ(config.ClassFor(1), 0);
  EXPECT_EQ(config.ClassFor(32), 0);
  EXPECT_EQ(config.ClassFor(33), 1);
  EXPECT_EQ(config.ClassFor(64), 1);
  EXPECT_EQ(config.ClassFor(100), 2);
  EXPECT_EQ(config.ClassFor(512), 4);
}

TEST(AllocationBitmapTest, MarkAndQuery) {
  AllocationBitmap bitmap(1024, 32);
  EXPECT_TRUE(bitmap.IsFree(0, 1024));
  bitmap.MarkAllocated(64, 128);
  EXPECT_TRUE(bitmap.IsAllocated(64, 128));
  EXPECT_FALSE(bitmap.IsFree(64, 32));
  EXPECT_TRUE(bitmap.IsFree(0, 64));
  EXPECT_TRUE(bitmap.IsFree(192, 832));
  EXPECT_EQ(bitmap.allocated_granules(), 4u);
  bitmap.MarkFree(64, 128);
  EXPECT_TRUE(bitmap.IsFree(0, 1024));
}

TEST(AllocationBitmapTest, DoubleAllocationAborts) {
  AllocationBitmap bitmap(1024, 32);
  bitmap.MarkAllocated(0, 32);
  EXPECT_DEATH(bitmap.MarkAllocated(0, 32), "double allocation");
}

TEST(AllocationBitmapTest, DoubleFreeAborts) {
  AllocationBitmap bitmap(1024, 32);
  EXPECT_DEATH(bitmap.MarkFree(0, 32), "double free");
}

class MergerParamTest : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<Merger> MakeMerger(uint64_t region_size) {
    if (GetParam()) {
      return std::make_unique<BitmapMerger>(region_size);
    }
    return std::make_unique<RadixSortMerger>(2);
  }
};

TEST_P(MergerParamTest, MergesBuddyPairs) {
  auto merger = MakeMerger(1024);
  // 0+32 are buddies; 64 alone; 128+160 buddies; 96 is the *upper* buddy of
  // 64 but 64's pair (64,96) is aligned so they merge too.
  const std::vector<uint64_t> free_offsets = {0, 32, 128, 160, 64, 96, 224};
  MergeResult result = merger->Merge(free_offsets, 32);
  std::sort(result.merged.begin(), result.merged.end());
  EXPECT_EQ(result.merged, (std::vector<uint64_t>{0, 64, 128}));
  EXPECT_EQ(result.unmerged, (std::vector<uint64_t>{224}));
}

TEST_P(MergerParamTest, MisalignedNeighborsDoNotMerge) {
  auto merger = MakeMerger(1024);
  // 32 and 64 are adjacent but (32, 64) is not an aligned buddy pair.
  MergeResult result = merger->Merge(std::vector<uint64_t>{32, 64}, 32);
  EXPECT_TRUE(result.merged.empty());
  EXPECT_EQ(result.unmerged.size(), 2u);
}

TEST_P(MergerParamTest, EmptyInput) {
  auto merger = MakeMerger(1024);
  MergeResult result = merger->Merge(std::vector<uint64_t>{}, 32);
  EXPECT_TRUE(result.merged.empty());
  EXPECT_TRUE(result.unmerged.empty());
}

TEST_P(MergerParamTest, RandomizedConservation) {
  auto merger = MakeMerger(1 * kMiB);
  Rng rng(77);
  // Random subset of 32 B slots.
  std::set<uint64_t> offsets;
  while (offsets.size() < 5000) {
    offsets.insert(rng.NextBelow(1 * kMiB / 32) * 32);
  }
  std::vector<uint64_t> input(offsets.begin(), offsets.end());
  // Shuffle to exercise the sort.
  for (size_t i = input.size() - 1; i > 0; i--) {
    std::swap(input[i], input[rng.NextBelow(i + 1)]);
  }
  MergeResult result = merger->Merge(input, 32);
  // Conservation: every input offset appears exactly once, either as an
  // unmerged slab or as half of a merged pair.
  std::set<uint64_t> reconstructed(result.unmerged.begin(), result.unmerged.end());
  for (uint64_t merged : result.merged) {
    EXPECT_EQ(merged % 64, 0u);
    EXPECT_TRUE(reconstructed.insert(merged).second);
    EXPECT_TRUE(reconstructed.insert(merged + 32).second);
  }
  EXPECT_EQ(reconstructed, offsets);
}

INSTANTIATE_TEST_SUITE_P(BitmapAndRadix, MergerParamTest, ::testing::Bool(),
                         [](const auto& param_info) {
                           return param_info.param ? "Bitmap" : "RadixSort";
                         });

TEST(RadixSortTest, SortsRandomValues) {
  Rng rng(5);
  std::vector<uint64_t> values;
  for (int i = 0; i < 10000; i++) {
    values.push_back(rng.Next());
  }
  std::vector<uint64_t> expected = values;
  std::sort(expected.begin(), expected.end());
  RadixSortMerger::ParallelRadixSort(values, 4);
  EXPECT_EQ(values, expected);
}

TEST(RadixSortTest, ThreadCountsAgree) {
  Rng rng(6);
  std::vector<uint64_t> base;
  for (int i = 0; i < 5000; i++) {
    base.push_back(rng.NextBelow(1 << 20));
  }
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    std::vector<uint64_t> values = base;
    RadixSortMerger::ParallelRadixSort(values, threads);
    EXPECT_TRUE(std::is_sorted(values.begin(), values.end())) << threads;
  }
}

// --- DequeStack: the Figure 8 double-ended stack in real memory ---

TEST(DequeStackTest, LeftAndRightEndsOperateIndependently) {
  HostMemory memory(DequeStack::BytesFor(8));
  DequeStack stack(memory, 0, 8);
  EXPECT_TRUE(stack.empty());
  // Host side fills from the right.
  for (uint64_t v = 1; v <= 4; v++) {
    EXPECT_TRUE(stack.PushRight(v * 100));
  }
  EXPECT_EQ(stack.size(), 4u);
  // NIC side pops from the left: oldest host pushes come out first.
  uint64_t out = 0;
  EXPECT_TRUE(stack.PopLeft(&out));
  EXPECT_EQ(out, 100u);
  EXPECT_TRUE(stack.PopLeft(&out));
  EXPECT_EQ(out, 200u);
  // NIC returns an entry to the left end; it is the next left pop.
  EXPECT_TRUE(stack.PushLeft(42));
  EXPECT_TRUE(stack.PopLeft(&out));
  EXPECT_EQ(out, 42u);
  // Host side pops from the right: most recent right push first.
  EXPECT_TRUE(stack.PopRight(&out));
  EXPECT_EQ(out, 400u);
}

TEST(DequeStackTest, CapacityBoundsRespected) {
  HostMemory memory(DequeStack::BytesFor(4));
  DequeStack stack(memory, 0, 4);
  for (uint64_t v = 0; v < 4; v++) {
    EXPECT_TRUE(stack.PushRight(v));
  }
  EXPECT_FALSE(stack.PushRight(99));
  EXPECT_FALSE(stack.PushLeft(99));
  uint64_t out = 0;
  for (int i = 0; i < 4; i++) {
    EXPECT_TRUE(stack.PopRight(&out));
  }
  EXPECT_FALSE(stack.PopRight(&out));
  EXPECT_FALSE(stack.PopLeft(&out));
}

TEST(DequeStackTest, RingWrapsAcrossManyCycles) {
  HostMemory memory(DequeStack::BytesFor(8));
  DequeStack stack(memory, 0, 8);
  // Long alternating traffic forces the virtual indices far past capacity.
  uint64_t next_in = 0;
  uint64_t next_out = 0;
  for (int round = 0; round < 1000; round++) {
    EXPECT_TRUE(stack.PushRight(next_in++));
    EXPECT_TRUE(stack.PushRight(next_in++));
    uint64_t out = 0;
    EXPECT_TRUE(stack.PopLeft(&out));
    EXPECT_EQ(out, next_out++);
    EXPECT_TRUE(stack.PopLeft(&out));
    EXPECT_EQ(out, next_out++);
  }
  EXPECT_TRUE(stack.empty());
}

TEST(DequeStackTest, BatchedFormsMoveUpToCount) {
  HostMemory memory(DequeStack::BytesFor(16));
  DequeStack stack(memory, 0, 16);
  const std::vector<uint64_t> in = {1, 2, 3, 4, 5};
  EXPECT_EQ(stack.PushLeftBatch(in), 5u);
  std::vector<uint64_t> out(8, 0);
  EXPECT_EQ(stack.PopLeftBatch(out), 5u);  // only five available
}

TEST(DequeStackTest, EntriesLiveInTheBackingMemory) {
  HostMemory memory(DequeStack::BytesFor(4));
  DequeStack stack(memory, 0, 4);
  EXPECT_TRUE(stack.PushRight(0xfeedf00d));
  // The entry is physically in the arena right after the 16-byte header.
  uint64_t raw = 0;
  std::memcpy(&raw, memory.Span(16, 8).data(), 8);
  EXPECT_EQ(raw, 0xfeedf00dull);
}

TEST(HostDaemonTest, StartsWithWholeRegionInTopClass) {
  SlabConfig config = SmallConfig();
  HostDaemon daemon(config);
  EXPECT_EQ(daemon.StackDepth(4), config.region_size / 512);
  EXPECT_EQ(daemon.StackDepth(0), 0u);
  EXPECT_EQ(daemon.FreeBytes(), config.region_size);
}

TEST(HostDaemonTest, PopSplitsLargerSlabs) {
  SlabConfig config = SmallConfig();
  HostDaemon daemon(config);
  uint64_t address = 0;
  EXPECT_EQ(daemon.PopBatch(0, std::span<uint64_t>(&address, 1)), 1u);
  // Splitting one 512 B slab down to 32 B leaves one free slab in each
  // intermediate class.
  EXPECT_EQ(daemon.StackDepth(0), 1u);  // the other 32 B half
  EXPECT_EQ(daemon.StackDepth(1), 1u);
  EXPECT_EQ(daemon.StackDepth(2), 1u);
  EXPECT_EQ(daemon.StackDepth(3), 1u);
  EXPECT_EQ(daemon.stats().splits, 4u);
}

TEST(HostDaemonTest, LazyMergeRebuildsLargeSlabs) {
  SlabConfig config = SmallConfig();
  config.region_size = 1024;  // two 512 B slabs
  HostDaemon daemon(config);
  // Drain everything as 32 B slabs.
  std::vector<uint64_t> slabs(32);
  EXPECT_EQ(daemon.PopBatch(0, slabs), 32u);
  EXPECT_EQ(daemon.StackDepth(4), 0u);
  // Return them all, then ask for a 512 B slab: only merging can satisfy it.
  daemon.PushBatch(0, slabs);
  uint64_t big = 0;
  EXPECT_EQ(daemon.PopBatch(4, std::span<uint64_t>(&big, 1)), 1u);
  EXPECT_GE(daemon.stats().slabs_merged, 15u);
}

TEST(HostDaemonTest, ExhaustionReturnsZero) {
  SlabConfig config = SmallConfig();
  config.region_size = 512;
  HostDaemon daemon(config);
  std::vector<uint64_t> slabs(16);
  EXPECT_EQ(daemon.PopBatch(0, slabs), 16u);  // 512 / 32
  uint64_t extra = 0;
  EXPECT_EQ(daemon.PopBatch(0, std::span<uint64_t>(&extra, 1)), 0u);
}

TEST(SlabAllocatorTest, AllocateFreeRoundTrip) {
  SlabAllocator allocator(SmallConfig());
  Result<uint64_t> a = allocator.Allocate(100);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a % 128, 0u);  // class alignment
  EXPECT_TRUE(allocator.daemon().bitmap().IsAllocated(*a, 128));
  allocator.Free(*a, 100);
  EXPECT_TRUE(allocator.daemon().bitmap().IsFree(*a, 128));
}

TEST(SlabAllocatorTest, RejectsOversizedAndZero) {
  SlabAllocator allocator(SmallConfig());
  EXPECT_FALSE(allocator.Allocate(0).ok());
  EXPECT_FALSE(allocator.Allocate(513).ok());
}

TEST(SlabAllocatorTest, DistinctAddressesUntilExhaustion) {
  SlabConfig config = SmallConfig();
  config.region_size = 4 * kKiB;
  SlabAllocator allocator(config);
  std::set<uint64_t> addresses;
  while (true) {
    Result<uint64_t> r = allocator.Allocate(32);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kOutOfMemory);
      break;
    }
    EXPECT_TRUE(addresses.insert(*r).second) << "duplicate address";
  }
  EXPECT_EQ(addresses.size(), 4 * kKiB / 32);
}

TEST(SlabAllocatorTest, BatchingAmortizesSyncDma) {
  SlabConfig config = SmallConfig();
  config.region_size = 1 * kMiB;
  SlabAllocator allocator(config);
  for (int i = 0; i < 2000; i++) {
    Result<uint64_t> r = allocator.Allocate(32);
    ASSERT_TRUE(r.ok());
  }
  // Paper: < 0.07 DMA per allocation with batched sync.
  EXPECT_LT(allocator.sync_stats().AmortizedDmaPerOp(), 0.2);
  EXPECT_GT(allocator.sync_stats().sync_dma_reads, 0u);
}

TEST(SlabAllocatorTest, ChurnReusesFreedSlabsWithoutDaemonTraffic) {
  SlabConfig config = SmallConfig();
  SlabAllocator allocator(config);
  // Warm up.
  Result<uint64_t> first = allocator.Allocate(64);
  ASSERT_TRUE(first.ok());
  const uint64_t reads_before = allocator.sync_stats().sync_dma_reads;
  // Stable-size churn: free then allocate repeatedly; the NIC stack absorbs
  // everything (paper: stable workloads never trigger split/merge).
  uint64_t address = *first;
  for (int i = 0; i < 1000; i++) {
    allocator.Free(address, 64);
    Result<uint64_t> next = allocator.Allocate(64);
    ASSERT_TRUE(next.ok());
    address = *next;
  }
  EXPECT_EQ(allocator.sync_stats().sync_dma_reads, reads_before);
  EXPECT_EQ(allocator.daemon().stats().merge_passes, 0u);
}

TEST(SlabAllocatorTest, WorkloadShiftTriggersMerge) {
  SlabConfig config = SmallConfig();
  config.region_size = 8 * kKiB;
  config.nic_stack_capacity = 8;
  config.sync_batch = 4;
  config.high_watermark = 6;
  config.low_watermark = 1;
  SlabAllocator allocator(config);
  // Phase 1: fill the region with small KVs.
  std::vector<uint64_t> small;
  while (true) {
    Result<uint64_t> r = allocator.Allocate(32);
    if (!r.ok()) {
      break;
    }
    small.push_back(*r);
  }
  // Phase 2: free everything, then allocate large slabs — merging required.
  for (uint64_t address : small) {
    allocator.Free(address, 32);
  }
  int large_count = 0;
  while (true) {
    Result<uint64_t> r = allocator.Allocate(512);
    if (!r.ok()) {
      break;
    }
    large_count++;
  }
  EXPECT_GE(large_count, 12);  // most of the 16 possible 512 B slabs
  EXPECT_GT(allocator.daemon().stats().slabs_merged, 0u);
}

TEST(SlabAllocatorTest, FreeBytesTracksAllocations) {
  SlabConfig config = SmallConfig();
  SlabAllocator allocator(config);
  const uint64_t initial = allocator.FreeBytes();
  Result<uint64_t> a = allocator.Allocate(200);  // 256 B class
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(allocator.FreeBytes(), initial - 256);
  allocator.Free(*a, 200);
  EXPECT_EQ(allocator.FreeBytes(), initial);
}

}  // namespace
}  // namespace kvd
