// Full-system integration tests: YCSB workloads through the timed pipeline
// and the network path, verified against reference state; consistency under
// hot-key contention; malformed-input robustness; capacity behaviour.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/units.h"
#include "src/core/kv_direct.h"
#include "src/net/wire_format.h"
#include "src/workload/ycsb.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

uint64_t AsU64(const std::vector<uint8_t>& value) {
  uint64_t v = 0;
  std::memcpy(&v, value.data(), std::min<size_t>(8, value.size()));
  return v;
}

ServerConfig IntegrationConfig() {
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  config.inline_threshold_bytes = 24;
  return config;
}

// The timed pipeline must compute exactly what a sequential reference does,
// for any interleaving of admitted operations.
TEST(SystemTest, TimedPipelineMatchesSequentialReference) {
  KvDirectServer server(IntegrationConfig());
  std::map<std::string, std::vector<uint8_t>> reference;
  Rng rng(31);
  int mismatches = 0;
  int outstanding = 0;

  for (int op_index = 0; op_index < 20000; op_index++) {
    const uint64_t id = rng.NextBelow(300);
    const auto key = Key(id);
    const std::string key_str(key.begin(), key.end());
    KvOperation op;
    op.key = key;
    const uint64_t action = rng.NextBelow(10);
    if (action < 4) {
      op.opcode = Opcode::kPut;
      op.value.assign(1 + rng.NextBelow(100), static_cast<uint8_t>(rng.Next()));
      reference[key_str] = op.value;
      outstanding++;
      server.Submit(op, [&](KvResultMessage r) {
        outstanding--;
        if (r.code != ResultCode::kOk) {
          mismatches++;
        }
      });
    } else if (action < 8) {
      op.opcode = Opcode::kGet;
      // Capture the expected value at *submission* time: per-key ordering is
      // admission order, so this GET must observe every earlier same-key PUT.
      const auto it = reference.find(key_str);
      const bool expect_found = it != reference.end();
      const std::vector<uint8_t> expected = expect_found ? it->second
                                                         : std::vector<uint8_t>{};
      outstanding++;
      server.Submit(op, [&, expect_found, expected](KvResultMessage r) {
        outstanding--;
        if (expect_found) {
          if (r.code != ResultCode::kOk || r.value != expected) {
            mismatches++;
          }
        } else if (r.code != ResultCode::kNotFound) {
          mismatches++;
        }
      });
    } else {
      op.opcode = Opcode::kDelete;
      const bool expect_found = reference.erase(key_str) > 0;
      outstanding++;
      server.Submit(op, [&, expect_found](KvResultMessage r) {
        outstanding--;
        const bool found = r.code == ResultCode::kOk;
        if (found != expect_found) {
          mismatches++;
        }
      });
    }
  }
  server.simulator().RunUntilIdle();
  EXPECT_EQ(outstanding, 0);
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(server.index().num_kvs(), reference.size());
}

// Hot-key torture: interleaved PUT/GET/atomics on one key must serialize in
// admission order even though most retire through the fast path.
TEST(SystemTest, HotKeyOrderingUnderContention) {
  KvDirectServer server(IntegrationConfig());
  ASSERT_TRUE(server.Load(Key(1), std::vector<uint8_t>(8, 0)).ok());
  uint64_t expected_value = 0;
  int mismatches = 0;
  int outstanding = 0;
  Rng rng(5);
  for (int i = 0; i < 5000; i++) {
    KvOperation op;
    op.key = Key(1);
    if (rng.NextBool(0.5)) {
      op.opcode = Opcode::kUpdateScalar;
      op.param = 1;
      op.function_id = kFnAddU64;
      const uint64_t expect_original = expected_value;
      expected_value++;
      outstanding++;
      server.Submit(op, [&, expect_original](KvResultMessage r) {
        outstanding--;
        if (r.code != ResultCode::kOk || r.scalar != expect_original) {
          mismatches++;
        }
      });
    } else {
      op.opcode = Opcode::kGet;
      const uint64_t expect = expected_value;
      outstanding++;
      server.Submit(op, [&, expect](KvResultMessage r) {
        outstanding--;
        if (r.code != ResultCode::kOk || AsU64(r.value) != expect) {
          mismatches++;
        }
      });
    }
  }
  server.simulator().RunUntilIdle();
  EXPECT_EQ(outstanding, 0);
  EXPECT_EQ(mismatches, 0);
  // The engine must have merged most operations (hot key => fast path).
  EXPECT_GT(server.processor().stats().fast_path_ops, 3000u);
}

// A full YCSB-A run through the network path: every response decodes, and
// final store contents equal the functional replay of the same op stream.
TEST(SystemTest, YcsbOverNetworkMatchesFunctionalReplay) {
  WorkloadConfig wl = WorkloadConfig::YcsbA();
  wl.num_keys = 2000;
  wl.value_bytes = 16;

  // Timed run over the network.
  KvDirectServer timed(IntegrationConfig());
  {
    YcsbWorkload workload(wl);
    Client client(timed);
    for (uint64_t id = 0; id < wl.num_keys; id++) {
      const KvOperation op = workload.LoadOpFor(id);
      ASSERT_TRUE(timed.Load(op.key, op.value).ok());
    }
    for (int batch = 0; batch < 20; batch++) {
      for (int i = 0; i < 200; i++) {
        client.Enqueue(workload.NextOp());
      }
      const auto results = client.Flush();
      for (const auto& result : results) {
        ASSERT_NE(result.code, ResultCode::kInvalidArgument);
      }
    }
  }
  // Functional replay with an identically seeded workload.
  KvDirectServer functional(IntegrationConfig());
  {
    YcsbWorkload workload(wl);
    for (uint64_t id = 0; id < wl.num_keys; id++) {
      const KvOperation op = workload.LoadOpFor(id);
      ASSERT_TRUE(functional.Load(op.key, op.value).ok());
    }
    for (int i = 0; i < 20 * 200; i++) {
      (void)functional.Execute(workload.NextOp());
    }
  }
  // Store states must agree exactly.
  YcsbWorkload probe(wl);
  EXPECT_EQ(timed.index().num_kvs(), functional.index().num_kvs());
  for (uint64_t id = 0; id < wl.num_keys; id++) {
    KvOperation get;
    get.opcode = Opcode::kGet;
    get.key = probe.KeyFor(id);
    const KvResultMessage a = timed.Execute(get);
    const KvResultMessage b = functional.Execute(get);
    ASSERT_EQ(a.code, b.code) << id;
    ASSERT_EQ(a.value, b.value) << id;
  }
}

// Fuzz: random bytes fed to the packet parser must never crash and the
// server must answer every malformed packet with an error response.
TEST(SystemTest, MalformedPacketsAreRejectedGracefully) {
  KvDirectServer server(IntegrationConfig());
  Rng rng(2025);
  int responses = 0;
  for (int trial = 0; trial < 2000; trial++) {
    std::vector<uint8_t> junk(rng.NextBelow(96));
    for (auto& byte : junk) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    server.DeliverPacket(std::move(junk), [&](std::vector<uint8_t>) {
      responses++;
    });
    server.simulator().RunUntilIdle();
  }
  EXPECT_EQ(responses, 2000);
  // The store must still work afterwards.
  Client client(server);
  ASSERT_TRUE(client.Put(Key(1), Key(2)).ok());
  EXPECT_TRUE(client.Get(Key(1)).ok());
}

// Truncating a *valid* packet at every byte offset: parser never crashes,
// never fabricates operations beyond the prefix.
TEST(SystemTest, TruncatedValidPacketsNeverCrash) {
  PacketBuilder builder(4096);
  for (uint64_t i = 0; i < 10; i++) {
    KvOperation op;
    op.opcode = i % 2 == 0 ? Opcode::kPut : Opcode::kUpdateScalar;
    op.key = Key(i);
    op.value.assign(i % 2 == 0 ? 12 : 0, static_cast<uint8_t>(i));
    builder.Add(op);
  }
  const std::vector<uint8_t> full = builder.Finish();
  for (size_t cut = 0; cut < full.size(); cut++) {
    PacketParser parser(std::vector<uint8_t>(full.begin(),
                                             full.begin() + static_cast<long>(cut)));
    int parsed = 0;
    while (true) {
      auto next = parser.Next();
      if (!next.ok() || !next->has_value()) {
        break;
      }
      parsed++;
    }
    EXPECT_LE(parsed, 10);
  }
}

// Store-full behaviour: clients get OUT_OF_MEMORY, nothing corrupts, and
// deleting frees capacity for new inserts.
TEST(SystemTest, GracefulOutOfMemoryAndRecovery) {
  ServerConfig config = IntegrationConfig();
  config.kvs_memory_bytes = 256 * kKiB;
  KvDirectServer server(config);
  Client client(server);
  const std::vector<uint8_t> value(200, 7);
  uint64_t inserted = 0;
  while (true) {
    const Status status = client.Put(Key(inserted), value);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kOutOfMemory);
      break;
    }
    inserted++;
    ASSERT_LT(inserted, 100000u);
  }
  EXPECT_GT(inserted, 100u);
  // Everything inserted is still retrievable.
  for (uint64_t probe = 0; probe < inserted; probe += 37) {
    EXPECT_TRUE(client.Get(Key(probe)).ok()) << probe;
  }
  // Freeing makes room again.
  for (uint64_t victim = 0; victim < 10; victim++) {
    ASSERT_TRUE(client.Delete(Key(victim)).ok());
  }
  EXPECT_TRUE(client.Put(Key(1000000), value).ok());
}

// Deterministic simulation: identical runs produce identical clocks, stats,
// and results.
TEST(SystemTest, SimulationIsDeterministic) {
  auto run = [] {
    KvDirectServer server(IntegrationConfig());
    WorkloadConfig wl = WorkloadConfig::YcsbB();
    wl.num_keys = 500;
    YcsbWorkload workload(wl);
    for (uint64_t id = 0; id < wl.num_keys; id++) {
      const KvOperation op = workload.LoadOpFor(id);
      (void)server.Load(op.key, op.value);
    }
    for (int i = 0; i < 3000; i++) {
      server.Submit(workload.NextOp(), [](KvResultMessage) {});
    }
    server.simulator().RunUntilIdle();
    return std::pair<SimTime, uint64_t>(server.simulator().Now(),
                                        server.processor().stats().fast_path_ops);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

// Station capacity backpressure: a flood far beyond max_inflight completes
// exactly once per op, in bounded simulated time.
TEST(SystemTest, BackpressureUnderFlood) {
  ServerConfig config = IntegrationConfig();
  config.processor.ooo.max_inflight = 32;
  KvDirectServer server(config);
  for (uint64_t i = 0; i < 100; i++) {
    ASSERT_TRUE(server.Load(Key(i), Key(i)).ok());
  }
  int completions = 0;
  constexpr int kFlood = 10000;
  Rng rng(8);
  for (int i = 0; i < kFlood; i++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(rng.NextBelow(100));
    server.Submit(op, [&](KvResultMessage) { completions++; });
  }
  server.simulator().RunUntilIdle();
  EXPECT_EQ(completions, kFlood);
}

// Mixed vector + scalar traffic through one server stays consistent.
TEST(SystemTest, VectorAndScalarTrafficInterleaved) {
  ServerConfig config = IntegrationConfig();
  config.min_slab_bytes = 128;
  config.max_slab_bytes = 4096;
  KvDirectServer server(config);
  Client client(server);
  // One vector of 64 u64 elements and 50 scalar counters.
  std::vector<uint8_t> vec(512, 0);
  ASSERT_TRUE(client.Put(Key(9999), vec).ok());
  for (uint64_t i = 0; i < 50; i++) {
    ASSERT_TRUE(client.Put(Key(i), std::vector<uint8_t>(8, 0)).ok());
  }
  for (int round = 0; round < 20; round++) {
    ASSERT_TRUE(
        client.UpdateVectorWithScalar(Key(9999), 1, kFnAddU64, 8).ok());
    for (uint64_t i = 0; i < 50; i++) {
      ASSERT_TRUE(client.Update(Key(i), 2).ok());
    }
  }
  auto sum = client.Reduce(Key(9999), 0, kFnAddU64, 8);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 64u * 20);  // every element incremented 20 times
  for (uint64_t i = 0; i < 50; i++) {
    auto v = client.Get(Key(i));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(AsU64(*v), 40u);
  }
}

}  // namespace
}  // namespace kvd
