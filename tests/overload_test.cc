// Overload control and graceful degradation (DESIGN.md §12): admission
// control and shedding, end-to-end deadline propagation, retry budgets,
// jittered backoff determinism, hedged reads, and gray-failure quorum
// demotion.
#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "src/common/units.h"
#include "src/core/admission.h"
#include "src/core/kv_direct.h"
#include "src/net/wire_format.h"
#include "src/replica/replicated_client.h"
#include "src/replica/replication_group.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

uint64_t AsU64(const std::vector<uint8_t>& value) {
  uint64_t v = 0;
  std::memcpy(&v, value.data(), std::min<size_t>(8, value.size()));
  return v;
}

// --- AdmissionController unit tests ---

TEST(AdmissionTest, DefaultConfigAdmitsEverything) {
  AdmissionController admission((AdmissionConfig()));
  for (uint32_t backlog : {0u, 100u, 1000000u}) {
    EXPECT_EQ(admission.Accept(OpClass::kWrite, 0, backlog, 0),
              AdmissionController::Decision::kAdmit);
  }
  EXPECT_EQ(admission.OnDequeue(0, 0, 10 * kMillisecond),
            AdmissionController::DequeueAction::kProcess);
  EXPECT_EQ(admission.stats().admitted, 3u);
}

TEST(AdmissionTest, MaxBacklogReproducesLegacyBusyBounce) {
  AdmissionConfig config;
  config.max_backlog = 4;
  AdmissionController admission(config);
  EXPECT_EQ(admission.Accept(OpClass::kRead, 0, 3, 0),
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.Accept(OpClass::kRead, 0, 4, 0),
            AdmissionController::Decision::kBusy);
  EXPECT_EQ(admission.stats().busy_rejected, 1u);
}

TEST(AdmissionTest, OverloadCeilingFastRejectsAboveBusyThreshold) {
  AdmissionConfig config;
  config.max_backlog = 4;
  config.overload_backlog = 8;
  AdmissionController admission(config);
  EXPECT_EQ(admission.Accept(OpClass::kWrite, 0, 6, 0),
            AdmissionController::Decision::kBusy);
  EXPECT_EQ(admission.Accept(OpClass::kWrite, 0, 8, 0),
            AdmissionController::Decision::kOverloaded);
  EXPECT_EQ(admission.stats().overload_rejected, 1u);
  EXPECT_EQ(admission.stats().busy_rejected, 1u);
}

TEST(AdmissionTest, ControlClassIsExemptFromBacklogLimits) {
  AdmissionConfig config;
  config.max_backlog = 4;
  config.overload_backlog = 8;
  AdmissionController admission(config);
  EXPECT_EQ(admission.Accept(OpClass::kControl, 0, 1000000, 0),
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.stats().admitted_by_class[0], 1u);
}

TEST(AdmissionTest, DeadOnArrivalIsShedBeforeQueueing) {
  AdmissionController admission((AdmissionConfig()));
  EXPECT_EQ(admission.Accept(OpClass::kRead, /*deadline=*/100 * kMicrosecond,
                             0, /*now=*/200 * kMicrosecond),
            AdmissionController::Decision::kDeadlineExceeded);
  EXPECT_EQ(admission.stats().deadline_shed_arrival, 1u);
  // A live deadline admits.
  EXPECT_EQ(admission.Accept(OpClass::kRead, 300 * kMicrosecond, 0,
                             200 * kMicrosecond),
            AdmissionController::Decision::kAdmit);
}

TEST(AdmissionTest, ExpiredDeadlineIsShedAtDequeue) {
  AdmissionController admission((AdmissionConfig()));
  EXPECT_EQ(admission.OnDequeue(/*deadline=*/100 * kMicrosecond,
                                /*enqueued_at=*/0, /*now=*/200 * kMicrosecond),
            AdmissionController::DequeueAction::kShedDeadline);
  EXPECT_EQ(admission.stats().deadline_shed_queue, 1u);
}

TEST(AdmissionTest, CodelShedsAfterSustainedOverTargetSojourn) {
  AdmissionConfig config;
  config.codel_target = 100 * kMicrosecond;
  config.codel_interval = 100 * kMicrosecond;
  AdmissionController admission(config);
  // First over-target dequeue only starts the interval clock.
  EXPECT_EQ(admission.OnDequeue(0, 0, 150 * kMicrosecond),
            AdmissionController::DequeueAction::kProcess);
  // Still within the interval: no shed yet.
  EXPECT_EQ(admission.OnDequeue(0, 0, 200 * kMicrosecond),
            AdmissionController::DequeueAction::kProcess);
  // Sojourn stayed over target for a full interval: shedding starts.
  EXPECT_EQ(admission.OnDequeue(0, 0, 260 * kMicrosecond),
            AdmissionController::DequeueAction::kShedSojourn);
  EXPECT_EQ(admission.stats().codel_shed, 1u);
  // A sojourn back under target leaves the dropping state.
  EXPECT_EQ(admission.OnDequeue(0, 250 * kMicrosecond, 300 * kMicrosecond),
            AdmissionController::DequeueAction::kProcess);
}

// --- server-side shedding through the full stack ---

TEST(OverloadTest, ServerFastRejectsPastOverloadCeilingButNeverControl) {
  ServerConfig config;
  config.kvs_memory_bytes = 2 * kMiB;
  config.nic_dram.capacity_bytes = 512 * 1024;
  config.processor.admission.overload_backlog = 16;
  config.processor.admission.class_queues = true;
  KvDirectServer server(config);
  ASSERT_TRUE(server.Load(Key(1), U64Value(7)).ok());

  // The reservation station itself holds up to OooConfig::max_inflight (256)
  // ops; the admission backlog only builds once the pipeline is full, so the
  // burst must overshoot that plus the overload ceiling.
  std::vector<ResultCode> codes(400, ResultCode::kOk);
  for (size_t i = 0; i < codes.size(); i++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(1);
    server.Submit(std::move(op),
                  [&codes, i](KvResultMessage r) { codes[i] = r.code; });
  }
  // A control-class op submitted into the overloaded backlog must be
  // admitted, not fast-rejected.
  ResultCode control_code = ResultCode::kOverloaded;
  KvOperation control;
  control.opcode = Opcode::kGet;
  control.key = Key(1);
  server.Submit(std::move(control),
                [&](KvResultMessage r) { control_code = r.code; },
                OpClass::kControl);
  server.simulator().RunUntilIdle();

  uint64_t overloaded = 0;
  uint64_t ok = 0;
  for (const ResultCode code : codes) {
    overloaded += code == ResultCode::kOverloaded ? 1 : 0;
    ok += code == ResultCode::kOk ? 1 : 0;
  }
  EXPECT_GT(overloaded, 0u);
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(overloaded + ok, codes.size());
  EXPECT_EQ(control_code, ResultCode::kOk);
  const AdmissionStats& stats = server.processor().admission_stats();
  EXPECT_EQ(stats.overload_rejected, overloaded);
  EXPECT_EQ(stats.admitted_by_class[0], 1u);  // the control op
}

TEST(OverloadTest, ExpiredOpsAreShedAtTheServerNotExecuted) {
  ServerConfig config;
  config.kvs_memory_bytes = 2 * kMiB;
  config.nic_dram.capacity_bytes = 512 * 1024;
  KvDirectServer server(config);
  ASSERT_TRUE(server.Load(Key(1), U64Value(0)).ok());

  // An increment whose deadline already passed must be shed, not applied —
  // executing dead work would still mutate state.
  server.simulator().RunUntil(1 * kMillisecond);
  KvOperation op;
  op.opcode = Opcode::kUpdateScalar;
  op.key = Key(1);
  op.param = 1;
  op.deadline = 500 * kMicrosecond;  // already in the past
  ResultCode code = ResultCode::kOk;
  server.Submit(std::move(op), [&](KvResultMessage r) { code = r.code; });
  server.simulator().RunUntilIdle();
  EXPECT_EQ(code, ResultCode::kDeadlineExceeded);
  EXPECT_EQ(server.processor().admission_stats().deadline_shed_arrival, 1u);

  KvOperation probe;
  probe.opcode = Opcode::kGet;
  probe.key = Key(1);
  EXPECT_EQ(AsU64(server.Execute(probe).value), 0u);  // not applied
}

// --- deadline propagation end to end ---

TEST(OverloadTest, PartitionedServerYieldsDeadlineExceededNotAHang) {
  ServerConfig config;
  config.kvs_memory_bytes = 2 * kMiB;
  config.nic_dram.capacity_bytes = 512 * 1024;
  KvDirectServer server(config);
  ASSERT_TRUE(server.Load(Key(1), U64Value(7)).ok());

  Client::Options options;
  options.retry.timeout = 50 * kMicrosecond;
  options.retry.max_attempts = 64;       // deadline must fire long before this
  options.retry.op_budget = 300 * kMicrosecond;
  Client client(server, options);
  server.network().SetPartitioned(/*to_server=*/true, true);

  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key = Key(1);
  client.Enqueue(std::move(op));
  const SimTime before = server.simulator().Now();
  std::vector<KvResultMessage> results = client.Flush();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].code, ResultCode::kDeadlineExceeded);
  EXPECT_GE(client.stats().deadline_failures, 1u);
  // The client gave up within a couple of backoff rounds of the budget; it
  // did not retry to attempt exhaustion.
  EXPECT_LT(server.simulator().Now() - before, 2 * kMillisecond);
  EXPECT_LT(client.stats().retransmits, 63u);
}

TEST(OverloadTest, PartitionedPrimaryWriteFailsByDeadlineNotAHang) {
  ReplicationConfig config;
  config.num_replicas = 3;
  config.server.kvs_memory_bytes = 2 * kMiB;
  config.server.nic_dram.capacity_bytes = 512 * 1024;
  ReplicationGroup group(config);

  ReplicatedClient::Options options;
  options.timeout = 100 * kMicrosecond;
  options.op_budget = 500 * kMicrosecond;
  ReplicatedClient client(group, options);

  // Partition the primary's client-facing network in both directions: writes
  // cannot reach it, and rotated attempts at backups only bounce back
  // redirects toward the dead address.
  group.client_network(0).SetPartitioned(true, true);
  group.client_network(0).SetPartitioned(false, true);

  KvOperation op;
  op.opcode = Opcode::kPut;
  op.key = Key(1);
  op.value = U64Value(42);
  client.Enqueue(std::move(op));
  const SimTime before = group.simulator().Now();
  std::vector<KvResultMessage> results = client.Flush();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].code, ResultCode::kDeadlineExceeded);
  EXPECT_LT(group.simulator().Now() - before, 5 * kMillisecond);
}

// --- retransmission: heal mid-retransmit, budgets, jitter ---

TEST(OverloadTest, HealedPartitionMidRetransmitAppliesExactlyOnce) {
  ServerConfig config;
  config.kvs_memory_bytes = 2 * kMiB;
  config.nic_dram.capacity_bytes = 512 * 1024;
  KvDirectServer server(config);
  ASSERT_TRUE(server.Load(Key(1), U64Value(0)).ok());

  Client::Options options;
  options.retry.timeout = 50 * kMicrosecond;
  options.retry.max_attempts = 24;
  Client client(server, options);

  server.network().SetPartitioned(/*to_server=*/true, true);
  // Heal mid-flush, after at least one retransmission has been swallowed.
  server.simulator().Schedule(180 * kMicrosecond, [&] {
    server.network().SetPartitioned(/*to_server=*/true, false);
  });

  KvOperation op;
  op.opcode = Opcode::kUpdateScalar;
  op.key = Key(1);
  op.param = 1;
  client.Enqueue(std::move(op));
  std::vector<KvResultMessage> results = client.Flush();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].code, ResultCode::kOk);
  EXPECT_GE(client.stats().retransmits, 1u);

  // Exactly once: the increment applied a single time despite the frames
  // lost to the partition and any duplicates after the heal.
  KvOperation probe;
  probe.opcode = Opcode::kGet;
  probe.key = Key(1);
  EXPECT_EQ(AsU64(server.Execute(probe).value), 1u);
}

TEST(OverloadTest, RetryBudgetBoundsStormAndRecoversAfterHeal) {
  ServerConfig config;
  config.kvs_memory_bytes = 2 * kMiB;
  config.nic_dram.capacity_bytes = 512 * 1024;
  KvDirectServer server(config);
  for (uint64_t k = 0; k < 16; k++) {
    ASSERT_TRUE(server.Load(Key(k), U64Value(k)).ok());
  }

  Client::Options options;
  options.max_ops_per_packet = 1;
  options.retry.timeout = 20 * kMicrosecond;
  options.retry.max_attempts = 12;
  options.retry.retry_budget = 8;
  Client client(server, options);

  server.network().SetPartitioned(/*to_server=*/true, true);
  for (uint64_t k = 0; k < 16; k++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(k);
    client.Enqueue(std::move(op));
  }
  std::vector<KvResultMessage> storm = client.Flush();
  for (const KvResultMessage& r : storm) {
    EXPECT_EQ(r.code, ResultCode::kTimedOut);
  }
  // The bucket held 8 tokens; without it the storm would have sent
  // 16 * (max_attempts - 1) = 176 retransmissions.
  EXPECT_LE(client.stats().retransmits, 8u);
  EXPECT_GT(client.stats().budget_exhausted, 0u);

  // First transmissions are never budget-gated: recovery is clean even with
  // an empty bucket.
  server.network().SetPartitioned(/*to_server=*/true, false);
  for (uint64_t k = 0; k < 16; k++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(k);
    client.Enqueue(std::move(op));
  }
  for (const KvResultMessage& r : client.Flush()) {
    EXPECT_EQ(r.code, ResultCode::kOk);
  }
}

// One lossy run: returns (retransmits, final sim time, result-code digest) —
// every coordinate must be bit-stable across identical seeds.
std::tuple<uint64_t, SimTime, uint64_t> LossyRun(uint64_t seed) {
  ServerConfig config;
  config.kvs_memory_bytes = 2 * kMiB;
  config.nic_dram.capacity_bytes = 512 * 1024;
  config.faults.seed = seed;
  config.faults.at(FaultSite::kNetDropToServer) = 0.2;
  config.faults.at(FaultSite::kNetDropToClient) = 0.2;
  KvDirectServer server(config);
  for (uint64_t k = 0; k < 32; k++) {
    if (!server.Load(Key(k), U64Value(k)).ok()) {
      return {0, 0, 0};
    }
  }
  Client::Options options;
  options.max_ops_per_packet = 4;
  options.retry.timeout = 50 * kMicrosecond;
  options.retry.jitter = true;
  Client client(server, options);
  uint64_t digest = 0;
  for (int round = 0; round < 8; round++) {
    for (uint64_t k = 0; k < 32; k++) {
      KvOperation op;
      op.opcode = Opcode::kGet;
      op.key = Key(k);
      client.Enqueue(std::move(op));
    }
    for (const KvResultMessage& r : client.Flush()) {
      digest = digest * 1099511628211ull + static_cast<uint64_t>(r.code);
    }
  }
  return {client.stats().retransmits, server.simulator().Now(), digest};
}

TEST(OverloadTest, JitteredBackoffIsDeterministicForASeed) {
  const auto first = LossyRun(2026);
  const auto second = LossyRun(2026);
  EXPECT_GT(std::get<0>(first), 0u);  // the loss rate actually forced retries
  EXPECT_EQ(first, second);
  // A different seed draws different jitter (and different losses): the runs
  // are deterministic per seed, not trivially constant.
  const auto other = LossyRun(7);
  EXPECT_NE(std::get<1>(first), std::get<1>(other));
}

// --- hedged reads ---

TEST(OverloadTest, HedgedReadCompletesDespiteUnresponsiveReplica) {
  ReplicationConfig config;
  config.num_replicas = 3;
  config.server.kvs_memory_bytes = 2 * kMiB;
  config.server.nic_dram.capacity_bytes = 512 * 1024;
  ReplicationGroup group(config);
  for (uint64_t k = 0; k < 8; k++) {
    ASSERT_TRUE(group.Load(Key(k), U64Value(100 + k)).ok());
  }

  ReplicatedClient::Options options;
  options.hedge_reads = true;
  options.hedge_delay = 50 * kMicrosecond;  // pinned: deterministic firing
  options.timeout = 2 * kMillisecond;  // retransmission far behind the hedge
  ReplicatedClient client(group, options);

  // Replica 1 stops answering reads: requests to it vanish on its inbound
  // client link. Round-robin reads that land there complete only through the
  // hedge copy sent to the next replica.
  group.client_network(1).SetPartitioned(/*to_server=*/true, true);

  const SimTime before = group.simulator().Now();
  for (uint64_t k = 0; k < 8; k++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(k);
    client.Enqueue(std::move(op));
    std::vector<KvResultMessage> results = client.Flush();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].code, ResultCode::kOk);
    EXPECT_EQ(AsU64(results[0].value), 100 + k);
  }
  EXPECT_GE(client.stats().hedged_sends, 2u);
  EXPECT_GE(client.stats().hedge_wins, 2u);
  // Every blocked read completed at hedge-delay cost, not retransmission
  // cost.
  EXPECT_LT(group.simulator().Now() - before, 8 * options.timeout);
}

// --- gray-failure quorum demotion ---

TEST(OverloadTest, GrayBackupIsDemotedThenReinstatedAfterHeal) {
  ReplicationConfig config;
  config.num_replicas = 3;
  config.quorum = 3;  // full quorum: the gray peer stalls every commit
  config.server.kvs_memory_bytes = 2 * kMiB;
  config.server.nic_dram.capacity_bytes = 512 * 1024;
  config.demote_lag_entries = 8;
  config.demote_grace = 400 * kMicrosecond;
  // Keep the failure detector far out of range: the gray link must trigger
  // demotion, not an election.
  config.failure_timeout = 50 * kMillisecond;
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  Simulator& sim = group.simulator();

  const auto put = [&](uint64_t k, uint64_t v) {
    KvOperation op;
    op.opcode = Opcode::kPut;
    op.key = Key(k);
    op.value = U64Value(v);
    client.Enqueue(std::move(op));
    std::vector<KvResultMessage> results = client.Flush();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].code, ResultCode::kOk);
  };

  for (uint64_t i = 0; i < 20; i++) {
    put(i, i);
  }
  EXPECT_EQ(group.stats().gray_demotions, 0u);

  // Replica 2's inbound replication link turns gray: appends mostly vanish,
  // its acks stall, and with quorum 3 every write waits on it until the
  // primary demotes it out of the commit quorum.
  group.replication_network(2).SetGrayLink(/*to_server=*/true, 20.0, 0.9, 7);
  for (uint64_t i = 20; i < 60; i++) {
    put(i, i);
  }
  EXPECT_GE(group.stats().gray_demotions, 1u);
  EXPECT_EQ(group.stats().elections, 0u);  // demotion, not failover
  EXPECT_EQ(group.primary_id(), 0u);

  // Heal. The peer catches up via heartbeat retransmission and must stay
  // fully caught up through a grace window before rejoining the quorum
  // (hysteresis against flapping links).
  group.replication_network(2).SetGrayLink(/*to_server=*/true, 1.0, 0.0);
  sim.RunUntil(sim.Now() + 20 * kMillisecond);
  EXPECT_GE(group.stats().gray_reinstatements, 1u);

  // Reinstated means counted again: subsequent writes still commit, and the
  // once-gray backup holds them.
  put(99, 99);
  sim.RunUntil(sim.Now() + 2 * kMillisecond);
  EXPECT_EQ(group.applied_index(2), group.commit_index());
}

// --- wire format: deadlines and the result-code range ---

TEST(OverloadWireTest, DeadlineRoundTripsThroughThePacketFormat) {
  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key = {1, 2, 3};
  op.deadline = 123456789;
  PacketBuilder builder(4096);
  ASSERT_TRUE(builder.Add(op));
  PacketParser parser(builder.Finish());
  auto parsed = parser.Next();
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->has_value());
  EXPECT_EQ((**parsed).deadline, 123456789u);
}

TEST(OverloadWireTest, DeadlineFreeOpsEncodeAsBefore) {
  // The deadline field is flag-gated: an op without one must not pay (or
  // emit) the extra 8 bytes, keeping old traffic byte-identical.
  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key = {1, 2, 3};
  PacketBuilder without(4096);
  ASSERT_TRUE(without.Add(op));
  op.deadline = 1;
  PacketBuilder with(4096);
  ASSERT_TRUE(with.Add(op));
  EXPECT_EQ(with.payload_size(), without.payload_size() + 8);
}

TEST(OverloadWireTest, TruncatedDeadlineIsRejected) {
  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key = {1, 2, 3};
  op.deadline = 0x1122334455667788ull;
  PacketBuilder builder(4096);
  ASSERT_TRUE(builder.Add(op));
  std::vector<uint8_t> payload = builder.Finish();
  payload.resize(payload.size() - 3);  // chop into the deadline bytes
  PacketParser parser(std::move(payload));
  EXPECT_FALSE(parser.Next().ok());
}

TEST(OverloadWireTest, DecoderRejectsNonWireResultCodes) {
  std::vector<KvResultMessage> in(1);
  in[0].code = ResultCode::kOverloaded;  // wire-legal
  std::vector<uint8_t> legal = EncodeResults(in);
  ASSERT_TRUE(DecodeResults(legal).ok());

  // kTimedOut is client-local and everything above is garbage: both are
  // corruption, not legal server answers.
  for (const uint8_t forged :
       {static_cast<uint8_t>(ResultCode::kTimedOut),
        static_cast<uint8_t>(kMaxResultCodeByte + 1),
        static_cast<uint8_t>(0x7f), static_cast<uint8_t>(0xff)}) {
    std::vector<uint8_t> bytes = legal;
    bytes[0] = forged;  // the code is the result header's first byte
    EXPECT_FALSE(DecodeResults(bytes).ok()) << "byte " << int{forged};
  }
}

TEST(OverloadWireTest, NewResultCodesHaveStableNames) {
  EXPECT_STREQ(ResultCodeName(ResultCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(ResultCodeName(ResultCode::kOverloaded), "OVERLOADED");
  // The wire ceiling moved past kOverloaded when the cluster shard-bounce
  // codes (kWrongShard, kMigrating) were added.
  EXPECT_EQ(kMaxResultCodeByte, static_cast<uint8_t>(ResultCode::kMigrating));
}

}  // namespace
}  // namespace kvd
