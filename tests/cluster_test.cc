// Cluster control plane: routed wire formats (byte-pinned legacy encodings,
// forged/truncated rejection), KeyRouter hash-contract stability, live shard
// migration (basic, frozen-window bounces, chaos on the copy stream with
// zero lost acked writes and exactly-once application), stale-client-map
// convergence, elasticity (add/remove groups), split relabeling, and the
// Rebalancer planning policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/check/history.h"
#include "src/check/linearizability.h"
#include "src/check/session_audit.h"
#include "src/cluster/cluster_client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/rebalancer.h"
#include "src/cluster/shard_map.h"
#include "src/common/hashing.h"
#include "src/common/key_router.h"
#include "src/common/units.h"
#include "src/net/wire_format.h"
#include "src/replica/replica_wire.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

uint64_t AsU64(const std::vector<uint8_t>& value) {
  uint64_t v = 0;
  std::memcpy(&v, value.data(), std::min<size_t>(8, value.size()));
  return v;
}

KvOperation Put(uint64_t id, uint64_t v) {
  KvOperation op;
  op.opcode = Opcode::kPut;
  op.key = Key(id);
  op.value = U64Value(v);
  return op;
}

KvOperation Get(uint64_t id) {
  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key = Key(id);
  return op;
}

KvOperation AddU64(uint64_t id, uint64_t delta) {
  KvOperation op;
  op.opcode = Opcode::kUpdateScalar;
  op.key = Key(id);
  op.param = delta;
  op.function_id = kFnAddU64;
  return op;
}

ClusterConfig SmallClusterConfig(uint32_t groups = 2, uint32_t partitions = 4,
                                 uint32_t replicas = 3) {
  ClusterConfig config;
  config.num_groups = groups;
  config.num_partitions = partitions;
  config.group.num_replicas = replicas;
  config.group.server.kvs_memory_bytes = 8 * kMiB;
  config.group.server.nic_dram.capacity_bytes = 1 * kMiB;
  return config;
}

// A key id whose key hashes to `partition` under `router`.
uint64_t KeyInPartition(const KeyRouter& router, uint32_t partition,
                        uint64_t start = 0) {
  for (uint64_t id = start; id < start + 100000; id++) {
    if (router.PartitionOf(Key(id)) == partition) {
      return id;
    }
  }
  ADD_FAILURE() << "no key found for partition " << partition;
  return 0;
}

// --- routed wire formats ---

TEST(ClusterWireTest, UnroutedGroupRequestBytesArePinned) {
  // The legacy (pre-cluster) encoding must stay byte-identical: 8-byte LE
  // required_index, then the ops payload verbatim.
  GroupRequest request;
  request.required_index = 0x0102030405060708ull;
  request.ops_payload = {0xaa, 0xbb, 0xcc};
  const std::vector<uint8_t> bytes = EncodeGroupRequest(request);
  const std::vector<uint8_t> expected = {0x08, 0x07, 0x06, 0x05, 0x04, 0x03,
                                         0x02, 0x01, 0xaa, 0xbb, 0xcc};
  EXPECT_EQ(bytes, expected);
}

TEST(ClusterWireTest, RoutedGroupRequestRoundTrips) {
  GroupRequest request;
  request.required_index = 77;
  request.has_route = true;
  request.map_epoch = 0x1122334455ull;
  request.partition = 19;
  request.ops_payload = {1, 2, 3, 4};
  auto decoded = DecodeGroupRequest(EncodeGroupRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().required_index, 77u);
  EXPECT_TRUE(decoded.value().has_route);
  EXPECT_EQ(decoded.value().map_epoch, 0x1122334455ull);
  EXPECT_EQ(decoded.value().partition, 19u);
  EXPECT_EQ(decoded.value().ops_payload, request.ops_payload);

  // The route rides the top bit of required_index; an unrouted request with
  // the same watermark has no extension and decodes with has_route=false.
  GroupRequest legacy;
  legacy.required_index = 77;
  legacy.ops_payload = request.ops_payload;
  auto plain = DecodeGroupRequest(EncodeGroupRequest(legacy));
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value().has_route);
  EXPECT_EQ(EncodeGroupRequest(legacy).size() + 12,
            EncodeGroupRequest(request).size());
}

TEST(ClusterWireTest, TruncatedRouteExtensionIsRejected) {
  GroupRequest request;
  request.has_route = true;
  request.map_epoch = 9;
  request.partition = 3;
  request.ops_payload = {};
  std::vector<uint8_t> bytes = EncodeGroupRequest(request);
  // Chop every prefix of the 12-byte route extension: all must error, never
  // crash or mis-decode.
  for (size_t keep = 8; keep < bytes.size(); keep++) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    EXPECT_FALSE(DecodeGroupRequest(cut).ok()) << "kept " << keep;
  }
}

TEST(ClusterWireTest, UnroutedGroupResponseBytesArePinned) {
  GroupResponse response;
  response.flags = kGroupRedirect;
  response.epoch = 2;
  response.primary_id = 1;
  response.assigned_index = 5;
  response.results_payload = {0x99};
  const std::vector<uint8_t> bytes = EncodeGroupResponse(response);
  const std::vector<uint8_t> expected = {
      0x01,                                            // flags
      0x02, 0, 0, 0, 0, 0, 0, 0,                       // epoch
      0x01, 0, 0, 0,                                   // primary_id
      0x05, 0, 0, 0, 0, 0, 0, 0,                       // assigned_index
      0x99};                                           // results payload
  EXPECT_EQ(bytes, expected);
}

TEST(ClusterWireTest, ShardBounceResponseRoundTrips) {
  for (const uint8_t flag : {kGroupWrongShard, kGroupMigrating}) {
    GroupResponse response;
    response.flags = flag;
    response.epoch = 4;
    response.primary_id = 2;
    response.map_epoch = 31;
    response.owner_group = 5;
    response.num_partitions = 24;
    auto decoded = DecodeGroupResponse(EncodeGroupResponse(response));
    ASSERT_TRUE(decoded.ok()) << int{flag};
    EXPECT_EQ(decoded.value().flags, flag);
    EXPECT_EQ(decoded.value().map_epoch, 31u);
    EXPECT_EQ(decoded.value().owner_group, 5u);
    EXPECT_EQ(decoded.value().num_partitions, 24u);
  }
}

TEST(ClusterWireTest, ForgedResponseFlagsAreRejected) {
  GroupResponse response;
  response.epoch = 1;
  std::vector<uint8_t> bytes = EncodeGroupResponse(response);
  for (const uint8_t forged : {0x10, 0x20, 0x40, 0x80, 0xff}) {
    std::vector<uint8_t> hostile = bytes;
    hostile[0] = forged;  // flags byte
    EXPECT_FALSE(DecodeGroupResponse(hostile).ok()) << int{forged};
  }
}

TEST(ClusterWireTest, TruncatedBounceContextIsRejected) {
  GroupResponse response;
  response.flags = kGroupWrongShard;
  response.map_epoch = 7;
  response.owner_group = 1;
  response.num_partitions = 8;
  std::vector<uint8_t> bytes = EncodeGroupResponse(response);
  // The bounce context is the trailing 16 bytes; every truncation into it
  // must be rejected.
  for (size_t cut = 1; cut <= 16; cut++) {
    std::vector<uint8_t> hostile(bytes.begin(), bytes.end() - cut);
    EXPECT_FALSE(DecodeGroupResponse(hostile).ok()) << "cut " << cut;
  }
}

TEST(ClusterWireTest, ShardBounceResultCodesAreWireLegal) {
  // kWrongShard / kMigrating ride EncodeResults inside bounce responses, so
  // they must be wire-legal; kTimedOut stays client-local above the ceiling.
  for (const ResultCode code : {ResultCode::kWrongShard, ResultCode::kMigrating}) {
    std::vector<KvResultMessage> in(1);
    in[0].code = code;
    auto decoded = DecodeResults(EncodeResults(in));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value()[0].code, code);
  }
  EXPECT_STREQ(ResultCodeName(ResultCode::kWrongShard), "WRONG_SHARD");
  EXPECT_STREQ(ResultCodeName(ResultCode::kMigrating), "MIGRATING");
  EXPECT_EQ(kMaxResultCodeByte, static_cast<uint8_t>(ResultCode::kMigrating));
  EXPECT_EQ(kMaxResultCodeByte + 1, static_cast<int>(ResultCode::kTimedOut));
}

// --- KeyRouter hash contract ---

TEST(ClusterRouterTest, RoutingStability) {
  // Pinned digests: HashBytes consumes key bytes in little-endian lane order
  // with seed 0x9c1c. These values must never change — a silent change
  // re-routes every key in every deployed map.
  EXPECT_EQ(HashBytes(Key(0), 0x9c1c), 0x10de85305dce0dc2ull);
  EXPECT_EQ(HashBytes(Key(1), 0x9c1c), 0x605c16e6f2f9ed63ull);
  EXPECT_EQ(HashBytes(Key(42), 0x9c1c), 0x8c564945a47980baull);
  EXPECT_EQ(HashBytes(Key(0xdeadbeef), 0x9c1c), 0x5d52860fdea03adcull);
  const char* s = "kv-direct";
  EXPECT_EQ(HashBytes(std::span<const uint8_t>(
                          reinterpret_cast<const uint8_t*>(s), 9),
                      0x9c1c),
            0xab9617f223fb31b6ull);

  // Pinned partition choices under the default 12-partition map.
  const KeyRouter router(12);
  EXPECT_EQ(router.PartitionOf(Key(0)), 10u);
  EXPECT_EQ(router.PartitionOf(Key(1)), 7u);
  EXPECT_EQ(router.PartitionOf(Key(2)), 9u);
  EXPECT_EQ(router.PartitionOf(Key(7)), 6u);
  EXPECT_EQ(router.PartitionOf(Key(1000)), 1u);

  // The router is exactly hash % N — the documented contract.
  for (uint64_t id = 0; id < 512; id++) {
    EXPECT_EQ(router.PartitionOf(Key(id)), HashBytes(Key(id), 0x9c1c) % 12);
  }
}

TEST(ClusterRouterTest, SplitRefinementProperty) {
  // h % 2N is h % N or h % N + N: doubling the partition count splits p into
  // exactly {p, p + N}, so a doubled map is a pure relabeling.
  for (const uint32_t n : {2u, 3u, 12u, 24u}) {
    const KeyRouter coarse(n);
    const KeyRouter fine(2 * n);
    for (uint64_t id = 0; id < 512; id++) {
      const uint32_t p = coarse.PartitionOf(Key(id));
      const uint32_t q = fine.PartitionOf(Key(id));
      EXPECT_TRUE(q == p || q == p + n) << "id " << id << " n " << n;
    }
  }
}

TEST(ClusterShardMapTest, InitialAndDoubled) {
  const ShardMap map = ShardMap::Initial(6, 2);
  EXPECT_EQ(map.epoch, 1u);
  ASSERT_EQ(map.num_partitions(), 6u);
  for (uint32_t p = 0; p < 6; p++) {
    EXPECT_EQ(map.OwnerOf(p), p % 2);
  }
  const ShardMap doubled = map.Doubled();
  ASSERT_EQ(doubled.num_partitions(), 12u);
  for (uint32_t p = 0; p < 6; p++) {
    EXPECT_EQ(doubled.OwnerOf(p), map.OwnerOf(p));
    EXPECT_EQ(doubled.OwnerOf(p + 6), map.OwnerOf(p));
  }
}

// --- cluster client + coordinator ---

TEST(ClusterClientTest, ShardsAndReplicatesOnOneSimulator) {
  ClusterConfig config = SmallClusterConfig(2, 4, 3);
  ClusterCoordinator cluster(config);
  ClusterClient client(cluster);

  std::map<uint64_t, uint64_t> expected;
  for (uint64_t i = 0; i < 32; i++) {
    client.Enqueue(Put(i, 5000 + i));
    expected[i] = 5000 + i;
  }
  for (const KvResultMessage& r : client.Flush()) {
    EXPECT_EQ(r.code, ResultCode::kOk);
  }
  // Both groups share one clock and both committed writes.
  EXPECT_EQ(&cluster.group(0).simulator(), &cluster.group(1).simulator());
  EXPECT_GT(cluster.group(0).commit_index(), 0u);
  EXPECT_GT(cluster.group(1).commit_index(), 0u);

  for (uint64_t i = 0; i < 32; i++) {
    client.Enqueue(Get(i));
  }
  std::vector<KvResultMessage> reads = client.Flush();
  ASSERT_EQ(reads.size(), 32u);
  for (uint64_t i = 0; i < 32; i++) {
    ASSERT_EQ(reads[i].code, ResultCode::kOk) << "key " << i;
    EXPECT_EQ(AsU64(reads[i].value), expected[i]) << "key " << i;
  }

  // Routing agrees with the published map and the shared KeyRouter.
  const KeyRouter router = cluster.router();
  for (uint64_t i = 0; i < 32; i++) {
    const uint32_t p = router.PartitionOf(Key(i));
    EXPECT_EQ(cluster.shard_map().OwnerOf(p), p % 2);
  }
  // No routed request was mis-counted: per-partition loads sum to ops served.
  uint64_t total = 0;
  for (const uint64_t ops : cluster.partition_ops()) {
    total += ops;
  }
  EXPECT_EQ(total, 64u);
}

TEST(ClusterMigrationTest, MovesAPartitionAndFlipsTheMap) {
  ClusterConfig config = SmallClusterConfig(2, 4, 3);
  ClusterCoordinator cluster(config);
  const KeyRouter router = cluster.router();

  // Seed keys across every partition; remember those in the moving one.
  const uint32_t partition = 0;
  const uint32_t from = cluster.shard_map().OwnerOf(partition);
  const uint32_t to = 1 - from;
  std::map<uint64_t, uint64_t> moved;
  for (uint64_t i = 0; i < 64; i++) {
    ASSERT_TRUE(cluster.Load(Key(i), U64Value(100 + i)).ok());
    if (router.PartitionOf(Key(i)) == partition) {
      moved[i] = 100 + i;
    }
  }
  ASSERT_FALSE(moved.empty());
  const uint64_t epoch_before = cluster.map_epoch();

  ASSERT_TRUE(cluster.StartMigration(partition, to).ok());
  EXPECT_TRUE(cluster.migration_active());
  cluster.DriveMigrationToCompletion();

  EXPECT_EQ(cluster.map_epoch(), epoch_before + 1);
  EXPECT_EQ(cluster.shard_map().OwnerOf(partition), to);
  EXPECT_EQ(cluster.stats().migrations_completed, 1u);
  EXPECT_GT(cluster.stats().copy_kvs, 0u);

  // Every moved key reads back at the destination; the source dropped them.
  for (const auto& [id, value] : moved) {
    KvResultMessage r = cluster.group(to).Execute(Get(id));
    ASSERT_EQ(r.code, ResultCode::kOk) << "key " << id;
    EXPECT_EQ(AsU64(r.value), value);
  }
  EXPECT_TRUE(cluster.group(from).SnapshotPartitionKvs(router, partition).empty());

  // A client with the fresh map reads them through the normal path.
  ClusterClient client(cluster);
  for (const auto& [id, value] : moved) {
    client.Enqueue(Get(id));
  }
  std::vector<KvResultMessage> reads = client.Flush();
  size_t slot = 0;
  for (const auto& [id, value] : moved) {
    ASSERT_EQ(reads[slot].code, ResultCode::kOk) << "key " << id;
    EXPECT_EQ(AsU64(reads[slot].value), value);
    slot++;
  }
}

TEST(ClusterMigrationTest, StaleClientConvergesWithinTwoBounces) {
  ClusterConfig config = SmallClusterConfig(2, 4, 3);
  ClusterCoordinator cluster(config);
  const KeyRouter router = cluster.router();
  const uint32_t partition = 0;
  const uint64_t id = KeyInPartition(router, partition);
  ASSERT_TRUE(cluster.Load(Key(id), U64Value(1)).ok());

  // The client snapshots the map at epoch N, then the partition moves.
  ClusterClient client(cluster);
  const uint64_t cached_epoch = client.cached_map().epoch;
  const uint32_t to = 1 - cluster.shard_map().OwnerOf(partition);
  ASSERT_TRUE(cluster.StartMigration(partition, to).ok());
  cluster.DriveMigrationToCompletion();
  ASSERT_EQ(client.cached_map().epoch, cached_epoch);  // still stale

  // A write under the stale map must land at the new owner in at most two
  // wrong-shard bounces (one to learn the patch, one more only if a second
  // change raced in — none here).
  client.Enqueue(AddU64(id, 5));
  std::vector<KvResultMessage> results = client.Flush();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].code, ResultCode::kOk);
  EXPECT_GE(client.stats().wrong_shard_bounces, 1u);
  EXPECT_LE(client.stats().wrong_shard_bounces, 2u);
  EXPECT_GT(client.cached_map().epoch, cached_epoch);
  EXPECT_EQ(client.cached_map().OwnerOf(partition), to);
  EXPECT_EQ(cluster.group(to).stats().wrong_shard_bounces, 0u);

  KvResultMessage r = cluster.group(to).Execute(Get(id));
  ASSERT_EQ(r.code, ResultCode::kOk);
  EXPECT_EQ(AsU64(r.value), 6u);
}

TEST(ClusterMigrationTest, FrozenWindowBouncesWritesAndCompletes) {
  ClusterConfig config = SmallClusterConfig(2, 4, 3);
  // Stretch the freeze so a client write provably lands inside it.
  config.cutover_quiesce = 2 * kMillisecond;
  ClusterCoordinator cluster(config);
  const KeyRouter router = cluster.router();
  const uint32_t partition = 0;
  const uint64_t id = KeyInPartition(router, partition);
  ASSERT_TRUE(cluster.Load(Key(id), U64Value(10)).ok());
  const uint32_t from = cluster.shard_map().OwnerOf(partition);
  const uint32_t to = 1 - from;

  ASSERT_TRUE(cluster.StartMigration(partition, to).ok());
  Simulator& sim = cluster.simulator();
  while (cluster.migration_active() && cluster.migration_phase() != 3) {
    ASSERT_TRUE(sim.Step());
  }
  ASSERT_EQ(cluster.migration_phase(), 3);

  // A write issued inside the freeze bounces kMigrating at the source, backs
  // off, and completes against the new owner after the flip.
  ClusterClient client(cluster);
  client.Enqueue(AddU64(id, 7));
  std::vector<KvResultMessage> results = client.Flush();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].code, ResultCode::kOk);
  EXPECT_GE(client.stats().migrating_backoffs +
                client.stats().wrong_shard_bounces,
            1u);
  EXPECT_FALSE(cluster.migration_active());
  EXPECT_GE(cluster.group(from).stats().migrating_bounces +
                client.stats().wrong_shard_bounces,
            1u);

  KvResultMessage r = cluster.group(to).Execute(Get(id));
  ASSERT_EQ(r.code, ResultCode::kOk);
  EXPECT_EQ(AsU64(r.value), 17u);
}

// --- negative paths: overload and deadlines mid-bounce-chain ---

TEST(ClusterNegativePathTest, OverloadSurfacesThroughAWrongShardBounce) {
  ClusterConfig config = SmallClusterConfig(2, 4, 3);
  // A tiny destination pipeline: the re-routed read burst overruns the
  // admission queue past the overload ceiling, so the tail fast-rejects.
  config.group.server.processor.ooo.max_inflight = 4;
  config.group.server.processor.admission.overload_backlog = 8;
  ClusterCoordinator cluster(config);
  const KeyRouter router = cluster.router();
  const uint32_t partition = 0;
  std::vector<uint64_t> ids;
  for (uint64_t id = 0; ids.size() < 64 && id < 100000; id++) {
    if (router.PartitionOf(Key(id)) == partition) {
      ids.push_back(id);
      ASSERT_TRUE(cluster.Load(Key(id), U64Value(id)).ok());
    }
  }
  ASSERT_EQ(ids.size(), 64u);
  const uint32_t to = 1 - cluster.shard_map().OwnerOf(partition);

  ClusterClient client(cluster);  // snapshots the pre-migration map
  ASSERT_TRUE(cluster.StartMigration(partition, to).ok());
  cluster.DriveMigrationToCompletion();

  for (const uint64_t id : ids) {
    client.Enqueue(Get(id));
  }
  std::vector<KvResultMessage> results = client.Flush();
  ASSERT_EQ(results.size(), ids.size());
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  for (size_t i = 0; i < results.size(); i++) {
    ok += results[i].code == ResultCode::kOk ? 1 : 0;
    overloaded += results[i].code == ResultCode::kOverloaded ? 1 : 0;
    if (results[i].code == ResultCode::kOk) {
      EXPECT_EQ(AsU64(results[i].value), ids[i]) << "key " << ids[i];
    }
  }
  // The packet bounced kWrongShard at the old owner (nothing executed
  // there), and the patched resend overran the new owner's admission
  // ceiling: the flush surfaces a mix of kOk and definite kOverloaded
  // rejections — never a hang, never a silent drop.
  EXPECT_EQ(ok + overloaded, results.size());
  EXPECT_GT(ok, 0u);
  EXPECT_GT(overloaded, 0u);
  EXPECT_GE(client.stats().wrong_shard_bounces, 1u);
  // A wrong-shard bounce retargets reads to the next replica, so the
  // rejections may land on any member of the destination group.
  uint64_t rejected = 0;
  for (uint32_t r = 0; r < config.group.num_replicas; r++) {
    rejected +=
        cluster.group(to).replica(r).processor().admission_stats().overload_rejected;
  }
  EXPECT_EQ(rejected, overloaded);
}

TEST(ClusterNegativePathTest, DeadlineExpiresInsideTheMigrationFreeze) {
  ClusterConfig config = SmallClusterConfig(2, 4, 3);
  // A freeze window far longer than the op's latency budget: the write can
  // only bounce kMigrating until its deadline passes.
  config.cutover_quiesce = 20 * kMillisecond;
  ClusterCoordinator cluster(config);
  const uint32_t partition = 0;
  const uint64_t id = KeyInPartition(cluster.router(), partition);
  ASSERT_TRUE(cluster.Load(Key(id), U64Value(10)).ok());
  const uint32_t from = cluster.shard_map().OwnerOf(partition);
  const uint32_t to = 1 - from;
  ASSERT_TRUE(cluster.StartMigration(partition, to).ok());
  Simulator& sim = cluster.simulator();
  while (cluster.migration_active() && cluster.migration_phase() != 3) {
    ASSERT_TRUE(sim.Step());
  }
  ASSERT_EQ(cluster.migration_phase(), 3);

  ClusterClient client(cluster);
  KvOperation op = AddU64(id, 7);
  op.deadline = sim.Now() + kMillisecond;  // expires well inside the freeze
  client.Enqueue(op);
  std::vector<KvResultMessage> results = client.Flush();
  ASSERT_EQ(results.size(), 1u);
  // The sender abandons the frame once the deadline passes mid-bounce-chain
  // instead of hammering the frozen partition for the full freeze window.
  EXPECT_EQ(results[0].code, ResultCode::kDeadlineExceeded);
  EXPECT_GE(client.stats().migrating_backoffs, 1u);
  EXPECT_GE(client.stats().deadline_failures, 1u);

  // Every attempt bounced at the gate, so the abandoned write never
  // executed: after the flip the value is untouched.
  cluster.DriveMigrationToCompletion();
  KvResultMessage r = cluster.group(to).Execute(Get(id));
  ASSERT_EQ(r.code, ResultCode::kOk);
  EXPECT_EQ(AsU64(r.value), 10u);
}

// Chaos soak: loss, duplication, and corruption on the copy stream plus a
// gray migration link, under sustained client increments to the moving
// partition. Faults never touch the client path, so every op is acked — and
// exactly-once across the cutover demands final == base + sum(acked deltas)
// for every key: a lost chunk that stayed lost, a resurrected stale value,
// or a double-applied forward all break the equality.
std::string RunMigrationChaosSoak(uint64_t seed) {
  ClusterConfig config = SmallClusterConfig(2, 4, 3);
  config.migration_faults.seed = seed;
  config.migration_faults.at(FaultSite::kNetDropToServer) = 0.10;
  config.migration_faults.at(FaultSite::kNetDuplicateToServer) = 0.05;
  config.migration_faults.at(FaultSite::kNetCorruptToServer) = 0.05;
  config.migration_faults.at(FaultSite::kNetDropToClient) = 0.10;  // acks
  config.copy_chunk_kvs = 4;  // many chunks => many chances to lose one
  ClusterCoordinator cluster(config);
  cluster.migration_network().SetGrayLink(/*to_server=*/true,
                                          /*latency_multiplier=*/4.0,
                                          /*loss_probability=*/0.05, seed);
  const KeyRouter router = cluster.router();
  const uint32_t partition = 0;
  const uint32_t to = 1 - cluster.shard_map().OwnerOf(partition);

  // Base values for every key we will touch.
  std::vector<uint64_t> ids;
  for (uint64_t id = 0; ids.size() < 24 && id < 100000; id++) {
    if (router.PartitionOf(Key(id)) == partition) {
      ids.push_back(id);
      EXPECT_TRUE(cluster.Load(Key(id), U64Value(1000 + id)).ok());
    }
  }
  EXPECT_EQ(ids.size(), 24u);

  ClusterClient client(cluster);
  HistoryRecorder recorder;
  RecordingEndpoint endpoint(client, recorder);
  std::map<uint64_t, uint64_t> acked_sum;
  uint64_t next_delta = 1;
  bool started = false;
  // Rounds of increments; the migration starts after the first round and
  // runs under the sustained writes.
  for (int round = 0; round < 30; round++) {
    for (const uint64_t id : ids) {
      endpoint.Enqueue(AddU64(id, next_delta));
    }
    const uint64_t round_delta = next_delta;
    std::vector<KvResultMessage> results = endpoint.Flush();
    for (size_t i = 0; i < ids.size(); i++) {
      EXPECT_EQ(results[i].code, ResultCode::kOk)
          << "round " << round << " key " << ids[i];
      if (results[i].code == ResultCode::kOk) {
        acked_sum[ids[i]] += round_delta;
      }
    }
    next_delta++;
    if (!started) {
      EXPECT_TRUE(cluster.StartMigration(partition, to).ok());
      started = true;
    }
  }
  if (cluster.migration_active()) {
    cluster.DriveMigrationToCompletion();
  }
  EXPECT_EQ(cluster.stats().migrations_completed, 1u);
  EXPECT_EQ(cluster.shard_map().OwnerOf(partition), to);

  // The strict invariant: every acked increment applied exactly once.
  for (const uint64_t id : ids) {
    KvResultMessage r = cluster.group(to).Execute(Get(id));
    EXPECT_EQ(r.code, ResultCode::kOk) << "key " << id;
    EXPECT_EQ(AsU64(r.value), 1000 + id + acked_sum[id]) << "key " << id;
  }
  // The chaos actually bit: the copy stream needed go-back-N recovery.
  EXPECT_GT(cluster.stats().copy_chunk_retransmits +
                cluster.stats().copy_stale_chunks,
            0u);

  // A quiescent read round through the recorded endpoint, so the history
  // carries a definite final observation of every counter.
  for (const uint64_t id : ids) {
    endpoint.Enqueue(Get(id));
  }
  std::vector<KvResultMessage> finals = endpoint.Flush();
  for (size_t i = 0; i < ids.size(); i++) {
    EXPECT_EQ(finals[i].code, ResultCode::kOk) << "key " << ids[i];
    EXPECT_EQ(AsU64(finals[i].value), 1000 + ids[i] + acked_sum[ids[i]]);
  }

  // The recorded history must linearize, honor session guarantees, and
  // account for every acked fetch-add exactly once across the cutover.
  CheckOptions check;
  std::map<std::vector<uint8_t>, uint64_t> base;
  for (const uint64_t id : ids) {
    check.initial_values[Key(id)] = U64Value(1000 + id);
    base[Key(id)] = 1000 + id;
  }
  const CheckReport lin = CheckLinearizability(recorder.history(), check);
  EXPECT_TRUE(lin.ok()) << lin.ToString();
  const AuditReport sessions = AuditSessionGuarantees(recorder.history());
  EXPECT_TRUE(sessions.ok()) << sessions.ToString();
  const AuditReport counters =
      AuditExactlyOnceCounters(recorder.history(), base);
  EXPECT_TRUE(counters.ok()) << counters.ToString();

  return cluster.metrics().ToJson() +
         "|epoch=" + std::to_string(cluster.map_epoch()) +
         "|forwards=" + std::to_string(cluster.stats().forwards) +
         "|retx=" + std::to_string(cluster.stats().copy_chunk_retransmits) +
         "|history=" + recorder.history().Fingerprint() +
         "|check=" + lin.ToString() + counters.ToString();
}

TEST(ClusterMigrationTest, ChaosSoakLosesNoAckedWriteAndIsDeterministic) {
  const std::string a = RunMigrationChaosSoak(17);
  const std::string b = RunMigrationChaosSoak(17);
  EXPECT_EQ(a, b);  // bit-identical same-seed metrics JSON
  EXPECT_NE(a.find("kvd_cluster_migrations_total"), std::string::npos);
}

TEST(ClusterMigrationTest, CutoverTriggersFlightRecorderDump) {
  ClusterConfig config = SmallClusterConfig(2, 4, 3);
  config.enable_request_tracing = true;
  ClusterCoordinator cluster(config);
  const uint32_t partition = 0;
  ASSERT_TRUE(
      cluster.Load(Key(KeyInPartition(cluster.router(), partition)),
                   U64Value(3)).ok());
  ASSERT_TRUE(cluster.StartMigration(partition, 1).ok());
  cluster.DriveMigrationToCompletion();

  ASSERT_EQ(cluster.flight_recorder().dumps().size(), 1u);
  const FlightRecorder::Dump& dump = cluster.flight_recorder().dumps()[0];
  EXPECT_EQ(dump.trigger, FlightTrigger::kShardCutover);
  EXPECT_NE(dump.detail.find("partition 0"), std::string::npos);
  // The dump parses and carries the migration's span tree (the copy-stream
  // wire flights at minimum).
  ParsedFlightDump parsed;
  ASSERT_TRUE(ParseFlightDump(dump.json, &parsed).ok());
  EXPECT_EQ(parsed.trigger, "shard_cutover");
  EXPECT_GT(parsed.total_spans, 0u);
  EXPECT_GT(cluster.stats().copy_chunks_sent, 0u);
}

// --- elasticity ---

TEST(ClusterElasticityTest, AddDrainRemoveGroup) {
  ClusterConfig config = SmallClusterConfig(2, 2, 3);
  ClusterCoordinator cluster(config);
  for (uint64_t i = 0; i < 32; i++) {
    ASSERT_TRUE(cluster.Load(Key(i), U64Value(i)).ok());
  }

  // Scale out: a fresh group owns nothing until a migration moves load on.
  const uint32_t fresh = cluster.AddGroup();
  EXPECT_EQ(fresh, 2u);
  EXPECT_TRUE(cluster.group_active(fresh));
  ASSERT_TRUE(cluster.StartMigration(0, fresh).ok());
  cluster.DriveMigrationToCompletion();
  EXPECT_EQ(cluster.shard_map().OwnerOf(0), fresh);

  // Scale in: group 0 still owns partition... check, then drain and remove.
  const uint32_t victim = 0;
  std::vector<uint32_t> owned;
  for (uint32_t p = 0; p < cluster.shard_map().num_partitions(); p++) {
    if (cluster.shard_map().OwnerOf(p) == victim) {
      owned.push_back(p);
    }
  }
  if (!owned.empty()) {
    EXPECT_FALSE(cluster.RemoveGroup(victim).ok());  // refused while owning
    for (const uint32_t p : owned) {
      ASSERT_TRUE(cluster.StartMigration(p, 1).ok());
      cluster.DriveMigrationToCompletion();
    }
  }
  EXPECT_TRUE(cluster.RemoveGroup(victim).ok());
  EXPECT_FALSE(cluster.group_active(victim));
  EXPECT_FALSE(cluster.RemoveGroup(victim).ok());  // already inactive

  // Data survived the reshuffle.
  ClusterClient client(cluster);
  for (uint64_t i = 0; i < 32; i++) {
    client.Enqueue(Get(i));
  }
  std::vector<KvResultMessage> reads = client.Flush();
  for (uint64_t i = 0; i < 32; i++) {
    ASSERT_EQ(reads[i].code, ResultCode::kOk) << "key " << i;
    EXPECT_EQ(AsU64(reads[i].value), i);
  }
}

TEST(ClusterElasticityTest, SplitDoublesTheMapWithoutMovingData) {
  ClusterConfig config = SmallClusterConfig(2, 4, 3);
  ClusterCoordinator cluster(config);
  for (uint64_t i = 0; i < 32; i++) {
    ASSERT_TRUE(cluster.Load(Key(i), U64Value(7 * i)).ok());
  }
  const ShardMap before = cluster.shard_map();
  ASSERT_TRUE(cluster.SplitPartitions().ok());
  const ShardMap& after = cluster.shard_map();
  EXPECT_EQ(after.num_partitions(), 8u);
  EXPECT_EQ(after.epoch, before.epoch + 1);

  // Pure relabeling: every key's owner is unchanged.
  for (uint64_t i = 0; i < 256; i++) {
    const uint32_t old_owner =
        before.OwnerOf(KeyRouter(4).PartitionOf(Key(i)));
    const uint32_t new_owner =
        after.OwnerOf(KeyRouter(8).PartitionOf(Key(i)));
    EXPECT_EQ(new_owner, old_owner) << "key " << i;
  }

  // A client that cached the pre-split map still reads correctly (same
  // owners), and a fresh client sees the finer map.
  ClusterClient client(cluster);
  EXPECT_EQ(client.cached_map().num_partitions(), 8u);
  for (uint64_t i = 0; i < 32; i++) {
    client.Enqueue(Get(i));
  }
  std::vector<KvResultMessage> reads = client.Flush();
  for (uint64_t i = 0; i < 32; i++) {
    ASSERT_EQ(reads[i].code, ResultCode::kOk);
    EXPECT_EQ(AsU64(reads[i].value), 7 * i);
  }
}

// --- rebalancer planning ---

TEST(RebalancerTest, DrainsInactiveGroupsFirst) {
  ShardMap map = ShardMap::Initial(6, 3);  // owners 0,1,2,0,1,2
  std::vector<uint64_t> load = {10, 10, 10, 10, 10, 10};
  std::vector<uint8_t> active = {1, 1, 0};  // group 2 is leaving
  RebalancePlan plan = Rebalancer::Plan(map, load, active);
  // Partitions 2 and 5 (owned by the inactive group) must both move.
  std::vector<uint32_t> moved;
  for (const RebalanceMove& m : plan.moves) {
    EXPECT_NE(m.to_group, 2u);
    moved.push_back(m.partition);
  }
  std::sort(moved.begin(), moved.end());
  EXPECT_EQ(moved, (std::vector<uint32_t>{2, 5}));
}

TEST(RebalancerTest, GreedyMovesReachTheTarget) {
  // Group 0 is a 3x hotspot: it owns the two hottest partitions.
  ShardMap map = ShardMap::Initial(6, 3);
  std::vector<uint64_t> load = {900, 100, 100, 900, 100, 100};
  std::vector<uint8_t> active = {1, 1, 1};
  // imbalance before: group0=1800, mean=733 => 2.45
  RebalancePlan plan =
      Rebalancer::Plan(map, load, active, Rebalancer::Options{1.25, 8});
  EXPECT_FALSE(plan.moves.empty());
  EXPECT_LE(plan.projected_imbalance, 1.25);
  EXPECT_FALSE(plan.needs_split);
  // Execute the plan against a copy of the owners and re-check.
  std::vector<uint64_t> group_load(3, 0);
  std::vector<uint32_t> owners = map.owners;
  for (const RebalanceMove& m : plan.moves) {
    owners[m.partition] = m.to_group;
  }
  for (uint32_t p = 0; p < 6; p++) {
    group_load[owners[p]] += load[p];
  }
  const uint64_t max_load =
      *std::max_element(group_load.begin(), group_load.end());
  EXPECT_LE(static_cast<double>(max_load), 1.25 * (2200.0 / 3.0));
}

TEST(RebalancerTest, SingleHotPartitionNeedsSplit) {
  ShardMap map = ShardMap::Initial(4, 2);
  // One partition carries nearly everything: no placement fixes that.
  std::vector<uint64_t> load = {10000, 10, 10, 10};
  std::vector<uint8_t> active = {1, 1};
  RebalancePlan plan = Rebalancer::Plan(map, load, active);
  EXPECT_TRUE(plan.needs_split);
}

TEST(RebalancerTest, BalancedClusterPlansNothing) {
  ShardMap map = ShardMap::Initial(6, 3);
  std::vector<uint64_t> load = {100, 100, 100, 100, 100, 100};
  std::vector<uint8_t> active = {1, 1, 1};
  RebalancePlan plan = Rebalancer::Plan(map, load, active);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_FALSE(plan.needs_split);
  EXPECT_LE(plan.projected_imbalance, 1.25);
}

TEST(ClusterCoordinatorTest, LoadCountersFeedGroupLoads) {
  ClusterConfig config = SmallClusterConfig(2, 4, 3);
  ClusterCoordinator cluster(config);
  ClusterClient client(cluster);
  for (uint64_t i = 0; i < 40; i++) {
    client.Enqueue(Put(i, i));
  }
  for (const KvResultMessage& r : client.Flush()) {
    ASSERT_EQ(r.code, ResultCode::kOk);
  }
  const std::vector<uint64_t> loads = cluster.GroupLoads();
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0] + loads[1], 40u);
  cluster.ResetLoadCounters();
  for (const uint64_t ops : cluster.partition_ops()) {
    EXPECT_EQ(ops, 0u);
  }
}

}  // namespace
}  // namespace kvd
