// Unit tests for the discrete-event simulator and token pools.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/token_pool.h"

namespace kvd {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(SimulatorTest, SameTimestampRunsInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.Schedule(100, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    fired++;
    if (fired < 5) {
      sim.Schedule(10, chain);
    }
  };
  sim.Schedule(10, chain);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.Now(), 50u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { fired++; });
  sim.Schedule(100, [&] { fired++; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50u);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.RunUntil(1234);
  EXPECT_EQ(sim.Now(), 1234u);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
}

TEST(TokenPoolTest, ImmediateGrantWhenAvailable) {
  TokenPool pool("test", 4);
  bool granted = false;
  pool.Acquire(2, [&] { granted = true; });
  EXPECT_TRUE(granted);
  EXPECT_EQ(pool.available(), 2u);
}

TEST(TokenPoolTest, WaitersGrantedFifoOnRelease) {
  TokenPool pool("test", 2);
  pool.Acquire(2, [] {});
  std::vector<int> order;
  pool.Acquire(1, [&] { order.push_back(1); });
  pool.Acquire(1, [&] { order.push_back(2); });
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(pool.waiters(), 2u);
  pool.Release(2);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TokenPoolTest, FifoFairnessEvenWhenTokensFree) {
  TokenPool pool("test", 4);
  pool.Acquire(4, [] {});
  bool big_granted = false;
  bool small_granted = false;
  pool.Acquire(3, [&] { big_granted = true; });
  pool.Release(2);
  // Two tokens are free but the 3-token waiter is at the head; a later
  // 1-token request must not jump the queue.
  pool.Acquire(1, [&] { small_granted = true; });
  EXPECT_FALSE(big_granted);
  EXPECT_FALSE(small_granted);
  pool.Release(1);  // 3 free: head (3-token) waiter granted, 0 left
  EXPECT_TRUE(big_granted);
  EXPECT_FALSE(small_granted);
  pool.Release(1);  // now the small waiter gets its token
  EXPECT_TRUE(small_granted);
}

TEST(TokenPoolTest, TryAcquire) {
  TokenPool pool("test", 2);
  EXPECT_TRUE(pool.TryAcquire(2));
  EXPECT_FALSE(pool.TryAcquire(1));
  pool.Release(2);
  EXPECT_TRUE(pool.TryAcquire(1));
}

TEST(TokenPoolTest, TracksPeakUsage) {
  TokenPool pool("test", 8);
  pool.Acquire(5, [] {});
  pool.Release(3);
  pool.Acquire(1, [] {});
  EXPECT_EQ(pool.peak_in_use(), 5u);
  EXPECT_EQ(pool.total_acquires(), 2u);
}

}  // namespace
}  // namespace kvd
