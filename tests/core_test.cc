// Integration tests: update functions, the KV processor's timed pipeline,
// and the full client/server path over the simulated network.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/units.h"
#include "src/core/kv_direct.h"
#include "src/core/update_functions.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

uint64_t AsU64(const std::vector<uint8_t>& value) {
  uint64_t v = 0;
  std::memcpy(&v, value.data(), std::min<size_t>(8, value.size()));
  return v;
}

ServerConfig SmallServerConfig() {
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  return config;
}

// --- UpdateFunctionRegistry ---

TEST(UpdateFunctionsTest, ScalarFetchAdd) {
  UpdateFunctionRegistry registry;
  std::vector<uint8_t> value = U64Value(100);
  auto original = registry.ApplyScalar(kFnAddU64, value, 5, 8);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(*original, 100u);
  EXPECT_EQ(AsU64(value), 105u);
}

TEST(UpdateFunctionsTest, CompareAndSwap) {
  UpdateFunctionRegistry registry;
  std::vector<uint8_t> value(8, 0);
  value[0] = 7;
  // expected=7, new=9
  auto r = registry.ApplyScalar(kFnCasU64, value, (7ull << 32) | 9, 8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(AsU64(value), 9u);
  // expected mismatch: unchanged
  r = registry.ApplyScalar(kFnCasU64, value, (7ull << 32) | 11, 8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(AsU64(value), 9u);
}

TEST(UpdateFunctionsTest, ScalarToVectorAddsEveryElement) {
  UpdateFunctionRegistry registry;
  std::vector<uint8_t> value(32, 0);  // 4 x u64 zeros
  ASSERT_TRUE(registry.ApplyScalarToVector(kFnAddU64, value, 3, 8).ok());
  for (int i = 0; i < 4; i++) {
    uint64_t element;
    std::memcpy(&element, value.data() + i * 8, 8);
    EXPECT_EQ(element, 3u);
  }
}

TEST(UpdateFunctionsTest, VectorToVectorElementwise) {
  UpdateFunctionRegistry registry;
  std::vector<uint8_t> value(16);
  std::vector<uint8_t> params(16);
  uint64_t a = 10;
  uint64_t b = 20;
  std::memcpy(value.data(), &a, 8);
  std::memcpy(value.data() + 8, &b, 8);
  uint64_t pa = 1;
  uint64_t pb = 2;
  std::memcpy(params.data(), &pa, 8);
  std::memcpy(params.data() + 8, &pb, 8);
  ASSERT_TRUE(registry.ApplyVectorToVector(kFnAddU64, value, params, 8).ok());
  uint64_t ra;
  uint64_t rb;
  std::memcpy(&ra, value.data(), 8);
  std::memcpy(&rb, value.data() + 8, 8);
  EXPECT_EQ(ra, 11u);
  EXPECT_EQ(rb, 22u);
}

TEST(UpdateFunctionsTest, ReduceSum) {
  UpdateFunctionRegistry registry;
  std::vector<uint8_t> value(24);
  for (uint64_t i = 0; i < 3; i++) {
    const uint64_t v = i + 1;
    std::memcpy(value.data() + i * 8, &v, 8);
  }
  auto sum = registry.Reduce(kFnAddU64, value, 0, 8);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 6u);
}

TEST(UpdateFunctionsTest, FilterNonZero) {
  UpdateFunctionRegistry registry;
  std::vector<uint8_t> value(32, 0);
  const uint64_t v = 77;
  std::memcpy(value.data() + 16, &v, 8);
  auto filtered = registry.Filter(kFnNonZero, value, 0, 8);
  ASSERT_TRUE(filtered.ok());
  ASSERT_EQ(filtered->size(), 8u);
  EXPECT_EQ(AsU64(*filtered), 77u);
}

TEST(UpdateFunctionsTest, FloatAddOnF32Elements) {
  UpdateFunctionRegistry registry;
  std::vector<uint8_t> value(8);
  const float a = 1.5f;
  const float b = 2.5f;
  std::memcpy(value.data(), &a, 4);
  std::memcpy(value.data() + 4, &b, 4);
  float p = 0.5f;
  uint32_t pbits;
  std::memcpy(&pbits, &p, 4);
  ASSERT_TRUE(registry.ApplyScalarToVector(kFnAddF32, value, pbits, 4).ok());
  float ra;
  float rb;
  std::memcpy(&ra, value.data(), 4);
  std::memcpy(&rb, value.data() + 4, 4);
  EXPECT_FLOAT_EQ(ra, 2.0f);
  EXPECT_FLOAT_EQ(rb, 3.0f);
}

TEST(UpdateFunctionsTest, RejectsBadWidthAndUnknownFunction) {
  UpdateFunctionRegistry registry;
  std::vector<uint8_t> value(10, 0);  // not a multiple of 8
  EXPECT_FALSE(registry.ApplyScalarToVector(kFnAddU64, value, 1, 8).ok());
  std::vector<uint8_t> ok_value(8, 0);
  EXPECT_FALSE(registry.ApplyScalarToVector(999, ok_value, 1, 8).ok());
}

TEST(UpdateFunctionsTest, UserRegisteredFunction) {
  UpdateFunctionRegistry registry;
  registry.RegisterFunction(kFnFirstUserFunction,
                            [](uint64_t e, uint64_t p) { return e * p; });
  std::vector<uint8_t> value = U64Value(6);
  auto r = registry.ApplyScalar(kFnFirstUserFunction, value, 7, 8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(AsU64(value), 42u);
}

// --- KvProcessor timed pipeline ---

TEST(KvProcessorTest, TimedGetReturnsCorrectValueWithLatency) {
  KvDirectServer server(SmallServerConfig());
  ASSERT_TRUE(server.Load(Key(1), U64Value(1234)).ok());

  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key = Key(1);
  bool done = false;
  KvResultMessage result;
  server.Submit(op, [&](KvResultMessage r) {
    done = true;
    result = std::move(r);
  });
  server.simulator().RunUntilIdle();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.code, ResultCode::kOk);
  EXPECT_EQ(AsU64(result.value), 1234u);
  // One inline GET: about a bucket read over PCIe or NIC DRAM -> sub-2 µs.
  const auto& lat = server.processor().stats().latency_ns;
  EXPECT_GT(lat.mean(), 100);
  EXPECT_LT(lat.mean(), 2500);
}

TEST(KvProcessorTest, PipelinedIndependentGetsOverlap) {
  KvDirectServer server(SmallServerConfig());
  for (uint64_t i = 0; i < 512; i++) {
    ASSERT_TRUE(server.Load(Key(i), U64Value(i)).ok());
  }
  int completed = 0;
  const SimTime start = server.simulator().Now();
  for (uint64_t i = 0; i < 512; i++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(i);
    server.Submit(op, [&](KvResultMessage r) {
      EXPECT_EQ(r.code, ResultCode::kOk);
      completed++;
    });
  }
  server.simulator().RunUntilIdle();
  EXPECT_EQ(completed, 512);
  const double elapsed_us =
      static_cast<double>(server.simulator().Now() - start) / kMicrosecond;
  // Serial execution would take 512 x ~1 µs = 512 µs; pipelining must bring
  // this down by an order of magnitude.
  EXPECT_LT(elapsed_us, 60);
}

TEST(KvProcessorTest, SingleKeyAtomicsUseFastPath) {
  KvDirectServer server(SmallServerConfig());
  ASSERT_TRUE(server.Load(Key(7), U64Value(0)).ok());
  constexpr int kOps = 1000;
  int completed = 0;
  uint64_t last_original = 0;
  for (int i = 0; i < kOps; i++) {
    KvOperation op;
    op.opcode = Opcode::kUpdateScalar;
    op.key = Key(7);
    op.param = 1;
    op.function_id = kFnAddU64;
    server.Submit(op, [&](KvResultMessage r) {
      EXPECT_EQ(r.code, ResultCode::kOk);
      last_original = r.scalar;
      completed++;
    });
  }
  server.simulator().RunUntilIdle();
  EXPECT_EQ(completed, kOps);
  EXPECT_EQ(last_original, static_cast<uint64_t>(kOps - 1));  // ordered adds
  // Nearly every op should have been forwarded, not sent to memory.
  EXPECT_GT(server.processor().stats().fast_path_ops, kOps * 9 / 10);
  // Functional state reflects all increments.
  KvOperation get;
  get.opcode = Opcode::kGet;
  get.key = Key(7);
  EXPECT_EQ(AsU64(server.Execute(get).value), static_cast<uint64_t>(kOps));
}

TEST(KvProcessorTest, StallModeIsMuchSlowerOnSingleKey) {
  auto run = [](bool enable_ooo) {
    ServerConfig config = SmallServerConfig();
    config.processor.ooo.enable_out_of_order = enable_ooo;
    KvDirectServer server(config);
    EXPECT_TRUE(server.Load(Key(7), U64Value(0)).ok());
    constexpr int kOps = 300;
    int completed = 0;
    for (int i = 0; i < kOps; i++) {
      KvOperation op;
      op.opcode = Opcode::kUpdateScalar;
      op.key = Key(7);
      op.param = 1;
      op.function_id = kFnAddU64;
      server.Submit(op, [&](KvResultMessage) { completed++; });
    }
    server.simulator().RunUntilIdle();
    EXPECT_EQ(completed, kOps);
    return server.simulator().Now();
  };
  const SimTime with_ooo = run(true);
  const SimTime without_ooo = run(false);
  EXPECT_GT(without_ooo, with_ooo * 20);  // paper: 191x at full scale
}

TEST(KvProcessorTest, DependentOpsSeeEachOthersEffects) {
  KvDirectServer server(SmallServerConfig());
  ASSERT_TRUE(server.Load(Key(1), U64Value(10)).ok());
  std::vector<uint64_t> get_results;
  for (int round = 0; round < 5; round++) {
    KvOperation put;
    put.opcode = Opcode::kPut;
    put.key = Key(1);
    put.value = U64Value(100 + round);
    server.Submit(put, [](KvResultMessage) {});
    KvOperation get;
    get.opcode = Opcode::kGet;
    get.key = Key(1);
    server.Submit(get, [&](KvResultMessage r) { get_results.push_back(AsU64(r.value)); });
  }
  server.simulator().RunUntilIdle();
  ASSERT_EQ(get_results.size(), 5u);
  for (int round = 0; round < 5; round++) {
    EXPECT_EQ(get_results[round], 100u + round);  // GET sees preceding PUT
  }
}

TEST(KvProcessorTest, BacklogDrainsUnderCapacityPressure) {
  ServerConfig config = SmallServerConfig();
  config.processor.ooo.max_inflight = 16;
  KvDirectServer server(config);
  for (uint64_t i = 0; i < 64; i++) {
    ASSERT_TRUE(server.Load(Key(i), U64Value(i)).ok());
  }
  int completed = 0;
  for (uint64_t i = 0; i < 2000; i++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(i % 64);
    server.Submit(op, [&](KvResultMessage) { completed++; });
  }
  server.simulator().RunUntilIdle();
  EXPECT_EQ(completed, 2000);
  EXPECT_EQ(server.processor().backlog(), 0u);
}

// --- full client/server path ---

TEST(ClientTest, SyncOperationsRoundTrip) {
  KvDirectServer server(SmallServerConfig());
  Client client(server);
  ASSERT_TRUE(client.Put(Key(1), U64Value(11)).ok());
  auto got = client.Get(Key(1));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(AsU64(*got), 11u);
  ASSERT_TRUE(client.Delete(Key(1)).ok());
  EXPECT_EQ(client.Get(Key(1)).status().code(), StatusCode::kNotFound);
}

TEST(ClientTest, FetchAddThroughNetwork) {
  KvDirectServer server(SmallServerConfig());
  Client client(server);
  ASSERT_TRUE(client.Put(Key(5), U64Value(100)).ok());
  auto original = client.Update(Key(5), 7);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(*original, 100u);
  auto now = client.Get(Key(5));
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(AsU64(*now), 107u);
}

TEST(ClientTest, VectorOperationsEndToEnd) {
  ServerConfig config = SmallServerConfig();
  // Six slab classes (the 3-bit slot type maximum): 128..4096 B.
  config.min_slab_bytes = 128;
  config.max_slab_bytes = 4096;
  KvDirectServer server(config);
  Client client(server);
  // A 16-element u64 vector.
  std::vector<uint8_t> vec(128, 0);
  for (uint64_t i = 0; i < 16; i++) {
    std::memcpy(vec.data() + i * 8, &i, 8);
  }
  ASSERT_TRUE(client.Put(Key(9), vec).ok());

  // update_scalar2vector: add 100 to all, returns the original.
  auto original = client.UpdateVectorWithScalar(Key(9), 100, kFnAddU64, 8);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(*original, vec);

  // reduce: sum of 100..115 = 16*100 + 120.
  auto sum = client.Reduce(Key(9), 0, kFnAddU64, 8);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 16u * 100 + 120);

  // filter: elements > 110 -> 111..115.
  auto filtered = client.Filter(Key(9), 110, kFnGreater, 8);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->size(), 5u * 8);
}

TEST(ClientTest, BatchFlushPreservesOrderAcrossPackets) {
  KvDirectServer server(SmallServerConfig());
  Client::Options options;
  options.batch_payload_bytes = 256;  // force multiple packets
  Client client(server, options);
  constexpr uint64_t kOps = 200;
  for (uint64_t i = 0; i < kOps; i++) {
    KvOperation op;
    op.opcode = Opcode::kPut;
    op.key = Key(i);
    op.value = U64Value(i * 3);
    client.Enqueue(std::move(op));
  }
  auto put_results = client.Flush();
  ASSERT_EQ(put_results.size(), kOps);
  EXPECT_GT(client.packets_sent(), 5u);
  for (uint64_t i = 0; i < kOps; i++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(i);
    client.Enqueue(std::move(op));
  }
  auto get_results = client.Flush();
  ASSERT_EQ(get_results.size(), kOps);
  for (uint64_t i = 0; i < kOps; i++) {
    EXPECT_EQ(get_results[i].code, ResultCode::kOk);
    EXPECT_EQ(AsU64(get_results[i].value), i * 3);
  }
}

TEST(ClientTest, BatchingImprovesNetworkBoundThroughput) {
  // GETs of inline 40 B values: one PCIe read each, so the per-packet 88 B
  // header overhead — not the memory system — limits the unbatched run
  // (paper Figure 15). The batched run amortizes it.
  auto run = [](uint32_t batch_payload, uint64_t ops, uint64_t* wire_bytes) {
    ServerConfig config = SmallServerConfig();
    config.inline_threshold_bytes = 48;
    KvDirectServer server(config);
    for (uint64_t i = 0; i < 256; i++) {
      std::vector<uint8_t> value(40, static_cast<uint8_t>(i));
      EXPECT_TRUE(server.Load(Key(i), value).ok());
    }
    Client::Options options;
    if (batch_payload == 1) {
      options.max_ops_per_packet = 1;  // no batching: one op per packet
    } else {
      options.batch_payload_bytes = batch_payload;
    }
    Client client(server, options);
    for (uint64_t i = 0; i < ops; i++) {
      KvOperation op;
      op.opcode = Opcode::kGet;
      op.key = Key(i % 256);
      client.Enqueue(std::move(op));
    }
    const SimTime start = server.simulator().Now();
    client.Flush();
    *wire_bytes = server.network().bytes_to_server() + server.network().bytes_to_client();
    return server.simulator().Now() - start;
  };
  uint64_t batched_bytes = 0;
  uint64_t tiny_bytes = 0;
  const SimTime batched = run(4096, 2000, &batched_bytes);
  const SimTime tiny_packets = run(1, 2000, &tiny_bytes);
  EXPECT_LT(batched * 3 / 2, tiny_packets);
  EXPECT_LT(batched_bytes * 2, tiny_bytes);  // header amortization
}

TEST(ServerConfigTest, AutoTuneInlineVsNonInline) {
  ServerConfig small;
  small.AutoTune(10, false);
  EXPECT_EQ(small.inline_threshold_bytes, 10u);
  EXPECT_GT(small.hash_index_ratio, 0.8);

  ServerConfig big;
  big.AutoTune(254, false);
  EXPECT_LT(big.hash_index_ratio, 0.1);
  EXPECT_GE(big.dispatch_ratio, 0.0);
  EXPECT_LE(big.dispatch_ratio, 1.0);
}

}  // namespace
}  // namespace kvd
