// Tests for the NIC DRAM model and the load dispatcher (paper §3.3.4).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/common/hashing.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/dram/load_dispatcher.h"
#include "src/dram/nic_dram.h"
#include "src/pcie/dma_engine.h"
#include "src/sim/simulator.h"

namespace kvd {
namespace {

struct Rig {
  Simulator sim;
  DmaEngine dma;
  NicDram dram;

  explicit Rig(NicDramConfig dram_config = {})
      : dma(sim, DmaEngineConfig{}), dram(sim, dram_config) {}
};

TEST(NicDramTest, LatencyAndSerialization) {
  Rig rig;
  SimTime first = 0;
  SimTime second = 0;
  rig.dram.Access(64, [&] { first = rig.sim.Now(); });
  rig.dram.Access(64, [&] { second = rig.sim.Now(); });
  rig.sim.RunUntilIdle();
  // 64 B at 12.8 GB/s x 0.6 random efficiency = 8.3 ns occupancy + 120 ns
  // latency.
  EXPECT_NEAR(static_cast<double>(first), 128.3 * kNanosecond, 0.2 * kNanosecond);
  // Second access starts only after the first vacates the channel.
  EXPECT_NEAR(static_cast<double>(second), 136.7 * kNanosecond, 0.2 * kNanosecond);
  EXPECT_EQ(rig.dram.bytes_transferred(), 128u);
}

TEST(LoadDispatcherTest, PcieOnlyPolicyNeverTouchesDram) {
  Rig rig;
  LoadDispatcherConfig config;
  config.policy = DispatchPolicy::kPcieOnly;
  config.host_memory_bytes = 1 * kGiB;
  LoadDispatcher dispatcher(rig.sim, rig.dma, rig.dram, config);
  for (uint64_t i = 0; i < 100; i++) {
    dispatcher.Access(AccessKind::kRead, i * 64, 64, [] {});
  }
  rig.sim.RunUntilIdle();
  EXPECT_EQ(dispatcher.stats().pcie_accesses, 100u);
  EXPECT_EQ(rig.dram.accesses(), 0u);
}

TEST(LoadDispatcherTest, DispatchRatioSelectsExpectedFraction) {
  Rig rig;
  LoadDispatcherConfig config;
  config.policy = DispatchPolicy::kHybrid;
  config.dispatch_ratio = 0.5;
  config.host_memory_bytes = 1 * kGiB;
  LoadDispatcher dispatcher(rig.sim, rig.dma, rig.dram, config);
  constexpr int kAccesses = 20000;
  for (int i = 0; i < kAccesses; i++) {
    dispatcher.Access(AccessKind::kRead, static_cast<uint64_t>(i) * 64, 64, [] {});
  }
  rig.sim.RunUntilIdle();
  const auto& stats = dispatcher.stats();
  const uint64_t cacheable = stats.dram_hits + stats.dram_misses;
  EXPECT_NEAR(static_cast<double>(cacheable) / kAccesses, 0.5, 0.02);
}

TEST(LoadDispatcherTest, RepeatedAccessHitsAfterFill) {
  Rig rig;
  LoadDispatcherConfig config;
  config.policy = DispatchPolicy::kCacheAll;
  config.host_memory_bytes = 1 * kGiB;
  LoadDispatcher dispatcher(rig.sim, rig.dma, rig.dram, config);
  dispatcher.Access(AccessKind::kRead, 4096, 64, [] {});
  rig.sim.RunUntilIdle();
  EXPECT_EQ(dispatcher.stats().dram_misses, 1u);
  dispatcher.Access(AccessKind::kRead, 4096, 64, [] {});
  rig.sim.RunUntilIdle();
  EXPECT_EQ(dispatcher.stats().dram_hits, 1u);
}

TEST(LoadDispatcherTest, DirtyEvictionCausesWriteback) {
  Rig rig;
  LoadDispatcherConfig config;
  config.policy = DispatchPolicy::kCacheAll;
  config.host_memory_bytes = 1 * kGiB;
  config.nic_dram_bytes = 64 * 16;  // 16-line cache for easy conflicts
  LoadDispatcher dispatcher(rig.sim, rig.dma, rig.dram, config);
  // Write line 0, then touch the conflicting line 16 (same slot).
  dispatcher.Access(AccessKind::kWrite, 0, 64, [] {});
  dispatcher.Access(AccessKind::kRead, 16 * 64, 64, [] {});
  rig.sim.RunUntilIdle();
  EXPECT_EQ(dispatcher.stats().writebacks, 1u);
}

TEST(LoadDispatcherTest, CleanEvictionCausesNoWriteback) {
  Rig rig;
  LoadDispatcherConfig config;
  config.policy = DispatchPolicy::kCacheAll;
  config.host_memory_bytes = 1 * kGiB;
  config.nic_dram_bytes = 64 * 16;
  LoadDispatcher dispatcher(rig.sim, rig.dma, rig.dram, config);
  dispatcher.Access(AccessKind::kRead, 0, 64, [] {});
  dispatcher.Access(AccessKind::kRead, 16 * 64, 64, [] {});
  rig.sim.RunUntilIdle();
  EXPECT_EQ(dispatcher.stats().writebacks, 0u);
}

TEST(LoadDispatcherTest, FixedPartitionAlwaysHitsInPinnedRange) {
  Rig rig;
  LoadDispatcherConfig config;
  config.policy = DispatchPolicy::kFixedPartition;
  config.dispatch_ratio = 0.25;
  config.host_memory_bytes = 1 * kGiB;
  LoadDispatcher dispatcher(rig.sim, rig.dma, rig.dram, config);
  // Addresses below 256 MiB are pinned; above go to PCIe.
  dispatcher.Access(AccessKind::kRead, 1 * kMiB, 64, [] {});
  dispatcher.Access(AccessKind::kRead, 512 * kMiB, 64, [] {});
  rig.sim.RunUntilIdle();
  EXPECT_EQ(dispatcher.stats().dram_hits, 1u);
  EXPECT_EQ(dispatcher.stats().pcie_accesses, 1u);
  EXPECT_EQ(dispatcher.stats().dram_misses, 0u);
}

TEST(LoadDispatcherTest, MultiLineAccessIsOneDispatch) {
  Rig rig;
  LoadDispatcherConfig config;
  config.policy = DispatchPolicy::kCacheAll;
  config.host_memory_bytes = 1 * kGiB;
  LoadDispatcher dispatcher(rig.sim, rig.dma, rig.dram, config);
  dispatcher.Access(AccessKind::kRead, 0, 256, [] {});  // 4 lines
  rig.sim.RunUntilIdle();
  EXPECT_EQ(dispatcher.stats().total(), 1u);
  dispatcher.Access(AccessKind::kRead, 0, 256, [] {});
  rig.sim.RunUntilIdle();
  EXPECT_EQ(dispatcher.stats().dram_hits, 1u);  // all 4 lines present
}

TEST(OptimalDispatchRatioTest, UniformWorkloadPrefersHighRatio) {
  // With DRAM nearly as fast as PCIe and a tiny cache (k = 1/16), uniform
  // workloads gain little from caching: optimal l routes roughly half the
  // load to DRAM (paper: l ~ 0.5 used in Figure 14).
  const double l = LoadDispatcher::OptimalDispatchRatio(13.2e9, 12.8e9, 1.0 / 16,
                                                        /*long_tail=*/false);
  EXPECT_GT(l, 0.4);
  EXPECT_LT(l, 0.75);
}

TEST(OptimalDispatchRatioTest, LongTailToleratesLargerRatio) {
  // Zipf hit rates stay high as l grows, so more load can shift to DRAM.
  const double uniform = LoadDispatcher::OptimalDispatchRatio(13.2e9, 12.8e9,
                                                              1.0 / 16, false);
  const double long_tail = LoadDispatcher::OptimalDispatchRatio(13.2e9, 12.8e9,
                                                                1.0 / 16, true);
  EXPECT_GT(long_tail, uniform);
  EXPECT_LE(long_tail, 1.0);
}

TEST(OptimalDispatchRatioTest, SlowDramPushesLoadToPcie) {
  const double fast = LoadDispatcher::OptimalDispatchRatio(13.2e9, 12.8e9,
                                                           1.0 / 16, false);
  const double slow = LoadDispatcher::OptimalDispatchRatio(13.2e9, 3.2e9,
                                                           1.0 / 16, false);
  EXPECT_LT(slow, fast);
}

// Paper §3.3.4: "the cache hit probability is as high as 0.7 with 100M cache
// in 10G corpus" under the long-tail approximation h(l)=log(kn)/log(ln).
TEST(OptimalDispatchRatioTest, PaperHitRateExample) {
  const double k = 0.01;       // 100M / 10G
  const double n = 1e10 / 64;  // corpus keys (ratio is what matters)
  const double h = std::log(k * n) / std::log(1.0 * n);
  EXPECT_NEAR(h, 0.75, 0.05);
}

}  // namespace
}  // namespace kvd
