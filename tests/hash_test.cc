// Tests for the bucket layout and the chained hash index (paper §3.3.1).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/alloc/slab_allocator.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/hash/hash_index.h"
#include "src/hash/hash_index_layout.h"
#include "src/mem/access_engine.h"
#include "src/mem/host_memory.h"

namespace kvd {
namespace {

std::vector<uint8_t> MakeKey(uint64_t id, size_t len = 8) {
  std::vector<uint8_t> key(len, 0);
  std::memcpy(key.data(), &id, std::min(len, sizeof(id)));
  return key;
}

std::vector<uint8_t> MakeValue(uint8_t fill, size_t len) {
  return std::vector<uint8_t>(len, fill);
}

TEST(BucketViewTest, EmptyBucketHasTenFreeSlots) {
  BucketView bucket;
  EXPECT_EQ(bucket.FreeSlots(), kSlotsPerBucket);
  EXPECT_FALSE(bucket.HasChain());
  for (uint32_t s = 0; s < kSlotsPerBucket; s++) {
    EXPECT_EQ(bucket.SlotType(s), kSlotEmpty);
  }
}

TEST(BucketViewTest, PointerSlotRoundTrip) {
  BucketView bucket;
  bucket.SetPointerSlot(3, 0x12340 * 32, 0x1ab, 2);
  EXPECT_EQ(bucket.SlotType(3), 3);  // class 2 -> type 3
  const PointerSlot slot = bucket.GetPointerSlot(3);
  EXPECT_EQ(slot.address, 0x12340ull * 32);
  EXPECT_EQ(slot.secondary_hash, 0x1ab);
  EXPECT_EQ(slot.slab_class, 2);
  EXPECT_EQ(bucket.FreeSlots(), kSlotsPerBucket - 1);
}

TEST(BucketViewTest, AdjacentSlotsDoNotInterfere) {
  BucketView bucket;
  bucket.SetPointerSlot(0, 32 * 1, 0x155, 0);
  bucket.SetPointerSlot(1, 32 * 2, 0x0aa, 1);
  bucket.SetPointerSlot(9, 32 * 3, 0x1ff, 4);
  EXPECT_EQ(bucket.GetPointerSlot(0).address, 32u * 1);
  EXPECT_EQ(bucket.GetPointerSlot(0).secondary_hash, 0x155);
  EXPECT_EQ(bucket.GetPointerSlot(1).address, 32u * 2);
  EXPECT_EQ(bucket.GetPointerSlot(1).secondary_hash, 0x0aa);
  EXPECT_EQ(bucket.GetPointerSlot(9).address, 32u * 3);
  EXPECT_EQ(bucket.GetPointerSlot(9).secondary_hash, 0x1ff);
}

TEST(BucketViewTest, InlineBytesSpanSlots) {
  BucketView bucket;
  std::vector<uint8_t> data = {9, 3, 'k', 'e', 'y', 'k', 'e', 'y', 'k', 'e', 'y',
                               'v', 'a', 'l'};
  bucket.WriteInlineBytes(2, data);
  bucket.SetInlineBegin(2, true);
  for (uint32_t s = 2; s < 2 + 3; s++) {
    bucket.SetSlotType(s, kSlotInline);
  }
  std::vector<uint8_t> read(data.size());
  bucket.ReadInlineBytes(2, read);
  EXPECT_EQ(read, data);
  EXPECT_TRUE(bucket.InlineBegin(2));
  EXPECT_FALSE(bucket.InlineBegin(3));
}

TEST(BucketViewTest, ChainRoundTrip) {
  BucketView bucket;
  bucket.SetChain(4096);
  EXPECT_TRUE(bucket.HasChain());
  EXPECT_EQ(bucket.ChainAddress(), 4096u);
  bucket.ClearChain();
  EXPECT_FALSE(bucket.HasChain());
}

TEST(BucketViewTest, ChainDoesNotClobberSlots) {
  BucketView bucket;
  bucket.SetPointerSlot(9, 32 * 99, 0x123, 1);
  bucket.SetChain(64 * 1000);
  EXPECT_EQ(bucket.GetPointerSlot(9).address, 32u * 99);
  EXPECT_EQ(bucket.GetPointerSlot(9).secondary_hash, 0x123);
}

TEST(BucketViewTest, InlineSlotSpan) {
  EXPECT_EQ(BucketView::InlineSlotSpan(3), 1u);   // 2 + 3 = 5 bytes
  EXPECT_EQ(BucketView::InlineSlotSpan(8), 2u);   // 10 bytes
  EXPECT_EQ(BucketView::InlineSlotSpan(10), 3u);  // 12 bytes
  EXPECT_EQ(BucketView::InlineSlotSpan(48), 10u); // 50 bytes: whole bucket
}

TEST(BucketViewTest, RawRoundTripThroughMemory) {
  BucketView bucket;
  bucket.SetPointerSlot(4, 32 * 7, 0x0f0, 3);
  bucket.SetChain(128);
  BucketView copy(bucket.raw());
  EXPECT_EQ(copy.GetPointerSlot(4).address, 32u * 7);
  EXPECT_EQ(copy.ChainAddress(), 128u);
}

// --- HashIndex fixture ---

struct IndexRig {
  HostMemory memory;
  DirectEngine engine;
  SlabAllocator allocator;
  HashIndex index;

  static SlabConfig MakeSlabConfig(const HashIndexConfig& config) {
    const auto regions = config.ComputeRegions();
    SlabConfig slab;
    slab.region_base = regions.heap_base;
    slab.region_size = regions.heap_size;
    slab.max_slab_bytes = config.max_slab_bytes;
    return slab;
  }

  explicit IndexRig(const HashIndexConfig& config)
      : memory(config.memory_base + config.memory_size),
        engine(memory),
        allocator(MakeSlabConfig(config)),
        index(engine, allocator, config) {}
};

HashIndexConfig SmallIndexConfig() {
  HashIndexConfig config;
  config.memory_size = 1 * kMiB;
  config.hash_index_ratio = 0.5;
  config.inline_threshold_bytes = 16;
  return config;
}

TEST(HashIndexTest, RegionsPartitionMemory) {
  HashIndexConfig config = SmallIndexConfig();
  const auto regions = config.ComputeRegions();
  EXPECT_EQ(regions.num_buckets, 1 * kMiB / 2 / 64);
  EXPECT_GE(regions.heap_base, regions.index_base + regions.num_buckets * 64);
  EXPECT_EQ(regions.heap_base % config.max_slab_bytes, 0u);
  EXPECT_LE(regions.heap_base + regions.heap_size, config.memory_size);
}

TEST(HashIndexTest, GetMissingKeyReturnsNotFound) {
  IndexRig rig(SmallIndexConfig());
  std::vector<uint8_t> value;
  EXPECT_EQ(rig.index.Get(MakeKey(1), value).code(), StatusCode::kNotFound);
}

TEST(HashIndexTest, InlinePutGetRoundTrip) {
  IndexRig rig(SmallIndexConfig());
  const auto key = MakeKey(42);
  const auto value = MakeValue(0xab, 8);  // kv = 16 <= inline threshold
  ASSERT_TRUE(rig.index.Put(key, value).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.index.Get(key, out).ok());
  EXPECT_EQ(out, value);
  EXPECT_EQ(rig.index.num_kvs(), 1u);
}

TEST(HashIndexTest, NonInlinePutGetRoundTrip) {
  IndexRig rig(SmallIndexConfig());
  const auto key = MakeKey(42);
  const auto value = MakeValue(0xcd, 200);
  ASSERT_TRUE(rig.index.Put(key, value).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.index.Get(key, out).ok());
  EXPECT_EQ(out, value);
}

TEST(HashIndexTest, OverwriteInlineSameSpan) {
  IndexRig rig(SmallIndexConfig());
  const auto key = MakeKey(7);
  ASSERT_TRUE(rig.index.Put(key, MakeValue(1, 8)).ok());
  ASSERT_TRUE(rig.index.Put(key, MakeValue(2, 7)).ok());  // same slot span
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.index.Get(key, out).ok());
  EXPECT_EQ(out, MakeValue(2, 7));
  EXPECT_EQ(rig.index.num_kvs(), 1u);
}

TEST(HashIndexTest, OverwriteChangesShapeInlineToSlab) {
  IndexRig rig(SmallIndexConfig());
  const auto key = MakeKey(7);
  ASSERT_TRUE(rig.index.Put(key, MakeValue(1, 4)).ok());   // inline
  ASSERT_TRUE(rig.index.Put(key, MakeValue(2, 100)).ok()); // slab
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.index.Get(key, out).ok());
  EXPECT_EQ(out, MakeValue(2, 100));
  ASSERT_TRUE(rig.index.Put(key, MakeValue(3, 4)).ok());   // back to inline
  ASSERT_TRUE(rig.index.Get(key, out).ok());
  EXPECT_EQ(out, MakeValue(3, 4));
  EXPECT_EQ(rig.index.num_kvs(), 1u);
}

TEST(HashIndexTest, OverwriteSlabSameClassInPlace) {
  IndexRig rig(SmallIndexConfig());
  const auto key = MakeKey(9);
  ASSERT_TRUE(rig.index.Put(key, MakeValue(1, 100)).ok());
  const AccessStats before = rig.engine.stats();
  ASSERT_TRUE(rig.index.Put(key, MakeValue(2, 101)).ok());  // same 128 B class
  const AccessStats delta = rig.engine.stats() - before;
  // Find (bucket read + slab read) + in-place slab write: no bucket write.
  EXPECT_EQ(delta.writes, 1u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.index.Get(key, out).ok());
  EXPECT_EQ(out, MakeValue(2, 101));
}

TEST(HashIndexTest, DeleteInline) {
  IndexRig rig(SmallIndexConfig());
  const auto key = MakeKey(1);
  ASSERT_TRUE(rig.index.Put(key, MakeValue(5, 8)).ok());
  ASSERT_TRUE(rig.index.Delete(key).ok());
  std::vector<uint8_t> out;
  EXPECT_EQ(rig.index.Get(key, out).code(), StatusCode::kNotFound);
  EXPECT_EQ(rig.index.num_kvs(), 0u);
  EXPECT_EQ(rig.index.payload_bytes(), 0u);
}

TEST(HashIndexTest, DeleteNonInlineFreesSlab) {
  IndexRig rig(SmallIndexConfig());
  const auto key = MakeKey(1);
  const uint64_t free_before = rig.allocator.FreeBytes();
  ASSERT_TRUE(rig.index.Put(key, MakeValue(5, 200)).ok());
  EXPECT_LT(rig.allocator.FreeBytes(), free_before);
  ASSERT_TRUE(rig.index.Delete(key).ok());
  EXPECT_EQ(rig.allocator.FreeBytes(), free_before);
}

TEST(HashIndexTest, DeleteMissingReturnsNotFound) {
  IndexRig rig(SmallIndexConfig());
  EXPECT_EQ(rig.index.Delete(MakeKey(404)).code(), StatusCode::kNotFound);
}

TEST(HashIndexTest, UpdateInPlacePreservesSizeAndReturnsOriginal) {
  IndexRig rig(SmallIndexConfig());
  const auto key = MakeKey(3);
  std::vector<uint8_t> value = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(rig.index.Put(key, value).ok());
  std::vector<uint8_t> original;
  ASSERT_TRUE(rig.index
                  .UpdateInPlace(
                      key, [](std::vector<uint8_t>& v) { v[0] = 99; }, &original)
                  .ok());
  EXPECT_EQ(original, value);
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.index.Get(key, out).ok());
  EXPECT_EQ(out[0], 99);
}

TEST(HashIndexTest, InlineGetCostsOneAccessPutCostsTwo) {
  HashIndexConfig config = SmallIndexConfig();
  config.inline_threshold_bytes = 16;
  IndexRig rig(config);
  const auto key = MakeKey(11);
  const auto value = MakeValue(1, 8);

  AccessStats before = rig.engine.stats();
  ASSERT_TRUE(rig.index.Put(key, value).ok());
  AccessStats delta = rig.engine.stats() - before;
  EXPECT_EQ(delta.total(), 2u);  // bucket read + bucket write

  before = rig.engine.stats();
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.index.Get(key, out).ok());
  delta = rig.engine.stats() - before;
  EXPECT_EQ(delta.total(), 1u);  // bucket read only
}

TEST(HashIndexTest, NonInlineAddsOneAccess) {
  IndexRig rig(SmallIndexConfig());
  const auto key = MakeKey(11);
  const auto value = MakeValue(1, 100);

  AccessStats before = rig.engine.stats();
  ASSERT_TRUE(rig.index.Put(key, value).ok());
  AccessStats delta = rig.engine.stats() - before;
  EXPECT_EQ(delta.total(), 3u);  // slab write + bucket read + bucket write

  before = rig.engine.stats();
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.index.Get(key, out).ok());
  delta = rig.engine.stats() - before;
  EXPECT_EQ(delta.total(), 2u);  // bucket read + slab read
}

TEST(HashIndexTest, ChainingKeepsAllKeysReachable) {
  // Tiny index: 16 buckets, thousands of keys -> deep chains.
  HashIndexConfig config;
  config.memory_size = 256 * kKiB;
  config.hash_index_ratio = 16.0 * 64 / (256 * kKiB);
  config.inline_threshold_bytes = 10;
  IndexRig rig(config);
  ASSERT_EQ(rig.index.num_buckets(), 16u);
  constexpr uint64_t kKeys = 2000;
  for (uint64_t i = 0; i < kKeys; i++) {
    ASSERT_TRUE(rig.index.Put(MakeKey(i), MakeValue(static_cast<uint8_t>(i), 2)).ok())
        << i;
  }
  EXPECT_GT(rig.index.stats().chained_buckets_live, 100u);
  std::vector<uint8_t> out;
  for (uint64_t i = 0; i < kKeys; i++) {
    ASSERT_TRUE(rig.index.Get(MakeKey(i), out).ok()) << i;
    EXPECT_EQ(out, MakeValue(static_cast<uint8_t>(i), 2));
  }
}

TEST(HashIndexTest, DeletionUnlinksEmptyChainedBuckets) {
  HashIndexConfig config;
  config.memory_size = 256 * kKiB;
  config.hash_index_ratio = 16.0 * 64 / (256 * kKiB);
  config.inline_threshold_bytes = 10;
  IndexRig rig(config);
  constexpr uint64_t kKeys = 2000;
  for (uint64_t i = 0; i < kKeys; i++) {
    ASSERT_TRUE(rig.index.Put(MakeKey(i), MakeValue(1, 2)).ok());
  }
  const uint64_t chained_at_peak = rig.index.stats().chained_buckets_live;
  for (uint64_t i = 0; i < kKeys; i++) {
    ASSERT_TRUE(rig.index.Delete(MakeKey(i)).ok()) << i;
  }
  EXPECT_EQ(rig.index.num_kvs(), 0u);
  EXPECT_LT(rig.index.stats().chained_buckets_live, chained_at_peak / 4);
}

TEST(HashIndexTest, UtilizationTracksPayload) {
  IndexRig rig(SmallIndexConfig());
  ASSERT_TRUE(rig.index.Put(MakeKey(1), MakeValue(1, 8)).ok());    // kv = 16
  ASSERT_TRUE(rig.index.Put(MakeKey(2), MakeValue(1, 120)).ok());  // kv = 128
  EXPECT_EQ(rig.index.payload_bytes(), 16u + 128u);
  EXPECT_DOUBLE_EQ(rig.index.Utilization(),
                   static_cast<double>(16 + 128) / (1 * kMiB));
}

TEST(HashIndexTest, FillsToHighUtilizationBeforeOom) {
  HashIndexConfig config;
  config.memory_size = 512 * kKiB;
  config.hash_index_ratio = 0.05;  // mostly heap: 254 B KVs
  config.inline_threshold_bytes = 10;
  IndexRig rig(config);
  uint64_t i = 0;
  while (true) {
    const Status status = rig.index.Put(MakeKey(i), MakeValue(1, 244));
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kOutOfMemory);
      break;
    }
    i++;
  }
  // 254 B KVs in 256 B slabs: utilization can approach 254/256 of the heap
  // fraction; require at least 70% overall.
  EXPECT_GT(rig.index.Utilization(), 0.7);
}

TEST(HashIndexTest, RandomizedAgainstReferenceMap) {
  HashIndexConfig config;
  config.memory_size = 2 * kMiB;
  config.hash_index_ratio = 0.3;
  config.inline_threshold_bytes = 20;
  IndexRig rig(config);
  std::map<std::string, std::vector<uint8_t>> reference;
  Rng rng(2024);
  for (int op = 0; op < 20000; op++) {
    const uint64_t id = rng.NextBelow(500);
    const auto key = MakeKey(id, 8);
    const std::string key_str(key.begin(), key.end());
    const uint32_t action = static_cast<uint32_t>(rng.NextBelow(10));
    if (action < 5) {  // PUT with a random size: inline and slab both covered
      const size_t len = 1 + rng.NextBelow(300);
      const auto value = MakeValue(static_cast<uint8_t>(rng.Next()), len);
      ASSERT_TRUE(rig.index.Put(key, value).ok());
      reference[key_str] = value;
    } else if (action < 8) {  // GET
      std::vector<uint8_t> out;
      const Status status = rig.index.Get(key, out);
      auto it = reference.find(key_str);
      if (it == reference.end()) {
        EXPECT_EQ(status.code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(status.ok());
        EXPECT_EQ(out, it->second);
      }
    } else {  // DELETE
      const Status status = rig.index.Delete(key);
      EXPECT_EQ(status.ok(), reference.erase(key_str) > 0);
    }
  }
  EXPECT_EQ(rig.index.num_kvs(), reference.size());
  // Final sweep: everything in the reference is retrievable.
  for (const auto& [key_str, value] : reference) {
    std::vector<uint8_t> out;
    const std::vector<uint8_t> key(key_str.begin(), key_str.end());
    ASSERT_TRUE(rig.index.Get(key, out).ok());
    EXPECT_EQ(out, value);
  }
}

// Parameterized sweep: round trip across the inline/non-inline boundary.
class KvSizeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(KvSizeSweepTest, RoundTripAtSize) {
  HashIndexConfig config = SmallIndexConfig();
  config.inline_threshold_bytes = 25;
  IndexRig rig(config);
  const size_t value_len = static_cast<size_t>(GetParam());
  for (uint64_t i = 0; i < 200; i++) {
    ASSERT_TRUE(
        rig.index.Put(MakeKey(i), MakeValue(static_cast<uint8_t>(i), value_len)).ok());
  }
  std::vector<uint8_t> out;
  for (uint64_t i = 0; i < 200; i++) {
    ASSERT_TRUE(rig.index.Get(MakeKey(i), out).ok());
    EXPECT_EQ(out, MakeValue(static_cast<uint8_t>(i), value_len));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KvSizeSweepTest,
                         ::testing::Values(1, 2, 7, 8, 16, 17, 24, 40, 54, 100, 246,
                                           500));

}  // namespace
}  // namespace kvd
