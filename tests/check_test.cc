// Consistency check harness (src/check): hand-crafted known-good and
// known-bad histories against the linearizability checker (stale read, lost
// acked write, duplicated fetch-add, ambiguous-timeout both ways), the
// session-guarantee auditors' pinpoint reports, the history recorder behind
// KvEndpoint, fault-script generation determinism, greedy script shrinking,
// and the nemesis regression: a deliberately re-introduced migration
// lost-update bug must be caught by the seed matrix and shrunk to a tiny
// reproducer.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/check/history.h"
#include "src/check/linearizability.h"
#include "src/check/nemesis.h"
#include "src/check/session_audit.h"
#include "src/common/units.h"
#include "src/core/kv_direct.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

KvOperation GetOp(uint64_t id) {
  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key = Key(id);
  return op;
}

KvOperation PutOp(uint64_t id, uint64_t v) {
  KvOperation op;
  op.opcode = Opcode::kPut;
  op.key = Key(id);
  op.value = U64Value(v);
  return op;
}

KvOperation DeleteOp(uint64_t id) {
  KvOperation op;
  op.opcode = Opcode::kDelete;
  op.key = Key(id);
  return op;
}

KvOperation AddOp(uint64_t id, uint64_t delta) {
  KvOperation op;
  op.opcode = Opcode::kUpdateScalar;
  op.key = Key(id);
  op.param = delta;
  op.function_id = kFnAddU64;
  return op;
}

KvResultMessage Ok() {
  return KvResultMessage{};
}

KvResultMessage OkValue(uint64_t v) {
  KvResultMessage result;
  result.value = U64Value(v);
  return result;
}

KvResultMessage OkScalar(uint64_t original) {
  KvResultMessage result;
  result.scalar = original;
  return result;
}

KvResultMessage Code(ResultCode code) {
  KvResultMessage result;
  result.code = code;
  return result;
}

size_t Record(History& h, uint64_t session, SimTime invoke, SimTime ret,
              KvOperation op, KvResultMessage result) {
  HistoryOp rec;
  rec.session = session;
  rec.op_in_session = h.ops.size();
  rec.invoke = invoke;
  rec.ret = ret;
  rec.returned = true;
  rec.op = std::move(op);
  rec.result = std::move(result);
  h.ops.push_back(std::move(rec));
  return h.ops.size() - 1;
}

CheckOptions WithInitial(uint64_t id, uint64_t value) {
  CheckOptions options;
  options.initial_values[Key(id)] = U64Value(value);
  return options;
}

// --- linearizability checker: known-good histories ---

TEST(LinearizabilityTest, SequentialCounterHistoryPasses) {
  History h;
  Record(h, 0, 0, 10, AddOp(1, 5), OkScalar(100));
  Record(h, 0, 20, 30, AddOp(1, 3), OkScalar(105));
  Record(h, 0, 40, 50, GetOp(1), OkValue(108));
  const CheckReport report = CheckLinearizability(h, WithInitial(1, 100));
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.keys_checked, 1u);
  EXPECT_EQ(report.ops_checked, 3u);
}

TEST(LinearizabilityTest, ConcurrentAddsLinearizeInTheConsistentOrder) {
  // Two overlapping fetch-adds from different sessions: the observed
  // originals admit exactly one order (s0 first), and the checker must find
  // it even though s1's op sorts first by no criterion.
  History h;
  Record(h, 0, 0, 100, AddOp(1, 5), OkScalar(100));
  Record(h, 1, 0, 100, AddOp(1, 3), OkScalar(105));
  Record(h, 0, 200, 210, GetOp(1), OkValue(108));
  const CheckReport report = CheckLinearizability(h, WithInitial(1, 100));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(LinearizabilityTest, RegisterPutDeleteGetRoundTripPasses) {
  History h;
  Record(h, 0, 0, 10, GetOp(2), Code(ResultCode::kNotFound));
  Record(h, 0, 20, 30, PutOp(2, 7), Ok());
  Record(h, 0, 40, 50, GetOp(2), OkValue(7));
  Record(h, 0, 60, 70, DeleteOp(2), Ok());
  Record(h, 0, 80, 90, GetOp(2), Code(ResultCode::kNotFound));
  Record(h, 0, 95, 99, DeleteOp(2), Code(ResultCode::kNotFound));
  const CheckReport report = CheckLinearizability(h);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(LinearizabilityTest, DefiniteRejectionsAreDiscarded) {
  // kOverloaded / kBusy answers guarantee no effect: they must neither
  // constrain the state nor break the surrounding ops.
  History h;
  Record(h, 0, 0, 10, AddOp(1, 5), OkScalar(100));
  Record(h, 0, 20, 30, AddOp(1, 9), Code(ResultCode::kOverloaded));
  Record(h, 0, 20, 30, PutOp(1, 1), Code(ResultCode::kBusy));
  Record(h, 0, 40, 50, GetOp(1), OkValue(105));
  const CheckReport report = CheckLinearizability(h, WithInitial(1, 100));
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.ops_discarded, 2u);
  EXPECT_EQ(report.ops_checked, 2u);
}

// --- linearizability checker: known-bad histories ---

TEST(LinearizabilityTest, StaleReadIsAViolation) {
  // Two acked puts in strict sequence; a later read observes the first one.
  History h;
  Record(h, 0, 0, 10, PutOp(2, 7), Ok());
  Record(h, 0, 20, 30, PutOp(2, 8), Ok());
  Record(h, 1, 40, 50, GetOp(2), OkValue(7));
  const CheckReport report = CheckLinearizability(h);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status, CheckStatus::kViolation);
  ASSERT_EQ(report.keys.size(), 1u);
  EXPECT_NE(report.keys[0].detail.find("GET observed"), std::string::npos)
      << report.ToString();
}

TEST(LinearizabilityTest, LostAckedWriteIsAViolation) {
  History h;
  Record(h, 0, 0, 10, AddOp(1, 5), OkScalar(100));
  Record(h, 0, 20, 30, GetOp(1), OkValue(100));  // the +5 vanished
  const CheckReport report = CheckLinearizability(h, WithInitial(1, 100));
  EXPECT_EQ(report.status, CheckStatus::kViolation);
}

TEST(LinearizabilityTest, DuplicatedFetchAddIsAViolation) {
  History h;
  Record(h, 0, 0, 10, AddOp(1, 5), OkScalar(100));
  Record(h, 0, 20, 30, GetOp(1), OkValue(110));  // the +5 applied twice
  const CheckReport report = CheckLinearizability(h, WithInitial(1, 100));
  EXPECT_EQ(report.status, CheckStatus::kViolation);
}

TEST(LinearizabilityTest, NotFoundAfterAckedPutIsAViolation) {
  History h;
  Record(h, 0, 0, 10, PutOp(2, 7), Ok());
  Record(h, 0, 20, 30, GetOp(2), Code(ResultCode::kNotFound));
  const CheckReport report = CheckLinearizability(h);
  EXPECT_EQ(report.status, CheckStatus::kViolation);
}

// --- ambiguity: timeouts may or may not have taken effect ---

TEST(LinearizabilityTest, AmbiguousTimeoutMayHaveTakenEffect) {
  History h;
  Record(h, 0, 0, 10, AddOp(1, 5), Code(ResultCode::kTimedOut));
  Record(h, 0, 20, 30, GetOp(1), OkValue(105));  // it landed
  const CheckReport report = CheckLinearizability(h, WithInitial(1, 100));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(LinearizabilityTest, AmbiguousTimeoutMayHaveBeenLost) {
  History h;
  Record(h, 0, 0, 10, AddOp(1, 5), Code(ResultCode::kDeadlineExceeded));
  Record(h, 0, 20, 30, GetOp(1), OkValue(100));  // it never landed
  const CheckReport report = CheckLinearizability(h, WithInitial(1, 100));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(LinearizabilityTest, AmbiguousTimeoutCannotApplyTwice) {
  History h;
  Record(h, 0, 0, 10, AddOp(1, 5), Code(ResultCode::kTimedOut));
  Record(h, 0, 20, 30, GetOp(1), OkValue(110));  // applied twice: illegal
  const CheckReport report = CheckLinearizability(h, WithInitial(1, 100));
  EXPECT_EQ(report.status, CheckStatus::kViolation);
}

TEST(LinearizabilityTest, AmbiguousWriteMayLinearizeAfterLaterReads) {
  // The timed-out put has an open interval: a read that began after the
  // client gave up may still see either value — but a *pair* of reads can
  // pin it: old-then-new is fine, new-then-old is a violation.
  History h;
  Record(h, 0, 0, 10, PutOp(2, 1), Ok());
  Record(h, 0, 20, 30, PutOp(2, 2), Code(ResultCode::kTimedOut));
  Record(h, 1, 40, 50, GetOp(2), OkValue(1));
  Record(h, 1, 60, 70, GetOp(2), OkValue(2));
  EXPECT_TRUE(CheckLinearizability(h).ok());

  History bad;
  Record(bad, 0, 0, 10, PutOp(2, 1), Ok());
  Record(bad, 0, 20, 30, PutOp(2, 2), Code(ResultCode::kTimedOut));
  Record(bad, 1, 40, 50, GetOp(2), OkValue(2));
  Record(bad, 1, 60, 70, GetOp(2), OkValue(1));  // went backward
  EXPECT_EQ(CheckLinearizability(bad).status, CheckStatus::kViolation);
}

TEST(LinearizabilityTest, SearchBudgetExhaustionIsNotAViolation) {
  History h;
  for (int i = 0; i < 8; i++) {
    Record(h, i, 0, 100, AddOp(1, 1), Code(ResultCode::kTimedOut));
  }
  Record(h, 8, 200, 210, GetOp(1), OkValue(104));
  CheckOptions options = WithInitial(1, 100);
  options.max_configurations = 3;
  const CheckReport report = CheckLinearizability(h, options);
  EXPECT_EQ(report.status, CheckStatus::kLimitExceeded);
  EXPECT_FALSE(report.status == CheckStatus::kViolation);
}

TEST(LinearizabilityTest, ReportIsDeterministic) {
  History h;
  Record(h, 0, 0, 10, PutOp(2, 7), Ok());
  Record(h, 0, 20, 30, PutOp(2, 8), Ok());
  Record(h, 1, 40, 50, GetOp(2), OkValue(7));
  const std::string a = CheckLinearizability(h).ToString();
  const std::string b = CheckLinearizability(h).ToString();
  EXPECT_EQ(a, b);
  EXPECT_EQ(h.Fingerprint(), h.Fingerprint());
}

// --- session-guarantee auditors ---

TEST(SessionAuditTest, ReadYourWritesViolationIsPinpointed) {
  History h;
  Record(h, 0, 0, 10, AddOp(1, 5), OkScalar(100));
  const size_t bad = 1;
  Record(h, 0, 20, 30, GetOp(1), OkValue(100));  // forgot my own +5
  const AuditReport report = AuditSessionGuarantees(h);
  ASSERT_EQ(report.violations.size(), 1u) << report.ToString();
  EXPECT_EQ(report.violations[0].auditor, "read-your-writes");
  EXPECT_EQ(report.violations[0].hist_index, bad);
  EXPECT_EQ(report.violations[0].session, 0u);
  EXPECT_EQ(report.violations[0].key, Key(1));
}

TEST(SessionAuditTest, OtherSessionsWritesDoNotTriggerReadYourWrites) {
  History h;
  Record(h, 0, 0, 10, AddOp(1, 5), OkScalar(100));
  Record(h, 1, 20, 30, GetOp(1), OkValue(100));  // not its write: allowed
  EXPECT_TRUE(AuditSessionGuarantees(h).ok());
}

TEST(SessionAuditTest, MonotonicReadsViolationIsPinpointed) {
  History h;
  Record(h, 0, 0, 10, GetOp(1), OkValue(108));
  Record(h, 0, 20, 30, GetOp(1), OkValue(105));  // counter went backward
  const AuditReport report = AuditSessionGuarantees(h);
  ASSERT_EQ(report.violations.size(), 1u) << report.ToString();
  EXPECT_EQ(report.violations[0].auditor, "monotonic-reads");
  EXPECT_EQ(report.violations[0].hist_index, 1u);
}

TEST(SessionAuditTest, ConcurrentReadsAreNotOrdered) {
  History h;
  Record(h, 0, 0, 50, GetOp(1), OkValue(108));
  Record(h, 0, 0, 50, GetOp(1), OkValue(105));  // overlapping: no order
  EXPECT_TRUE(AuditSessionGuarantees(h).ok());
}

TEST(SessionAuditTest, RegisterStaleReadIsCaught) {
  History h;
  Record(h, 0, 0, 10, PutOp(2, 7), Ok());
  Record(h, 0, 20, 30, PutOp(2, 8), Ok());
  Record(h, 0, 40, 50, GetOp(2), OkValue(7));  // definitely overwritten
  const AuditReport report = AuditSessionGuarantees(h);
  ASSERT_EQ(report.violations.size(), 1u) << report.ToString();
  EXPECT_NE(report.violations[0].detail.find("stale read"),
            std::string::npos);

  // With the second put ambiguous the old value stays explainable: the
  // overwrite may simply never have landed.
  History ambiguous;
  Record(ambiguous, 0, 0, 10, PutOp(2, 7), Ok());
  Record(ambiguous, 0, 20, 30, PutOp(2, 8), Code(ResultCode::kTimedOut));
  Record(ambiguous, 0, 40, 50, GetOp(2), OkValue(7));
  EXPECT_TRUE(AuditSessionGuarantees(ambiguous).ok());
}

TEST(SessionAuditTest, ExactlyOnceBoundsRespectAmbiguity) {
  auto history_with_final = [](uint64_t final_value) {
    History h;
    Record(h, 0, 0, 10, AddOp(1, 5), OkScalar(100));
    Record(h, 0, 20, 30, AddOp(1, 3), Code(ResultCode::kTimedOut));
    Record(h, 0, 40, 50, GetOp(1), OkValue(final_value));
    return h;
  };
  const std::map<std::vector<uint8_t>, uint64_t> base = {{Key(1), 100}};
  // [base + acked, base + acked + ambiguous] = [105, 108].
  EXPECT_TRUE(AuditExactlyOnceCounters(history_with_final(105), base).ok());
  EXPECT_TRUE(AuditExactlyOnceCounters(history_with_final(108), base).ok());

  const AuditReport lost =
      AuditExactlyOnceCounters(history_with_final(104), base);
  ASSERT_EQ(lost.violations.size(), 1u);
  EXPECT_NE(lost.violations[0].detail.find("lost acked write"),
            std::string::npos);

  const AuditReport duplicated =
      AuditExactlyOnceCounters(history_with_final(109), base);
  ASSERT_EQ(duplicated.violations.size(), 1u);
  EXPECT_NE(duplicated.violations[0].detail.find("duplicated write"),
            std::string::npos);
}

// --- history recorder behind KvEndpoint ---

TEST(HistoryRecorderTest, RecordingEndpointCapturesEveryFlushedOp) {
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  KvDirectServer server(config);
  Client client(server);
  HistoryRecorder recorder;
  RecordingEndpoint endpoint(client, recorder);

  endpoint.Enqueue(PutOp(3, 41));
  endpoint.Enqueue(GetOp(3));
  std::vector<KvResultMessage> results = endpoint.Flush();
  ASSERT_EQ(results.size(), 2u);
  endpoint.Enqueue(AddOp(3, 1));
  endpoint.Flush();

  const History& h = recorder.history();
  ASSERT_EQ(h.ops.size(), 3u);
  for (const HistoryOp& op : h.ops) {
    EXPECT_TRUE(op.returned);
    EXPECT_LE(op.invoke, op.ret);
    EXPECT_EQ(op.session, endpoint.session());
  }
  EXPECT_EQ(h.ops[1].result.value, U64Value(41));
  EXPECT_EQ(h.ops[2].result.scalar, 41u);
  EXPECT_LE(h.ops[1].ret, h.ops[2].invoke);
  EXPECT_TRUE(CheckLinearizability(h).ok());
  EXPECT_TRUE(AuditSessionGuarantees(h).ok());
}

// --- fault scripts and shrinking ---

TEST(NemesisScriptTest, GenerationIsDeterministicAndBounded) {
  ClusterScenarioOptions options;
  const FaultScript a = GenerateFaultScript(42, options);
  const FaultScript b = GenerateFaultScript(42, options);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_GE(a.events.size(), 3u);
  EXPECT_LE(a.events.size(), options.max_script_events);
  bool has_migration = false;
  for (size_t i = 0; i + 1 < a.events.size(); i++) {
    EXPECT_LE(a.events[i].at, a.events[i + 1].at);
  }
  for (const NemesisEvent& event : a.events) {
    has_migration |= event.kind == NemesisEventKind::kStartMigration;
  }
  EXPECT_TRUE(has_migration);
  EXPECT_NE(GenerateFaultScript(43, options).ToString(), a.ToString());
}

TEST(NemesisShrinkTest, GreedyRemovalFindsTheMinimalCore) {
  // Synthetic scenario: fails iff the script still contains a crash AND a
  // migration. Shrinking must strip everything else.
  auto fails_with = [](const FaultScript& script, std::string* report) {
    bool crash = false;
    bool migrate = false;
    for (const NemesisEvent& event : script.events) {
      crash |= event.kind == NemesisEventKind::kCrashReplica;
      migrate |= event.kind == NemesisEventKind::kStartMigration;
    }
    if (report != nullptr) {
      *report = "synthetic";
    }
    return !(crash && migrate);  // true = passes
  };

  FaultScript script;
  script.seed = 7;
  for (int i = 0; i < 10; i++) {
    NemesisEvent event;
    event.at = static_cast<SimTime>(i) * kMicrosecond;
    switch (i % 5) {
      case 0:
        event.kind = NemesisEventKind::kGrayReplica;
        break;
      case 1:
        event.kind = NemesisEventKind::kCrashReplica;
        break;
      case 2:
        event.kind = NemesisEventKind::kClientLossBurst;
        break;
      case 3:
        event.kind = NemesisEventKind::kStartMigration;
        break;
      default:
        event.kind = NemesisEventKind::kSplitPartitions;
        break;
    }
    script.events.push_back(event);
  }

  uint32_t runs = 0;
  std::string report;
  const FaultScript shrunk =
      ShrinkFaultScript(script, fails_with, 96, &runs, &report);
  ASSERT_EQ(shrunk.events.size(), 2u);
  EXPECT_EQ(shrunk.events[0].kind, NemesisEventKind::kCrashReplica);
  EXPECT_EQ(shrunk.events[1].kind, NemesisEventKind::kStartMigration);
  EXPECT_GT(runs, 0u);
  EXPECT_EQ(report, "synthetic");
}

// --- the nemesis scenario end to end ---

ClusterScenarioOptions SmallScenario() {
  // Default key/op sizing, fewer rounds: enough traffic that a workload
  // round overlaps the migration's copy window within a handful of seeds.
  ClusterScenarioOptions options;
  options.rounds = 6;
  return options;
}

TEST(NemesisScenarioTest, CleanScenarioPassesAndIsBitIdentical) {
  const ClusterScenarioOptions options = SmallScenario();
  const FaultScript script = GenerateFaultScript(3, options);
  const ScenarioOutcome a = RunClusterScenario(options, script);
  EXPECT_TRUE(a.ok) << a.report;
  const ScenarioOutcome b = RunClusterScenario(options, script);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.report, b.report);
  EXPECT_GT(a.history.ops.size(), 0u);
}

// The acceptance regression: re-introducing the migration lost-update bug
// (chunk installs ignore forwarded keys) must be caught by a small seed
// matrix and shrunk to a <= 10-event reproducer; the same seeds pass with
// the guard in place.
TEST(NemesisRegressionTest, InjectedLostUpdateBugIsCaughtAndShrunk) {
  NemesisOptions options;
  options.scenario = SmallScenario();
  options.scenario.inject_lost_update_bug = true;
  options.base_seed = 1;
  options.num_seeds = 8;

  const NemesisResult caught = RunSeedMatrix(options);
  ASSERT_FALSE(caught.ok)
      << "the seed matrix missed the injected lost-update bug";
  EXPECT_LE(caught.shrunk_script.events.size(), 10u) << caught.ToString();
  EXPECT_LE(caught.shrunk_script.events.size(),
            caught.original_script.events.size());
  EXPECT_FALSE(caught.failure_report.empty());
  EXPECT_EQ(caught.failure_report.find("WARNING"), std::string::npos)
      << caught.ToString();

  // Bit-identical re-run: the same matrix reproduces the same verdict.
  const NemesisResult again = RunSeedMatrix(options);
  EXPECT_EQ(again.failing_seed, caught.failing_seed);
  EXPECT_EQ(again.ToString(), caught.ToString());

  // With the guard restored, the very seeds that caught the bug pass clean.
  options.scenario.inject_lost_update_bug = false;
  options.num_seeds = caught.seeds_run;
  const NemesisResult clean = RunSeedMatrix(options);
  EXPECT_TRUE(clean.ok) << clean.ToString();
}

}  // namespace
}  // namespace kvd
