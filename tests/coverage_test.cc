// Edge-path coverage: station stall-mode shared readers, the no-return wire
// flag, extreme key/value shapes, forced secondary-hash false positives, and
// parameterized configuration sweeps.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/alloc/slab_allocator.h"
#include "src/common/hashing.h"
#include "src/common/units.h"
#include "src/core/kv_direct.h"
#include "src/hash/hash_index.h"
#include "src/mem/access_engine.h"
#include "src/mem/host_memory.h"
#include "src/net/wire_format.h"
#include "src/ooo/reservation_station.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id, size_t len = 8) {
  std::vector<uint8_t> key(len, 0xee);
  std::memcpy(key.data(), &id, std::min(len, sizeof(id)));
  return key;
}

// --- stall-mode shared readers (the Figure 13 strawman refinement) ---

TEST(StallModeTest, ConcurrentReadsShareTheSlot) {
  OooConfig config;
  config.station_slots = 4;
  config.enable_out_of_order = false;
  ReservationStation station(config);
  // Three reads on the same slot/key issue concurrently.
  EXPECT_EQ(station.Admit(1, 0, 5, false), ReservationStation::Action::kIssueToPipeline);
  EXPECT_EQ(station.Admit(2, 0, 5, false), ReservationStation::Action::kIssueToPipeline);
  EXPECT_EQ(station.Admit(3, 0, 5, false), ReservationStation::Action::kIssueToPipeline);
  EXPECT_EQ(station.inflight(), 3u);
  // A write must park.
  EXPECT_EQ(station.Admit(4, 0, 5, true), ReservationStation::Action::kPark);
  // And a read after the write parks too (ordering).
  EXPECT_EQ(station.Admit(5, 0, 5, false), ReservationStation::Action::kPark);
  // Reads drain one by one; the write may issue only after the last.
  EXPECT_TRUE(station.CompletePipeline(0).empty());
  EXPECT_EQ(station.TryIssueNext(0), std::nullopt);  // still shared
  EXPECT_TRUE(station.CompletePipeline(0).empty());
  EXPECT_EQ(station.TryIssueNext(0), std::nullopt);
  EXPECT_TRUE(station.CompletePipeline(0).empty());
  const auto next = station.TryIssueNext(0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 4u);  // the parked write
  EXPECT_TRUE(station.CompletePipeline(0).empty());
  const auto next_read = station.TryIssueNext(0);
  ASSERT_TRUE(next_read.has_value());
  EXPECT_EQ(*next_read, 5u);
}

TEST(StallModeTest, WriteBlocksSubsequentReads) {
  OooConfig config;
  config.station_slots = 4;
  config.enable_out_of_order = false;
  ReservationStation station(config);
  EXPECT_EQ(station.Admit(1, 0, 5, true), ReservationStation::Action::kIssueToPipeline);
  EXPECT_EQ(station.Admit(2, 0, 5, false), ReservationStation::Action::kPark);
  EXPECT_EQ(station.Admit(3, 0, 5, false), ReservationStation::Action::kPark);
}

// --- wire format: no-return flag and vector params ---

TEST(WireFlagsTest, NoReturnFlagRoundTrips) {
  KvOperation op;
  op.opcode = Opcode::kUpdateScalarVector;
  op.key = Key(1);
  op.param = 7;
  op.function_id = kFnAddU64;
  op.element_width = 8;
  op.return_value = false;
  PacketBuilder builder(4096);
  ASSERT_TRUE(builder.Add(op));
  PacketParser parser(builder.Finish());
  auto decoded = parser.Next();
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->has_value());
  EXPECT_FALSE((*decoded)->return_value);
}

TEST(WireFlagsTest, VectorToVectorParamsRoundTrip) {
  KvOperation op;
  op.opcode = Opcode::kUpdateVector;
  op.key = Key(1);
  op.value.assign(32, 0x5a);  // the parameter vector rides in `value`
  op.function_id = kFnXorU64;
  op.element_width = 8;
  PacketBuilder builder(4096);
  ASSERT_TRUE(builder.Add(op));
  PacketParser parser(builder.Finish());
  auto decoded = parser.Next();
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->has_value());
  EXPECT_EQ((*decoded)->value, op.value);
  EXPECT_EQ((*decoded)->function_id, kFnXorU64);
}

TEST(WireFlagsTest, NoReturnSuppressesResponseValue) {
  ServerConfig config;
  config.kvs_memory_bytes = 4 * kMiB;
  config.nic_dram.capacity_bytes = 512 * kKiB;
  KvDirectServer server(config);
  ASSERT_TRUE(server.Load(Key(1), std::vector<uint8_t>(64, 3)).ok());

  KvOperation op;
  op.opcode = Opcode::kUpdateScalarVector;
  op.key = Key(1);
  op.param = 1;
  op.function_id = kFnAddU64;
  op.element_width = 8;
  op.return_value = false;
  KvResultMessage result;
  server.Submit(op, [&](KvResultMessage r) { result = std::move(r); });
  server.simulator().RunUntilIdle();
  EXPECT_EQ(result.code, ResultCode::kOk);
  EXPECT_TRUE(result.value.empty());  // original vector suppressed
  // The update itself still happened.
  KvOperation get;
  get.opcode = Opcode::kGet;
  get.key = Key(1);
  uint64_t first_element = 0;
  std::memcpy(&first_element, server.Execute(get).value.data(), 8);
  EXPECT_EQ(first_element, 0x0303030303030304ull);
}

// --- hash index: extreme shapes ---

struct IndexRig {
  HostMemory memory;
  DirectEngine engine;
  SlabAllocator allocator;
  HashIndex index;

  static SlabConfig Slab(const HashIndexConfig& config) {
    const auto regions = config.ComputeRegions();
    SlabConfig slab;
    slab.region_base = regions.heap_base;
    slab.region_size = regions.heap_size;
    return slab;
  }
  explicit IndexRig(const HashIndexConfig& config)
      : memory(config.memory_size),
        engine(memory),
        allocator(Slab(config)),
        index(engine, allocator, config) {}
};

HashIndexConfig EdgeConfig() {
  HashIndexConfig config;
  config.memory_size = 2 * kMiB;
  config.hash_index_ratio = 0.5;
  config.inline_threshold_bytes = 20;
  return config;
}

TEST(HashIndexEdgeTest, OneByteKeyAndMaxKey) {
  IndexRig rig(EdgeConfig());
  const std::vector<uint8_t> tiny_key = {7};
  const std::vector<uint8_t> huge_key(HashIndex::kMaxKeyBytes, 0xab);
  const std::vector<uint8_t> value_a = {1, 2, 3};
  const std::vector<uint8_t> value_b = {4, 5, 6};
  ASSERT_TRUE(rig.index.Put(tiny_key, value_a).ok());
  ASSERT_TRUE(rig.index.Put(huge_key, value_b).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.index.Get(tiny_key, out).ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{1, 2, 3}));
  ASSERT_TRUE(rig.index.Get(huge_key, out).ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{4, 5, 6}));
  // Over-long key rejected, empty key rejected.
  const std::vector<uint8_t> one = {1};
  EXPECT_FALSE(rig.index.Put(std::vector<uint8_t>(256, 1), one).ok());
  EXPECT_FALSE(rig.index.Put(std::vector<uint8_t>{}, one).ok());
}

TEST(HashIndexEdgeTest, EmptyValueRoundTrips) {
  IndexRig rig(EdgeConfig());
  ASSERT_TRUE(rig.index.Put(Key(1), std::vector<uint8_t>{}).ok());
  std::vector<uint8_t> out = {9, 9};
  ASSERT_TRUE(rig.index.Get(Key(1), out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(rig.index.Contains(Key(1)));
  ASSERT_TRUE(rig.index.Delete(Key(1)).ok());
}

TEST(HashIndexEdgeTest, KeysDifferingOnlyInLength) {
  IndexRig rig(EdgeConfig());
  for (size_t len = 1; len <= 16; len++) {
    const std::vector<uint8_t> value = {static_cast<uint8_t>(len)};
    ASSERT_TRUE(rig.index.Put(Key(0x42, len), value).ok());
  }
  std::vector<uint8_t> out;
  for (size_t len = 1; len <= 16; len++) {
    ASSERT_TRUE(rig.index.Get(Key(0x42, len), out).ok()) << len;
    EXPECT_EQ(out[0], static_cast<uint8_t>(len));
  }
  EXPECT_EQ(rig.index.num_kvs(), 16u);
}

// Construct two different keys with the same bucket AND the same 9-bit
// secondary hash: GET of one must survive the false-positive slab read of
// the other (the "key always checked" guarantee of §3.3.1).
TEST(HashIndexEdgeTest, SecondaryHashFalsePositiveIsVerified) {
  HashIndexConfig config = EdgeConfig();
  config.inline_threshold_bytes = 10;  // force pointer slots
  IndexRig rig(config);
  const uint64_t buckets = rig.index.num_buckets();
  // Find two colliding keys by search.
  const KeyHash reference = HashKey(Key(0));
  uint64_t other = 0;
  for (uint64_t candidate = 1;; candidate++) {
    const KeyHash kh = HashKey(Key(candidate));
    if (kh.BucketIndex(buckets) == reference.BucketIndex(buckets) &&
        kh.SecondaryHash() == reference.SecondaryHash()) {
      other = candidate;
      break;
    }
    ASSERT_LT(candidate, 100000000ull) << "no collision found";
  }
  ASSERT_TRUE(rig.index.Put(Key(0), std::vector<uint8_t>(40, 1)).ok());
  ASSERT_TRUE(rig.index.Put(Key(other), std::vector<uint8_t>(40, 2)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(rig.index.Get(Key(other), out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(40, 2));
  ASSERT_TRUE(rig.index.Get(Key(0), out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(40, 1));
  // At least one false positive was recorded along the way.
  EXPECT_GE(rig.index.stats().secondary_false_hits, 1u);
}

// --- parameterized sweeps ---

// Slab allocator invariants across batch/watermark configurations.
class SlabConfigSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(SlabConfigSweepTest, ChurnPreservesBitmapConsistency) {
  const auto [sync_batch, stack_capacity] = GetParam();
  SlabConfig config;
  config.region_size = 1 * kMiB;
  config.sync_batch = sync_batch;
  config.nic_stack_capacity = stack_capacity;
  config.low_watermark = std::max(1u, sync_batch / 2);
  config.high_watermark = stack_capacity - sync_batch;
  SlabAllocator allocator(config);
  Rng rng(sync_batch * 131 + stack_capacity);
  std::vector<std::pair<uint64_t, uint32_t>> live;
  for (int i = 0; i < 20000; i++) {
    if (live.empty() || rng.NextBool(0.6)) {
      const auto size = static_cast<uint32_t>(1 + rng.NextBelow(512));
      Result<uint64_t> r = allocator.Allocate(size);
      if (r.ok()) {
        live.emplace_back(*r, size);
      }
    } else {
      const size_t victim = rng.NextBelow(live.size());
      allocator.Free(live[victim].first, live[victim].second);
      live.erase(live.begin() + static_cast<long>(victim));
    }
  }
  // Bitmap agrees with the live set's total footprint.
  uint64_t live_bytes = 0;
  for (const auto& [address, size] : live) {
    live_bytes += allocator.FootprintFor(size);
    EXPECT_TRUE(allocator.daemon().bitmap().IsAllocated(address, size));
  }
  EXPECT_EQ(allocator.FreeBytes(), config.region_size - live_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SlabConfigSweepTest,
    ::testing::Values(std::make_tuple(1u, 16u), std::make_tuple(8u, 64u),
                      std::make_tuple(32u, 256u), std::make_tuple(64u, 512u)));

// End-to-end round trip across inline thresholds and hash index ratios.
class ServerConfigSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double>> {};

TEST_P(ServerConfigSweepTest, HundredKeysRoundTrip) {
  const auto [inline_threshold, ratio] = GetParam();
  ServerConfig config;
  config.kvs_memory_bytes = 4 * kMiB;
  config.nic_dram.capacity_bytes = 512 * kKiB;
  config.inline_threshold_bytes = inline_threshold;
  config.hash_index_ratio = ratio;
  KvDirectServer server(config);
  Client client(server);
  for (uint64_t i = 0; i < 100; i++) {
    ASSERT_TRUE(client.Put(Key(i), std::vector<uint8_t>(1 + i % 60,
                                                        static_cast<uint8_t>(i)))
                    .ok());
  }
  for (uint64_t i = 0; i < 100; i++) {
    auto v = client.Get(Key(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(v->size(), 1 + i % 60);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ServerConfigSweepTest,
    ::testing::Combine(::testing::Values(10u, 24u, 48u),
                       ::testing::Values(0.2, 0.5, 0.8)));

// Dispatch policies all preserve functional results (timing-only layer).
class DispatchPolicySweepTest : public ::testing::TestWithParam<DispatchPolicy> {};

TEST_P(DispatchPolicySweepTest, PolicyDoesNotChangeResults) {
  ServerConfig config;
  config.kvs_memory_bytes = 4 * kMiB;
  config.nic_dram.capacity_bytes = 512 * kKiB;
  config.dispatch_policy = GetParam();
  config.dispatch_ratio = 0.5;
  KvDirectServer server(config);
  int mismatches = 0;
  int outstanding = 0;
  for (uint64_t i = 0; i < 500; i++) {
    KvOperation put;
    put.opcode = Opcode::kPut;
    put.key = Key(i);
    put.value = Key(i * 3);
    outstanding++;
    server.Submit(put, [&](KvResultMessage r) {
      outstanding--;
      mismatches += r.code == ResultCode::kOk ? 0 : 1;
    });
  }
  for (uint64_t i = 0; i < 500; i++) {
    KvOperation get;
    get.opcode = Opcode::kGet;
    get.key = Key(i);
    const auto expected = Key(i * 3);
    outstanding++;
    server.Submit(get, [&, expected](KvResultMessage r) {
      outstanding--;
      mismatches += (r.code == ResultCode::kOk && r.value == expected) ? 0 : 1;
    });
  }
  server.simulator().RunUntilIdle();
  EXPECT_EQ(outstanding, 0);
  EXPECT_EQ(mismatches, 0);
}

INSTANTIATE_TEST_SUITE_P(Policies, DispatchPolicySweepTest,
                         ::testing::Values(DispatchPolicy::kHybrid,
                                           DispatchPolicy::kPcieOnly,
                                           DispatchPolicy::kCacheAll,
                                           DispatchPolicy::kFixedPartition));

// Element widths 1..8 through the full update/reduce/filter surface.
class ElementWidthSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ElementWidthSweepTest, UpdateReduceFilterAgree) {
  const auto width = static_cast<uint8_t>(GetParam());
  UpdateFunctionRegistry registry;
  std::vector<uint8_t> value(static_cast<size_t>(width) * 16, 0);
  // Elements 0..15.
  for (uint64_t i = 0; i < 16; i++) {
    std::memcpy(value.data() + i * width, &i, width);
  }
  ASSERT_TRUE(registry.ApplyScalarToVector(kFnAddU64, value, 100, width).ok());
  auto sum = registry.Reduce(kFnAddU64, value, 0, width);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 16u * 100 + 120);
  auto filtered = registry.Filter(kFnGreater, value, 110, width);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->size(), 5u * width);  // 111..115
}

INSTANTIATE_TEST_SUITE_P(Widths, ElementWidthSweepTest, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace kvd
