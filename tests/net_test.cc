// Tests for the wire format (batching + flag-bit compression) and the
// network timing model (paper §4, Figure 15).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/units.h"
#include "src/net/kv_types.h"
#include "src/net/network_model.h"
#include "src/net/wire_format.h"
#include "src/sim/simulator.h"

namespace kvd {
namespace {

KvOperation MakeGet(std::vector<uint8_t> key) {
  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key = std::move(key);
  return op;
}

KvOperation MakePut(std::vector<uint8_t> key, std::vector<uint8_t> value) {
  KvOperation op;
  op.opcode = Opcode::kPut;
  op.key = std::move(key);
  op.value = std::move(value);
  return op;
}

std::vector<KvOperation> RoundTrip(const std::vector<KvOperation>& ops,
                                   bool compression = true) {
  PacketBuilder builder(65536, compression);
  for (const auto& op : ops) {
    EXPECT_TRUE(builder.Add(op));
  }
  PacketParser parser(builder.Finish());
  std::vector<KvOperation> out;
  while (true) {
    auto next = parser.Next();
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next->has_value()) {
      break;
    }
    out.push_back(std::move(**next));
  }
  return out;
}

TEST(WireFormatTest, SingleOpRoundTrip) {
  const auto ops = RoundTrip({MakePut({1, 2, 3}, {9, 8, 7, 6})});
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].opcode, Opcode::kPut);
  EXPECT_EQ(ops[0].key, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(ops[0].value, (std::vector<uint8_t>{9, 8, 7, 6}));
}

TEST(WireFormatTest, MixedBatchRoundTrip) {
  std::vector<KvOperation> in;
  in.push_back(MakeGet({1, 1, 1}));
  in.push_back(MakePut({2, 2}, {5}));
  KvOperation update;
  update.opcode = Opcode::kUpdateScalar;
  update.key = {3, 3, 3, 3};
  update.param = 0xdeadbeef;
  update.function_id = kFnAddU64;
  update.element_width = 8;
  in.push_back(update);
  KvOperation reduce;
  reduce.opcode = Opcode::kReduce;
  reduce.key = {4};
  reduce.param = 42;
  reduce.function_id = kFnMaxU64;
  reduce.element_width = 4;
  in.push_back(reduce);

  const auto out = RoundTrip(in);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[2].param, 0xdeadbeefu);
  EXPECT_EQ(out[2].function_id, kFnAddU64);
  EXPECT_EQ(out[3].opcode, Opcode::kReduce);
  EXPECT_EQ(out[3].param, 42u);
  EXPECT_EQ(out[3].element_width, 4);
}

TEST(WireFormatTest, CompressionElidesRepeatedSizes) {
  // 100 PUTs with identical key/value sizes and identical values.
  std::vector<KvOperation> same;
  std::vector<KvOperation> varied;
  for (int i = 0; i < 100; i++) {
    same.push_back(MakePut({static_cast<uint8_t>(i), 0, 0, 0, 0, 0, 0, 0},
                           {42, 42, 42, 42, 42, 42, 42, 42}));
    varied.push_back(MakePut({static_cast<uint8_t>(i)},
                             std::vector<uint8_t>(1 + i % 7, static_cast<uint8_t>(i))));
  }
  PacketBuilder compressed(65536, true);
  PacketBuilder uncompressed(65536, false);
  for (const auto& op : same) {
    compressed.Add(op);
    uncompressed.Add(op);
  }
  // Compressed: first op full, then 2 B header + 8 B key each.
  EXPECT_LT(compressed.payload_size(), uncompressed.payload_size() * 6 / 10);
  // Round trip correctness both ways.
  const auto out = RoundTrip(same, true);
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); i++) {
    EXPECT_EQ(out[i].key, same[i].key);
    EXPECT_EQ(out[i].value, same[i].value);
  }
  const auto out_varied = RoundTrip(varied, true);
  ASSERT_EQ(out_varied.size(), 100u);
  for (size_t i = 0; i < out_varied.size(); i++) {
    EXPECT_EQ(out_varied[i].value, varied[i].value);
  }
}

TEST(WireFormatTest, BuilderRespectsPayloadBudget) {
  PacketBuilder builder(128, true);
  int added = 0;
  while (builder.Add(MakePut({1, 2, 3, 4}, std::vector<uint8_t>(30, 7)))) {
    added++;
  }
  EXPECT_GT(added, 1);
  EXPECT_LE(builder.payload_size(), 128u);
}

TEST(WireFormatTest, EncodedOperationSizeMatchesBuilder) {
  const KvOperation a = MakePut({1, 2, 3, 4}, std::vector<uint8_t>(16, 9));
  const KvOperation b = MakePut({5, 6, 7, 8}, std::vector<uint8_t>(16, 9));
  PacketBuilder builder(65536, true);
  builder.Add(a);
  const size_t after_first = builder.payload_size();
  builder.Add(b);
  const size_t delta = builder.payload_size() - after_first;
  EXPECT_EQ(delta, EncodedOperationSize(b, &a, true));
  EXPECT_EQ(after_first, EncodedOperationSize(a, nullptr, true));
}

TEST(WireFormatTest, ParserRejectsTruncatedPacket) {
  PacketBuilder builder(65536, true);
  builder.Add(MakePut({1, 2, 3}, {4, 5, 6}));
  std::vector<uint8_t> payload = builder.Finish();
  payload.resize(payload.size() - 2);  // chop the tail
  PacketParser parser(std::move(payload));
  auto r = parser.Next();
  EXPECT_FALSE(r.ok());
}

TEST(WireFormatTest, ParserRejectsBadCopyFlags) {
  // First op cannot copy sizes from a nonexistent predecessor.
  std::vector<uint8_t> payload = {static_cast<uint8_t>(Opcode::kGet),
                                  kFlagCopyKeyLen};
  PacketParser parser(std::move(payload));
  auto r = parser.Next();
  EXPECT_FALSE(r.ok());
}

TEST(WireFormatTest, ResultsRoundTrip) {
  std::vector<KvResultMessage> in(3);
  in[0].code = ResultCode::kOk;
  in[0].value = {1, 2, 3};
  in[1].code = ResultCode::kNotFound;
  in[2].code = ResultCode::kOk;
  in[2].scalar = 0x123456789abcdef0ull;
  auto decoded = DecodeResults(EncodeResults(in));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].value, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ((*decoded)[1].code, ResultCode::kNotFound);
  EXPECT_EQ((*decoded)[2].scalar, 0x123456789abcdef0ull);
  // Results encoded without an epoch (the pre-replication default) decode to
  // epoch 0 — single-server deployments round-trip unchanged.
  EXPECT_EQ((*decoded)[0].epoch, 0u);
}

TEST(WireFormatTest, ResultEpochRoundTrip) {
  std::vector<KvResultMessage> in(2);
  in[0].code = ResultCode::kOk;
  in[0].value = {7};
  in[0].epoch = 3;
  in[1].code = ResultCode::kOk;
  in[1].epoch = kMaxWireEpoch;  // the largest encodable epoch
  auto decoded = DecodeResults(EncodeResults(in));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].epoch, 3u);
  EXPECT_EQ((*decoded)[1].epoch, kMaxWireEpoch);
}

TEST(WireFormatTest, DecoderRejectsOutOfRangeEpoch) {
  std::vector<KvResultMessage> in(1);
  in[0].code = ResultCode::kOk;
  in[0].epoch = kMaxWireEpoch;
  std::vector<uint8_t> bytes = EncodeResults(in);
  // The epoch lives in bytes [1, 5) of the 17-byte result header; forge a
  // value above kMaxWireEpoch and the decoder must treat it as corruption.
  uint32_t forged = kMaxWireEpoch + 1;
  std::memcpy(bytes.data() + 1, &forged, sizeof(forged));
  EXPECT_FALSE(DecodeResults(bytes).ok());
}

TEST(NetworkModelTest, DeliveryAfterSerializationPlusLatency) {
  Simulator sim;
  NetworkModel net(sim, NetworkConfig{});
  SimTime delivered_at = 0;
  net.SendToServer(912, [&] { delivered_at = sim.Now(); });  // 912+88 = 1000 B
  sim.RunUntilIdle();
  // 1000 B at 5 GB/s = 200 ns wire + 60 ns packet processing + 1 us latency.
  EXPECT_NEAR(static_cast<double>(delivered_at), 1260.0 * kNanosecond,
              1.0 * kNanosecond);
}

TEST(NetworkModelTest, DirectionsAreIndependent) {
  Simulator sim;
  NetworkModel net(sim, NetworkConfig{});
  SimTime up = 0;
  SimTime down = 0;
  net.SendToServer(912, [&] { up = sim.Now(); });
  net.SendToClient(912, [&] { down = sim.Now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(up, down);  // no shared wire contention
}

TEST(NetworkModelTest, BackToBackPacketsQueueOnTheWire) {
  Simulator sim;
  NetworkModel net(sim, NetworkConfig{});
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 3; i++) {
    net.SendToServer(912, [&] { arrivals.push_back(sim.Now()); });
  }
  sim.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(static_cast<double>(arrivals[1] - arrivals[0]), 260.0 * kNanosecond,
              1.0 * kNanosecond);
  EXPECT_NEAR(static_cast<double>(arrivals[2] - arrivals[1]), 260.0 * kNanosecond,
              1.0 * kNanosecond);
}

TEST(NetworkModelTest, OversizedPayloadSegments) {
  Simulator sim;
  NetworkConfig config;
  config.max_payload_bytes = 1000;
  NetworkModel net(sim, config);
  bool done = false;
  net.SendToClient(2500, [&] { done = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(net.packets_to_client(), 3u);
  EXPECT_EQ(net.bytes_to_client(), 2500u + 3 * 88);
}

TEST(NetworkModelTest, ByteAndPacketAccounting) {
  Simulator sim;
  NetworkModel net(sim, NetworkConfig{});
  net.SendToServer(100, [] {});
  net.SendToServer(200, [] {});
  sim.RunUntilIdle();
  EXPECT_EQ(net.packets_to_server(), 2u);
  EXPECT_EQ(net.bytes_to_server(), 300u + 2 * 88);
}

TEST(NetworkModelTest, PartitionIsPerDirection) {
  Simulator sim;
  NetworkModel net(sim, NetworkConfig{});
  net.SetPartitioned(/*to_server=*/true, true);
  // Asymmetric partition: requests vanish, responses still flow.
  int to_server = 0;
  int to_client = 0;
  net.SendPayloadToServer({1, 2, 3}, [&](std::vector<uint8_t>) { to_server++; });
  net.SendPayloadToClient({4, 5, 6}, [&](std::vector<uint8_t>) { to_client++; });
  sim.RunUntilIdle();
  EXPECT_EQ(to_server, 0);
  EXPECT_EQ(to_client, 1);
  EXPECT_EQ(net.partition_dropped(), 1u);
  // Healing restores delivery.
  net.SetPartitioned(/*to_server=*/true, false);
  net.SendPayloadToServer({1, 2, 3}, [&](std::vector<uint8_t>) { to_server++; });
  sim.RunUntilIdle();
  EXPECT_EQ(to_server, 1);
  EXPECT_EQ(net.partition_dropped(), 1u);
}

TEST(NetworkModelTest, TimingOnlySendsIgnorePartition) {
  Simulator sim;
  NetworkModel net(sim, NetworkConfig{});
  net.SetPartitioned(/*to_server=*/true, true);
  net.SetPartitioned(/*to_server=*/false, true);
  bool delivered = false;
  net.SendToServer(100, [&] { delivered = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(delivered);
}

TEST(NetworkModelTest, GrayLinkMultipliesLatency) {
  NetworkConfig config;
  Simulator healthy_sim;
  NetworkModel healthy(healthy_sim, config);
  SimTime healthy_at = 0;
  healthy.SendPayloadToServer({1}, [&](std::vector<uint8_t>) {
    healthy_at = healthy_sim.Now();
  });
  healthy_sim.RunUntilIdle();

  Simulator gray_sim;
  NetworkModel gray(gray_sim, config);
  gray.SetGrayLink(/*to_server=*/true, /*latency_multiplier=*/20.0,
                   /*loss_probability=*/0.0);
  SimTime gray_at = 0;
  gray.SendPayloadToServer({1}, [&](std::vector<uint8_t>) {
    gray_at = gray_sim.Now();
  });
  gray_sim.RunUntilIdle();
  ASSERT_GT(healthy_at, 0u);
  // The multiplier scales both occupancy and propagation, so the whole
  // delivery time stretches by exactly the configured factor.
  EXPECT_EQ(gray_at, healthy_at * 20);
}

TEST(NetworkModelTest, GrayLinkLossIsCountedAndSeeded) {
  Simulator sim;
  NetworkModel net(sim, NetworkConfig{});
  net.SetGrayLink(/*to_server=*/true, 1.0, /*loss_probability=*/1.0,
                  /*seed=*/7);
  int arrived = 0;
  for (int i = 0; i < 8; i++) {
    net.SendPayloadToServer({1}, [&](std::vector<uint8_t>) { arrived++; });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(arrived, 0);
  EXPECT_EQ(net.gray_dropped(), 8u);
  // Healing (multiplier 1, loss 0) restores delivery.
  net.SetGrayLink(/*to_server=*/true, 1.0, 0.0);
  net.SendPayloadToServer({1}, [&](std::vector<uint8_t>) { arrived++; });
  sim.RunUntilIdle();
  EXPECT_EQ(arrived, 1);
}

}  // namespace
}  // namespace kvd
