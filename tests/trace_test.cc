// Per-operation request tracing and the flight recorder (DESIGN.md §10).
//
// Covers trace-context propagation through the full stack (client send ->
// wire -> decode -> pipeline -> memory -> response, plus the replication
// stages for writes), latency attribution (stage sums tile the end-to-end
// interval), flight-recorder triggers (ECC demotion, primary crash, kBusy
// bursts, SLO breaches) firing exactly once per cause, same-seed bit-identical
// dumps, fuzz-style negative parsing of dump JSON, exact histogram merging,
// and EventTracer drop surfacing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/core/kv_direct.h"
#include "src/core/multi_nic.h"
#include "src/fault/fault_injector.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/request_trace.h"
#include "src/replica/replicated_client.h"
#include "src/replica/replication_group.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

ServerConfig TracedServerConfig() {
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  config.enable_request_tracing = true;
  return config;
}

// All traces from a dump, completed ring first, then the in-flight ones.
std::vector<OpTrace> AllTraces(const ParsedFlightDump& dump) {
  std::vector<OpTrace> all = dump.traces;
  all.insert(all.end(), dump.live_traces.begin(), dump.live_traces.end());
  return all;
}

// Sum of the trace's stage durations (consecutive present points), in ps.
SimTime StageSumPs(const OpTrace& trace) {
  SimTime sum = 0;
  SimTime prev = OpTrace::kAbsent;
  for (size_t i = 0; i < kNumTracePoints; i++) {
    const SimTime at = trace.points[i];
    if (at == OpTrace::kAbsent) {
      continue;
    }
    if (prev != OpTrace::kAbsent) {
      sum += at - prev;
    }
    prev = at;
  }
  return sum;
}

// --- LatencyHistogram::Merge (exact aggregation) ---

TEST(LatencyHistogramMergeTest, MergeMatchesPooledSamplesExactly) {
  // Two shards with very different distributions; merging their histograms
  // must give the same quantiles as one histogram fed every sample, because
  // Merge sums per-bucket counts (no re-bucketing, no approximation beyond
  // the shared bucket layout).
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram pooled;
  Rng rng(42);
  for (int i = 0; i < 5000; i++) {
    const uint64_t low = 100 + rng.NextBelow(900);  // 100..999 ns
    a.Add(low);
    pooled.Add(low);
    const uint64_t high = 10000 + rng.NextBelow(90000);  // 10..100 us
    b.Add(high);
    pooled.Add(high);
  }
  LatencyHistogram merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_EQ(merged.min(), pooled.min());
  EXPECT_EQ(merged.max(), pooled.max());
  EXPECT_DOUBLE_EQ(merged.mean(), pooled.mean());
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    EXPECT_EQ(merged.Percentile(q), pooled.Percentile(q)) << "quantile " << q;
  }
}

TEST(LatencyHistogramMergeTest, ClusterReportingUsesMerge) {
  // MultiNicServer::MergedLatency pools the per-NIC distributions.
  ServerConfig config;
  config.kvs_memory_bytes = 4 * kMiB;
  config.nic_dram.capacity_bytes = 512 * kKiB;
  MultiNicServer cluster(2, config);
  for (uint64_t k = 0; k < 64; k++) {
    ASSERT_TRUE(cluster.Load(Key(k), U64Value(k)).ok());
  }
  MultiNicClient client(cluster);
  for (uint64_t k = 0; k < 64; k++) {
    ASSERT_TRUE(client.Get(Key(k)).ok());
  }
  uint64_t per_nic = 0;
  for (uint32_t i = 0; i < cluster.num_nics(); i++) {
    per_nic += cluster.nic(i).processor().stats().latency_ns.count();
  }
  EXPECT_GT(per_nic, 0u);
  EXPECT_EQ(cluster.MergedLatency().count(), per_nic);
}

// --- tracing defaults and single-server propagation ---

TEST(RequestTraceTest, TracingIsOffByDefault) {
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  KvDirectServer server(config);
  Client client(server);
  ASSERT_TRUE(client.Put(Key(1), U64Value(7)).ok());
  ASSERT_TRUE(client.Get(Key(1)).ok());
  EXPECT_FALSE(server.request_tracer().enabled());
  EXPECT_EQ(server.request_tracer().started(), 0u);
  EXPECT_EQ(server.breakdown().recorded(), 0u);
  // The trace metric families stay out of the default exposition.
  EXPECT_EQ(server.metrics().PrometheusText().find("kvd_trace_"),
            std::string::npos);
}

TEST(RequestTraceTest, SpansNestInsideStagesInsideEndToEnd) {
  ServerConfig config = TracedServerConfig();
  KvDirectServer server(config);
  for (uint64_t k = 0; k < 32; k++) {
    ASSERT_TRUE(server.Load(Key(k), U64Value(k)).ok());
  }
  Client client(server);
  for (uint64_t k = 0; k < 32; k++) {
    KvOperation op;
    op.opcode = (k % 2 == 0) ? Opcode::kGet : Opcode::kPut;
    op.key = Key(k);
    if (op.opcode == Opcode::kPut) {
      op.value = U64Value(k * 2);
    }
    client.Enqueue(std::move(op));
  }
  auto results = client.Flush();
  ASSERT_EQ(results.size(), 32u);
  for (const auto& r : results) {
    EXPECT_EQ(r.code, ResultCode::kOk);
  }
  EXPECT_EQ(server.request_tracer().finished(), 32u);
  EXPECT_EQ(server.breakdown().recorded(), 32u);

  ASSERT_TRUE(server.flight_recorder().Trigger(FlightTrigger::kManual, "test"));
  ParsedFlightDump dump;
  ASSERT_TRUE(
      ParseFlightDump(server.flight_recorder().dumps()[0].json, &dump).ok());
  ASSERT_FALSE(dump.traces.empty());
  for (const OpTrace& trace : dump.traces) {
    ASSERT_TRUE(trace.Has(TracePoint::kClientSend));
    ASSERT_TRUE(trace.Has(TracePoint::kClientReceive));
    // Points are monotone along the checkpoint sequence.
    SimTime prev = 0;
    for (size_t i = 0; i < kNumTracePoints; i++) {
      if (trace.points[i] == OpTrace::kAbsent) {
        continue;
      }
      EXPECT_GE(trace.points[i], prev);
      prev = trace.points[i];
    }
    // The stages tile the end-to-end interval exactly.
    EXPECT_EQ(StageSumPs(trace), trace.EndToEndPs());
    // Every span nests inside the end-to-end interval; memory spans nest
    // inside the execute window.
    ASSERT_FALSE(trace.spans.empty());
    bool mem = false;
    for (const TraceSpan& span : trace.spans) {
      EXPECT_LE(span.start, span.end);
      EXPECT_GE(span.start, trace.At(TracePoint::kClientSend));
      EXPECT_LE(span.end, trace.At(TracePoint::kClientReceive));
      if (span.kind == SpanKind::kMemAccess) {
        mem = true;
        EXPECT_GE(span.start, trace.At(TracePoint::kSubmit));
        EXPECT_LE(span.end, trace.At(TracePoint::kRetire));
      }
    }
    EXPECT_TRUE(mem);  // every GET/PUT touches memory
  }

  // The aggregated view agrees: per opcode, total stage time == total e2e
  // time up to the per-stage nanosecond rounding.
  const LatencyBreakdown& breakdown = server.breakdown();
  for (const Opcode opcode : {Opcode::kGet, Opcode::kPut}) {
    const LatencyHistogram& e2e = breakdown.EndToEnd(opcode);
    ASSERT_GT(e2e.count(), 0u);
    double stage_total = 0;
    for (size_t point = 1; point < kNumTracePoints; point++) {
      const LatencyHistogram& stage =
          breakdown.Stage(opcode, static_cast<TracePoint>(point));
      stage_total += stage.mean() * static_cast<double>(stage.count());
    }
    const double e2e_total = e2e.mean() * static_cast<double>(e2e.count());
    EXPECT_NEAR(stage_total, e2e_total, 0.01 * e2e_total);
  }
}

TEST(RequestTraceTest, RetransmittedOpKeepsOneTraceAcrossAttempts) {
  ServerConfig config = TracedServerConfig();
  // Drop the first two request frames on the wire: the op completes on a
  // timeout-driven retransmission, under the same trace.
  config.faults.schedule.push_back({FaultSite::kNetDropToServer, 1});
  config.faults.schedule.push_back({FaultSite::kNetDropToServer, 2});
  KvDirectServer server(config);
  ASSERT_TRUE(server.Load(Key(1), U64Value(5)).ok());
  Client::Options options;
  options.retry.timeout = 100 * kMicrosecond;
  Client client(server, options);
  ASSERT_TRUE(client.Get(Key(1)).ok());
  ASSERT_TRUE(client.Put(Key(1), U64Value(6)).ok());
  EXPECT_GT(client.stats().retransmits, 0u);

  ASSERT_TRUE(server.flight_recorder().Trigger(FlightTrigger::kManual, "test"));
  ParsedFlightDump dump;
  ASSERT_TRUE(
      ParseFlightDump(server.flight_recorder().dumps()[0].json, &dump).ok());
  bool retransmitted = false;
  for (const OpTrace& trace : dump.traces) {
    if (trace.attempts < 2) {
      continue;
    }
    retransmitted = true;
    // One trace spans all attempts: the e2e interval covers the backoff, and
    // the retransmissions are annotated as spans.
    EXPECT_EQ(StageSumPs(trace), trace.EndToEndPs());
    const bool has_marker = std::any_of(
        trace.spans.begin(), trace.spans.end(), [](const TraceSpan& span) {
          return span.kind == SpanKind::kRetransmit;
        });
    EXPECT_TRUE(has_marker);
  }
  EXPECT_TRUE(retransmitted);
}

// --- replicated writes ---

ReplicationConfig TracedGroupConfig() {
  ReplicationConfig config;
  config.num_replicas = 3;
  config.server.kvs_memory_bytes = 8 * kMiB;
  config.server.nic_dram.capacity_bytes = 1 * kMiB;
  config.enable_request_tracing = true;
  return config;
}

TEST(ReplicatedTraceTest, WriteTracesCarryReplicationStages) {
  ReplicationConfig config = TracedGroupConfig();
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  for (uint64_t k = 0; k < 16; k++) {
    KvOperation op;
    op.opcode = Opcode::kPut;
    op.key = Key(k);
    op.value = U64Value(k);
    client.Enqueue(std::move(op));
  }
  for (const auto& r : client.Flush()) {
    ASSERT_EQ(r.code, ResultCode::kOk);
  }
  // The commit-wait histogram records append -> quorum-ack per write packet.
  EXPECT_GT(group.commit_wait_ns().count(), 0u);

  ASSERT_TRUE(group.flight_recorder().Trigger(FlightTrigger::kManual, "test"));
  ParsedFlightDump dump;
  ASSERT_TRUE(
      ParseFlightDump(group.flight_recorder().dumps()[0].json, &dump).ok());
  bool replicated_write = false;
  for (const OpTrace& trace : dump.traces) {
    if (trace.opcode != Opcode::kPut) {
      continue;
    }
    replicated_write = true;
    // The write passed through append and quorum commit, in order, and the
    // stages still tile the end-to-end interval.
    ASSERT_TRUE(trace.Has(TracePoint::kReplAppend));
    ASSERT_TRUE(trace.Has(TracePoint::kReplCommit));
    EXPECT_GE(trace.At(TracePoint::kReplAppend),
              trace.At(TracePoint::kRetire));
    EXPECT_GE(trace.At(TracePoint::kReplCommit),
              trace.At(TracePoint::kReplAppend));
    EXPECT_EQ(StageSumPs(trace), trace.EndToEndPs());
    const bool shipped = std::any_of(
        trace.spans.begin(), trace.spans.end(), [](const TraceSpan& span) {
          return span.kind == SpanKind::kReplShip;
        });
    EXPECT_TRUE(shipped);  // the entry rode an append window to the backups
  }
  EXPECT_TRUE(replicated_write);
  // The replication-stage histograms aggregate the same structure.
  EXPECT_GT(group.breakdown()
                .Stage(Opcode::kPut, TracePoint::kReplCommit)
                .count(),
            0u);
  // Satellite health metrics exist in the group registry.
  EXPECT_TRUE(group.metrics().GaugeValue("kvd_repl_match_lag",
                                         {{"replica", "1"}})
                  .has_value());
  EXPECT_TRUE(
      group.metrics().HistogramValue("kvd_repl_commit_wait_ns").has_value());
}

// --- flight-recorder triggers ---

TEST(FlightRecorderTest, EccDemotionTriggersExactlyOneDump) {
  ServerConfig config = TracedServerConfig();
  config.dispatch_policy = DispatchPolicy::kCacheAll;
  // Script exactly one uncorrectable ECC flip. Every access is traced (no
  // untimed preload), so the demoted access belongs to a live traced op.
  config.faults.schedule.push_back({FaultSite::kDramUncorrectableFlip, 1});
  KvDirectServer server(config);
  Client client(server);
  // More keys than reservation-station slots, so reads outlive the station's
  // data-forwarding cache and must consult NIC DRAM (where ECC is checked).
  constexpr uint64_t kKeys = 2048;
  constexpr uint64_t kBatch = 64;
  for (uint64_t base = 0; base < kKeys; base += kBatch) {
    for (uint64_t k = base; k < base + kBatch; k++) {
      KvOperation op;
      op.opcode = Opcode::kPut;
      op.key = Key(k);
      op.value = U64Value(k);
      client.Enqueue(std::move(op));
    }
    for (const auto& r : client.Flush()) {
      ASSERT_EQ(r.code, ResultCode::kOk);
    }
  }
  for (uint64_t base = 0; base < kKeys; base += kBatch) {
    for (uint64_t k = base; k < base + kBatch; k++) {
      KvOperation op;
      op.opcode = Opcode::kGet;
      op.key = Key(k);
      client.Enqueue(std::move(op));
    }
    for (const auto& r : client.Flush()) {
      ASSERT_EQ(r.code, ResultCode::kOk);
    }
  }
  EXPECT_GT(server.nic_dram().ecc_uncorrectable_injected(), 0u);

  const FlightRecorder& flight = server.flight_recorder();
  ASSERT_EQ(flight.dumps().size(), 1u);
  EXPECT_EQ(flight.dumps()[0].trigger, FlightTrigger::kEccDemotion);
  ParsedFlightDump dump;
  ASSERT_TRUE(ParseFlightDump(flight.dumps()[0].json, &dump).ok());
  EXPECT_EQ(dump.trigger, "ecc_demotion");
  // The dump contains the affected op's span tree: a memory access routed
  // through the ECC-demotion recovery path.
  bool demoted_span = false;
  for (const OpTrace& trace : AllTraces(dump)) {
    for (const TraceSpan& span : trace.spans) {
      if (span.kind == SpanKind::kMemAccess &&
          span.detail == kRouteEccDemotion) {
        demoted_span = true;
      }
    }
  }
  EXPECT_TRUE(demoted_span);
}

// Scripted failover scenario shared by the trigger and determinism tests.
struct FailoverRun {
  std::vector<FlightRecorder::Dump> dumps;
  std::string breakdown_json;
  uint64_t failovers = 0;
};

FailoverRun RunScriptedFailover(uint64_t seed) {
  ReplicationConfig config = TracedGroupConfig();
  config.faults.seed = seed;
  // The first kReplicaCrash consult is replica 0 — the initial primary — at
  // the first heartbeat tick, mid-workload.
  config.faults.schedule.push_back({FaultSite::kReplicaCrash, 1});
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  Simulator& sim = group.simulator();
  Rng mix(seed ^ 0xfa110f);
  uint64_t next_key = 0;
  for (int batch = 0; batch < 12; batch++) {
    for (int i = 0; i < 8; i++) {
      KvOperation op;
      op.opcode = Opcode::kPut;
      op.key = Key(next_key++);
      op.value = U64Value(mix.Next());
      client.Enqueue(std::move(op));
    }
    client.Flush();
    sim.RunUntil(sim.Now() + 100 * kMicrosecond);
  }
  FailoverRun run;
  run.dumps = group.flight_recorder().dumps();
  run.breakdown_json = LatencyBreakdownReport::ToJson(group.breakdown());
  run.failovers = group.stats().failovers;
  return run;
}

TEST(FlightRecorderTest, PrimaryCrashTriggersExactlyOneFailoverDump) {
  const FailoverRun run = RunScriptedFailover(7);
  ASSERT_GE(run.failovers, 1u);
  size_t failover_dumps = 0;
  for (const FlightRecorder::Dump& dump : run.dumps) {
    if (dump.trigger == FlightTrigger::kFailover) {
      failover_dumps++;
      ParsedFlightDump parsed;
      ASSERT_TRUE(ParseFlightDump(dump.json, &parsed).ok());
      EXPECT_EQ(parsed.trigger, "failover");
      // The ring preserves the pre-crash completed traces for postmortem.
      EXPECT_FALSE(parsed.traces.empty());
    }
  }
  // once_per_trigger: even with multiple election rounds, one dump.
  EXPECT_EQ(failover_dumps, 1u);
}

TEST(FlightRecorderTest, ScriptedFailoverDumpsAreBitIdentical) {
  const FailoverRun first = RunScriptedFailover(7);
  const FailoverRun second = RunScriptedFailover(7);
  ASSERT_EQ(first.dumps.size(), second.dumps.size());
  ASSERT_FALSE(first.dumps.empty());
  for (size_t i = 0; i < first.dumps.size(); i++) {
    EXPECT_EQ(first.dumps[i].trigger, second.dumps[i].trigger);
    EXPECT_EQ(first.dumps[i].sim_time, second.dumps[i].sim_time);
    EXPECT_EQ(first.dumps[i].json, second.dumps[i].json);
  }
  EXPECT_EQ(first.breakdown_json, second.breakdown_json);
}

// Chaos soak with tracing on: simultaneous network, PCIe, and DRAM faults.
struct ChaosRun {
  std::vector<FlightRecorder::Dump> dumps;
  std::string breakdown_json;
};

ChaosRun RunTracedChaos(uint64_t seed) {
  ServerConfig config = TracedServerConfig();
  config.faults.seed = seed;
  config.faults.at(FaultSite::kNetDropToServer) = 0.02;
  config.faults.at(FaultSite::kNetDropToClient) = 0.02;
  config.faults.at(FaultSite::kNetCorruptToServer) = 0.01;
  config.faults.at(FaultSite::kPcieReadCompletion) = 0.01;
  config.faults.at(FaultSite::kDramCorrectableFlip) = 0.02;
  // Opt in: the first injection takes the (single) fault dump.
  config.flight.trigger_on_fault_injection = true;
  KvDirectServer server(config);
  for (uint64_t k = 0; k < 32; k++) {
    EXPECT_TRUE(server.Load(Key(k), U64Value(0)).ok());
  }
  Client::Options options;
  options.retry.timeout = 100 * kMicrosecond;
  Client client(server, options);
  Rng mix(seed ^ 0x9c5b);
  for (int batch = 0; batch < 10; batch++) {
    for (int i = 0; i < 64; i++) {
      const uint64_t k = mix.NextBelow(32);
      KvOperation op;
      op.key = Key(k);
      if (mix.NextDouble() < 0.5) {
        op.opcode = Opcode::kGet;
      } else {
        op.opcode = Opcode::kUpdateScalar;
        op.param = 1;
      }
      client.Enqueue(std::move(op));
    }
    for (const auto& r : client.Flush()) {
      EXPECT_EQ(r.code, ResultCode::kOk);
    }
  }
  ChaosRun run;
  run.dumps = server.flight_recorder().dumps();
  run.breakdown_json = LatencyBreakdownReport::ToJson(server.breakdown());
  return run;
}

TEST(FlightRecorderTest, ChaosSoakDumpsAreBitIdentical) {
  const ChaosRun first = RunTracedChaos(2026);
  const ChaosRun second = RunTracedChaos(2026);
  ASSERT_FALSE(first.dumps.empty());  // at least the fault-injection dump
  ASSERT_EQ(first.dumps.size(), second.dumps.size());
  for (size_t i = 0; i < first.dumps.size(); i++) {
    EXPECT_EQ(first.dumps[i].json, second.dumps[i].json);
  }
  EXPECT_EQ(first.breakdown_json, second.breakdown_json);
  ParsedFlightDump parsed;
  ASSERT_TRUE(ParseFlightDump(first.dumps[0].json, &parsed).ok());
}

TEST(FlightRecorderTest, BusyBurstTriggersOneDumpPerWindow) {
  ServerConfig config = TracedServerConfig();
  config.processor.max_backlog = 2;
  config.processor.busy_burst_threshold = 8;
  // A tiny in-flight budget makes the station reject quickly, so the
  // admission backlog fills and submissions bounce with kBusy.
  config.processor.ooo.max_inflight = 4;
  KvDirectServer server(config);
  uint64_t busy = 0;
  for (int i = 0; i < 64; i++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(1);
    server.Submit(std::move(op), [&busy](KvResultMessage result) {
      if (result.code == ResultCode::kBusy) {
        busy++;
      }
    });
  }
  server.simulator().RunUntilIdle();
  EXPECT_GE(busy, 8u);
  size_t burst_dumps = 0;
  for (const FlightRecorder::Dump& dump : server.flight_recorder().dumps()) {
    if (dump.trigger == FlightTrigger::kBusyBurst) {
      burst_dumps++;
    }
  }
  EXPECT_EQ(burst_dumps, 1u);
}

TEST(FlightRecorderTest, SloBreachTriggersDump) {
  ServerConfig config = TracedServerConfig();
  config.slo.window = 100 * kMicrosecond;
  config.slo.p99_target_ns = 1;  // everything breaches
  KvDirectServer server(config);
  for (uint64_t k = 0; k < 8; k++) {
    ASSERT_TRUE(server.Load(Key(k), U64Value(k)).ok());
  }
  Client client(server);
  Simulator& sim = server.simulator();
  for (int round = 0; round < 8; round++) {
    for (uint64_t k = 0; k < 8; k++) {
      KvOperation op;
      op.opcode = Opcode::kGet;
      op.key = Key(k);
      client.Enqueue(std::move(op));
    }
    client.Flush();
    // Windows tumble lazily (on the next Record past the boundary), so step
    // simulated time past the window between rounds to close each one.
    sim.ScheduleAt(sim.Now() + 150 * kMicrosecond, [] {});
    sim.RunUntilIdle();
  }
  EXPECT_GT(server.slo_monitor().p99_breaches(), 0u);
  size_t slo_dumps = 0;
  for (const FlightRecorder::Dump& dump : server.flight_recorder().dumps()) {
    if (dump.trigger == FlightTrigger::kSloBreach) {
      slo_dumps++;
    }
  }
  EXPECT_EQ(slo_dumps, 1u);  // once_per_trigger
}

// --- dump JSON negative tests ---

TEST(ParseFlightDumpTest, TruncatedDumpsFailCleanly) {
  ServerConfig config = TracedServerConfig();
  KvDirectServer server(config);
  Client client(server);
  ASSERT_TRUE(client.Put(Key(1), U64Value(1)).ok());
  ASSERT_TRUE(server.flight_recorder().Trigger(FlightTrigger::kManual, "t"));
  const std::string json = server.flight_recorder().dumps()[0].json;

  ParsedFlightDump out;
  EXPECT_FALSE(ParseFlightDump("", &out).ok());
  EXPECT_FALSE(ParseFlightDump("{", &out).ok());
  EXPECT_FALSE(ParseFlightDump("not json at all", &out).ok());
  // Chop the real dump at many offsets: every truncation must error, never
  // crash, never succeed.
  for (size_t cut = 1; cut + 1 < json.size(); cut += json.size() / 97 + 1) {
    ParsedFlightDump partial;
    EXPECT_FALSE(ParseFlightDump(json.substr(0, cut), &partial).ok())
        << "cut at " << cut;
  }
  // The intact dump still parses.
  EXPECT_TRUE(ParseFlightDump(json, &out).ok());
}

TEST(ParseFlightDumpTest, OversizedSpanCountIsRejected) {
  ServerConfig config = TracedServerConfig();
  KvDirectServer server(config);
  Client client(server);
  for (uint64_t k = 0; k < 8; k++) {
    ASSERT_TRUE(client.Put(Key(k), U64Value(k)).ok());
  }
  ASSERT_TRUE(server.flight_recorder().Trigger(FlightTrigger::kManual, "t"));
  const std::string json = server.flight_recorder().dumps()[0].json;
  ParsedFlightDump full;
  ASSERT_TRUE(ParseFlightDump(json, &full).ok());
  ASSERT_GT(full.total_spans, 1u);
  // A hostile span count must hit the cap and error instead of allocating.
  ParsedFlightDump capped;
  EXPECT_FALSE(ParseFlightDump(json, &capped, /*max_spans=*/1).ok());
}

// --- EventTracer drop surfacing ---

TEST(EventTracerDropTest, DropsAreCountedAndWarnedInTraceJson) {
  Simulator sim;
  EventTracer tracer(sim, /*max_events=*/2);
  tracer.set_enabled(true);
  for (int i = 0; i < 5; i++) {
    tracer.Instant("test", "event");
  }
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"dropped_events\":3"), std::string::npos);
  EXPECT_NE(json.find("warning"), std::string::npos);
}

TEST(EventTracerDropTest, DroppedCounterIsRegistered) {
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  KvDirectServer server(config);
  const auto value = server.metrics().CounterValue("kvd_events_dropped_total");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 0u);
}

}  // namespace
}  // namespace kvd
