// Tests for the CPU-KVS baseline and the server diagnostics report.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/baseline/cpu_kvs.h"
#include "src/common/units.h"
#include "src/core/diagnostics.h"
#include "src/core/kv_direct.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

TEST(CpuKvsTest, BasicRoundTrip) {
  CpuKvs store;
  ASSERT_TRUE(store.Put(Key(1), Key(2)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(store.Get(Key(1), out).ok());
  EXPECT_EQ(out, Key(2));
  ASSERT_TRUE(store.Delete(Key(1)).ok());
  EXPECT_EQ(store.Get(Key(1), out).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Delete(Key(1)).code(), StatusCode::kNotFound);
  EXPECT_FALSE(store.Put(std::vector<uint8_t>{}, Key(1)).ok());
}

TEST(CpuKvsTest, FetchAddSemantics) {
  CpuKvs store;
  ASSERT_TRUE(store.Put(Key(1), std::vector<uint8_t>(8, 0)).ok());
  auto first = store.FetchAdd(Key(1), 5);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u);
  auto second = store.FetchAdd(Key(1), 3);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 5u);
  EXPECT_FALSE(store.FetchAdd(Key(2), 1).ok());  // missing key
  ASSERT_TRUE(store.Put(Key(3), std::vector<uint8_t>(4, 0)).ok());
  EXPECT_FALSE(store.FetchAdd(Key(3), 1).ok());  // non-scalar value
}

TEST(CpuKvsTest, ConcurrentMixedOperationsStayConsistent) {
  CpuKvs store(8);
  constexpr uint64_t kKeys = 64;
  for (uint64_t i = 0; i < kKeys; i++) {
    ASSERT_TRUE(store.Put(Key(i), std::vector<uint8_t>(8, 0)).ok());
  }
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kAddsPerThread; i++) {
        const uint64_t id = (static_cast<uint64_t>(t) * 31 + i) % kKeys;
        ASSERT_TRUE(store.FetchAdd(Key(id), 1).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Total increments conserved across all keys.
  uint64_t total = 0;
  std::vector<uint8_t> out;
  for (uint64_t i = 0; i < kKeys; i++) {
    ASSERT_TRUE(store.Get(Key(i), out).ok());
    uint64_t v;
    std::memcpy(&v, out.data(), 8);
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(CpuKvsTest, ThroughputHarnessRuns) {
  const double mops = MeasureCpuKvsMops(1, 10000, 200000);
  EXPECT_GT(mops, 0.5);  // sane order of magnitude on any host
}

TEST(DiagnosticsTest, ReportCoversEveryComponent) {
  ServerConfig config;
  config.kvs_memory_bytes = 4 * kMiB;
  config.nic_dram.capacity_bytes = 512 * kKiB;
  KvDirectServer server(config);
  Client client(server);
  for (uint64_t i = 0; i < 100; i++) {
    ASSERT_TRUE(client.Put(Key(i), std::vector<uint8_t>(40, 1)).ok());
    ASSERT_TRUE(client.Get(Key(i)).ok());
  }
  const std::string report = DiagnosticsReport(server);
  // One representative metric per subsystem: the report renders the whole
  // registry, so a missing prefix means a component never registered.
  for (const char* metric :
       {"kvd_store_kvs", "kvd_proc_retired_total", "kvd_proc_latency_ns",
        "kvd_station_parked_total", "kvd_slab_allocations_total",
        "kvd_dispatch_hit_rate", "kvd_pcie_read_tlps_total{link=\"pcie0\"}",
        "kvd_pcie_read_tlps_total{link=\"pcie1\"}", "kvd_dma_read_tags_peak",
        "kvd_nicdram_accesses_total",
        "kvd_net_packets_total{direction=\"to_server\"}"}) {
    EXPECT_NE(report.find(metric), std::string::npos) << metric;
  }
  // Exact values for the 100 PUT + 100 GET run above.
  EXPECT_NE(report.find("kvd_store_kvs 100\n"), std::string::npos);
  EXPECT_NE(report.find("kvd_proc_retired_total 200\n"), std::string::npos);
  EXPECT_NE(report.find("kvd_proc_submitted_total 200\n"), std::string::npos);
}

TEST(DiagnosticsTest, ReportIsDeterministicAndSorted) {
  ServerConfig config;
  config.kvs_memory_bytes = 4 * kMiB;
  config.nic_dram.capacity_bytes = 512 * kKiB;
  auto run = [&config] {
    KvDirectServer server(config);
    Client client(server);
    for (uint64_t i = 0; i < 50; i++) {
      EXPECT_TRUE(client.Put(Key(i), std::vector<uint8_t>(16, 2)).ok());
    }
    return DiagnosticsReport(server);
  };
  const std::string first = run();
  EXPECT_EQ(first, run());

  // The body (everything after the two header lines) is sorted by metric name.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < first.size()) {
    size_t end = first.find('\n', start);
    if (end == std::string::npos) {
      end = first.size();
    }
    lines.push_back(first.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_GT(lines.size(), 3u);
  for (size_t i = 3; i < lines.size(); i++) {
    EXPECT_LE(lines[i - 1].substr(0, lines[i - 1].find(' ')),
              lines[i].substr(0, lines[i].find(' ')))
        << "line " << i;
  }
}

}  // namespace
}  // namespace kvd
