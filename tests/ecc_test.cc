// Tests for the ECC-spare-bit metadata codec (paper §4): Hamming correction,
// widened-parity double-bit detection, and metadata coexistence.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "src/common/random.h"
#include "src/dram/dram_cache_store.h"
#include "src/dram/ecc_metadata.h"

namespace kvd {
namespace {

std::array<uint8_t, 64> PatternLine(uint64_t seed) {
  std::array<uint8_t, 64> data;
  Rng rng(seed);
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

TEST(HammingTest, CleanWordDecodesClean) {
  Rng rng(1);
  for (int trial = 0; trial < 1000; trial++) {
    uint64_t data = rng.Next();
    uint8_t check = HammingEncode(data);
    const uint64_t original = data;
    EXPECT_EQ(HammingDecode(data, check), EccDecodeStatus::kClean);
    EXPECT_EQ(data, original);
  }
}

TEST(HammingTest, EverySingleDataBitFlipCorrects) {
  const uint64_t original = 0xdeadbeefcafef00dull;
  const uint8_t original_check = HammingEncode(original);
  for (int bit = 0; bit < 64; bit++) {
    uint64_t data = original ^ (uint64_t{1} << bit);
    uint8_t check = original_check;
    EXPECT_EQ(HammingDecode(data, check), EccDecodeStatus::kCorrectedSingle) << bit;
    EXPECT_EQ(data, original) << bit;
    EXPECT_EQ(check, original_check) << bit;
  }
}

TEST(HammingTest, EverySingleCheckBitFlipCorrects) {
  const uint64_t original = 0x0123456789abcdefull;
  const uint8_t original_check = HammingEncode(original);
  for (int bit = 0; bit < 7; bit++) {
    uint64_t data = original;
    uint8_t check = original_check ^ static_cast<uint8_t>(1u << bit);
    EXPECT_EQ(HammingDecode(data, check), EccDecodeStatus::kCorrectedSingle) << bit;
    EXPECT_EQ(data, original) << bit;
    EXPECT_EQ(check, original_check) << bit;
  }
}

TEST(EccLineTest, MetadataRoundTripsForAllValues) {
  const auto data = PatternLine(7);
  for (uint8_t tag = 0; tag < 16; tag++) {
    for (bool dirty : {false, true}) {
      EccLine line = EncodeLine(data, LineMetadata{tag, dirty});
      std::array<uint8_t, 64> out;
      const LineDecodeResult result = DecodeLine(line, out);
      EXPECT_EQ(result.status, EccDecodeStatus::kClean);
      EXPECT_FALSE(result.double_error_detected);
      EXPECT_EQ(result.metadata, (LineMetadata{tag, dirty}));
      EXPECT_EQ(std::memcmp(out.data(), data.data(), 64), 0);
    }
  }
}

TEST(EccLineTest, SingleBitErrorAnywhereCorrectsAndKeepsMetadata) {
  const auto data = PatternLine(11);
  const LineMetadata metadata{0xA, true};
  Rng rng(3);
  for (int trial = 0; trial < 512; trial++) {
    EccLine line = EncodeLine(data, metadata);
    const int bit = static_cast<int>(rng.NextBelow(512));  // any data bit
    line.words[bit / 64] ^= uint64_t{1} << (bit % 64);
    std::array<uint8_t, 64> out;
    const LineDecodeResult result = DecodeLine(line, out);
    EXPECT_EQ(result.status, EccDecodeStatus::kCorrectedSingle);
    EXPECT_EQ(result.corrected_words, 1);
    EXPECT_FALSE(result.double_error_detected);
    EXPECT_EQ(std::memcmp(out.data(), data.data(), 64), 0);
    EXPECT_EQ(result.metadata, metadata);
  }
}

TEST(EccLineTest, DoubleBitErrorInOneWordIsDetectedNotMiscorrected) {
  const auto data = PatternLine(13);
  Rng rng(5);
  int detected = 0;
  constexpr int kTrials = 512;
  for (int trial = 0; trial < kTrials; trial++) {
    EccLine line = EncodeLine(data, LineMetadata{3, false});
    const int word = static_cast<int>(rng.NextBelow(8));
    const int bit_a = static_cast<int>(rng.NextBelow(64));
    int bit_b = static_cast<int>(rng.NextBelow(64));
    while (bit_b == bit_a) {
      bit_b = static_cast<int>(rng.NextBelow(64));
    }
    line.words[word] ^= uint64_t{1} << bit_a;
    line.words[word] ^= uint64_t{1} << bit_b;
    std::array<uint8_t, 64> out;
    const LineDecodeResult result = DecodeLine(line, out);
    detected += result.double_error_detected ? 1 : 0;
    // Crucially: the decoder must NOT claim a clean single-bit repair.
    EXPECT_NE(result.status, EccDecodeStatus::kClean);
  }
  EXPECT_EQ(detected, kTrials);  // SECDED: every double detected
}

TEST(EccLineTest, SingleErrorsInBothGroupsCorrectIndependently) {
  const auto data = PatternLine(17);
  EccLine line = EncodeLine(data, LineMetadata{5, true});
  line.words[1] ^= uint64_t{1} << 20;  // group 0
  line.words[6] ^= uint64_t{1} << 41;  // group 1
  std::array<uint8_t, 64> out;
  const LineDecodeResult result = DecodeLine(line, out);
  EXPECT_EQ(result.corrected_words, 2);
  EXPECT_FALSE(result.double_error_detected);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 64), 0);
  EXPECT_EQ(result.metadata, (LineMetadata{5, true}));
}

// The paper's arithmetic: 8 x 8 ECC bits, minus 8 x 7 Hamming, minus 2 group
// parity = 6 free bits >= 5 metadata bits. The layout constants must respect
// that budget.
TEST(EccLineTest, BitBudgetMatchesPaper) {
  EXPECT_EQ(kTagBitsFirstWord + 4, kDirtyBitWord);
  EXPECT_LT(kSpareBitWord, 8);
  // 2 parity + 4 tag + 1 dirty + 1 spare = the 8 repurposed MSBs.
  EXPECT_EQ(2 + 4 + 1 + 1, 8);
}

// --- DramCacheStore: the ECC codec under a real cache ---

std::array<uint8_t, 64> LinePattern(uint8_t fill) {
  std::array<uint8_t, 64> data;
  data.fill(fill);
  return data;
}

TEST(DramCacheStoreTest, InstallLookupRoundTrip) {
  DramCacheStore cache(16);
  const auto data = LinePattern(0x7b);
  EXPECT_FALSE(cache.Install(3 * 64, data, false).has_value());
  const auto hit = cache.Lookup(3 * 64);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->data, data);
  EXPECT_FALSE(hit->dirty);
}

TEST(DramCacheStoreTest, TagDistinguishesConflictingHostLines) {
  DramCacheStore cache(16);
  // Host lines 3 and 3+16 map to the same slot with different tags.
  EXPECT_FALSE(cache.Install(3 * 64, LinePattern(1), false).has_value());
  ASSERT_TRUE(cache.Lookup(3 * 64).has_value());
  EXPECT_FALSE(cache.Lookup((3 + 16) * 64).has_value());  // tag mismatch
  // Installing the conflicting line displaces the first.
  EXPECT_FALSE(cache.Install((3 + 16) * 64, LinePattern(2), false).has_value());
  EXPECT_FALSE(cache.Lookup(3 * 64).has_value());
  ASSERT_TRUE(cache.Lookup((3 + 16) * 64).has_value());
}

TEST(DramCacheStoreTest, DirtyEvictionCarriesDataAndAddress) {
  DramCacheStore cache(16);
  EXPECT_FALSE(cache.Install(5 * 64, LinePattern(9), /*dirty=*/true).has_value());
  const auto eviction = cache.Install((5 + 32) * 64, LinePattern(4), false);
  ASSERT_TRUE(eviction.has_value());
  EXPECT_TRUE(eviction->dirty);
  EXPECT_EQ(eviction->host_address, 5u * 64);
  EXPECT_EQ(eviction->data, LinePattern(9));
}

TEST(DramCacheStoreTest, MarkDirtyUpdatesInPlace) {
  DramCacheStore cache(16);
  EXPECT_FALSE(cache.Install(2 * 64, LinePattern(1), false).has_value());
  EXPECT_TRUE(cache.MarkDirty(2 * 64, LinePattern(8)));
  const auto hit = cache.Lookup(2 * 64);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->dirty);
  EXPECT_EQ(hit->data, LinePattern(8));
  // Tag mismatch refuses the write-hit path.
  EXPECT_FALSE(cache.MarkDirty((2 + 16) * 64, LinePattern(8)));
}

TEST(DramCacheStoreTest, SingleBitFaultsAreScrubbedTransparently) {
  DramCacheStore cache(64);
  Rng rng(21);
  int survived = 0;
  for (int trial = 0; trial < 200; trial++) {
    const uint64_t line = rng.NextBelow(64);
    const auto data = LinePattern(static_cast<uint8_t>(trial));
    cache.Install(line * 64, data, false);
    cache.InjectBitFlip(line, static_cast<uint32_t>(rng.NextBelow(512)));  // data bits
    const auto hit = cache.Lookup(line * 64);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->data, data);
    survived++;
    // The scrub rewrote the corrected line: a second read is clean.
    const uint64_t corrected_before = cache.corrected_errors();
    ASSERT_TRUE(cache.Lookup(line * 64).has_value());
    EXPECT_EQ(cache.corrected_errors(), corrected_before);
  }
  EXPECT_EQ(survived, 200);
  EXPECT_EQ(cache.corrected_errors(), 200u);
}

TEST(DramCacheStoreTest, DoubleBitFaultBecomesACountedMiss) {
  DramCacheStore cache(16);
  const auto data = LinePattern(0x3c);
  cache.Install(7 * 64, data, false);
  // Two flips in the same 64-bit word.
  cache.InjectBitFlip(7, 130);
  cache.InjectBitFlip(7, 140);
  EXPECT_FALSE(cache.Lookup(7 * 64).has_value());
  EXPECT_EQ(cache.double_errors(), 1u);
  // The slot was reset: a refetched install works again.
  cache.Install(7 * 64, data, false);
  ASSERT_TRUE(cache.Lookup(7 * 64).has_value());
}

}  // namespace
}  // namespace kvd
