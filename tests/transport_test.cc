// The transport layer in isolation and end to end: the frame codec, the
// replay cache (pinning, bounded eviction scan, in-flight drop), the
// FrameEndpoint receive half, fatal-path timeouts surfaced as kTimedOut
// instead of process aborts, and the disjoint per-client sequence spaces that
// keep one shared replay cache collision-free across clients.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "src/common/units.h"
#include "src/core/kv_direct.h"
#include "src/replica/replicated_client.h"
#include "src/replica/replication_group.h"
#include "src/sim/simulator.h"
#include "src/transport/frame.h"
#include "src/transport/frame_endpoint.h"
#include "src/transport/replay_cache.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

uint64_t AsU64(const std::vector<uint8_t>& value) {
  uint64_t v = 0;
  std::memcpy(&v, value.data(), std::min<size_t>(8, value.size()));
  return v;
}

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

// --- frame codec ---

TEST(FrameTest, RoundTrip) {
  const std::vector<uint8_t> payload = Bytes({1, 2, 3, 4, 5});
  const std::vector<uint8_t> packet = FramePacket(42, payload);
  ASSERT_EQ(packet.size(), kFrameHeaderBytes + payload.size());
  Result<Frame> frame = ParseFrame(packet);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->sequence, 42u);
  EXPECT_EQ(frame->payload, payload);
}

TEST(FrameTest, EveryBitFlipIsDetected) {
  const std::vector<uint8_t> packet = FramePacket(7, Bytes({9, 8, 7}));
  for (size_t byte = 0; byte < packet.size(); byte++) {
    for (int bit = 0; bit < 8; bit++) {
      std::vector<uint8_t> mutated = packet;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(ParseFrame(mutated).ok())
          << "flip of byte " << byte << " bit " << bit << " went undetected";
    }
  }
}

TEST(FrameTest, TruncationIsRejected) {
  const std::vector<uint8_t> packet = FramePacket(7, Bytes({1, 2, 3}));
  for (size_t len = 0; len < packet.size(); len++) {
    EXPECT_FALSE(
        ParseFrame(std::span<const uint8_t>(packet.data(), len)).ok());
  }
}

// --- replay cache ---

TEST(ReplayCacheTest, MissAdmitCompleteLifecycle) {
  Simulator sim;
  ReplayCache cache(sim, ReplayCache::Config{});
  EXPECT_EQ(cache.Lookup(1, nullptr), ReplayCache::Hit::kMiss);
  cache.Admit(1);
  EXPECT_EQ(cache.Lookup(1, nullptr), ReplayCache::Hit::kInFlight);
  cache.Complete(1, Bytes({0xaa, 0xbb}));
  const std::vector<uint8_t>* response = nullptr;
  EXPECT_EQ(cache.Lookup(1, &response), ReplayCache::Hit::kDone);
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(*response, Bytes({0xaa, 0xbb}));
}

TEST(ReplayCacheTest, AdjacentClientSequenceSpacesDoNotCollide) {
  // AcquireClientSequenceBase hands each client a disjoint 2^40 block
  // (client id << 40). The last sequence of client 1's block and the first
  // of client 2's are numerically adjacent; they must stay independent
  // entries through the whole lifecycle.
  Simulator sim;
  ReplayCache cache(sim, ReplayCache::Config{});
  const uint64_t top_of_client1 = (2ull << 40) - 1;  // client 1: [1<<40, 2<<40)
  const uint64_t bottom_of_client2 = 2ull << 40;     // client 2's first frame
  cache.Admit(top_of_client1);
  EXPECT_EQ(cache.Lookup(bottom_of_client2, nullptr), ReplayCache::Hit::kMiss);
  cache.Complete(top_of_client1, Bytes({1}));
  cache.Admit(bottom_of_client2);
  EXPECT_EQ(cache.Lookup(top_of_client1, nullptr), ReplayCache::Hit::kDone);
  EXPECT_EQ(cache.Lookup(bottom_of_client2, nullptr),
            ReplayCache::Hit::kInFlight);
  cache.Complete(bottom_of_client2, Bytes({2}));
  const std::vector<uint8_t>* response = nullptr;
  ASSERT_EQ(cache.Lookup(top_of_client1, &response), ReplayCache::Hit::kDone);
  EXPECT_EQ(*response, Bytes({1}));
  ASSERT_EQ(cache.Lookup(bottom_of_client2, &response),
            ReplayCache::Hit::kDone);
  EXPECT_EQ(*response, Bytes({2}));
}

TEST(ReplayCacheTest, FullWidthSequencesSurviveTheCache) {
  // High client ids push bases past bit 62 (id << 40): sequences are full
  // 64-bit values and no edge of the per-client split may truncate or alias.
  Simulator sim;
  ReplayCache cache(sim, ReplayCache::Config{});
  const std::vector<uint64_t> edges = {
      (1ull << 40) - 1,                  // below the first client base
      1ull << 40,                        // client 1's first frame
      (1ull << 63) | ((1ull << 40) - 1), // top of a block with bit 63 set
      1ull << 63,                        // base of client 1<<23
      UINT64_MAX};                       // the very last representable frame
  for (size_t i = 0; i < edges.size(); i++) {
    cache.Admit(edges[i]);
    cache.Complete(edges[i], Bytes({static_cast<uint8_t>(i)}));
  }
  for (size_t i = 0; i < edges.size(); i++) {
    const std::vector<uint8_t>* response = nullptr;
    ASSERT_EQ(cache.Lookup(edges[i], &response), ReplayCache::Hit::kDone)
        << "edge " << i;
    EXPECT_EQ(*response, Bytes({static_cast<uint8_t>(i)})) << "edge " << i;
  }
}

TEST(ReplayCacheTest, RetainTimePinsFreshCompletions) {
  Simulator sim;
  ReplayCache::Config config;
  config.entries = 1;  // eviction pressure from the second admission on
  config.retain_time = 100 * kMicrosecond;
  ReplayCache cache(sim, config);

  cache.Admit(1);
  cache.Complete(1, Bytes({1}));
  cache.Admit(2);  // over budget, but entry 1 is younger than retain_time
  EXPECT_EQ(cache.Lookup(1, nullptr), ReplayCache::Hit::kDone);
  cache.Complete(2, Bytes({2}));

  sim.RunUntil(sim.Now() + 200 * kMicrosecond);  // both completions age out
  cache.Admit(3);  // now the oldest completed entry is evictable
  EXPECT_EQ(cache.Lookup(1, nullptr), ReplayCache::Hit::kMiss);
}

TEST(ReplayCacheTest, InFlightEntriesAreNeverEvicted) {
  Simulator sim;
  ReplayCache::Config config;
  config.entries = 1;
  config.retain_time = 0;
  ReplayCache cache(sim, config);

  cache.Admit(1);  // in flight: pinned regardless of pressure or age
  for (uint64_t seq = 2; seq < 50; seq++) {
    cache.Admit(seq);
    cache.Complete(seq, Bytes({1}));
  }
  EXPECT_EQ(cache.Lookup(1, nullptr), ReplayCache::Hit::kInFlight);
}

// Regression for the eviction scan: a pinned prefix must cost O(1) per
// admission (rotating cursor), not an O(cache) rescan, and must not block
// eviction of completed entries queued behind it. The pre-refactor scan
// stopped at the first pinned entry, so a long-lived in-flight head made the
// cache grow without bound.
TEST(ReplayCacheTest, EvictionScanIsBoundedAndMakesProgress) {
  Simulator sim;
  ReplayCache::Config config;
  config.entries = 4;
  config.retain_time = 0;  // completed entries evictable immediately
  ReplayCache cache(sim, config);

  constexpr uint64_t kPins = 4;
  for (uint64_t seq = 1; seq <= kPins; seq++) {
    cache.Admit(seq);  // in flight forever: a pinned prefix at the head
  }

  constexpr uint64_t kAdmissions = 200;
  for (uint64_t i = 0; i < kAdmissions; i++) {
    const uint64_t before = cache.evict_scan_steps();
    cache.Admit(1000 + i);
    EXPECT_LE(cache.evict_scan_steps() - before, ReplayCache::kMaxEvictScanSteps);
    cache.Complete(1000 + i, Bytes({1}));
  }

  // Progress: evictable entries behind the pins were reclaimed, so the cache
  // stays near budget instead of holding all 200 completed admissions.
  EXPECT_LE(cache.size(), kPins + config.entries + ReplayCache::kMaxEvictScanSteps);
  // The pins themselves survived every scan.
  for (uint64_t seq = 1; seq <= kPins; seq++) {
    EXPECT_EQ(cache.Lookup(seq, nullptr), ReplayCache::Hit::kInFlight);
  }
}

TEST(ReplayCacheTest, DropInFlightForgetsUnansweredExecutions) {
  Simulator sim;
  ReplayCache cache(sim, ReplayCache::Config{});
  cache.Admit(1);
  cache.Admit(2);
  cache.Complete(2, Bytes({2}));
  cache.DropInFlight();
  // The unanswered execution is forgotten (a retransmission re-executes)...
  EXPECT_EQ(cache.Lookup(1, nullptr), ReplayCache::Hit::kMiss);
  // ...while the answered one still replays.
  EXPECT_EQ(cache.Lookup(2, nullptr), ReplayCache::Hit::kDone);
  cache.Admit(1);  // re-admitting the dropped sequence works
  EXPECT_EQ(cache.Lookup(1, nullptr), ReplayCache::Hit::kInFlight);
}

// --- frame endpoint ---

TEST(FrameEndpointTest, CorruptFrameIsDroppedAndCounted) {
  Simulator sim;
  FrameEndpoint endpoint(sim, ReplayCache::Config{});
  std::vector<uint8_t> packet = FramePacket(1, Bytes({1, 2, 3}));
  packet.back() ^= 0x01;
  bool responded = false;
  std::optional<Frame> frame =
      endpoint.Accept(packet, [&](std::vector<uint8_t>) { responded = true; });
  EXPECT_FALSE(frame.has_value());
  EXPECT_FALSE(responded);
  EXPECT_EQ(endpoint.stats().corrupt_frames, 1u);
}

TEST(FrameEndpointTest, RetransmissionIsAnsweredFromTheCache) {
  Simulator sim;
  FrameEndpoint endpoint(sim, ReplayCache::Config{});
  const std::vector<uint8_t> packet = FramePacket(1, Bytes({1, 2, 3}));

  std::optional<Frame> frame = endpoint.Accept(packet, [](std::vector<uint8_t>) {});
  ASSERT_TRUE(frame.has_value());
  endpoint.Admit(frame->sequence);
  const std::vector<uint8_t> framed_response =
      endpoint.Complete(frame->sequence, Bytes({0xee}), /*cache=*/true);

  std::vector<uint8_t> replayed;
  std::optional<Frame> dup = endpoint.Accept(
      packet, [&](std::vector<uint8_t> response) { replayed = std::move(response); });
  EXPECT_FALSE(dup.has_value());  // handled: answered without re-execution
  EXPECT_EQ(replayed, framed_response);
  EXPECT_EQ(endpoint.stats().replayed_responses, 1u);
}

TEST(FrameEndpointTest, InFlightDuplicateIsDropped) {
  Simulator sim;
  FrameEndpoint endpoint(sim, ReplayCache::Config{});
  const std::vector<uint8_t> packet = FramePacket(1, Bytes({1, 2, 3}));

  std::optional<Frame> frame = endpoint.Accept(packet, [](std::vector<uint8_t>) {});
  ASSERT_TRUE(frame.has_value());
  endpoint.Admit(frame->sequence);  // execution started, no response yet

  bool responded = false;
  std::optional<Frame> dup =
      endpoint.Accept(packet, [&](std::vector<uint8_t>) { responded = true; });
  EXPECT_FALSE(dup.has_value());
  EXPECT_FALSE(responded);  // neither answered nor re-executed
  EXPECT_EQ(endpoint.stats().stale_retransmits, 1u);
}

TEST(FrameEndpointTest, UncachedControlResponseIsReEvaluated) {
  Simulator sim;
  FrameEndpoint endpoint(sim, ReplayCache::Config{});
  const std::vector<uint8_t> packet = FramePacket(1, Bytes({1, 2, 3}));

  // A control response (e.g. a replica redirect) is framed but never admitted
  // or cached: its answer depends on state that may change.
  std::optional<Frame> frame = endpoint.Accept(packet, [](std::vector<uint8_t>) {});
  ASSERT_TRUE(frame.has_value());
  (void)endpoint.Complete(frame->sequence, Bytes({0xcc}), /*cache=*/false);

  std::optional<Frame> again = endpoint.Accept(packet, [](std::vector<uint8_t>) {});
  ASSERT_TRUE(again.has_value());  // re-evaluated, not replayed
  EXPECT_EQ(endpoint.stats().replayed_responses, 0u);
  EXPECT_EQ(endpoint.stats().stale_retransmits, 0u);
}

// --- fatal paths surface kTimedOut instead of aborting ---

TEST(TimeoutTest, ClientSurfacesTimedOutWhenEveryFrameIsDropped) {
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  config.faults.at(FaultSite::kNetDropToServer) = 1.0;  // nothing gets through
  KvDirectServer server(config);
  ASSERT_TRUE(server.Load(Key(1), U64Value(7)).ok());

  Client::Options options;
  options.retry.timeout = 10 * kMicrosecond;
  options.retry.max_attempts = 3;
  Client client(server, options);

  client.Enqueue([] {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(1);
    return op;
  }());
  std::vector<KvResultMessage> results = client.Flush();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].code, ResultCode::kTimedOut);
  EXPECT_EQ(client.stats().packets_sent, 1u);
  EXPECT_EQ(client.stats().retransmits, options.retry.max_attempts - 1);
  // The synchronous wrappers map it to StatusCode::kTimedOut.
  Result<std::vector<uint8_t>> value = client.Get(Key(1));
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kTimedOut);
}

TEST(TimeoutTest, ReplicatedClientSurfacesTimedOutWhenEveryFrameIsDropped) {
  ReplicationConfig config;
  config.num_replicas = 3;
  config.server.kvs_memory_bytes = 8 * kMiB;
  config.server.nic_dram.capacity_bytes = 1 * kMiB;
  config.faults.at(FaultSite::kNetDropToServer) = 1.0;
  ReplicationGroup group(config);

  ReplicatedClient::Options options;
  options.timeout = 10 * kMicrosecond;
  options.max_attempts = 4;
  options.attempts_per_target = 2;  // rotating targets must not defeat the cap
  ReplicatedClient client(group, options);

  KvOperation op;
  op.opcode = Opcode::kPut;
  op.key = Key(1);
  op.value = U64Value(1);
  client.Enqueue(std::move(op));
  std::vector<KvResultMessage> results = client.Flush();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].code, ResultCode::kTimedOut);
  // The attempt cap bounds timer-driven retransmits. A redirect bounce off a
  // rotated-to backup consumes an attempt without counting a retransmit, and
  // whether the bounce or the timer wins the race depends on the jittered
  // backoff draw — so the exact count is seed-dependent below the cap.
  EXPECT_GE(client.stats().retransmits, 1u);
  EXPECT_LE(client.stats().retransmits, options.max_attempts - 1);
}

// --- cross-client sequence spaces over the shared replay cache ---

TEST(SequenceSpaceTest, ClientsAcquireDisjointSpaces) {
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  KvDirectServer server(config);
  const uint64_t first = server.AcquireClientSequenceBase();
  const uint64_t second = server.AcquireClientSequenceBase();
  EXPECT_NE(first, second);
  EXPECT_EQ(second - first, uint64_t{1} << 40);  // 2^40 sequences per client
}

TEST(SequenceSpaceTest, TwoClientsShareOneReplayCacheWithoutCollisions) {
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  KvDirectServer server(config);
  ASSERT_TRUE(server.Load(Key(1), U64Value(0)).ok());

  // Both clients start at offset 0 inside their own 2^40 space. If the spaces
  // collided, the second client's first frames would hit the first client's
  // replay entries and be answered with the wrong responses.
  Client a(server);
  Client b(server);
  for (uint64_t round = 0; round < 8; round++) {
    Result<uint64_t> from_a = a.Update(Key(1), 1);  // fetch-and-add
    ASSERT_TRUE(from_a.ok());
    EXPECT_EQ(*from_a, 2 * round);
    Result<uint64_t> from_b = b.Update(Key(1), 1);
    ASSERT_TRUE(from_b.ok());
    EXPECT_EQ(*from_b, 2 * round + 1);
  }
  // No frame was misclassified as a duplicate of the other client's traffic.
  EXPECT_EQ(server.replayed_responses(), 0u);
  EXPECT_EQ(server.stale_retransmits(), 0u);
  Result<std::vector<uint8_t>> final_value = a.Get(Key(1));
  ASSERT_TRUE(final_value.ok());
  EXPECT_EQ(AsU64(*final_value), 16u);  // every add applied exactly once
}

}  // namespace
}  // namespace kvd
