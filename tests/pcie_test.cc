// Tests for the PCIe link and DMA engine models: latency distribution, tag
// and credit limits, and the throughput ceilings the paper reports (§2.4).
#include <gtest/gtest.h>

#include <functional>

#include "src/common/hashing.h"
#include "src/common/units.h"
#include "src/pcie/dma_engine.h"
#include "src/pcie/pcie_link.h"
#include "src/sim/simulator.h"

namespace kvd {
namespace {

PcieLinkConfig DeterministicLinkConfig() {
  PcieLinkConfig config;
  config.random_read_extra_mean = 0;  // fixed latency for exact assertions
  return config;
}

TEST(PcieLinkTest, SingleReadLatencyIsCachedLatencyPlusWire) {
  Simulator sim;
  PcieLink link(sim, DeterministicLinkConfig(), "pcie0");
  SimTime completed_at = 0;
  link.SubmitRead(64, /*random_access=*/false, [&] { completed_at = sim.Now(); });
  sim.RunUntilIdle();
  // 26 B request upstream + 800 ns memory + (26+64) B completion downstream.
  const auto wire_up = static_cast<SimTime>(26 * PicosPerByte(7.87e9));
  const auto wire_down = static_cast<SimTime>(90 * PicosPerByte(7.87e9));
  EXPECT_NEAR(static_cast<double>(completed_at),
              static_cast<double>(wire_up + 800 * kNanosecond + wire_down),
              2000.0);  // 2 ns rounding slack
}

TEST(PcieLinkTest, RandomReadsHaveLatencyTail) {
  Simulator sim;
  PcieLinkConfig config;  // default: 250 ns exponential extra
  PcieLink link(sim, config, "pcie0");
  int done = 0;
  // Issue serially so queueing does not inflate latency.
  std::function<void()> next = [&] {
    done++;
    if (done < 2000) {
      link.SubmitRead(64, true, next);
    }
  };
  link.SubmitRead(64, true, next);
  sim.RunUntilIdle();
  const LatencyHistogram& lat = link.read_latency();
  EXPECT_EQ(lat.count(), 2000u);
  // Mean ~ 800 + 250 + wire ~ 1060 ns; p95 well above the mean (Figure 3b).
  EXPECT_NEAR(lat.mean(), 1060, 60);
  EXPECT_GT(lat.Percentile(0.95), lat.Percentile(0.50) + 300);
  EXPECT_GE(lat.min(), 800u);
}

TEST(PcieLinkTest, PostedWriteCompletesBeforeCreditReturns) {
  Simulator sim;
  PcieLink link(sim, DeterministicLinkConfig(), "pcie0");
  SimTime write_done = 0;
  link.SubmitWrite(64, [&] { write_done = sim.Now(); });
  sim.RunUntilIdle();
  // Write completes at wire time (~11 ns for 90 B), long before the 200 ns
  // host consume latency has elapsed.
  EXPECT_LT(write_done, 50 * kNanosecond);
  EXPECT_GT(sim.Now(), 200 * kNanosecond);  // credit-return event ran after
}

TEST(PcieLinkTest, NonPostedCreditsLimitOutstandingReads) {
  Simulator sim;
  PcieLinkConfig config = DeterministicLinkConfig();
  config.nonposted_header_credits = 4;
  PcieLink link(sim, config, "pcie0");
  int completed = 0;
  for (int i = 0; i < 16; i++) {
    link.SubmitRead(64, false, [&] { completed++; });
  }
  // Before any time passes only the credit-limited subset is on the wire.
  sim.RunUntil(1);
  EXPECT_EQ(completed, 0);
  sim.RunUntilIdle();
  EXPECT_EQ(completed, 16);
  EXPECT_EQ(link.read_tlps(), 16u);
}

TEST(PcieLinkTest, WireBytesAccounted) {
  Simulator sim;
  PcieLink link(sim, DeterministicLinkConfig(), "pcie0");
  link.SubmitRead(64, false, [] {});
  link.SubmitWrite(128, [] {});
  sim.RunUntilIdle();
  EXPECT_EQ(link.upstream_bytes(), 26u + 26u + 128u);  // read hdr + write TLP
  EXPECT_EQ(link.downstream_bytes(), 26u + 64u);       // completion TLP
}

TEST(PcieLinkTest, RejectsOversizedPayload) {
  Simulator sim;
  PcieLink link(sim, DeterministicLinkConfig(), "pcie0");
  EXPECT_DEATH(link.SubmitRead(4096, false, [] {}), "payload");
}

// Paper §2.4: with 64 tags and ~1050 ns random read latency, 64 B DMA read
// throughput saturates around 60 Mops.
TEST(DmaEngineTest, RandomReadThroughputMatchesPaperCeiling) {
  Simulator sim;
  DmaEngineConfig config;
  DmaEngine dma(sim, config);
  uint64_t completed = 0;
  // Closed loop with far more parallelism than tags: tags are the limiter.
  std::function<void()> refill = [&] {
    completed++;
    dma.Read(Mix64(completed) % (1 << 30) * 64 % (1ull << 36), 64, refill);
  };
  for (int i = 0; i < 256; i++) {
    dma.Read(static_cast<uint64_t>(i) * 4096, 64, refill);
  }
  const SimTime horizon = 2 * kMillisecond;
  sim.RunUntil(horizon);
  const double mops = static_cast<double>(completed) /
                      (static_cast<double>(horizon) / kSecond) / 1e6;
  EXPECT_GT(mops, 50);
  EXPECT_LT(mops, 75);
  EXPECT_EQ(dma.tag_pool().peak_in_use(), 64u);
}

// Writes are posted: 64 B write throughput is bandwidth-bound near the
// theoretical 2 x 7.87 GB/s / 90 B = ~175 Mops, far above read throughput.
TEST(DmaEngineTest, WriteThroughputExceedsReadThroughput) {
  Simulator sim;
  DmaEngineConfig config;
  DmaEngine dma(sim, config);
  uint64_t completed = 0;
  std::function<void()> refill = [&] {
    completed++;
    dma.Write(Mix64(completed) * 64 % (1ull << 36), 64, refill);
  };
  for (int i = 0; i < 256; i++) {
    dma.Write(static_cast<uint64_t>(i) * 4096, 64, refill);
  }
  const SimTime horizon = 1 * kMillisecond;
  sim.RunUntil(horizon);
  const double mops = static_cast<double>(completed) /
                      (static_cast<double>(horizon) / kSecond) / 1e6;
  EXPECT_GT(mops, 120);
}

TEST(DmaEngineTest, LargeReadsSplitIntoTlps) {
  Simulator sim;
  DmaEngineConfig config;
  config.link.random_read_extra_mean = 0;
  DmaEngine dma(sim, config);
  bool done = false;
  dma.Read(0, 1024, [&] { done = true; }, false);
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  uint64_t tlps = 0;
  for (uint32_t i = 0; i < dma.num_links(); i++) {
    tlps += dma.link(i).read_tlps();
  }
  EXPECT_EQ(tlps, 4u);  // 1024 / 256 max payload
}

TEST(DmaEngineTest, SpreadsLoadAcrossLinks) {
  Simulator sim;
  DmaEngineConfig config;
  DmaEngine dma(sim, config);
  for (uint64_t i = 0; i < 2000; i++) {
    dma.Write(i * 64, 64, [] {});
  }
  sim.RunUntilIdle();
  const uint64_t a = dma.link(0).write_tlps();
  const uint64_t b = dma.link(1).write_tlps();
  EXPECT_EQ(a + b, 2000u);
  EXPECT_NEAR(static_cast<double>(a), 1000, 150);
}

}  // namespace
}  // namespace kvd
