// Tests for src/obs: the JSON writer, the metric registry and its three
// exposition formats, the simulated-time sampler, and the event tracer with
// Chrome trace export — plus an end-to-end YCSB-B run through KvDirectServer
// exporting all of them.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/core/kv_direct.h"
#include "src/obs/event_tracer.h"
#include "src/obs/json_writer.h"
#include "src/obs/metric_registry.h"
#include "src/obs/time_series_sampler.h"
#include "src/sim/simulator.h"
#include "src/workload/ycsb.h"

namespace kvd {
namespace {

TEST(JsonWriterTest, NestedStructure) {
  JsonWriter w;
  w.BeginObject();
  w.Field("name", std::string_view("bench"));
  w.Key("rows").BeginArray();
  w.BeginObject().Field("mops", 1.5).Field("n", uint64_t{42}).EndObject();
  w.Null();
  w.Bool(true);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            R"({"name":"bench","rows":[{"mops":1.5,"n":42},null,true]})");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  JsonWriter w;
  w.BeginObject().Field("k\"ey", std::string_view("v\nal")).EndObject();
  EXPECT_EQ(w.str(), "{\"k\\\"ey\":\"v\\nal\"}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Number(std::numeric_limits<double>::quiet_NaN());
  w.Number(std::numeric_limits<double>::infinity());
  w.Number(2.5);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,2.5]");
}

TEST(MetricRegistryTest, RegistrationAndLookup) {
  MetricRegistry registry;
  uint64_t ops = 7;
  double depth = 1.25;
  registry.RegisterCounter("test_ops_total", "ops", {}, &ops);
  registry.RegisterGauge("test_depth", "queue depth", {}, [&] { return depth; });
  LatencyHistogram hist;
  hist.Add(100);
  registry.RegisterHistogram("test_latency_ns", "latency", {},
                             [&] { return hist; });

  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.CounterValue("test_ops_total"), 7u);
  EXPECT_EQ(registry.GaugeValue("test_depth"), 1.25);
  ASSERT_TRUE(registry.HistogramValue("test_latency_ns").has_value());
  EXPECT_EQ(registry.HistogramValue("test_latency_ns")->count(), 1u);

  // Readers are live: mutating the backing store changes the reported value.
  ops = 9;
  depth = 2.5;
  EXPECT_EQ(registry.CounterValue("test_ops_total"), 9u);
  EXPECT_EQ(registry.GaugeValue("test_depth"), 2.5);

  // Missing names and kind mismatches return nullopt.
  EXPECT_FALSE(registry.CounterValue("no_such_metric").has_value());
  EXPECT_FALSE(registry.CounterValue("test_depth").has_value());
  EXPECT_FALSE(registry.GaugeValue("test_ops_total").has_value());
}

TEST(MetricRegistryTest, LabelsDistinguishSeries) {
  MetricRegistry registry;
  uint64_t a = 1;
  uint64_t b = 2;
  registry.RegisterCounter("link_tlps_total", "tlps", {{"link", "0"}}, &a);
  registry.RegisterCounter("link_tlps_total", "tlps", {{"link", "1"}}, &b);
  EXPECT_EQ(registry.CounterValue("link_tlps_total", {{"link", "0"}}), 1u);
  EXPECT_EQ(registry.CounterValue("link_tlps_total", {{"link", "1"}}), 2u);
  EXPECT_FALSE(registry.CounterValue("link_tlps_total").has_value());
  EXPECT_EQ(registry.Names(), std::vector<std::string>{"link_tlps_total"});
}

TEST(MetricRegistryTest, PrometheusTextGolden) {
  MetricRegistry registry;
  uint64_t gets = 150;
  // Registration order is intentionally unsorted; exposition sorts by name.
  registry.RegisterGauge("kvd_util", "utilization", {}, [] { return 0.5; });
  registry.RegisterCounter("kvd_gets_total", "GET ops", {}, &gets);
  LatencyHistogram hist;
  for (uint64_t i = 1; i <= 4; i++) {
    hist.Add(10);
  }
  registry.RegisterHistogram("kvd_lat_ns", "latency", {}, [&] { return hist; });

  EXPECT_EQ(registry.PrometheusText(),
            "# HELP kvd_gets_total GET ops\n"
            "# TYPE kvd_gets_total counter\n"
            "kvd_gets_total 150\n"
            "# HELP kvd_lat_ns latency\n"
            "# TYPE kvd_lat_ns summary\n"
            "kvd_lat_ns{quantile=\"0.5\"} 10\n"
            "kvd_lat_ns{quantile=\"0.95\"} 10\n"
            "kvd_lat_ns{quantile=\"0.99\"} 10\n"
            "kvd_lat_ns_sum 40\n"
            "kvd_lat_ns_count 4\n"
            "# HELP kvd_util utilization\n"
            "# TYPE kvd_util gauge\n"
            "kvd_util 0.5\n");
}

TEST(MetricRegistryTest, JsonGolden) {
  MetricRegistry registry;
  uint64_t n = 3;
  registry.RegisterCounter("b_total", "b", {{"kind", "x"}}, &n);
  registry.RegisterGauge("a_rate", "a", {}, [] { return 0.25; });
  EXPECT_EQ(registry.ToJson(),
            R"({"metrics":[)"
            R"({"name":"a_rate","type":"gauge","labels":{},"value":0.25},)"
            R"({"name":"b_total","type":"counter","labels":{"kind":"x"},"value":3})"
            R"(]})");
}

TEST(MetricRegistryTest, PlainTextIsSorted) {
  MetricRegistry registry;
  uint64_t z = 1;
  uint64_t a = 2;
  registry.RegisterCounter("z_total", "z", {}, &z);
  registry.RegisterCounter("a_total", "a", {}, &a);
  registry.RegisterGauge("m_rate", "m", {}, [] { return 7.0; });
  EXPECT_EQ(registry.PlainText(),
            "a_total 2\n"
            "m_rate 7\n"
            "z_total 1\n");
}

TEST(TimeSeriesSamplerTest, SamplesOnSimulatedCadence) {
  Simulator sim;
  MetricRegistry registry;
  uint64_t events = 0;
  registry.RegisterCounter("events_total", "events", {}, &events);

  TimeSeriesSampler sampler(sim, registry,
                            {.interval = 10 * kMicrosecond, .max_samples = 1000});
  sampler.Start();
  ASSERT_EQ(sampler.series_names(), std::vector<std::string>{"events_total"});

  // The workload bumps the counter at 5, 15, 25 us; the sampler reads at
  // 10, 20, 30, ... us of simulated time.
  for (int i = 0; i < 3; i++) {
    sim.ScheduleAt((5 + 10 * i) * kMicrosecond, [&] { events++; });
  }
  sim.RunUntil(35 * kMicrosecond);
  sampler.Stop();
  sim.RunUntilIdle();  // drains the one already-scheduled no-op tick

  ASSERT_EQ(sampler.samples().size(), 3u);
  for (size_t i = 0; i < 3; i++) {
    EXPECT_EQ(sampler.samples()[i].when, (10 + 10 * i) * kMicrosecond);
    EXPECT_EQ(sampler.samples()[i].values[0], static_cast<double>(i + 1));
  }

  const std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"interval_ps\":10000000"), std::string::npos);
  EXPECT_NE(json.find("\"events_total\":[[10000000,1]"), std::string::npos);
}

TEST(TimeSeriesSamplerTest, MaxSamplesLeavesQueueDrainable) {
  Simulator sim;
  MetricRegistry registry;
  registry.RegisterGauge("g", "g", {}, [] { return 1.0; });
  TimeSeriesSampler sampler(sim, registry, {.interval = kMicrosecond, .max_samples = 5});
  sampler.Start();
  sim.RunUntilIdle();  // terminates: the sampler stops re-arming at the cap
  EXPECT_EQ(sampler.samples().size(), 5u);
}

TEST(EventTracerTest, DisabledRecordsNothing) {
  Simulator sim;
  EventTracer tracer(sim);
  EXPECT_FALSE(tracer.enabled());
  tracer.Instant("cat", "evt");
  tracer.Complete("cat", "span", 0, 100);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(EventTracerTest, ChromeTraceShape) {
  Simulator sim;
  EventTracer tracer(sim);
  tracer.set_enabled(true);
  sim.Schedule(2 * kMicrosecond, [&] {
    tracer.Instant("station", "park", {{"slot", 3}});
  });
  sim.RunUntilIdle();
  tracer.Complete("pcie", "dma_read", kMicrosecond, 3 * kMicrosecond,
                  {{"bytes", 64}});
  ASSERT_EQ(tracer.size(), 2u);

  const std::string json = tracer.ToChromeTraceJson();
  // Track metadata: one named lane per category.
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"pcie\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"station\"}"), std::string::npos);
  // The instant event: 2 us in, thread-scoped.
  EXPECT_NE(json.find("\"name\":\"park\",\"cat\":\"station\",\"ph\":\"i\","
                      "\"ts\":2,\"s\":\"t\""),
            std::string::npos);
  // The complete event: starts at 1 us, lasts 2 us.
  EXPECT_NE(json.find("\"name\":\"dma_read\",\"cat\":\"pcie\",\"ph\":\"X\","
                      "\"ts\":1,\"dur\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"bytes\":64}"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
}

TEST(EventTracerTest, BoundedBufferDropsNewest) {
  Simulator sim;
  EventTracer tracer(sim, /*max_events=*/3);
  tracer.set_enabled(true);
  for (int i = 0; i < 5; i++) {
    tracer.Instant("cat", "evt");
  }
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 2u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(EventTracerTest, WriteChromeTraceSmoke) {
  Simulator sim;
  EventTracer tracer(sim);
  tracer.set_enabled(true);
  tracer.Complete("net", "packet", 0, kMicrosecond);
  const std::string path = ::testing::TempDir() + "/obs_trace.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buf[16] = {};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, file), 0u);
  std::fclose(file);
  EXPECT_EQ(std::strncmp(buf, "{\"traceEvents\"", 14), 0);
  std::remove(path.c_str());
}

// Acceptance: a YCSB-B run through the full server exports per-subsystem
// counters in Prometheus text and JSON, and a Perfetto-loadable trace.
TEST(ObservabilityIntegrationTest, YcsbBExportsMetricsAndTrace) {
  ServerConfig config;
  config.kvs_memory_bytes = 4 * kMiB;
  config.nic_dram.capacity_bytes = 512 * kKiB;
  config.enable_tracing = true;
  KvDirectServer server(config);

  WorkloadConfig wl;
  wl.num_keys = 2000;
  wl.value_bytes = 32;
  wl.get_ratio = 0.95;  // YCSB-B
  wl.distribution = KeyDistribution::kLongTail;
  YcsbWorkload workload(wl);
  for (uint64_t id = 0; id < wl.num_keys; id++) {
    const KvOperation op = workload.LoadOpFor(id);
    ASSERT_TRUE(server.Load(op.key, op.value).ok());
  }

  TimeSeriesSampler sampler(server.simulator(), server.metrics(),
                            {.interval = 5 * kMicrosecond});
  sampler.Start();

  Client client(server);
  constexpr uint64_t kOps = 2000;
  for (uint64_t i = 0; i < kOps; i++) {
    client.Enqueue(workload.NextOp());
  }
  const std::vector<KvResultMessage> results = client.Flush();
  ASSERT_EQ(results.size(), kOps);
  sampler.Stop();

  const MetricRegistry& metrics = server.metrics();
  // Per-subsystem counters moved: fast-path ops, DMA bytes, dispatcher
  // decisions, slab syncs, network packets.
  EXPECT_EQ(metrics.CounterValue("kvd_proc_retired_total"), kOps);
  EXPECT_GT(*metrics.CounterValue("kvd_pcie_upstream_bytes_total",
                                  {{"link", "pcie0"}}),
            0u);
  EXPECT_GT(*metrics.CounterValue("kvd_dispatch_pcie_total") +
                *metrics.CounterValue("kvd_dispatch_dram_hits_total") +
                *metrics.CounterValue("kvd_dispatch_dram_misses_total"),
            0u);
  EXPECT_GT(*metrics.CounterValue("kvd_slab_sync_dma_total", {{"direction", "read"}}),
            0u);
  EXPECT_GT(*metrics.CounterValue("kvd_net_packets_total", {{"direction", "to_server"}}),
            0u);
  EXPECT_TRUE(metrics.GaugeValue("kvd_dispatch_hit_rate").has_value());
  ASSERT_TRUE(metrics.HistogramValue("kvd_proc_latency_ns").has_value());
  EXPECT_EQ(metrics.HistogramValue("kvd_proc_latency_ns")->count(), kOps);

  // All three exposition formats render.
  const std::string prom = metrics.PrometheusText();
  EXPECT_NE(prom.find("# TYPE kvd_proc_retired_total counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE kvd_proc_latency_ns summary"), std::string::npos);
  EXPECT_NE(prom.find("kvd_pcie_read_tlps_total{link=\"pcie1\"}"),
            std::string::npos);
  const std::string json = metrics.ToJson();
  EXPECT_EQ(json.rfind("{\"metrics\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"kvd_store_kvs\""), std::string::npos);

  // The sampler saw the run on its simulated-time cadence.
  EXPECT_GT(sampler.samples().size(), 0u);
  EXPECT_NE(sampler.ToJson().find("kvd_proc_retired_total"), std::string::npos);

  // The trace captured hardware events across categories.
  EXPECT_GT(server.tracer().size(), 0u);
  const std::string trace = server.tracer().ToChromeTraceJson();
  for (const char* category : {"pcie", "dispatch", "station", "proc", "net"}) {
    EXPECT_NE(trace.find("{\"name\":\"" + std::string(category) + "\"}"),
              std::string::npos)
        << category;
  }
}

}  // namespace
}  // namespace kvd
