// Tests for the baseline hash tables (MemC3-style cuckoo, FaRM-style
// hopscotch) and the analytic models (Figure 11 / 13 / Table 3 inputs).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/alloc/slab_allocator.h"
#include "src/baseline/analytic_models.h"
#include "src/baseline/cuckoo_hash_table.h"
#include "src/baseline/hopscotch_hash_table.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/mem/access_engine.h"
#include "src/mem/host_memory.h"

namespace kvd {
namespace {

std::vector<uint8_t> MakeKey(uint64_t id) {
  std::vector<uint8_t> key(6, 0);
  std::memcpy(key.data(), &id, 6);
  return key;
}

std::vector<uint8_t> MakeValue(uint8_t fill, size_t len) {
  return std::vector<uint8_t>(len, fill);
}

// Shared rig: index region at the front, slab heap behind it.
struct BaselineRig {
  static constexpr uint64_t kIndexBytes = 64 * kKiB;
  static constexpr uint64_t kHeapBytes = 1 * kMiB;

  HostMemory memory;
  DirectEngine engine;
  SlabAllocator allocator;

  BaselineRig()
      : memory(kIndexBytes + kHeapBytes),
        engine(memory),
        allocator([] {
          SlabConfig config;
          config.region_base = kIndexBytes;
          config.region_size = kHeapBytes;
          return config;
        }()) {}
};

// --- Cuckoo (MemC3) ---

CuckooConfig SmallCuckooConfig() {
  CuckooConfig config;
  config.num_buckets = 1024;  // 4096 slots
  return config;
}

TEST(CuckooTest, PutGetDeleteRoundTrip) {
  BaselineRig rig;
  CuckooHashTable table(rig.engine, rig.allocator, SmallCuckooConfig());
  ASSERT_TRUE(table.Put(MakeKey(1), MakeValue(9, 32)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(table.Get(MakeKey(1), out).ok());
  EXPECT_EQ(out, MakeValue(9, 32));
  ASSERT_TRUE(table.Delete(MakeKey(1)).ok());
  EXPECT_EQ(table.Get(MakeKey(1), out).code(), StatusCode::kNotFound);
}

TEST(CuckooTest, OverwriteReplacesValue) {
  BaselineRig rig;
  CuckooHashTable table(rig.engine, rig.allocator, SmallCuckooConfig());
  ASSERT_TRUE(table.Put(MakeKey(1), MakeValue(1, 16)).ok());
  ASSERT_TRUE(table.Put(MakeKey(1), MakeValue(2, 40)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(table.Get(MakeKey(1), out).ok());
  EXPECT_EQ(out, MakeValue(2, 40));
  EXPECT_EQ(table.num_kvs(), 1u);
}

TEST(CuckooTest, FillsToHighLoadFactorWithDisplacements) {
  BaselineRig rig;
  CuckooHashTable table(rig.engine, rig.allocator, SmallCuckooConfig());
  uint64_t inserted = 0;
  while (true) {
    const Status status = table.Put(MakeKey(inserted), MakeValue(1, 8));
    if (!status.ok()) {
      break;
    }
    inserted++;
  }
  // 4-way bucketized cuckoo reaches > 90% slot load factor.
  EXPECT_GT(inserted, 4096u * 90 / 100);
  EXPECT_GT(table.displacements(), 0u);
  // Everything inserted remains retrievable after all the kicking.
  std::vector<uint8_t> out;
  for (uint64_t i = 0; i < inserted; i++) {
    ASSERT_TRUE(table.Get(MakeKey(i), out).ok()) << i;
  }
}

TEST(CuckooTest, GetCostsAtMostTwoBucketReadsPlusValue) {
  BaselineRig rig;
  CuckooHashTable table(rig.engine, rig.allocator, SmallCuckooConfig());
  ASSERT_TRUE(table.Put(MakeKey(3), MakeValue(5, 16)).ok());
  const AccessStats before = rig.engine.stats();
  std::vector<uint8_t> out;
  ASSERT_TRUE(table.Get(MakeKey(3), out).ok());
  const AccessStats delta = rig.engine.stats() - before;
  EXPECT_LE(delta.reads, 3u);
  EXPECT_GE(delta.reads, 2u);  // >= 1 bucket + value
  EXPECT_EQ(delta.writes, 0u);
}

TEST(CuckooTest, PutAccessCostGrowsWithLoadFactor) {
  BaselineRig rig;
  CuckooHashTable table(rig.engine, rig.allocator, SmallCuckooConfig());
  // Cost of 100 inserts at ~10% load.
  for (uint64_t i = 0; i < 400; i++) {
    ASSERT_TRUE(table.Put(MakeKey(i), MakeValue(1, 8)).ok());
  }
  AccessStats before = rig.engine.stats();
  for (uint64_t i = 400; i < 500; i++) {
    ASSERT_TRUE(table.Put(MakeKey(i), MakeValue(1, 8)).ok());
  }
  const double low_cost =
      static_cast<double>((rig.engine.stats() - before).total()) / 100;
  // Fill to ~93% and measure again.
  uint64_t id = 500;
  while (table.num_kvs() < 4096 * 93 / 100) {
    if (!table.Put(MakeKey(id++), MakeValue(1, 8)).ok()) {
      break;
    }
  }
  before = rig.engine.stats();
  int measured = 0;
  for (int i = 0; i < 100; i++) {
    if (table.Put(MakeKey(id++), MakeValue(1, 8)).ok()) {
      measured++;
    }
  }
  ASSERT_GT(measured, 10);
  const double high_cost =
      static_cast<double>((rig.engine.stats() - before).total()) / measured;
  EXPECT_GT(high_cost, low_cost * 1.5);  // Figure 11b/d shape
}

// --- Hopscotch (FaRM) ---

HopscotchConfig SmallHopscotchConfig() {
  HopscotchConfig config;
  config.num_slots = 4096;
  return config;
}

TEST(HopscotchTest, PutGetDeleteRoundTrip) {
  BaselineRig rig;
  HopscotchHashTable table(rig.engine, rig.allocator, SmallHopscotchConfig());
  ASSERT_TRUE(table.Put(MakeKey(1), MakeValue(9, 32)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(table.Get(MakeKey(1), out).ok());
  EXPECT_EQ(out, MakeValue(9, 32));
  ASSERT_TRUE(table.Delete(MakeKey(1)).ok());
  EXPECT_EQ(table.Get(MakeKey(1), out).code(), StatusCode::kNotFound);
}

TEST(HopscotchTest, GetIsOneNeighborhoodReadPlusValue) {
  BaselineRig rig;
  HopscotchHashTable table(rig.engine, rig.allocator, SmallHopscotchConfig());
  ASSERT_TRUE(table.Put(MakeKey(3), MakeValue(5, 16)).ok());
  const AccessStats before = rig.engine.stats();
  std::vector<uint8_t> out;
  ASSERT_TRUE(table.Get(MakeKey(3), out).ok());
  const AccessStats delta = rig.engine.stats() - before;
  EXPECT_LE(delta.reads, 3u);  // neighborhood (may wrap) + value
  EXPECT_EQ(delta.writes, 0u);
}

TEST(HopscotchTest, NeighborhoodInvariantHolds) {
  BaselineRig rig;
  HopscotchHashTable table(rig.engine, rig.allocator, SmallHopscotchConfig());
  Rng rng(17);
  uint64_t inserted = 0;
  // Fill to 70%: displacements certain, invariant must survive them.
  while (table.num_kvs() < 4096 * 70 / 100) {
    ASSERT_TRUE(table.Put(MakeKey(rng.Next() % 100000 + 1), MakeValue(1, 8)).ok() ||
                true);
    inserted++;
    ASSERT_LT(inserted, 100000u);
  }
  EXPECT_GT(table.displacements(), 0u);
  // GET finds every present key by reading only its neighborhood — the test
  // walks a sample of ids; misses are fine, wrong values are not.
  Rng replay(17);
  std::vector<uint8_t> out;
  int found = 0;
  for (uint64_t i = 0; i < inserted; i++) {
    const uint64_t id = replay.Next() % 100000 + 1;
    if (table.Get(MakeKey(id), out).ok()) {
      found++;
      EXPECT_EQ(out, MakeValue(1, 8));
    }
  }
  EXPECT_GT(found, static_cast<int>(table.num_kvs()) * 9 / 10);
}

TEST(HopscotchTest, RandomizedAgainstReference) {
  BaselineRig rig;
  HopscotchHashTable table(rig.engine, rig.allocator, SmallHopscotchConfig());
  std::map<std::string, std::vector<uint8_t>> reference;
  Rng rng(99);
  for (int op = 0; op < 5000; op++) {
    const uint64_t id = rng.NextBelow(800) + 1;
    const auto key = MakeKey(id);
    const std::string key_str(key.begin(), key.end());
    const uint64_t action = rng.NextBelow(10);
    if (action < 6) {
      const auto value = MakeValue(static_cast<uint8_t>(rng.Next()),
                                   1 + rng.NextBelow(64));
      if (table.Put(key, value).ok()) {
        reference[key_str] = value;
      }
    } else if (action < 8) {
      std::vector<uint8_t> out;
      const Status status = table.Get(key, out);
      const auto it = reference.find(key_str);
      if (it == reference.end()) {
        EXPECT_EQ(status.code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(status.ok());
        EXPECT_EQ(out, it->second);
      }
    } else {
      const Status status = table.Delete(key);
      EXPECT_EQ(status.ok(), reference.erase(key_str) > 0);
    }
  }
  EXPECT_EQ(table.num_kvs(), reference.size());
}

TEST(CuckooTest, RandomizedAgainstReference) {
  BaselineRig rig;
  CuckooHashTable table(rig.engine, rig.allocator, SmallCuckooConfig());
  std::map<std::string, std::vector<uint8_t>> reference;
  Rng rng(98);
  for (int op = 0; op < 5000; op++) {
    const uint64_t id = rng.NextBelow(800) + 1;
    const auto key = MakeKey(id);
    const std::string key_str(key.begin(), key.end());
    const uint64_t action = rng.NextBelow(10);
    if (action < 6) {
      const auto value = MakeValue(static_cast<uint8_t>(rng.Next()),
                                   1 + rng.NextBelow(64));
      if (table.Put(key, value).ok()) {
        reference[key_str] = value;
      }
    } else if (action < 8) {
      std::vector<uint8_t> out;
      const Status status = table.Get(key, out);
      const auto it = reference.find(key_str);
      if (it == reference.end()) {
        EXPECT_EQ(status.code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(status.ok());
        EXPECT_EQ(out, it->second);
      }
    } else {
      const Status status = table.Delete(key);
      EXPECT_EQ(status.ok(), reference.erase(key_str) > 0);
    }
  }
  EXPECT_EQ(table.num_kvs(), reference.size());
}

// --- analytic models ---

TEST(CpuKvsModelTest, ReproducesPaperMeasurements) {
  CpuKvsModel model;
  // §2.2: 29.3 M random 64 B accesses/s/core, 5.5 Mops interleaved,
  // 7.9 Mops batched.
  EXPECT_NEAR(model.RandomAccessMopsPerCore(), 29.3, 4.0);
  EXPECT_NEAR(model.InterleavedMopsPerCore(), 5.5, 1.5);
  EXPECT_NEAR(model.BatchedMopsPerCore(), 7.9, 2.0);
  EXPECT_GT(model.BatchedMopsPerCore(), model.InterleavedMopsPerCore());
}

TEST(RdmaKvsModelTest, SingleKeyAndScaling) {
  RdmaKvsModel model;
  EXPECT_NEAR(model.OneSidedAtomicsMops(1), 2.24, 0.01);
  EXPECT_LT(model.OneSidedAtomicsMops(1000), 20);
  EXPECT_GT(model.TwoSidedAtomicsMops(64), model.OneSidedAtomicsMops(64));
  // Both plateau far below KV-Direct's 180 Mops clock bound (Figure 13a).
  EXPECT_LT(model.OneSidedAtomicsMops(1 << 20), 180);
  EXPECT_LT(model.TwoSidedAtomicsMops(1 << 20), 180);
}

TEST(PublishedSystemsTest, KvDirectBeatsAllOnPowerEfficiency) {
  // Paper Table 3: KV-Direct at 180 Mops / 121.6 W full-system power.
  const double kvdirect_kops_per_watt = 180e3 / 121.6;
  for (const PublishedSystem& system : kPublishedSystems) {
    EXPECT_GT(kvdirect_kops_per_watt, system.KopsPerWatt() * 2.9)
        << system.name;  // "3x more power efficient" claim
  }
}

}  // namespace
}  // namespace kvd
