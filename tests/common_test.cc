// Unit tests for src/common: status, RNG, Zipf, statistics, hashing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <cmath>
#include <set>
#include <vector>

#include "src/common/hashing.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/common/zipf.h"

namespace kvd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing key");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfMemory), "OUT_OF_MEMORY");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceBusy), "RESOURCE_BUSY");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfMemory("pool dry"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfMemory);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; i++) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; i++) {
    counts[rng.NextBelow(kBound)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBound, kSamples / kBound * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; i++) {
    const uint64_t v = rng.NextInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values appear
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(42);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; i++) {
    counts[zipf.Next(rng)]++;
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(ZipfTest, HeadProbabilityMatchesEmpirical) {
  ZipfGenerator zipf(10000, 0.99);
  Rng rng(42);
  int head = 0;
  constexpr int kSamples = 500000;
  for (int i = 0; i < kSamples; i++) {
    head += zipf.Next(rng) == 0 ? 1 : 0;
  }
  const double empirical = static_cast<double>(head) / kSamples;
  EXPECT_NEAR(empirical, zipf.HeadProbability(), 0.01);
}

TEST(ZipfTest, ScrambledPreservesSkewButMovesHotKey) {
  ZipfGenerator zipf(1 << 16, 0.99);
  Rng rng(42);
  std::vector<int> counts(1 << 16, 0);
  for (int i = 0; i < 300000; i++) {
    counts[zipf.NextScrambled(rng)]++;
  }
  const auto hottest = std::max_element(counts.begin(), counts.end());
  // The hottest item should carry roughly HeadProbability of the mass but
  // almost surely not sit at index 0.
  EXPECT_GT(*hottest, 300000 * zipf.HeadProbability() * 0.8);
  EXPECT_NE(hottest - counts.begin(), 0);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
}

TEST(RunningStatTest, MergeMatchesCombined) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  Rng rng(3);
  for (int i = 0; i < 1000; i++) {
    const double x = rng.NextDouble() * 100;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(LatencyHistogramTest, PercentilesBracketValues) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; v++) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  // Log-linear buckets have ~3% relative error at this granularity.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 500, 500 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.95)), 950, 950 * 0.05);
  EXPECT_NEAR(h.mean(), 500.5, 0.01);
}

TEST(LatencyHistogramTest, CdfIsMonotonic) {
  LatencyHistogram h;
  Rng rng(4);
  for (int i = 0; i < 10000; i++) {
    h.Add(800 + rng.NextBelow(600));
  }
  const auto cdf = h.Cdf();
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); i++) {
    EXPECT_GT(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(LatencyHistogramTest, MergeAddsCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Add(100);
  b.Add(200);
  b.Add(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 300u);
}

TEST(LatencyHistogramTest, PercentileExtremeQuantiles) {
  LatencyHistogram h;
  h.Add(123);
  h.Add(456);
  h.Add(789);
  // The extreme quantiles are the exact extremes, not bucket bounds.
  EXPECT_EQ(h.Percentile(0.0), 123u);
  EXPECT_EQ(h.Percentile(-0.5), 123u);
  EXPECT_EQ(h.Percentile(1.0), 789u);
  EXPECT_EQ(h.Percentile(1.5), 789u);
}

TEST(LatencyHistogramTest, EmptyHistogramIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(1.0), 0u);
  EXPECT_TRUE(h.Cdf().empty());
}

TEST(LatencyHistogramTest, SingleValuePercentilesCollapse) {
  LatencyHistogram h;
  h.Add(777);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.Percentile(q), 777u) << "quantile " << q;
  }
}

TEST(LatencyHistogramTest, MergeMatchesCombinedPercentiles) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram all;
  Rng rng(17);
  for (int i = 0; i < 20000; i++) {
    const uint64_t v = 50 + rng.NextBelow(100000);
    (i % 3 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(a.Percentile(q), all.Percentile(q)) << "quantile " << q;
  }
}

TEST(LatencyHistogramTest, MergeIntoEmptyPreservesExtremes) {
  LatencyHistogram a;
  LatencyHistogram b;
  b.Add(42);
  b.Add(9000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 42u);
  EXPECT_EQ(a.max(), 9000u);
  a.Merge(LatencyHistogram());  // merging an empty histogram is a no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 42u);
  EXPECT_EQ(a.max(), 9000u);
}

TEST(LatencyHistogramTest, CdfRoundTripsPercentiles) {
  LatencyHistogram h;
  Rng rng(23);
  for (int i = 0; i < 5000; i++) {
    h.Add(1 + rng.NextBelow(1u << 20));
  }
  const auto cdf = h.Cdf();
  ASSERT_GE(cdf.size(), 2u);
  // A quantile strictly inside (p_{i-1}, p_i] must land in bucket i: its
  // Percentile is bucket i's upper bound (the CDF point value), capped at the
  // observed max. Probing midpoints keeps the check clear of floating-point
  // rank rounding at the bucket boundaries.
  double prev_p = 0.0;
  for (const auto& [value, p] : cdf) {
    const double mid = (prev_p + p) / 2;
    EXPECT_EQ(h.Percentile(mid), std::min(value, h.max()))
        << "cdf point (" << value << ", " << p << ")";
    prev_p = p;
  }
}

TEST(HashingTest, DeterministicAndSeedSensitive) {
  const uint8_t data[] = {1, 2, 3, 4, 5};
  EXPECT_EQ(HashBytes(data, 5), HashBytes(data, 5));
  EXPECT_NE(HashBytes(data, 5, 0), HashBytes(data, 5, 1));
}

TEST(HashingTest, LengthMatters) {
  const uint8_t data[] = {0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_NE(HashBytes(data, 4), HashBytes(data, 8));
}

TEST(HashingTest, AvalancheOnSingleBitFlip) {
  uint8_t a[16] = {};
  uint8_t b[16] = {};
  b[7] ^= 1;
  const uint64_t ha = HashBytes(a, 16);
  const uint64_t hb = HashBytes(b, 16);
  EXPECT_GE(__builtin_popcountll(ha ^ hb), 16);
}

TEST(HashingTest, KeyHashFieldsAreInRange) {
  for (uint64_t i = 0; i < 1000; i++) {
    const KeyHash kh{Mix64(i)};
    EXPECT_LT(kh.SecondaryHash(), 512);
    EXPECT_LT(kh.StationSlot(), 1024);
    EXPECT_LT(kh.BucketIndex(77), 77u);
  }
}

TEST(HashingTest, BucketIndexIsRoughlyUniform) {
  constexpr uint64_t kBuckets = 64;
  std::vector<int> counts(kBuckets, 0);
  for (uint64_t i = 0; i < 64000; i++) {
    uint8_t key[8];
    std::memcpy(key, &i, 8);
    counts[HashKey(key).BucketIndex(kBuckets)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 150);
  }
}

TEST(UnitsTest, PicosPerByteRoundTrip) {
  // 1 GB/s -> 1000 ps per byte.
  EXPECT_DOUBLE_EQ(PicosPerByte(1e9), 1000.0);
  // PCIe Gen3 x8: 7.87 GB/s -> ~127 ps per byte.
  EXPECT_NEAR(PicosPerByte(7.87e9), 127.06, 0.01);
}

}  // namespace
}  // namespace kvd
