// Tests for the multi-NIC deployment (paper Table 3: 10 NICs, near-linear).
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "src/common/units.h"
#include "src/core/multi_nic.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

ServerConfig PerNicConfig() {
  ServerConfig config;
  config.kvs_memory_bytes = 2 * kMiB;
  config.nic_dram.capacity_bytes = 256 * kKiB;
  config.inline_threshold_bytes = 24;
  return config;
}

TEST(MultiNicTest, PartitioningIsStableAndCoversAllNics) {
  MultiNicServer cluster(4, PerNicConfig());
  std::set<uint32_t> owners;
  for (uint64_t i = 0; i < 1000; i++) {
    const uint32_t owner = cluster.OwnerOf(Key(i));
    EXPECT_LT(owner, 4u);
    EXPECT_EQ(owner, cluster.OwnerOf(Key(i)));  // stable
    owners.insert(owner);
  }
  EXPECT_EQ(owners.size(), 4u);  // all NICs carry load
}

TEST(MultiNicTest, RoutedOperationsRoundTrip) {
  MultiNicServer cluster(4, PerNicConfig());
  MultiNicClient client(cluster);
  for (uint64_t i = 0; i < 200; i++) {
    ASSERT_TRUE(client.Put(Key(i), Key(i * 7)).ok());
  }
  for (uint64_t i = 0; i < 200; i++) {
    auto v = client.Get(Key(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, Key(i * 7));
  }
  EXPECT_EQ(cluster.TotalKvs(), 200u);
  // Keys land in the NIC that owns them and nowhere else.
  for (uint64_t i = 0; i < 200; i++) {
    KvOperation get;
    get.opcode = Opcode::kGet;
    get.key = Key(i);
    for (uint32_t nic = 0; nic < cluster.num_nics(); nic++) {
      const KvResultMessage r = cluster.nic(nic).Execute(get);
      EXPECT_EQ(r.code == ResultCode::kOk, nic == cluster.OwnerOf(Key(i)));
    }
  }
}

TEST(MultiNicTest, DeleteAndUpdateRouteCorrectly) {
  MultiNicServer cluster(3, PerNicConfig());
  MultiNicClient client(cluster);
  ASSERT_TRUE(client.Put(Key(1), std::vector<uint8_t>(8, 0)).ok());
  auto original = client.Update(Key(1), 5);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(*original, 0u);
  ASSERT_TRUE(client.Delete(Key(1)).ok());
  EXPECT_EQ(client.Get(Key(1)).status().code(), StatusCode::kNotFound);
}

TEST(MultiNicTest, BatchFlushPreservesOrderAcrossPartitions) {
  MultiNicServer cluster(4, PerNicConfig());
  MultiNicClient client(cluster);
  constexpr uint64_t kOps = 300;
  for (uint64_t i = 0; i < kOps; i++) {
    KvOperation op;
    op.opcode = Opcode::kPut;
    op.key = Key(i);
    op.value = Key(i + 1);
    client.Enqueue(std::move(op));
  }
  auto put_results = client.Flush();
  ASSERT_EQ(put_results.size(), kOps);
  for (uint64_t i = 0; i < kOps; i++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(i);
    client.Enqueue(std::move(op));
  }
  auto get_results = client.Flush();
  ASSERT_EQ(get_results.size(), kOps);
  for (uint64_t i = 0; i < kOps; i++) {
    ASSERT_EQ(get_results[i].code, ResultCode::kOk) << i;
    EXPECT_EQ(get_results[i].value, Key(i + 1)) << i;  // order preserved
  }
}

TEST(MultiNicTest, ThroughputScalesNearLinearly) {
  // Weak scaling, like the paper's 10-NIC experiment: every NIC serves its
  // own partition at full load, and the aggregate is ops / slowest clock.
  auto run = [](uint32_t num_nics) {
    MultiNicServer cluster(num_nics, PerNicConfig());
    MultiNicClient client(cluster);
    const uint64_t ops = 10000 * num_nics;
    for (uint64_t i = 0; i < 512; i++) {
      (void)cluster.Load(Key(i), Key(i));
    }
    for (uint64_t i = 0; i < ops; i++) {
      KvOperation op;
      op.opcode = Opcode::kGet;
      op.key = Key(i % 512);
      client.Enqueue(std::move(op));
    }
    client.Flush();
    return static_cast<double>(ops) /
           (static_cast<double>(cluster.MaxSimTime()) / kMicrosecond);
  };
  const double one = run(1);
  const double four = run(4);
  EXPECT_GT(four, one * 3.2);  // near-linear (paper: 9.6x at 10 NICs)
}

TEST(MultiNicTest, SingleNicDegeneratesToPlainServer) {
  MultiNicServer cluster(1, PerNicConfig());
  MultiNicClient client(cluster);
  ASSERT_TRUE(client.Put(Key(1), Key(2)).ok());
  EXPECT_EQ(cluster.OwnerOf(Key(1)), 0u);
  EXPECT_EQ(cluster.TotalKvs(), 1u);
}

}  // namespace
}  // namespace kvd
