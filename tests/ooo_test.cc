// Tests for the reservation station (paper §3.3.3).
#include <gtest/gtest.h>

#include "src/ooo/reservation_station.h"

namespace kvd {
namespace {

using Action = ReservationStation::Action;

OooConfig SmallConfig() {
  OooConfig config;
  config.station_slots = 16;
  config.max_inflight = 8;
  return config;
}

TEST(ReservationStationTest, IndependentOpsIssueDirectly) {
  ReservationStation station(SmallConfig());
  EXPECT_EQ(station.Admit(1, 0, 100, false), Action::kIssueToPipeline);
  EXPECT_EQ(station.Admit(2, 1, 200, false), Action::kIssueToPipeline);
  EXPECT_EQ(station.inflight(), 2u);
}

TEST(ReservationStationTest, SameKeyParksBehindPipeline) {
  ReservationStation station(SmallConfig());
  EXPECT_EQ(station.Admit(1, 3, 100, true), Action::kIssueToPipeline);
  EXPECT_EQ(station.Admit(2, 3, 100, false), Action::kPark);
  EXPECT_EQ(station.ParkedCount(3), 1u);
}

TEST(ReservationStationTest, CompletionForwardsSameKeyChain) {
  ReservationStation station(SmallConfig());
  station.Admit(1, 3, 100, true);
  station.Admit(2, 3, 100, false);
  station.Admit(3, 3, 100, true);
  const auto fast = station.CompletePipeline(3);
  EXPECT_EQ(fast, (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(station.inflight(), 0u);
  EXPECT_EQ(station.stats().fast_path_ops, 2u);
}

TEST(ReservationStationTest, CachedValueServesFastPathImmediately) {
  ReservationStation station(SmallConfig());
  station.Admit(1, 3, 100, true);
  station.CompletePipeline(3);
  // Slot is now Cached for digest 100: same-key ops retire instantly.
  EXPECT_EQ(station.Admit(2, 3, 100, false), Action::kFastPath);
  EXPECT_EQ(station.Admit(3, 3, 100, true), Action::kFastPath);
  EXPECT_EQ(station.inflight(), 0u);
}

TEST(ReservationStationTest, WriteMarksDirtyAndWritebackCycleWorks) {
  ReservationStation station(SmallConfig());
  station.Admit(1, 3, 100, false);  // read in the pipeline
  station.Admit(2, 3, 100, true);   // parked write: executes via forwarding
  const auto fast = station.CompletePipeline(3);
  EXPECT_EQ(fast, (std::vector<uint64_t>{2}));
  // The forwarded write dirtied the cached value: write-back required.
  EXPECT_TRUE(station.NeedsWriteback(3));
  station.BeginWriteback(3);
  EXPECT_FALSE(station.NeedsWriteback(3));
  // A write arriving during the write-back re-dirties the slot.
  EXPECT_EQ(station.Admit(2, 3, 100, true), Action::kFastPath);
  station.CompleteWriteback(3);
  EXPECT_TRUE(station.NeedsWriteback(3));
}

TEST(ReservationStationTest, ReadPipelineOpLeavesSlotCachedAndClean) {
  ReservationStation station(SmallConfig());
  station.Admit(1, 3, 100, false);
  station.CompletePipeline(3);
  EXPECT_FALSE(station.NeedsWriteback(3));
  EXPECT_EQ(station.TryIssueNext(3), std::nullopt);
  // The value stays cached for later same-key operations...
  EXPECT_FALSE(station.SlotIdle(3));
  EXPECT_EQ(station.Admit(2, 3, 100, false), Action::kFastPath);
  // ...until a different key claims the slot, which evicts and issues.
  EXPECT_EQ(station.Admit(3, 3, 999, false), Action::kIssueToPipeline);
  // After the eviction the old key is a cache miss again.
  EXPECT_EQ(station.Admit(4, 3, 100, false), Action::kPark);
}

TEST(ReservationStationTest, FalsePositiveDifferentKeyParksAndReissues) {
  ReservationStation station(SmallConfig());
  station.Admit(1, 3, 100, false);
  // Different key, same slot: a false-positive dependency.
  EXPECT_EQ(station.Admit(2, 3, 999, false), Action::kPark);
  const auto fast = station.CompletePipeline(3);
  EXPECT_TRUE(fast.empty());  // different key cannot forward
  const auto next = station.TryIssueNext(3);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 2u);
  EXPECT_EQ(station.inflight(), 1u);
}

TEST(ReservationStationTest, WholeChainScannedOnCompletion) {
  ReservationStation station(SmallConfig());
  station.Admit(1, 3, 100, true);   // pipeline
  station.Admit(2, 3, 999, false);  // parked, different key (false positive)
  station.Admit(3, 3, 100, false);  // same key, behind the false positive
  // The completion scan forwards every matching-key entry, skipping over the
  // false positive ("checked one by one ... executed immediately", §3.3.3).
  const auto fast = station.CompletePipeline(3);
  EXPECT_EQ(fast, (std::vector<uint64_t>{3}));
  // The different-key op then issues to the pipeline.
  EXPECT_FALSE(station.NeedsWriteback(3));
  const auto next = station.TryIssueNext(3);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 2u);
}

TEST(ReservationStationTest, FastPathAllowedPastDifferentKeyParked) {
  ReservationStation station(SmallConfig());
  station.Admit(1, 3, 100, false);  // pipeline read of key 100
  station.Admit(2, 3, 999, false);  // parked false positive
  station.CompletePipeline(3);      // slot now Cached(100), 999 still parked
  // A new key-100 arrival has no dependency on the parked 999 op.
  EXPECT_EQ(station.Admit(4, 3, 100, false), Action::kFastPath);
  // But an arrival of key 999 queues behind its parked predecessor.
  EXPECT_EQ(station.Admit(5, 3, 999, false), Action::kPark);
}

TEST(ReservationStationTest, CapacityRejectsWhenFull) {
  OooConfig config = SmallConfig();
  config.max_inflight = 2;
  ReservationStation station(config);
  EXPECT_EQ(station.Admit(1, 0, 1, false), Action::kIssueToPipeline);
  EXPECT_EQ(station.Admit(2, 0, 1, false), Action::kPark);
  EXPECT_EQ(station.Admit(3, 1, 2, false), Action::kRejectFull);
  EXPECT_EQ(station.stats().rejected_full, 1u);
}

TEST(ReservationStationTest, DisabledModeNeverForwards) {
  OooConfig config = SmallConfig();
  config.enable_out_of_order = false;
  ReservationStation station(config);
  station.Admit(1, 3, 100, true);
  EXPECT_EQ(station.Admit(2, 3, 100, false), Action::kPark);
  const auto fast = station.CompletePipeline(3);
  EXPECT_TRUE(fast.empty());
  // Parked op re-issues to the pipeline instead (full latency — the stall).
  // Writes in disabled mode do not use the cached-value machinery.
  EXPECT_FALSE(station.NeedsWriteback(3));
  const auto next = station.TryIssueNext(3);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 2u);
}

TEST(ReservationStationTest, PeakInflightTracked) {
  ReservationStation station(SmallConfig());
  station.Admit(1, 0, 1, false);
  station.Admit(2, 1, 2, false);
  station.Admit(3, 0, 1, false);  // parked
  EXPECT_EQ(station.stats().peak_inflight, 3u);
}

}  // namespace
}  // namespace kvd
