// Tests for the YCSB workload generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/workload/trace.h"
#include "src/workload/ycsb.h"

namespace kvd {
namespace {

TEST(YcsbTest, KeyEncodingStableAndSized) {
  WorkloadConfig config;
  config.key_bytes = 10;
  YcsbWorkload workload(config);
  const auto key = workload.KeyFor(0x1234);
  EXPECT_EQ(key.size(), 10u);
  EXPECT_EQ(key, workload.KeyFor(0x1234));
  EXPECT_NE(key, workload.KeyFor(0x1235));
}

TEST(YcsbTest, GetRatioHonored) {
  WorkloadConfig config = WorkloadConfig::YcsbB();  // 95% GET
  YcsbWorkload workload(config);
  int gets = 0;
  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; i++) {
    gets += workload.NextOp().opcode == Opcode::kGet ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(gets) / kOps, 0.95, 0.01);
}

TEST(YcsbTest, PureWriteMix) {
  WorkloadConfig config;
  config.get_ratio = 0.0;
  config.value_bytes = 32;
  YcsbWorkload workload(config);
  for (int i = 0; i < 100; i++) {
    const KvOperation op = workload.NextOp();
    EXPECT_EQ(op.opcode, Opcode::kPut);
    EXPECT_EQ(op.value.size(), 32u);
  }
}

TEST(YcsbTest, UniformKeysCoverSpace) {
  WorkloadConfig config;
  config.num_keys = 100;
  YcsbWorkload workload(config);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; i++) {
    counts[workload.NextKeyId()]++;
  }
  const auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*min_it, 100);
  EXPECT_LT(*max_it, 350);
}

TEST(YcsbTest, LongTailIsSkewed) {
  WorkloadConfig config;
  config.num_keys = 10000;
  config.distribution = KeyDistribution::kLongTail;
  YcsbWorkload workload(config);
  std::vector<int> counts(10000, 0);
  constexpr int kOps = 100000;
  for (int i = 0; i < kOps; i++) {
    counts[workload.NextKeyId()]++;
  }
  std::sort(counts.rbegin(), counts.rend());
  // Zipf 0.99: the hottest key draws several percent of all traffic and the
  // top 100 keys a large share.
  EXPECT_GT(counts[0], kOps / 100);
  int top100 = 0;
  for (int i = 0; i < 100; i++) {
    top100 += counts[i];
  }
  EXPECT_GT(top100, kOps / 4);
}

TEST(YcsbTest, DeterministicForSeed) {
  WorkloadConfig config = WorkloadConfig::YcsbA();
  YcsbWorkload a(config);
  YcsbWorkload b(config);
  for (int i = 0; i < 100; i++) {
    const KvOperation op_a = a.NextOp();
    const KvOperation op_b = b.NextOp();
    EXPECT_EQ(op_a.opcode, op_b.opcode);
    EXPECT_EQ(op_a.key, op_b.key);
  }
}

TEST(YcsbTest, LoadOpsDeterministic) {
  WorkloadConfig config;
  config.value_bytes = 24;
  YcsbWorkload workload(config);
  const KvOperation op = workload.LoadOpFor(7);
  EXPECT_EQ(op.opcode, Opcode::kPut);
  EXPECT_EQ(op.value.size(), 24u);
  EXPECT_EQ(op.value, workload.LoadOpFor(7).value);
}

// --- trace record / replay ---

TEST(TraceTest, EncodeDecodeRoundTrip) {
  WorkloadConfig config = WorkloadConfig::YcsbA();
  config.num_keys = 500;
  config.value_bytes = 24;
  YcsbWorkload workload(config);
  std::vector<KvOperation> ops;
  for (int i = 0; i < 1000; i++) {
    ops.push_back(workload.NextOp());
  }
  auto decoded = DecodeTrace(EncodeTrace(ops));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), ops.size());
  for (size_t i = 0; i < ops.size(); i++) {
    EXPECT_EQ((*decoded)[i].opcode, ops[i].opcode) << i;
    EXPECT_EQ((*decoded)[i].key, ops[i].key) << i;
    EXPECT_EQ((*decoded)[i].value, ops[i].value) << i;
  }
}

TEST(TraceTest, RejectsGarbageAndWrongVersion) {
  EXPECT_FALSE(DecodeTrace({1, 2, 3}).ok());
  std::vector<KvOperation> ops(1);
  ops[0].key = {1};
  std::vector<uint8_t> bytes = EncodeTrace(ops);
  bytes[8] = 99;  // version
  EXPECT_FALSE(DecodeTrace(bytes).ok());
  std::vector<uint8_t> truncated = EncodeTrace(ops);
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(DecodeTrace(truncated).ok());
}

TEST(TraceTest, FileRoundTrip) {
  WorkloadConfig config;
  config.num_keys = 100;
  YcsbWorkload workload(config);
  std::vector<KvOperation> ops;
  for (int i = 0; i < 200; i++) {
    ops.push_back(workload.NextOp());
  }
  const std::string path = ::testing::TempDir() + "/kvd_trace_test.bin";
  ASSERT_TRUE(WriteTraceFile(path, ops).ok());
  auto loaded = ReadTraceFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), ops.size());
  EXPECT_FALSE(ReadTraceFile(path + ".missing").ok());
  std::remove(path.c_str());
}

TEST(TraceTest, CompressionShrinksRegularTraces) {
  // Uniform-size PUTs with identical values compress heavily.
  std::vector<KvOperation> ops;
  for (int i = 0; i < 500; i++) {
    KvOperation op;
    op.opcode = Opcode::kPut;
    op.key.assign(8, static_cast<uint8_t>(i));
    op.value.assign(32, 7);
    ops.push_back(std::move(op));
  }
  const size_t encoded = EncodeTrace(ops).size();
  EXPECT_LT(encoded, ops.size() * (2 + 8 + 32));  // far below raw size
}

}  // namespace
}  // namespace kvd
