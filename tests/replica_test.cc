// Replication groups: wire formats, the log, quorum-acknowledged writes,
// read scaling with read-your-writes watermarks, deterministic failover
// (scripted primary crash mid-workload, no acknowledged write lost), replica
// catch-up and full-state resync, session-based exactly-once across epoch
// changes, and the sharded-and-replicated cluster on one simulated clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/check/history.h"
#include "src/check/linearizability.h"
#include "src/check/session_audit.h"
#include "src/common/key_router.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/core/multi_nic.h"
#include "src/net/wire_format.h"
#include "src/replica/replica_log.h"
#include "src/replica/replica_wire.h"
#include "src/replica/replicated_client.h"
#include "src/replica/replication_group.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

KvOperation Put(uint64_t id, uint64_t v) {
  KvOperation op;
  op.opcode = Opcode::kPut;
  op.key = Key(id);
  op.value = U64Value(v);
  return op;
}

KvOperation Get(uint64_t id) {
  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key = Key(id);
  return op;
}

ReplicationConfig SmallGroupConfig(uint32_t replicas = 3) {
  ReplicationConfig config;
  config.num_replicas = replicas;
  config.server.kvs_memory_bytes = 8 * kMiB;
  config.server.nic_dram.capacity_bytes = 1 * kMiB;
  return config;
}

void RunFor(Simulator& sim, SimTime duration) { sim.RunUntil(sim.Now() + duration); }

uint64_t ReadU64(ReplicationGroup& group, uint32_t replica, uint64_t id) {
  KvResultMessage r = group.replica(replica).Execute(Get(id));
  EXPECT_EQ(r.code, ResultCode::kOk);
  uint64_t v = 0;
  std::memcpy(&v, r.value.data(), std::min<size_t>(8, r.value.size()));
  return v;
}

// --- wire formats ---

TEST(ReplicaWireTest, AppendRoundTrip) {
  ReplicaMessage msg;
  msg.type = ReplicaMessageType::kAppend;
  msg.epoch = 3;
  msg.sender = 1;
  msg.first_index = 41;
  msg.prev_epoch = 2;
  msg.commit_index = 40;
  msg.leader_end = 44;
  for (int i = 0; i < 3; i++) {
    LogEntry entry;
    entry.epoch = 3;
    entry.client_sequence = (7ull << 40) + i;
    entry.slot = static_cast<uint16_t>(i);
    entry.op = Put(100 + i, 1000 + i);
    entry.result.code = ResultCode::kOk;
    entry.result.scalar = 5 + i;
    msg.entries.push_back(entry);
  }
  auto decoded = DecodeReplicaMessage(EncodeReplicaMessage(msg));
  ASSERT_TRUE(decoded.ok());
  const ReplicaMessage& out = decoded.value();
  EXPECT_EQ(out.epoch, 3u);
  EXPECT_EQ(out.first_index, 41u);
  EXPECT_EQ(out.leader_end, 44u);
  ASSERT_EQ(out.entries.size(), 3u);
  EXPECT_EQ(out.entries[2].client_sequence, (7ull << 40) + 2);
  EXPECT_EQ(out.entries[2].op.key, Key(102));
  EXPECT_EQ(out.entries[2].result.scalar, 7u);
}

TEST(ReplicaWireTest, EveryTypeRoundTripsAndJunkIsRejected) {
  for (uint8_t t = 0; t <= kMaxReplicaMessageType; t++) {
    ReplicaMessage msg;
    msg.type = static_cast<ReplicaMessageType>(t);
    msg.epoch = 9;
    msg.sender = 2;
    msg.ack_index = 11;
    msg.last_epoch = 7;
    msg.last_index = 13;
    msg.new_epoch = 10;
    msg.granted = true;
    msg.snapshot_epoch = 6;
    msg.snapshot_index = 12;
    msg.chunk_seq = 1;
    msg.chunk_flags = kStateChunkLast;
    msg.kvs.emplace_back(Key(1), U64Value(2));
    auto decoded = DecodeReplicaMessage(EncodeReplicaMessage(msg));
    ASSERT_TRUE(decoded.ok()) << "type " << int(t);
    EXPECT_EQ(static_cast<uint8_t>(decoded.value().type), t);
    if (msg.type == ReplicaMessageType::kPromoteQuery ||
        msg.type == ReplicaMessageType::kPromote) {
      EXPECT_EQ(decoded.value().new_epoch, 10u);
    }
    if (msg.type == ReplicaMessageType::kPromoteReply) {
      // Votes must survive the wire: ballot echo + grant flag.
      EXPECT_EQ(decoded.value().new_epoch, 10u);
      EXPECT_TRUE(decoded.value().granted);
      EXPECT_EQ(decoded.value().last_epoch, 7u);
      EXPECT_EQ(decoded.value().last_index, 13u);
    }
  }
  // Unknown type byte, truncation, and trailing garbage must all error.
  EXPECT_FALSE(DecodeReplicaMessage({kMaxReplicaMessageType + 1, 0, 0}).ok());
  ReplicaMessage ack;
  ack.type = ReplicaMessageType::kAppendAck;
  std::vector<uint8_t> bytes = EncodeReplicaMessage(ack);
  bytes.pop_back();
  EXPECT_FALSE(DecodeReplicaMessage(bytes).ok());
  bytes = EncodeReplicaMessage(ack);
  bytes.push_back(0);
  EXPECT_FALSE(DecodeReplicaMessage(bytes).ok());
  // A vote byte other than 0/1 is rejected.
  ReplicaMessage vote;
  vote.type = ReplicaMessageType::kPromoteReply;
  bytes = EncodeReplicaMessage(vote);
  bytes.back() = 2;
  EXPECT_FALSE(DecodeReplicaMessage(bytes).ok());
}

TEST(ReplicaWireTest, GroupRequestResponseRoundTrip) {
  GroupRequest request;
  request.required_index = 77;
  request.ops_payload = {1, 2, 3, 4};
  auto req = DecodeGroupRequest(EncodeGroupRequest(request));
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().required_index, 77u);
  EXPECT_EQ(req.value().ops_payload, request.ops_payload);

  GroupResponse response;
  response.flags = kGroupRedirect;
  response.epoch = 4;
  response.primary_id = 2;
  response.assigned_index = 99;
  response.results_payload = {9, 9};
  auto resp = DecodeGroupResponse(EncodeGroupResponse(response));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().flags, kGroupRedirect);
  EXPECT_EQ(resp.value().primary_id, 2u);
  EXPECT_EQ(resp.value().assigned_index, 99u);
}

// --- the log ---

TEST(ReplicaLogTest, IndicesTrimAndSnapshotReset) {
  ReplicaLog log;
  EXPECT_EQ(log.end(), 0u);
  EXPECT_EQ(log.EpochAt(0), 0u);
  for (int i = 1; i <= 10; i++) {
    LogEntry entry;
    entry.epoch = i <= 5 ? 1 : 2;
    log.Append(entry);
  }
  EXPECT_EQ(log.end(), 10u);
  EXPECT_EQ(log.EpochAt(5), 1u);
  EXPECT_EQ(log.EpochAt(6), 2u);
  EXPECT_EQ(log.Window(8, 64).size(), 3u);
  EXPECT_EQ(log.Window(11, 64).size(), 0u);
  EXPECT_EQ(log.Window(1, 4).size(), 4u);

  log.Trim(4);
  EXPECT_EQ(log.base(), 6u);
  EXPECT_EQ(log.base_epoch(), 2u);
  EXPECT_EQ(log.EpochAt(6), 2u);  // the trimmed boundary keeps its epoch
  EXPECT_FALSE(log.Contains(6));
  EXPECT_TRUE(log.Contains(7));

  log.ResetToSnapshot(42, 3);
  EXPECT_EQ(log.base(), 42u);
  EXPECT_EQ(log.end(), 42u);
  EXPECT_EQ(log.EpochAt(42), 3u);
}

// --- KeyRouter agreement across subsystems ---

TEST(KeyRouterTest, ShardedClientsAgreeOnOwnership) {
  const uint32_t kShards = 4;
  KeyRouter router(kShards);
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  MultiNicServer multi(kShards, config);
  Rng rng(11);
  for (int i = 0; i < 200; i++) {
    std::vector<uint8_t> key = Key(rng.Next());
    EXPECT_EQ(router.PartitionOf(key), multi.OwnerOf(key));
  }
}

// --- replication basics ---

TEST(ReplicationGroupTest, WritesReachEveryBackupAndCommitNeedsQuorum) {
  ReplicationGroup group(SmallGroupConfig());
  ReplicatedClient client(group);
  for (uint64_t i = 0; i < 20; i++) {
    client.Enqueue(Put(i, 1000 + i));
  }
  std::vector<KvResultMessage> results = client.Flush();
  ASSERT_EQ(results.size(), 20u);
  for (const KvResultMessage& r : results) {
    EXPECT_EQ(r.code, ResultCode::kOk);
    EXPECT_EQ(r.epoch, 1u);
  }
  EXPECT_GE(group.commit_index(), 20u);
  // Let the backups drain their apply pipelines.
  RunFor(group.simulator(), 2 * kMillisecond);
  for (uint32_t id = 0; id < 3; id++) {
    EXPECT_EQ(group.log_end(id), 20u) << "replica " << id;
    EXPECT_EQ(ReadU64(group, id, 7), 1007u) << "replica " << id;
  }
  EXPECT_GT(group.stats().entries_applied, 0u);
  EXPECT_GT(group.stats().append_acks, 0u);
}

TEST(ReplicationGroupTest, WriteToBackupRedirectsWithoutExecuting) {
  ReplicationGroup group(SmallGroupConfig());
  PacketBuilder builder;
  ASSERT_TRUE(builder.Add(Put(1, 1)));
  GroupRequest request;
  request.ops_payload = builder.Finish();
  std::vector<uint8_t> frame =
      FramePacket(group.AcquireClientSequenceBase() + 1, EncodeGroupRequest(request));

  std::vector<uint8_t> response;
  group.DeliverClientFrame(1, frame, [&](std::vector<uint8_t> bytes) {
    response = std::move(bytes);
  });
  ASSERT_FALSE(response.empty());
  auto parsed = ParseFrame(response);
  ASSERT_TRUE(parsed.ok());
  auto decoded = DecodeGroupResponse(parsed.value().payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().flags, kGroupRedirect);
  EXPECT_EQ(decoded.value().primary_id, 0u);
  EXPECT_EQ(group.stats().redirects, 1u);
  EXPECT_EQ(group.log_end(0), 0u);  // nothing executed anywhere
}

TEST(ReplicationGroupTest, ReadBelowWatermarkBouncesStale) {
  ReplicationGroup group(SmallGroupConfig());
  PacketBuilder builder;
  ASSERT_TRUE(builder.Add(Get(1)));
  GroupRequest request;
  request.required_index = 100;  // far past anything applied
  request.ops_payload = builder.Finish();
  std::vector<uint8_t> frame =
      FramePacket(group.AcquireClientSequenceBase() + 1, EncodeGroupRequest(request));

  std::vector<uint8_t> response;
  group.DeliverClientFrame(2, frame, [&](std::vector<uint8_t> bytes) {
    response = std::move(bytes);
  });
  ASSERT_FALSE(response.empty());
  auto decoded = DecodeGroupResponse(ParseFrame(response).value().payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().flags, kGroupStaleRead);
  EXPECT_EQ(group.stats().stale_reads, 1u);
}

TEST(ReplicationGroupTest, LaggingBackupRejectsReadThenClientRetriesPrimary) {
  // Quorum of one lets the primary acknowledge before the backups apply;
  // scripted drops of the first replication windows widen that lag so the
  // round-robin reads actually hit a stale backup.
  ReplicationConfig config = SmallGroupConfig();
  config.quorum = 1;
  for (uint64_t n = 1; n <= 12; n++) {
    config.faults.schedule.push_back({FaultSite::kNetDropToServer, n});
  }
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  for (uint64_t i = 0; i < 4; i++) {
    client.Enqueue(Put(i, 2000 + i));
  }
  for (const KvResultMessage& r : client.Flush()) {
    ASSERT_EQ(r.code, ResultCode::kOk);
  }
  // Three single-read flushes walk the round-robin cursor across replicas.
  for (uint64_t round = 0; round < 3; round++) {
    client.Enqueue(Get(1));
    std::vector<KvResultMessage> results = client.Flush();
    ASSERT_EQ(results.size(), 1u);
    ASSERT_EQ(results[0].code, ResultCode::kOk);
    uint64_t v = 0;
    std::memcpy(&v, results[0].value.data(), 8);
    // Read-your-writes: never a stale value, whichever replica answered.
    EXPECT_EQ(v, 2001u);
  }
  EXPECT_GE(group.stats().stale_reads, 1u);
  EXPECT_GE(client.stats().stale_retries, 1u);
}

TEST(ReplicationGroupTest, BackupAppliesOnlyCommittedEntries) {
  // Quorum = all 3 and one backup down: an appended entry can never commit,
  // so the live backup must hold it in its log without applying it — a read
  // of its store must not see the (potentially discardable) write.
  ReplicationConfig config = SmallGroupConfig();
  config.quorum = 3;
  ReplicationGroup group(config);
  Simulator& sim = group.simulator();
  group.CrashReplica(2);

  PacketBuilder builder;
  ASSERT_TRUE(builder.Add(Put(1, 111)));
  GroupRequest request;
  request.ops_payload = builder.Finish();
  const uint64_t sequence = group.AcquireClientSequenceBase() + 1;
  std::vector<uint8_t> response;
  group.DeliverClientFrame(0, FramePacket(sequence, EncodeGroupRequest(request)),
                           [&](std::vector<uint8_t> bytes) {
                             response = std::move(bytes);
                           });
  RunFor(sim, 5 * kMillisecond);

  // Not acknowledged, not committed; replicated to backup 1's log but
  // invisible in its store (applied cursor lags the uncommitted tail).
  EXPECT_TRUE(response.empty());
  EXPECT_EQ(group.commit_index(), 0u);
  EXPECT_EQ(group.log_end(1), 1u);
  EXPECT_EQ(group.applied_index(1), 0u);
  EXPECT_EQ(group.replica(1).Execute(Get(1)).code, ResultCode::kNotFound);
  // Execute-then-log: the primary's own store does reflect it.
  EXPECT_EQ(group.applied_index(0), 1u);

  // Once the third replica rejoins and acks, the entry commits, the backup
  // applies it, and the client response finally goes out.
  group.RestartReplica(2);
  RunFor(sim, 10 * kMillisecond);
  EXPECT_GE(group.commit_index(), 1u);
  EXPECT_GE(group.applied_index(1), 1u);
  EXPECT_EQ(ReadU64(group, 1, 1), 111u);
  EXPECT_EQ(ReadU64(group, 2, 1), 111u);
  EXPECT_FALSE(response.empty());
}

// --- failover ---

TEST(ReplicationGroupTest, WriteQuorumOfOneStillRequiresMajorityToElect) {
  // A write quorum of 1 must not weaken election safety: with only one of
  // three replicas alive there is no majority, so nobody may be promoted
  // (two such minority elections could otherwise produce two primaries).
  ReplicationConfig config = SmallGroupConfig();
  config.quorum = 1;
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  for (uint64_t i = 0; i < 6; i++) {
    client.Enqueue(Put(i, 300 + i));
  }
  for (const KvResultMessage& r : client.Flush()) {
    ASSERT_EQ(r.code, ResultCode::kOk);
  }
  RunFor(group.simulator(), 2 * kMillisecond);  // replicate to the backups

  group.CrashReplica(0);
  group.CrashReplica(2);
  RunFor(group.simulator(), 20 * kMillisecond);
  // Replica 1 campaigned but could never gather a majority of grants.
  EXPECT_GE(group.stats().elections, 1u);
  EXPECT_EQ(group.stats().failovers, 0u);
  EXPECT_FALSE(group.is_primary(1));

  // A second replica restores the majority and the election goes through.
  group.RestartReplica(2);
  RunFor(group.simulator(), 20 * kMillisecond);
  EXPECT_GE(group.stats().failovers, 1u);
  EXPECT_GE(group.epoch(), 2u);
  uint32_t primaries = 0;
  for (uint32_t id = 0; id < group.num_replicas(); id++) {
    primaries += !group.crashed(id) && group.is_primary(id) ? 1 : 0;
  }
  EXPECT_EQ(primaries, 1u);
  // Nothing acknowledged before the crashes was lost.
  for (uint64_t i = 0; i < 6; i++) {
    KvResultMessage r = group.Execute(Get(i));
    ASSERT_EQ(r.code, ResultCode::kOk) << "key " << i;
    uint64_t v = 0;
    std::memcpy(&v, r.value.data(), 8);
    EXPECT_EQ(v, 300 + i) << "key " << i;
  }
}

TEST(ReplicationGroupTest, SequentialDoubleFailoverKeepsOnePrimaryAndAllAcks) {
  ReplicationConfig config = SmallGroupConfig(5);
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  std::map<uint64_t, uint64_t> acked;

  auto write_batch = [&](uint64_t base) {
    for (uint64_t i = base; i < base + 8; i++) {
      client.Enqueue(Put(i, 9000 + i));
    }
    std::vector<KvResultMessage> results = client.Flush();
    for (size_t s = 0; s < results.size(); s++) {
      if (results[s].code == ResultCode::kOk) {
        acked[base + s] = 9000 + base + s;
      }
    }
  };

  write_batch(0);
  group.CrashReplica(group.primary_id());
  RunFor(group.simulator(), 10 * kMillisecond);
  const uint32_t second_primary = group.primary_id();
  EXPECT_FALSE(group.crashed(second_primary));
  write_batch(100);
  group.CrashReplica(second_primary);
  RunFor(group.simulator(), 10 * kMillisecond);
  write_batch(200);

  // Two epochs of history later: exactly one alive primary, all acks served.
  EXPECT_GE(group.stats().failovers, 2u);
  uint32_t primaries = 0;
  for (uint32_t id = 0; id < group.num_replicas(); id++) {
    primaries += !group.crashed(id) && group.is_primary(id) ? 1 : 0;
  }
  EXPECT_EQ(primaries, 1u);
  ASSERT_FALSE(acked.empty());
  for (const auto& [id, value] : acked) {
    KvResultMessage r = group.Execute(Get(id));
    ASSERT_EQ(r.code, ResultCode::kOk) << "key " << id;
    uint64_t v = 0;
    std::memcpy(&v, r.value.data(), 8);
    EXPECT_EQ(v, value) << "key " << id;
  }
}

TEST(ReplicationGroupTest, ScriptedPrimaryCrashLosesNoAcknowledgedWrite) {
  ReplicationConfig config = SmallGroupConfig();
  // Tick consults replicas in id order: the first consult ever is replica 0,
  // the initial primary — it crashes at the first heartbeat (200us), between
  // the early batches of the workload below.
  config.faults.schedule.push_back({FaultSite::kReplicaCrash, 1});
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  HistoryRecorder recorder;
  RecordingEndpoint endpoint(client, recorder);

  std::map<uint64_t, uint64_t> acked;  // key id -> last acknowledged value
  Rng rng(42);
  uint64_t next_key = 0;
  for (int batch = 0; batch < 12; batch++) {
    // YCSB-A-ish: half updates (fresh keys + overwrites), half reads of
    // previously acknowledged keys. `slots` records each result slot's
    // meaning: (is_write, key id, value-if-write).
    struct Slot {
      bool is_write;
      uint64_t id;
      uint64_t value;
    };
    std::vector<Slot> slots;
    std::set<uint64_t> used;  // keys touched this batch: keep them distinct so
                              // retransmit reordering can't change the answer
    for (int i = 0; i < 8; i++) {
      if (i % 2 == 0 || acked.empty()) {
        uint64_t id = (rng.Next() % 4 == 0 && next_key > 0)
                          ? rng.Next() % next_key
                          : next_key++;
        if (used.count(id)) {
          id = next_key++;
        }
        const uint64_t value = rng.Next();
        endpoint.Enqueue(Put(id, value));
        slots.push_back({true, id, value});
        used.insert(id);
      } else {
        auto it = acked.begin();
        std::advance(it, rng.Next() % acked.size());
        if (used.count(it->first)) {
          continue;  // already written this batch; skip the read
        }
        endpoint.Enqueue(Get(it->first));
        slots.push_back({false, it->first, 0});
        used.insert(it->first);
      }
    }
    std::vector<KvResultMessage> results = endpoint.Flush();
    ASSERT_EQ(results.size(), slots.size());
    std::map<uint64_t, uint64_t> batch_acked;
    for (size_t s = 0; s < slots.size(); s++) {
      if (slots[s].is_write) {
        if (results[s].code == ResultCode::kOk) {
          batch_acked[slots[s].id] = slots[s].value;
        }
      } else if (results[s].code == ResultCode::kOk &&
                 results[s].value.size() >= 8) {
        // Read-your-writes: a read of a previously acknowledged key must see
        // a value this client acknowledged (keys are written at most once per
        // batch, so the pre-batch value is the only legal answer).
        uint64_t v = 0;
        std::memcpy(&v, results[s].value.data(), 8);
        EXPECT_EQ(v, acked.at(slots[s].id)) << "stale read of key " << slots[s].id;
      }
    }
    for (const auto& [id, value] : batch_acked) {
      acked[id] = value;
    }
    // Let simulated time pass between batches so heartbeats (and the
    // scripted crash) interleave with the workload.
    RunFor(group.simulator(), 100 * kMicrosecond);
  }

  // The failover happened and was measured.
  EXPECT_GE(group.stats().crashes, 1u);
  EXPECT_GE(group.stats().failovers, 1u);
  EXPECT_NE(group.primary_id(), 0u);
  EXPECT_GE(group.epoch(), 2u);
  EXPECT_GT(group.stats().last_failover_downtime_ns, 0u);

  // No acknowledged write was lost: the new primary serves every acked value.
  for (const auto& [id, value] : acked) {
    KvResultMessage r = group.Execute(Get(id));
    ASSERT_EQ(r.code, ResultCode::kOk) << "key " << id;
    uint64_t v = 0;
    std::memcpy(&v, r.value.data(), 8);
    EXPECT_EQ(v, value) << "key " << id;
  }

  // Bounded retry amplification: the crash costs retransmissions, not a storm.
  EXPECT_LE(client.stats().retransmits,
            client.stats().packets_sent * 3 + 32);

  // The crashed ex-primary rejoins as a backup and is healed (log replay or
  // state transfer, depending on whether its tail diverged).
  group.RestartReplica(0);
  RunFor(group.simulator(), 30 * kMillisecond);
  EXPECT_FALSE(group.crashed(0));
  EXPECT_EQ(group.log_end(0), group.log_end(group.primary_id()));
  for (const auto& [id, value] : acked) {
    EXPECT_EQ(ReadU64(group, 0, id), value) << "key " << id;
  }

  // The recorded workload history — every op the client issued across the
  // crash and failover — linearizes and honors the session guarantees.
  const CheckReport lin = CheckLinearizability(recorder.history());
  EXPECT_TRUE(lin.ok()) << lin.ToString();
  const AuditReport audit = AuditSessionGuarantees(recorder.history());
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(ReplicationGroupTest, SessionDedupAnswersRetransmitAcrossFailover) {
  ReplicationGroup group(SmallGroupConfig());
  Simulator& sim = group.simulator();

  // Seed a counter, then fetch-and-add via a raw framed request so the exact
  // bytes can be retransmitted later.
  ASSERT_TRUE(group.Load(Key(5), U64Value(100)).ok());
  KvOperation update;
  update.opcode = Opcode::kUpdateScalar;
  update.key = Key(5);
  update.param = 7;
  PacketBuilder builder;
  ASSERT_TRUE(builder.Add(update));
  GroupRequest request;
  request.ops_payload = builder.Finish();
  const uint64_t sequence = group.AcquireClientSequenceBase() + 1;
  std::vector<uint8_t> frame = FramePacket(sequence, EncodeGroupRequest(request));

  std::vector<uint8_t> first;
  group.DeliverClientFrame(0, frame, [&](std::vector<uint8_t> bytes) {
    first = std::move(bytes);
  });
  while (first.empty()) {
    ASSERT_TRUE(sim.Step());
  }
  auto first_results =
      DecodeResults(DecodeGroupResponse(ParseFrame(first).value().payload)
                        .value()
                        .results_payload);
  ASSERT_TRUE(first_results.ok());
  EXPECT_EQ(first_results.value()[0].scalar, 100u);  // original value

  // Crash the primary after the entry replicated, fail over, and retransmit
  // the identical frame to the new primary.
  RunFor(sim, 2 * kMillisecond);
  group.CrashReplica(0);
  RunFor(sim, 5 * kMillisecond);
  ASSERT_NE(group.primary_id(), 0u);

  std::vector<uint8_t> second;
  group.DeliverClientFrame(group.primary_id(), frame,
                           [&](std::vector<uint8_t> bytes) {
                             second = std::move(bytes);
                           });
  while (second.empty()) {
    ASSERT_TRUE(sim.Step());
  }
  auto decoded = DecodeGroupResponse(ParseFrame(second).value().payload);
  ASSERT_TRUE(decoded.ok());
  auto second_results = DecodeResults(decoded.value().results_payload);
  ASSERT_TRUE(second_results.ok());
  // Exactly-once: the stored result, not a re-execution (which would return
  // 107), and the counter advanced exactly once.
  EXPECT_EQ(second_results.value()[0].scalar, 100u);
  EXPECT_GE(group.stats().session_dedup_hits, 1u);
  EXPECT_EQ(decoded.value().epoch, group.epoch());

  KvResultMessage counter = group.Execute(Get(5));
  uint64_t v = 0;
  std::memcpy(&v, counter.value.data(), 8);
  EXPECT_EQ(v, 107u);
}

// --- catch-up and state transfer ---

TEST(ReplicationGroupTest, RestartedBackupCatchesUpByLogReplay) {
  ReplicationGroup group(SmallGroupConfig());
  ReplicatedClient client(group);
  for (uint64_t i = 0; i < 5; i++) {
    client.Enqueue(Put(i, i));
  }
  client.Flush();
  group.CrashReplica(2);
  for (uint64_t i = 5; i < 30; i++) {
    client.Enqueue(Put(i, i));
  }
  client.Flush();
  EXPECT_LT(group.log_end(2), 30u);

  group.RestartReplica(2);
  RunFor(group.simulator(), 10 * kMillisecond);
  EXPECT_EQ(group.log_end(2), 30u);
  EXPECT_EQ(ReadU64(group, 2, 29), 29u);
  // The primary still had the whole log, so heartbeat-driven window replay
  // from the backup's last confirmed position healed it — no state transfer.
  EXPECT_EQ(group.stats().state_transfers, 0u);
}

TEST(ReplicationGroupTest, TrimmedLogForcesBoundedRateStateTransfer) {
  ReplicationConfig config = SmallGroupConfig();
  config.max_log_entries = 8;  // aggressive trim: restarts overrun the log
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  for (uint64_t i = 0; i < 4; i++) {
    client.Enqueue(Put(i, 10 + i));
  }
  client.Flush();
  group.CrashReplica(2);
  for (uint64_t i = 4; i < 40; i++) {
    client.Enqueue(Put(i, 10 + i));
  }
  client.Flush();
  ASSERT_GT(group.replica(0).simulator().Now(), 0u);

  group.RestartReplica(2);
  RunFor(group.simulator(), 30 * kMillisecond);
  EXPECT_GE(group.stats().state_transfers, 1u);
  EXPECT_GT(group.stats().state_transfer_kvs, 0u);
  EXPECT_GT(group.stats().state_transfer_bytes, 0u);
  EXPECT_EQ(group.log_end(2), group.log_end(0));
  for (uint64_t i : {0ull, 17ull, 39ull}) {
    EXPECT_EQ(ReadU64(group, 2, i), 10 + i) << "key " << i;
  }
}

TEST(ReplicationGroupTest, StateTransferCompletesUnderSustainedWriteLoad) {
  // Drain-then-cut: sustained client writes must not postpone a snapshot cut
  // indefinitely — arriving writes are parked until the pipeline quiesces,
  // then executed in order.
  ReplicationConfig config = SmallGroupConfig();
  config.max_log_entries = 8;  // force the resync to need a state transfer
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  for (uint64_t i = 0; i < 4; i++) {
    client.Enqueue(Put(i, 40 + i));
  }
  client.Flush();
  group.CrashReplica(2);
  for (uint64_t i = 4; i < 40; i++) {
    client.Enqueue(Put(i, 40 + i));
  }
  client.Flush();
  group.RestartReplica(2);

  // Hammer the primary with back-to-back raw frames (one per simulated
  // microsecond) so its pipeline is never observed idle while the transfer
  // initiates: the cut must park arriving writes instead of starving.
  Simulator& sim = group.simulator();
  const uint64_t base_seq = group.AcquireClientSequenceBase();
  size_t responses = 0;
  for (uint64_t n = 0; n < 400; n++) {
    sim.ScheduleAt(sim.Now() + n * kMicrosecond, [&group, &responses, base_seq,
                                                  n] {
      PacketBuilder builder;
      ASSERT_TRUE(builder.Add(Put(100 + n, 7100 + n)));
      GroupRequest request;
      request.ops_payload = builder.Finish();
      group.DeliverClientFrame(
          0, FramePacket(base_seq + 1 + n, EncodeGroupRequest(request)),
          [&responses](std::vector<uint8_t>) { responses++; });
    });
  }
  RunFor(sim, 30 * kMillisecond);
  EXPECT_GE(group.stats().state_transfers, 1u);
  EXPECT_GE(group.stats().snapshot_deferred_writes, 1u);

  // The load never starved the transfer, and no write was dropped by the
  // drain: every frame was answered and the restarted replica converges.
  EXPECT_EQ(responses, 400u);
  EXPECT_EQ(group.log_end(2), group.log_end(group.primary_id()));
  for (uint64_t n : {0ull, 199ull, 399ull}) {
    EXPECT_EQ(ReadU64(group, 2, 100 + n), 7100 + n) << "key " << 100 + n;
  }
}

// --- determinism ---

std::string RunScriptedFailoverScenario(uint64_t seed) {
  ReplicationConfig config = SmallGroupConfig();
  config.faults.seed = seed;
  config.faults.schedule.push_back({FaultSite::kReplicaCrash, 1});
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  HistoryRecorder recorder;
  RecordingEndpoint endpoint(client, recorder);
  Rng rng(seed);
  for (int batch = 0; batch < 8; batch++) {
    for (int i = 0; i < 6; i++) {
      endpoint.Enqueue(Put(rng.Next() % 64, rng.Next()));
    }
    endpoint.Flush();
    RunFor(group.simulator(), 100 * kMicrosecond);
  }
  group.RestartReplica(0);
  RunFor(group.simulator(), 10 * kMillisecond);
  return group.metrics().ToJson() + "|epoch=" + std::to_string(group.epoch()) +
         "|commit=" + std::to_string(group.commit_index()) +
         "|primary=" + std::to_string(group.primary_id()) +
         "|history=" + recorder.history().Fingerprint();
}

TEST(ReplicationGroupTest, SameSeedReplayIsBitIdentical) {
  const std::string a = RunScriptedFailoverScenario(7);
  const std::string b = RunScriptedFailoverScenario(7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("kvd_repl_failovers_total"), std::string::npos);
}

// Sharded + replicated clusters moved to the control plane in src/cluster
// (ClusterCoordinator + ClusterClient); their coverage lives in
// tests/cluster_test.cc.

TEST(MultiNicSharedSimTest, ShardsAcceptAnExternalClock) {
  Simulator sim;
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  MultiNicServer multi(2, config, &sim);
  EXPECT_EQ(&multi.nic(0).simulator(), &sim);
  EXPECT_EQ(&multi.nic(1).simulator(), &sim);
  ASSERT_TRUE(multi.Load(Key(1), U64Value(9)).ok());
  KvResultMessage r = multi.Execute(Get(1));
  EXPECT_EQ(r.code, ResultCode::kOk);
}

}  // namespace
}  // namespace kvd
