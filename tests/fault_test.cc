// Fault injection, end-to-end retry/timeout, and graceful degradation.
//
// Covers the FaultInjector itself (determinism, schedules, stream
// independence), the reliable frame codec, wire-format fuzzing (malformed
// input must error, never crash), the kBusy / kOutOfMemory degradation paths,
// ECC bit-flip handling, PCIe TLP replay, and a chaos soak: YCSB-style
// mixes under simultaneous network loss/duplication/corruption, transient
// PCIe errors, and DRAM bit flips, asserting exactly-once effects, bounded
// retry amplification, and bit-identical replays.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>
#include <vector>

#include "src/check/history.h"
#include "src/check/linearizability.h"
#include "src/check/session_audit.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/core/kv_direct.h"
#include "src/fault/fault_injector.h"
#include "src/net/wire_format.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

uint64_t AsU64(const std::vector<uint8_t>& value) {
  uint64_t v = 0;
  std::memcpy(&v, value.data(), std::min<size_t>(8, value.size()));
  return v;
}

ServerConfig SmallServerConfig() {
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  return config;
}

// --- FaultInjector ---

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  FaultPlan plan;
  plan.seed = 7;
  plan.at(FaultSite::kNetDropToServer) = 0.1;
  FaultInjector a(plan);
  FaultInjector b(plan);
  uint64_t injected = 0;
  for (int i = 0; i < 10000; i++) {
    const bool da = a.ShouldInject(FaultSite::kNetDropToServer);
    const bool db = b.ShouldInject(FaultSite::kNetDropToServer);
    EXPECT_EQ(da, db);
    injected += da ? 1 : 0;
  }
  EXPECT_GT(injected, 800u);  // ~1000 expected
  EXPECT_LT(injected, 1200u);
  EXPECT_EQ(a.stats(FaultSite::kNetDropToServer).events, 10000u);
  EXPECT_EQ(a.stats(FaultSite::kNetDropToServer).injected, injected);
}

TEST(FaultInjectorTest, SitesHaveIndependentStreams) {
  FaultPlan plan;
  plan.at(FaultSite::kNetDropToServer) = 0.2;
  plan.at(FaultSite::kPcieReadCompletion) = 0.2;
  // `b` interleaves heavy traffic at another site; `a` does not. The drop
  // site's decision sequence must be unaffected.
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 2000; i++) {
    b.ShouldInject(FaultSite::kPcieReadCompletion);
    if (i % 3 == 0) {
      b.ShouldInject(FaultSite::kPcieReadCompletion);
    }
    EXPECT_EQ(a.ShouldInject(FaultSite::kNetDropToServer),
              b.ShouldInject(FaultSite::kNetDropToServer));
  }
}

TEST(FaultInjectorTest, ScheduleFiresExactlyOnNthEvent) {
  FaultPlan plan;
  plan.schedule.push_back({FaultSite::kDramCorrectableFlip, 5});
  plan.schedule.push_back({FaultSite::kDramCorrectableFlip, 7});
  FaultInjector injector(plan);
  std::vector<int> fired;
  for (int n = 1; n <= 10; n++) {
    if (injector.ShouldInject(FaultSite::kDramCorrectableFlip)) {
      fired.push_back(n);
    }
  }
  EXPECT_EQ(fired, (std::vector<int>{5, 7}));
  EXPECT_EQ(injector.total_injected(), 2u);
}

TEST(FaultInjectorTest, CorruptBytesFlipsOneToThreeBits) {
  FaultPlan plan;
  FaultInjector injector(plan);
  for (int round = 0; round < 50; round++) {
    std::vector<uint8_t> original(64, 0xa5);
    std::vector<uint8_t> corrupted = original;
    injector.CorruptBytes(corrupted, FaultSite::kNetCorruptToServer);
    int flipped = 0;
    for (size_t i = 0; i < original.size(); i++) {
      flipped += std::popcount(static_cast<unsigned>(original[i] ^ corrupted[i]));
    }
    EXPECT_GE(flipped, 1);
    EXPECT_LE(flipped, 3);
  }
}

// --- reliable frame codec ---

TEST(FrameTest, RoundTripsSequenceAndPayload) {
  const std::vector<uint8_t> payload = {1, 2, 3, 250, 0, 42};
  const std::vector<uint8_t> packet = FramePacket(0xdeadbeef12345678ull, payload);
  EXPECT_EQ(packet.size(), payload.size() + kFrameHeaderBytes);
  Result<Frame> frame = ParseFrame(packet);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->sequence, 0xdeadbeef12345678ull);
  EXPECT_EQ(frame->payload, payload);

  // Empty payload is legal (an empty response packet).
  Result<Frame> empty = ParseFrame(FramePacket(9, {}));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->sequence, 9u);
  EXPECT_TRUE(empty->payload.empty());
}

TEST(FrameTest, EverySingleBitFlipIsDetected) {
  std::vector<uint8_t> payload(64);
  for (size_t i = 0; i < payload.size(); i++) {
    payload[i] = static_cast<uint8_t>(i * 31);
  }
  const std::vector<uint8_t> packet = FramePacket(77, payload);
  for (size_t byte = 0; byte < packet.size(); byte++) {
    for (int bit = 0; bit < 8; bit++) {
      std::vector<uint8_t> flipped = packet;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(ParseFrame(flipped).ok())
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(FrameTest, TruncationIsRejected) {
  const std::vector<uint8_t> packet = FramePacket(3, std::vector<uint8_t>(40, 9));
  for (size_t len = 0; len < packet.size(); len++) {
    EXPECT_FALSE(
        ParseFrame(std::span<const uint8_t>(packet.data(), len)).ok())
        << "truncation to " << len << " bytes accepted";
  }
}

// --- wire-format negative / fuzz tests ---

TEST(WireDecodeTest, RejectsUnknownOpcodeByte) {
  PacketBuilder builder;
  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key = Key(1);
  ASSERT_TRUE(builder.Add(op));
  std::vector<uint8_t> payload = builder.Finish();
  payload[0] = kMaxOpcodeByte + 1;  // first byte is the opcode
  PacketParser parser(payload);
  EXPECT_FALSE(parser.Next().ok());
}

TEST(WireDecodeTest, RejectsUnknownResultCodeByte) {
  KvResultMessage result;
  result.code = ResultCode::kOk;
  result.value = U64Value(5);
  std::vector<uint8_t> payload = EncodeResults({result});
  payload[0] = kMaxResultCodeByte + 1;  // first byte is the result code
  EXPECT_FALSE(DecodeResults(payload).ok());
}

TEST(WireDecodeTest, NamesForEveryCode) {
  EXPECT_STREQ(OpcodeName(Opcode::kGet), "GET");
  EXPECT_STREQ(OpcodeName(Opcode::kUpdateScalarVector), "UPDATE_SCALAR_VECTOR");
  EXPECT_STREQ(OpcodeName(static_cast<Opcode>(kMaxOpcodeByte + 1)),
               "UNKNOWN_OPCODE");
  EXPECT_STREQ(ResultCodeName(ResultCode::kBusy), "BUSY");
  EXPECT_STREQ(ResultCodeName(ResultCode::kOutOfMemory), "OUT_OF_MEMORY");
  // kMaxResultCodeByte + 1 is kTimedOut — named, but client-local: the wire
  // decoder still rejects the byte (RejectsUnknownResultCodeByte above).
  EXPECT_STREQ(ResultCodeName(ResultCode::kTimedOut), "TIMED_OUT");
  EXPECT_STREQ(ResultCodeName(static_cast<ResultCode>(kMaxResultCodeByte + 2)),
               "UNKNOWN_RESULT");
}

std::vector<uint8_t> BuildRequestCorpus() {
  PacketBuilder builder(4096);
  for (uint64_t i = 0; i < 20; i++) {
    KvOperation op;
    op.opcode = static_cast<Opcode>(i % (kMaxOpcodeByte + 1));
    op.key = Key(i);
    op.value = std::vector<uint8_t>(8 + (i % 3) * 8, static_cast<uint8_t>(i));
    op.param = i * 13;
    if (!builder.Add(op)) {
      break;
    }
  }
  return builder.Finish();
}

// Drains the parser; returns false iff it errored. Must never crash.
bool DrainRequests(std::vector<uint8_t> payload) {
  PacketParser parser(std::move(payload));
  while (true) {
    Result<std::optional<KvOperation>> next = parser.Next();
    if (!next.ok()) {
      return false;
    }
    if (!next->has_value()) {
      return true;
    }
  }
}

TEST(WireFuzzTest, TruncatedRequestsNeverCrash) {
  const std::vector<uint8_t> packet = BuildRequestCorpus();
  ASSERT_GT(packet.size(), 50u);
  for (size_t len = 0; len <= packet.size(); len++) {
    DrainRequests(std::vector<uint8_t>(packet.begin(), packet.begin() + len));
  }
}

TEST(WireFuzzTest, BitFlippedRequestsNeverCrash) {
  const std::vector<uint8_t> packet = BuildRequestCorpus();
  Rng rng(0xfadedface);
  for (int round = 0; round < 2000; round++) {
    std::vector<uint8_t> mutated = packet;
    const int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; f++) {
      mutated[rng.NextBelow(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBelow(8));
    }
    DrainRequests(std::move(mutated));
  }
}

TEST(WireFuzzTest, OversizedLengthFieldsAreRejected) {
  // GET of an 8-byte key: u8 opcode | u8 flags | u16 key_len | key bytes.
  PacketBuilder builder;
  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key = Key(1);
  ASSERT_TRUE(builder.Add(op));
  std::vector<uint8_t> payload = builder.Finish();
  payload[2] = 0xff;  // key_len = 0xffff, far beyond the remaining bytes
  payload[3] = 0xff;
  EXPECT_FALSE(DrainRequests(payload));
}

TEST(WireFuzzTest, TruncatedAndFlippedResponsesNeverCrash) {
  std::vector<KvResultMessage> results;
  for (uint64_t i = 0; i < 10; i++) {
    KvResultMessage r;
    r.code = static_cast<ResultCode>(i % (kMaxResultCodeByte + 1));
    r.value = std::vector<uint8_t>(i * 5, static_cast<uint8_t>(i));
    r.scalar = i;
    results.push_back(std::move(r));
  }
  const std::vector<uint8_t> packet = EncodeResults(results);
  for (size_t len = 0; len <= packet.size(); len++) {
    (void)DecodeResults(std::vector<uint8_t>(packet.begin(), packet.begin() + len));
  }
  Rng rng(0xbeefcafe);
  for (int round = 0; round < 2000; round++) {
    std::vector<uint8_t> mutated = packet;
    mutated[rng.NextBelow(mutated.size())] ^=
        static_cast<uint8_t>(1u << rng.NextBelow(8));
    (void)DecodeResults(mutated);
  }
}

// --- end-to-end retry/timeout over a faulty network ---

TEST(ClientRetryTest, ScheduledDropCausesExactlyOneRetransmit) {
  ServerConfig config = SmallServerConfig();
  config.faults.schedule.push_back({FaultSite::kNetDropToServer, 1});
  KvDirectServer server(config);
  ASSERT_TRUE(server.Load(Key(1), U64Value(99)).ok());

  Client::Options options;
  options.retry.timeout = 20 * kMicrosecond;
  Client client(server, options);
  auto value = client.Get(Key(1));
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(AsU64(*value), 99u);
  EXPECT_EQ(client.stats().packets_sent, 1u);
  EXPECT_EQ(client.stats().retransmits, 1u);
  EXPECT_EQ(server.network().packets_dropped(), 1u);
}

TEST(ClientRetryTest, ReplayedResponseDropIsDeduplicated) {
  // Drop the *response*: the server executed the op, so the retransmitted
  // request must be answered from the replay cache, not re-executed.
  ServerConfig config = SmallServerConfig();
  config.faults.schedule.push_back({FaultSite::kNetDropToClient, 1});
  KvDirectServer server(config);
  ASSERT_TRUE(server.Load(Key(1), U64Value(0)).ok());

  Client::Options options;
  options.retry.timeout = 20 * kMicrosecond;
  Client client(server, options);
  auto original = client.Update(Key(1), 5);  // fetch-and-add, not idempotent
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(*original, 0u);
  EXPECT_EQ(client.stats().retransmits, 1u);
  EXPECT_EQ(server.replayed_responses(), 1u);
  // Exactly-once: the add applied a single time.
  auto value = client.Get(Key(1));
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(AsU64(*value), 5u);
}

TEST(ClientRetryTest, ReplayCacheRetainTimeProtectsRecentCompletions) {
  // An over-budget replay cache must not evict a freshly completed entry:
  // a retransmission of a non-idempotent op may still be in flight, and
  // re-admitting its sequence would re-execute it. Only entries older than
  // replay_retain_time are eligible.
  ServerConfig config = SmallServerConfig();
  config.replay_cache_entries = 2;  // force eviction pressure immediately
  config.replay_retain_time = 200 * kMicrosecond;
  KvDirectServer server(config);
  Simulator& sim = server.simulator();
  ASSERT_TRUE(server.Load(Key(1), U64Value(0)).ok());

  const uint64_t base = server.AcquireClientSequenceBase();
  auto frame_for = [&](uint64_t seq, const KvOperation& op) {
    PacketBuilder builder;
    KVD_CHECK(builder.Add(op));
    return FramePacket(base + seq, builder.Finish());
  };
  auto deliver = [&](std::vector<uint8_t> frame) {
    std::vector<KvResultMessage> results;
    server.DeliverFrame(std::move(frame), [&](std::vector<uint8_t> response) {
      auto parsed = ParseFrame(response);
      KVD_CHECK(parsed.ok());
      auto decoded = DecodeResults(parsed.value().payload);
      KVD_CHECK(decoded.ok());
      results = decoded.value();
    });
    while (results.empty()) {
      KVD_CHECK(sim.Step());
    }
    return results;
  };

  KvOperation update;
  update.opcode = Opcode::kUpdateScalar;
  update.key = Key(1);
  update.param = 5;  // fetch-and-add: visibly wrong if executed twice
  const std::vector<uint8_t> update_frame = frame_for(1, update);

  KvOperation get;
  get.opcode = Opcode::kGet;
  get.key = Key(1);

  EXPECT_EQ(deliver(update_frame)[0].scalar, 0u);
  // Two more sequences push the 2-entry cache over budget; the update's
  // entry is the eviction candidate but is younger than the retain time.
  deliver(frame_for(2, get));
  deliver(frame_for(3, get));

  // The retransmission is answered from the cache — not re-executed.
  EXPECT_EQ(deliver(update_frame)[0].scalar, 0u);
  EXPECT_EQ(server.replayed_responses(), 1u);
  EXPECT_EQ(AsU64(deliver(frame_for(4, get))[0].value), 5u);

  // Once the retain window has passed, the same pressure does evict it, and
  // a (pathologically late) retransmission re-executes: the retain time is
  // the server's exactly-once horizon and must exceed the client's retry
  // window.
  sim.RunUntil(sim.Now() + 300 * kMicrosecond);
  deliver(frame_for(5, get));
  deliver(frame_for(6, get));
  EXPECT_EQ(deliver(update_frame)[0].scalar, 5u);  // executed again
  EXPECT_EQ(server.replayed_responses(), 1u);
}

TEST(ClientRetryTest, SurvivesLossyNetworkExactlyOnce) {
  ServerConfig config = SmallServerConfig();
  config.faults.seed = 3;
  config.faults.at(FaultSite::kNetDropToServer) = 0.05;
  config.faults.at(FaultSite::kNetDropToClient) = 0.05;
  config.faults.at(FaultSite::kNetDuplicateToServer) = 0.03;
  config.faults.at(FaultSite::kNetDuplicateToClient) = 0.03;
  config.faults.at(FaultSite::kNetCorruptToServer) = 0.03;
  config.faults.at(FaultSite::kNetCorruptToClient) = 0.03;
  KvDirectServer server(config);
  constexpr uint64_t kKeys = 16;
  for (uint64_t k = 0; k < kKeys; k++) {
    ASSERT_TRUE(server.Load(Key(k), U64Value(0)).ok());
  }

  Client::Options options;
  options.retry.timeout = 50 * kMicrosecond;
  options.max_ops_per_packet = 4;  // many packets -> many fault opportunities
  Client client(server, options);

  constexpr uint64_t kRounds = 40;
  std::vector<uint64_t> expected(kKeys, 0);
  for (uint64_t round = 0; round < kRounds; round++) {
    for (uint64_t k = 0; k < kKeys; k++) {
      KvOperation op;
      op.opcode = Opcode::kUpdateScalar;
      op.key = Key(k);
      op.param = round + k;
      expected[k] += round + k;
      client.Enqueue(std::move(op));
    }
    auto results = client.Flush();
    for (const auto& r : results) {
      EXPECT_EQ(r.code, ResultCode::kOk);
    }
  }
  // Zero lost, zero duplicated effects despite drops/dups/corruption.
  for (uint64_t k = 0; k < kKeys; k++) {
    auto value = client.Get(Key(k));
    ASSERT_TRUE(value.ok()) << k;
    EXPECT_EQ(AsU64(*value), expected[k]) << k;
  }
  EXPECT_GT(client.stats().retransmits, 0u);
  EXPECT_GT(server.network().packets_dropped(), 0u);
  EXPECT_GT(server.network().packets_duplicated(), 0u);
  EXPECT_GT(server.network().packets_corrupted(), 0u);
  EXPECT_GT(server.corrupt_frames() + client.stats().corrupt_responses, 0u);
}

// --- graceful degradation: kBusy and kOutOfMemory ---

TEST(DegradationTest, BusyBackpressureEndToEnd) {
  ServerConfig config = SmallServerConfig();
  config.processor.ooo.max_inflight = 8;
  config.processor.max_backlog = 8;
  KvDirectServer server(config);
  constexpr uint64_t kKeys = 64;
  for (uint64_t k = 0; k < kKeys; k++) {
    ASSERT_TRUE(server.Load(Key(k), U64Value(k)).ok());
  }

  Client client(server);
  constexpr uint64_t kOps = 400;  // one big flush >> station + backlog
  for (uint64_t i = 0; i < kOps; i++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(i % kKeys);
    client.Enqueue(std::move(op));
  }
  auto results = client.Flush();
  ASSERT_EQ(results.size(), kOps);
  for (uint64_t i = 0; i < kOps; i++) {
    ASSERT_EQ(results[i].code, ResultCode::kOk) << i;
    EXPECT_EQ(AsU64(results[i].value), i % kKeys) << i;
  }
  // The tiny admission queue bounced operations, the client backed off and
  // re-sent exactly those, and everything completed.
  EXPECT_GT(client.stats().busy_retries, 0u);
  EXPECT_GT(server.processor().stats().busy_rejected, 0u);
  EXPECT_EQ(*server.metrics().CounterValue("kvd_proc_busy_rejected_total"),
            server.processor().stats().busy_rejected);
}

TEST(DegradationTest, OutOfMemorySurfacesInBatchAndRecovers) {
  ServerConfig config = SmallServerConfig();
  config.kvs_memory_bytes = 256 * kKiB;
  KvDirectServer server(config);
  Client client(server);

  const std::vector<uint8_t> big(200, 7);
  uint64_t inserted = 0;
  bool saw_oom = false;
  while (!saw_oom) {
    for (int i = 0; i < 32; i++) {
      KvOperation op;
      op.opcode = Opcode::kPut;
      op.key = Key(inserted + static_cast<uint64_t>(i));
      op.value = big;
      client.Enqueue(std::move(op));
    }
    auto results = client.Flush();
    for (const auto& r : results) {
      if (r.code == ResultCode::kOutOfMemory) {
        saw_oom = true;
      } else {
        ASSERT_EQ(r.code, ResultCode::kOk);
        inserted++;
      }
    }
    ASSERT_LT(inserted, 100000u);
  }
  EXPECT_GT(inserted, 100u);
  // Deleting frees capacity; a retry then succeeds — clients recover.
  for (uint64_t victim = 0; victim < 8; victim++) {
    ASSERT_TRUE(client.Delete(Key(victim)).ok());
  }
  EXPECT_TRUE(client.Put(Key(1u << 20), big).ok());
}

// --- ECC and PCIe fault paths ---

TEST(EccFaultTest, CorrectableFlipsCorrectUncorrectableDemote) {
  ServerConfig config = SmallServerConfig();
  config.dispatch_policy = DispatchPolicy::kCacheAll;  // all reads via DRAM
  config.faults.at(FaultSite::kDramCorrectableFlip) = 0.05;
  config.faults.at(FaultSite::kDramUncorrectableFlip) = 0.02;
  KvDirectServer server(config);
  constexpr uint64_t kKeys = 64;
  for (uint64_t k = 0; k < kKeys; k++) {
    ASSERT_TRUE(server.Load(Key(k), U64Value(k * 3)).ok());
  }

  Client client(server);
  for (int round = 0; round < 20; round++) {
    for (uint64_t k = 0; k < kKeys; k++) {
      KvOperation op;
      op.opcode = Opcode::kGet;
      op.key = Key(k);
      client.Enqueue(std::move(op));
    }
    auto results = client.Flush();
    for (uint64_t k = 0; k < kKeys; k++) {
      ASSERT_EQ(results[k].code, ResultCode::kOk);
      EXPECT_EQ(AsU64(results[k].value), k * 3);  // data survives bit flips
    }
  }
  const NicDram& dram = server.nic_dram();
  EXPECT_GT(dram.ecc_correctable_injected(), 0u);
  // Every injected single-bit flip was corrected (one word each).
  EXPECT_EQ(dram.ecc_corrected_words(), dram.ecc_correctable_injected());
  // Every uncorrectable flip demoted the line to a host re-read.
  EXPECT_GT(dram.ecc_uncorrectable_injected(), 0u);
  EXPECT_EQ(server.dispatcher().stats().ecc_demotions,
            dram.ecc_uncorrectable_injected());
}

TEST(PcieFaultTest, TransientCompletionErrorsAreReplayed) {
  ServerConfig config = SmallServerConfig();
  config.dispatch_policy = DispatchPolicy::kPcieOnly;
  config.faults.at(FaultSite::kPcieReadCompletion) = 0.05;
  config.faults.at(FaultSite::kPcieWriteCompletion) = 0.05;
  KvDirectServer server(config);
  constexpr uint64_t kKeys = 64;
  for (uint64_t k = 0; k < kKeys; k++) {
    ASSERT_TRUE(server.Load(Key(k), U64Value(k)).ok());
  }
  Client client(server);
  for (int round = 0; round < 10; round++) {
    for (uint64_t k = 0; k < kKeys; k++) {
      KvOperation op;
      op.opcode = round % 2 == 0 ? Opcode::kGet : Opcode::kUpdateScalar;
      op.key = Key(k);
      op.param = 1;
      client.Enqueue(std::move(op));
    }
    for (const auto& r : client.Flush()) {
      ASSERT_EQ(r.code, ResultCode::kOk);
    }
  }
  EXPECT_GT(server.dma().read_retries() + server.dma().write_retries(), 0u);
  // All tags drained despite the replays.
  EXPECT_EQ(server.dma().tag_pool().available(), server.dma().tag_pool().capacity());
}

// --- chaos soak: every fault class at once, deterministic, exactly-once ---

struct ChaosOutcome {
  std::vector<uint64_t> final_values;
  std::string metrics_json;
  uint64_t packets_sent = 0;
  uint64_t retransmits = 0;
  // Consistency-harness verdicts over the soak's recorded history
  // (src/check): deterministic strings, compared across same-seed replays.
  std::string history_fingerprint;
  std::string check_report;
};

ChaosOutcome RunChaos(double get_ratio, uint64_t seed) {
  ServerConfig config = SmallServerConfig();
  config.faults.seed = seed;
  config.faults.at(FaultSite::kNetDropToServer) = 0.01;
  config.faults.at(FaultSite::kNetDropToClient) = 0.01;
  config.faults.at(FaultSite::kNetDuplicateToServer) = 0.005;
  config.faults.at(FaultSite::kNetDuplicateToClient) = 0.005;
  config.faults.at(FaultSite::kNetCorruptToServer) = 0.02;
  config.faults.at(FaultSite::kNetCorruptToClient) = 0.02;
  config.faults.at(FaultSite::kPcieReadCompletion) = 0.01;
  config.faults.at(FaultSite::kPcieWriteCompletion) = 0.005;
  config.faults.at(FaultSite::kDramCorrectableFlip) = 0.1;
  config.faults.at(FaultSite::kDramUncorrectableFlip) = 0.05;
  // Scripted strikes so every fault class fires at least once regardless of
  // how the Bernoulli draws land for this seed.
  config.faults.schedule.push_back({FaultSite::kNetCorruptToServer, 3});
  config.faults.schedule.push_back({FaultSite::kNetCorruptToClient, 4});
  config.faults.schedule.push_back({FaultSite::kPcieReadCompletion, 7});
  config.faults.schedule.push_back({FaultSite::kPcieWriteCompletion, 9});
  config.faults.schedule.push_back({FaultSite::kDramCorrectableFlip, 2});
  config.faults.schedule.push_back({FaultSite::kDramUncorrectableFlip, 5});
  KvDirectServer server(config);

  constexpr uint64_t kKeys = 64;
  for (uint64_t k = 0; k < kKeys; k++) {
    EXPECT_TRUE(server.Load(Key(k), U64Value(0)).ok());
  }

  Client::Options options;
  options.retry.timeout = 100 * kMicrosecond;
  options.max_ops_per_packet = 16;
  Client client(server, options);
  // Everything the soak does goes through the recorder; the checker then
  // proves linearizability of the whole run, not just the counted totals.
  HistoryRecorder recorder;
  RecordingEndpoint endpoint(client, recorder);

  // YCSB-style mix: `get_ratio` GETs, the rest fetch-and-add updates whose
  // effects are exactly countable (A: 0.5, B: 0.95).
  Rng mix(seed ^ 0x9c5b);
  std::vector<uint64_t> expected(kKeys, 0);
  constexpr uint64_t kOps = 2000;
  constexpr uint64_t kBatch = 100;
  for (uint64_t issued = 0; issued < kOps;) {
    for (uint64_t i = 0; i < kBatch; i++, issued++) {
      const uint64_t k = mix.NextBelow(kKeys);
      KvOperation op;
      op.key = Key(k);
      if (mix.NextDouble() < get_ratio) {
        op.opcode = Opcode::kGet;
      } else {
        op.opcode = Opcode::kUpdateScalar;
        op.param = 1;
        expected[k] += 1;
      }
      endpoint.Enqueue(std::move(op));
    }
    for (const auto& r : endpoint.Flush()) {
      EXPECT_EQ(r.code, ResultCode::kOk);
    }
  }

  ChaosOutcome outcome;
  for (uint64_t k = 0; k < kKeys; k++) {
    KvOperation get;
    get.opcode = Opcode::kGet;
    get.key = Key(k);
    endpoint.Enqueue(std::move(get));
  }
  std::vector<KvResultMessage> final_reads = endpoint.Flush();
  EXPECT_EQ(final_reads.size(), kKeys);
  for (uint64_t k = 0; k < final_reads.size(); k++) {
    EXPECT_EQ(final_reads[k].code, ResultCode::kOk) << k;
    outcome.final_values.push_back(AsU64(final_reads[k].value));
    // Linearizable, exactly-once: every update applied exactly once.
    EXPECT_EQ(outcome.final_values.back(), expected[k]) << k;
  }

  // The recorded history must linearize and honor the session guarantees.
  CheckOptions check;
  for (uint64_t k = 0; k < kKeys; k++) {
    check.initial_values[Key(k)] = U64Value(0);
  }
  const CheckReport lin = CheckLinearizability(recorder.history(), check);
  EXPECT_TRUE(lin.ok()) << lin.ToString();
  const AuditReport audit = AuditSessionGuarantees(recorder.history());
  EXPECT_TRUE(audit.ok()) << audit.ToString();
  outcome.history_fingerprint = recorder.history().Fingerprint();
  outcome.check_report = lin.ToString() + audit.ToString();

  // Faults of every class actually struck.
  EXPECT_GT(server.network().packets_dropped(), 0u);
  EXPECT_GT(server.network().packets_duplicated(), 0u);
  EXPECT_GT(server.network().packets_corrupted(), 0u);
  EXPECT_GT(server.dma().read_retries() + server.dma().write_retries(), 0u);
  EXPECT_GT(server.nic_dram().ecc_correctable_injected(), 0u);
  // Every correctable flip corrected; every uncorrectable one demoted.
  EXPECT_EQ(server.nic_dram().ecc_corrected_words(),
            server.nic_dram().ecc_correctable_injected());
  EXPECT_EQ(server.dispatcher().stats().ecc_demotions,
            server.nic_dram().ecc_uncorrectable_injected());

  outcome.metrics_json = server.metrics().ToJson();
  outcome.packets_sent = client.stats().packets_sent;
  outcome.retransmits = client.stats().retransmits;
  return outcome;
}

TEST(ChaosSoakTest, YcsbAUnderSimultaneousFaults) {
  const ChaosOutcome outcome = RunChaos(0.5, 2026);
  // Bounded retry amplification: < 2x of the fault-free packet count.
  EXPECT_LT(outcome.packets_sent + outcome.retransmits,
            2 * outcome.packets_sent);
  EXPECT_GT(outcome.retransmits, 0u);
}

TEST(ChaosSoakTest, YcsbBUnderSimultaneousFaults) {
  const ChaosOutcome outcome = RunChaos(0.95, 777);
  EXPECT_LT(outcome.packets_sent + outcome.retransmits,
            2 * outcome.packets_sent);
}

TEST(ChaosSoakTest, ReplayingTheScheduleIsBitIdentical) {
  const ChaosOutcome first = RunChaos(0.5, 2026);
  const ChaosOutcome second = RunChaos(0.5, 2026);
  EXPECT_EQ(first.final_values, second.final_values);
  EXPECT_EQ(first.packets_sent, second.packets_sent);
  EXPECT_EQ(first.retransmits, second.retransmits);
  // The full metric surface — every counter, gauge, histogram — replays
  // bit-for-bit, faults included.
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  // So do the recorded history and the checker's verdict over it.
  EXPECT_EQ(first.history_fingerprint, second.history_fingerprint);
  EXPECT_EQ(first.check_report, second.check_report);
}

}  // namespace
}  // namespace kvd
