// Distributed sequencer on KV-Direct (paper §2.1: "sequencers in distributed
// synchronization" need fast single-key atomics; §3.3.3/Figure 13: the
// out-of-order engine runs dependent atomics at one per clock cycle).
//
// Many clients draw globally unique, monotonically increasing ids from one
// extremely hot key. The example verifies uniqueness/monotonicity per client
// stream and shows the data-forwarding fast path doing almost all the work —
// then repeats the run with out-of-order execution disabled to show the
// ~100x stall penalty the paper measured.
//
// Build & run:  ./build/examples/sequencer
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "src/core/kv_direct.h"

namespace {

constexpr int kClients = 8;
constexpr int kIdsPerClient = 500;

std::vector<uint8_t> SeqKey() {
  const std::string s = "global-sequencer";
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::vector<uint8_t> U64(uint64_t x) {
  std::vector<uint8_t> v(8);
  std::memcpy(v.data(), &x, 8);
  return v;
}

struct RunStats {
  double elapsed_us;
  double fast_path_fraction;
  bool correct;
};

RunStats Run(bool enable_ooo) {
  kvd::ServerConfig config;
  config.kvs_memory_bytes = 8 * kvd::kMiB;
  config.nic_dram.capacity_bytes = 1 * kvd::kMiB;
  config.inline_threshold_bytes = 24;
  config.processor.ooo.enable_out_of_order = enable_ooo;
  kvd::KvDirectServer server(config);
  KVD_CHECK(server.Load(SeqKey(), U64(0)).ok());

  // All clients' fetch-and-adds race on the same key. Submissions interleave
  // round-robin, like packets arriving from different machines.
  kvd::Simulator& sim = server.simulator();
  std::vector<std::vector<uint64_t>> drawn(kClients);
  int outstanding = 0;
  const kvd::SimTime start = sim.Now();
  for (int round = 0; round < kIdsPerClient; round++) {
    for (int c = 0; c < kClients; c++) {
      kvd::KvOperation op;
      op.opcode = kvd::Opcode::kUpdateScalar;
      op.key = SeqKey();
      op.param = 1;
      op.function_id = kvd::kFnAddU64;
      outstanding++;
      server.Submit(op, [&, c](kvd::KvResultMessage result) {
        KVD_CHECK(result.code == kvd::ResultCode::kOk);
        drawn[c].push_back(result.scalar);  // the pre-increment value: the id
        outstanding--;
      });
    }
  }
  while (outstanding > 0 && sim.Step()) {
  }

  // Uniqueness across all clients, monotonicity within each client's stream.
  std::set<uint64_t> all_ids;
  bool correct = true;
  for (const auto& stream : drawn) {
    uint64_t previous = 0;
    bool first = true;
    for (uint64_t id : stream) {
      correct = correct && all_ids.insert(id).second;
      correct = correct && (first || id > previous);
      previous = id;
      first = false;
    }
  }
  correct = correct && all_ids.size() == size_t{kClients} * kIdsPerClient;

  const auto& stats = server.processor().stats();
  return RunStats{
      static_cast<double>(sim.Now() - start) / kvd::kMicrosecond,
      static_cast<double>(stats.fast_path_ops) / static_cast<double>(stats.retired),
      correct};
}

}  // namespace

int main() {
  std::printf("%d clients x %d ids from one hot key (%d atomics total)\n",
              kClients, kIdsPerClient, kClients * kIdsPerClient);

  const RunStats with_ooo = Run(true);
  std::printf(
      "\nwith out-of-order engine:    %.1f us  (%.1f Mops, %.0f%% fast path) %s\n",
      with_ooo.elapsed_us, kClients * kIdsPerClient / with_ooo.elapsed_us,
      with_ooo.fast_path_fraction * 100, with_ooo.correct ? "correct" : "BROKEN");

  const RunStats without_ooo = Run(false);
  std::printf(
      "without (pipeline stalls):   %.1f us  (%.2f Mops)                %s\n",
      without_ooo.elapsed_us, kClients * kIdsPerClient / without_ooo.elapsed_us,
      without_ooo.correct ? "correct" : "BROKEN");

  std::printf("\nspeedup from the reservation station: %.0fx (paper: 191x)\n",
              without_ooo.elapsed_us / with_ooo.elapsed_us);
  KVD_CHECK(with_ooo.correct && without_ooo.correct);
  return 0;
}
