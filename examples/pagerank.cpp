// PageRank on KV-Direct (paper §2.1, §3.2: "nodes and edges in graph
// computing", "vector reduce operation supports neighbor weight accumulation
// in PageRank").
//
// Layout:
//   rank:<node>  — 4-byte f32 rank, updated NIC-side with atomic float adds
//   adj:<node>   — adjacency list as a vector of u32 node ids
//
// Each iteration, the "compute worker" fetches a node's adjacency vector
// once, then scatters rank/out_degree to every neighbor as an atomic
// update_scalar(kFnAddF32) — no read-modify-write races even with many
// workers, because the addition executes inside the KV processor.
//
// Build & run:  ./build/examples/pagerank
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/kv_direct.h"

namespace {

constexpr uint32_t kNodes = 64;
constexpr double kDamping = 0.85;
constexpr int kIterations = 20;

std::vector<uint8_t> RankKey(uint32_t node) {
  std::string s = "rank:" + std::to_string(node);
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::vector<uint8_t> AdjKey(uint32_t node) {
  std::string s = "adj:" + std::to_string(node);
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::vector<uint8_t> F32(float x) {
  std::vector<uint8_t> v(4);
  std::memcpy(v.data(), &x, 4);
  return v;
}

float AsF32(const std::vector<uint8_t>& v) {
  float x;
  std::memcpy(&x, v.data(), 4);
  return x;
}

uint64_t F32Param(float x) {
  uint32_t bits;
  std::memcpy(&bits, &x, 4);
  return bits;
}

}  // namespace

int main() {
  kvd::ServerConfig config;
  config.kvs_memory_bytes = 16 * kvd::kMiB;
  config.nic_dram.capacity_bytes = 2 * kvd::kMiB;
  config.inline_threshold_bytes = 24;
  kvd::KvDirectServer server(config);
  kvd::Client client(server);

  // Synthetic scale-free-ish graph: node i links to (i*k+1) % kNodes.
  kvd::Rng rng(7);
  std::vector<std::vector<uint32_t>> adjacency(kNodes);
  for (uint32_t node = 0; node < kNodes; node++) {
    const uint32_t degree = 1 + static_cast<uint32_t>(rng.NextBelow(6));
    for (uint32_t e = 0; e < degree; e++) {
      // Preferential attachment flavor: low-numbered nodes get more edges.
      const auto target = static_cast<uint32_t>(
          rng.NextBelow(rng.NextBool(0.5) ? kNodes : kNodes / 8));
      adjacency[node].push_back(target);
    }
  }

  // Load the graph: adjacency vectors and initial ranks.
  for (uint32_t node = 0; node < kNodes; node++) {
    std::vector<uint8_t> adj_bytes(adjacency[node].size() * 4);
    std::memcpy(adj_bytes.data(), adjacency[node].data(), adj_bytes.size());
    KVD_CHECK(client.Put(AdjKey(node), adj_bytes).ok());
    KVD_CHECK(client.Put(RankKey(node), F32(1.0f / kNodes)).ok());
  }

  // Power iteration with NIC-side accumulation.
  for (int iteration = 0; iteration < kIterations; iteration++) {
    // Snapshot ranks, then reset next-ranks to the teleport term.
    std::vector<float> rank(kNodes);
    for (uint32_t node = 0; node < kNodes; node++) {
      auto r = client.Get(RankKey(node));
      KVD_CHECK(r.ok());
      rank[node] = AsF32(*r);
    }
    for (uint32_t node = 0; node < kNodes; node++) {
      KVD_CHECK(
          client.Put(RankKey(node), F32((1.0f - kDamping) / kNodes)).ok());
    }
    // Scatter: every edge contributes damping * rank/deg, atomically. Many
    // workers could run this loop concurrently — kFnAddF32 runs on the NIC.
    for (uint32_t node = 0; node < kNodes; node++) {
      const float share = static_cast<float>(
          kDamping * rank[node] / static_cast<double>(adjacency[node].size()));
      for (uint32_t neighbor : adjacency[node]) {
        KVD_CHECK(client
                      .Update(RankKey(neighbor), F32Param(share), kvd::kFnAddF32,
                              /*element_width=*/4)
                      .ok());
      }
    }
  }

  // Report: ranks sum to ~1 and the hubs (low node ids) dominate.
  float total = 0;
  uint32_t best_node = 0;
  float best_rank = 0;
  for (uint32_t node = 0; node < kNodes; node++) {
    auto r = client.Get(RankKey(node));
    KVD_CHECK(r.ok());
    const float value = AsF32(*r);
    total += value;
    if (value > best_rank) {
      best_rank = value;
      best_node = node;
    }
  }
  std::printf("pagerank over %u nodes, %d iterations\n", kNodes, kIterations);
  std::printf("sum of ranks = %.4f (expect ~1.0)\n", total);
  std::printf("hottest node = %u with rank %.4f (%.1fx the mean)\n", best_node,
              best_rank, best_rank * kNodes);
  std::printf("simulated time: %.2f ms | fast-path ops: %llu of %llu\n",
              static_cast<double>(server.simulator().Now()) / kvd::kMillisecond,
              static_cast<unsigned long long>(server.processor().stats().fast_path_ops),
              static_cast<unsigned long long>(server.processor().stats().retired));
  KVD_CHECK(std::fabs(total - 1.0f) < 0.05f);
  return 0;
}
