// Quickstart: bring up a KV-Direct server, connect a client, and use the
// remote direct key-value API — GET/PUT/DELETE, an atomic fetch-and-add, and
// a vector operation — while the simulator accounts for every microsecond of
// PCIe, NIC DRAM, and network time.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/kv_direct.h"

namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string Text(const std::vector<uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

std::vector<uint8_t> U64(uint64_t x) {
  std::vector<uint8_t> v(8);
  std::memcpy(v.data(), &x, 8);
  return v;
}

}  // namespace

int main() {
  // A server with 16 MiB of KVS memory; all other knobs keep the paper's
  // hardware parameters (PCIe Gen3 x8 x2, 40 GbE, 180 MHz KV processor).
  kvd::ServerConfig config;
  config.kvs_memory_bytes = 16 * kvd::kMiB;
  config.nic_dram.capacity_bytes = 2 * kvd::kMiB;
  config.inline_threshold_bytes = 24;  // small KVs live inline in hash slots
  kvd::KvDirectServer server(config);
  kvd::Client client(server);

  // --- basic operations ---
  KVD_CHECK(client.Put(Bytes("greeting"), Bytes("hello, kv-direct")).ok());
  auto greeting = client.Get(Bytes("greeting"));
  KVD_CHECK(greeting.ok());
  std::printf("GET greeting -> \"%s\"\n", Text(*greeting).c_str());

  KVD_CHECK(client.Delete(Bytes("greeting")).ok());
  std::printf("DELETE greeting -> %s\n",
              client.Get(Bytes("greeting")).ok() ? "still there?!" : "gone");

  // --- atomic fetch-and-add (one network round trip, NIC-side execution) ---
  KVD_CHECK(client.Put(Bytes("counter"), U64(0)).ok());
  for (int i = 0; i < 3; i++) {
    auto before = client.Update(Bytes("counter"), 10);
    KVD_CHECK(before.ok());
    std::printf("fetch_add(counter, 10) -> previous value %llu\n",
                static_cast<unsigned long long>(*before));
  }

  // --- vector operation: add 5 to every element, server-side ---
  std::vector<uint8_t> vec;
  for (uint64_t e = 1; e <= 4; e++) {
    const auto word = U64(e);
    vec.insert(vec.end(), word.begin(), word.end());
  }
  KVD_CHECK(client.Put(Bytes("vector"), vec).ok());
  KVD_CHECK(client.UpdateVectorWithScalar(Bytes("vector"), 5, kvd::kFnAddU64, 8).ok());
  auto sum = client.Reduce(Bytes("vector"), 0, kvd::kFnAddU64, 8);
  KVD_CHECK(sum.ok());
  std::printf("vector += 5 elementwise; reduce(+) -> %llu (expected %u)\n",
              static_cast<unsigned long long>(*sum), 6 + 7 + 8 + 9);

  // --- what did that cost? ---
  const auto& stats = server.processor().stats();
  std::printf(
      "\nsimulated time: %.2f us | ops retired: %llu | mean op latency: %.0f ns\n",
      static_cast<double>(server.simulator().Now()) / kvd::kMicrosecond,
      static_cast<unsigned long long>(stats.retired), stats.latency_ns.mean());
  return 0;
}
