// Single-object transactions inside the NIC (paper §3.2: "Single-object
// transaction processing completely in the programmable NIC is also
// possible, e.g., wrapping around S_QUANTITY in TPC-C").
//
// TPC-C's New-Order decrements a stock row's S_QUANTITY and wraps it:
//     if (s_quantity - ol_quantity >= 10)  s_quantity -= ol_quantity;
//     else                                 s_quantity += 91 - ol_quantity;
// As a read-modify-write over the network this needs locks or CAS retry
// loops. KV-Direct registers the whole rule as an update function λ — the
// hardware analog is compiling it into the FPGA pipeline — and every
// New-Order is then ONE atomic operation, even when all districts hammer the
// same hot item.
//
// Build & run:  ./build/examples/tpcc_stock
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/kv_direct.h"

namespace {

constexpr uint16_t kFnTpccStock = kvd::kFnFirstUserFunction + 1;
constexpr uint32_t kItems = 1000;
constexpr int kNewOrders = 20000;

std::vector<uint8_t> StockKey(uint32_t item) {
  std::string s = "stock:" + std::to_string(item);
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::vector<uint8_t> U64(uint64_t x) {
  std::vector<uint8_t> v(8);
  std::memcpy(v.data(), &x, 8);
  return v;
}

// The TPC-C wrap rule as an element function.
uint64_t TpccDecrement(uint64_t s_quantity, uint64_t ol_quantity) {
  if (s_quantity >= ol_quantity + 10) {
    return s_quantity - ol_quantity;
  }
  return s_quantity + 91 - ol_quantity;
}

}  // namespace

int main() {
  kvd::ServerConfig config;
  config.kvs_memory_bytes = 8 * kvd::kMiB;
  config.nic_dram.capacity_bytes = 1 * kvd::kMiB;
  config.inline_threshold_bytes = 24;
  kvd::KvDirectServer server(config);

  // Pre-register the transaction logic (the HLS-compile step in hardware).
  server.registry().RegisterFunction(kFnTpccStock, TpccDecrement);

  // Load the stock table: every item starts at 91 units.
  for (uint32_t item = 0; item < kItems; item++) {
    KVD_CHECK(server.Load(StockKey(item), U64(91)).ok());
  }

  // New-Order storm: Zipf-hot items, order-line quantities 1..10. Each order
  // is a single NIC-side atomic; a shadow model tracks expected state.
  kvd::Rng rng(99);
  std::vector<uint64_t> shadow(kItems, 91);
  int outstanding = 0;
  int wraps = 0;
  for (int order = 0; order < kNewOrders; order++) {
    const auto item = static_cast<uint32_t>(
        rng.NextBool(0.3) ? rng.NextBelow(10) : rng.NextBelow(kItems));
    const uint64_t quantity = 1 + rng.NextBelow(10);
    if (shadow[item] < quantity + 10) {
      wraps++;
    }
    shadow[item] = TpccDecrement(shadow[item], quantity);

    kvd::KvOperation op;
    op.opcode = kvd::Opcode::kUpdateScalar;
    op.key = StockKey(item);
    op.param = quantity;
    op.function_id = kFnTpccStock;
    outstanding++;
    server.Submit(op, [&](kvd::KvResultMessage result) {
      KVD_CHECK(result.code == kvd::ResultCode::kOk);
      outstanding--;
    });
  }
  while (outstanding > 0 && server.simulator().Step()) {
  }

  // Verify the store against the shadow model.
  int mismatches = 0;
  for (uint32_t item = 0; item < kItems; item++) {
    kvd::KvOperation get;
    get.opcode = kvd::Opcode::kGet;
    get.key = StockKey(item);
    const kvd::KvResultMessage result = server.Execute(get);
    uint64_t quantity = 0;
    std::memcpy(&quantity, result.value.data(), 8);
    if (quantity != shadow[item]) {
      mismatches++;
    }
  }

  const auto& stats = server.processor().stats();
  const double elapsed_us =
      static_cast<double>(server.simulator().Now()) / kvd::kMicrosecond;
  std::printf("%d New-Order transactions over %u items (30%% on 10 hot items)\n",
              kNewOrders, kItems);
  std::printf("wrap rule triggered %d times; mismatches vs shadow model: %d\n",
              wraps, mismatches);
  std::printf("simulated time %.1f us -> %.1f M transactions/s "
              "(%.0f%% via the station fast path)\n",
              elapsed_us, kNewOrders / elapsed_us,
              100.0 * static_cast<double>(stats.fast_path_ops) /
                  static_cast<double>(stats.retired));
  KVD_CHECK(mismatches == 0);
  return 0;
}
