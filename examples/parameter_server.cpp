// Parameter server on KV-Direct (paper §2.1: "model parameters in machine
// learning", §3.2: vector update with user-defined λ as active messages).
//
// A linear model's weights are sharded into vector values ("shard:<i>", each
// a vector of f32). Workers train logistic regression with SGD:
//   - pull:  GET the shards they need
//   - push:  update_vector2vector(shard, Δ, kFnAddF32) — the gradient is
//            applied element-wise *inside the NIC*, so concurrent workers
//            never lose updates and no parameter locks exist
//
// Build & run:  ./build/examples/parameter_server
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/kv_direct.h"

namespace {

constexpr uint32_t kFeatures = 64;
constexpr uint32_t kShards = 4;
constexpr uint32_t kFeaturesPerShard = kFeatures / kShards;
constexpr uint32_t kSamples = 400;
constexpr int kEpochs = 8;
constexpr float kLearningRate = 0.3f;

std::vector<uint8_t> ShardKey(uint32_t shard) {
  std::string s = "shard:" + std::to_string(shard);
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::vector<float> DecodeF32(const std::vector<uint8_t>& bytes) {
  std::vector<float> out(bytes.size() / 4);
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

std::vector<uint8_t> EncodeF32(const std::vector<float>& values) {
  std::vector<uint8_t> out(values.size() * 4);
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

int main() {
  kvd::ServerConfig config;
  config.kvs_memory_bytes = 16 * kvd::kMiB;
  config.nic_dram.capacity_bytes = 2 * kvd::kMiB;
  config.hash_index_ratio = 0.2;
  kvd::KvDirectServer server(config);
  kvd::Client client(server);

  // Ground-truth model the synthetic data follows: w*_i alternates sign.
  kvd::Rng rng(11);
  std::vector<float> truth(kFeatures);
  for (uint32_t f = 0; f < kFeatures; f++) {
    truth[f] = (f % 2 == 0 ? 1.0f : -1.0f) * 0.5f;
  }
  // Sparse samples: 8 active features each.
  struct Sample {
    std::vector<uint32_t> features;
    float label;
  };
  std::vector<Sample> samples(kSamples);
  for (Sample& sample : samples) {
    float dot = 0;
    for (int k = 0; k < 8; k++) {
      const auto f = static_cast<uint32_t>(rng.NextBelow(kFeatures));
      sample.features.push_back(f);
      dot += truth[f];
    }
    sample.label = rng.NextDouble() < Sigmoid(dot) ? 1.0f : 0.0f;
  }

  // Initialize shards to zero weights.
  for (uint32_t shard = 0; shard < kShards; shard++) {
    KVD_CHECK(client.Put(ShardKey(shard),
                         EncodeF32(std::vector<float>(kFeaturesPerShard, 0)))
                  .ok());
  }

  auto log_loss = [&](const std::vector<float>& weights) {
    double loss = 0;
    for (const Sample& sample : samples) {
      float dot = 0;
      for (uint32_t f : sample.features) {
        dot += weights[f];
      }
      const float p = Sigmoid(dot);
      loss -= sample.label * std::log(p + 1e-7f) +
              (1 - sample.label) * std::log(1 - p + 1e-7f);
    }
    return loss / kSamples;
  };

  std::printf("training logistic regression: %u features, %u shards, %u samples\n",
              kFeatures, kShards, kSamples);
  for (int epoch = 0; epoch < kEpochs; epoch++) {
    // Pull the full model (shard by shard).
    std::vector<float> weights;
    for (uint32_t shard = 0; shard < kShards; shard++) {
      auto bytes = client.Get(ShardKey(shard));
      KVD_CHECK(bytes.ok());
      const auto part = DecodeF32(*bytes);
      weights.insert(weights.end(), part.begin(), part.end());
    }
    std::printf("epoch %d: log-loss %.4f\n", epoch, log_loss(weights));

    // Accumulate one epoch of gradients locally, then push per-shard deltas
    // as elementwise NIC-side additions (kFnAddF32).
    std::vector<float> delta(kFeatures, 0);
    for (const Sample& sample : samples) {
      float dot = 0;
      for (uint32_t f : sample.features) {
        dot += weights[f];
      }
      const float gradient = sample.label - Sigmoid(dot);
      for (uint32_t f : sample.features) {
        delta[f] += kLearningRate * gradient / kSamples * 8;
      }
    }
    for (uint32_t shard = 0; shard < kShards; shard++) {
      const std::vector<float> shard_delta(
          delta.begin() + shard * kFeaturesPerShard,
          delta.begin() + (shard + 1) * kFeaturesPerShard);
      KVD_CHECK(client
                    .UpdateVectorWithVector(ShardKey(shard),
                                            EncodeF32(shard_delta),
                                            kvd::kFnAddF32, /*element_width=*/4)
                    .ok());
    }
  }

  // Final check: loss improved substantially over the zero model.
  std::vector<float> final_weights;
  for (uint32_t shard = 0; shard < kShards; shard++) {
    auto bytes = client.Get(ShardKey(shard));
    KVD_CHECK(bytes.ok());
    const auto part = DecodeF32(*bytes);
    final_weights.insert(final_weights.end(), part.begin(), part.end());
  }
  const double final_loss = log_loss(final_weights);
  std::printf("final log-loss %.4f (zero-model baseline %.4f)\n", final_loss,
              std::log(2.0));
  std::printf("simulated time: %.2f ms\n",
              static_cast<double>(server.simulator().Now()) / kvd::kMillisecond);
  KVD_CHECK(final_loss < std::log(2.0));
  return 0;
}
