// Figure 15: efficiency of network batching — throughput and latency versus
// batched KV size, with and without client-side batching.
//
// Paper anchors: batching lifts throughput up to ~4x for small KVs (the 88 B
// per-packet header dominates otherwise) while adding less than 1 µs of
// latency.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"

namespace kvd {
namespace {

struct Point {
  double mops;
  double mean_latency_us;
};

Point Measure(uint32_t kv_bytes, bool batching) {
  ServerConfig config;
  config.kvs_memory_bytes = 32 * kMiB;
  config.nic_dram.capacity_bytes = 4 * kMiB;
  config.AutoTune(kv_bytes, /*long_tail=*/false);
  KvDirectServer server(config);

  WorkloadConfig wl;
  wl.num_keys = 100000;
  wl.value_bytes = kv_bytes - 8;
  wl.get_ratio = 1.0;
  YcsbWorkload workload(wl);
  bench::Preload(server, workload, wl.num_keys);

  bench::DriveOptions options;
  options.total_ops = 30000;
  options.use_network = true;
  options.ops_per_packet = batching ? 40 : 1;
  options.pipeline_depth = batching ? 512 : 256;
  const bench::DriveResult result = bench::Drive(server, workload, options);
  return {result.mops, result.latency_ns.mean() / 1000.0};
}

}  // namespace
}  // namespace kvd

int main() {
  using kvd::TablePrinter;
  std::printf("\n=== Figure 15 — network batching: throughput and latency ===\n");
  TablePrinter table({"kv_B", "batched_Mops", "unbatched_Mops", "speedup",
                      "batched_lat_us", "unbatched_lat_us"});
  for (uint32_t kv : {10u, 16u, 32u, 62u, 126u, 254u}) {
    const kvd::Point batched = kvd::Measure(kv, true);
    const kvd::Point unbatched = kvd::Measure(kv, false);
    table.AddRow({TablePrinter::Int(kv), TablePrinter::Num(batched.mops, 1),
                  TablePrinter::Num(unbatched.mops, 1),
                  TablePrinter::Num(batched.mops / unbatched.mops, 2),
                  TablePrinter::Num(batched.mean_latency_us, 2),
                  TablePrinter::Num(unbatched.mean_latency_us, 2)});
  }
  table.Print();
  std::printf(
      "paper: up to ~4x throughput from batching on small KVs; batching adds\n"
      "under 1 us of latency (batched latency here is per-packet round trip)\n");
  return 0;
}
