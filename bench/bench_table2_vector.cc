// Table 2: throughput (GB/s of vector payload) of NIC-side vector update
// versus the client-side alternatives, across vector sizes.
//
//   vector update with return    — one op; the original vector rides back
//   vector update without return — one op; only an ack returns
//   one key per element          — each element is its own KV, one atomic
//                                  update per element (network-bound)
//   fetch to client              — GET the vector, update locally, PUT it
//                                  back (double transfer + no consistency)
//
// Paper shape: NIC-side updates win by an order of magnitude for large
// vectors because elements never cross the network.
#include <cstdio>
#include <cstring>
#include <functional>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"

namespace kvd {
namespace {

constexpr uint32_t kNumVectors = 256;

ServerConfig VectorServerConfig() {
  ServerConfig config;
  config.kvs_memory_bytes = 64 * kMiB;
  config.nic_dram.capacity_bytes = 8 * kMiB;
  config.min_slab_bytes = 256;  // classes 256..8192: six, the slot-type max
  config.max_slab_bytes = 8192;
  config.hash_index_ratio = 0.05;
  return config;
}

// Closed-loop over the network with caller-provided operation generator;
// returns ops/second (simulated).
double DriveOps(KvDirectServer& server, uint64_t total_ops,
                const std::function<KvOperation(uint64_t)>& make_op) {
  Simulator& sim = server.simulator();
  NetworkModel& network = server.network();
  uint64_t submitted = 0;
  uint64_t completed = 0;
  const SimTime start = sim.Now();
  std::function<void()> send_one = [&] {
    if (submitted >= total_ops) {
      return;
    }
    PacketBuilder builder(8192);
    uint32_t in_packet = 0;
    while (in_packet < 16 && submitted < total_ops &&
           builder.Add(make_op(submitted))) {
      in_packet++;
      submitted++;
    }
    std::vector<uint8_t> payload = builder.Finish();
    const auto payload_size = static_cast<uint32_t>(payload.size());
    network.SendToServer(payload_size, [&, in_packet,
                                        payload = std::move(payload)]() mutable {
      server.DeliverPacket(std::move(payload),
                           [&, in_packet](std::vector<uint8_t> response) {
                             const auto response_size =
                                 static_cast<uint32_t>(response.size());
                             network.SendToClient(response_size, [&, in_packet] {
                               completed += in_packet;
                               send_one();
                             });
                           });
    });
  };
  for (int i = 0; i < 16; i++) {
    send_one();
  }
  while (completed < total_ops && sim.Step()) {
  }
  const double elapsed_s = static_cast<double>(sim.Now() - start) / kSecond;
  return static_cast<double>(completed) / elapsed_s;
}

std::vector<uint8_t> VectorKey(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

void PreloadVectors(KvDirectServer& server, uint32_t vector_bytes) {
  const std::vector<uint8_t> value(vector_bytes, 1);
  for (uint64_t v = 0; v < kNumVectors; v++) {
    KVD_CHECK(server.Load(VectorKey(v), value).ok());
  }
}

double UpdateGBps(uint32_t vector_bytes, bool with_return) {
  KvDirectServer server(VectorServerConfig());
  PreloadVectors(server, vector_bytes);
  const double ops_per_s = DriveOps(server, 4000, [&](uint64_t i) {
    KvOperation op;
    op.opcode = Opcode::kUpdateScalarVector;
    op.key = VectorKey(i % kNumVectors);
    op.param = 3;
    op.function_id = kFnAddU64;
    op.element_width = 8;
    op.return_value = with_return;
    return op;
  });
  return ops_per_s * vector_bytes / 1e9;
}

double PerElementGBps(uint32_t vector_bytes) {
  // Every element is its own 8 B KV; updating the "vector" means one atomic
  // per element. Throughput normalizes back to vector bytes.
  KvDirectServer server(VectorServerConfig());
  WorkloadConfig wl;
  wl.num_keys = 65536;
  YcsbWorkload workload(wl);
  bench::Preload(server, workload, wl.num_keys);
  const double ops_per_s = DriveOps(server, 30000, [&](uint64_t i) {
    KvOperation op;
    op.opcode = Opcode::kUpdateScalar;
    op.key = workload.KeyFor(i % wl.num_keys);
    op.param = 3;
    op.function_id = kFnAddU64;
    return op;
  });
  (void)vector_bytes;
  return ops_per_s * 8 / 1e9;  // 8 B of vector data per op
}

double FetchToClientGBps(uint32_t vector_bytes) {
  // GET the vector, update client-side, PUT it back: two full transfers per
  // update (and no server-side consistency).
  KvDirectServer server(VectorServerConfig());
  PreloadVectors(server, vector_bytes);
  const std::vector<uint8_t> new_value(vector_bytes, 2);
  const double ops_per_s = DriveOps(server, 4000, [&](uint64_t i) {
    KvOperation op;
    if (i % 2 == 0) {
      op.opcode = Opcode::kGet;
      op.key = VectorKey((i / 2) % kNumVectors);
    } else {
      op.opcode = Opcode::kPut;
      op.key = VectorKey((i / 2) % kNumVectors);
      op.value = new_value;
    }
    return op;
  });
  // Two ops (GET + PUT) complete one vector update.
  return ops_per_s / 2 * vector_bytes / 1e9;
}

}  // namespace
}  // namespace kvd

int main() {
  using kvd::TablePrinter;
  std::printf("\n=== Table 2 — vector update throughput (GB/s of vector data) ===\n");
  TablePrinter table({"vector_B", "update_with_return", "update_no_return",
                      "one_key_per_element", "fetch_to_client"});
  for (uint32_t bytes : {64u, 256u, 1024u, 4096u}) {
    table.AddRow({TablePrinter::Int(bytes),
                  TablePrinter::Num(kvd::UpdateGBps(bytes, true), 2),
                  TablePrinter::Num(kvd::UpdateGBps(bytes, false), 2),
                  TablePrinter::Num(kvd::PerElementGBps(bytes), 2),
                  TablePrinter::Num(kvd::FetchToClientGBps(bytes), 2)});
  }
  table.Print();
  std::printf(
      "paper: NIC-side vector update dominates both alternatives, and\n"
      "suppressing the returned vector roughly doubles update throughput\n");
  return 0;
}
