// Figure 11: memory accesses per KV operation — KV-Direct chaining versus
// MemC3 bucketized cuckoo and FaRM chained-associative hopscotch, for small
// (10 B) and large (252 B, the paper's "254 B" class) KVs, GET and PUT,
// across memory utilizations.
//
// Comparison setup follows §5.1.1: baseline keys are inline in the index and
// compared in parallel; values live in slab-allocated memory. Memory
// utilization = stored key+value bytes / total memory (index + heap).
//
// Paper shape: KV-Direct GETs cost ~1 access inline (~2 non-inline) and PUTs
// ~2 (~3); hopscotch GETs stay flat (single neighborhood read) but its PUTs
// blow up at high utilization; cuckoo pays up to 2 reads per GET and heavy
// displacement churn on PUT; the baselines top out near half the utilization
// KV-Direct sustains for small KVs.
#include <algorithm>
#include <bit>
#include <cstdio>
#include <memory>

#include "bench/hash_bench_util.h"
#include "src/baseline/cuckoo_hash_table.h"
#include "src/baseline/hopscotch_hash_table.h"
#include "src/common/table_printer.h"

namespace kvd {
namespace {

constexpr uint64_t kTotalMemory = 8 * kMiB;

struct Cost {
  double get = -1;
  double put = -1;
  double max_util = 0;
};

std::string Fmt(double v) { return v < 0 ? "n/a" : TablePrinter::Num(v, 2); }

// --- KV-Direct ---
// The paper tunes the hash index ratio per KV size and required utilization
// (Figure 10): the largest ratio that still accommodates the corpus gives the
// minimal access count. This probe walks ratios downward until one fits.
Cost MeasureKvDirect(uint32_t kv_size, double utilization) {
  const bool inline_kvs = kv_size <= kMaxInlineKvBytes;
  Cost cost;
  for (double ratio : {0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05}) {
    HashIndexConfig config;
    config.memory_size = kTotalMemory;
    config.inline_threshold_bytes = inline_kvs ? 25 : 10;
    config.hash_index_ratio = ratio;
    bench::HashRig rig(config);
    const uint64_t keys = bench::FillToUtilization(rig, kv_size, utilization);
    cost.max_util = std::max(cost.max_util, rig.index.Utilization());
    if (rig.index.Utilization() < utilization * 0.98) {
      continue;  // this ratio cannot hold the corpus; try a smaller index
    }
    const auto measured = bench::MeasureAccessCost(rig, keys, kv_size);
    cost.get = measured.get;
    cost.put = measured.put;
    return cost;
  }
  return cost;
}

// --- baselines: shared fill/measure over any table with Get/Put ---
template <typename Table>
Cost MeasureBaseline(Table& table, DirectEngine& engine, uint64_t total_memory,
                     uint32_t kv_size, double utilization) {
  const uint32_t value_size = kv_size - 8;
  uint64_t id = 0;
  uint64_t payload = 0;
  uint64_t stored = 0;
  int consecutive_failures = 0;
  Cost cost;
  // Individual inserts may fail (cuckoo path bound, hopscotch displacement);
  // real systems would resize or chain, so the fill keeps going until the
  // structure is genuinely saturated.
  while (static_cast<double>(payload) / static_cast<double>(total_memory) <
         utilization) {
    const std::vector<uint8_t> value(value_size, static_cast<uint8_t>(id));
    if (table.Put(bench::BenchKey(id), value).ok()) {
      payload += kv_size;
      stored++;
      consecutive_failures = 0;
    } else if (++consecutive_failures > 64) {
      break;
    }
    id++;
  }
  cost.max_util = static_cast<double>(payload) / static_cast<double>(total_memory);
  if (cost.max_util < utilization * 0.98) {
    return cost;
  }
  constexpr int kSamples = 2000;
  Rng rng(7);
  std::vector<uint8_t> out;
  AccessStats before = engine.stats();
  for (int i = 0; i < kSamples; i++) {
    (void)table.Get(bench::BenchKey(rng.NextBelow(id)), out);
  }
  cost.get = static_cast<double>((engine.stats() - before).total()) / kSamples;
  before = engine.stats();
  for (int i = 0; i < kSamples; i++) {
    const std::vector<uint8_t> value(value_size, static_cast<uint8_t>(i));
    (void)table.Put(bench::BenchKey(rng.NextBelow(id)), value);
  }
  cost.put = static_cast<double>((engine.stats() - before).total()) / kSamples;
  return cost;
}

// Index sized so slots (at ~95% load) plus value slabs fill total memory.
uint64_t DesiredSlots(uint32_t kv_size) {
  const uint32_t slab = std::bit_ceil(std::max(8u, kv_size - 8 + 2));
  return kTotalMemory / (16 + slab);
}

uint64_t CuckooBuckets(uint32_t kv_size) {
  // Power-of-two bucket count, rounded *down* so the heap keeps some room.
  return std::bit_floor(DesiredSlots(kv_size) / 4);
}

SlabConfig BaselineSlabConfig(uint64_t index_bytes) {
  SlabConfig slab;
  slab.region_base = index_bytes;
  slab.region_size = (kTotalMemory - index_bytes) / 512 * 512;
  slab.min_slab_bytes = 8;  // small values: 8 B slabs avoid 32 B waste
  return slab;
}

Cost MeasureCuckoo(uint32_t kv_size, double utilization) {
  const uint64_t buckets = CuckooBuckets(kv_size);
  const uint64_t index_bytes = buckets * 64;
  if (index_bytes >= kTotalMemory) {
    return {};
  }
  HostMemory memory(kTotalMemory);
  DirectEngine engine(memory);
  SlabAllocator allocator(BaselineSlabConfig(index_bytes));
  CuckooConfig config;
  config.num_buckets = buckets;
  CuckooHashTable table(engine, allocator, config);
  return MeasureBaseline(table, engine, kTotalMemory, kv_size, utilization);
}

Cost MeasureHopscotch(uint32_t kv_size, double utilization) {
  const uint64_t slots = DesiredSlots(kv_size) / 4 * 4;
  const uint64_t index_bytes = slots * 16;
  if (slots == 0 || index_bytes >= kTotalMemory) {
    return {};
  }
  HostMemory memory(kTotalMemory);
  DirectEngine engine(memory);
  SlabAllocator allocator(BaselineSlabConfig(index_bytes));
  HopscotchConfig config;
  config.num_slots = slots;
  HopscotchHashTable table(engine, allocator, config);
  return MeasureBaseline(table, engine, kTotalMemory, kv_size, utilization);
}

void RunPanel(uint32_t kv_size) {
  std::printf("\n--- KV size %u B ---\n", kv_size);
  TablePrinter get_table({"utilization_%", "KV-Direct_get", "MemC3_get", "FaRM_get"});
  TablePrinter put_table({"utilization_%", "KV-Direct_put", "MemC3_put", "FaRM_put"});
  for (double util : {0.10, 0.20, 0.30, 0.40, 0.50, 0.60}) {
    const Cost kvd = MeasureKvDirect(kv_size, util);
    const Cost memc3 = MeasureCuckoo(kv_size, util);
    const Cost farm = MeasureHopscotch(kv_size, util);
    get_table.AddRow({TablePrinter::Num(util * 100, 0), Fmt(kvd.get),
                      Fmt(memc3.get), Fmt(farm.get)});
    put_table.AddRow({TablePrinter::Num(util * 100, 0), Fmt(kvd.put),
                      Fmt(memc3.put), Fmt(farm.put)});
  }
  std::printf("GET accesses per op:\n");
  get_table.Print();
  std::printf("PUT accesses per op:\n");
  put_table.Print();
}

}  // namespace
}  // namespace kvd

int main() {
  std::printf(
      "\n=== Figure 11 — memory accesses per op: KV-Direct vs MemC3 vs FaRM ===\n");
  kvd::RunPanel(13);   // small class (3 slots inline, like the paper's 10 B)
  kvd::RunPanel(252);  // the paper's "254 B" class
  std::printf(
      "\npaper: KV-Direct ~1 access/GET and ~2/PUT inline (+1 non-inline);\n"
      "hopscotch GET flat but PUT worst at high utilization; cuckoo between;\n"
      "baselines cannot reach the small-KV utilizations KV-Direct sustains\n"
      "('n/a' rows)\n");
  return 0;
}
