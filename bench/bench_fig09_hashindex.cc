// Figure 9: memory access count of the KV-Direct hash table
//   (a) versus hash index ratio, memory utilization fixed at 0.5
//   (b) versus memory utilization, hash index ratio fixed at 0.5
// for an inline workload (13 B KVs — three hash slots with the 2 B header) and
// an offline/non-inline workload (60 B KVs — one 64 B slab with the 4 B
// header, mirroring the paper's slot/slab-aligned 10 B and 62 B classes).
//
// Paper shape: (a) more index -> more KVs inline / fewer collisions -> fewer
// accesses; (b) accesses grow with utilization as chains form.
#include <cstdio>

#include "bench/hash_bench_util.h"
#include "src/common/table_printer.h"

namespace kvd {
namespace {

constexpr uint64_t kMemory = 8 * kMiB;

struct Cell {
  double get = -1;
  double put = -1;
};

Cell Measure(uint32_t kv_size, bool inline_kvs, double ratio, double utilization) {
  HashIndexConfig config;
  config.memory_size = kMemory;
  config.hash_index_ratio = ratio;
  config.inline_threshold_bytes = inline_kvs ? 25 : 10;
  bench::HashRig rig(config);
  const uint64_t keys = bench::FillToUtilization(rig, kv_size, utilization);
  if (rig.index.Utilization() < utilization * 0.98) {
    return {};  // target unreachable with this ratio
  }
  const auto cost = bench::MeasureAccessCost(rig, keys, kv_size);
  return {cost.get, cost.put};
}

std::string Fmt(double v) { return v < 0 ? "n/a" : TablePrinter::Num(v, 2); }

void SweepRatio() {
  std::printf("\n=== Figure 9a — accesses vs hash index ratio (utilization 0.35) ===\n");
  TablePrinter table({"index_ratio_%", "inline13B_get", "inline13B_put",
                      "offline60B_get", "offline60B_put"});
  for (double ratio : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    const Cell inline_cell = Measure(13, true, ratio, 0.35);
    const Cell offline_cell = Measure(60, false, ratio, 0.35);
    table.AddRow({TablePrinter::Num(ratio * 100, 0), Fmt(inline_cell.get),
                  Fmt(inline_cell.put), Fmt(offline_cell.get),
                  Fmt(offline_cell.put)});
  }
  table.Print();
  std::printf("paper: access count falls as the index ratio grows\n");
}

void SweepUtilization() {
  std::printf("\n=== Figure 9b — accesses vs memory utilization (ratio 0.5) ===\n");
  TablePrinter table({"utilization_%", "inline13B_get", "inline13B_put",
                      "offline60B_get", "offline60B_put"});
  for (double util : {0.1, 0.2, 0.3, 0.35, 0.4, 0.45}) {
    const Cell inline_cell = Measure(13, true, 0.5, util);
    const Cell offline_cell = Measure(60, false, 0.5, util);
    table.AddRow({TablePrinter::Num(util * 100, 0), Fmt(inline_cell.get),
                  Fmt(inline_cell.put), Fmt(offline_cell.get),
                  Fmt(offline_cell.put)});
  }
  table.Print();
  std::printf("paper: inline GET ~1 and PUT ~2 until chains form; offline +1 each\n");
}

}  // namespace
}  // namespace kvd

int main() {
  kvd::SweepRatio();
  kvd::SweepUtilization();
  return 0;
}
