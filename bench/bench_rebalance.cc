// Elastic rebalancing: live shard migration under sustained load.
//
// A 4-group / 12-partition cluster (RF 3) serves a YCSB-A mix (50% update /
// 50% read) with an engineered hotspot: 80% of operations target the three
// partitions owned by group 0, making it a >=3.2x hotspot (max group load /
// mean group load). Key choice is a deterministic rotation realizing the
// 80/20 split exactly, so measured load fractions carry no sampling noise.
//
// The run has three measured phases on one simulated clock:
//
//   steady    — baseline batches; per-partition load counters accumulate and
//               feed Rebalancer::Plan.
//   migrating — the plan's moves execute one at a time via
//               ClusterCoordinator::StartMigration while the same client
//               keeps issuing batches. Copy traffic is rate-bounded in the
//               background; only the brief write-freeze at each cutover can
//               touch client latency.
//   post      — load counters reset, the same mix re-measured against the
//               rebalanced map.
//
// Updates are fetch-and-add increments, so the zero-lost-acked-writes check
// is exact: for every key, final value == preloaded base + number of acked
// increments. A lost acked write, a value resurrected from a stale copy
// chunk, or a doubly applied forward all break the equality.
//
// Acceptance bars (non-zero exit on any miss):
//   - zero lost acked writes across all migrations;
//   - migrating-phase p99 batch latency <= 2x steady p99;
//   - post-rebalance imbalance <= 1.25x from the >= 3x hotspot;
//   - the plan actually moved something.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_report.h"
#include "src/cluster/cluster_client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/rebalancer.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

uint64_t AsU64(const std::vector<uint8_t>& value) {
  uint64_t v = 0;
  std::memcpy(&v, value.data(), std::min<size_t>(8, value.size()));
  return v;
}

double Imbalance(const std::vector<uint64_t>& loads) {
  uint64_t max_load = 0;
  uint64_t total = 0;
  for (const uint64_t load : loads) {
    max_load = std::max(max_load, load);
    total += load;
  }
  if (total == 0) {
    return 0;
  }
  const double mean = static_cast<double>(total) / loads.size();
  return static_cast<double>(max_load) / mean;
}

struct RebalanceResult {
  double initial_imbalance = 0;
  double final_imbalance = 0;
  double projected_imbalance = 0;
  uint64_t moves = 0;
  double steady_p99_us = 0;
  double migrate_p99_us = 0;
  double migrate_max_us = 0;
  uint64_t lost_acked_writes = 0;
  uint64_t acked_increments = 0;
  uint64_t copy_kvs = 0;
  uint64_t forwards = 0;
  uint64_t wrong_shard_bounces = 0;
  uint64_t map_epoch = 0;
};

constexpr uint32_t kGroups = 4;
constexpr uint32_t kPartitions = 12;
constexpr uint32_t kBatchOps = 32;
constexpr SimTime kBatchGap = 150 * kMicrosecond;  // closed-loop think time
constexpr uint64_t kSteadyBatches = 50;
constexpr uint64_t kPostBatches = 50;
constexpr uint64_t kMaxBatchesPerMove = 600;
constexpr size_t kHotKeysPerPartition = 192;
constexpr size_t kColdKeysPerPartition = 24;

// Deterministic 80/20 hotspot with a 50/50 update/read mix. Op n:
//   n % 5 in {0..3}  -> a hot partition (group 0's three), rotating;
//   n % 5 == 4       -> a cold partition, rotating across the nine others;
// within each partition the key rotates through its pool, and odd ops read
// while even ops increment.
class HotspotWorkload {
 public:
  HotspotWorkload(const KeyRouter& router, std::vector<uint32_t> hot,
                  std::vector<uint32_t> cold)
      : hot_(std::move(hot)), cold_(std::move(cold)), pools_(kPartitions) {
    size_t filled = 0;
    for (uint64_t id = 0; filled < hot_.size() + cold_.size() && id < 1000000;
         id++) {
      const uint32_t p = router.PartitionOf(Key(id));
      const size_t quota = Quota(p);
      if (pools_[p].size() < quota) {
        pools_[p].push_back(id);
        if (pools_[p].size() == quota) {
          filled++;
        }
      }
    }
    KVD_CHECK(filled == hot_.size() + cold_.size());
  }

  const std::vector<uint64_t>& pool(uint32_t partition) const {
    return pools_[partition];
  }

  // Next (op, increment?) pair; `id_out` reports the key id.
  KvOperation Next(bool* is_increment, uint64_t* id_out) {
    const uint64_t n = next_++;
    uint32_t partition;
    if (n % 5 < 4) {
      partition = hot_[(n / 5) % hot_.size()];
    } else {
      partition = cold_[(n / 5) % cold_.size()];
    }
    const std::vector<uint64_t>& pool = pools_[partition];
    const uint64_t id = pool[cursor_[partition]++ % pool.size()];
    *id_out = id;
    *is_increment = (n % 2 == 0);
    KvOperation op;
    op.key = Key(id);
    if (*is_increment) {
      op.opcode = Opcode::kUpdateScalar;
      op.function_id = kFnAddU64;
      op.param = 1;
    } else {
      op.opcode = Opcode::kGet;
    }
    return op;
  }

 private:
  size_t Quota(uint32_t partition) const {
    for (const uint32_t h : hot_) {
      if (h == partition) {
        return kHotKeysPerPartition;
      }
    }
    return kColdKeysPerPartition;
  }

  std::vector<uint32_t> hot_;
  std::vector<uint32_t> cold_;
  std::vector<std::vector<uint64_t>> pools_;
  uint64_t next_ = 0;
  std::map<uint32_t, uint64_t> cursor_;
};

RebalanceResult RunRebalance() {
  ClusterConfig config;
  config.num_groups = kGroups;
  config.num_partitions = kPartitions;
  config.group.num_replicas = 3;
  config.group.server.kvs_memory_bytes = 8 * kMiB;
  config.group.server.nic_dram.capacity_bytes = 1 * kMiB;
  // Slow, visibly background copy: each hot partition takes many client
  // batches to stream, so the migrating-phase histogram is dominated by
  // batches that run concurrently with the copy, not by the cutover freeze.
  config.copy_bytes_per_sec = 1e5;
  config.copy_chunk_kvs = 32;
  // Pacing gaps between chunks exceed the default go-back-N timeout; keep the
  // retransmit clock above the pacing interval.
  config.copy_retransmit_timeout = 20 * kMillisecond;
  // The freeze window only has to outlast the source pipeline's residence
  // time, which is single-digit microseconds here; the defaults are sized for
  // chaos runs. A tight quiesce keeps the cutover unavailability window well
  // under the client's think time.
  config.migration_poll_interval = 25 * kMicrosecond;
  config.cutover_quiesce = 50 * kMicrosecond;
  ClusterCoordinator cluster(config);
  Simulator& sim = cluster.simulator();
  const KeyRouter router = cluster.router();

  // Group 0 owns partitions 0, 4, 8 under the initial round-robin map.
  std::vector<uint32_t> hot;
  std::vector<uint32_t> cold;
  for (uint32_t p = 0; p < kPartitions; p++) {
    (cluster.shard_map().OwnerOf(p) == 0 ? hot : cold).push_back(p);
  }
  HotspotWorkload workload(router, hot, cold);

  // Preload every key with a known base.
  std::map<uint64_t, uint64_t> base;
  for (uint32_t p = 0; p < kPartitions; p++) {
    for (const uint64_t id : workload.pool(p)) {
      KVD_CHECK(cluster.Load(Key(id), U64Value(1000 + id)).ok());
      base[id] = 1000 + id;
    }
  }

  ClusterClient::Options client_options;
  client_options.redirect_backoff = 10 * kMicrosecond;
  client_options.migrate_backoff = 20 * kMicrosecond;
  ClusterClient client(cluster, client_options);
  std::map<uint64_t, uint64_t> acked;  // id -> acked increments
  uint64_t acked_total = 0;

  auto run_batch = [&](LatencyHistogram* hist) {
    std::vector<std::pair<bool, uint64_t>> batch_ops;  // (increment?, id)
    for (uint32_t i = 0; i < kBatchOps; i++) {
      bool inc = false;
      uint64_t id = 0;
      client.Enqueue(workload.Next(&inc, &id));
      batch_ops.emplace_back(inc, id);
    }
    const SimTime start = sim.Now();
    const std::vector<KvResultMessage> results = client.Flush();
    hist->Add((sim.Now() - start) / kNanosecond);
    for (size_t i = 0; i < results.size(); i++) {
      if (batch_ops[i].first && results[i].code == ResultCode::kOk) {
        acked[batch_ops[i].second]++;
        acked_total++;
      }
    }
    sim.RunUntil(sim.Now() + kBatchGap);
  };

  RebalanceResult result;

  // --- steady phase ---
  cluster.ResetLoadCounters();
  LatencyHistogram steady_ns;
  for (uint64_t b = 0; b < kSteadyBatches; b++) {
    run_batch(&steady_ns);
  }
  result.initial_imbalance = Imbalance(cluster.GroupLoads());

  // --- plan and migrate under load ---
  std::vector<uint8_t> active(cluster.num_groups(), 1);
  const RebalancePlan plan =
      Rebalancer::Plan(cluster.shard_map(), cluster.partition_ops(), active);
  result.projected_imbalance = plan.projected_imbalance;
  result.moves = plan.moves.size();
  LatencyHistogram migrate_ns;
  for (const RebalanceMove& move : plan.moves) {
    KVD_CHECK(cluster.StartMigration(move.partition, move.to_group).ok());
    uint64_t batches = 0;
    while (cluster.migration_active() && batches < kMaxBatchesPerMove) {
      run_batch(&migrate_ns);
      batches++;
    }
    if (cluster.migration_active()) {
      cluster.DriveMigrationToCompletion();
    }
  }

  // --- post-rebalance phase ---
  cluster.ResetLoadCounters();
  LatencyHistogram post_ns;
  for (uint64_t b = 0; b < kPostBatches; b++) {
    run_batch(&post_ns);
  }
  result.final_imbalance = Imbalance(cluster.GroupLoads());

  // --- the exactness check: every acked increment applied exactly once ---
  for (const auto& [id, base_value] : base) {
    const uint32_t p = router.PartitionOf(Key(id));
    const uint32_t owner = cluster.shard_map().OwnerOf(p);
    KvOperation get;
    get.opcode = Opcode::kGet;
    get.key = Key(id);
    const KvResultMessage r = cluster.group(owner).Execute(get);
    const uint64_t want = base_value + acked[id];
    if (r.code != ResultCode::kOk || AsU64(r.value) != want) {
      result.lost_acked_writes++;
    }
  }

  result.acked_increments = acked_total;
  result.steady_p99_us = static_cast<double>(steady_ns.Percentile(0.99)) / 1e3;
  result.migrate_p99_us =
      static_cast<double>(migrate_ns.Percentile(0.99)) / 1e3;
  result.migrate_max_us = static_cast<double>(migrate_ns.max()) / 1e3;
  result.copy_kvs = cluster.stats().copy_kvs;
  result.forwards = cluster.stats().forwards;
  result.wrong_shard_bounces = client.stats().wrong_shard_bounces;
  result.map_epoch = cluster.map_epoch();
  return result;
}

bool BarsPass(const RebalanceResult& r) {
  return r.lost_acked_writes == 0 && r.moves >= 1 &&
         r.initial_imbalance >= 3.0 && r.final_imbalance <= 1.25 &&
         r.migrate_p99_us <= 2.0 * r.steady_p99_us;
}

void AddReportRow(kvd::bench::JsonReport& report, const RebalanceResult& r) {
  report.BeginSeries("rebalance");
  report.AddRow({{"initial_imbalance", r.initial_imbalance},
                 {"final_imbalance", r.final_imbalance},
                 {"projected_imbalance", r.projected_imbalance},
                 {"moves", static_cast<double>(r.moves)},
                 {"steady_p99_us", r.steady_p99_us},
                 {"migrate_p99_us", r.migrate_p99_us},
                 {"lost_acked_writes", static_cast<double>(r.lost_acked_writes)},
                 {"acked_increments", static_cast<double>(r.acked_increments)},
                 {"copy_kvs", static_cast<double>(r.copy_kvs)},
                 {"forwards", static_cast<double>(r.forwards)},
                 {"map_epoch", static_cast<double>(r.map_epoch)}});
}

}  // namespace
}  // namespace kvd

int main(int argc, char** argv) {
  using kvd::TablePrinter;
  kvd::bench::JsonReport report("rebalance");

  const kvd::RebalanceResult r = kvd::RunRebalance();
  AddReportRow(report, r);

  if (kvd::bench::GoldenArg(argc, argv)) {
    // Golden mode: same deterministic run, JSON only.
    if (!report.WriteIfRequested(kvd::bench::JsonPathArg(argc, argv))) {
      return 1;
    }
    return kvd::BarsPass(r) ? 0 : 1;
  }

  std::printf("\n=== Rebalance — live migration under a 3.2x hotspot ===\n");
  std::printf("(4 groups RF 3, 12 partitions, YCSB-A 50/50 increment/read,\n"
              " 80%% of ops on group 0's partitions; plan moves execute live\n"
              " under sustained load, simulated time)\n\n");
  TablePrinter table({"initial_imb", "final_imb", "projected_imb", "moves",
                      "steady_p99_us", "migrate_p99_us", "migrate_max_us"});
  table.AddRow({TablePrinter::Num(r.initial_imbalance, 3),
                TablePrinter::Num(r.final_imbalance, 3),
                TablePrinter::Num(r.projected_imbalance, 3),
                TablePrinter::Int(r.moves),
                TablePrinter::Num(r.steady_p99_us, 1),
                TablePrinter::Num(r.migrate_p99_us, 1),
                TablePrinter::Num(r.migrate_max_us, 1)});
  table.Print();
  std::printf("\nacked increments: %llu, lost acked writes: %llu\n",
              static_cast<unsigned long long>(r.acked_increments),
              static_cast<unsigned long long>(r.lost_acked_writes));
  std::printf("copy kvs: %llu, forwards: %llu, client wrong-shard bounces: "
              "%llu, map epoch: %llu\n",
              static_cast<unsigned long long>(r.copy_kvs),
              static_cast<unsigned long long>(r.forwards),
              static_cast<unsigned long long>(r.wrong_shard_bounces),
              static_cast<unsigned long long>(r.map_epoch));
  std::printf("bars: lost_acked==0 %s, moves>=1 %s, initial>=3.0 %s, "
              "final<=1.25 %s, migrate_p99<=2x steady %s\n",
              r.lost_acked_writes == 0 ? "PASS" : "FAIL",
              r.moves >= 1 ? "PASS" : "FAIL",
              r.initial_imbalance >= 3.0 ? "PASS" : "FAIL",
              r.final_imbalance <= 1.25 ? "PASS" : "FAIL",
              r.migrate_p99_us <= 2.0 * r.steady_p99_us ? "PASS" : "FAIL");

  if (!report.WriteIfRequested(kvd::bench::JsonPathArg(argc, argv))) {
    return 1;
  }
  return kvd::BarsPass(r) ? 0 : 1;
}
