// Table 3: comparison with published KVS systems — throughput, power
// efficiency, and latency — plus the paper's headline multi-NIC scaling
// (10 programmable NICs -> 1.22 Gops in one server).
//
// Our substrate is a simulator, so the KV-Direct rows use *our measured*
// simulated throughput combined with the paper's published power figures;
// the comparison systems are the paper's cited numbers (analytic_models.h).
#include <algorithm>
#include <cstdio>
#include <thread>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/analytic_models.h"
#include "src/baseline/cpu_kvs.h"
#include "src/common/table_printer.h"
#include "src/core/multi_nic.h"

namespace kvd {
namespace {

double MeasureKvDirectMops(bool long_tail) {
  ServerConfig config;
  config.kvs_memory_bytes = 32 * kMiB;
  config.nic_dram.capacity_bytes = 4 * kMiB;
  config.AutoTune(10, long_tail);
  KvDirectServer server(config);
  WorkloadConfig wl;
  wl.value_bytes = 2;
  wl.get_ratio = 0.95;
  wl.distribution = long_tail ? KeyDistribution::kLongTail : KeyDistribution::kUniform;
  wl.num_keys = config.kvs_memory_bytes / 2 / 10;
  YcsbWorkload workload(wl);
  bench::Preload(server, workload, wl.num_keys);
  bench::DriveOptions options;
  options.total_ops = 50000;
  options.use_network = true;
  return bench::Drive(server, workload, options).mops;
}

// The paper's multi-NIC experiment: 10 NICs in one server, each with its own
// PCIe endpoints and memory partition, scale near-linearly. Each instance is
// an independent simulated server here.
double MeasureTenNicMops() {
  double total = 0;
  for (int nic = 0; nic < 10; nic++) {
    ServerConfig config;
    config.kvs_memory_bytes = 16 * kMiB;
    config.nic_dram.capacity_bytes = 2 * kMiB;
    config.AutoTune(10, /*long_tail=*/true);
    KvDirectServer server(config);
    WorkloadConfig wl;
    wl.value_bytes = 2;
    wl.get_ratio = 0.95;
    wl.distribution = KeyDistribution::kLongTail;
    wl.num_keys = config.kvs_memory_bytes / 2 / 10;
    wl.seed = 42 + nic;
    YcsbWorkload workload(wl);
    bench::Preload(server, workload, wl.num_keys);
    bench::DriveOptions options;
    options.total_ops = 20000;
    options.use_network = true;
    total += bench::Drive(server, workload, options).mops;
  }
  return total;
}

// Cluster-wide latency for the 10-NIC rig: one MultiNicServer, ops routed by
// key hash via MultiNicClient, per-NIC latency histograms combined with
// LatencyHistogram::Merge (exact — merged quantiles equal pooled-sample
// quantiles, since Merge sums per-bucket counts).
void ReportTenNicLatency() {
  ServerConfig config;
  config.kvs_memory_bytes = 16 * kMiB;
  config.nic_dram.capacity_bytes = 2 * kMiB;
  config.AutoTune(10, /*long_tail=*/true);
  MultiNicServer cluster(10, config);

  WorkloadConfig wl;
  wl.value_bytes = 2;
  wl.get_ratio = 0.95;
  wl.distribution = KeyDistribution::kLongTail;
  wl.num_keys = config.kvs_memory_bytes / 2 / 10;
  wl.seed = 42;
  YcsbWorkload workload(wl);
  for (uint64_t id = 0; id < wl.num_keys; id++) {
    const KvOperation op = workload.LoadOpFor(id);
    (void)cluster.Load(op.key, op.value);
  }

  MultiNicClient client(cluster);
  constexpr uint64_t kOps = 20000;
  constexpr uint64_t kBatch = 400;  // ~40 per NIC per flush
  for (uint64_t done = 0; done < kOps; done += kBatch) {
    for (uint64_t i = 0; i < kBatch; i++) {
      client.Enqueue(workload.NextOp());
    }
    (void)client.Flush();
  }

  const LatencyHistogram merged = cluster.MergedLatency();
  std::printf(
      "cluster latency over %llu ops (merged across 10 NICs): "
      "p50 %.2f us, p95 %.2f us, p99 %.2f us\n",
      static_cast<unsigned long long>(merged.count()),
      static_cast<double>(merged.Percentile(0.50)) / 1000.0,
      static_cast<double>(merged.Percentile(0.95)) / 1000.0,
      static_cast<double>(merged.Percentile(0.99)) / 1000.0);
}

}  // namespace
}  // namespace kvd

int main() {
  using kvd::TablePrinter;
  std::printf("\n=== Table 3 — comparison with published KVS systems ===\n");

  const double uniform_mops = kvd::MeasureKvDirectMops(false);
  const double longtail_mops = kvd::MeasureKvDirectMops(true);
  // Paper power: 121.6 W full system at peak; 34 W incremental (NIC + PCIe +
  // memory + daemon) since the CPU stays available for other work.
  constexpr double kFullPowerW = 121.6;
  constexpr double kIncrementalPowerW = 34;

  // A real wall-clock datapoint for the CPU-KVS class on this host (one
  // worker per hardware thread), alongside the paper's published rows.
  const unsigned host_threads = std::max(1u, std::thread::hardware_concurrency());
  const double cpu_kvs_mops = kvd::MeasureCpuKvsMops(host_threads, 1 << 20, 2000000);

  TablePrinter table({"system", "tput_Mops", "power_W", "kops_per_W", "tail_us"});
  for (const kvd::PublishedSystem& system : kvd::kPublishedSystems) {
    table.AddRow({system.name, TablePrinter::Num(system.throughput_mops, 1),
                  TablePrinter::Num(system.power_watts, 0),
                  TablePrinter::Num(system.KopsPerWatt(), 0),
                  TablePrinter::Num(system.tail_latency_us, 1)});
  }
  table.AddRow({"sharded CPU map (this host)", TablePrinter::Num(cpu_kvs_mops, 1),
                "-", "-", "-"});
  table.AddRow({"KV-Direct (ours, uniform)", TablePrinter::Num(uniform_mops, 1),
                TablePrinter::Num(kFullPowerW, 1),
                TablePrinter::Num(uniform_mops * 1e3 / kFullPowerW, 0), "~5"});
  table.AddRow({"KV-Direct (ours, long-tail)", TablePrinter::Num(longtail_mops, 1),
                TablePrinter::Num(kFullPowerW, 1),
                TablePrinter::Num(longtail_mops * 1e3 / kFullPowerW, 0), "~5"});
  table.AddRow({"KV-Direct (incremental power)", TablePrinter::Num(longtail_mops, 1),
                TablePrinter::Num(kIncrementalPowerW, 1),
                TablePrinter::Num(longtail_mops * 1e3 / kIncrementalPowerW, 0),
                "~5"});
  table.Print();

  std::printf("\n--- multi-NIC scaling (paper: 10 NICs -> 1.22 Gops) ---\n");
  const double ten_nic = kvd::MeasureTenNicMops();
  std::printf("10 simulated NICs, aggregate: %.0f Mops (%.2fx one NIC)\n", ten_nic,
              ten_nic / longtail_mops);
  kvd::ReportTenNicLatency();
  std::printf(
      "paper: 1220 Mops with 10 NICs, near-linear scaling; KV-Direct is the\n"
      "first general-purpose KVS over 1 Mops/W on commodity servers\n");
  return 0;
}
