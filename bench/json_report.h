// Machine-readable benchmark output. Each bench binary accepts
// `--json <path>` and, when given, writes one JSON record mirroring its
// printed tables: {"bench": ..., "series": [{"name": ..., "rows": [...]}]}.
// Rows are flat objects of numeric fields (mops, latency percentiles, sweep
// parameters), so plotting scripts consume them without screen-scraping.
//
// Kept separate from bench_util.h so benches that drive raw hardware models
// (no KvDirectServer) can emit JSON without linking the full core.
#ifndef BENCH_JSON_REPORT_H_
#define BENCH_JSON_REPORT_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/common/assert.h"
#include "src/common/status.h"
#include "src/obs/json_writer.h"

namespace kvd {
namespace bench {

class JsonReport {
 public:
  using Fields = std::vector<std::pair<std::string, double>>;

  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  // Starts a new named series; subsequent AddRow calls append to it.
  void BeginSeries(std::string name) { series_.push_back({std::move(name), {}}); }

  void AddRow(Fields fields) {
    KVD_CHECK(!series_.empty());
    series_.back().rows.push_back(std::move(fields));
  }

  std::string ToJson() const {
    JsonWriter w;
    w.BeginObject();
    w.Field("bench", bench_);
    w.Key("series").BeginArray();
    for (const Series& series : series_) {
      w.BeginObject();
      w.Field("name", series.name);
      w.Key("rows").BeginArray();
      for (const Fields& row : series.rows) {
        w.BeginObject();
        for (const auto& [key, value] : row) {
          w.Field(key, value);
        }
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return w.TakeString();
  }

  Status WriteTo(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      return Status::Internal("cannot open json output file: " + path);
    }
    const std::string json = ToJson();
    const size_t written = std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    if (written != json.size()) {
      return Status::Internal("short write to json output file: " + path);
    }
    return Status::Ok();
  }

  // Writes to `path` when non-null (the parsed --json argument) and reports
  // the destination — or the error — on stdout. No-op when path is null.
  // Returns false on a failed write so main() can exit non-zero.
  bool WriteIfRequested(const char* path) const {
    if (path == nullptr) {
      return true;
    }
    const Status status = WriteTo(path);
    if (status.ok()) {
      std::printf("\njson record written to %s\n", path);
    } else {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
    }
    return status.ok();
  }

 private:
  struct Series {
    std::string name;
    std::vector<Fields> rows;
  };

  std::string bench_;
  std::vector<Series> series_;
};

// Returns true when `--golden` is present: the bench runs only its single
// golden-reference cell (compared byte-for-byte against bench/golden/*.json)
// instead of the full sweep. Cells are independent runs, so the golden cell's
// row is identical to the corresponding row of the full sweep.
inline bool GoldenArg(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--golden") == 0) {
      return true;
    }
  }
  return false;
}

// Returns the value of a `--json <path>` argument, or nullptr.
inline const char* JsonPathArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return argv[i + 1];
    }
  }
  return nullptr;
}

}  // namespace bench
}  // namespace kvd

#endif  // BENCH_JSON_REPORT_H_
