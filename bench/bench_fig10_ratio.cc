// Figure 10: determining the optimal hash index ratio.
//
// For each hash index ratio the bench fills the store until the first failed
// insert and reports the maximum achievable memory utilization, plus the
// average access count at that point. The paper picks, for a required
// utilization and KV size, the largest ratio that still accommodates the
// corpus — which also minimizes the average access count (dashed line).
#include <cstdio>

#include "bench/hash_bench_util.h"
#include "src/common/table_printer.h"

namespace kvd {
namespace {

constexpr uint64_t kMemory = 8 * kMiB;

struct Probe {
  double max_utilization;
  double accesses;  // 50/50 GET/PUT at the fill limit
};

Probe MaxUtilization(uint32_t kv_size, bool inline_kvs, double ratio) {
  HashIndexConfig config;
  config.memory_size = kMemory;
  config.hash_index_ratio = ratio;
  config.inline_threshold_bytes = inline_kvs ? 25 : 10;
  bench::HashRig rig(config);
  const uint64_t keys = bench::FillToUtilization(rig, kv_size, 1.0);  // to OOM
  const auto cost = bench::MeasureAccessCost(rig, keys, kv_size, 1000);
  return {rig.index.Utilization(), (cost.get + cost.put) / 2};
}

void Sweep(uint32_t kv_size, bool inline_kvs) {
  std::printf("\n--- KV size %u B (%s) ---\n", kv_size,
              inline_kvs ? "inline" : "non-inline");
  TablePrinter table({"index_ratio_%", "max_utilization_%", "avg_accesses"});
  double best_ratio = 0;
  double best_util = 0;
  for (double ratio : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    const Probe probe = MaxUtilization(kv_size, inline_kvs, ratio);
    table.AddRow({TablePrinter::Num(ratio * 100, 0),
                  TablePrinter::Num(probe.max_utilization * 100, 1),
                  TablePrinter::Num(probe.accesses, 2)});
    if (probe.max_utilization > best_util) {
      best_util = probe.max_utilization;
      best_ratio = ratio;
    }
  }
  table.Print();
  std::printf("best ratio %.0f%% reaches %.1f%% utilization\n", best_ratio * 100,
              best_util * 100);
}

}  // namespace
}  // namespace kvd

int main() {
  std::printf(
      "\n=== Figure 10 — max achievable utilization vs hash index ratio ===\n");
  kvd::Sweep(13, true);    // small inline KVs: index-capacity bound
  kvd::Sweep(60, false);   // slab KVs: heap-capacity bound at high ratios
  kvd::Sweep(252, false);  // large KVs ("254 B" class)
  std::printf(
      "\npaper: max utilization falls once the index starves the heap; the\n"
      "chosen ratio is the largest that still fits the corpus\n");
  return 0;
}
