// Figure 3: PCIe random DMA performance.
//   (a) throughput (Mops) versus request payload size, reads and writes
//   (b) DMA read latency CDF for random 64 B reads
//
// Paper anchors: 64 B random read throughput saturates near 60 Mops (64 tags
// x ~1050 ns), writes are posted and run far higher; read latency spans
// roughly 800-1400 ns with a long tail (Figure 3b).
#include <cstdio>
#include <functional>

#include "src/common/hashing.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/pcie/dma_engine.h"
#include "src/sim/simulator.h"

namespace kvd {
namespace {

double MeasureMops(bool is_read, uint32_t payload) {
  Simulator sim;
  DmaEngineConfig config;
  DmaEngine dma(sim, config);
  uint64_t completed = 0;
  std::function<void()> refill = [&] {
    completed++;
    const uint64_t address = Mix64(completed) % (1 << 24) * 64;
    if (is_read) {
      dma.Read(address, payload, refill);
    } else {
      dma.Write(address, payload, refill);
    }
  };
  for (int i = 0; i < 256; i++) {
    const uint64_t address = Mix64(1000 + i) % (1 << 24) * 64;
    if (is_read) {
      dma.Read(address, payload, refill);
    } else {
      dma.Write(address, payload, refill);
    }
  }
  const SimTime horizon = 1 * kMillisecond;
  sim.RunUntil(horizon);
  return static_cast<double>(completed) / (static_cast<double>(horizon) / kSecond) /
         1e6;
}

void Fig3aThroughput() {
  std::printf("\n=== Figure 3a — PCIe random DMA throughput vs payload size ===\n");
  TablePrinter table({"payload_B", "read_Mops", "write_Mops", "paper_read_64B"});
  for (uint32_t payload : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    table.AddRow({TablePrinter::Int(payload),
                  TablePrinter::Num(MeasureMops(true, payload), 1),
                  TablePrinter::Num(MeasureMops(false, payload), 1),
                  payload == 64 ? "~60" : ""});
  }
  table.Print();
}

void Fig3bLatencyCdf() {
  std::printf("\n=== Figure 3b — random 64 B DMA read latency CDF ===\n");
  Simulator sim;
  DmaEngineConfig config;
  DmaEngine dma(sim, config);
  int done = 0;
  // Serial issue so queueing does not distort the latency distribution.
  std::function<void()> next = [&] {
    done++;
    if (done < 20000) {
      dma.Read(Mix64(done) % (1 << 24) * 64, 64, next);
    }
  };
  dma.Read(0, 64, next);
  sim.RunUntilIdle();
  const LatencyHistogram lat = dma.AggregateReadLatency();
  TablePrinter table({"percentile", "latency_ns", "paper"});
  const struct {
    double q;
    const char* paper;
  } rows[] = {{0.05, ""},   {0.25, ""},        {0.50, "~1050 (mean)"},
              {0.75, ""},   {0.95, "~1400"},   {0.99, ""}};
  for (const auto& row : rows) {
    table.AddRow({TablePrinter::Num(row.q * 100, 0),
                  TablePrinter::Int(lat.Percentile(row.q)), row.paper});
  }
  table.Print();
  std::printf("mean=%.0f ns  min=%llu ns  (paper: cached 800 ns + ~250 ns random)\n",
              lat.mean(), static_cast<unsigned long long>(lat.min()));
}

}  // namespace
}  // namespace kvd

int main() {
  kvd::Fig3aThroughput();
  kvd::Fig3bLatencyCdf();
  return 0;
}
