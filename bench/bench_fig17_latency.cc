// Figure 17: latency of KV-Direct at peak throughput of the YCSB workload,
// with and without network batching, for GET and PUT, uniform and skewed.
//
// Paper anchors: non-batched tail latency 3-9 µs depending on KV size and
// op type; PUT above GET (extra memory access); skewed below uniform (NIC
// DRAM hits); batching adds less than 1 µs while multiplying throughput.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"

namespace kvd {
namespace {

bench::DriveResult Measure(uint32_t kv_bytes, bool is_get, bool long_tail,
                           bool batching) {
  ServerConfig config;
  config.kvs_memory_bytes = 32 * kMiB;
  config.nic_dram.capacity_bytes = 4 * kMiB;
  config.AutoTune(kv_bytes, long_tail);
  KvDirectServer server(config);

  WorkloadConfig wl;
  wl.value_bytes = kv_bytes - 8;
  wl.get_ratio = is_get ? 1.0 : 0.0;
  wl.distribution = long_tail ? KeyDistribution::kLongTail : KeyDistribution::kUniform;
  wl.num_keys = config.kvs_memory_bytes * 35 / 100 / kv_bytes;
  YcsbWorkload workload(wl);
  bench::Preload(server, workload, wl.num_keys);

  bench::DriveOptions options;
  options.total_ops = 20000;
  options.use_network = true;
  options.ops_per_packet = batching ? 40 : 1;
  // Moderate pipeline: latency at sustainable load, not at saturation knee.
  options.pipeline_depth = batching ? 160 : 64;
  return bench::Drive(server, workload, options);
}

void Panel(bool batching, bench::JsonReport& report) {
  std::printf("\n--- %s batching ---\n", batching ? "(a) with" : "(b) without");
  report.BeginSeries(batching ? "with_batching" : "without_batching");
  TablePrinter table({"kv_B", "GET_unif_us(p95)", "GET_skew_us(p95)",
                      "PUT_unif_us(p95)", "PUT_skew_us(p95)"});
  for (uint32_t kv : {13u, 23u, 60u, 124u, 252u}) {
    auto cell = [&](bool is_get, bool long_tail) {
      const bench::DriveResult result = Measure(kv, is_get, long_tail, batching);
      bench::AddDriveRow(report,
                         {{"kv_bytes", kv},
                          {"get_ratio", is_get ? 1.0 : 0.0},
                          {"long_tail", long_tail ? 1.0 : 0.0}},
                         result);
      return TablePrinter::Num(result.latency_ns.mean() / 1000.0, 2) + " (" +
             TablePrinter::Num(
                 static_cast<double>(result.latency_ns.Percentile(0.95)) / 1000.0,
                 1) +
             ")";
    };
    table.AddRow({TablePrinter::Int(kv), cell(true, false), cell(true, true),
                  cell(false, false), cell(false, true)});
  }
  table.Print();
}

}  // namespace
}  // namespace kvd

int main(int argc, char** argv) {
  std::printf("\n=== Figure 17 — latency under peak YCSB load ===\n");
  kvd::bench::JsonReport report("fig17_latency");
  kvd::Panel(true, report);
  kvd::Panel(false, report);
  std::printf(
      "\npaper: non-batched tail 3-9 us; PUT > GET; skewed < uniform;\n"
      "batching costs < 1 us extra per op\n");
  return report.WriteIfRequested(kvd::bench::JsonPathArg(argc, argv)) ? 0 : 1;
}
