// Figure 17: latency of KV-Direct at peak throughput of the YCSB workload,
// with and without network batching, for GET and PUT, uniform and skewed.
//
// Paper anchors: non-batched tail latency 3-9 µs depending on KV size and
// op type; PUT above GET (extra memory access); skewed below uniform (NIC
// DRAM hits); batching adds less than 1 µs while multiplying throughput.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/obs/request_trace.h"

namespace kvd {
namespace {

bench::DriveResult Measure(uint32_t kv_bytes, bool is_get, bool long_tail,
                           bool batching) {
  ServerConfig config;
  config.kvs_memory_bytes = 32 * kMiB;
  config.nic_dram.capacity_bytes = 4 * kMiB;
  config.AutoTune(kv_bytes, long_tail);
  KvDirectServer server(config);

  WorkloadConfig wl;
  wl.value_bytes = kv_bytes - 8;
  wl.get_ratio = is_get ? 1.0 : 0.0;
  wl.distribution = long_tail ? KeyDistribution::kLongTail : KeyDistribution::kUniform;
  wl.num_keys = config.kvs_memory_bytes * 35 / 100 / kv_bytes;
  YcsbWorkload workload(wl);
  bench::Preload(server, workload, wl.num_keys);

  bench::DriveOptions options;
  options.total_ops = 20000;
  options.use_network = true;
  options.ops_per_packet = batching ? 40 : 1;
  // Moderate pipeline: latency at sustainable load, not at saturation knee.
  options.pipeline_depth = batching ? 160 : 64;
  return bench::Drive(server, workload, options);
}

void Panel(bool batching, bench::JsonReport& report) {
  std::printf("\n--- %s batching ---\n", batching ? "(a) with" : "(b) without");
  report.BeginSeries(batching ? "with_batching" : "without_batching");
  TablePrinter table({"kv_B", "GET_unif_us(p95)", "GET_skew_us(p95)",
                      "PUT_unif_us(p95)", "PUT_skew_us(p95)"});
  for (uint32_t kv : {13u, 23u, 60u, 124u, 252u}) {
    auto cell = [&](bool is_get, bool long_tail) {
      const bench::DriveResult result = Measure(kv, is_get, long_tail, batching);
      bench::AddDriveRow(report,
                         {{"kv_bytes", kv},
                          {"get_ratio", is_get ? 1.0 : 0.0},
                          {"long_tail", long_tail ? 1.0 : 0.0}},
                         result);
      return TablePrinter::Num(result.latency_ns.mean() / 1000.0, 2) + " (" +
             TablePrinter::Num(
                 static_cast<double>(result.latency_ns.Percentile(0.95)) / 1000.0,
                 1) +
             ")";
    };
    table.AddRow({TablePrinter::Int(kv), cell(true, false), cell(true, true),
                  cell(false, false), cell(false, true)});
  }
  table.Print();
}

// Where the microseconds go: a traced pass through the real framed client at
// a representative point (60 B KVs, uniform, batched). The request tracer's
// stages tile the client-send -> client-receive interval by construction, so
// per opcode the average stage total must land within 1% of the measured
// end-to-end mean (each stage rounds to ns independently, which is the only
// slack).
void Breakdown(bench::JsonReport& report) {
  ServerConfig config;
  config.kvs_memory_bytes = 32 * kMiB;
  config.nic_dram.capacity_bytes = 4 * kMiB;
  config.AutoTune(60, false);
  config.enable_request_tracing = true;
  KvDirectServer server(config);

  WorkloadConfig wl;
  wl.value_bytes = 52;
  wl.get_ratio = 0.5;  // both opcodes in one run
  wl.num_keys = config.kvs_memory_bytes * 35 / 100 / 60;
  YcsbWorkload workload(wl);
  bench::Preload(server, workload, wl.num_keys);

  Client client(server);
  constexpr uint64_t kTotalOps = 8000;
  constexpr uint32_t kOpsPerFlush = 160;  // 4 packets of 40 in flight
  for (uint64_t done = 0; done < kTotalOps; done += kOpsPerFlush) {
    for (uint32_t i = 0; i < kOpsPerFlush; i++) {
      client.Enqueue(workload.NextOp());
    }
    client.Flush();
  }

  const LatencyBreakdown& breakdown = server.breakdown();
  std::printf("\n--- (c) per-stage breakdown, 60 B KVs (mean ns) ---\n%s",
              LatencyBreakdownReport::Table(breakdown).c_str());

  report.BeginSeries("breakdown");
  for (size_t op = 0; op < LatencyBreakdown::kNumOpcodes; op++) {
    const Opcode opcode = static_cast<Opcode>(op);
    const LatencyHistogram& e2e = breakdown.EndToEnd(opcode);
    if (e2e.count() == 0) {
      continue;
    }
    bench::JsonReport::Fields row;
    row.emplace_back("opcode", static_cast<double>(op));
    row.emplace_back("ops", static_cast<double>(e2e.count()));
    const double n = static_cast<double>(e2e.count());
    double stage_sum = 0;
    for (size_t point = 1; point < kNumTracePoints; point++) {
      const LatencyHistogram& stage =
          breakdown.Stage(opcode, static_cast<TracePoint>(point));
      // Per-op average contribution: absent stages count as zero, so the
      // stage fields sum to stage_sum_ns exactly.
      const double contribution =
          stage.mean() * static_cast<double>(stage.count()) / n;
      stage_sum += contribution;
      row.emplace_back(
          std::string("stage_") + StageName(static_cast<TracePoint>(point)) +
              "_ns",
          contribution);
    }
    row.emplace_back("stage_sum_ns", stage_sum);
    row.emplace_back("e2e_ns", e2e.mean());
    report.AddRow(std::move(row));
  }
}

}  // namespace
}  // namespace kvd

int main(int argc, char** argv) {
  std::printf("\n=== Figure 17 — latency under peak YCSB load ===\n");
  kvd::bench::JsonReport report("fig17_latency");
  kvd::Panel(true, report);
  kvd::Panel(false, report);
  kvd::Breakdown(report);
  std::printf(
      "\npaper: non-batched tail 3-9 us; PUT > GET; skewed < uniform;\n"
      "batching costs < 1 us extra per op\n");
  return report.WriteIfRequested(kvd::bench::JsonPathArg(argc, argv)) ? 0 : 1;
}
