// Figure 16: system throughput of KV-Direct under YCSB workloads —
// uniform and long-tail (Zipf 0.99), GET ratios 100/95/50/0%, KV sizes
// 5-254 B. The server is tuned per cell as in §5.2.1 (hash index ratio,
// inline threshold, load dispatch ratio).
//
// Paper anchors: tiny inline KVs reach ~120-180 Mops; long-tail beats
// uniform (NIC DRAM cache + OoO merging of hot keys) and touches the
// 180 Mops clock bound for read-intensive mixes; 62 B+ KVs become
// network-bound; PUT-heavy mixes run at roughly half GET throughput
// (two memory accesses instead of one).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"

namespace kvd {
namespace {

// mops < 0 marks a cell whose preload did not fit (rendered "n/a").
bench::DriveResult Measure(uint32_t kv_bytes, double get_ratio, bool long_tail) {
  ServerConfig config;
  config.kvs_memory_bytes = 32 * kMiB;
  config.nic_dram.capacity_bytes = 4 * kMiB;  // 1:8, paper is 4:64 GiB = 1:16
  config.AutoTune(kv_bytes, long_tail);
  KvDirectServer server(config);

  WorkloadConfig wl;
  wl.value_bytes = kv_bytes - 8;
  wl.get_ratio = get_ratio;
  wl.distribution = long_tail ? KeyDistribution::kLongTail : KeyDistribution::kUniform;
  // Fill toward the paper's 50% memory utilization; 35% of the region is
  // reachable for every size class given our per-KV metadata (see DESIGN.md).
  const uint64_t target_keys =
      config.kvs_memory_bytes * 35 / 100 / std::max<uint32_t>(kv_bytes, 1);
  wl.num_keys = target_keys;
  YcsbWorkload workload(wl);
  const uint64_t loaded = bench::Preload(server, workload, target_keys);
  if (loaded < target_keys / 2) {
    bench::DriveResult failed;
    failed.mops = -1;
    return failed;
  }

  bench::DriveOptions options;
  options.total_ops = 60000;
  options.use_network = true;
  options.ops_per_packet = 40;
  // Enough packets in flight to keep the 256-entry reservation station full.
  options.pipeline_depth = 2048;
  return bench::Drive(server, workload, options);
}

void Panel(bool long_tail, bench::JsonReport& report, bool golden) {
  std::printf("\n--- %s ---\n", long_tail ? "(b) long-tail (Zipf 0.99)" : "(a) uniform");
  report.BeginSeries(long_tail ? "long_tail" : "uniform");
  // Golden mode: one representative non-inline cell (60 B KV, 50% GET).
  const std::vector<uint32_t> kv_sizes =
      golden ? std::vector<uint32_t>{60u}
             : std::vector<uint32_t>{8u, 13u, 23u, 60u, 124u, 252u};
  const std::vector<double> get_ratios =
      golden ? std::vector<double>{0.5}
             : std::vector<double>{1.0, 0.95, 0.5, 0.0};
  TablePrinter table(golden
                         ? std::vector<std::string>{"kv_B", "50%GET_Mops"}
                         : std::vector<std::string>{"kv_B", "100%GET_Mops",
                                                    "95%GET_Mops", "50%GET_Mops",
                                                    "100%PUT_Mops"});
  for (uint32_t kv : kv_sizes) {
    std::vector<std::string> row = {TablePrinter::Int(kv)};
    for (double get_ratio : get_ratios) {
      const bench::DriveResult result = Measure(kv, get_ratio, long_tail);
      row.push_back(result.mops < 0 ? "n/a" : TablePrinter::Num(result.mops, 1));
      if (result.mops >= 0) {
        bench::AddDriveRow(report, {{"kv_bytes", kv}, {"get_ratio", get_ratio}},
                           result);
      }
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace kvd

int main(int argc, char** argv) {
  std::printf("\n=== Figure 16 — YCSB throughput of KV-Direct ===\n");
  const bool golden = kvd::bench::GoldenArg(argc, argv);
  kvd::bench::JsonReport report("fig16_throughput");
  kvd::Panel(false, report, golden);
  if (!golden) {
    kvd::Panel(true, report, golden);
  }
  std::printf(
      "\npaper: small inline KVs up to 180 Mops (long-tail, read-heavy);\n"
      "uniform PUT-heavy mixes roughly halve throughput; >= 62 B KVs are\n"
      "bounded by the 40 GbE network\n");
  return report.WriteIfRequested(kvd::bench::JsonPathArg(argc, argv)) ? 0 : 1;
}
