// Helpers shared by the hash-table microbenchmarks (Figures 6, 9, 10, 11):
// build an index over a counting engine, fill it with fixed-size KVs to a
// target memory utilization, and measure average DMA-equivalent accesses per
// GET and per PUT.
#ifndef BENCH_HASH_BENCH_UTIL_H_
#define BENCH_HASH_BENCH_UTIL_H_

#include <memory>
#include <vector>

#include "src/alloc/slab_allocator.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/hash/hash_index.h"
#include "src/mem/access_engine.h"
#include "src/mem/host_memory.h"

namespace kvd {
namespace bench {

struct HashRig {
  HostMemory memory;
  DirectEngine engine;
  SlabAllocator allocator;
  HashIndex index;

  static SlabConfig SlabFor(const HashIndexConfig& config) {
    const auto regions = config.ComputeRegions();
    SlabConfig slab;
    slab.region_base = regions.heap_base;
    slab.region_size = regions.heap_size;
    slab.min_slab_bytes = config.min_slab_bytes;
    slab.max_slab_bytes = config.max_slab_bytes;
    return slab;
  }

  explicit HashRig(const HashIndexConfig& config)
      : memory(config.memory_base + config.memory_size),
        engine(memory),
        allocator(SlabFor(config)),
        index(engine, allocator, config) {}
};

inline std::vector<uint8_t> BenchKey(uint64_t id) {
  std::vector<uint8_t> key(8, 0);
  std::memcpy(key.data(), &id, 8);
  return key;
}

// Inserts kv_size-byte KVs (8 B key + value) until the index reaches
// `target_utilization` or the store fills. Returns the number of KVs stored.
inline uint64_t FillToUtilization(HashRig& rig, uint32_t kv_size,
                                  double target_utilization) {
  const uint32_t value_size = kv_size > 8 ? kv_size - 8 : 1;
  uint64_t id = 0;
  while (rig.index.Utilization() < target_utilization) {
    const std::vector<uint8_t> value(value_size, static_cast<uint8_t>(id));
    if (!rig.index.Put(BenchKey(id), value).ok()) {
      break;
    }
    id++;
  }
  return id;
}

struct AccessCost {
  double get = 0;  // accesses per GET
  double put = 0;  // accesses per PUT (same-size overwrite, steady state)
};

// Measures average accesses over `samples` random present keys.
inline AccessCost MeasureAccessCost(HashRig& rig, uint64_t keys_present,
                                    uint32_t kv_size, int samples = 2000) {
  AccessCost cost;
  if (keys_present == 0) {
    return cost;
  }
  const uint32_t value_size = kv_size > 8 ? kv_size - 8 : 1;
  Rng rng(7);
  std::vector<uint8_t> out;

  AccessStats before = rig.engine.stats();
  for (int i = 0; i < samples; i++) {
    (void)rig.index.Get(BenchKey(rng.NextBelow(keys_present)), out);
  }
  cost.get = static_cast<double>((rig.engine.stats() - before).total()) / samples;

  before = rig.engine.stats();
  for (int i = 0; i < samples; i++) {
    const std::vector<uint8_t> value(value_size, static_cast<uint8_t>(i));
    (void)rig.index.Put(BenchKey(rng.NextBelow(keys_present)), value);
  }
  cost.put = static_cast<double>((rig.engine.stats() - before).total()) / samples;
  return cost;
}

}  // namespace bench
}  // namespace kvd

#endif  // BENCH_HASH_BENCH_UTIL_H_
