// Table 4: impact of a peak-load KV-Direct NIC on other host workloads.
//
// KV-Direct bypasses the CPU entirely; its only host-side footprint is
// (a) PCIe DMA traffic into one NUMA node's memory controllers and (b) the
// nearly idle slab daemon. The paper reports minimal impact on co-running
// applications. This bench reproduces the finding with a bandwidth-contention
// model: each co-running workload class is characterized by its memory
// bandwidth demand, and the memory controllers serve KV-Direct's DMA plus the
// application from the same pool.
//
//   slowdown = demand_total > capacity ? demand_total / capacity : 1
//
// with capacity = per-node memory bandwidth (8 channels DDR3-1600 across two
// nodes, ~51.2 GB/s per node) and KV-Direct drawing its measured PCIe
// throughput (~13 GB/s peak, far less for small-KV workloads).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"

namespace kvd {
namespace {

struct HostWorkload {
  const char* name;
  double bandwidth_gbps;  // memory bandwidth demand of the application alone
};

// Representative co-running applications (SPEC-like classes).
constexpr HostWorkload kWorkloads[] = {
    {"cache-resident compute (e.g. gcc)", 2.0},
    {"mixed OLTP", 12.0},
    {"analytics scan", 25.0},
    {"STREAM triad (bandwidth-bound)", 45.0},
};

constexpr double kNodeBandwidthGBps = 51.2;  // 4 channels DDR3-1600 x 2 ranks

// Measures the PCIe (host memory) traffic KV-Direct generates at peak.
double MeasureKvDirectHostTrafficGBps() {
  ServerConfig config;
  config.kvs_memory_bytes = 32 * kMiB;
  config.nic_dram.capacity_bytes = 4 * kMiB;
  config.AutoTune(10, /*long_tail=*/false);
  KvDirectServer server(config);
  WorkloadConfig wl;
  wl.value_bytes = 2;
  wl.get_ratio = 0.5;  // write-heavy: worst case for DMA traffic
  wl.num_keys = config.kvs_memory_bytes / 2 / 10;
  YcsbWorkload workload(wl);
  bench::Preload(server, workload, wl.num_keys);

  const uint64_t bytes_before = [&] {
    uint64_t total = 0;
    for (uint32_t i = 0; i < server.dma().num_links(); i++) {
      total += server.dma().link(i).upstream_bytes() +
               server.dma().link(i).downstream_bytes();
    }
    return total;
  }();
  const SimTime start = server.simulator().Now();
  bench::DriveOptions options;
  options.total_ops = 40000;
  bench::Drive(server, workload, options);
  uint64_t bytes_after = 0;
  for (uint32_t i = 0; i < server.dma().num_links(); i++) {
    bytes_after += server.dma().link(i).upstream_bytes() +
                   server.dma().link(i).downstream_bytes();
  }
  const double elapsed_s =
      static_cast<double>(server.simulator().Now() - start) / kSecond;
  return static_cast<double>(bytes_after - bytes_before) / elapsed_s / 1e9;
}

}  // namespace
}  // namespace kvd

int main() {
  using kvd::TablePrinter;
  std::printf("\n=== Table 4 — impact on host CPU workloads at peak KV load ===\n");
  const double dma_gbps = kvd::MeasureKvDirectHostTrafficGBps();
  std::printf("measured KV-Direct host-memory DMA traffic: %.1f GB/s\n", dma_gbps);

  TablePrinter table({"co-running workload", "standalone_GBps", "with_kvdirect",
                      "degradation_%"});
  for (const auto& workload : kvd::kWorkloads) {
    const double demand = workload.bandwidth_gbps + dma_gbps;
    const double slowdown =
        demand > kvd::kNodeBandwidthGBps ? demand / kvd::kNodeBandwidthGBps : 1.0;
    const double effective = workload.bandwidth_gbps / slowdown;
    table.AddRow({workload.name, TablePrinter::Num(workload.bandwidth_gbps, 1),
                  TablePrinter::Num(effective, 1),
                  TablePrinter::Num((1 - effective / workload.bandwidth_gbps) * 100,
                                    1)});
  }
  table.Print();
  std::printf(
      "paper: minimal impact on other workloads at single-NIC peak load — the\n"
      "CPU is almost idle and only bandwidth-saturated applications notice\n");
  return 0;
}
