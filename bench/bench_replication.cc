// Replication groups: write throughput vs replication factor, read scaling
// across replicas, and failover downtime under a scripted primary crash.
//
// Series 1 sweeps the replication factor {1, 2, 3, 5} with a majority quorum
// and drives a YCSB-A-style workload (50% puts / 50% reads) through a
// ReplicatedClient: writes pay quorum replication before acknowledgment,
// reads fan out round-robin across the replicas. Columns: simulated-time
// throughput, quorum size, log entries shipped per write, and the share of
// reads answered by backups.
//
// Series 2 crashes the primary of an RF-3 group at the first heartbeat tick
// (FaultSite::kReplicaCrash, scripted ordinal) mid-workload and reports the
// measured failover downtime in simulated time, the retry amplification the
// crash cost the client, and — the acceptance bar — whether every
// acknowledged write survived onto the new primary. A lost acknowledged
// write makes the binary exit non-zero.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_report.h"
#include "src/common/random.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/cluster/cluster_client.h"
#include "src/cluster/coordinator.h"
#include "src/replica/replicated_client.h"
#include "src/replica/replication_group.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

uint64_t AsU64(const std::vector<uint8_t>& value) {
  uint64_t v = 0;
  std::memcpy(&v, value.data(), std::min<size_t>(8, value.size()));
  return v;
}

ReplicationConfig BaseConfig(uint32_t replicas) {
  ReplicationConfig config;
  config.num_replicas = replicas;
  config.server.kvs_memory_bytes = 8 * kMiB;
  config.server.nic_dram.capacity_bytes = 1 * kMiB;
  return config;
}

struct FactorPoint {
  uint32_t replicas = 0;
  uint32_t quorum = 0;
  double throughput_mops = 0;
  double entries_per_write = 0;   // shipped log entries / effective writes
  double backup_read_share = 0;   // reads answered by a non-primary replica
};

FactorPoint RunFactor(uint32_t replicas, uint64_t seed) {
  ReplicationConfig config = BaseConfig(replicas);
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  KvEndpoint& ep = client;  // the driver sees only the endpoint interface

  constexpr uint64_t kKeys = 256;
  constexpr uint64_t kOps = 8000;
  constexpr uint64_t kBatch = 64;
  Rng mix(seed);
  uint64_t writes = 0;
  uint64_t reads = 0;
  const SimTime elapsed = bench::DriveBatches(ep, kOps, kBatch, [&] {
    const uint64_t k = mix.NextBelow(kKeys);
    KvOperation op;
    op.key = Key(k);
    if (mix.NextDouble() < 0.5) {
      op.opcode = Opcode::kPut;
      op.value = U64Value(mix.Next());
      writes++;
    } else {
      op.opcode = Opcode::kGet;
      reads++;
    }
    return op;
  });

  FactorPoint point;
  point.replicas = replicas;
  point.quorum = config.EffectiveQuorum();
  point.throughput_mops =
      elapsed > 0 ? static_cast<double>(kOps) * 1e6 / static_cast<double>(elapsed)
                  : 0.0;
  point.entries_per_write =
      writes > 0 ? static_cast<double>(group.stats().entries_shipped) /
                       static_cast<double>(writes)
                 : 0.0;
  // Reads land on the primary 1/R of the time under round-robin; the rest is
  // the read-scaling surface the backups absorb.
  point.backup_read_share =
      replicas > 1 ? 1.0 - 1.0 / static_cast<double>(replicas) : 0.0;
  (void)reads;
  return point;
}

struct FailoverPoint {
  double downtime_us = 0;        // crash -> promotion, simulated time
  double amplification = 0;      // (packets + retransmits) / packets
  uint64_t epoch = 0;
  uint64_t failovers = 0;
  uint64_t acked_writes = 0;
  uint64_t lost_acked_writes = 0;
};

FailoverPoint RunFailover(uint64_t seed) {
  ReplicationConfig config = BaseConfig(3);
  config.faults.seed = seed;
  // The first kReplicaCrash consult ever is replica 0 — the initial primary —
  // at the first heartbeat tick, mid-workload.
  config.faults.schedule.push_back({FaultSite::kReplicaCrash, 1});
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  KvEndpoint& ep = client;  // the driver sees only the endpoint interface
  Simulator& sim = group.simulator();

  Rng mix(seed ^ 0xfa110f);
  std::map<uint64_t, uint64_t> acked;
  uint64_t next_key = 0;
  for (int batch = 0; batch < 20; batch++) {
    std::vector<std::pair<uint64_t, uint64_t>> writes;
    for (int i = 0; i < 16; i++) {
      const uint64_t id = next_key++;
      const uint64_t value = mix.Next();
      KvOperation op;
      op.opcode = Opcode::kPut;
      op.key = Key(id);
      op.value = U64Value(value);
      ep.Enqueue(std::move(op));
      writes.emplace_back(id, value);
    }
    std::vector<KvResultMessage> results = ep.Flush();
    for (size_t s = 0; s < results.size(); s++) {
      if (results[s].code == ResultCode::kOk) {
        acked[writes[s].first] = writes[s].second;
      }
    }
    // Advance the clock between batches so heartbeats (and the scripted
    // crash) interleave with the workload.
    sim.RunUntil(sim.Now() + 100 * kMicrosecond);
  }

  FailoverPoint point;
  point.downtime_us = static_cast<double>(group.stats().last_failover_downtime_ns) /
                      1e3;
  const ReliableSender::Stats stats = ep.endpoint_stats();
  point.amplification =
      stats.packets_sent > 0
          ? static_cast<double>(stats.packets_sent + stats.retransmits) /
                static_cast<double>(stats.packets_sent)
          : 1.0;
  point.epoch = group.epoch();
  point.failovers = group.stats().failovers;
  point.acked_writes = acked.size();
  for (const auto& [id, value] : acked) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(id);
    KvResultMessage r = group.Execute(op);
    if (r.code != ResultCode::kOk || AsU64(r.value) != value) {
      point.lost_acked_writes++;
    }
  }
  return point;
}

// Latency attribution for a replicated workload: an RF-3 group with request
// tracing on. Relative to a single server, writes gain log_append (retire ->
// log append) and quorum_wait (append -> quorum commit) stages; the
// commit-wait histogram is the same interval as a plain replication-health
// metric, recorded with tracing off too.
void TracedBreakdown(kvd::bench::JsonReport& report) {
  ReplicationConfig config = BaseConfig(3);
  config.enable_request_tracing = true;
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  KvEndpoint& ep = client;  // the driver sees only the endpoint interface

  constexpr uint64_t kKeys = 256;
  constexpr uint64_t kOps = 4000;
  constexpr uint64_t kBatch = 64;
  Rng mix(2026);
  bench::DriveBatches(ep, kOps, kBatch, [&] {
    const uint64_t k = mix.NextBelow(kKeys);
    KvOperation op;
    op.key = Key(k);
    if (mix.NextDouble() < 0.5) {
      op.opcode = Opcode::kPut;
      op.value = U64Value(mix.Next());
    } else {
      op.opcode = Opcode::kGet;
    }
    return op;
  });

  const LatencyBreakdown& breakdown = group.breakdown();
  std::printf("\n=== Replication — per-stage latency attribution (RF 3) ===\n");
  std::printf("(mean ns per stage; log_append and quorum_wait are the\n"
              " replication-specific stages)\n\n%s",
              LatencyBreakdownReport::Table(breakdown).c_str());
  const LatencyHistogram& wait = group.commit_wait_ns();
  std::printf("commit wait (append -> quorum ack): mean %.0f ns, p99 %llu ns "
              "over %llu writes\n",
              wait.mean(), static_cast<unsigned long long>(wait.Percentile(0.99)),
              static_cast<unsigned long long>(wait.count()));

  report.BeginSeries("breakdown");
  for (size_t op = 0; op < LatencyBreakdown::kNumOpcodes; op++) {
    const Opcode opcode = static_cast<Opcode>(op);
    const LatencyHistogram& e2e = breakdown.EndToEnd(opcode);
    if (e2e.count() == 0) {
      continue;
    }
    kvd::bench::JsonReport::Fields row;
    row.emplace_back("opcode", static_cast<double>(op));
    row.emplace_back("ops", static_cast<double>(e2e.count()));
    const double n = static_cast<double>(e2e.count());
    double stage_sum = 0;
    for (size_t point = 1; point < kNumTracePoints; point++) {
      const LatencyHistogram& stage =
          breakdown.Stage(opcode, static_cast<TracePoint>(point));
      const double contribution =
          stage.mean() * static_cast<double>(stage.count()) / n;
      stage_sum += contribution;
      row.emplace_back(
          std::string("stage_") + StageName(static_cast<TracePoint>(point)) +
              "_ns",
          contribution);
    }
    row.emplace_back("stage_sum_ns", stage_sum);
    row.emplace_back("e2e_ns", e2e.mean());
    report.AddRow(std::move(row));
  }
  report.AddRow({{"commit_wait_mean_ns", wait.mean()},
                 {"commit_wait_p99_ns",
                  static_cast<double>(wait.Percentile(0.99))},
                 {"commit_wait_count", static_cast<double>(wait.count())}});
}

// Sharded cluster health: 2 groups x RF 3 on one clock under the cluster
// control plane (ClusterCoordinator + ClusterClient, src/cluster); per-group
// commit-wait and propagation-lag histograms are combined with
// LatencyHistogram::Merge, so the cluster percentiles are exactly the
// pooled-sample percentiles.
void ShardedClusterHealth(kvd::bench::JsonReport& report) {
  ClusterConfig config;
  config.num_groups = 2;
  config.num_partitions = 2;
  config.group = BaseConfig(3);
  ClusterCoordinator cluster(config);
  ClusterClient client(cluster);
  KvEndpoint& ep = client;  // the driver sees only the endpoint interface

  constexpr uint64_t kKeys = 256;
  constexpr uint64_t kOps = 2000;
  constexpr uint64_t kBatch = 64;
  Rng mix(11);
  bench::DriveBatches(ep, kOps, kBatch, [&] {
    const uint64_t k = mix.NextBelow(kKeys);
    KvOperation op;
    op.key = Key(k);
    if (mix.NextDouble() < 0.5) {
      op.opcode = Opcode::kPut;
      op.value = U64Value(mix.Next());
    } else {
      op.opcode = Opcode::kGet;
    }
    return op;
  });

  LatencyHistogram commit_wait;
  LatencyHistogram propagation;
  for (uint32_t g = 0; g < cluster.num_groups(); g++) {
    commit_wait.Merge(cluster.group(g).commit_wait_ns());
    propagation.Merge(cluster.group(g).propagation_lag_ns());
  }
  std::printf("\n=== Replication — sharded cluster health (2 groups x RF 3) ===\n");
  std::printf("(per-group histograms merged exactly across the cluster)\n\n");
  std::printf("commit wait:     mean %.0f ns, p99 %llu ns over %llu writes\n",
              commit_wait.mean(),
              static_cast<unsigned long long>(commit_wait.Percentile(0.99)),
              static_cast<unsigned long long>(commit_wait.count()));
  std::printf("propagation lag: mean %.0f ns, p99 %llu ns over %llu windows\n",
              propagation.mean(),
              static_cast<unsigned long long>(propagation.Percentile(0.99)),
              static_cast<unsigned long long>(propagation.count()));

  report.BeginSeries("sharded_cluster");
  report.AddRow(
      {{"shards", static_cast<double>(cluster.num_groups())},
       {"commit_wait_mean_ns", commit_wait.mean()},
       {"commit_wait_p99_ns",
        static_cast<double>(commit_wait.Percentile(0.99))},
       {"commit_wait_count", static_cast<double>(commit_wait.count())},
       {"propagation_lag_mean_ns", propagation.mean()},
       {"propagation_lag_p99_ns",
        static_cast<double>(propagation.Percentile(0.99))}});
}

}  // namespace
}  // namespace kvd

int main(int argc, char** argv) {
  using kvd::TablePrinter;
  kvd::bench::JsonReport report("replication");

  if (kvd::bench::GoldenArg(argc, argv)) {
    // Golden mode: the RF-3 throughput cell alone (same seed, so the row
    // matches the full sweep's RF-3 row byte-for-byte).
    report.BeginSeries("replication_factor");
    const kvd::FactorPoint p = kvd::RunFactor(3, /*seed=*/2026);
    report.AddRow({{"replicas", static_cast<double>(p.replicas)},
                   {"quorum", static_cast<double>(p.quorum)},
                   {"throughput_mops", p.throughput_mops},
                   {"entries_per_write", p.entries_per_write},
                   {"backup_read_share", p.backup_read_share}});
    return report.WriteIfRequested(kvd::bench::JsonPathArg(argc, argv)) ? 0 : 1;
  }

  std::printf("\n=== Replication — throughput vs replication factor ===\n");
  std::printf("(majority quorum, YCSB-A 50/50 put/get, reads round-robin\n"
              " across replicas, simulated time)\n\n");
  report.BeginSeries("replication_factor");
  TablePrinter factor_table({"replicas", "quorum", "throughput_Mops",
                             "entries/write", "backup_read_share"});
  for (const uint32_t replicas : {1u, 2u, 3u, 5u}) {
    const kvd::FactorPoint p = kvd::RunFactor(replicas, /*seed=*/2026);
    factor_table.AddRow({TablePrinter::Int(p.replicas), TablePrinter::Int(p.quorum),
                         TablePrinter::Num(p.throughput_mops, 3),
                         TablePrinter::Num(p.entries_per_write, 2),
                         TablePrinter::Num(p.backup_read_share, 2)});
    report.AddRow({{"replicas", static_cast<double>(p.replicas)},
                   {"quorum", static_cast<double>(p.quorum)},
                   {"throughput_mops", p.throughput_mops},
                   {"entries_per_write", p.entries_per_write},
                   {"backup_read_share", p.backup_read_share}});
  }
  factor_table.Print();

  std::printf("\n=== Replication — failover under a scripted primary crash ===\n");
  std::printf("(RF 3, primary crashes at the first heartbeat tick mid-workload;\n"
              " downtime is crash -> promotion in simulated time)\n\n");
  report.BeginSeries("failover");
  const kvd::FailoverPoint f = kvd::RunFailover(/*seed=*/7);
  TablePrinter failover_table({"downtime_us", "amplification", "epoch",
                               "failovers", "acked_writes", "lost_acked"});
  failover_table.AddRow(
      {TablePrinter::Num(f.downtime_us, 1), TablePrinter::Num(f.amplification, 3),
       TablePrinter::Int(f.epoch), TablePrinter::Int(f.failovers),
       TablePrinter::Int(f.acked_writes), TablePrinter::Int(f.lost_acked_writes)});
  report.AddRow({{"downtime_us", f.downtime_us},
                 {"amplification", f.amplification},
                 {"epoch", static_cast<double>(f.epoch)},
                 {"failovers", static_cast<double>(f.failovers)},
                 {"acked_writes", static_cast<double>(f.acked_writes)},
                 {"lost_acked_writes", static_cast<double>(f.lost_acked_writes)}});
  failover_table.Print();
  kvd::TracedBreakdown(report);
  kvd::ShardedClusterHealth(report);
  std::printf("acknowledged writes lost in failover: %llu of %llu\n",
              static_cast<unsigned long long>(f.lost_acked_writes),
              static_cast<unsigned long long>(f.acked_writes));

  if (!report.WriteIfRequested(kvd::bench::JsonPathArg(argc, argv))) {
    return 1;
  }
  return (f.lost_acked_writes == 0 && f.failovers >= 1) ? 0 : 1;
}
