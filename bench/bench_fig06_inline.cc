// Figure 6: average memory access count under varying inline thresholds
// (10 B, 15 B, 20 B, 25 B class) and memory utilizations.
//
// Workload: mixed KV sizes chosen to fill hash slots exactly (8/13/18/23 B
// key+value — each plus the 2 B inline header is a multiple of the 5 B slot,
// mirroring the paper's slot-aligned sizes), 50/50 GET / same-size PUT on
// present keys. Each threshold line is sampled at fractions of the maximum
// utilization that threshold can reach.
//
// Paper shape: access count rises with utilization (hash collisions chain);
// a higher inline threshold inlines more KVs but burns hash slots faster, so
// its curve climbs more steeply — which is why an optimal threshold exists
// for a required utilization.
#include <cstdio>

#include "bench/hash_bench_util.h"
#include "src/common/table_printer.h"

namespace kvd {
namespace {

constexpr uint64_t kMemory = 8 * kMiB;
// Slot-aligned sizes: kv + 2 B header = 10/15/20/25 B = 2..5 slots.
constexpr uint32_t kKvSizes[] = {8, 13, 18, 23};

struct Line {
  double max_utilization = 0;
  double accesses[5] = {0, 0, 0, 0, 0};  // at 30/50/70/85/95% of max
};

uint64_t FillMixed(bench::HashRig& rig, double target_utilization, Rng& rng) {
  uint64_t id = rig.index.num_kvs();
  while (rig.index.Utilization() < target_utilization) {
    const uint32_t kv = kKvSizes[id % std::size(kKvSizes)];
    const std::vector<uint8_t> value(kv - 8, static_cast<uint8_t>(id));
    if (!rig.index.Put(bench::BenchKey(id), value).ok()) {
      break;
    }
    id++;
  }
  (void)rng;
  return id;
}

double MeasureMixedCost(bench::HashRig& rig, uint64_t keys_present) {
  constexpr int kSamples = 4000;
  std::vector<uint8_t> out;
  Rng rng(9);
  const AccessStats before = rig.engine.stats();
  for (int i = 0; i < kSamples; i++) {
    const uint64_t id = rng.NextBelow(keys_present);
    if (i % 2 == 0) {
      (void)rig.index.Get(bench::BenchKey(id), out);
    } else {
      // Same-size overwrite: the size cycle is keyed by id, like the fill.
      const uint32_t kv = kKvSizes[id % std::size(kKvSizes)];
      const std::vector<uint8_t> value(kv - 8, static_cast<uint8_t>(i));
      (void)rig.index.Put(bench::BenchKey(id), value);
    }
  }
  return static_cast<double>((rig.engine.stats() - before).total()) / kSamples;
}

Line MeasureThreshold(uint32_t inline_threshold) {
  // Probe the achievable ceiling first.
  Line line;
  {
    HashIndexConfig config;
    config.memory_size = kMemory;
    config.hash_index_ratio = 0.6;
    config.inline_threshold_bytes = inline_threshold;
    bench::HashRig rig(config);
    Rng rng(3);
    FillMixed(rig, 1.0, rng);
    line.max_utilization = rig.index.Utilization();
  }
  const double fractions[] = {0.30, 0.50, 0.70, 0.85, 0.95};
  for (int i = 0; i < 5; i++) {
    HashIndexConfig config;
    config.memory_size = kMemory;
    config.hash_index_ratio = 0.6;
    config.inline_threshold_bytes = inline_threshold;
    bench::HashRig rig(config);
    Rng rng(3);
    const uint64_t keys = FillMixed(rig, line.max_utilization * fractions[i], rng);
    line.accesses[i] = MeasureMixedCost(rig, keys);
  }
  return line;
}

}  // namespace
}  // namespace kvd

int main() {
  using kvd::TablePrinter;
  std::printf(
      "\n=== Figure 6 — memory accesses vs utilization for inline thresholds ===\n");
  TablePrinter table({"threshold_B", "max_util_%", "@30%max", "@50%max", "@70%max",
                      "@85%max", "@95%max"});
  for (uint32_t threshold : {10u, 15u, 20u, 25u}) {
    const kvd::Line line = kvd::MeasureThreshold(threshold);
    table.AddRow({TablePrinter::Int(threshold),
                  TablePrinter::Num(line.max_utilization * 100, 1),
                  TablePrinter::Num(line.accesses[0], 2),
                  TablePrinter::Num(line.accesses[1], 2),
                  TablePrinter::Num(line.accesses[2], 2),
                  TablePrinter::Num(line.accesses[3], 2),
                  TablePrinter::Num(line.accesses[4], 2)});
  }
  table.Print();
  std::printf(
      "paper: average accesses grow with utilization; larger thresholds grow\n"
      "more steeply but inline more of the mix (higher reachable utilization,\n"
      "fewer slab reads at low load)\n");
  return 0;
}
