// Ablations of KV-Direct's design choices beyond the paper's own figures
// (DESIGN.md §5): each knob is isolated with everything else held fixed.
//
//   A. slab sync batching      — DMA operations per allocation versus the
//                                sync batch size (paper claims < 0.07)
//   B. flag-bit compression    — wire bytes per op with/without the copy
//                                flags, across workload regularity
//   C. reservation station     — throughput versus in-flight capacity
//                                (the paper's 256 sizing)
//   D. secondary hash width    — false-positive extra reads for 9 bits
//                                (the paper's 1/512 claim)
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"

namespace kvd {
namespace {

// --- A: slab sync batch sweep ---
void SlabBatchAblation() {
  std::printf("\n=== Ablation A — slab pool sync batching (paper: <0.07 DMA/op) ===\n");
  TablePrinter table({"sync_batch", "dma_per_op_fill", "dma_per_op_churn"});
  for (uint32_t batch : {1u, 4u, 8u, 16u, 32u, 64u}) {
    SlabConfig config;
    config.region_size = 8 * kMiB;
    config.nic_stack_capacity = std::max(256u, batch * 2);
    config.sync_batch = batch;
    config.low_watermark = 8;
    config.high_watermark = config.nic_stack_capacity - batch;
    SlabAllocator allocator(config);
    // Phase 1 — pure fill: every slab ultimately crosses the host->NIC sync,
    // so DMA/op ~ 1/batch. This is the regime the <0.07 claim targets.
    std::vector<uint64_t> held;
    for (int i = 0; i < 60000; i++) {
      Result<uint64_t> r = allocator.Allocate(48);
      if (!r.ok()) {
        break;
      }
      held.push_back(*r);
    }
    const SyncStats fill = allocator.sync_stats();
    const double fill_dma = fill.AmortizedDmaPerOp();
    // Phase 2 — stable-size churn: frees feed later allocations through the
    // NIC stack, so the host is barely touched (paper §5.1.2).
    for (int i = 0; i < 60000; i++) {
      allocator.Free(held.back(), 48);
      held.pop_back();
      Result<uint64_t> r = allocator.Allocate(48);
      if (r.ok()) {
        held.push_back(*r);
      }
    }
    const SyncStats total = allocator.sync_stats();
    const uint64_t churn_ops =
        total.allocations + total.frees - fill.allocations - fill.frees;
    const double churn_dma =
        static_cast<double>(total.sync_dma_reads + total.sync_dma_writes -
                            fill.sync_dma_reads - fill.sync_dma_writes) /
        static_cast<double>(churn_ops);
    table.AddRow({TablePrinter::Int(batch), TablePrinter::Num(fill_dma, 4),
                  TablePrinter::Num(churn_dma, 4)});
  }
  table.Print();
  std::printf("fill-phase DMA/op ~ 1/batch: batches >= 16 beat the paper's\n"
              "0.07/op bound; stable churn needs almost no host traffic\n");
}

// --- B: flag-bit compression ---
void CompressionAblation() {
  std::printf("\n=== Ablation B — flag-bit compression (paper §4 decoder) ===\n");
  TablePrinter table({"workload", "bytes/op_plain", "bytes/op_compressed", "saving_%"});
  struct Scenario {
    const char* name;
    bool same_sizes;
    bool same_values;
  };
  for (const Scenario& s : {Scenario{"uniform sizes+values (graph push)", true, true},
                            Scenario{"uniform sizes, distinct values", true, false},
                            Scenario{"mixed sizes and values", false, false}}) {
    Rng rng(77);
    auto make_op = [&](int i) {
      KvOperation op;
      op.opcode = Opcode::kPut;
      op.key.assign(8, static_cast<uint8_t>(i));
      const size_t len = s.same_sizes ? 16 : 8 + rng.NextBelow(24);
      op.value.assign(len, s.same_values ? 42 : static_cast<uint8_t>(rng.Next()));
      return op;
    };
    size_t plain = 0;
    size_t compressed = 0;
    constexpr int kOps = 2000;
    {
      PacketBuilder builder(1 << 20, false);
      for (int i = 0; i < kOps; i++) {
        builder.Add(make_op(i));
      }
      plain = builder.payload_size();
    }
    {
      Rng reset(77);
      rng = reset;
      PacketBuilder builder(1 << 20, true);
      for (int i = 0; i < kOps; i++) {
        builder.Add(make_op(i));
      }
      compressed = builder.payload_size();
    }
    table.AddRow({s.name, TablePrinter::Num(static_cast<double>(plain) / kOps, 1),
                  TablePrinter::Num(static_cast<double>(compressed) / kOps, 1),
                  TablePrinter::Num(100.0 * (1 - static_cast<double>(compressed) /
                                                     static_cast<double>(plain)),
                                    1)});
  }
  table.Print();
}

// --- C: reservation station capacity ---
void StationCapacityAblation() {
  std::printf("\n=== Ablation C — in-flight capacity (paper: 256 to saturate) ===\n");
  TablePrinter table({"max_inflight", "uniform_GET_Mops"});
  for (uint32_t capacity : {16u, 32u, 64u, 128u, 256u, 512u}) {
    ServerConfig config;
    config.kvs_memory_bytes = 16 * kMiB;
    config.nic_dram.capacity_bytes = 2 * kMiB;
    config.inline_threshold_bytes = 16;
    config.processor.ooo.max_inflight = capacity;
    KvDirectServer server(config);
    WorkloadConfig wl;
    wl.num_keys = 100000;
    YcsbWorkload workload(wl);
    bench::Preload(server, workload, wl.num_keys);
    bench::DriveOptions options;
    options.total_ops = 30000;
    options.pipeline_depth = 1024;
    table.AddRow({TablePrinter::Int(capacity),
                  TablePrinter::Num(bench::Drive(server, workload, options).mops, 1)});
  }
  table.Print();
  std::printf("throughput saturates once in-flight ops cover the PCIe\n"
              "latency-bandwidth product (~64 for reads), with headroom for\n"
              "dependent chains — the paper sizes it at 256\n");
}

// --- D: secondary hash false positives ---
void SecondaryHashAblation() {
  std::printf("\n=== Ablation D — 9-bit secondary hash (paper: 1/512 false hits) ===\n");
  ServerConfig config;
  config.kvs_memory_bytes = 16 * kMiB;
  config.inline_threshold_bytes = 10;  // force non-inline: pointers + 9-bit tags
  config.hash_index_ratio = 0.1;
  KvDirectServer server(config);
  WorkloadConfig wl;
  wl.num_keys = 60000;
  wl.value_bytes = 24;  // 32 B KVs, never inline
  YcsbWorkload workload(wl);
  bench::Preload(server, workload, wl.num_keys);
  // Random GETs; count slab reads whose key comparison failed.
  for (int i = 0; i < 200000; i++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = workload.KeyFor(i % wl.num_keys);
    (void)server.Execute(op);
  }
  const auto& stats = server.index().stats();
  const double rate = static_cast<double>(stats.secondary_false_hits) / 200000;
  std::printf("false-positive slab reads: %llu in 200000 GETs (%.5f per op;\n"
              "expected ~ occupied-slots-per-bucket / 512)\n",
              static_cast<unsigned long long>(stats.secondary_false_hits), rate);
}

}  // namespace
}  // namespace kvd

int main() {
  kvd::SlabBatchAblation();
  kvd::CompressionAblation();
  kvd::StationCapacityAblation();
  kvd::SecondaryHashAblation();
  return 0;
}
