// Figure 14: memory access throughput with the DRAM load dispatcher
// (dispatch ratio 0.5) versus the PCIe-only baseline, for uniform and
// long-tail address streams at 50/95/100% read ratios.
//
// Paper anchors: uniform gains little (the cache covers only ~6% of the
// corpus); long-tail reaches the 180 Mops clock bound at >= 95% reads because
// ~30-60% of accesses are served from NIC DRAM; a pure cache policy would
// *hurt* because NIC DRAM bandwidth (12.8 GB/s) is below PCIe (13.2 GB/s).
#include <cstdio>
#include <functional>

#include "bench/json_report.h"
#include "src/common/hashing.h"
#include "src/common/random.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/common/zipf.h"
#include "src/dram/load_dispatcher.h"
#include "src/dram/nic_dram.h"
#include "src/pcie/dma_engine.h"
#include "src/sim/simulator.h"

namespace kvd {
namespace {

constexpr uint64_t kHostMemory = 1 * kGiB;
constexpr uint64_t kCorpusLines = kHostMemory / 64;

struct Rates {
  double mops;
  double hit_rate;
};

Rates Measure(DispatchPolicy policy, double dispatch_ratio, bool long_tail,
              double read_ratio) {
  Simulator sim;
  DmaEngineConfig pcie_config;
  DmaEngine dma(sim, pcie_config);
  NicDram dram(sim, NicDramConfig{.capacity_bytes = 64 * kMiB});
  LoadDispatcherConfig config;
  config.policy = policy;
  config.dispatch_ratio = dispatch_ratio;
  config.host_memory_bytes = kHostMemory;
  config.nic_dram_bytes = 64 * kMiB;  // 1/16 of host memory, like the paper
  LoadDispatcher dispatcher(sim, dma, dram, config);

  Rng rng(11);
  ZipfGenerator zipf(kCorpusLines, 0.99);
  auto next_address = [&]() -> uint64_t {
    const uint64_t line = long_tail ? zipf.NextScrambled(rng)
                                    : rng.NextBelow(kCorpusLines);
    return line * 64;
  };

  uint64_t completed = 0;
  std::function<void()> refill = [&] {
    completed++;
    const AccessKind kind =
        rng.NextBool(read_ratio) ? AccessKind::kRead : AccessKind::kWrite;
    dispatcher.Access(kind, next_address(), 64, refill);
  };
  for (int i = 0; i < 256; i++) {
    const AccessKind kind =
        rng.NextBool(read_ratio) ? AccessKind::kRead : AccessKind::kWrite;
    dispatcher.Access(kind, next_address(), 64, refill);
  }
  const SimTime horizon = 2 * kMillisecond;
  sim.RunUntil(horizon);
  return {static_cast<double>(completed) / (static_cast<double>(horizon) / kSecond) /
              1e6,
          dispatcher.stats().HitRate()};
}

void Sweep(bool long_tail, bench::JsonReport& report) {
  std::printf("\n--- %s workload ---\n", long_tail ? "long-tail" : "uniform");
  report.BeginSeries(long_tail ? "long_tail" : "uniform");
  TablePrinter table({"read_%", "pcie_only_Mops", "dispatch_l0.5_Mops",
                      "dispatch_tuned_Mops", "best_l", "cache_all_Mops",
                      "hit_rate_%"});
  for (double read_ratio : {0.50, 0.95, 1.00}) {
    const Rates baseline =
        Measure(DispatchPolicy::kPcieOnly, 0, long_tail, read_ratio);
    const Rates hybrid =
        Measure(DispatchPolicy::kHybrid, 0.5, long_tail, read_ratio);
    const Rates cache_all =
        Measure(DispatchPolicy::kCacheAll, 1.0, long_tail, read_ratio);
    // Tune l per cell, as the initialization-time optimizer would (§3.3.4):
    // the balance point shifts with the read ratio because reads are PCIe
    // tag-limited while posted writes are bandwidth-limited.
    Rates best = hybrid;
    double best_l = 0.5;
    for (double l : {0.3, 0.7, 0.8, 0.9}) {
      const Rates candidate = Measure(DispatchPolicy::kHybrid, l, long_tail, read_ratio);
      if (candidate.mops > best.mops) {
        best = candidate;
        best_l = l;
      }
    }
    table.AddRow({TablePrinter::Num(read_ratio * 100, 0),
                  TablePrinter::Num(baseline.mops, 1),
                  TablePrinter::Num(hybrid.mops, 1),
                  TablePrinter::Num(best.mops, 1), TablePrinter::Num(best_l, 1),
                  TablePrinter::Num(cache_all.mops, 1),
                  TablePrinter::Num(hybrid.hit_rate * 100, 1)});
    report.AddRow({{"read_ratio", read_ratio},
                   {"pcie_only_mops", baseline.mops},
                   {"dispatch_0.5_mops", hybrid.mops},
                   {"dispatch_tuned_mops", best.mops},
                   {"best_dispatch_ratio", best_l},
                   {"cache_all_mops", cache_all.mops},
                   {"hit_rate", hybrid.hit_rate}});
  }
  table.Print();
}

}  // namespace
}  // namespace kvd

int main(int argc, char** argv) {
  std::printf(
      "\n=== Figure 14 — DMA throughput with load dispatch (ratio 0.5) ===\n");
  kvd::bench::JsonReport report("fig14_dispatch");
  kvd::Sweep(false, report);
  kvd::Sweep(true, report);
  const bool json_ok =
      report.WriteIfRequested(kvd::bench::JsonPathArg(argc, argv));
  std::printf(
      "\npaper: long-tail 95/100%% reads reach the 180 Mops clock bound;\n"
      "uniform gains are small; pure caching is capped by NIC DRAM bandwidth\n");
  return json_ok ? 0 : 1;
}
