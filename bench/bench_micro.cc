// Wall-clock microbenchmarks of the library's hot paths (google-benchmark).
// These complement the figure benches: they measure the *implementation's*
// speed on this host, not the simulated hardware.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "src/alloc/merger.h"
#include "src/alloc/slab_allocator.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/common/zipf.h"
#include "src/hash/hash_index.h"
#include "src/mem/access_engine.h"
#include "src/mem/host_memory.h"
#include "src/net/wire_format.h"

namespace kvd {
namespace {

std::vector<uint8_t> BmKey(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

struct BmRig {
  HostMemory memory;
  DirectEngine engine;
  SlabAllocator allocator;
  HashIndex index;

  static SlabConfig Slab(const HashIndexConfig& config) {
    const auto regions = config.ComputeRegions();
    SlabConfig slab;
    slab.region_base = regions.heap_base;
    slab.region_size = regions.heap_size;
    return slab;
  }
  explicit BmRig(const HashIndexConfig& config)
      : memory(config.memory_size),
        engine(memory),
        allocator(Slab(config)),
        index(engine, allocator, config) {}
};

HashIndexConfig BmConfig() {
  HashIndexConfig config;
  config.memory_size = 32 * kMiB;
  config.hash_index_ratio = 0.5;
  config.inline_threshold_bytes = 16;
  return config;
}

void BM_HashIndexGetInline(benchmark::State& state) {
  BmRig rig(BmConfig());
  constexpr uint64_t kKeys = 100000;
  const std::vector<uint8_t> value(8, 7);
  for (uint64_t i = 0; i < kKeys; i++) {
    (void)rig.index.Put(BmKey(i), value);
  }
  Rng rng(1);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.index.Get(BmKey(rng.NextBelow(kKeys)), out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HashIndexGetInline);

void BM_HashIndexPutInline(benchmark::State& state) {
  BmRig rig(BmConfig());
  constexpr uint64_t kKeys = 100000;
  const std::vector<uint8_t> value(8, 7);
  for (uint64_t i = 0; i < kKeys; i++) {
    (void)rig.index.Put(BmKey(i), value);
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.index.Put(BmKey(rng.NextBelow(kKeys)), value));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HashIndexPutInline);

void BM_HashIndexGetSlab(benchmark::State& state) {
  BmRig rig(BmConfig());
  constexpr uint64_t kKeys = 20000;
  const std::vector<uint8_t> value(120, 7);
  for (uint64_t i = 0; i < kKeys; i++) {
    (void)rig.index.Put(BmKey(i), value);
  }
  Rng rng(1);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.index.Get(BmKey(rng.NextBelow(kKeys)), out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HashIndexGetSlab);

void BM_SlabAllocateFree(benchmark::State& state) {
  SlabConfig config;
  config.region_size = 16 * kMiB;
  SlabAllocator allocator(config);
  for (auto _ : state) {
    Result<uint64_t> r = allocator.Allocate(100);
    benchmark::DoNotOptimize(r);
    allocator.Free(*r, 100);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SlabAllocateFree);

void BM_PacketEncodeDecode(benchmark::State& state) {
  std::vector<KvOperation> ops;
  for (int i = 0; i < 64; i++) {
    KvOperation op;
    op.opcode = Opcode::kPut;
    op.key = BmKey(i);
    op.value.assign(16, static_cast<uint8_t>(i));
    ops.push_back(std::move(op));
  }
  for (auto _ : state) {
    PacketBuilder builder(8192);
    for (const auto& op : ops) {
      builder.Add(op);
    }
    PacketParser parser(builder.Finish());
    while (true) {
      auto next = parser.Next();
      if (!next.ok() || !next->has_value()) {
        break;
      }
      benchmark::DoNotOptimize(*next);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_PacketEncodeDecode);

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator zipf(1 << 20, 0.99);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.NextScrambled(rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSample);

void BM_RadixSortMerge(benchmark::State& state) {
  Rng rng(3);
  std::vector<uint64_t> offsets;
  for (int i = 0; i < 1 << 16; i++) {
    offsets.push_back(rng.NextBelow(1 << 22) * 32);
  }
  std::sort(offsets.begin(), offsets.end());
  offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());
  RadixSortMerger merger(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(merger.Merge(offsets, 32));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(offsets.size()));
}
BENCHMARK(BM_RadixSortMerge);

}  // namespace
}  // namespace kvd

BENCHMARK_MAIN();
