// Figure 12: execution time of merging free slab slots — allocation-bitmap
// scan versus multi-core radix sort.
//
// The paper merges 4 billion 32 B slots in a 16 GiB region: ~30 s single-core
// and 1.8 s on 32 cores with radix sort, while the bitmap approach is slow
// and does not scale with cores. The two algorithms have different asymptotic
// drivers, which this (scaled) bench separates:
//   - bitmap: O(region slots) scan + one random bit-write per free slab —
//     dominated by cache-thrashing random writes at the paper's 16 GiB scale
//   - radix sort: O(free slabs), parallelizes across cores
// Scenario A (dense): most of the region is free — both see similar volume.
// Scenario B (sparse): few free slabs in a large region — the bitmap still
// pays for the whole region, radix sort only for the free slabs.
// Linear extrapolations to the paper's 4 G slots are printed for reference;
// they understate the bitmap's cost (whose working set would no longer fit
// in any cache).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/alloc/merger.h"
#include "src/common/random.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"

namespace kvd {
namespace {

constexpr uint64_t kSlabBytes = 32;
constexpr uint64_t kPaperSlots = 4ull << 30;

std::vector<uint64_t> MakeFreeOffsets(uint64_t region_size, double free_fraction) {
  const uint64_t total_slots = region_size / kSlabBytes;
  std::vector<uint64_t> offsets;
  offsets.reserve(
      static_cast<size_t>(static_cast<double>(total_slots) * free_fraction));
  Rng rng(2718);
  for (uint64_t slot = 0; slot < total_slots; slot++) {
    if (rng.NextDouble() < free_fraction) {
      offsets.push_back(slot * kSlabBytes);
    }
  }
  // Shuffle: freed slabs arrive in allocation order, not address order.
  for (size_t i = offsets.size() - 1; i > 0; i--) {
    std::swap(offsets[i], offsets[rng.NextBelow(i + 1)]);
  }
  return offsets;
}

double MeasureSeconds(Merger& merger, const std::vector<uint64_t>& offsets) {
  const auto start = std::chrono::steady_clock::now();
  MergeResult result = merger.Merge(offsets, kSlabBytes);
  const auto end = std::chrono::steady_clock::now();
  if (result.merged.size() * 2 + result.unmerged.size() != offsets.size()) {
    std::printf("ERROR: merger lost slots!\n");
  }
  return std::chrono::duration<double>(end - start).count();
}

void Scenario(const char* name, uint64_t region_bytes, double free_fraction) {
  const auto offsets = MakeFreeOffsets(region_bytes, free_fraction);
  std::printf("\n--- %s: %zu free slots in a %llu MiB region ---\n", name,
              offsets.size(),
              static_cast<unsigned long long>(region_bytes / kMiB));
  TablePrinter table(
      {"algorithm", "threads", "seconds", "extrapolated_4G_s", "paper_s"});
  const double scale =
      static_cast<double>(kPaperSlots) / static_cast<double>(offsets.size());

  BitmapMerger bitmap(region_bytes);
  const double bitmap_s = MeasureSeconds(bitmap, offsets);
  table.AddRow({"bitmap", "1", TablePrinter::Num(bitmap_s, 3),
                TablePrinter::Num(bitmap_s * scale, 1), "slow, not scalable"});

  for (unsigned threads : {1u, 2u, 4u}) {
    RadixSortMerger radix(threads);
    const double seconds = MeasureSeconds(radix, offsets);
    std::string paper;
    if (threads == 1) {
      paper = "~30 (1 core)";
    }
    table.AddRow({"radix_sort", TablePrinter::Int(threads),
                  TablePrinter::Num(seconds, 3),
                  TablePrinter::Num(seconds * scale, 1), paper});
  }
  table.Print();
}

}  // namespace
}  // namespace kvd

int main() {
  std::printf("\n=== Figure 12 — merging free slab slots (scaled from 4G) ===\n");
  kvd::Scenario("dense free pool", 256 * kvd::kMiB, 0.6);
  kvd::Scenario("sparse free pool", 1 * kvd::kGiB, 0.02);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf(
      "\nnote: this host has %u hardware thread(s); the paper's 32-core\n"
      "speedup (30 s -> 1.8 s) needs real cores. The sparse scenario shows\n"
      "why the paper prefers radix sort: bitmap cost is fixed by region size\n"
      "while radix sort scales with the free-slot count and with cores.\n",
      hw);
  return 0;
}
