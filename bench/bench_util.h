// Shared helpers for the figure/table regeneration benchmarks.
//
// Every bench binary prints the same rows/series as the corresponding figure
// or table in the paper's evaluation (§5); EXPERIMENTS.md records
// paper-versus-measured values. All simulations are deterministic.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/json_report.h"
#include "src/common/assert.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/core/kv_direct.h"
#include "src/net/wire_format.h"
#include "src/transport/kv_endpoint.h"
#include "src/workload/ycsb.h"

namespace kvd {
namespace bench {

// Preloads `count` keys from the workload into the store (untimed). Returns
// the number actually inserted (stops early on OOM).
inline uint64_t Preload(KvDirectServer& server, const YcsbWorkload& workload,
                        uint64_t count) {
  for (uint64_t id = 0; id < count; id++) {
    const KvOperation op = workload.LoadOpFor(id);
    if (!server.Load(op.key, op.value).ok()) {
      return id;
    }
  }
  return count;
}

struct DriveOptions {
  uint64_t total_ops = 50000;
  uint32_t pipeline_depth = 512;  // ops kept outstanding (closed loop)
  bool use_network = false;       // wrap ops in packets over the 40 GbE model
  uint32_t ops_per_packet = 40;   // network mode: client-side batch size
  uint32_t packet_payload = 4096;
};

struct DriveResult {
  double mops = 0;          // sustained throughput in simulated time
  double elapsed_us = 0;
  LatencyHistogram latency_ns;  // per-operation (submit -> result)
};

// Closed-loop packetized driver over any KvEndpoint that supports the raw
// datagram path (KvEndpoint::SubmitPacket): keeps pipeline_depth /
// ops_per_packet packets outstanding until `total_ops` operations retire.
// Topology-agnostic — the endpoint decides what a packet round trip means.
inline DriveResult DriveEndpoint(KvEndpoint& ep, YcsbWorkload& workload,
                                 const DriveOptions& options) {
  DriveResult result;
  const SimTime start = ep.now();
  uint64_t submitted = 0;
  uint64_t completed = 0;
  const uint32_t packets_outstanding_target =
      std::max<uint32_t>(1, options.pipeline_depth / options.ops_per_packet);
  std::function<void()> send_packet = [&] {
    if (submitted >= options.total_ops) {
      return;
    }
    PacketBuilder builder(options.packet_payload);
    uint32_t in_packet = 0;
    while (in_packet < options.ops_per_packet && submitted < options.total_ops) {
      const KvOperation op = workload.NextOp();
      if (!builder.Add(op)) {
        break;
      }
      in_packet++;
      submitted++;
    }
    const SimTime issued = ep.now();
    KVD_CHECK_MSG(ep.SubmitPacket(builder.Finish(),
                                  [&, issued, in_packet] {
                                    completed += in_packet;
                                    result.latency_ns.Add((ep.now() - issued) /
                                                          kNanosecond);
                                    send_packet();
                                  }),
                  "endpoint does not support the raw datagram path");
  };
  for (uint32_t i = 0; i < packets_outstanding_target; i++) {
    send_packet();
  }
  while (completed < options.total_ops && ep.Step()) {
  }
  result.elapsed_us = static_cast<double>(ep.now() - start) / kMicrosecond;
  result.mops = static_cast<double>(completed) / result.elapsed_us;
  return result;
}

// Closed-batch driver over any KvEndpoint: issues `total_ops` operations from
// `next_op` in batches of `batch`, flushing each batch to completion through
// the endpoint's own reliability/topology. Returns elapsed simulated time.
inline SimTime DriveBatches(KvEndpoint& ep, uint64_t total_ops, uint64_t batch,
                            const std::function<KvOperation()>& next_op) {
  const SimTime start = ep.now();
  for (uint64_t issued = 0; issued < total_ops;) {
    for (uint64_t i = 0; i < batch && issued < total_ops; i++, issued++) {
      ep.Enqueue(next_op());
    }
    ep.Flush();
  }
  return ep.now() - start;
}

// Closed-loop throughput measurement: keeps `pipeline_depth` operations (or
// the equivalent number of packets) outstanding until `total_ops` retire.
inline DriveResult Drive(KvDirectServer& server, YcsbWorkload& workload,
                         const DriveOptions& options) {
  if (options.use_network) {
    // Network mode wraps ops in packets over the 40 GbE model: exactly the
    // endpoint driver over a single-server client's raw datagram path.
    Client client(server);
    return DriveEndpoint(client, workload, options);
  }

  Simulator& sim = server.simulator();
  DriveResult result;
  const SimTime start = sim.Now();
  uint64_t submitted = 0;
  uint64_t completed = 0;

  std::function<void()> submit_one = [&] {
    if (submitted >= options.total_ops) {
      return;
    }
    submitted++;
    const SimTime issued = sim.Now();
    server.Submit(workload.NextOp(), [&, issued](KvResultMessage) {
      completed++;
      result.latency_ns.Add((sim.Now() - issued) / kNanosecond);
      submit_one();
    });
  };
  for (uint32_t i = 0; i < options.pipeline_depth; i++) {
    submit_one();
  }
  while (completed < options.total_ops && sim.Step()) {
  }

  result.elapsed_us = static_cast<double>(sim.Now() - start) / kMicrosecond;
  result.mops = static_cast<double>(completed) / result.elapsed_us;
  return result;
}

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("\n=== %s — %s ===\n", figure, description);
}

// One JSON row from sweep parameters plus a DriveResult's throughput and
// latency percentiles (the record shape EXPERIMENTS.md documents).
inline void AddDriveRow(JsonReport& report, JsonReport::Fields fields,
                        const DriveResult& result) {
  fields.emplace_back("mops", result.mops);
  fields.emplace_back("elapsed_us", result.elapsed_us);
  fields.emplace_back("latency_mean_ns", result.latency_ns.mean());
  fields.emplace_back("latency_p50_ns",
                      static_cast<double>(result.latency_ns.Percentile(0.50)));
  fields.emplace_back("latency_p95_ns",
                      static_cast<double>(result.latency_ns.Percentile(0.95)));
  fields.emplace_back("latency_p99_ns",
                      static_cast<double>(result.latency_ns.Percentile(0.99)));
  report.AddRow(std::move(fields));
}

}  // namespace bench
}  // namespace kvd

#endif  // BENCH_BENCH_UTIL_H_
