// Overload control and graceful degradation (DESIGN.md §12).
//
// Three scenarios, each with an acceptance bar the binary enforces (non-zero
// exit on violation):
//
//   1. Open-loop overload sweep: arrivals at 0.5x-3x of the server's
//      calibrated closed-loop capacity, every op carrying a 1 ms deadline,
//      with the full admission ladder enabled (kOverloaded fast-reject,
//      CoDel sojourn shedding, priority classes). Goodput — ops answered kOk
//      within their deadline — must stay at >= 80% of its peak even at 3x
//      offered load; without shedding it would collapse toward zero as every
//      admitted op inherits the standing queue's sojourn time.
//   2. Retry storm: a hard partition between one client and the server while
//      the client retransmits aggressively. The token-bucket retry budget
//      must bound amplification at <= 2x (the unbudgeted client amplifies
//      ~max_attempts x), and the client must recover cleanly once the
//      partition heals.
//   3. Gray backup: an RF-3 group with quorum 3 whose third replica's
//      inbound replication link turns gray (20x latency, 90% loss). The
//      primary must demote it out of the commit quorum within the grace
//      window, keeping p99 write latency within 2x of the healthy baseline,
//      and reinstate it after the link heals and the peer stays caught up.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_report.h"
#include "src/common/random.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/core/kv_direct.h"
#include "src/replica/replicated_client.h"
#include "src/replica/replication_group.h"
#include "src/transport/frame.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

// --- Scenario 1: open-loop sweep across the capacity knee ---

struct SweepPoint {
  double multiplier = 0;      // offered load / calibrated capacity
  double offered_mops = 0;
  double goodput_mops = 0;    // kOk within deadline
  uint64_t good_ops = 0;
  uint64_t deadline_missed = 0;  // answered kOk but past the deadline
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;        // over good ops only
  uint64_t busy_rejected = 0;
  uint64_t overload_rejected = 0;
  uint64_t codel_shed = 0;
  uint64_t deadline_shed = 0;  // arrival + queue + retire sheds
};

ServerConfig SweepServerConfig() {
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  // The degradation ladder: fast-reject ceiling + CoDel sojourn control +
  // priority classes. max_backlog stays 0 — under open-loop load a kBusy
  // bounce is just a slower reject, so the ceiling does the bounding.
  config.processor.admission.overload_backlog = 4096;
  config.processor.admission.codel_target = 100 * kMicrosecond;
  config.processor.admission.codel_interval = 100 * kMicrosecond;
  config.processor.admission.class_queues = true;
  return config;
}

// Closed-loop capacity of the sweep server (no network, deep pipeline): the
// x-axis calibration for the open-loop multipliers.
double CalibrateCapacityMops(uint64_t seed) {
  ServerConfig config = SweepServerConfig();
  KvDirectServer server(config);
  WorkloadConfig wl;
  wl.num_keys = 256;
  wl.get_ratio = 0.5;
  wl.seed = seed;
  YcsbWorkload workload(wl);
  bench::Preload(server, workload, wl.num_keys);
  bench::DriveOptions options;
  options.total_ops = 20000;
  return bench::Drive(server, workload, options).mops;
}

SweepPoint RunSweepPoint(double multiplier, double capacity_mops,
                         uint64_t seed) {
  ServerConfig config = SweepServerConfig();
  KvDirectServer server(config);
  Simulator& sim = server.simulator();

  constexpr uint64_t kKeys = 256;
  for (uint64_t k = 0; k < kKeys; k++) {
    if (!server.Load(Key(k), U64Value(k)).ok()) {
      std::fprintf(stderr, "preload failed\n");
      return {};
    }
  }

  constexpr uint64_t kOps = 24000;
  constexpr uint32_t kOpsPerFrame = 8;
  constexpr SimTime kOpBudget = 1 * kMillisecond;
  const uint64_t frames = kOps / kOpsPerFrame;
  // Open loop: frame arrivals at fixed interarrival regardless of responses.
  const double offered_mops = multiplier * capacity_mops;
  const SimTime interarrival = static_cast<SimTime>(
      static_cast<double>(kOpsPerFrame) / offered_mops * kMicrosecond);

  Rng mix(seed ^ 0x0ae10ad);
  const uint64_t seq_base = server.AcquireClientSequenceBase();
  const SimTime start = sim.Now();
  uint64_t responded = 0;
  uint64_t good = 0;
  uint64_t late_ok = 0;
  LatencyHistogram good_latency_ns;
  for (uint64_t f = 0; f < frames; f++) {
    const SimTime arrival = start + f * interarrival;
    const SimTime deadline = arrival + kOpBudget;
    PacketBuilder builder(4096);
    for (uint32_t i = 0; i < kOpsPerFrame; i++) {
      KvOperation op;
      op.key = Key(mix.NextBelow(kKeys));
      op.deadline = deadline;
      if (mix.NextDouble() < 0.5) {
        op.opcode = Opcode::kGet;
      } else {
        op.opcode = Opcode::kPut;
        op.value = U64Value(mix.Next());
      }
      builder.Add(op);
    }
    std::vector<uint8_t> framed = FramePacket(seq_base + f + 1, builder.Finish());
    sim.ScheduleAt(arrival, [&, framed = std::move(framed), arrival, deadline] {
      server.DeliverFrame(framed, [&, arrival, deadline](std::vector<uint8_t> response) {
        responded++;
        Result<Frame> frame = ParseFrame(response);
        if (!frame.ok()) {
          return;
        }
        Result<std::vector<KvResultMessage>> results =
            DecodeResults(frame.value().payload);
        if (!results.ok()) {
          return;
        }
        for (const KvResultMessage& r : results.value()) {
          if (r.code != ResultCode::kOk) {
            continue;
          }
          if (sim.Now() > deadline) {
            late_ok++;  // answered, but the client already gave up
            continue;
          }
          good++;
          good_latency_ns.Add((sim.Now() - arrival) / kNanosecond);
        }
      });
    });
  }
  while (responded < frames && sim.Step()) {
  }

  SweepPoint point;
  point.multiplier = multiplier;
  point.offered_mops = offered_mops;
  point.good_ops = good;
  point.deadline_missed = late_ok;
  const SimTime elapsed = sim.Now() - start;
  point.goodput_mops =
      elapsed > 0 ? static_cast<double>(good) * 1e6 / static_cast<double>(elapsed)
                  : 0.0;
  point.p50_ns = good_latency_ns.Percentile(0.50);
  point.p99_ns = good_latency_ns.Percentile(0.99);
  const AdmissionStats& adm = server.processor().admission_stats();
  point.busy_rejected = adm.busy_rejected;
  point.overload_rejected = adm.overload_rejected;
  point.codel_shed = adm.codel_shed;
  point.deadline_shed = adm.deadline_shed_arrival + adm.deadline_shed_queue +
                        server.processor().stats().deadline_retire_shed;
  return point;
}

// --- Scenario 2: retry storm across a partition ---

struct StormPoint {
  uint32_t retry_budget = 0;      // 0 = unbudgeted client
  uint64_t packets = 0;           // distinct frames during the partition
  uint64_t retransmits = 0;
  double amplification = 0;       // (packets + retransmits) / packets
  uint64_t budget_exhausted = 0;  // packets failed by an empty token bucket
  uint64_t recovered_ok = 0;      // ops answered kOk after the heal
};

StormPoint RunStorm(uint32_t retry_budget, uint64_t seed) {
  ServerConfig config;
  config.kvs_memory_bytes = 4 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  KvDirectServer server(config);

  constexpr uint64_t kKeys = 64;
  for (uint64_t k = 0; k < kKeys; k++) {
    if (!server.Load(Key(k), U64Value(k)).ok()) {
      std::fprintf(stderr, "preload failed\n");
      return {};
    }
  }

  Client::Options options;
  options.max_ops_per_packet = 1;  // one frame per op: a worst-case storm
  options.retry.timeout = 20 * kMicrosecond;
  options.retry.max_attempts = 12;
  options.retry.retry_budget = retry_budget;
  Client client(server, options);
  (void)seed;

  // Hard partition of the client->server direction: every request frame is
  // lost, every packet's retry timer fires to exhaustion.
  server.network().SetPartitioned(/*to_server=*/true, true);
  for (uint64_t k = 0; k < kKeys; k++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(k);
    client.Enqueue(std::move(op));
  }
  client.Flush();  // every op fails; what we meter is how loudly

  StormPoint point;
  point.retry_budget = retry_budget;
  point.packets = client.stats().packets_sent;
  point.retransmits = client.stats().retransmits;
  point.amplification =
      point.packets > 0
          ? static_cast<double>(point.packets + point.retransmits) /
                static_cast<double>(point.packets)
          : 1.0;
  point.budget_exhausted = client.stats().budget_exhausted;

  // Heal and re-issue: first transmissions are never budget-gated and
  // successes refill the bucket, so recovery must be clean.
  server.network().SetPartitioned(/*to_server=*/true, false);
  for (uint64_t k = 0; k < kKeys; k++) {
    KvOperation op;
    op.opcode = Opcode::kGet;
    op.key = Key(k);
    client.Enqueue(std::move(op));
  }
  for (const KvResultMessage& r : client.Flush()) {
    if (r.code == ResultCode::kOk) {
      point.recovered_ok++;
    }
  }
  return point;
}

// --- Scenario 3: gray backup demotion ---

struct GrayPoint {
  uint64_t healthy_p50_ns = 0;
  uint64_t healthy_p99_ns = 0;
  uint64_t gray_p50_ns = 0;
  uint64_t gray_p99_ns = 0;
  double p99_ratio = 0;  // gray / healthy
  uint64_t demotions = 0;
  uint64_t reinstatements = 0;
  uint64_t writes_ok = 0;
};

GrayPoint RunGrayBackup(uint64_t seed) {
  ReplicationConfig config;
  config.num_replicas = 3;
  config.quorum = 3;  // full quorum: a gray peer stalls every commit
  config.server.kvs_memory_bytes = 4 * kMiB;
  config.server.nic_dram.capacity_bytes = 1 * kMiB;
  config.demote_lag_entries = 64;
  config.demote_grace = 600 * kMicrosecond;
  // The gray link drops the peer's *inbound* heartbeats, but its own election
  // messages travel over the healthy peers' inbound links — keep the failure
  // detector far out of range so the scenario measures demotion, not a
  // spurious election.
  config.failure_timeout = 50 * kMillisecond;
  ReplicationGroup group(config);
  ReplicatedClient client(group);
  Simulator& sim = group.simulator();

  constexpr uint64_t kWritesPerPhase = 1000;
  GrayPoint point;
  Rng mix(seed ^ 0x96a7);
  uint64_t next_key = 0;
  const auto run_phase = [&](LatencyHistogram& latency) {
    for (uint64_t i = 0; i < kWritesPerPhase; i++) {
      KvOperation op;
      op.opcode = Opcode::kPut;
      op.key = Key(next_key++ % 512);
      op.value = U64Value(mix.Next());
      client.Enqueue(std::move(op));
      const SimTime before = sim.Now();
      for (const KvResultMessage& r : client.Flush()) {
        if (r.code == ResultCode::kOk) {
          point.writes_ok++;
        }
      }
      latency.Add((sim.Now() - before) / kNanosecond);
    }
  };

  LatencyHistogram healthy_ns;
  run_phase(healthy_ns);

  // Replica 2's inbound replication link turns gray: 20x propagation latency
  // and 90% loss. Appends mostly vanish, acks stall, and with quorum 3 every
  // write waits on the gray peer until the primary demotes it.
  group.replication_network(2).SetGrayLink(/*to_server=*/true,
                                           /*latency_multiplier=*/20.0,
                                           /*loss_probability=*/0.9, seed);
  LatencyHistogram gray_ns;
  run_phase(gray_ns);

  point.healthy_p50_ns = healthy_ns.Percentile(0.50);
  point.healthy_p99_ns = healthy_ns.Percentile(0.99);
  point.gray_p50_ns = gray_ns.Percentile(0.50);
  point.gray_p99_ns = gray_ns.Percentile(0.99);
  point.p99_ratio = point.healthy_p99_ns > 0
                        ? static_cast<double>(point.gray_p99_ns) /
                              static_cast<double>(point.healthy_p99_ns)
                        : 0.0;
  point.demotions = group.stats().gray_demotions;

  // Heal the link and idle the group: the peer catches up via heartbeat
  // retransmission, stays caught up through the hysteresis window, and is
  // reinstated into the commit quorum.
  group.replication_network(2).SetGrayLink(/*to_server=*/true, 1.0, 0.0);
  sim.RunUntil(sim.Now() + 10 * kMillisecond);
  point.reinstatements = group.stats().gray_reinstatements;
  return point;
}

}  // namespace
}  // namespace kvd

int main(int argc, char** argv) {
  using kvd::TablePrinter;
  const bool golden = kvd::bench::GoldenArg(argc, argv);
  kvd::bench::JsonReport report("overload");
  bool ok = true;

  // --- open-loop sweep ---
  std::printf("\n=== Overload — open-loop goodput across the capacity knee ===\n");
  std::printf("(offered load as a multiple of calibrated closed-loop capacity;\n"
              " 1 ms op deadlines; kOverloaded fast-reject + CoDel shedding;\n"
              " goodput counts kOk answers within deadline)\n\n");
  const double capacity = kvd::CalibrateCapacityMops(/*seed=*/2026);
  report.BeginSeries("overload_sweep");
  TablePrinter sweep_table({"multiplier", "offered_Mops", "goodput_Mops",
                            "good_ops", "p50_us", "p99_us", "overload_rej",
                            "codel_shed", "deadline_shed"});
  const std::vector<double> multipliers =
      golden ? std::vector<double>{1.0, 3.0}
             : std::vector<double>{0.5, 1.0, 1.5, 2.0, 2.5, 3.0};
  std::vector<kvd::SweepPoint> sweep;
  for (const double m : multipliers) {
    const kvd::SweepPoint p = kvd::RunSweepPoint(m, capacity, /*seed=*/2026);
    sweep.push_back(p);
    sweep_table.AddRow({TablePrinter::Num(p.multiplier, 1),
                        TablePrinter::Num(p.offered_mops, 2),
                        TablePrinter::Num(p.goodput_mops, 2),
                        TablePrinter::Int(p.good_ops),
                        TablePrinter::Num(static_cast<double>(p.p50_ns) / 1e3, 1),
                        TablePrinter::Num(static_cast<double>(p.p99_ns) / 1e3, 1),
                        TablePrinter::Int(p.overload_rejected),
                        TablePrinter::Int(p.codel_shed),
                        TablePrinter::Int(p.deadline_shed)});
    report.AddRow({{"multiplier", p.multiplier},
                   {"offered_mops", p.offered_mops},
                   {"goodput_mops", p.goodput_mops},
                   {"good_ops", static_cast<double>(p.good_ops)},
                   {"deadline_missed", static_cast<double>(p.deadline_missed)},
                   {"p50_ns", static_cast<double>(p.p50_ns)},
                   {"p99_ns", static_cast<double>(p.p99_ns)},
                   {"busy_rejected", static_cast<double>(p.busy_rejected)},
                   {"overload_rejected", static_cast<double>(p.overload_rejected)},
                   {"codel_shed", static_cast<double>(p.codel_shed)},
                   {"deadline_shed", static_cast<double>(p.deadline_shed)}});
  }
  sweep_table.Print();
  double peak_goodput = 0;
  for (const kvd::SweepPoint& p : sweep) {
    peak_goodput = std::max(peak_goodput, p.goodput_mops);
  }
  const kvd::SweepPoint& overloaded = sweep.back();
  const bool sweep_ok = overloaded.goodput_mops >= 0.8 * peak_goodput;
  std::printf("calibrated capacity: %.2f Mops; goodput at %.1fx: %.2f Mops "
              "(>= 80%% of %.2f peak: %s)\n",
              capacity, overloaded.multiplier, overloaded.goodput_mops,
              peak_goodput, sweep_ok ? "yes" : "NO");
  ok = ok && sweep_ok;

  // --- retry storm ---
  std::printf("\n=== Overload — retry storm across a hard partition ===\n");
  std::printf("(64 single-op frames, 20 us timeout, 12 attempts; the token\n"
              " bucket bounds retransmissions; the unbudgeted client shows\n"
              " the storm it prevents)\n\n");
  report.BeginSeries("retry_storm");
  TablePrinter storm_table({"budget", "packets", "retransmits", "amplification",
                            "budget_exhausted", "recovered_ok"});
  bool storm_ok = true;
  kvd::StormPoint budgeted;
  for (const uint32_t budget : {32u, 0u}) {
    const kvd::StormPoint p = kvd::RunStorm(budget, /*seed=*/2026);
    if (budget != 0) {
      budgeted = p;
    }
    storm_table.AddRow({TablePrinter::Int(p.retry_budget),
                        TablePrinter::Int(p.packets),
                        TablePrinter::Int(p.retransmits),
                        TablePrinter::Num(p.amplification, 3),
                        TablePrinter::Int(p.budget_exhausted),
                        TablePrinter::Int(p.recovered_ok)});
    report.AddRow({{"retry_budget", static_cast<double>(p.retry_budget)},
                   {"packets", static_cast<double>(p.packets)},
                   {"retransmits", static_cast<double>(p.retransmits)},
                   {"amplification", p.amplification},
                   {"budget_exhausted", static_cast<double>(p.budget_exhausted)},
                   {"recovered_ok", static_cast<double>(p.recovered_ok)}});
    storm_ok = storm_ok && p.recovered_ok == 64;
  }
  storm_table.Print();
  storm_ok = storm_ok && budgeted.amplification <= 2.0 &&
             budgeted.retransmits <= budgeted.retry_budget &&
             budgeted.budget_exhausted > 0;
  std::printf("budgeted amplification %.3f (<= 2.0: %s), recovery clean: %s\n",
              budgeted.amplification, budgeted.amplification <= 2.0 ? "yes" : "NO",
              storm_ok ? "yes" : "NO");
  ok = ok && storm_ok;

  // --- gray backup ---
  std::printf("\n=== Overload — gray backup demoted out of the commit quorum ===\n");
  std::printf("(RF 3, quorum 3; replica 2's inbound replication link at 20x\n"
              " latency / 90%% loss; 1000 sequential puts per phase)\n\n");
  report.BeginSeries("gray_backup");
  const kvd::GrayPoint g = kvd::RunGrayBackup(/*seed=*/2026);
  TablePrinter gray_table({"healthy_p50_us", "healthy_p99_us", "gray_p50_us",
                           "gray_p99_us", "p99_ratio", "demotions",
                           "reinstatements"});
  gray_table.AddRow(
      {TablePrinter::Num(static_cast<double>(g.healthy_p50_ns) / 1e3, 1),
       TablePrinter::Num(static_cast<double>(g.healthy_p99_ns) / 1e3, 1),
       TablePrinter::Num(static_cast<double>(g.gray_p50_ns) / 1e3, 1),
       TablePrinter::Num(static_cast<double>(g.gray_p99_ns) / 1e3, 1),
       TablePrinter::Num(g.p99_ratio, 3), TablePrinter::Int(g.demotions),
       TablePrinter::Int(g.reinstatements)});
  gray_table.Print();
  report.AddRow({{"healthy_p50_ns", static_cast<double>(g.healthy_p50_ns)},
                 {"healthy_p99_ns", static_cast<double>(g.healthy_p99_ns)},
                 {"gray_p50_ns", static_cast<double>(g.gray_p50_ns)},
                 {"gray_p99_ns", static_cast<double>(g.gray_p99_ns)},
                 {"p99_ratio", g.p99_ratio},
                 {"demotions", static_cast<double>(g.demotions)},
                 {"reinstatements", static_cast<double>(g.reinstatements)},
                 {"writes_ok", static_cast<double>(g.writes_ok)}});
  const bool gray_ok = g.p99_ratio <= 2.0 && g.demotions >= 1 &&
                       g.reinstatements >= 1 && g.writes_ok == 2000;
  std::printf("gray p99 within 2x of healthy: %s; demoted: %llu; "
              "reinstated: %llu\n",
              g.p99_ratio <= 2.0 ? "yes" : "NO",
              static_cast<unsigned long long>(g.demotions),
              static_cast<unsigned long long>(g.reinstatements));
  ok = ok && gray_ok;

  if (!report.WriteIfRequested(kvd::bench::JsonPathArg(argc, argv))) {
    return 1;
  }
  std::printf("\noverload acceptance: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
