// Figure 13: effectiveness of the out-of-order execution engine.
//   (a) atomics throughput versus number of keys: KV-Direct with and without
//       out-of-order execution, against one-/two-sided RDMA baselines
//   (b) long-tail (Zipf 0.99) workload throughput versus PUT ratio, with and
//       without out-of-order execution
//
// Paper anchors: single-key atomics 0.94 Mops stalled -> 180 Mops with the
// engine (191x, the clock bound); without the engine long-tail throughput
// collapses as the PUT ratio grows because hot-key conflicts stall the
// pipeline.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/analytic_models.h"
#include "src/common/table_printer.h"

namespace kvd {
namespace {

ServerConfig BenchServerConfig(bool enable_ooo) {
  ServerConfig config;
  config.kvs_memory_bytes = 16 * kMiB;
  config.nic_dram.capacity_bytes = 2 * kMiB;
  config.processor.ooo.enable_out_of_order = enable_ooo;
  config.inline_threshold_bytes = 16;  // the 8 B key + 8 B counter KVs inline
  return config;
}

double AtomicsMops(bool enable_ooo, uint64_t num_keys, uint64_t total_ops) {
  KvDirectServer server(BenchServerConfig(enable_ooo));
  WorkloadConfig wl;
  wl.num_keys = num_keys;
  YcsbWorkload workload(wl);
  bench::Preload(server, workload, num_keys);

  Simulator& sim = server.simulator();
  uint64_t submitted = 0;
  uint64_t completed = 0;
  Rng rng(5);
  std::function<void()> submit_one = [&] {
    if (submitted >= total_ops) {
      return;
    }
    submitted++;
    KvOperation op;
    op.opcode = Opcode::kUpdateScalar;
    op.key = workload.KeyFor(rng.NextBelow(num_keys));
    op.param = 1;
    op.function_id = kFnAddU64;
    server.Submit(std::move(op), [&](KvResultMessage) {
      completed++;
      submit_one();
    });
  };
  const SimTime start = sim.Now();
  for (int i = 0; i < 512; i++) {
    submit_one();
  }
  while (completed < total_ops && sim.Step()) {
  }
  const double elapsed_s = static_cast<double>(sim.Now() - start) / kSecond;
  return static_cast<double>(completed) / elapsed_s / 1e6;
}

void Fig13aAtomics(bench::JsonReport& report) {
  std::printf("\n=== Figure 13a — atomics throughput vs number of keys ===\n");
  report.BeginSeries("atomics_vs_keys");
  RdmaKvsModel rdma;
  TablePrinter table({"keys", "with_OoO_Mops", "without_OoO_Mops",
                      "one_sided_RDMA", "two_sided_RDMA"});
  for (uint64_t keys : {1ull, 4ull, 16ull, 64ull, 256ull, 1024ull}) {
    // Fewer ops for the stalled runs: each op costs a full PCIe round trip.
    const double with_ooo = AtomicsMops(true, keys, 40000);
    const double without_ooo = AtomicsMops(false, keys, 4000);
    table.AddRow({TablePrinter::Int(keys), TablePrinter::Num(with_ooo, 1),
                  TablePrinter::Num(without_ooo, 2),
                  TablePrinter::Num(rdma.OneSidedAtomicsMops(keys), 2),
                  TablePrinter::Num(rdma.TwoSidedAtomicsMops(keys), 2)});
    report.AddRow({{"keys", static_cast<double>(keys)},
                   {"with_ooo_mops", with_ooo},
                   {"without_ooo_mops", without_ooo},
                   {"one_sided_rdma_mops", rdma.OneSidedAtomicsMops(keys)},
                   {"two_sided_rdma_mops", rdma.TwoSidedAtomicsMops(keys)}});
  }
  table.Print();
  std::printf(
      "paper: 0.94 Mops single-key stalled vs 180 Mops with OoO (191x);\n"
      "RDMA baselines scale linearly with keys but stay far below KV-Direct\n");
}

double LongTailMops(bool enable_ooo, double put_ratio) {
  KvDirectServer server(BenchServerConfig(enable_ooo));
  WorkloadConfig wl;
  wl.num_keys = 50000;
  wl.value_bytes = 8;
  wl.get_ratio = 1.0 - put_ratio;
  wl.distribution = KeyDistribution::kLongTail;
  YcsbWorkload workload(wl);
  bench::Preload(server, workload, wl.num_keys);
  bench::DriveOptions options;
  options.total_ops = enable_ooo ? 40000 : 8000;
  return bench::Drive(server, workload, options).mops;
}

void Fig13bLongTail(bench::JsonReport& report) {
  std::printf("\n=== Figure 13b — long-tail throughput vs PUT ratio ===\n");
  report.BeginSeries("longtail_vs_put_ratio");
  TablePrinter table({"put_ratio_%", "with_OoO_Mops", "without_OoO_Mops"});
  for (double put_ratio : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const double with_ooo = LongTailMops(true, put_ratio);
    const double without_ooo = LongTailMops(false, put_ratio);
    table.AddRow({TablePrinter::Num(put_ratio * 100, 0),
                  TablePrinter::Num(with_ooo, 1),
                  TablePrinter::Num(without_ooo, 1)});
    report.AddRow({{"put_ratio", put_ratio},
                   {"with_ooo_mops", with_ooo},
                   {"without_ooo_mops", without_ooo}});
  }
  table.Print();
  std::printf(
      "paper: with OoO throughput stays high at all PUT ratios; without it,\n"
      "stalls on popular keys degrade throughput as PUTs grow\n");
}

}  // namespace
}  // namespace kvd

int main(int argc, char** argv) {
  kvd::bench::JsonReport report("fig13_ooo");
  kvd::Fig13aAtomics(report);
  kvd::Fig13bLongTail(report);
  return report.WriteIfRequested(kvd::bench::JsonPathArg(argc, argv)) ? 0 : 1;
}
