// Chaos soak: goodput and retry amplification under injected faults.
//
// Sweeps the packet-loss rate with duplication, corruption, transient PCIe
// completion errors, and NIC DRAM bit flips enabled simultaneously, drives a
// YCSB-A-style counter workload through the reliable client, and verifies
// exactly-once semantics at every point: each fetch-and-add applied exactly
// once despite retransmissions and server-side replay.
//
// Columns: goodput (Mops of retired operations), retry amplification
// (transmitted frames / distinct frames), retransmits, server replay-cache
// hits, dropped/corrupted wire packets, ECC corrections, and uncorrectable
// demotions to host memory.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_report.h"
#include "src/common/random.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/core/kv_direct.h"
#include "src/fault/fault_injector.h"

namespace kvd {
namespace {

std::vector<uint8_t> Key(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

uint64_t AsU64(const std::vector<uint8_t>& value) {
  uint64_t v = 0;
  std::memcpy(&v, value.data(), std::min<size_t>(8, value.size()));
  return v;
}

struct ChaosPoint {
  double loss_percent;
  double goodput_mops;
  double amplification;  // (packets_sent + retransmits) / packets_sent
  uint64_t retransmits;
  uint64_t replayed;          // server replay-cache hits
  uint64_t dropped;           // wire packets lost
  uint64_t corrupted;         // wire packets with flipped bits
  uint64_t ecc_corrected;     // DRAM words fixed by ECC
  uint64_t ecc_demotions;     // uncorrectable lines re-read from host
  bool exactly_once;          // every update applied exactly once
};

ChaosPoint Run(double loss, uint64_t seed) {
  ServerConfig config;
  config.kvs_memory_bytes = 8 * kMiB;
  config.nic_dram.capacity_bytes = 1 * kMiB;
  config.faults.seed = seed;
  config.faults.at(FaultSite::kNetDropToServer) = loss;
  config.faults.at(FaultSite::kNetDropToClient) = loss;
  config.faults.at(FaultSite::kNetDuplicateToServer) = loss / 2;
  config.faults.at(FaultSite::kNetDuplicateToClient) = loss / 2;
  config.faults.at(FaultSite::kNetCorruptToServer) = loss / 2;
  config.faults.at(FaultSite::kNetCorruptToClient) = loss / 2;
  config.faults.at(FaultSite::kPcieReadCompletion) = 0.01;
  config.faults.at(FaultSite::kPcieWriteCompletion) = 0.005;
  config.faults.at(FaultSite::kDramCorrectableFlip) = 0.05;
  config.faults.at(FaultSite::kDramUncorrectableFlip) = 0.01;
  KvDirectServer server(config);

  constexpr uint64_t kKeys = 128;
  for (uint64_t k = 0; k < kKeys; k++) {
    if (!server.Load(Key(k), U64Value(0)).ok()) {
      std::fprintf(stderr, "preload failed\n");
      return {};
    }
  }

  Client::Options options;
  options.retry.timeout = 100 * kMicrosecond;
  options.max_ops_per_packet = 16;
  Client client(server, options);
  KvEndpoint& ep = client;  // the driver sees only the endpoint interface

  Rng mix(seed ^ 0xc4a05);
  std::vector<uint64_t> expected(kKeys, 0);
  constexpr uint64_t kOps = 20000;
  constexpr uint64_t kBatch = 200;
  const SimTime elapsed = bench::DriveBatches(ep, kOps, kBatch, [&] {
    const uint64_t k = mix.NextBelow(kKeys);
    KvOperation op;
    op.key = Key(k);
    if (mix.NextDouble() < 0.5) {
      op.opcode = Opcode::kGet;
    } else {
      op.opcode = Opcode::kUpdateScalar;
      op.param = 1;
      expected[k] += 1;
    }
    return op;
  });

  ChaosPoint point;
  point.loss_percent = loss * 100.0;
  point.goodput_mops =
      elapsed > 0 ? static_cast<double>(kOps) * 1e6 / static_cast<double>(elapsed) : 0.0;
  const ReliableSender::Stats stats = ep.endpoint_stats();
  point.amplification =
      stats.packets_sent > 0
          ? static_cast<double>(stats.packets_sent + stats.retransmits) /
                static_cast<double>(stats.packets_sent)
          : 1.0;
  point.retransmits = stats.retransmits;
  point.replayed = server.replayed_responses();
  point.dropped = server.network().packets_dropped();
  point.corrupted = server.network().packets_corrupted();
  point.ecc_corrected = server.nic_dram().ecc_corrected_words();
  point.ecc_demotions = server.dispatcher().stats().ecc_demotions;
  point.exactly_once = true;
  for (uint64_t k = 0; k < kKeys; k++) {
    KvOperation probe;
    probe.opcode = Opcode::kGet;
    probe.key = Key(k);
    ep.Enqueue(std::move(probe));
    const std::vector<KvResultMessage> got = ep.Flush();
    if (got.size() != 1 || got[0].code != ResultCode::kOk ||
        AsU64(got[0].value) != expected[k]) {
      point.exactly_once = false;
    }
  }
  return point;
}

}  // namespace
}  // namespace kvd

int main(int argc, char** argv) {
  using kvd::TablePrinter;
  std::printf("\n=== Chaos soak — goodput and retry cost vs packet loss ===\n");
  std::printf("(duplication/corruption at loss/2 each; PCIe replay and DRAM ECC\n"
              " faults enabled at fixed rates; YCSB-A counter workload)\n\n");
  kvd::bench::JsonReport report("chaos");
  report.BeginSeries("loss_sweep");
  TablePrinter table({"loss_%", "goodput_Mops", "amplification", "retransmits",
                      "replayed", "dropped", "corrupted", "ecc_fixed",
                      "ecc_demote", "exactly_once"});
  bool all_exact = true;
  // Golden mode: the 1% loss point alone (same seed, so the row matches the
  // full sweep's 1% row byte-for-byte).
  const std::vector<double> losses =
      kvd::bench::GoldenArg(argc, argv)
          ? std::vector<double>{0.01}
          : std::vector<double>{0.0, 0.005, 0.01, 0.02, 0.05};
  for (const double loss : losses) {
    const kvd::ChaosPoint p = kvd::Run(loss, /*seed=*/2026);
    all_exact = all_exact && p.exactly_once;
    table.AddRow({TablePrinter::Num(p.loss_percent, 1),
                  TablePrinter::Num(p.goodput_mops, 2),
                  TablePrinter::Num(p.amplification, 3),
                  TablePrinter::Int(p.retransmits), TablePrinter::Int(p.replayed),
                  TablePrinter::Int(p.dropped), TablePrinter::Int(p.corrupted),
                  TablePrinter::Int(p.ecc_corrected),
                  TablePrinter::Int(p.ecc_demotions),
                  p.exactly_once ? "yes" : "NO"});
    report.AddRow({{"loss_percent", p.loss_percent},
                   {"goodput_mops", p.goodput_mops},
                   {"amplification", p.amplification},
                   {"retransmits", static_cast<double>(p.retransmits)},
                   {"replayed", static_cast<double>(p.replayed)},
                   {"dropped", static_cast<double>(p.dropped)},
                   {"corrupted", static_cast<double>(p.corrupted)},
                   {"ecc_corrected", static_cast<double>(p.ecc_corrected)},
                   {"ecc_demotions", static_cast<double>(p.ecc_demotions)},
                   {"exactly_once", p.exactly_once ? 1.0 : 0.0}});
  }
  table.Print();
  std::printf("exactly-once across the sweep: %s\n", all_exact ? "yes" : "NO");
  if (!report.WriteIfRequested(kvd::bench::JsonPathArg(argc, argv))) {
    return 1;
  }
  return all_exact ? 0 : 1;
}
