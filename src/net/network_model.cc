#include "src/net/network_model.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "src/common/assert.h"

namespace kvd {

NetworkModel::NetworkModel(Simulator& sim, const NetworkConfig& config)
    : sim_(sim),
      config_(config),
      picos_per_byte_(PicosPerByte(config.bandwidth_bytes_per_sec)) {}

NetworkModel::WireInterval NetworkModel::Send(
    const char* direction, uint32_t payload_bytes, SimTime& wire_free_at,
    uint64_t& packets, uint64_t& bytes, std::function<void()> delivered) {
  // Payloads above the MTU budget are segmented into multiple wire packets,
  // each paying the per-packet overhead; delivery fires when the last
  // segment arrives.
  const uint32_t num_packets =
      payload_bytes == 0 ? 1
                         : (payload_bytes + config_.max_payload_bytes - 1) /
                               config_.max_payload_bytes;
  const uint32_t wire_bytes =
      payload_bytes + num_packets * config_.per_packet_overhead_bytes;
  SimTime occupancy =
      static_cast<SimTime>(
          std::llround(static_cast<double>(wire_bytes) * picos_per_byte_)) +
      num_packets * config_.per_packet_processing;
  SimTime latency = config_.one_way_latency;
  // A gray link is slow-but-alive: both serialization and propagation
  // stretch by the configured multiplier.
  const LinkHealth& health = &wire_free_at == &to_server_free_at_
                                 ? to_server_health_
                                 : to_client_health_;
  if (health.latency_multiplier != 1.0) {
    occupancy = static_cast<SimTime>(std::llround(
        static_cast<double>(occupancy) * health.latency_multiplier));
    latency = static_cast<SimTime>(std::llround(
        static_cast<double>(latency) * health.latency_multiplier));
  }
  const SimTime start = std::max(sim_.Now(), wire_free_at);
  wire_free_at = start + occupancy;
  packets += num_packets;
  bytes += wire_bytes;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Complete("net", direction, start, wire_free_at + latency,
                      {{"payload_bytes", payload_bytes}, {"packets", num_packets}});
  }
  sim_.ScheduleAt(wire_free_at + latency, std::move(delivered));
  return {start, wire_free_at + latency};
}

void NetworkModel::SendToServer(uint32_t payload_bytes,
                                std::function<void()> delivered) {
  Send("to_server", payload_bytes, to_server_free_at_, to_server_packets_,
       to_server_bytes_, std::move(delivered));
}

void NetworkModel::SendToClient(uint32_t payload_bytes,
                                std::function<void()> delivered) {
  Send("to_client", payload_bytes, to_client_free_at_, to_client_packets_,
       to_client_bytes_, std::move(delivered));
}

void NetworkModel::SendPayload(bool to_server, std::vector<uint8_t> payload,
                               PayloadHandler delivered,
                               const std::vector<uint64_t>* traces,
                               SpanKind kind) {
  const char* direction = to_server ? "to_server" : "to_client";
  SimTime& free_at = to_server ? to_server_free_at_ : to_client_free_at_;
  uint64_t& packets = to_server ? to_server_packets_ : to_client_packets_;
  uint64_t& bytes = to_server ? to_server_bytes_ : to_client_bytes_;
  const auto size = static_cast<uint32_t>(payload.size());
  auto record = [&](const WireInterval& wire) {
    if (request_tracer_ == nullptr || traces == nullptr) {
      return;
    }
    for (const uint64_t trace : *traces) {
      request_tracer_->Span(trace, kind, wire.start, wire.delivery,
                            to_server ? 0 : 1);
    }
  };
  LinkHealth& health = to_server ? to_server_health_ : to_client_health_;
  if (health.partitioned) {
    // Hard partition: the bits leave (wire occupied) but never arrive. The
    // retry layer sees pure silence — exactly what a real partition looks
    // like from the sender's side.
    partition_dropped_++;
    record(Send(direction, size, free_at, packets, bytes, [] {}));
    return;
  }
  if (health.loss_probability > 0.0 &&
      health.rng.NextDouble() < health.loss_probability) {
    // Gray loss: independent RNG stream, so scripting a gray link never
    // perturbs the fault injector's event sequences.
    gray_dropped_++;
    record(Send(direction, size, free_at, packets, bytes, [] {}));
    return;
  }
  if (fault_ != nullptr) {
    // At most one fault per packet, decided in fixed order so that each
    // site's event stream stays deterministic.
    const FaultSite drop = to_server ? FaultSite::kNetDropToServer
                                     : FaultSite::kNetDropToClient;
    const FaultSite duplicate = to_server ? FaultSite::kNetDuplicateToServer
                                          : FaultSite::kNetDuplicateToClient;
    const FaultSite corrupt = to_server ? FaultSite::kNetCorruptToServer
                                        : FaultSite::kNetCorruptToClient;
    if (fault_->ShouldInject(drop)) {
      // The packet occupies the wire like any other, then vanishes.
      dropped_++;
      record(Send(direction, size, free_at, packets, bytes, [] {}));
      return;
    }
    if (fault_->ShouldInject(duplicate)) {
      // Two independent transmissions, both delivered; receivers dedup on
      // the frame sequence number.
      duplicated_++;
      auto handler = std::make_shared<PayloadHandler>(std::move(delivered));
      std::vector<uint8_t> copy = payload;
      record(Send(direction, size, free_at, packets, bytes,
                  [handler, copy = std::move(copy)]() mutable {
                    (*handler)(std::move(copy));
                  }));
      record(Send(direction, size, free_at, packets, bytes,
                  [handler, payload = std::move(payload)]() mutable {
                    (*handler)(std::move(payload));
                  }));
      return;
    }
    if (fault_->ShouldInject(corrupt)) {
      corrupted_++;
      fault_->CorruptBytes(payload, corrupt);
    }
  }
  record(Send(direction, size, free_at, packets, bytes,
              [payload = std::move(payload),
               delivered = std::move(delivered)]() mutable {
                delivered(std::move(payload));
              }));
}

void NetworkModel::SendPayloadToServer(std::vector<uint8_t> payload,
                                       PayloadHandler delivered) {
  SendPayload(true, std::move(payload), std::move(delivered), nullptr,
              SpanKind::kNetWire);
}

void NetworkModel::SendPayloadToClient(std::vector<uint8_t> payload,
                                       PayloadHandler delivered) {
  SendPayload(false, std::move(payload), std::move(delivered), nullptr,
              SpanKind::kNetWire);
}

void NetworkModel::SendPayloadToServer(std::vector<uint8_t> payload,
                                       PayloadHandler delivered,
                                       const std::vector<uint64_t>& traces,
                                       SpanKind kind) {
  SendPayload(true, std::move(payload), std::move(delivered), &traces, kind);
}

void NetworkModel::SendPayloadToClient(std::vector<uint8_t> payload,
                                       PayloadHandler delivered,
                                       const std::vector<uint64_t>& traces,
                                       SpanKind kind) {
  SendPayload(false, std::move(payload), std::move(delivered), &traces, kind);
}

void NetworkModel::RegisterMetrics(MetricRegistry& registry) const {
  registry.RegisterCounter("kvd_net_packets_total", "Wire packets sent",
                           {{"direction", "to_server"}}, &to_server_packets_);
  registry.RegisterCounter("kvd_net_packets_total", "Wire packets sent",
                           {{"direction", "to_client"}}, &to_client_packets_);
  registry.RegisterCounter("kvd_net_bytes_total", "Wire bytes (incl. overhead)",
                           {{"direction", "to_server"}}, &to_server_bytes_);
  registry.RegisterCounter("kvd_net_bytes_total", "Wire bytes (incl. overhead)",
                           {{"direction", "to_client"}}, &to_client_bytes_);
  registry.RegisterCounter("kvd_net_dropped_total", "Packets lost to injected faults",
                           {}, &dropped_);
  registry.RegisterCounter("kvd_net_duplicated_total",
                           "Packets duplicated by injected faults", {},
                           &duplicated_);
  registry.RegisterCounter("kvd_net_corrupted_total",
                           "Packets bit-flipped by injected faults", {},
                           &corrupted_);
  registry.RegisterCounter("kvd_net_partition_dropped_total",
                           "Packets dropped by a scripted partition", {},
                           &partition_dropped_);
  registry.RegisterCounter("kvd_net_gray_dropped_total",
                           "Packets dropped by scripted gray-link loss", {},
                           &gray_dropped_);
}

}  // namespace kvd
