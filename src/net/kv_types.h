// Wire-level operation and result types (paper Table 1).
//
// KV-Direct extends one-sided RDMA verbs to key-value operations, including
// vector primitives that treat a value as an array of fixed-width elements
// and apply a pre-registered function λ NIC-side:
//
//   get(k) -> v                      put(k, v) -> bool     delete(k) -> bool
//   update_scalar2scalar(k, Δ, λ)    -> original scalar
//   update_scalar2vector(k, Δ, λ)    -> original vector (λ per element)
//   update_vector2vector(k, [Δ], λ)  -> original vector (elementwise)
//   reduce(k, Σ0, λ)                 -> Σ
//   filter(k, λ)                     -> filtered vector
#ifndef SRC_NET_KV_TYPES_H_
#define SRC_NET_KV_TYPES_H_

#include <cstdint>
#include <vector>

namespace kvd {

enum class Opcode : uint8_t {
  kGet = 0,
  kPut = 1,
  kDelete = 2,
  kUpdateScalar = 3,        // update_scalar2scalar: atomic read-modify-write
  kUpdateScalarVector = 4,  // update_scalar2vector: λ(elem, Δ) per element
  kUpdateVector = 5,        // update_vector2vector: λ(elem, Δ_i) elementwise
  kReduce = 6,
  kFilter = 7,
};

// Status byte carried in responses.
enum class ResultCode : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kOutOfMemory = 2,
  kInvalidArgument = 3,
  kBusy = 4,
  // The operation's deadline passed before it could be answered: the server
  // shed it (on admission or at dequeue), or the client gave up retrying.
  // Wire-legal — servers report it so clients stop spending retries.
  kDeadlineExceeded = 5,
  // Admission-controller fast reject: the server is past its overload
  // ceiling (or shedding by queue delay) and refused the operation without
  // queueing it. Cheap by design; clients back off like kBusy.
  kOverloaded = 6,
  // Shard-map routing bounce (src/cluster): the contacted replication group
  // does not own the key's partition under the current shard map. The
  // GroupResponse carries the map epoch and the owning group so the client
  // can patch its cached map and resend the same frame to the right group.
  kWrongShard = 7,
  // The key's partition is write-frozen for the cutover window of a live
  // shard migration. Transient by construction (the freeze lasts one
  // cutover-quiesce window); clients back off and resend the same frame.
  kMigrating = 8,
  // Client-local: the reliable channel exhausted its retransmission budget.
  // Never wire-encoded — kMaxResultCodeByte below stops at kMigrating, so
  // decoders reject this byte as corruption rather than a legal server
  // answer.
  kTimedOut = 9,
};

// Highest wire-legal bytes; decoders reject anything above instead of
// silently mapping unknown bytes onto the `default:` arms below.
inline constexpr uint8_t kMaxOpcodeByte = static_cast<uint8_t>(Opcode::kFilter);
inline constexpr uint8_t kMaxResultCodeByte =
    static_cast<uint8_t>(ResultCode::kMigrating);

// Highest server epoch a result may carry on the wire. Epochs count primary
// failovers, so legitimate values stay tiny; anything above this is a
// corrupted frame that slipped past the checksum and must be rejected rather
// than believed.
inline constexpr uint32_t kMaxWireEpoch = (1u << 24) - 1;

// Stable human-readable names for logs, traces, and error messages.
constexpr const char* OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kGet:
      return "GET";
    case Opcode::kPut:
      return "PUT";
    case Opcode::kDelete:
      return "DELETE";
    case Opcode::kUpdateScalar:
      return "UPDATE_SCALAR";
    case Opcode::kUpdateScalarVector:
      return "UPDATE_SCALAR_VECTOR";
    case Opcode::kUpdateVector:
      return "UPDATE_VECTOR";
    case Opcode::kReduce:
      return "REDUCE";
    case Opcode::kFilter:
      return "FILTER";
  }
  return "UNKNOWN_OPCODE";
}

constexpr const char* ResultCodeName(ResultCode code) {
  switch (code) {
    case ResultCode::kOk:
      return "OK";
    case ResultCode::kNotFound:
      return "NOT_FOUND";
    case ResultCode::kOutOfMemory:
      return "OUT_OF_MEMORY";
    case ResultCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ResultCode::kBusy:
      return "BUSY";
    case ResultCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ResultCode::kOverloaded:
      return "OVERLOADED";
    case ResultCode::kWrongShard:
      return "WRONG_SHARD";
    case ResultCode::kMigrating:
      return "MIGRATING";
    case ResultCode::kTimedOut:
      return "TIMED_OUT";
  }
  return "UNKNOWN_RESULT";
}

// Identifiers of pre-registered update functions (paper §3.2: user-defined λ
// are compiled to hardware logic before execution; clients reference them by
// id). The builtin set covers the paper's workloads; applications register
// more through UpdateFunctionRegistry.
enum BuiltinFunction : uint16_t {
  kFnAddU64 = 0,    // fetch-and-add
  kFnAddF32 = 1,    // PageRank weight accumulation
  kFnMaxU64 = 2,
  kFnMinU64 = 3,
  kFnXorU64 = 4,
  kFnCasU64 = 5,    // compare-and-swap: param = (expected<<32 | new) pattern
  kFnNonZero = 6,   // filter: keep elements != 0
  kFnGreater = 7,   // filter: keep elements > param
  kFnFirstUserFunction = 64,
};

struct KvOperation {
  Opcode opcode = Opcode::kGet;
  std::vector<uint8_t> key;
  // PUT: the value. update_vector2vector: the parameter vector [Δ].
  std::vector<uint8_t> value;
  // Scalar parameter Δ, or initial reduction value Σ0.
  uint64_t param = 0;
  uint16_t function_id = kFnAddU64;
  uint8_t element_width = 8;  // bytes per vector element (4 or 8)
  // Vector updates optionally skip returning the original vector, halving
  // network traffic (Table 2 "vector update without return").
  bool return_value = true;
  // Absolute simulated-time deadline in picoseconds (0 = none). Stamped by
  // the client from its per-op budget, carried on the wire (wire_format flag
  // kFlagHasDeadline), and honored end to end: the sender stops
  // retransmitting an expired packet, the server sheds expired operations on
  // admission and at dequeue instead of doing dead work.
  uint64_t deadline = 0;
  // Request-trace handle (src/obs/request_trace.h). In-memory only — never
  // encoded on the wire; 0 means untraced.
  uint64_t trace = 0;
};

struct KvResultMessage {
  ResultCode code = ResultCode::kOk;
  // GET value / original vector / filtered vector.
  std::vector<uint8_t> value;
  // Original scalar (updates) or reduction result.
  uint64_t scalar = 0;
  // Server epoch at execution time. 0 for an unreplicated server; a
  // replication group stamps its current epoch so clients detect responses
  // from a deposed primary (src/replica). Bounded by kMaxWireEpoch.
  uint32_t epoch = 0;
};

// True for result codes that leave the operation's effect unknown to the
// client: the server may have executed it while the answer (or the request's
// last retransmission) was lost. The consistency checker (src/check) treats
// writes with these codes as "may or may not have taken effect"; every other
// code is a definite answer — kOk/kNotFound constrain the state, the
// rejection codes guarantee no effect.
constexpr bool IsAmbiguousResult(ResultCode code) {
  return code == ResultCode::kTimedOut || code == ResultCode::kDeadlineExceeded;
}

// True for operations that mutate the stored value.
constexpr bool IsWriteOpcode(Opcode opcode) {
  switch (opcode) {
    case Opcode::kGet:
    case Opcode::kReduce:
    case Opcode::kFilter:
      return false;
    case Opcode::kPut:
    case Opcode::kDelete:
    case Opcode::kUpdateScalar:
    case Opcode::kUpdateScalarVector:
    case Opcode::kUpdateVector:
      return true;
  }
  return true;
}

constexpr bool IsVectorOpcode(Opcode opcode) {
  switch (opcode) {
    case Opcode::kUpdateScalarVector:
    case Opcode::kUpdateVector:
    case Opcode::kReduce:
    case Opcode::kFilter:
      return true;
    default:
      return false;
  }
}

}  // namespace kvd

#endif  // SRC_NET_KV_TYPES_H_
