#include "src/net/wire_format.h"

#include <cstring>

#include "src/common/assert.h"

namespace kvd {
namespace {

void AppendU16(std::vector<uint8_t>& buffer, uint16_t v) {
  const size_t at = buffer.size();
  buffer.resize(at + 2);
  std::memcpy(buffer.data() + at, &v, 2);
}

void AppendU32(std::vector<uint8_t>& buffer, uint32_t v) {
  const size_t at = buffer.size();
  buffer.resize(at + 4);
  std::memcpy(buffer.data() + at, &v, 4);
}

void AppendU64(std::vector<uint8_t>& buffer, uint64_t v) {
  const size_t at = buffer.size();
  buffer.resize(at + 8);
  std::memcpy(buffer.data() + at, &v, 8);
}

bool NeedsFunctionFields(Opcode opcode) {
  return IsVectorOpcode(opcode) || opcode == Opcode::kUpdateScalar;
}

void EncodeOperation(std::vector<uint8_t>& buffer, const KvOperation& op,
                     uint8_t flags) {
  buffer.push_back(static_cast<uint8_t>(op.opcode));
  buffer.push_back(flags);
  if ((flags & kFlagCopyKeyLen) == 0) {
    AppendU16(buffer, static_cast<uint16_t>(op.key.size()));
  }
  if ((flags & kFlagCopyValueLen) == 0) {
    AppendU32(buffer, static_cast<uint32_t>(op.value.size()));
  }
  if (NeedsFunctionFields(op.opcode)) {
    AppendU64(buffer, op.param);
    AppendU16(buffer, op.function_id);
    buffer.push_back(op.element_width);
  }
  if (flags & kFlagHasDeadline) {
    AppendU64(buffer, op.deadline);
  }
  buffer.insert(buffer.end(), op.key.begin(), op.key.end());
  if ((flags & kFlagCopyValueBytes) == 0) {
    buffer.insert(buffer.end(), op.value.begin(), op.value.end());
  }
}

}  // namespace

uint32_t EncodedOperationSize(const KvOperation& op, const KvOperation* previous,
                              bool enable_compression) {
  uint32_t size = 2;  // opcode + flags
  const bool copy_key_len =
      enable_compression && previous != nullptr && previous->key.size() == op.key.size();
  const bool copy_value_len = enable_compression && previous != nullptr &&
                              previous->value.size() == op.value.size();
  const bool copy_value = enable_compression && previous != nullptr &&
                          !op.value.empty() && previous->value == op.value;
  size += copy_key_len ? 0 : 2;
  size += copy_value_len ? 0 : 4;
  if (NeedsFunctionFields(op.opcode)) {
    size += 8 + 2 + 1;
  }
  if (op.deadline != 0) {
    size += 8;
  }
  size += static_cast<uint32_t>(op.key.size());
  size += copy_value ? 0 : static_cast<uint32_t>(op.value.size());
  return size;
}

PacketBuilder::PacketBuilder(uint32_t max_payload_bytes, bool enable_compression)
    : max_payload_bytes_(max_payload_bytes), enable_compression_(enable_compression) {
  KVD_CHECK(max_payload_bytes >= 64);
}

bool PacketBuilder::Add(const KvOperation& op) {
  uint8_t flags = 0;
  if (enable_compression_ && count_ > 0) {
    if (prev_key_len_ == op.key.size()) {
      flags |= kFlagCopyKeyLen;
    }
    if (prev_value_len_ == op.value.size()) {
      flags |= kFlagCopyValueLen;
    }
    if (!op.value.empty() && prev_value_ == op.value) {
      flags |= kFlagCopyValueBytes;
    }
  }
  if (!op.return_value) {
    flags |= kFlagNoReturn;
  }
  if (op.deadline != 0) {
    flags |= kFlagHasDeadline;
  }
  // Dry-run size check against the payload budget.
  uint32_t size = 2;
  size += (flags & kFlagCopyKeyLen) ? 0 : 2;
  size += (flags & kFlagCopyValueLen) ? 0 : 4;
  if (NeedsFunctionFields(op.opcode)) {
    size += 11;
  }
  size += (flags & kFlagHasDeadline) ? 8 : 0;
  size += static_cast<uint32_t>(op.key.size());
  size += (flags & kFlagCopyValueBytes) ? 0 : static_cast<uint32_t>(op.value.size());
  if (buffer_.size() + size > max_payload_bytes_) {
    return false;
  }
  EncodeOperation(buffer_, op, flags);
  prev_key_len_ = static_cast<uint16_t>(op.key.size());
  prev_value_len_ = static_cast<uint32_t>(op.value.size());
  prev_value_ = op.value;
  count_++;
  return true;
}

std::vector<uint8_t> PacketBuilder::Finish() {
  std::vector<uint8_t> out = std::move(buffer_);
  buffer_.clear();
  count_ = 0;
  prev_key_len_.reset();
  prev_value_len_.reset();
  prev_value_.clear();
  return out;
}

PacketParser::PacketParser(std::vector<uint8_t> payload)
    : payload_(std::move(payload)) {}

Result<std::optional<KvOperation>> PacketParser::Next() {
  if (offset_ >= payload_.size()) {
    return std::optional<KvOperation>(std::nullopt);
  }
  auto take = [&](void* out, size_t n) -> bool {
    if (offset_ + n > payload_.size()) {
      return false;
    }
    std::memcpy(out, payload_.data() + offset_, n);
    offset_ += n;
    return true;
  };

  KvOperation op;
  uint8_t opcode_byte;
  uint8_t flags;
  if (!take(&opcode_byte, 1) || !take(&flags, 1)) {
    return Status::InvalidArgument("truncated op header");
  }
  if (opcode_byte > kMaxOpcodeByte) {
    return Status::InvalidArgument("unknown opcode byte");
  }
  op.opcode = static_cast<Opcode>(opcode_byte);
  op.return_value = (flags & kFlagNoReturn) == 0;

  uint16_t key_len;
  if (flags & kFlagCopyKeyLen) {
    if (!prev_key_len_.has_value()) {
      return Status::InvalidArgument("copy-key-len with no previous op");
    }
    key_len = *prev_key_len_;
  } else if (!take(&key_len, 2)) {
    return Status::InvalidArgument("truncated key length");
  }

  uint32_t value_len;
  if (flags & kFlagCopyValueLen) {
    if (!prev_value_len_.has_value()) {
      return Status::InvalidArgument("copy-value-len with no previous op");
    }
    value_len = *prev_value_len_;
  } else if (!take(&value_len, 4)) {
    return Status::InvalidArgument("truncated value length");
  }

  if (NeedsFunctionFields(op.opcode)) {
    if (!take(&op.param, 8) || !take(&op.function_id, 2) ||
        !take(&op.element_width, 1)) {
      return Status::InvalidArgument("truncated function fields");
    }
  }

  if (flags & kFlagHasDeadline) {
    if (!take(&op.deadline, 8)) {
      return Status::InvalidArgument("truncated deadline");
    }
  }

  // Validate claimed lengths against the remaining bytes BEFORE allocating:
  // a corrupted length field must produce an error, not a multi-GiB resize.
  if (key_len > payload_.size() - offset_) {
    return Status::InvalidArgument("truncated key");
  }
  op.key.resize(key_len);
  if (key_len > 0 && !take(op.key.data(), key_len)) {
    return Status::InvalidArgument("truncated key");
  }
  if (flags & kFlagCopyValueBytes) {
    if (prev_value_.size() != value_len) {
      return Status::InvalidArgument("copy-value size mismatch");
    }
    op.value = prev_value_;
  } else {
    if (value_len > payload_.size() - offset_) {
      return Status::InvalidArgument("truncated value");
    }
    op.value.resize(value_len);
    if (value_len > 0 && !take(op.value.data(), value_len)) {
      return Status::InvalidArgument("truncated value");
    }
  }

  prev_key_len_ = key_len;
  prev_value_len_ = value_len;
  prev_value_ = op.value;
  return std::optional<KvOperation>(std::move(op));
}

std::vector<uint8_t> EncodeResults(const std::vector<KvResultMessage>& results) {
  std::vector<uint8_t> out;
  for (const KvResultMessage& result : results) {
    KVD_CHECK(result.epoch <= kMaxWireEpoch);
    out.push_back(static_cast<uint8_t>(result.code));
    AppendU32(out, result.epoch);
    AppendU32(out, static_cast<uint32_t>(result.value.size()));
    AppendU64(out, result.scalar);
    out.insert(out.end(), result.value.begin(), result.value.end());
  }
  return out;
}

Result<std::vector<KvResultMessage>> DecodeResults(const std::vector<uint8_t>& payload) {
  std::vector<KvResultMessage> results;
  size_t offset = 0;
  while (offset < payload.size()) {
    if (offset + kResultHeaderBytes > payload.size()) {
      return Status::InvalidArgument("truncated result header");
    }
    if (payload[offset] > kMaxResultCodeByte) {
      return Status::InvalidArgument("unknown result code");
    }
    KvResultMessage result;
    result.code = static_cast<ResultCode>(payload[offset]);
    uint32_t value_len;
    std::memcpy(&result.epoch, payload.data() + offset + 1, 4);
    if (result.epoch > kMaxWireEpoch) {
      return Status::InvalidArgument("result epoch out of range");
    }
    std::memcpy(&value_len, payload.data() + offset + 5, 4);
    std::memcpy(&result.scalar, payload.data() + offset + 9, 8);
    offset += kResultHeaderBytes;
    if (offset + value_len > payload.size()) {
      return Status::InvalidArgument("truncated result value");
    }
    result.value.assign(payload.begin() + static_cast<long>(offset),
                        payload.begin() + static_cast<long>(offset + value_len));
    offset += value_len;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace kvd
