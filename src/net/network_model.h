// Timing model of the 40 GbE path between clients and the KV server
// (paper §4, §5: 5 GB/s, ~2 µs RTT, 88 B RDMA-over-Ethernet header +
// padding per packet).
//
// Each direction is an independent serial wire; a packet occupies it for
// (overhead + payload) / bandwidth and arrives one-way-latency later.
#ifndef SRC_NET_NETWORK_MODEL_H_
#define SRC_NET_NETWORK_MODEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/hashing.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/fault/fault_injector.h"
#include "src/obs/event_tracer.h"
#include "src/obs/metric_registry.h"
#include "src/obs/request_trace.h"
#include "src/sim/simulator.h"

namespace kvd {

struct NetworkConfig {
  double bandwidth_bytes_per_sec = 5e9;  // 40 Gbps
  SimTime one_way_latency = 1 * kMicrosecond;
  uint32_t per_packet_overhead_bytes = 88;
  // Per-packet processing at the endpoints (header parse, CRC, doorbells):
  // caps the packet rate near ~15 Mpps, the message-rate ballpark the paper
  // cites for RDMA NICs (§2.2) — this, not wire bytes, is what client-side
  // batching amortizes (Figure 15).
  SimTime per_packet_processing = 60 * kNanosecond;
  uint32_t max_payload_bytes = 4096;
};

class NetworkModel {
 public:
  NetworkModel(Simulator& sim, const NetworkConfig& config);

  using PayloadHandler = std::function<void(std::vector<uint8_t>)>;

  // Client -> server direction; `delivered` fires at arrival. The byte-count
  // overloads model a lossless wire (timing only); benches use them directly.
  void SendToServer(uint32_t payload_bytes, std::function<void()> delivered);
  // Server -> client direction.
  void SendToClient(uint32_t payload_bytes, std::function<void()> delivered);

  // Payload-carrying sends: the wire that can fail. When a FaultInjector is
  // attached, packets may be dropped (delivered never fires; the wire is
  // still occupied), duplicated (delivered fires twice, two transmissions),
  // or corrupted (bits flipped in flight — the framing checksum catches it at
  // the receiver). The retry/timeout layer in Client/KvDirectServer recovers.
  void SendPayloadToServer(std::vector<uint8_t> payload, PayloadHandler delivered);
  void SendPayloadToClient(std::vector<uint8_t> payload, PayloadHandler delivered);

  // Traced variants: every nonzero handle in `traces` gets one span of
  // `kind` per wire transmission (dropped packets included — they occupied
  // the wire; duplicates record two spans).
  void SendPayloadToServer(std::vector<uint8_t> payload, PayloadHandler delivered,
                           const std::vector<uint64_t>& traces,
                           SpanKind kind = SpanKind::kNetWire);
  void SendPayloadToClient(std::vector<uint8_t> payload, PayloadHandler delivered,
                           const std::vector<uint64_t>& traces,
                           SpanKind kind = SpanKind::kNetWire);

  const NetworkConfig& config() const { return config_; }
  uint64_t packets_to_server() const { return to_server_packets_; }
  uint64_t packets_to_client() const { return to_client_packets_; }
  uint64_t bytes_to_server() const { return to_server_bytes_; }   // incl. overhead
  uint64_t bytes_to_client() const { return to_client_bytes_; }
  uint64_t packets_dropped() const { return dropped_; }
  uint64_t packets_duplicated() const { return duplicated_; }
  uint64_t packets_corrupted() const { return corrupted_; }
  uint64_t partition_dropped() const { return partition_dropped_; }
  uint64_t gray_dropped() const { return gray_dropped_; }

  // --- scriptable link health (partitions and gray failure) ---
  // Hard partition of one direction: every payload packet is dropped (it
  // still occupies the wire — the bits leave; they just never arrive).
  // Setting only one direction models an asymmetric partition; both model a
  // full one. Timing-only sends (SendToServer/SendToClient) are unaffected:
  // they model pre-reliability benches that assume a lossless wire.
  void SetPartitioned(bool to_server, bool on) {
    (to_server ? to_server_health_ : to_client_health_).partitioned = on;
  }
  bool partitioned(bool to_server) const {
    return (to_server ? to_server_health_ : to_client_health_).partitioned;
  }
  // Gray link: slow-but-alive. `latency_multiplier` scales both serialization
  // occupancy and propagation latency; `loss_probability` drops packets
  // independently of any FaultInjector (own per-direction RNG stream, so
  // enabling it never perturbs injector event sequences). Pass (1.0, 0.0) to
  // restore a healthy link.
  void SetGrayLink(bool to_server, double latency_multiplier,
                   double loss_probability, uint64_t seed = 0) {
    LinkHealth& health = to_server ? to_server_health_ : to_client_health_;
    health.latency_multiplier = latency_multiplier;
    health.loss_probability = loss_probability;
    health.rng.Seed(Mix64(seed ^ (to_server ? 0x67a1ULL : 0x67a2ULL)));
  }

  void RegisterMetrics(MetricRegistry& registry) const;
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }
  void SetRequestTracer(RequestTracer* tracer) { request_tracer_ = tracer; }
  void SetFaultInjector(FaultInjector* injector) { fault_ = injector; }

 private:
  // Per-direction health state for partitions and gray failure.
  struct LinkHealth {
    bool partitioned = false;
    double latency_multiplier = 1.0;
    double loss_probability = 0.0;
    Rng rng;
  };

  // Wire occupancy and delivery are decided synchronously at send time.
  struct WireInterval {
    SimTime start = 0;
    SimTime delivery = 0;
  };
  WireInterval Send(const char* direction, uint32_t payload_bytes,
                    SimTime& wire_free_at, uint64_t& packets, uint64_t& bytes,
                    std::function<void()> delivered);
  void SendPayload(bool to_server, std::vector<uint8_t> payload,
                   PayloadHandler delivered,
                   const std::vector<uint64_t>* traces, SpanKind kind);

  Simulator& sim_;
  NetworkConfig config_;
  EventTracer* tracer_ = nullptr;
  RequestTracer* request_tracer_ = nullptr;
  FaultInjector* fault_ = nullptr;
  double picos_per_byte_;
  SimTime to_server_free_at_ = 0;
  SimTime to_client_free_at_ = 0;
  uint64_t to_server_packets_ = 0;
  uint64_t to_client_packets_ = 0;
  uint64_t to_server_bytes_ = 0;
  uint64_t to_client_bytes_ = 0;
  uint64_t dropped_ = 0;
  uint64_t duplicated_ = 0;
  uint64_t corrupted_ = 0;
  uint64_t partition_dropped_ = 0;
  uint64_t gray_dropped_ = 0;
  LinkHealth to_server_health_;
  LinkHealth to_client_health_;
};

}  // namespace kvd

#endif  // SRC_NET_NETWORK_MODEL_H_
