// Packet encoding with client-side batching (paper §4 "Vector Operation
// Decoder", Figure 15).
//
// The network, not PCIe, is the scarce resource: an RDMA write over Ethernet
// carries 88 bytes of header and padding, versus 26 bytes for a PCIe TLP.
// KV-Direct therefore batches multiple KV operations per network packet and
// compresses repetitive fields: two flag bits let an operation copy the key
// size / value size of the previous operation in the packet, and a third
// copies the previous operation's entire value (common in graph and
// parameter-server traffic where many KVs share size or contents).
//
// Per-operation layout (little endian):
//   u8 opcode | u8 flags | [u16 key_len] [u32 value_len]
//   | for vector/update ops: u64 param, u16 function_id, u8 element_width
//   | if kFlagHasDeadline: u64 deadline (absolute sim picoseconds)
//   | key bytes | [value bytes]
// Bracketed fields are omitted when the corresponding flag bit is set; the
// deadline field is present only when the flag is set, so deadline-free
// traffic encodes byte-identically to the pre-deadline format.
#ifndef SRC_NET_WIRE_FORMAT_H_
#define SRC_NET_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/net/kv_types.h"

namespace kvd {

inline constexpr uint8_t kFlagCopyKeyLen = 1u << 0;
inline constexpr uint8_t kFlagCopyValueLen = 1u << 1;
inline constexpr uint8_t kFlagCopyValueBytes = 1u << 2;
inline constexpr uint8_t kFlagNoReturn = 1u << 3;
inline constexpr uint8_t kFlagHasDeadline = 1u << 4;

// Builds one request packet out of batched operations.
class PacketBuilder {
 public:
  // `max_payload_bytes`: packet size budget (network MTU minus headers).
  // `enable_compression`: ablation switch for the copy-flags optimization.
  explicit PacketBuilder(uint32_t max_payload_bytes = 4096,
                         bool enable_compression = true);

  // Appends `op`; returns false (and leaves the packet unchanged) if the
  // encoded operation would overflow the payload budget.
  bool Add(const KvOperation& op);

  size_t operation_count() const { return count_; }
  size_t payload_size() const { return buffer_.size(); }
  bool empty() const { return count_ == 0; }

  // Returns the payload and resets the builder for the next packet.
  std::vector<uint8_t> Finish();

 private:
  uint32_t max_payload_bytes_;
  bool enable_compression_;
  std::vector<uint8_t> buffer_;
  size_t count_ = 0;
  // Previous operation's fields for the copy flags.
  std::optional<uint16_t> prev_key_len_;
  std::optional<uint32_t> prev_value_len_;
  std::vector<uint8_t> prev_value_;
};

// Decodes a request packet back into operations (the NIC-side decoder).
class PacketParser {
 public:
  explicit PacketParser(std::vector<uint8_t> payload);

  // Returns the next operation, or nullopt at end of packet. Malformed input
  // yields an error status.
  Result<std::optional<KvOperation>> Next();

 private:
  std::vector<uint8_t> payload_;
  size_t offset_ = 0;
  std::optional<uint16_t> prev_key_len_;
  std::optional<uint32_t> prev_value_len_;
  std::vector<uint8_t> prev_value_;
};

// Response packet: a sequence of results mirroring the request order.
// Layout per result:
//   u8 code | u32 epoch | u32 value_len | u64 scalar | value bytes.
// `epoch` is the server epoch at execution (0 unreplicated); the decoder
// rejects values above kMaxWireEpoch as corruption.
inline constexpr size_t kResultHeaderBytes = 17;
std::vector<uint8_t> EncodeResults(const std::vector<KvResultMessage>& results);
Result<std::vector<KvResultMessage>> DecodeResults(const std::vector<uint8_t>& payload);

// Reliable framing (sequence + checksum) lives in src/transport/frame.h:
// this file is only the lossless payload encoding the frames carry.

// Encoded size of one operation given the previous op in the packet (used by
// benchmarks to reason about network efficiency without building packets).
uint32_t EncodedOperationSize(const KvOperation& op, const KvOperation* previous,
                              bool enable_compression);

}  // namespace kvd

#endif  // SRC_NET_WIRE_FORMAT_H_
