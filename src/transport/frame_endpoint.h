// Server-side terminus of the reliable channel.
//
// FrameEndpoint owns the receive half of the framed protocol for one node:
// it parses and checksums incoming frames, deduplicates retransmissions
// against a ReplayCache, and frames + records outgoing responses. The owner
// (KvDirectServer's client path, or one replica inside a ReplicationGroup)
// supplies only the payload execution in between:
//
//   auto frame = endpoint.Accept(packet, respond);   // parse + dedup
//   if (!frame) return;                              // handled: corrupt/replay
//   endpoint.Admit(frame->sequence);                 // pin as in-flight
//   ... execute frame->payload ...
//   respond(endpoint.Complete(sequence, response, /*cache=*/true));
//
// Control responses that must not be memoized (e.g. a replica redirect whose
// answer depends on who is primary right now) pass cache=false to Complete:
// the response is framed but the cache is untouched, so a retransmission
// re-evaluates instead of replaying a stale verdict.
#ifndef SRC_TRANSPORT_FRAME_ENDPOINT_H_
#define SRC_TRANSPORT_FRAME_ENDPOINT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/transport/frame.h"
#include "src/transport/replay_cache.h"

namespace kvd {

class FrameEndpoint {
 public:
  struct Stats {
    uint64_t replayed_responses = 0;  // duplicate answered from the cache
    uint64_t corrupt_frames = 0;      // dropped: truncated or bad checksum
    uint64_t stale_retransmits = 0;   // dropped: original still in flight
  };

  using Responder = std::function<void(std::vector<uint8_t>)>;

  FrameEndpoint(Simulator& sim, ReplayCache::Config config)
      : cache_(sim, config) {}

  // Parses `packet` and classifies its sequence. Returns the frame when the
  // owner should execute it; nullopt when the endpoint already handled it
  // (corrupt frame dropped, replay answered via `respond`, or in-flight
  // duplicate dropped). Does NOT admit — the owner decides that (control
  // responses are never admitted).
  std::optional<Frame> Accept(std::span<const uint8_t> packet,
                              const Responder& respond);

  // Pins `sequence` as in-flight so duplicates arriving during execution are
  // dropped rather than re-executed.
  void Admit(uint64_t sequence) { cache_.Admit(sequence); }

  // Frames `response_payload` under `sequence` and returns the framed bytes.
  // When `cache` is true the framed response is also recorded for replay.
  std::vector<uint8_t> Complete(uint64_t sequence,
                                std::span<const uint8_t> response_payload,
                                bool cache);

  // Forgets in-flight entries whose executions died with the node/regime.
  void DropInFlight() { cache_.DropInFlight(); }

  const Stats& stats() const { return stats_; }
  const ReplayCache& cache() const { return cache_; }

  // Stable addresses for MetricRegistry counter registration.
  const uint64_t* replayed_responses_counter() const { return &stats_.replayed_responses; }
  const uint64_t* corrupt_frames_counter() const { return &stats_.corrupt_frames; }
  const uint64_t* stale_retransmits_counter() const { return &stats_.stale_retransmits; }
  const uint64_t* evict_scan_steps_counter() const { return cache_.evict_scan_steps_counter(); }

 private:
  ReplayCache cache_;
  Stats stats_;
};

}  // namespace kvd

#endif  // SRC_TRANSPORT_FRAME_ENDPOINT_H_
