// Server-side idempotent-replay cache for the framed request path.
//
// One implementation shared by every frame-terminating endpoint (the single
// server's client path and each replica's client path — see FrameEndpoint).
// The most recent N responses are kept by sequence so a retransmitted request
// is answered from the cache instead of re-executing its (non-idempotent)
// operations.
//
// Eviction is FIFO with two pins that exactly-once execution depends on:
//   - an in-flight entry (admitted, not yet completed) must survive until its
//     response is recorded, and
//   - a completed entry younger than `retain_time` must outlive any
//     retransmission still on the wire (the client may have re-sent just
//     before the response landed).
// Pinned entries are never evicted; the cache runs over budget rather than
// break exactly-once execution.
//
// The eviction scan is amortized O(1): each admission examines at most
// kMaxEvictScanSteps queue entries, and a pinned entry it meets is re-queued
// to the back (a rotating cursor) so later admissions make progress past it
// instead of rescanning the same pinned prefix. Work done by the scan is
// counted in evict_scan_steps() (exposed as
// kvd_replay_evict_scan_steps_total).
#ifndef SRC_TRANSPORT_REPLAY_CACHE_H_
#define SRC_TRANSPORT_REPLAY_CACHE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace kvd {

class ReplayCache {
 public:
  struct Config {
    // Eviction budget: Admit() evicts eligible entries while the queue holds
    // at least this many. Pins can keep the cache over budget.
    uint32_t entries = 4096;
    // Completed entries younger than this are pinned (see file comment).
    SimTime retain_time = 100 * kMillisecond;
  };

  // Queue entries examined per Admit(): bounds the per-insert scan so a long
  // pinned prefix costs O(1) rotations instead of an O(cache) walk.
  static constexpr uint32_t kMaxEvictScanSteps = 8;

  enum class Hit {
    kMiss,      // unseen sequence: admit and execute
    kInFlight,  // original still executing: drop the retransmission
    kDone,      // answered before: replay the cached response
  };

  ReplayCache(Simulator& sim, Config config) : sim_(sim), config_(config) {}

  // Classifies `sequence`; on kDone, `*response` points at the cached framed
  // response (valid until the next cache mutation).
  Hit Lookup(uint64_t sequence, const std::vector<uint8_t>** response) const {
    const auto it = entries_.find(sequence);
    if (it == entries_.end()) {
      return Hit::kMiss;
    }
    if (!it->second.done) {
      return Hit::kInFlight;
    }
    if (response != nullptr) {
      *response = &it->second.response;
    }
    return Hit::kDone;
  }

  // Admits `sequence` as in-flight, first evicting unpinned entries beyond
  // the budget (bounded rotating scan, see file comment).
  void Admit(uint64_t sequence);

  // Records the framed response for `sequence` and stamps its completion
  // time. Inserts the entry if it is missing (DropInFlight may have erased it
  // while the operation executed).
  void Complete(uint64_t sequence, std::vector<uint8_t> response);

  // Forgets every in-flight entry (crash / primary step-down): their
  // operations will never respond under this regime, so a retransmission
  // must re-execute rather than wait forever. Stale queue slots are left
  // behind and skipped (and reclaimed) by the eviction scan.
  void DropInFlight();

  size_t size() const { return entries_.size(); }
  uint64_t evict_scan_steps() const { return evict_scan_steps_; }
  const uint64_t* evict_scan_steps_counter() const { return &evict_scan_steps_; }

 private:
  struct Entry {
    bool done = false;
    SimTime done_at = 0;            // completion time, valid when done
    std::vector<uint8_t> response;  // framed, ready to resend
  };

  Simulator& sim_;
  Config config_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::deque<uint64_t> order_;  // FIFO admission order (plus rotated pins)
  uint64_t evict_scan_steps_ = 0;
};

}  // namespace kvd

#endif  // SRC_TRANSPORT_REPLAY_CACHE_H_
