#include "src/transport/frame.h"

#include <cstring>

#include "src/common/hashing.h"

namespace kvd {
namespace {

// 32-bit payload checksum keyed by the sequence number, so a flip anywhere in
// the frame (sequence, checksum, or payload) breaks verification.
uint32_t FrameChecksum(uint64_t sequence, std::span<const uint8_t> payload) {
  return static_cast<uint32_t>(
      HashBytes(payload.data(), payload.size(), Mix64(sequence) ^ 0xf4a3e));
}

}  // namespace

std::vector<uint8_t> FramePacket(uint64_t sequence, std::span<const uint8_t> payload) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  const size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &sequence, 8);
  const uint32_t checksum = FrameChecksum(sequence, payload);
  out.resize(at + 12);
  std::memcpy(out.data() + at + 8, &checksum, 4);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<Frame> ParseFrame(std::span<const uint8_t> packet) {
  if (packet.size() < kFrameHeaderBytes) {
    return Status::InvalidArgument("truncated frame header");
  }
  Frame frame;
  uint32_t checksum;
  std::memcpy(&frame.sequence, packet.data(), 8);
  std::memcpy(&checksum, packet.data() + 8, 4);
  const std::span<const uint8_t> payload = packet.subspan(kFrameHeaderBytes);
  if (checksum != FrameChecksum(frame.sequence, payload)) {
    return Status::InvalidArgument("frame checksum mismatch");
  }
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

}  // namespace kvd
