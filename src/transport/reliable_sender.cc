#include "src/transport/reliable_sender.h"

#include <algorithm>
#include <utility>

namespace kvd {

SimTime ReliableSender::BackoffDelay(const PacketPtr& packet) {
  if (packet->attempts <= 1 || !policy_.jitter) {
    // First attempt (always), or jitter disabled: the classic exponential
    // schedule. Keeping attempt 1 exact means fault-free timing is identical
    // whether jitter is on or off.
    const SimTime delay = policy_.timeout
                          << std::min(packet->attempts - 1,
                                      policy_.backoff_shift_cap);
    packet->backoff = delay;
    return delay;
  }
  // Decorrelated jitter: uniform[timeout, 3 * previous_wait), capped. Grows
  // at least as fast as exponential backoff in expectation but desynchronizes
  // retransmissions across packets and senders.
  const SimTime cap = policy_.timeout << policy_.backoff_shift_cap;
  const SimTime prev =
      std::min(packet->backoff != 0 ? packet->backoff : policy_.timeout, cap);
  const SimTime hi = prev > cap / 3 ? cap : prev * 3;
  SimTime delay = policy_.timeout;
  if (hi > policy_.timeout) {
    delay += jitter_rng_.NextBelow(hi - policy_.timeout);
  }
  delay = std::min(delay, cap);
  packet->backoff = delay;
  return delay;
}

void ReliableSender::Transmit(const PacketPtr& packet) {
  packet->attempts++;
  packet->attempts_at_target++;
  RequestTracer& rt = tracer_();
  if (!packet->traces.empty() && rt.enabled()) {
    for (const uint64_t handle : packet->traces) {
      rt.CountAttempt(handle);
      if (packet->attempts > 1) {
        // Timeout-driven retransmission marker (detail: attempt number).
        rt.Span(handle, SpanKind::kRetransmit, sim_.Now(), sim_.Now(),
                packet->attempts - 1);
      }
    }
  }
  wire_(packet);
  // Retransmission timer for this attempt; exponential backoff with optional
  // decorrelated jitter. A timer that fires after completion (or after a
  // newer attempt took over) is a no-op.
  const uint32_t seen = packet->attempts;
  const SimTime timeout = BackoffDelay(packet);
  sim_.Schedule(timeout, [this, packet, seen] {
    if (packet->completed || packet->attempts != seen) {
      return;  // answered, or a bounce already re-sent it
    }
    if (packet->deadline != 0 && sim_.Now() >= packet->deadline) {
      // Past the deadline nobody is waiting for this answer; retransmitting
      // would only feed the overload that delayed it.
      stats_->deadline_failures++;
      packet->fail_code = ResultCode::kDeadlineExceeded;
      Fail(packet);
      return;
    }
    if (packet->attempts >= policy_.max_attempts) {
      Fail(packet);
      return;
    }
    if (policy_.retry_budget > 0) {
      if (retry_tokens_ < 1.0) {
        // Budget empty: the server (or network) is failing everything, so
        // more retries are gasoline. Fail fast and let the caller decide.
        stats_->budget_exhausted++;
        Fail(packet);
        return;
      }
      retry_tokens_ -= 1.0;
    }
    stats_->retransmits++;
    if (policy_.attempts_per_target > 0 &&
        packet->attempts_at_target >= policy_.attempts_per_target) {
      Retarget(packet, packet->target + 1);  // this replica may be crashed
    }
    Transmit(packet);
  });
}

void ReliableSender::Resend(const PacketPtr& packet) {
  if (packet->deadline != 0 && sim_.Now() >= packet->deadline) {
    stats_->deadline_failures++;
    packet->fail_code = ResultCode::kDeadlineExceeded;
    Fail(packet);
    return;
  }
  if (packet->attempts >= policy_.max_attempts) {
    Fail(packet);
    return;
  }
  Transmit(packet);
}

void ReliableSender::Fail(const PacketPtr& packet) {
  packet->failed = true;
  packet->completed = true;  // late responses dedup instead of double-filling
  on_fail_(packet);
}

std::optional<std::vector<uint8_t>> ReliableSender::AcceptResponse(
    const PacketPtr& packet, std::span<const uint8_t> response) {
  if (packet->completed) {
    stats_->duplicate_responses++;  // injected duplicate or late retransmit
    return std::nullopt;
  }
  Result<Frame> frame = ParseFrame(response);
  if (!frame.ok() || frame->sequence != packet->sequence) {
    // Bit-flipped in flight (or a foreign frame): await the timer.
    stats_->corrupt_responses++;
    return std::nullopt;
  }
  if (policy_.retry_budget > 0) {
    // Successes refill the retry budget, so a healthy system keeps its full
    // allowance and a failing one converges to the refill rate.
    retry_tokens_ = std::min(static_cast<double>(policy_.retry_budget),
                             retry_tokens_ + policy_.retry_refill_per_success);
  }
  return std::move(frame->payload);
}

}  // namespace kvd
