#include "src/transport/reliable_sender.h"

#include <algorithm>
#include <utility>

namespace kvd {

void ReliableSender::Transmit(const PacketPtr& packet) {
  packet->attempts++;
  packet->attempts_at_target++;
  RequestTracer& rt = tracer_();
  if (!packet->traces.empty() && rt.enabled()) {
    for (const uint64_t handle : packet->traces) {
      rt.CountAttempt(handle);
      if (packet->attempts > 1) {
        // Timeout-driven retransmission marker (detail: attempt number).
        rt.Span(handle, SpanKind::kRetransmit, sim_.Now(), sim_.Now(),
                packet->attempts - 1);
      }
    }
  }
  wire_(packet);
  // Retransmission timer for this attempt; exponential backoff. A timer that
  // fires after completion (or after a newer attempt took over) is a no-op.
  const uint32_t seen = packet->attempts;
  const SimTime timeout =
      policy_.timeout << std::min(seen - 1, policy_.backoff_shift_cap);
  sim_.Schedule(timeout, [this, packet, seen] {
    if (packet->completed || packet->attempts != seen) {
      return;  // answered, or a bounce already re-sent it
    }
    if (packet->attempts >= policy_.max_attempts) {
      Fail(packet);
      return;
    }
    stats_->retransmits++;
    if (policy_.attempts_per_target > 0 &&
        packet->attempts_at_target >= policy_.attempts_per_target) {
      Retarget(packet, packet->target + 1);  // this replica may be crashed
    }
    Transmit(packet);
  });
}

void ReliableSender::Resend(const PacketPtr& packet) {
  if (packet->attempts >= policy_.max_attempts) {
    Fail(packet);
    return;
  }
  Transmit(packet);
}

void ReliableSender::Fail(const PacketPtr& packet) {
  packet->failed = true;
  packet->completed = true;  // late responses dedup instead of double-filling
  on_fail_(packet);
}

std::optional<std::vector<uint8_t>> ReliableSender::AcceptResponse(
    const PacketPtr& packet, std::span<const uint8_t> response) {
  if (packet->completed) {
    stats_->duplicate_responses++;  // injected duplicate or late retransmit
    return std::nullopt;
  }
  Result<Frame> frame = ParseFrame(response);
  if (!frame.ok() || frame->sequence != packet->sequence) {
    // Bit-flipped in flight (or a foreign frame): await the timer.
    stats_->corrupt_responses++;
    return std::nullopt;
  }
  return std::move(frame->payload);
}

}  // namespace kvd
