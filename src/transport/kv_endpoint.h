// Topology-independent client interface.
//
// Every client in the repo — Client (one server), MultiNicClient (sharded
// servers), ReplicatedClient (one replicated group), ClusterClient (sharded
// replicated groups) — speaks this interface, so a benchmark or test driver
// written once (bench/bench_util.h DriveEndpoint, the YCSB harness) runs
// unchanged against any topology.
//
// Enqueue/Flush is the reliable batched path all endpoints implement.
// SubmitPacket is the raw datagram path used by closed-loop throughput
// benches (no framing, no retry — the bench counts undecoded responses);
// only endpoints with a single direct server wire support it.
//
// The consistency harness taps this interface too: RecordingEndpoint
// (src/check/history.h) wraps any KvEndpoint and captures every op's
// invoke/return interval and observed result for the linearizability checker
// — one wrapper covers every topology.
#ifndef SRC_TRANSPORT_KV_ENDPOINT_H_
#define SRC_TRANSPORT_KV_ENDPOINT_H_

#include <functional>
#include <vector>

#include "src/net/kv_types.h"
#include "src/sim/simulator.h"
#include "src/transport/reliable_sender.h"

namespace kvd {

class KvEndpoint {
 public:
  virtual ~KvEndpoint() = default;

  // Queues one operation; returns its slot in the next Flush()'s results.
  virtual size_t Enqueue(KvOperation op) = 0;

  // Sends everything queued and runs the simulation until every operation
  // has a result (in Enqueue order).
  virtual std::vector<KvResultMessage> Flush() = 0;

  // Wire-level counters (retransmits, corrupt/duplicate responses, ...);
  // sharded endpoints sum across their per-shard clients.
  virtual ReliableSender::Stats endpoint_stats() const = 0;

  // Simulated clock, for latency measurement around Enqueue/Flush or
  // SubmitPacket.
  virtual SimTime now() const = 0;

  // Advances the endpoint's simulation by one event; false when idle (or when
  // the endpoint spans independent clocks and cannot be stepped as one).
  virtual bool Step() = 0;

  // Raw datagram path: ships one already-encoded ops payload and invokes
  // `done` when its (undecoded) response reaches the client side. Returns
  // false if this endpoint has no raw path; the payload is then untouched.
  virtual bool SubmitPacket(std::vector<uint8_t> /*ops_payload*/,
                            std::function<void()> /*done*/) {
    return false;
  }
};

}  // namespace kvd

#endif  // SRC_TRANSPORT_KV_ENDPOINT_H_
