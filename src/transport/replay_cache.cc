#include "src/transport/replay_cache.h"

#include <algorithm>
#include <utility>

namespace kvd {

void ReplayCache::Admit(uint64_t sequence) {
  // Bounded rotating scan: examine at most min(queue, kMaxEvictScanSteps)
  // entries. An eligible victim is evicted; a pinned entry rotates to the
  // back so the next admission starts past it. Stale slots (erased by
  // DropInFlight) are reclaimed for free.
  const size_t limit =
      std::min<size_t>(order_.size(), kMaxEvictScanSteps);
  size_t examined = 0;
  while (order_.size() >= config_.entries && examined < limit) {
    examined++;
    evict_scan_steps_++;
    const uint64_t victim = order_.front();
    const auto it = entries_.find(victim);
    if (it == entries_.end()) {
      order_.pop_front();  // stale: already erased by DropInFlight
      continue;
    }
    if (!it->second.done ||
        sim_.Now() < it->second.done_at + config_.retain_time) {
      // Pinned: in flight, or a retransmission may still be on the wire.
      order_.pop_front();
      order_.push_back(victim);
      continue;
    }
    entries_.erase(it);
    order_.pop_front();
  }
  entries_.try_emplace(sequence);
  order_.push_back(sequence);
}

void ReplayCache::Complete(uint64_t sequence, std::vector<uint8_t> response) {
  auto [it, inserted] = entries_.try_emplace(sequence);
  if (inserted) {
    order_.push_back(sequence);
  }
  it->second.done = true;
  it->second.done_at = sim_.Now();
  it->second.response = std::move(response);
}

void ReplayCache::DropInFlight() {
  std::vector<uint64_t> in_flight;
  for (const auto& [sequence, entry] : entries_) {
    if (!entry.done) {
      in_flight.push_back(sequence);
    }
  }
  // The erased set is order-independent; order_ keeps stale slots that the
  // eviction scan skips over and reclaims.
  for (const uint64_t sequence : in_flight) {
    entries_.erase(sequence);
  }
}

}  // namespace kvd
