// Reliable framing (the retry/timeout layer's wire format).
//
// The lossless packet encoding in src/net/wire_format.h carries no identity:
// a retransmitted request is indistinguishable from a new one and a corrupted
// packet decodes as garbage. The frame header adds both:
//
//   u64 sequence | u32 checksum | payload bytes
//
// `sequence` identifies the packet across retransmissions (FrameEndpoint
// dedups on it for idempotent replay) and `checksum` covers sequence +
// payload, so in-flight bit flips are detected and the frame is dropped
// rather than decoded. Responses echo the request sequence.
//
// This is the transport layer's only wire format; every framed path —
// single-server client requests, replica client requests, and replication
// links — uses it. Keep checksum/framing logic here (scripts/ci.sh guards
// against copies appearing elsewhere).
//
// Deadlines ride inside the payload encoding (wire_format kFlagHasDeadline),
// not in this header: a retransmitted frame must stay byte-identical to the
// original so the server replay cache and checksum keep working, which rules
// out restamping anything at the framing layer.
#ifndef SRC_TRANSPORT_FRAME_H_
#define SRC_TRANSPORT_FRAME_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace kvd {

inline constexpr size_t kFrameHeaderBytes = 12;

std::vector<uint8_t> FramePacket(uint64_t sequence, std::span<const uint8_t> payload);

struct Frame {
  uint64_t sequence = 0;
  std::vector<uint8_t> payload;
};

// Verifies the checksum; kInvalidArgument on truncation or corruption.
Result<Frame> ParseFrame(std::span<const uint8_t> packet);

}  // namespace kvd

#endif  // SRC_TRANSPORT_FRAME_H_
