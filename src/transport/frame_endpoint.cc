#include "src/transport/frame_endpoint.h"

#include <utility>

namespace kvd {

std::optional<Frame> FrameEndpoint::Accept(std::span<const uint8_t> packet,
                                           const Responder& respond) {
  Result<Frame> frame = ParseFrame(packet);
  if (!frame.ok()) {
    stats_.corrupt_frames++;
    return std::nullopt;
  }
  const std::vector<uint8_t>* cached = nullptr;
  switch (cache_.Lookup(frame->sequence, &cached)) {
    case ReplayCache::Hit::kDone:
      stats_.replayed_responses++;
      respond(*cached);
      return std::nullopt;
    case ReplayCache::Hit::kInFlight:
      stats_.stale_retransmits++;
      return std::nullopt;
    case ReplayCache::Hit::kMiss:
      break;
  }
  return std::move(*frame);
}

std::vector<uint8_t> FrameEndpoint::Complete(
    uint64_t sequence, std::span<const uint8_t> response_payload, bool cache) {
  std::vector<uint8_t> framed = FramePacket(sequence, response_payload);
  if (cache) {
    cache_.Complete(sequence, framed);
  }
  return framed;
}

}  // namespace kvd
