// Client-side half of the reliable channel: per-packet retransmission with
// exponential backoff, optional target rotation, and response dedup.
//
// One implementation drives every reliable client (single-server Client,
// ReplicatedClient, and through them MultiNicClient/ClusterClient). The
// sender owns the retry state machine; the owner supplies what differs per
// topology through hooks:
//
//   wire     — actually puts the packet's framed bytes on the wire toward
//              packet->target and arranges for AcceptResponse on delivery.
//   on_fail  — invoked once when a packet exhausts max_attempts: the owner
//              fills its result slots with kTimedOut and unblocks the flush.
//              (Callers see a status, not a crashed process — the process
//              outliving an unreachable server is the point.)
//
// Retry semantics, shared by all owners:
//   - each transmission arms a timer at timeout << min(attempts-1, shift_cap);
//   - a timer firing after completion, or after a newer attempt superseded
//     it (a bounce already re-sent), is a no-op;
//   - a timer firing on the live attempt counts one retransmit and re-sends;
//     with rotation enabled (attempts_per_target > 0), attempts_per_target
//     consecutive timeouts on one target move the packet to the next —
//     that replica may be crashed;
//   - the max_attempts'th timeout fails the packet instead of re-sending.
//
// Resend() is the bounce path (server said "not me"/"not yet": redirect,
// stale read): it re-transmits without counting a retransmit — the wire
// worked; the target was wrong.
#ifndef SRC_TRANSPORT_RELIABLE_SENDER_H_
#define SRC_TRANSPORT_RELIABLE_SENDER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/common/hashing.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/net/kv_types.h"
#include "src/obs/request_trace.h"
#include "src/sim/simulator.h"
#include "src/transport/frame.h"

namespace kvd {

// Per-packet retry state. Owners derive from it to attach their own routing
// and result-slot bookkeeping; the sender only touches these fields.
struct ReliablePacket {
  uint64_t sequence = 0;
  std::vector<uint8_t> framed;  // full framed bytes, re-sent verbatim
  uint32_t target = 0;          // replica index (single-server: always 0)
  uint32_t attempts = 0;
  uint32_t attempts_at_target = 0;
  bool completed = false;
  bool failed = false;           // set by Fail(); implies completed
  // Earliest absolute deadline across the packet's ops (0 = none). The
  // sender stops retransmitting once it passes — retrying work nobody will
  // wait for is how overload turns into collapse.
  SimTime deadline = 0;
  // Why Fail() gave up; the owner copies this into its result slots.
  ResultCode fail_code = ResultCode::kTimedOut;
  // Previous backoff delay, for decorrelated jitter (0 until the first
  // retransmission timer is armed).
  SimTime backoff = 0;
  std::vector<uint64_t> traces;  // per-op trace handles, packet order

  virtual ~ReliablePacket() = default;
};

class ReliableSender {
 public:
  struct RetryPolicy {
    SimTime timeout = 500 * kMicrosecond;
    uint32_t max_attempts = 8;
    // Backoff exponent cap: timeout << min(attempts-1, cap).
    uint32_t backoff_shift_cap = 20;
    // Consecutive timeouts on one target before rotating to the next;
    // 0 disables rotation (single-target topologies).
    uint32_t attempts_per_target = 0;
    uint32_t num_targets = 1;
    // Decorrelated jitter on retransmission backoff: each retry waits
    // uniform[timeout, 3 * previous_wait), capped at timeout << shift_cap.
    // Deterministic backoff retransmits every client in lockstep — a
    // built-in thundering herd; jitter spreads the herd while staying
    // same-seed reproducible through the per-sender RNG stream below. The
    // first attempt's timer is always exactly `timeout`, so fault-free
    // timing is identical with jitter on or off.
    bool jitter = true;
    uint64_t jitter_seed = 0;
    // Token-bucket retry budget: retransmissions spend one token, successful
    // responses refill `retry_refill_per_success`. During a 100%-failure
    // storm the sender converges to ~budget total retransmits instead of
    // amplifying exponentially. 0 disables the budget.
    uint32_t retry_budget = 0;
    double retry_refill_per_success = 0.1;
  };

  // Owned by the client (stable address, readable through client.stats()).
  // The sender updates retransmits / corrupt_responses / duplicate_responses;
  // the owner counts packets_sent and busy_retries itself.
  struct Stats {
    uint64_t packets_sent = 0;
    uint64_t retransmits = 0;
    uint64_t busy_retries = 0;
    uint64_t corrupt_responses = 0;
    uint64_t duplicate_responses = 0;
    uint64_t deadline_failures = 0;  // packets abandoned past their deadline
    uint64_t budget_exhausted = 0;   // retransmits suppressed by the budget
    uint64_t hedged_sends = 0;       // duplicate sends to a second target
  };

  using PacketPtr = std::shared_ptr<ReliablePacket>;
  using Hook = std::function<void(const PacketPtr&)>;

  ReliableSender(Simulator& sim, RetryPolicy policy, Stats* stats,
                 std::function<RequestTracer&()> tracer, Hook wire,
                 Hook on_fail)
      : sim_(sim),
        policy_(policy),
        stats_(stats),
        tracer_(std::move(tracer)),
        wire_(std::move(wire)),
        on_fail_(std::move(on_fail)),
        retry_tokens_(policy_.retry_budget) {
    jitter_rng_.Seed(Mix64(policy_.jitter_seed ^ 0x9e1bd5a7c3f0d24bULL));
  }

  // First transmission of a packet (the owner has already framed it and
  // counted packets_sent).
  void Send(const PacketPtr& packet) { Transmit(packet); }

  // Bounce path re-send (see file comment). Checks exhaustion: a packet that
  // bounces forever fails just like one that times out forever.
  void Resend(const PacketPtr& packet);

  // Re-routes the packet (modulo num_targets) and resets its per-target
  // timeout streak.
  void Retarget(const PacketPtr& packet, uint32_t target) {
    packet->target = target % policy_.num_targets;
    packet->attempts_at_target = 0;
  }

  // Response admission: drops duplicates (a completed packet) and corrupt or
  // foreign frames, counting them. Returns the frame payload for the owner
  // to decode, or nullopt when the response was consumed here.
  std::optional<std::vector<uint8_t>> AcceptResponse(
      const PacketPtr& packet, std::span<const uint8_t> response);

  // For owner-side decode failures after AcceptResponse succeeded (the frame
  // was intact but its payload was not): the retransmission timer recovers.
  void NoteCorruptResponse() { stats_->corrupt_responses++; }

  const RetryPolicy& policy() const { return policy_; }
  // Remaining retry-budget tokens (== configured budget when disabled).
  double retry_tokens() const { return retry_tokens_; }

 private:
  void Transmit(const PacketPtr& packet);
  void Fail(const PacketPtr& packet);
  // Backoff delay for the timer armed after attempt `attempts`.
  SimTime BackoffDelay(const PacketPtr& packet);

  Simulator& sim_;
  RetryPolicy policy_;
  Stats* stats_;
  std::function<RequestTracer&()> tracer_;
  Hook wire_;
  Hook on_fail_;
  Rng jitter_rng_;
  double retry_tokens_;
};

}  // namespace kvd

#endif  // SRC_TRANSPORT_RELIABLE_SENDER_H_
