// DRAM load dispatcher (paper §3.3.4, Figure 7, §4 "DRAM Load Dispatcher").
//
// The on-NIC DRAM (4 GiB, 12.8 GB/s) is too small to hold the store and too
// slow to serve as a pure cache in front of PCIe (13.2 GB/s). KV-Direct
// instead caches only a *hash-selected fraction l* of host memory — the load
// dispatch ratio — so the two bandwidths add:
//
//   cacheable(addr)  = Hash(addr / 64) < l          (64 B granularity)
//   non-cacheable    -> PCIe directly
//   cacheable hit    -> NIC DRAM
//   cacheable miss   -> PCIe fetch + DRAM fill (+ writeback when dirty)
//
// Cache metadata (4 tag bits + dirty bit per 64 B line) lives in spare ECC
// bits (§4), so metadata costs no extra DRAM transaction — the model keeps
// the metadata in a side array and charges no access for it. The cache is
// direct-mapped: with host:NIC = 16:1, 4 tag bits suffice.
//
// Policies (ablation for Figure 14):
//   kHybrid        — the paper's design, dispatch ratio l
//   kPcieOnly      — baseline: all accesses to PCIe
//   kCacheAll      — classic cache: every line cacheable (l = 1)
//   kFixedPartition— first l fraction of memory pinned in DRAM, rest on PCIe
#ifndef SRC_DRAM_LOAD_DISPATCHER_H_
#define SRC_DRAM_LOAD_DISPATCHER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/units.h"
#include "src/dram/nic_dram.h"
#include "src/mem/access_engine.h"
#include "src/obs/event_tracer.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metric_registry.h"
#include "src/obs/request_trace.h"
#include "src/pcie/dma_engine.h"
#include "src/sim/simulator.h"

namespace kvd {

enum class DispatchPolicy : uint8_t {
  kHybrid,
  kPcieOnly,
  kCacheAll,
  kFixedPartition,
};

struct LoadDispatcherConfig {
  DispatchPolicy policy = DispatchPolicy::kHybrid;
  double dispatch_ratio = 0.5;       // l: fraction of host memory cacheable
  uint64_t host_memory_bytes = 0;    // required; cache indexing is derived
  uint64_t nic_dram_bytes = 4 * kGiB;
};

struct DispatchStats {
  uint64_t pcie_accesses = 0;
  uint64_t dram_hits = 0;
  uint64_t dram_misses = 0;   // cacheable but absent: PCIe fetch + fill
  uint64_t writebacks = 0;    // dirty evictions
  uint64_t ecc_demotions = 0; // uncorrectable ECC: line dropped, host re-read

  uint64_t total() const { return pcie_accesses + dram_hits + dram_misses; }
  double HitRate() const {
    const uint64_t cacheable = dram_hits + dram_misses;
    return cacheable > 0 ? static_cast<double>(dram_hits) / static_cast<double>(cacheable)
                         : 0.0;
  }
};

class LoadDispatcher {
 public:
  LoadDispatcher(Simulator& sim, DmaEngine& dma, NicDram& dram,
                 const LoadDispatcherConfig& config);

  // Routes one timed memory access. `done` fires when the data is available
  // (read) or accepted (write). `trace` (if nonzero) records a kMemAccess
  // span with the chosen route as detail, plus the underlying DMA/DRAM spans.
  void Access(AccessKind kind, uint64_t address, uint32_t bytes,
              std::function<void()> done, uint64_t trace = 0);

  const DispatchStats& stats() const { return stats_; }
  const LoadDispatcherConfig& config() const { return config_; }

  void RegisterMetrics(MetricRegistry& registry) const;
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }
  void SetRequestTracer(RequestTracer* tracer) { request_tracer_ = tracer; }
  // ECC demotions fire the flight recorder once the recovery read completes.
  void SetFlightRecorder(FlightRecorder* recorder) { flight_ = recorder; }

  // Solves the paper's load-balance condition for the optimal dispatch ratio:
  // PCIe demand [(1-l) + l(1-h(l))] / tput_pcie equals DRAM demand
  // [l·h(l) + 2·l·(1-h(l))] / tput_dram, where h(l) is the cache hit rate.
  //   uniform workload: h(l) = min(k/l, 1),  k = nic_size / host_size
  //   long-tail (Zipf): h(l) = log(k·n) / log(l·n) for an n-key corpus
  static double OptimalDispatchRatio(double tput_pcie, double tput_dram, double k,
                                     bool long_tail, double corpus_keys = 1e9);

 private:
  bool IsCacheable(uint64_t address) const;
  // Per-line cache state transition; returns hit/miss/writeback via stats.
  struct LineOutcome {
    bool hit = false;
    bool writeback = false;
  };
  LineOutcome TouchLine(uint64_t address, bool is_write);
  // Wraps `done` so its invocation closes a kMemAccess span tagged `route`.
  std::function<void()> TraceDone(uint64_t trace, uint64_t route,
                                  std::function<void()> done);

  Simulator& sim_;
  DmaEngine& dma_;
  NicDram& dram_;
  LoadDispatcherConfig config_;
  EventTracer* tracer_ = nullptr;
  RequestTracer* request_tracer_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  uint64_t cacheable_threshold_;  // dispatch ratio scaled to the hash range
  uint64_t num_cache_lines_;

  // Direct-mapped cache metadata: tag (line address) or kInvalidTag per slot,
  // plus a dirty flag. Lives in spare ECC bits in the real hardware.
  static constexpr uint64_t kInvalidTag = ~uint64_t{0};
  std::vector<uint64_t> line_tag_;
  std::vector<bool> line_dirty_;

  DispatchStats stats_;
};

}  // namespace kvd

#endif  // SRC_DRAM_LOAD_DISPATCHER_H_
