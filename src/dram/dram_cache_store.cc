#include "src/dram/dram_cache_store.h"

#include <cstring>

#include "src/common/assert.h"

namespace kvd {

DramCacheStore::DramCacheStore(uint64_t num_lines)
    : num_lines_(num_lines), arena_(num_lines * kStoredLineBytes) {
  KVD_CHECK(num_lines > 0);
  // Identity initialization: slot i caches host line i (tag 0) with zero
  // data, clean — consistent with a zero-initialized store, so no valid bit
  // is needed (paper §4).
  const std::array<uint8_t, kLineBytes> zeros{};
  for (uint64_t slot = 0; slot < num_lines_; slot++) {
    StoreLine(slot, EncodeLine(zeros, LineMetadata{0, false}));
  }
}

uint64_t DramCacheStore::SlotOf(uint64_t host_address) const {
  return (host_address / kLineBytes) % num_lines_;
}

uint8_t DramCacheStore::TagOf(uint64_t host_address) const {
  const uint64_t tag = host_address / kLineBytes / num_lines_;
  KVD_CHECK_MSG(tag < 16, "host address beyond the 4-bit tag range");
  return static_cast<uint8_t>(tag);
}

EccLine DramCacheStore::LoadLine(uint64_t slot) const {
  EccLine line;
  uint8_t raw[kStoredLineBytes];
  arena_.Read(SlotBase(slot), raw);
  for (int w = 0; w < 8; w++) {
    std::memcpy(&line.words[w], raw + w * 8, 8);
  }
  std::memcpy(line.ecc.data(), raw + 64, 8);
  return line;
}

void DramCacheStore::StoreLine(uint64_t slot, const EccLine& line) {
  uint8_t raw[kStoredLineBytes];
  for (int w = 0; w < 8; w++) {
    std::memcpy(raw + w * 8, &line.words[w], 8);
  }
  std::memcpy(raw + 64, line.ecc.data(), 8);
  arena_.Write(SlotBase(slot), raw);
}

std::optional<DramCacheStore::LookupResult> DramCacheStore::Lookup(
    uint64_t host_address) {
  const uint64_t slot = SlotOf(host_address);
  EccLine line = LoadLine(slot);
  LookupResult result;
  const LineDecodeResult decode = DecodeLine(line, result.data);
  if (decode.double_error_detected ||
      decode.status == EccDecodeStatus::kUncorrectable) {
    // Unrecoverable corruption: drop the line (the dispatcher refetches from
    // host memory, which is authoritative for clean lines).
    double_errors_++;
    const std::array<uint8_t, kLineBytes> zeros{};
    StoreLine(slot, EncodeLine(zeros, LineMetadata{0, false}));
    return std::nullopt;
  }
  if (decode.corrected_words > 0) {
    corrected_errors_ += decode.corrected_words;
    StoreLine(slot, line);  // scrub the repaired line back to DRAM
  }
  if (decode.metadata.address_tag != TagOf(host_address)) {
    return std::nullopt;  // different host line resident
  }
  result.dirty = decode.metadata.dirty;
  return result;
}

std::optional<DramCacheStore::Eviction> DramCacheStore::Install(
    uint64_t host_address, std::span<const uint8_t> data, bool dirty) {
  KVD_CHECK(data.size() == kLineBytes);
  const uint64_t slot = SlotOf(host_address);
  std::optional<Eviction> eviction;

  EccLine previous = LoadLine(slot);
  std::array<uint8_t, kLineBytes> previous_data;
  const LineDecodeResult decode = DecodeLine(previous, previous_data);
  if (!decode.double_error_detected &&
      decode.status != EccDecodeStatus::kUncorrectable) {
    corrected_errors_ += decode.corrected_words;
    if (decode.metadata.dirty) {
      Eviction out;
      out.dirty = true;
      // Reconstruct the evictee's host address from its tag and the slot.
      out.host_address =
          (static_cast<uint64_t>(decode.metadata.address_tag) * num_lines_ + slot) *
          kLineBytes;
      out.data = previous_data;
      eviction = out;
    }
  } else {
    double_errors_++;  // the displaced line was corrupt; nothing to write back
  }

  StoreLine(slot, EncodeLine(data, LineMetadata{TagOf(host_address), dirty}));
  return eviction;
}

bool DramCacheStore::MarkDirty(uint64_t host_address, std::span<const uint8_t> new_data) {
  KVD_CHECK(new_data.size() == kLineBytes);
  const uint64_t slot = SlotOf(host_address);
  EccLine line = LoadLine(slot);
  std::array<uint8_t, kLineBytes> data;
  const LineDecodeResult decode = DecodeLine(line, data);
  if (decode.double_error_detected ||
      decode.status == EccDecodeStatus::kUncorrectable ||
      decode.metadata.address_tag != TagOf(host_address)) {
    return false;
  }
  StoreLine(slot, EncodeLine(new_data, LineMetadata{TagOf(host_address), true}));
  return true;
}

void DramCacheStore::InjectBitFlip(uint64_t cache_line, uint32_t bit) {
  KVD_CHECK(cache_line < num_lines_ && bit < kStoredLineBytes * 8);
  uint8_t byte;
  const uint64_t address = SlotBase(cache_line) + bit / 8;
  arena_.Read(address, std::span<uint8_t>(&byte, 1));
  byte ^= static_cast<uint8_t>(1u << (bit % 8));
  arena_.Write(address, std::span<const uint8_t>(&byte, 1));
}

}  // namespace kvd
