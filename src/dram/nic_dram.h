// Timing model of the NIC's on-board DRAM (paper §2.3, §3.3.4).
//
// The board carries 4 GiB of DDR3-1600 on a single channel: 12.8 GB/s peak,
// which is *slightly slower* than the two PCIe endpoints combined
// (13.2 GB/s achievable) — the reason pure caching loses to hybrid load
// dispatch in Figure 14. Modelled as a serial resource with fixed access
// latency plus bandwidth-proportional occupancy.
#ifndef SRC_DRAM_NIC_DRAM_H_
#define SRC_DRAM_NIC_DRAM_H_

#include <cstdint>
#include <functional>

#include "src/common/units.h"
#include "src/obs/event_tracer.h"
#include "src/obs/metric_registry.h"
#include "src/sim/simulator.h"

namespace kvd {

struct NicDramConfig {
  uint64_t capacity_bytes = 4 * kGiB;
  double bandwidth_bytes_per_sec = 12.8e9;  // DDR3-1600 single channel, peak
  // Random 64 B accesses pay row activation/precharge on most accesses; a
  // closed-page DDR3 channel sustains roughly 60% of peak on such a stream.
  // Effective random throughput ~7.7 GB/s (~120 M 64 B accesses/s) — below
  // the two PCIe endpoints' 13.2 GB/s, which is exactly why the paper
  // dispatches load instead of using the DRAM as a pure cache (§3.3.4).
  double random_access_efficiency = 0.6;
  SimTime access_latency = 120 * kNanosecond;  // controller + DDR3 latency
};

class NicDram {
 public:
  NicDram(Simulator& sim, const NicDramConfig& config);

  // Performs a timed access of `bytes`; `done` fires when complete.
  void Access(uint32_t bytes, std::function<void()> done);

  const NicDramConfig& config() const { return config_; }
  uint64_t accesses() const { return accesses_; }
  uint64_t bytes_transferred() const { return bytes_; }

  void RegisterMetrics(MetricRegistry& registry) const;
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }

 private:
  Simulator& sim_;
  NicDramConfig config_;
  EventTracer* tracer_ = nullptr;
  double picos_per_byte_;
  SimTime channel_free_at_ = 0;
  uint64_t accesses_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace kvd

#endif  // SRC_DRAM_NIC_DRAM_H_
