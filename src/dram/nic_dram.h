// Timing model of the NIC's on-board DRAM (paper §2.3, §3.3.4).
//
// The board carries 4 GiB of DDR3-1600 on a single channel: 12.8 GB/s peak,
// which is *slightly slower* than the two PCIe endpoints combined
// (13.2 GB/s achievable) — the reason pure caching loses to hybrid load
// dispatch in Figure 14. Modelled as a serial resource with fixed access
// latency plus bandwidth-proportional occupancy.
#ifndef SRC_DRAM_NIC_DRAM_H_
#define SRC_DRAM_NIC_DRAM_H_

#include <cstdint>
#include <functional>

#include "src/common/units.h"
#include "src/fault/fault_injector.h"
#include "src/obs/event_tracer.h"
#include "src/obs/metric_registry.h"
#include "src/obs/request_trace.h"
#include "src/sim/simulator.h"

namespace kvd {

struct NicDramConfig {
  uint64_t capacity_bytes = 4 * kGiB;
  double bandwidth_bytes_per_sec = 12.8e9;  // DDR3-1600 single channel, peak
  // Random 64 B accesses pay row activation/precharge on most accesses; a
  // closed-page DDR3 channel sustains roughly 60% of peak on such a stream.
  // Effective random throughput ~7.7 GB/s (~120 M 64 B accesses/s) — below
  // the two PCIe endpoints' 13.2 GB/s, which is exactly why the paper
  // dispatches load instead of using the DRAM as a pure cache (§3.3.4).
  double random_access_efficiency = 0.6;
  SimTime access_latency = 120 * kNanosecond;  // controller + DDR3 latency
};

// What the ECC lane reported for a line read under fault injection.
enum class EccReadOutcome : uint8_t {
  kClean,          // no flip injected
  kCorrected,      // single-bit flip repaired by Hamming(71,64)
  kUncorrectable,  // multi-bit flip detected; line content is untrustworthy
};

class NicDram {
 public:
  NicDram(Simulator& sim, const NicDramConfig& config);

  // Performs a timed access of `bytes`; `done` fires when complete. `trace`
  // (if nonzero) records a kNicDramAccess span covering queueing + access.
  void Access(uint32_t bytes, std::function<void()> done, uint64_t trace = 0);

  // Consults the fault injector for a bit flip on a line read at `address`
  // and, if one fires, pushes it through the real ECC codec
  // (src/dram/ecc_metadata): a single-bit flip must come back corrected
  // with data and metadata intact; a double-bit flip in one word must be
  // detected-but-uncorrectable. Callers demote uncorrectable lines.
  EccReadOutcome CheckLineRead(uint64_t address);

  const NicDramConfig& config() const { return config_; }
  uint64_t accesses() const { return accesses_; }
  uint64_t bytes_transferred() const { return bytes_; }
  uint64_t ecc_correctable_injected() const { return correctable_injected_; }
  uint64_t ecc_corrected_words() const { return corrected_words_; }
  uint64_t ecc_uncorrectable_injected() const { return uncorrectable_injected_; }

  void RegisterMetrics(MetricRegistry& registry) const;
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }
  void SetRequestTracer(RequestTracer* tracer) { request_tracer_ = tracer; }
  void SetFaultInjector(FaultInjector* injector) { fault_ = injector; }

 private:
  Simulator& sim_;
  NicDramConfig config_;
  EventTracer* tracer_ = nullptr;
  RequestTracer* request_tracer_ = nullptr;
  FaultInjector* fault_ = nullptr;
  double picos_per_byte_;
  SimTime channel_free_at_ = 0;
  uint64_t accesses_ = 0;
  uint64_t bytes_ = 0;
  uint64_t correctable_injected_ = 0;
  uint64_t corrected_words_ = 0;
  uint64_t uncorrectable_injected_ = 0;
};

}  // namespace kvd

#endif  // SRC_DRAM_NIC_DRAM_H_
