// Cache-line metadata in spare ECC bits (paper §4 "DRAM Load Dispatcher").
//
// The DRAM cache needs 4 address-tag bits and a dirty flag per 64-byte line.
// Widening the line to 65 bytes would wreck DRAM alignment; a separate
// metadata array would double accesses. KV-Direct instead steals bits from
// the ECC lane:
//
//   ECC DIMMs provide 8 check bits per 64 data bits -> 64 check bits per
//   64 B line. Hamming single-error correction needs only 7 bits per word
//   (56 total); the customary 8th bit per word is an overall parity that
//   upgrades detection to double-bit errors. Checking parity at 256-bit
//   granularity instead of 64-bit needs just 2 parity bits for the line —
//   double-bit errors are still *detected* — freeing 64-56-2 = 6 bits, enough
//   for the 5 metadata bits with one to spare.
//
// This module is the real codec: Hamming(71,64) per word, two group parity
// bits, and the metadata packed into the freed lane. Tests prove all three
// properties hold simultaneously: single-bit errors correct, double-bit
// errors are detected, and the metadata round-trips untouched.
#ifndef SRC_DRAM_ECC_METADATA_H_
#define SRC_DRAM_ECC_METADATA_H_

#include <array>
#include <cstdint>
#include <span>

namespace kvd {

// --- per-word Hamming(71,64): 64 data bits + 7 check bits ---

// Returns the 7 check bits for `data`.
uint8_t HammingEncode(uint64_t data);

enum class EccDecodeStatus : uint8_t {
  kClean,            // no error
  kCorrectedSingle,  // one bit flipped, repaired in place
  kUncorrectable,    // inconsistent syndrome (multi-bit within the word)
};

// Verifies/corrects `data` (and the check bits) in place.
EccDecodeStatus HammingDecode(uint64_t& data, uint8_t& check_bits);

// --- 64-byte line with metadata in the freed bits ---

struct LineMetadata {
  uint8_t address_tag = 0;  // 4 bits: host line / cache lines (16:1)
  bool dirty = false;

  friend bool operator==(const LineMetadata&, const LineMetadata&) = default;
};

// The stored image: 64 data bytes plus the 8-byte ECC lane.
struct EccLine {
  std::array<uint64_t, 8> words{};
  std::array<uint8_t, 8> ecc{};  // bits [0,7) Hamming; bit 7 repurposed
};

// Encodes data + metadata into the line image.
EccLine EncodeLine(std::span<const uint8_t> data64, const LineMetadata& metadata);

struct LineDecodeResult {
  EccDecodeStatus status = EccDecodeStatus::kClean;
  LineMetadata metadata;
  int corrected_words = 0;  // single-bit corrections applied
  bool double_error_detected = false;  // group parity exposed a 2-bit flip
};

// Verifies/corrects the line in place and extracts the metadata.
// `data64_out` receives the (possibly corrected) 64 data bytes.
LineDecodeResult DecodeLine(EccLine& line, std::span<uint8_t> data64_out);

// Bit layout of the repurposed per-word MSBs (bit 7 of each ecc byte),
// indexed by word: 2 group parity bits, 4 tag bits, 1 dirty bit, 1 spare.
inline constexpr int kParityBitWord0 = 0;   // parity of words 0..3
inline constexpr int kParityBitWord1 = 1;   // parity of words 4..7
inline constexpr int kTagBitsFirstWord = 2;  // words 2..5 carry the tag
inline constexpr int kDirtyBitWord = 6;
inline constexpr int kSpareBitWord = 7;

}  // namespace kvd

#endif  // SRC_DRAM_ECC_METADATA_H_
