#include "src/dram/nic_dram.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/assert.h"

namespace kvd {

NicDram::NicDram(Simulator& sim, const NicDramConfig& config)
    : sim_(sim),
      config_(config),
      picos_per_byte_(PicosPerByte(config.bandwidth_bytes_per_sec *
                                   config.random_access_efficiency)) {}

void NicDram::Access(uint32_t bytes, std::function<void()> done) {
  KVD_CHECK(bytes > 0);
  accesses_++;
  bytes_ += bytes;
  const auto occupancy = static_cast<SimTime>(
      std::llround(static_cast<double>(bytes) * picos_per_byte_));
  const SimTime start = std::max(sim_.Now(), channel_free_at_);
  channel_free_at_ = start + occupancy;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Complete("nic_dram", "access", start,
                      channel_free_at_ + config_.access_latency,
                      {{"bytes", bytes}});
  }
  sim_.ScheduleAt(channel_free_at_ + config_.access_latency, std::move(done));
}

void NicDram::RegisterMetrics(MetricRegistry& registry) const {
  registry.RegisterCounter("kvd_nicdram_accesses_total", "NIC DRAM channel accesses",
                           {}, &accesses_);
  registry.RegisterCounter("kvd_nicdram_bytes_total", "NIC DRAM bytes transferred",
                           {}, &bytes_);
}

}  // namespace kvd
