#include "src/dram/nic_dram.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

#include "src/common/assert.h"
#include "src/common/hashing.h"
#include "src/common/random.h"
#include "src/dram/ecc_metadata.h"

namespace kvd {

NicDram::NicDram(Simulator& sim, const NicDramConfig& config)
    : sim_(sim),
      config_(config),
      picos_per_byte_(PicosPerByte(config.bandwidth_bytes_per_sec *
                                   config.random_access_efficiency)) {}

void NicDram::Access(uint32_t bytes, std::function<void()> done, uint64_t trace) {
  KVD_CHECK(bytes > 0);
  accesses_++;
  bytes_ += bytes;
  const auto occupancy = static_cast<SimTime>(
      std::llround(static_cast<double>(bytes) * picos_per_byte_));
  const SimTime start = std::max(sim_.Now(), channel_free_at_);
  channel_free_at_ = start + occupancy;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Complete("nic_dram", "access", start,
                      channel_free_at_ + config_.access_latency,
                      {{"bytes", bytes}});
  }
  if (trace != 0 && request_tracer_ != nullptr) {
    // The whole channel occupancy plus access latency is known at issue time.
    request_tracer_->Span(trace, SpanKind::kNicDramAccess, sim_.Now(),
                          channel_free_at_ + config_.access_latency, bytes);
  }
  sim_.ScheduleAt(channel_free_at_ + config_.access_latency, std::move(done));
}

EccReadOutcome NicDram::CheckLineRead(uint64_t address) {
  if (fault_ == nullptr) {
    return EccReadOutcome::kClean;
  }
  const bool uncorrectable =
      fault_->ShouldInject(FaultSite::kDramUncorrectableFlip);
  const bool correctable =
      !uncorrectable && fault_->ShouldInject(FaultSite::kDramCorrectableFlip);
  if (!uncorrectable && !correctable) {
    return EccReadOutcome::kClean;
  }
  // Materialise a deterministic stand-in for the stored line and run the
  // flip through the real codec, so correction/detection exercises the
  // actual Hamming + group-parity path rather than a modelled coin toss.
  const uint64_t line_index = address / kCacheLineBytes;
  std::array<uint8_t, kCacheLineBytes> data;
  Rng pattern(Mix64(line_index) ^ 0xeccULL);
  for (auto& b : data) {
    b = static_cast<uint8_t>(pattern.Next());
  }
  const LineMetadata metadata{static_cast<uint8_t>(line_index & 0xf),
                              (line_index & 0x10) != 0};
  EccLine line = EncodeLine(data, metadata);
  Rng& rng = fault_->SiteRng(uncorrectable ? FaultSite::kDramUncorrectableFlip
                                           : FaultSite::kDramCorrectableFlip);
  const int word = static_cast<int>(rng.NextBelow(8));
  const int bit_a = static_cast<int>(rng.NextBelow(64));
  if (uncorrectable) {
    // Two distinct bits in one word: the 256-bit group parity still matches
    // (even flip count) while the word syndrome is inconsistent — the codec
    // must report detected-but-uncorrectable.
    int bit_b = static_cast<int>(rng.NextBelow(63));
    if (bit_b >= bit_a) {
      bit_b++;
    }
    line.words[word] ^= (uint64_t{1} << bit_a) | (uint64_t{1} << bit_b);
  } else {
    line.words[word] ^= uint64_t{1} << bit_a;
  }
  std::array<uint8_t, kCacheLineBytes> decoded;
  const LineDecodeResult result = DecodeLine(line, decoded);
  if (uncorrectable) {
    KVD_CHECK_MSG(result.status == EccDecodeStatus::kUncorrectable,
                  "double-bit flip must be detected as uncorrectable");
    uncorrectable_injected_++;
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant("nic_dram", "ecc_uncorrectable",
                       {{"line", line_index}});
    }
    return EccReadOutcome::kUncorrectable;
  }
  KVD_CHECK_MSG(result.status == EccDecodeStatus::kCorrectedSingle,
                "single-bit flip must be corrected");
  KVD_CHECK_MSG(decoded == data, "ECC correction must restore the data");
  KVD_CHECK_MSG(result.metadata == metadata,
                "ECC correction must preserve line metadata");
  correctable_injected_++;
  corrected_words_ += static_cast<uint64_t>(result.corrected_words);
  return EccReadOutcome::kCorrected;
}

void NicDram::RegisterMetrics(MetricRegistry& registry) const {
  registry.RegisterCounter("kvd_nicdram_accesses_total", "NIC DRAM channel accesses",
                           {}, &accesses_);
  registry.RegisterCounter("kvd_nicdram_bytes_total", "NIC DRAM bytes transferred",
                           {}, &bytes_);
  registry.RegisterCounter("kvd_nicdram_ecc_corrected_total",
                           "Single-bit DRAM errors corrected by ECC", {},
                           &corrected_words_);
  registry.RegisterCounter("kvd_nicdram_ecc_uncorrectable_total",
                           "Multi-bit DRAM errors detected by ECC", {},
                           &uncorrectable_injected_);
}

}  // namespace kvd
