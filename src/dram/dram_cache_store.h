// Data-storing NIC DRAM cache (paper §3.3.4, §4) — the storage counterpart
// of LoadDispatcher's timing model.
//
// A direct-mapped cache of 64-byte lines held in a real memory arena, each
// line stored as 72 bytes: 64 data + the 8-byte ECC lane carrying Hamming
// check bits, two 256-bit-granularity parity bits, the 4-bit address tag and
// the dirty flag (ecc_metadata.h). No valid bit exists — the paper notes the
// NIC accesses the KVS exclusively, so lines are initialized to cache the
// identity mapping of a zeroed store (line i holds host line i).
//
// Single-bit DRAM errors are corrected transparently on lookup; double-bit
// errors surface as misses with `double_errors` counted — the store then
// refetches from host memory, which is exactly how the hardware would
// recover.
#ifndef SRC_DRAM_DRAM_CACHE_STORE_H_
#define SRC_DRAM_DRAM_CACHE_STORE_H_

#include <cstdint>
#include <optional>
#include <span>

#include "src/dram/ecc_metadata.h"
#include "src/mem/host_memory.h"

namespace kvd {

class DramCacheStore {
 public:
  // `num_lines` cache lines; host addresses must satisfy
  // (host_line / num_lines) < 16 — the 4-bit tag budget (host:NIC <= 16:1).
  explicit DramCacheStore(uint64_t num_lines);

  static constexpr uint32_t kLineBytes = 64;
  static constexpr uint32_t kStoredLineBytes = 72;  // data + ECC lane

  struct LookupResult {
    std::array<uint8_t, kLineBytes> data;
    bool dirty;
  };

  // Returns the line's contents if `host_address`'s line is resident.
  // Corrects single-bit errors in place; a detected double-bit error evicts
  // the line (counted) and reports a miss.
  std::optional<LookupResult> Lookup(uint64_t host_address);

  struct Eviction {
    bool dirty = false;          // a dirty line was displaced
    uint64_t host_address = 0;   // where it must be written back
    std::array<uint8_t, kLineBytes> data{};
  };

  // Installs a line for `host_address`, displacing the previous occupant.
  // Returns the eviction record when the displaced line was dirty.
  std::optional<Eviction> Install(uint64_t host_address,
                                  std::span<const uint8_t> data, bool dirty);

  // Marks the resident line dirty (write hit). Returns false on tag miss.
  bool MarkDirty(uint64_t host_address, std::span<const uint8_t> new_data);

  // Flips one stored bit of a cache line — DRAM fault injection for tests.
  // `bit` indexes the 576 stored bits (data then ECC lane).
  void InjectBitFlip(uint64_t cache_line, uint32_t bit);

  uint64_t corrected_errors() const { return corrected_errors_; }
  uint64_t double_errors() const { return double_errors_; }
  uint64_t num_lines() const { return num_lines_; }

 private:
  uint64_t SlotOf(uint64_t host_address) const;
  uint8_t TagOf(uint64_t host_address) const;
  uint64_t SlotBase(uint64_t slot) const { return slot * kStoredLineBytes; }

  EccLine LoadLine(uint64_t slot) const;
  void StoreLine(uint64_t slot, const EccLine& line);

  uint64_t num_lines_;
  HostMemory arena_;
  uint64_t corrected_errors_ = 0;
  uint64_t double_errors_ = 0;
};

}  // namespace kvd

#endif  // SRC_DRAM_DRAM_CACHE_STORE_H_
