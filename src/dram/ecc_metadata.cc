#include "src/dram/ecc_metadata.h"

#include <bit>
#include <cstring>

#include "src/common/assert.h"

namespace kvd {
namespace {

// Hamming(71,64): the codeword has positions 1..71; positions that are
// powers of two (1,2,4,...,64) hold the seven check bits, the rest hold data
// bits in order. Check bit c (at position 2^c) covers every position whose
// binary representation has bit c set, so the syndrome of a single flipped
// bit equals its position.

// Position (1-based, skipping powers of two) of data bit `i`.
constexpr std::array<uint8_t, 64> BuildDataPositions() {
  std::array<uint8_t, 64> positions{};
  int index = 0;
  for (uint8_t position = 1; index < 64; position++) {
    if ((position & (position - 1)) != 0) {  // not a power of two
      positions[index++] = position;
    }
  }
  return positions;
}

constexpr std::array<uint8_t, 64> kDataPositions = BuildDataPositions();

// Syndrome contribution of the data bits alone.
uint8_t DataSyndrome(uint64_t data) {
  uint8_t syndrome = 0;
  while (data != 0) {
    const int i = std::countr_zero(data);
    data &= data - 1;
    syndrome ^= kDataPositions[i];
  }
  return syndrome;
}

// Parity of the full codeword (data + 7 Hamming check bits): flipping *any*
// stored bit toggles it, so odd-vs-even flip counts stay distinguishable for
// check-bit errors too.
bool CodewordParity(uint64_t data, uint8_t check_bits) {
  return (std::popcount(data) + std::popcount(static_cast<unsigned>(check_bits & 0x7f))) & 1;
}

void SetRepurposedBit(EccLine& line, int word, bool value) {
  if (value) {
    line.ecc[word] |= 0x80;
  } else {
    line.ecc[word] &= 0x7f;
  }
}

bool GetRepurposedBit(const EccLine& line, int word) {
  return (line.ecc[word] & 0x80) != 0;
}

}  // namespace

uint8_t HammingEncode(uint64_t data) {
  // Choosing check bits equal to the data syndrome makes the total syndrome
  // zero for a clean word.
  return DataSyndrome(data);
}

EccDecodeStatus HammingDecode(uint64_t& data, uint8_t& check_bits) {
  const uint8_t syndrome = DataSyndrome(data) ^ check_bits;
  if (syndrome == 0) {
    return EccDecodeStatus::kClean;
  }
  // A syndrome that is a power of two points at a flipped check bit.
  if ((syndrome & (syndrome - 1)) == 0) {
    check_bits ^= syndrome;
    return EccDecodeStatus::kCorrectedSingle;
  }
  // Otherwise it points at a data position; find which data bit lives there.
  for (int i = 0; i < 64; i++) {
    if (kDataPositions[i] == syndrome) {
      data ^= uint64_t{1} << i;
      return EccDecodeStatus::kCorrectedSingle;
    }
  }
  // Positions run 1..71; syndromes beyond that cannot arise from one flip.
  return EccDecodeStatus::kUncorrectable;
}

EccLine EncodeLine(std::span<const uint8_t> data64, const LineMetadata& metadata) {
  KVD_CHECK(data64.size() == 64);
  KVD_CHECK(metadata.address_tag < 16);
  EccLine line;
  for (int w = 0; w < 8; w++) {
    std::memcpy(&line.words[w], data64.data() + w * 8, 8);
    line.ecc[w] = HammingEncode(line.words[w]);
  }
  // Group parity at 256-bit granularity (words 0..3 and 4..7), over data
  // and check bits alike.
  bool parity0 = false;
  bool parity1 = false;
  for (int w = 0; w < 4; w++) {
    parity0 ^= CodewordParity(line.words[w], line.ecc[w]);
  }
  for (int w = 4; w < 8; w++) {
    parity1 ^= CodewordParity(line.words[w], line.ecc[w]);
  }
  SetRepurposedBit(line, kParityBitWord0, parity0);
  SetRepurposedBit(line, kParityBitWord1, parity1);
  // Metadata in the freed bits.
  for (int bit = 0; bit < 4; bit++) {
    SetRepurposedBit(line, kTagBitsFirstWord + bit,
                     (metadata.address_tag >> bit) & 1);
  }
  SetRepurposedBit(line, kDirtyBitWord, metadata.dirty);
  SetRepurposedBit(line, kSpareBitWord, false);
  return line;
}

LineDecodeResult DecodeLine(EccLine& line, std::span<uint8_t> data64_out) {
  KVD_CHECK(data64_out.size() == 64);
  LineDecodeResult result;
  // Group parity is computed over the *data* bits as stored, before any
  // correction: a single data-bit flip leaves it mismatched (odd flips), a
  // double flip leaves it matched (even flips). That distinction — the role
  // the customary per-word 8th ECC bit plays — survives the widening to
  // 256-bit granularity (paper §4), at the price of attributing at most one
  // error event per group.
  bool group_mismatch[2];
  for (int g = 0; g < 2; g++) {
    bool parity = false;
    for (int w = g * 4; w < g * 4 + 4; w++) {
      parity ^= CodewordParity(line.words[w], line.ecc[w]);
    }
    group_mismatch[g] = parity != GetRepurposedBit(line, g == 0 ? kParityBitWord0
                                                                : kParityBitWord1);
  }

  for (int w = 0; w < 8; w++) {
    uint8_t check = line.ecc[w] & 0x7f;
    const uint8_t syndrome = DataSyndrome(line.words[w]) ^ check;
    if (syndrome == 0) {
      continue;
    }
    const int group = w / 4;
    if (!group_mismatch[group]) {
      // Non-zero syndrome with consistent group parity: an even number of
      // flips — the double-bit error SECDED promises to *detect*.
      result.double_error_detected = true;
      result.status = EccDecodeStatus::kUncorrectable;
      continue;
    }
    // Odd flips in the group: the single error the code can repair. The
    // syndrome names either a check position (power of two) or a data
    // position.
    bool corrected = false;
    if ((syndrome & (syndrome - 1)) == 0) {
      check ^= syndrome;
      line.ecc[w] = static_cast<uint8_t>((line.ecc[w] & 0x80) | check);
      corrected = true;
    } else {
      for (int i = 0; i < 64; i++) {
        if (kDataPositions[i] == syndrome) {
          line.words[w] ^= uint64_t{1} << i;
          corrected = true;
          break;
        }
      }
    }
    if (corrected) {
      group_mismatch[group] = false;  // one event per group
      result.corrected_words++;
      if (result.status == EccDecodeStatus::kClean) {
        result.status = EccDecodeStatus::kCorrectedSingle;
      }
    } else {
      result.status = EccDecodeStatus::kUncorrectable;
      result.double_error_detected = true;
    }
  }

  for (int w = 0; w < 8; w++) {
    std::memcpy(data64_out.data() + w * 8, &line.words[w], 8);
  }
  for (int bit = 0; bit < 4; bit++) {
    result.metadata.address_tag |= static_cast<uint8_t>(
        GetRepurposedBit(line, kTagBitsFirstWord + bit) << bit);
  }
  result.metadata.dirty = GetRepurposedBit(line, kDirtyBitWord);
  return result;
}

}  // namespace kvd
