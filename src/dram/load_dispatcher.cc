#include "src/dram/load_dispatcher.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/assert.h"
#include "src/common/hashing.h"

namespace kvd {

LoadDispatcher::LoadDispatcher(Simulator& sim, DmaEngine& dma, NicDram& dram,
                               const LoadDispatcherConfig& config)
    : sim_(sim), dma_(dma), dram_(dram), config_(config) {
  KVD_CHECK_MSG(config.host_memory_bytes > 0, "host_memory_bytes required");
  KVD_CHECK(config.dispatch_ratio >= 0.0 && config.dispatch_ratio <= 1.0);
  double ratio = config.dispatch_ratio;
  if (config.policy == DispatchPolicy::kCacheAll) {
    ratio = 1.0;
  }
  cacheable_threshold_ = static_cast<uint64_t>(
      ratio * static_cast<double>(~uint64_t{0}));
  num_cache_lines_ = std::max<uint64_t>(1, config.nic_dram_bytes / kCacheLineBytes);
  line_tag_.assign(num_cache_lines_, kInvalidTag);
  line_dirty_.assign(num_cache_lines_, false);
}

bool LoadDispatcher::IsCacheable(uint64_t address) const {
  switch (config_.policy) {
    case DispatchPolicy::kPcieOnly:
      return false;
    case DispatchPolicy::kCacheAll:
      return true;
    case DispatchPolicy::kFixedPartition:
      // First `ratio` fraction of host memory lives permanently in NIC DRAM.
      return static_cast<double>(address) <
             config_.dispatch_ratio * static_cast<double>(config_.host_memory_bytes);
    case DispatchPolicy::kHybrid:
      return AddressLineHash(address) <= cacheable_threshold_;
  }
  return false;
}

LoadDispatcher::LineOutcome LoadDispatcher::TouchLine(uint64_t address, bool is_write) {
  const uint64_t line = address / kCacheLineBytes;
  const uint64_t slot = line % num_cache_lines_;
  LineOutcome outcome;
  if (line_tag_[slot] == line) {
    outcome.hit = true;
  } else {
    outcome.writeback = line_tag_[slot] != kInvalidTag && line_dirty_[slot];
    line_tag_[slot] = line;
    line_dirty_[slot] = false;
  }
  if (is_write) {
    line_dirty_[slot] = true;
  }
  return outcome;
}

std::function<void()> LoadDispatcher::TraceDone(uint64_t trace, uint64_t route,
                                                std::function<void()> done) {
  if (trace == 0 || request_tracer_ == nullptr) {
    return done;
  }
  const SimTime start = sim_.Now();
  return [this, trace, route, start, done = std::move(done)] {
    request_tracer_->Span(trace, SpanKind::kMemAccess, start, sim_.Now(), route);
    done();
  };
}

void LoadDispatcher::Access(AccessKind kind, uint64_t address, uint32_t bytes,
                            std::function<void()> done, uint64_t op_trace) {
  KVD_CHECK(bytes > 0);
  const bool trace = tracer_ != nullptr && tracer_->enabled();
  if (!IsCacheable(address)) {
    stats_.pcie_accesses++;
    if (trace) {
      tracer_->Instant("dispatch", "pcie", {{"bytes", bytes}});
    }
    done = TraceDone(op_trace, kRoutePcie, std::move(done));
    if (kind == AccessKind::kRead) {
      dma_.Read(address, bytes, std::move(done), /*random_access=*/true,
                op_trace);
    } else {
      dma_.Write(address, bytes, std::move(done), op_trace);
    }
    return;
  }

  if (config_.policy == DispatchPolicy::kFixedPartition) {
    if (kind == AccessKind::kRead &&
        dram_.CheckLineRead(address) == EccReadOutcome::kUncorrectable) {
      // Uncorrectable ECC on the pinned copy: serve from host memory and
      // refill the DRAM line from there.
      stats_.ecc_demotions++;
      if (trace) {
        tracer_->Instant("dispatch", "ecc_demote", {{"bytes", bytes}});
      }
      done = TraceDone(op_trace, kRouteEccDemotion, std::move(done));
      dma_.Read(
          address, bytes,
          [this, bytes, op_trace, done = std::move(done)]() mutable {
            dram_.Access(bytes, [] {}, op_trace);
            done();
            // Fire once the recovery read has landed (and `done` has closed
            // the route span) so the dump's live trace carries the demoted
            // access's full span tree.
            if (flight_ != nullptr) {
              flight_->Trigger(FlightTrigger::kEccDemotion,
                               "uncorrectable ECC; line demoted to host");
            }
          },
          /*random_access=*/true, op_trace);
      return;
    }
    // Pinned data: always a DRAM hit, never a fill or writeback.
    stats_.dram_hits++;
    dram_.Access(bytes, TraceDone(op_trace, kRouteCacheHit, std::move(done)),
                 op_trace);
    return;
  }

  // Cacheable: walk the covered lines; any absent line makes the access a
  // miss (PCIe fetch of the full extent + DRAM fill). The ECC-spare-bit
  // metadata scheme means tag checks themselves cost no DRAM transactions.
  const bool is_write = kind == AccessKind::kWrite;
  bool all_hit = true;
  uint32_t writebacks = 0;
  for (uint64_t offset = 0; offset < bytes; offset += kCacheLineBytes) {
    const LineOutcome outcome = TouchLine(address + offset, is_write);
    all_hit = all_hit && outcome.hit;
    writebacks += outcome.writeback ? 1 : 0;
  }

  if (all_hit) {
    if (!is_write &&
        dram_.CheckLineRead(address) == EccReadOutcome::kUncorrectable) {
      // Uncorrectable ECC on a cached line: the cached copy is dead.
      // Demote — clear the dirty flags (the content is being replaced by
      // the host copy) and re-read over PCIe with a DRAM refill, exactly
      // like a read miss. Functional data lives in the processor model;
      // this charges the degradation's timing cost.
      stats_.ecc_demotions++;
      if (trace) {
        tracer_->Instant("dispatch", "ecc_demote", {{"bytes", bytes}});
      }
      for (uint64_t offset = 0; offset < bytes; offset += kCacheLineBytes) {
        const uint64_t slot =
            ((address + offset) / kCacheLineBytes) % num_cache_lines_;
        line_dirty_[slot] = false;
      }
      done = TraceDone(op_trace, kRouteEccDemotion, std::move(done));
      dma_.Read(
          address, bytes,
          [this, bytes, op_trace, done = std::move(done)]() mutable {
            dram_.Access(bytes, [] {}, op_trace);
            done();
            if (flight_ != nullptr) {
              flight_->Trigger(FlightTrigger::kEccDemotion,
                               "uncorrectable ECC; cached line demoted");
            }
          },
          /*random_access=*/true, op_trace);
      return;
    }
    stats_.dram_hits++;
    if (trace) {
      tracer_->Instant("dispatch", "hit", {{"bytes", bytes}});
    }
    dram_.Access(bytes, TraceDone(op_trace, kRouteCacheHit, std::move(done)),
                 op_trace);
    return;
  }

  stats_.dram_misses++;
  stats_.writebacks += writebacks;
  if (trace) {
    tracer_->Instant("dispatch", "miss", {{"bytes", bytes}, {"writebacks", writebacks}});
  }
  done = TraceDone(op_trace, kRouteCacheMiss, std::move(done));
  // Dirty evictions drain to host memory in the background (posted writes).
  for (uint32_t i = 0; i < writebacks; i++) {
    dma_.Write(address, kCacheLineBytes, [] {}, op_trace);
  }
  if (is_write) {
    // Write miss: the line is allocated in DRAM and marked dirty; the write
    // is durable (w.r.t. NIC-side ordering) once the DRAM accepts it.
    dram_.Access(bytes, std::move(done), op_trace);
    return;
  }
  // Read miss: fetch over PCIe, then fill DRAM (fill overlaps the return
  // path; data is available to the pipeline when PCIe completes).
  dma_.Read(
      address, bytes,
      [this, bytes, op_trace, done = std::move(done)]() mutable {
        dram_.Access(bytes, [] {}, op_trace);
        done();
      },
      /*random_access=*/true, op_trace);
}

void LoadDispatcher::RegisterMetrics(MetricRegistry& registry) const {
  registry.RegisterCounter("kvd_dispatch_pcie_total",
                           "Accesses routed directly to PCIe", {},
                           &stats_.pcie_accesses);
  registry.RegisterCounter("kvd_dispatch_dram_hits_total", "NIC DRAM cache hits",
                           {}, &stats_.dram_hits);
  registry.RegisterCounter("kvd_dispatch_dram_misses_total",
                           "Cacheable accesses absent from NIC DRAM", {},
                           &stats_.dram_misses);
  registry.RegisterCounter("kvd_dispatch_writebacks_total", "Dirty line evictions",
                           {}, &stats_.writebacks);
  registry.RegisterCounter("kvd_dispatch_ecc_demotions_total",
                           "Lines demoted to host memory after uncorrectable ECC",
                           {}, &stats_.ecc_demotions);
  registry.RegisterGauge("kvd_dispatch_hit_rate", "Hit rate over cacheable accesses",
                         {}, [this] { return stats_.HitRate(); });
}

double LoadDispatcher::OptimalDispatchRatio(double tput_pcie, double tput_dram,
                                            double k, bool long_tail,
                                            double corpus_keys) {
  KVD_CHECK(tput_pcie > 0 && tput_dram > 0);
  KVD_CHECK(k > 0 && k <= 1.0);
  auto hit_rate = [&](double l) {
    if (l <= k) {
      return 1.0;  // cacheable corpus fits entirely in NIC DRAM
    }
    if (!long_tail) {
      return k / l;
    }
    // Zipf long-tail approximation from the paper: h(l) = log(kn)/log(ln).
    const double num = std::log(k * corpus_keys);
    const double den = std::log(l * corpus_keys);
    return den > 0 ? std::clamp(num / den, 0.0, 1.0) : 1.0;
  };
  // PCIe demand falls with l, DRAM demand rises: bisect on their difference.
  auto imbalance = [&](double l) {
    const double h = hit_rate(l);
    const double pcie_load = (1 - l) + l * (1 - h);
    const double dram_load = l * h + 2 * l * (1 - h);  // miss = fill + read
    return pcie_load / tput_pcie - dram_load / tput_dram;
  };
  double lo = 1e-6;
  double hi = 1.0;
  if (imbalance(hi) >= 0) {
    return hi;  // PCIe remains the bottleneck even at l = 1
  }
  for (int i = 0; i < 60; i++) {
    const double mid = (lo + hi) / 2;
    if (imbalance(mid) >= 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2;
}

}  // namespace kvd
