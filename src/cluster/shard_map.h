// Epoch-versioned partition -> replication-group assignment (DESIGN.md §14).
//
// The shard map is the cluster control plane's single routing truth: the key
// space is hashed into num_partitions partitions (the same KeyRouter contract
// MultiNicClient uses, so a key's partition is identical in every process),
// and each partition is owned by exactly one replication group. Every
// mutation — a migration cutover, a partition split, group add/remove — bumps
// `epoch` atomically with the change, so a client holding epoch N-1 can be
// detected (and corrected) by any group it contacts: routed requests carry
// the client's cached epoch and partition, and a non-owner bounces them with
// the current assignment (kWrongShard).
//
// Splits double num_partitions. The KeyRouter modulo-refinement property
// (h % 2N ∈ {h % N, h % N + N}) makes the doubled map a pure relabeling:
// partition p splits into {p, p + N}, both halves inheriting p's owner, so no
// data moves at split time — only later migrations separate the halves.
#ifndef SRC_CLUSTER_SHARD_MAP_H_
#define SRC_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "src/common/key_router.h"

namespace kvd {

struct ShardMap {
  uint64_t epoch = 0;
  std::vector<uint32_t> owners;  // partition -> group index

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(owners.size());
  }
  uint32_t OwnerOf(uint32_t partition) const { return owners[partition]; }
  KeyRouter router() const { return KeyRouter(num_partitions()); }

  // Round-robin initial assignment: partition p -> group p % num_groups.
  static ShardMap Initial(uint32_t num_partitions, uint32_t num_groups);

  // The doubled map (same epoch; the caller bumps it when publishing):
  // partitions p and p + N both owned by p's old owner.
  ShardMap Doubled() const;
};

}  // namespace kvd

#endif  // SRC_CLUSTER_SHARD_MAP_H_
