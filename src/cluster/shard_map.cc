#include "src/cluster/shard_map.h"

#include "src/common/assert.h"

namespace kvd {

ShardMap ShardMap::Initial(uint32_t num_partitions, uint32_t num_groups) {
  KVD_CHECK(num_partitions >= 1 && num_groups >= 1);
  ShardMap map;
  map.epoch = 1;
  map.owners.resize(num_partitions);
  for (uint32_t p = 0; p < num_partitions; p++) {
    map.owners[p] = p % num_groups;
  }
  return map;
}

ShardMap ShardMap::Doubled() const {
  ShardMap doubled;
  doubled.epoch = epoch;
  doubled.owners.reserve(owners.size() * 2);
  doubled.owners = owners;
  doubled.owners.insert(doubled.owners.end(), owners.begin(), owners.end());
  return doubled;
}

}  // namespace kvd
