// Cluster control plane: versioned shard map, live shard migration, and
// elastic group membership (DESIGN.md §14).
//
// A ClusterCoordinator composes N ReplicationGroups on one simulated clock
// and publishes a ShardMap assigning each hash partition to a group. Clients
// cache the map; every group consults the coordinator's shard gate before
// serving a routed request, so a stale client is bounced (kWrongShard, with
// the current assignment) instead of silently served by a non-owner.
//
// Live migration moves one partition between groups under load, in three
// phases, losing no acknowledged write and applying none twice:
//
//   1. kCopy — a snapshot of the partition (KVs + the session records of its
//      writes) is cut at the source primary and streamed to the destination
//      in bounded-rate chunks over a dedicated, fallible migration link
//      (checksummed frames, cumulative acks, go-back-N retransmission). From
//      the moment the migration starts, every newly *committed* write to the
//      partition is synchronously dual-written to the destination through
//      the source group's commit listener — before the client's ack is
//      released — so "acked at source" always implies "present at
//      destination". Keys touched by a forward are excluded from chunk
//      installs: a retransmitted chunk must never resurrect an older value.
//   2. kCatchUp — the copy stream has fully acked; the coordinator waits for
//      the forward stream over the partition to go quiet (in-flight writes
//      admitted before the freeze decision drain through commit).
//   3. kFrozen — new writes to the partition bounce kMigrating (reads still
//      serve at the source); after cutover_quiesce with no forwards, the map
//      flips: epoch++, owner = destination, the source drops the partition's
//      keys, and frozen writers retry against the new owner. The flip dumps
//      the migration's span tree through the flight recorder
//      (shard_cutover).
//
// Exactly-once across the cutover: session records (client sequence, slot,
// result) ride both the snapshot and every forward, so a write acked by the
// source and retransmitted to the destination after the flip is answered
// from the installed record, not re-executed.
#ifndef SRC_CLUSTER_COORDINATOR_H_
#define SRC_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/shard_map.h"
#include "src/replica/replication_group.h"

namespace kvd {

struct ClusterConfig {
  uint32_t num_groups = 3;
  uint32_t num_partitions = 12;
  // Template for every group; fault seeds are decorrelated per group.
  ReplicationConfig group;

  // The migration copy stream's own wire (source primary -> destination),
  // with its own fault stream — chaos on the copy path must not perturb the
  // client-facing or replication links.
  NetworkConfig migration_network;
  FaultPlan migration_faults;

  uint32_t copy_chunk_kvs = 64;          // KVs per copy chunk
  double copy_bytes_per_sec = 1e9;       // background copy rate bound
  // Go-back-N retransmission: if the cumulative ack has not advanced for a
  // full timeout, resend from the ack point.
  SimTime copy_retransmit_timeout = 300 * kMicrosecond;
  // Catch-up/freeze poll cadence and the quiet window required before the
  // atomic flip (must exceed the source pipeline's residence time so every
  // pre-freeze write has committed and forwarded).
  SimTime migration_poll_interval = 100 * kMicrosecond;
  SimTime cutover_quiesce = 300 * kMicrosecond;

  // Coordinator-level migration tracing (span tree + shard_cutover dumps).
  bool enable_request_tracing = false;
  FlightRecorderConfig flight;

  // Test-only regression hooks for the consistency harness (src/check): each
  // knob re-introduces one specific bug the design guards against, so the
  // nemesis seed matrix can prove it would catch that regression. Never set
  // outside tests.
  struct TestBugs {
    // Skip the touched-key guard on copy-chunk installs: a chunk arriving
    // after a forward already dual-wrote one of its keys then resurrects the
    // older snapshot value at the destination — a lost acknowledged write
    // surfacing after the cutover.
    bool disable_migration_touched_key_guard = false;
  };
  TestBugs test_bugs;
};

class ClusterCoordinator {
 public:
  explicit ClusterCoordinator(const ClusterConfig& config);
  ~ClusterCoordinator();

  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  Simulator& simulator() { return sim_; }
  uint32_t num_groups() const { return static_cast<uint32_t>(groups_.size()); }
  ReplicationGroup& group(uint32_t index) { return *groups_[index]; }
  bool group_active(uint32_t index) const { return active_[index] != 0; }
  NetworkModel& migration_network() { return *migration_net_; }
  FaultInjector& migration_faults() { return *migration_fault_; }

  // The published map. Clients fetch a copy (an out-of-band control-plane
  // read; not part of the timed data path) and are corrected via kWrongShard
  // bounces when it goes stale.
  const ShardMap& shard_map() const { return map_; }
  uint64_t map_epoch() const { return map_.epoch; }
  KeyRouter router() const { return map_.router(); }

  // Disjoint 2^40 sequence spaces, unique across every group in the cluster
  // (bit 63 separates them from group-local bases): a session record
  // migrated into another group must never collide with that group's own
  // clients.
  uint64_t AcquireClientSequenceBase() {
    return (1ull << 63) | (++next_client_id_ << 40);
  }

  // Untimed warm-up load into the owning group (every replica of it).
  Status Load(std::span<const uint8_t> key, std::span<const uint8_t> value);

  // --- elasticity ---
  // Appends a fresh (empty) group; returns its index. It owns no partitions
  // until migrations move some onto it.
  uint32_t AddGroup();
  // Marks a group inactive. Refused while it still owns a partition or a
  // migration involves it — drain it first (Rebalancer::Plan treats inactive
  // groups as drain targets). The group object stays alive (its heartbeats
  // are idle noise on the shared clock); only the map stops pointing at it.
  Status RemoveGroup(uint32_t index);

  // Doubles num_partitions (pure relabeling — no data moves; see
  // ShardMap::Doubled) and bumps the map epoch. Per-partition load counters
  // restart: the two halves of a split partition must be re-observed.
  // Refused mid-migration.
  Status SplitPartitions();

  // --- live migration ---
  // Starts moving `partition` to `to_group`. One migration at a time.
  Status StartMigration(uint32_t partition, uint32_t to_group);
  bool migration_active() const { return migration_.active; }
  // 0 = idle, 1 = copy, 2 = catch-up, 3 = frozen.
  int migration_phase() const;
  // Runs the simulator until the active migration completes.
  void DriveMigrationToCompletion();

  // --- per-partition load accounting (feeds the Rebalancer) ---
  // Ops served per partition since the last reset, routed requests only.
  const std::vector<uint64_t>& partition_ops() const { return partition_ops_; }
  void ResetLoadCounters();
  // Current load per group: sum of partition_ops over owned partitions.
  std::vector<uint64_t> GroupLoads() const;

  struct ClusterStats {
    uint64_t migrations_started = 0;
    uint64_t migrations_completed = 0;
    uint64_t partitions_split = 0;      // split events (each doubles the map)
    uint64_t copy_chunks_sent = 0;      // copy-stream transmissions (incl. resends)
    uint64_t copy_chunk_retransmits = 0;
    uint64_t copy_kvs = 0;              // KVs installed from chunks
    uint64_t copy_bytes = 0;            // framed copy bytes put on the wire
    uint64_t copy_stale_chunks = 0;     // out-of-order/duplicate chunks dropped
    uint64_t forwards = 0;              // committed writes dual-written
    uint64_t late_forwards = 0;         // commit events seen after the flip
    uint64_t sessions_migrated = 0;     // session records installed at the dest
    uint64_t keys_erased = 0;           // source keys dropped at cutover
    uint64_t map_fetches = 0;           // client full-map fetches served
  };
  const ClusterStats& stats() const { return stats_; }
  // Called by ClusterClient on a full map refetch (control-plane read).
  ShardMap FetchShardMap() {
    stats_.map_fetches++;
    return map_;
  }

  const MetricRegistry& metrics() const { return metrics_; }
  FlightRecorder& flight_recorder() { return flight_recorder_; }
  RequestTracer& request_tracer() { return request_tracer_; }
  const LatencyHistogram& migration_ns() const { return migration_ns_; }
  const ClusterConfig& config() const { return config_; }

 private:
  struct Migration {
    bool active = false;
    uint32_t partition = 0;
    uint32_t from = 0;
    uint32_t to = 0;
    enum class Phase : uint8_t { kCopy, kCatchUp, kFrozen } phase = Phase::kCopy;
    uint64_t round = 0;  // guards stale scheduled callbacks

    // Copy stream (go-back-N over the migration wire). `installed` is the
    // receiver's cumulative cursor; `acked` is what the sender has learned
    // of it through (equally fallible) ack packets.
    std::vector<std::vector<uint8_t>> chunks;  // framed, checksummed
    std::vector<uint32_t> chunk_kvs;           // KVs per chunk (stats)
    uint32_t next_to_send = 0;
    uint32_t installed = 0;
    uint32_t acked = 0;
    uint32_t last_observed_ack = 0;  // retransmit-timer progress check
    bool sending = false;            // a paced send loop is in flight

    // Keys dual-written (or deleted) by a forward: chunk installs skip them
    // so a retransmitted chunk cannot resurrect an older value.
    std::set<std::vector<uint8_t>> touched;
    SimTime last_forward = 0;
    bool writes_frozen = false;
    SimTime frozen_at = 0;

    SimTime started_at = 0;
    uint64_t trace = 0;  // migration-wide trace handle (span tree)
  };

  void WireGroup(uint32_t index);
  void InstallSnapshot();  // cut KVs + sessions at the source, build chunks
  void SendCopyChunks();
  void OnCopyChunkArrive(uint64_t round, std::vector<uint8_t> packet);
  void OnCopyAckArrive(uint64_t round, std::vector<uint8_t> packet);
  void ArmRetransmitTimer();
  void PollMigration();
  void OnCommitted(uint32_t group, const LogEntry& entry);  // forward hook
  void Flip();
  void RegisterMetrics();
  void RegisterPartitionGauges(uint32_t first, uint32_t last_plus_one);

  ClusterConfig config_;
  Simulator sim_;
  MetricRegistry metrics_;
  EventTracer tracer_{sim_};
  RequestTracer request_tracer_{sim_};
  FlightRecorder flight_recorder_{sim_};
  std::unique_ptr<FaultInjector> migration_fault_;
  std::unique_ptr<NetworkModel> migration_net_;
  std::vector<std::unique_ptr<ReplicationGroup>> groups_;
  std::vector<uint8_t> active_;
  ShardMap map_;
  // Map epoch as of the most recent split (0 if never split). The shard
  // gates refuse routed requests framed before it: their partition labels
  // use the old modulus and are incomparable with current ones.
  uint64_t split_epoch_ = 0;
  Migration migration_;
  std::vector<uint64_t> partition_ops_;
  uint64_t next_client_id_ = 0;
  uint64_t next_copy_sequence_ = 0;
  uint64_t next_migration_trace_sequence_ = 0;
  ClusterStats stats_;
  LatencyHistogram migration_ns_;
  std::shared_ptr<bool> liveness_ = std::make_shared<bool>(true);
};

}  // namespace kvd

#endif  // SRC_CLUSTER_COORDINATOR_H_
