// Cluster client: shard-map caching, wrong-shard bounce recovery, and
// cross-group exactly-once (DESIGN.md §14).
//
// A ClusterClient holds a cached copy of the coordinator's ShardMap and packs
// each flush per partition: one packet's keys all hash to one partition, and
// the packet carries the client's cached map epoch and that partition
// (GroupRequest routing extension). Routing mistakes are corrected by the
// groups themselves:
//
//   - kWrongShard: the contacted group does not own the partition (or the
//     frame's map epoch predates a split, making its label unreadable). The
//     bounce carries the current map epoch, the owning group, and the
//     partition count; the client patches its cached map (or refetches it
//     wholesale when the partition count changed — a split happened),
//     re-derives the route from the packet's own keys, and re-sends the same
//     frame sequence to the owner. If a split divided the packet's keys
//     between owners, a read packet is re-batched under the fresh map and a
//     write packet fails as ambiguous (see Stats::split_write_aborts).
//   - kMigrating: the partition is write-frozen for a cutover window; the
//     client backs off and re-sends. After the flip the old owner answers
//     kWrongShard and the first rule takes over.
//
// The frame sequence never changes across bounces, so the replicated session
// records — which migrations install at the destination group — answer a
// retransmission that lands after the cutover without re-executing it:
// exactly-once holds across a mid-flight ownership change.
//
// Read-your-writes across groups: watermarks are (group, log index) pairs.
// Against the same group the usual required-index rule applies; when a key's
// partition has moved since the write, the watermark is dropped instead of
// carried over (indices are per-group) — safe because a cutover implies the
// write's state was installed on *every* destination replica below its log.
#ifndef SRC_CLUSTER_CLUSTER_CLIENT_H_
#define SRC_CLUSTER_CLUSTER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/cluster/coordinator.h"
#include "src/transport/kv_endpoint.h"

namespace kvd {

class ClusterClient : public KvEndpoint {
 public:
  struct Options {
    uint32_t batch_payload_bytes = 4096;
    bool enable_compression = true;
    SimTime timeout = 500 * kMicrosecond;  // doubles per retransmission
    uint32_t max_attempts = 24;
    uint32_t attempts_per_target = 3;
    // Backoff before re-sending after a redirect, stale-read, or wrong-shard
    // bounce.
    SimTime redirect_backoff = 50 * kMicrosecond;
    // Backoff after a kMigrating bounce: the freeze window is a whole cutover
    // quiesce, so hammering at the redirect cadence only burns attempts.
    SimTime migrate_backoff = 100 * kMicrosecond;
    bool jitter = true;
    uint32_t retry_budget = 0;
    double retry_refill_per_success = 0.1;
  };

  struct Stats : ReliableSender::Stats {
    uint64_t redirects_followed = 0;   // kGroupRedirect bounces
    uint64_t stale_retries = 0;        // kGroupStaleRead bounces
    uint64_t wrong_shard_bounces = 0;  // kGroupWrongShard bounces
    uint64_t migrating_backoffs = 0;   // kGroupMigrating bounces
    uint64_t map_patches = 0;          // single-partition map corrections
    uint64_t map_refetches = 0;        // wholesale map fetches (splits)
    // Read-only packets re-batched because a split divided their keys
    // between partitions that no longer share an owner.
    uint64_t split_rebuilds = 0;
    // Write packets in the same position, failed as ambiguous instead: an
    // earlier attempt may have executed before the split, and new sequences
    // would forfeit the original frame's replay protection.
    uint64_t split_write_aborts = 0;
  };

  explicit ClusterClient(ClusterCoordinator& cluster)
      : ClusterClient(cluster, Options()) {}
  ClusterClient(ClusterCoordinator& cluster, Options options);

  size_t Enqueue(KvOperation op) override;
  std::vector<KvResultMessage> Flush() override;

  ReliableSender::Stats endpoint_stats() const override { return stats_; }
  SimTime now() const override { return cluster_.simulator().Now(); }
  bool Step() override { return cluster_.simulator().Step(); }

  // Split-phase flush for multi-client composition on the shared clock.
  void BeginFlush();
  bool flush_done() const;
  std::vector<KvResultMessage> TakeResults();

  // Replaces the cached map with the coordinator's current one (the same
  // control-plane read a bounce-driven refetch performs).
  void RefreshMap();
  const ShardMap& cached_map() const { return map_; }

  const Stats& stats() const { return stats_; }

 private:
  struct FlushState;
  struct PacketCtx;

  void OnResponse(const std::shared_ptr<PacketCtx>& ctx,
                  std::vector<uint8_t> packet);
  void Wire(const ReliableSender::PacketPtr& packet);
  void OnFail(const ReliableSender::PacketPtr& packet);
  // Re-frames the packet's routing header (cached epoch, partition, required
  // watermark) around the unchanged ops payload and sequence.
  void ReframeRoute(const std::shared_ptr<PacketCtx>& ctx);
  // Batches `ops` per partition under the current map. `slots[i]` is the
  // flush-result slot of ops[i]; used by BeginFlush and by the post-split
  // rebuild of a bounced read packet.
  std::vector<std::shared_ptr<PacketCtx>> BuildPackets(
      const std::vector<KvOperation>& ops, const std::vector<size_t>& slots,
      const std::shared_ptr<FlushState>& flush);
  // Assigns a fresh sequence, routes by the packet's partition under the
  // cached map, frames, and hands the packet to the reliable sender.
  void SendPacket(const std::shared_ptr<PacketCtx>& packet);
  // Schedules a Resend after `delay` unless the packet completes first.
  void BackoffResend(const std::shared_ptr<PacketCtx>& ctx, SimTime delay);
  uint32_t& BelievedPrimary(uint32_t group);

  ClusterCoordinator& cluster_;
  Options options_;
  ShardMap map_;  // cached; patched or refetched on bounces
  std::vector<KvOperation> pending_;
  uint64_t next_sequence_;
  std::vector<uint32_t> believed_primary_;  // per group, grown on demand
  // Per-key read-your-writes watermark: the group that acked the write and
  // the quorum-committed index covering it there.
  struct Watermark {
    uint32_t group = 0;
    uint64_t index = 0;
  };
  std::map<std::vector<uint8_t>, Watermark> watermarks_;
  std::shared_ptr<FlushState> flush_;
  Stats stats_;
  ReliableSender sender_;
};

}  // namespace kvd

#endif  // SRC_CLUSTER_CLUSTER_CLIENT_H_
