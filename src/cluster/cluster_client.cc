#include "src/cluster/cluster_client.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/common/assert.h"
#include "src/net/wire_format.h"
#include "src/transport/frame.h"

namespace kvd {

struct ClusterClient::FlushState {
  std::vector<KvResultMessage> results;
  size_t outstanding = 0;
};

struct ClusterClient::PacketCtx : ReliablePacket {
  std::vector<uint8_t> ops_payload;  // PacketBuilder output, never re-built
  std::vector<size_t> op_indices;    // flush-result slots, packet order
  // The packet's operations, aligned with op_indices. Kept so a wrong-shard
  // bounce can re-derive the route from the keys themselves: after a split
  // the built-in partition label means nothing under the new modulus.
  std::vector<KvOperation> ops;
  std::vector<std::vector<uint8_t>> write_keys;
  uint32_t partition = 0;
  uint32_t group = 0;  // routing: which group the next transmission targets
  bool is_write = false;
  std::shared_ptr<FlushState> flush;
};

ClusterClient::ClusterClient(ClusterCoordinator& cluster, Options options)
    : cluster_(cluster),
      options_(options),
      map_(cluster.FetchShardMap()),
      next_sequence_(cluster.AcquireClientSequenceBase()),
      sender_(cluster.simulator(),
              ReliableSender::RetryPolicy{
                  .timeout = options_.timeout,
                  .max_attempts = options_.max_attempts,
                  .backoff_shift_cap = 6,
                  .attempts_per_target = options_.attempts_per_target,
                  .num_targets = cluster.config().group.num_replicas,
                  .jitter = options_.jitter,
                  .jitter_seed = next_sequence_,
                  .retry_budget = options_.retry_budget,
                  .retry_refill_per_success = options_.retry_refill_per_success},
              &stats_,
              [this]() -> RequestTracer& { return cluster_.request_tracer(); },
              [this](const ReliableSender::PacketPtr& packet) { Wire(packet); },
              [this](const ReliableSender::PacketPtr& packet) { OnFail(packet); }) {
  KVD_CHECK_MSG(options_.batch_payload_bytes > kFrameHeaderBytes + 8 + 64,
                "packet budget too small for the framing and routing headers");
  stats_.map_refetches++;  // the constructor's initial fetch
}

void ClusterClient::RefreshMap() {
  map_ = cluster_.FetchShardMap();
  stats_.map_refetches++;
}

uint32_t& ClusterClient::BelievedPrimary(uint32_t group) {
  if (group >= believed_primary_.size()) {
    believed_primary_.resize(group + 1, 0);
  }
  return believed_primary_[group];
}

size_t ClusterClient::Enqueue(KvOperation op) {
  pending_.push_back(std::move(op));
  return pending_.size() - 1;
}

void ClusterClient::BeginFlush() {
  KVD_CHECK_MSG(flush_ == nullptr || flush_->outstanding == 0,
                "previous flush still in progress");
  flush_ = std::make_shared<FlushState>();
  flush_->results.resize(pending_.size());
  std::vector<KvOperation> ops = std::move(pending_);
  pending_.clear();
  if (ops.empty()) {
    return;
  }

  std::vector<size_t> slots(ops.size());
  for (size_t i = 0; i < ops.size(); i++) {
    slots[i] = i;
  }
  std::vector<std::shared_ptr<PacketCtx>> packets =
      BuildPackets(ops, slots, flush_);
  flush_->outstanding = packets.size();
  for (const auto& packet : packets) {
    SendPacket(packet);
  }
}

std::vector<std::shared_ptr<ClusterClient::PacketCtx>>
ClusterClient::BuildPackets(const std::vector<KvOperation>& ops,
                            const std::vector<size_t>& slots,
                            const std::shared_ptr<FlushState>& flush) {
  // One packet's keys all hash to one partition under the cached map, so a
  // whole packet routes (and bounces) as a unit. std::map keeps partition
  // iteration deterministic.
  const KeyRouter router = map_.router();
  std::map<uint32_t, std::vector<size_t>> by_partition;
  for (size_t i = 0; i < ops.size(); i++) {
    by_partition[router.PartitionOf(ops[i].key)].push_back(i);
  }

  const uint32_t budget = options_.batch_payload_bytes -
                          static_cast<uint32_t>(kFrameHeaderBytes) - 8;
  std::vector<std::shared_ptr<PacketCtx>> packets;
  for (const auto& [partition, indices] : by_partition) {
    PacketBuilder builder(budget, options_.enable_compression);
    auto ctx = std::make_shared<PacketCtx>();
    ctx->flush = flush;
    ctx->partition = partition;
    for (const size_t i : indices) {
      if (!builder.Add(ops[i])) {
        KVD_CHECK_MSG(!ctx->op_indices.empty(),
                      "operation exceeds the packet budget");
        ctx->ops_payload = builder.Finish();
        packets.push_back(std::move(ctx));
        ctx = std::make_shared<PacketCtx>();
        ctx->flush = flush;
        ctx->partition = partition;
        KVD_CHECK(builder.Add(ops[i]));
      }
      ctx->op_indices.push_back(slots[i]);
      ctx->ops.push_back(ops[i]);
      if (ops[i].deadline != 0) {
        // Earliest op deadline bounds the packet: past it the sender abandons
        // the frame with kDeadlineExceeded instead of retrying into a bounce
        // chain (migration freeze, redirect storm) nobody is waiting out.
        ctx->deadline = ctx->deadline == 0
                            ? ops[i].deadline
                            : std::min(ctx->deadline, ops[i].deadline);
      }
      if (IsWriteOpcode(ops[i].opcode)) {
        ctx->is_write = true;
        ctx->write_keys.push_back(ops[i].key);
      }
    }
    if (!ctx->op_indices.empty()) {
      ctx->ops_payload = builder.Finish();
      packets.push_back(std::move(ctx));
    }
  }
  return packets;
}

void ClusterClient::SendPacket(const std::shared_ptr<PacketCtx>& packet) {
  packet->sequence = next_sequence_++;
  packet->group = map_.OwnerOf(packet->partition);
  ReframeRoute(packet);
  packet->target = packet->is_write
                       ? BelievedPrimary(packet->group)
                       : cluster_.group(packet->group).primary_id();
  stats_.packets_sent++;
  sender_.Send(packet);
}

void ClusterClient::ReframeRoute(const std::shared_ptr<PacketCtx>& ctx) {
  GroupRequest request;
  request.has_route = true;
  request.map_epoch = map_.epoch;
  request.partition = ctx->partition;
  request.ops_payload = ctx->ops_payload;
  // Read-your-writes: the serving group must have applied the highest index
  // this client's acked writes reached *there*. Watermarks from a previous
  // owner are dropped — their indices mean nothing in the new group's log,
  // and the cutover installed the write's state on every destination replica.
  uint64_t required = 0;
  const KeyRouter router = map_.router();
  for (const auto& [key, mark] : watermarks_) {
    if (mark.group != ctx->group || router.PartitionOf(key) != ctx->partition) {
      continue;
    }
    required = std::max(required, mark.index);
  }
  request.required_index = required;
  ctx->framed = FramePacket(ctx->sequence, EncodeGroupRequest(request));
}

bool ClusterClient::flush_done() const {
  return flush_ == nullptr || flush_->outstanding == 0;
}

std::vector<KvResultMessage> ClusterClient::TakeResults() {
  KVD_CHECK_MSG(flush_ != nullptr && flush_->outstanding == 0,
                "flush not complete");
  std::vector<KvResultMessage> results = std::move(flush_->results);
  flush_.reset();
  return results;
}

std::vector<KvResultMessage> ClusterClient::Flush() {
  BeginFlush();
  Simulator& sim = cluster_.simulator();
  while (!flush_done()) {
    KVD_CHECK(sim.Step());  // group heartbeats keep the queue non-empty
  }
  return TakeResults();
}

void ClusterClient::Wire(const ReliableSender::PacketPtr& packet) {
  auto ctx = std::static_pointer_cast<PacketCtx>(packet);
  const uint32_t group = ctx->group;
  const uint32_t target = ctx->target;
  ReplicationGroup& g = cluster_.group(group);
  g.client_network(target).SendPayloadToServer(
      ctx->framed, [this, ctx, group, target](std::vector<uint8_t> bytes) {
        cluster_.group(group).DeliverClientFrame(
            target, std::move(bytes),
            [this, ctx, group, target](std::vector<uint8_t> response) {
              cluster_.group(group).client_network(target).SendPayloadToClient(
                  std::move(response), [this, ctx](std::vector<uint8_t> r) {
                    OnResponse(ctx, std::move(r));
                  });
            });
      });
}

void ClusterClient::OnFail(const ReliableSender::PacketPtr& packet) {
  auto ctx = std::static_pointer_cast<PacketCtx>(packet);
  KvResultMessage failed;
  failed.code = ctx->fail_code;
  for (size_t index : ctx->op_indices) {
    ctx->flush->results[index] = failed;
  }
  ctx->flush->outstanding--;
}

void ClusterClient::BackoffResend(const std::shared_ptr<PacketCtx>& ctx,
                                  SimTime delay) {
  cluster_.simulator().Schedule(delay, [this, ctx] {
    if (!ctx->completed) {
      sender_.Resend(ctx);
    }
  });
}

void ClusterClient::OnResponse(const std::shared_ptr<PacketCtx>& ctx,
                               std::vector<uint8_t> packet) {
  std::optional<std::vector<uint8_t>> payload =
      sender_.AcceptResponse(ctx, packet);
  if (!payload.has_value()) {
    return;  // duplicate, corrupt, or foreign frame — counted by the sender
  }
  Result<GroupResponse> decoded = DecodeGroupResponse(*payload);
  if (!decoded.ok()) {
    sender_.NoteCorruptResponse();
    return;
  }
  const GroupResponse& response = decoded.value();

  if ((response.flags & kGroupWrongShard) != 0) {
    stats_.wrong_shard_bounces++;
    if (response.num_partitions != map_.num_partitions()) {
      // The map's granularity changed under us (a split): patching one
      // entry cannot reconcile it; refetch wholesale.
      RefreshMap();
    } else if (response.map_epoch > map_.epoch) {
      // Patch just the bounced entry: one migration moved one partition.
      map_.epoch = response.map_epoch;
      if (ctx->partition < map_.owners.size() &&
          response.owner_group < cluster_.num_groups()) {
        map_.owners[ctx->partition] = response.owner_group;
      }
      stats_.map_patches++;
    }
    // Re-derive the route from the packet's own keys under the current map:
    // a label framed before a split was computed with the old modulus and
    // means nothing now (the gates refuse such frames outright).
    const KeyRouter router = map_.router();
    bool straddles = false;
    ctx->partition = router.PartitionOf(ctx->ops.front().key);
    for (const KvOperation& op : ctx->ops) {
      straddles = straddles || router.PartitionOf(op.key) != ctx->partition;
    }
    if (straddles) {
      // A pre-split packet holds keys from both halves of its old partition
      // and a migration has since separated their owners; no single route
      // serves it. The gate refused the frame wholesale — nothing in it
      // executed *here* — so reads re-batch safely under the fresh map with
      // new sequences. Writes cannot: an earlier attempt may have executed
      // before the split, and new sequences would forfeit the replay
      // protection tied to the original frame — fail them as ambiguous,
      // exactly like an exhausted retransmission timer.
      if (ctx->is_write) {
        stats_.split_write_aborts++;
        ctx->fail_code = ResultCode::kTimedOut;
        ctx->failed = true;
        ctx->completed = true;
        OnFail(ctx);
        return;
      }
      stats_.split_rebuilds++;
      ctx->completed = true;  // stop the old frame's retransmission timer
      std::vector<std::shared_ptr<PacketCtx>> packets =
          BuildPackets(ctx->ops, ctx->op_indices, ctx->flush);
      ctx->flush->outstanding += packets.size() - 1;
      for (const auto& packet : packets) {
        SendPacket(packet);
      }
      return;
    }
    ctx->group = map_.OwnerOf(ctx->partition);
    ReframeRoute(ctx);
    sender_.Retarget(ctx, ctx->is_write
                              ? cluster_.group(ctx->group).primary_id()
                              : ctx->target + 1);
    BackoffResend(ctx, options_.redirect_backoff);
    return;
  }
  if ((response.flags & kGroupMigrating) != 0) {
    // Write-frozen for a cutover window. Same frame, same group: either the
    // freeze lifts (migration aborted — not modeled) or the flip lands and
    // the next attempt bounces kWrongShard into the patch path above.
    stats_.migrating_backoffs++;
    BackoffResend(ctx, options_.migrate_backoff);
    return;
  }
  if ((response.flags & (kGroupRedirect | kGroupStaleRead)) != 0) {
    if ((response.flags & kGroupRedirect) != 0) {
      stats_.redirects_followed++;
    } else {
      stats_.stale_retries++;
    }
    BelievedPrimary(ctx->group) = response.primary_id;
    sender_.Retarget(ctx, response.primary_id);
    BackoffResend(ctx, options_.redirect_backoff);
    return;
  }

  Result<std::vector<KvResultMessage>> results =
      DecodeResults(response.results_payload);
  if (!results.ok()) {
    sender_.NoteCorruptResponse();
    return;  // retransmission timer recovers
  }
  std::vector<KvResultMessage>& slots = results.value();
  if (slots.size() == 1 && slots[0].code == ResultCode::kInvalidArgument &&
      ctx->op_indices.size() != 1) {
    for (size_t index : ctx->op_indices) {
      ctx->flush->results[index] = slots[0];
    }
  } else if (slots.size() == ctx->op_indices.size()) {
    for (size_t i = 0; i < slots.size(); i++) {
      ctx->flush->results[ctx->op_indices[i]] = std::move(slots[i]);
    }
  } else {
    sender_.NoteCorruptResponse();
    return;
  }
  ctx->completed = true;
  BelievedPrimary(ctx->group) = response.primary_id;
  for (const auto& key : ctx->write_keys) {
    Watermark& mark = watermarks_[key];
    if (mark.group != ctx->group || response.assigned_index > mark.index) {
      mark = Watermark{ctx->group, response.assigned_index};
    }
  }
  ctx->flush->outstanding--;
}

}  // namespace kvd
