#include "src/cluster/rebalancer.h"

#include <algorithm>

#include "src/common/assert.h"

namespace kvd {
namespace {

// max/mean over active groups; 0 when total load is zero (a perfectly idle
// cluster is perfectly balanced).
double Imbalance(const std::vector<uint64_t>& group_load,
                 const std::vector<uint8_t>& active) {
  uint64_t total = 0;
  uint64_t max_load = 0;
  uint32_t num_active = 0;
  for (size_t g = 0; g < group_load.size(); g++) {
    if (g < active.size() && active[g] == 0) {
      continue;
    }
    total += group_load[g];
    max_load = std::max(max_load, group_load[g]);
    num_active++;
  }
  if (total == 0 || num_active == 0) {
    return 0.0;
  }
  const double mean = static_cast<double>(total) / num_active;
  return static_cast<double>(max_load) / mean;
}

}  // namespace

RebalancePlan Rebalancer::Plan(const ShardMap& map,
                               const std::vector<uint64_t>& partition_ops,
                               const std::vector<uint8_t>& group_active,
                               const Options& options) {
  RebalancePlan plan;
  const uint32_t num_partitions = map.num_partitions();
  uint32_t num_groups = 0;
  for (uint32_t p = 0; p < num_partitions; p++) {
    num_groups = std::max(num_groups, map.OwnerOf(p) + 1);
  }
  num_groups = std::max(num_groups,
                        static_cast<uint32_t>(group_active.size()));
  if (num_groups == 0) {
    return plan;
  }
  auto is_active = [&](uint32_t g) {
    return g >= group_active.size() || group_active[g] != 0;
  };

  // Working copies the planner mutates as it commits moves.
  std::vector<uint32_t> owners = map.owners;
  std::vector<uint64_t> load(num_partitions, 0);
  for (uint32_t p = 0; p < num_partitions; p++) {
    load[p] = p < partition_ops.size() ? partition_ops[p] : 0;
  }
  std::vector<uint64_t> group_load(num_groups, 0);
  uint64_t total = 0;
  for (uint32_t p = 0; p < num_partitions; p++) {
    group_load[owners[p]] += load[p];
    total += load[p];
  }

  auto least_loaded_active = [&](uint32_t excluding) {
    uint32_t best = UINT32_MAX;
    for (uint32_t g = 0; g < num_groups; g++) {
      if (!is_active(g) || g == excluding) {
        continue;
      }
      if (best == UINT32_MAX || group_load[g] < group_load[best]) {
        best = g;
      }
    }
    return best;
  };
  auto commit = [&](uint32_t partition, uint32_t to) {
    group_load[owners[partition]] -= load[partition];
    group_load[to] += load[partition];
    owners[partition] = to;
    plan.moves.push_back(RebalanceMove{partition, to});
  };

  // Phase 1 — drain inactive groups unconditionally: every partition they
  // own moves to the currently least-loaded active group, coldest first so
  // the hot ones land on the emptiest destinations.
  std::vector<uint32_t> to_drain;
  for (uint32_t p = 0; p < num_partitions; p++) {
    if (!is_active(owners[p])) {
      to_drain.push_back(p);
    }
  }
  std::sort(to_drain.begin(), to_drain.end(), [&](uint32_t a, uint32_t b) {
    return load[a] != load[b] ? load[a] < load[b] : a < b;
  });
  for (const uint32_t p : to_drain) {
    const uint32_t to = least_loaded_active(UINT32_MAX);
    if (to == UINT32_MAX) {
      break;  // no active group to drain into; the caller must add one
    }
    commit(p, to);
  }

  // Phase 2 — greedy imbalance reduction: move the hottest partition off the
  // most-loaded active group to the least-loaded one, while each move
  // strictly improves and the target is not yet met.
  uint32_t num_active = 0;
  for (uint32_t g = 0; g < num_groups; g++) {
    num_active += is_active(g) ? 1 : 0;
  }
  const double mean =
      num_active == 0 ? 0.0 : static_cast<double>(total) / num_active;
  while (plan.moves.size() < options.max_moves) {
    const double current = Imbalance(group_load, group_active);
    if (current <= options.target_imbalance) {
      break;
    }
    uint32_t hottest_group = UINT32_MAX;
    for (uint32_t g = 0; g < num_groups; g++) {
      if (!is_active(g)) {
        continue;
      }
      if (hottest_group == UINT32_MAX ||
          group_load[g] > group_load[hottest_group]) {
        hottest_group = g;
      }
    }
    const uint32_t coldest_group = least_loaded_active(hottest_group);
    if (hottest_group == UINT32_MAX || coldest_group == UINT32_MAX) {
      break;
    }
    // The best partition to move: the hottest one that still fits — moving
    // it must not just swap which group is overloaded. Prefer the largest
    // load that keeps the destination at or below the source's new load.
    uint32_t best = UINT32_MAX;
    for (uint32_t p = 0; p < num_partitions; p++) {
      if (owners[p] != hottest_group || load[p] == 0) {
        continue;
      }
      const uint64_t src_after = group_load[hottest_group] - load[p];
      const uint64_t dst_after = group_load[coldest_group] + load[p];
      if (dst_after > std::max(src_after, group_load[hottest_group] - 1)) {
        continue;  // the move would not strictly reduce the maximum
      }
      if (best == UINT32_MAX || load[p] > load[best] ||
          (load[p] == load[best] && p < best)) {
        best = p;
      }
    }
    if (best == UINT32_MAX) {
      // No single move improves. If one partition alone exceeds the target,
      // only a split can help; otherwise this is as balanced as single-moves
      // reach.
      for (uint32_t p = 0; p < num_partitions; p++) {
        if (mean > 0.0 && static_cast<double>(load[p]) >
                              options.target_imbalance * mean) {
          plan.needs_split = true;
          break;
        }
      }
      break;
    }
    commit(best, coldest_group);
  }

  plan.projected_imbalance = Imbalance(group_load, group_active);
  if (!plan.needs_split && plan.projected_imbalance > options.target_imbalance) {
    // Target unreached even after the greedy pass: flag a split if a single
    // partition dominates.
    for (uint32_t p = 0; p < num_partitions; p++) {
      if (mean > 0.0 &&
          static_cast<double>(load[p]) > options.target_imbalance * mean) {
        plan.needs_split = true;
        break;
      }
    }
  }
  return plan;
}

}  // namespace kvd
