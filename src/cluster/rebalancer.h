// Elastic rebalancing policy: greedy hot-partition moves (DESIGN.md §14).
//
// The Rebalancer is pure policy — it never touches the cluster. Given the
// published map, the per-partition load counters, and the group active mask,
// Plan() returns an ordered list of single-partition moves that (a) drains
// every inactive group and (b) greedily moves the hottest partition from the
// most-loaded active group to the least-loaded one while doing so strictly
// lowers the max/mean imbalance, until it reaches target_imbalance or runs
// out of improving moves. The caller executes the moves one at a time through
// ClusterCoordinator::StartMigration (the coordinator allows one live
// migration at a time) and may re-Plan between moves as fresh load arrives.
//
// When one partition alone exceeds the target (a single hot key range no
// placement can fix), the planner signals a split instead: the caller doubles
// the map (SplitPartitions), lets load counters re-accumulate over the halves,
// and re-Plans at the finer granularity.
#ifndef SRC_CLUSTER_REBALANCER_H_
#define SRC_CLUSTER_REBALANCER_H_

#include <cstdint>
#include <vector>

#include "src/cluster/shard_map.h"

namespace kvd {

struct RebalanceMove {
  uint32_t partition = 0;
  uint32_t to_group = 0;
};

struct RebalancePlan {
  std::vector<RebalanceMove> moves;  // execute in order
  // True when no sequence of moves can reach the target because a single
  // partition's load exceeds target_imbalance * mean group load: split first.
  bool needs_split = false;
  // Projected max/mean group-load ratio over active groups after `moves`.
  double projected_imbalance = 0.0;
};

class Rebalancer {
 public:
  struct Options {
    double target_imbalance = 1.25;  // stop once max/mean <= this
    uint32_t max_moves = 32;         // planning bound per Plan() call
  };

  // `partition_ops[p]` is the observed load of partition p under `map`;
  // `group_active[g]` nonzero iff group g may own partitions.
  static RebalancePlan Plan(const ShardMap& map,
                            const std::vector<uint64_t>& partition_ops,
                            const std::vector<uint8_t>& group_active,
                            const Options& options);
  static RebalancePlan Plan(const ShardMap& map,
                            const std::vector<uint64_t>& partition_ops,
                            const std::vector<uint8_t>& group_active) {
    return Plan(map, partition_ops, group_active, Options());
  }
};

}  // namespace kvd

#endif  // SRC_CLUSTER_REBALANCER_H_
