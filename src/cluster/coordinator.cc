#include "src/cluster/coordinator.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/assert.h"
#include "src/transport/frame.h"

namespace kvd {
namespace {

constexpr char kTraceCategory[] = "cluster";

// Per-group fault-seed decorrelation, same recipe the pre-cluster sharded
// deployment used: each group's fault stream is independent but each stays
// deterministic under the cluster seed.
uint64_t GroupFaultSeed(uint64_t base, uint32_t index) {
  return base ^ (0x9e3779b97f4a7c15ULL * (index + 1));
}

std::vector<uint8_t> EncodeCopyAck(uint32_t installed) {
  std::vector<uint8_t> out(4);
  for (size_t i = 0; i < 4; i++) {
    out[i] = static_cast<uint8_t>(installed >> (8 * i));
  }
  return out;
}

}  // namespace

ClusterCoordinator::ClusterCoordinator(const ClusterConfig& config)
    : config_(config) {
  KVD_CHECK_MSG(config_.num_groups >= 1, "a cluster needs at least one group");
  KVD_CHECK_MSG(config_.num_partitions >= 1, "a cluster needs partitions");
  tracer_.set_enabled(config_.enable_request_tracing);
  request_tracer_.set_enabled(config_.enable_request_tracing);
  flight_recorder_.Configure(config_.flight);
  flight_recorder_.set_enabled(config_.enable_request_tracing);
  flight_recorder_.SetRequestTracer(&request_tracer_);
  flight_recorder_.SetMetricRegistry(&metrics_);
  flight_recorder_.SetEventTracer(&tracer_);
  request_tracer_.set_on_complete(
      [this](const OpTrace& trace) { flight_recorder_.OnTraceComplete(trace); });

  migration_fault_ = std::make_unique<FaultInjector>(config_.migration_faults);
  migration_fault_->SetTracer(&tracer_);
  migration_fault_->SetFlightRecorder(&flight_recorder_);
  migration_net_ = std::make_unique<NetworkModel>(sim_, config_.migration_network);
  migration_net_->SetFaultInjector(migration_fault_.get());
  migration_net_->SetTracer(&tracer_);
  migration_net_->SetRequestTracer(&request_tracer_);

  map_ = ShardMap::Initial(config_.num_partitions, config_.num_groups);
  partition_ops_.assign(config_.num_partitions, 0);
  for (uint32_t i = 0; i < config_.num_groups; i++) {
    ReplicationConfig group_config = config_.group;
    group_config.faults.seed = GroupFaultSeed(config_.group.faults.seed, i);
    groups_.push_back(std::make_unique<ReplicationGroup>(group_config, &sim_));
    active_.push_back(1);
    WireGroup(i);
  }
  RegisterMetrics();
  RegisterPartitionGauges(0, config_.num_partitions);
}

ClusterCoordinator::~ClusterCoordinator() { *liveness_ = false; }

void ClusterCoordinator::WireGroup(uint32_t index) {
  ReplicationGroup& group = *groups_[index];
  group.SetShardGate([this, index](uint64_t client_map_epoch,
                                   uint32_t partition, bool any_write) {
    ReplicationGroup::ShardGateDecision decision;
    decision.map_epoch = map_.epoch;
    decision.num_partitions = map_.num_partitions();
    if (client_map_epoch < split_epoch_) {
      // The label was computed with a pre-split modulus. Partition numbers
      // from different granularities are incomparable — owners[label] can
      // name this group while the keys inside actually live in the other
      // half, migrated elsewhere — so serving would answer authoritatively
      // for keys this group may not own. Bounce: the count mismatch in the
      // response makes the client refetch and re-derive its routes.
      decision.action = ReplicationGroup::ShardGateDecision::Action::kWrongShard;
      decision.owner_group = index;
      return decision;
    }
    if (partition >= map_.num_partitions()) {
      // A granularity the current map does not have (the map only grows, so
      // this is a corrupted or impossible route): force a full refetch.
      decision.action = ReplicationGroup::ShardGateDecision::Action::kWrongShard;
      decision.owner_group = index;
      return decision;
    }
    const uint32_t owner = map_.OwnerOf(partition);
    if (owner != index) {
      decision.action = ReplicationGroup::ShardGateDecision::Action::kWrongShard;
      decision.owner_group = owner;
      return decision;
    }
    if (any_write && migration_.active && migration_.writes_frozen &&
        migration_.partition == partition && migration_.from == index) {
      // Cutover freeze: reads still serve here (ownership has not flipped);
      // writes back off until the flip points them at the destination.
      decision.action = ReplicationGroup::ShardGateDecision::Action::kMigrating;
      decision.owner_group = index;
      return decision;
    }
    decision.owner_group = index;
    return decision;
  });
  group.SetLoadListener(
      [this](uint32_t partition, uint32_t num_ops, bool /*any_write*/) {
        if (partition < partition_ops_.size()) {
          partition_ops_[partition] += num_ops;
        }
      });
  group.SetCommitListener(
      [this, index](const LogEntry& entry) { OnCommitted(index, entry); });
}

Status ClusterCoordinator::Load(std::span<const uint8_t> key,
                                std::span<const uint8_t> value) {
  const uint32_t partition = map_.router().PartitionOf(key);
  return groups_[map_.OwnerOf(partition)]->Load(key, value);
}

uint32_t ClusterCoordinator::AddGroup() {
  const uint32_t index = num_groups();
  ReplicationConfig group_config = config_.group;
  group_config.faults.seed = GroupFaultSeed(config_.group.faults.seed, index);
  groups_.push_back(std::make_unique<ReplicationGroup>(group_config, &sim_));
  active_.push_back(1);
  WireGroup(index);
  tracer_.Instant(kTraceCategory, "group_added", {{"group", index}});
  return index;
}

Status ClusterCoordinator::RemoveGroup(uint32_t index) {
  if (index >= num_groups() || active_[index] == 0) {
    return Status::InvalidArgument("no such active group");
  }
  for (uint32_t owner : map_.owners) {
    if (owner == index) {
      return Status::InvalidArgument(
          "group still owns a partition; drain it first");
    }
  }
  if (migration_.active &&
      (migration_.from == index || migration_.to == index)) {
    return Status::InvalidArgument("group is part of an active migration");
  }
  active_[index] = 0;
  tracer_.Instant(kTraceCategory, "group_removed", {{"group", index}});
  return Status::Ok();
}

Status ClusterCoordinator::SplitPartitions() {
  if (migration_.active) {
    return Status::InvalidArgument("cannot split mid-migration");
  }
  const uint32_t old_partitions = map_.num_partitions();
  map_ = map_.Doubled();
  map_.epoch++;
  // Routes framed against any earlier epoch carry labels in the old modulus;
  // the shard gates refuse them from this epoch on (see WireGroup).
  split_epoch_ = map_.epoch;
  stats_.partitions_split++;
  // The split relabels every partition (p's keys divide between p and p+N),
  // so pre-split load counts no longer describe any current partition.
  partition_ops_.assign(map_.num_partitions(), 0);
  RegisterPartitionGauges(old_partitions, map_.num_partitions());
  tracer_.Instant(kTraceCategory, "split",
                  {{"num_partitions", map_.num_partitions()},
                   {"map_epoch", map_.epoch}});
  return Status::Ok();
}

int ClusterCoordinator::migration_phase() const {
  if (!migration_.active) {
    return 0;
  }
  switch (migration_.phase) {
    case Migration::Phase::kCopy:
      return 1;
    case Migration::Phase::kCatchUp:
      return 2;
    case Migration::Phase::kFrozen:
      return 3;
  }
  return 0;
}

Status ClusterCoordinator::StartMigration(uint32_t partition,
                                          uint32_t to_group) {
  if (migration_.active) {
    return Status::InvalidArgument("a migration is already in flight");
  }
  if (partition >= map_.num_partitions()) {
    return Status::InvalidArgument("no such partition");
  }
  if (to_group >= num_groups() || active_[to_group] == 0) {
    return Status::InvalidArgument("no such active group");
  }
  const uint32_t from = map_.OwnerOf(partition);
  if (from == to_group) {
    return Status::InvalidArgument("group already owns the partition");
  }
  const uint64_t round = migration_.round + 1;
  migration_ = Migration{};
  migration_.active = true;
  migration_.partition = partition;
  migration_.from = from;
  migration_.to = to_group;
  migration_.phase = Migration::Phase::kCopy;
  migration_.round = round;
  migration_.started_at = sim_.Now();
  if (request_tracer_.enabled()) {
    // The migration is traced as one synthetic op: chunk flights, forwards,
    // retransmissions, and the freeze window all hang off this handle, and
    // the cutover flight dump carries the whole span tree.
    migration_.trace = request_tracer_.Start(
        Opcode::kPut, (1ull << 62) | ++next_migration_trace_sequence_, 0);
  }
  stats_.migrations_started++;
  tracer_.Instant(kTraceCategory, "migration_start",
                  {{"partition", partition}, {"from", from}, {"to", to_group}});
  InstallSnapshot();
  SendCopyChunks();
  ArmRetransmitTimer();
  std::shared_ptr<bool> alive = liveness_;
  sim_.ScheduleAt(sim_.Now() + config_.migration_poll_interval,
                  [this, alive, round] {
                    if (*alive && migration_.active &&
                        migration_.round == round) {
                      PollMigration();
                    }
                  });
  return Status::Ok();
}

void ClusterCoordinator::DriveMigrationToCompletion() {
  while (migration_.active) {
    KVD_CHECK(sim_.Step());  // group heartbeats keep the queue non-empty
  }
}

void ClusterCoordinator::InstallSnapshot() {
  Migration& m = migration_;
  ReplicationGroup& source = *groups_[m.from];
  ReplicationGroup& dest = *groups_[m.to];
  const KeyRouter router = map_.router();
  // Session records first: tiny control-plane metadata next to the KV bytes,
  // installed synchronously so the exactly-once guarantee never depends on
  // copy-stream progress. Forwards overwrite with identical records.
  for (const auto& record :
       source.ExportPartitionSessions(router, m.partition)) {
    dest.InstallSessionRecord(record.sequence, record.slot, record.result);
    stats_.sessions_migrated++;
  }
  // Cut the KV snapshot and pre-frame every chunk: retransmissions must
  // resend byte-identical frames. The cut is untimed (its cost is modeled by
  // the paced stream below, exactly like replica state transfer). Writes
  // in flight at the cut are harmless: their commit forwards re-read the
  // then-current value, and forwarded keys are excluded from chunk installs.
  auto kvs = source.SnapshotPartitionKvs(router, m.partition);
  ReplicaMessage chunk;
  chunk.type = ReplicaMessageType::kStateChunk;
  chunk.epoch = map_.epoch;
  chunk.sender = m.from;
  uint32_t seq = 0;
  auto flush_chunk = [&] {
    chunk.chunk_seq = seq++;
    m.chunk_kvs.push_back(static_cast<uint32_t>(chunk.kvs.size()));
    m.chunks.push_back(
        FramePacket(++next_copy_sequence_, EncodeReplicaMessage(chunk)));
    chunk.kvs.clear();
  };
  for (auto& kv : kvs) {
    chunk.kvs.emplace_back(std::move(kv.first), std::move(kv.second));
    if (chunk.kvs.size() >= config_.copy_chunk_kvs) {
      flush_chunk();
    }
  }
  if (!chunk.kvs.empty()) {
    flush_chunk();
  }
  tracer_.Instant(kTraceCategory, "copy_start",
                  {{"partition", m.partition},
                   {"chunks", static_cast<uint64_t>(m.chunks.size())},
                   {"kvs", static_cast<uint64_t>(kvs.size())}});
}

void ClusterCoordinator::SendCopyChunks() {
  Migration& m = migration_;
  if (!m.active || m.phase != Migration::Phase::kCopy || m.sending ||
      m.next_to_send >= m.chunks.size()) {
    return;
  }
  m.sending = true;
  const uint32_t index = m.next_to_send++;
  const std::vector<uint8_t>& framed = m.chunks[index];
  stats_.copy_chunks_sent++;
  stats_.copy_bytes += framed.size();
  const uint64_t round = m.round;
  std::shared_ptr<bool> alive = liveness_;
  auto deliver = [this, alive, round](std::vector<uint8_t> packet) {
    if (*alive) {
      OnCopyChunkArrive(round, std::move(packet));
    }
  };
  if (m.trace != 0) {
    const std::vector<uint64_t> traces{m.trace};
    migration_net_->SendPayloadToServer(framed, std::move(deliver), traces,
                                        SpanKind::kNetWire);
  } else {
    migration_net_->SendPayloadToServer(framed, std::move(deliver));
  }
  // Pace the stream: background copy must not starve foreground traffic, so
  // the next chunk leaves once this one's bytes have had their slot at the
  // configured copy rate.
  const SimTime pace = std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(framed.size()) /
                              config_.copy_bytes_per_sec * kSecond));
  sim_.ScheduleAt(sim_.Now() + pace, [this, alive, round] {
    if (!*alive || !migration_.active || migration_.round != round) {
      return;
    }
    migration_.sending = false;
    SendCopyChunks();
  });
}

void ClusterCoordinator::OnCopyChunkArrive(uint64_t round,
                                           std::vector<uint8_t> packet) {
  Migration& m = migration_;
  if (!m.active || m.round != round || m.phase != Migration::Phase::kCopy) {
    return;
  }
  Result<Frame> frame = ParseFrame(packet);
  if (!frame.ok()) {
    return;  // corrupted in flight; go-back-N retransmission recovers
  }
  Result<ReplicaMessage> decoded = DecodeReplicaMessage(frame.value().payload);
  if (!decoded.ok() ||
      decoded.value().type != ReplicaMessageType::kStateChunk) {
    return;
  }
  const ReplicaMessage& chunk = decoded.value();
  if (chunk.chunk_seq == m.installed) {
    ReplicationGroup& dest = *groups_[m.to];
    bool chunk_installed = true;
    for (const auto& [key, value] : chunk.kvs) {
      if (!config_.test_bugs.disable_migration_touched_key_guard &&
          m.touched.count(key) != 0) {
        // A forward already wrote (or deleted) this key at the destination
        // with a newer value; installing the snapshot's copy — possibly from
        // a duplicated or retransmitted chunk — would resurrect the old one.
        continue;
      }
      if (!dest.Load(key, value).ok()) {
        // A crashed destination replica (or capacity pressure) blocks the
        // install. Drop the chunk without advancing the install point:
        // go-back-N retransmission redelivers it once the group heals, and
        // Load is an upsert so the partial prefix re-installs harmlessly.
        chunk_installed = false;
        break;
      }
      stats_.copy_kvs++;
    }
    if (chunk_installed) {
      m.installed++;
    }
  } else {
    stats_.copy_stale_chunks++;  // loss gap or duplicate: go-back-N drops it
  }
  // Cumulative ack on every arrival (duplicates are harmless and heal lost
  // acks). The ack direction rides the same fallible wire.
  std::shared_ptr<bool> alive = liveness_;
  migration_net_->SendPayloadToClient(
      FramePacket(++next_copy_sequence_, EncodeCopyAck(m.installed)),
      [this, alive, round](std::vector<uint8_t> ack) {
        if (*alive) {
          OnCopyAckArrive(round, std::move(ack));
        }
      });
}

void ClusterCoordinator::OnCopyAckArrive(uint64_t round,
                                         std::vector<uint8_t> packet) {
  Migration& m = migration_;
  if (!m.active || m.round != round || m.phase != Migration::Phase::kCopy) {
    return;
  }
  Result<Frame> frame = ParseFrame(packet);
  if (!frame.ok() || frame.value().payload.size() != 4) {
    return;
  }
  uint32_t installed = 0;
  for (size_t i = 0; i < 4; i++) {
    installed |= static_cast<uint32_t>(frame.value().payload[i]) << (8 * i);
  }
  if (installed > m.chunks.size()) {
    return;  // corrupt beyond the checksum's reach: impossible cursor
  }
  m.acked = std::max(m.acked, installed);
}

void ClusterCoordinator::ArmRetransmitTimer() {
  const uint64_t round = migration_.round;
  std::shared_ptr<bool> alive = liveness_;
  sim_.ScheduleAt(
      sim_.Now() + config_.copy_retransmit_timeout, [this, alive, round] {
        if (!*alive || !migration_.active || migration_.round != round ||
            migration_.phase != Migration::Phase::kCopy) {
          return;
        }
        Migration& m = migration_;
        if (m.acked < m.chunks.size() && m.acked == m.last_observed_ack) {
          // No cumulative progress for a full timeout: a chunk or its ack
          // was lost. Go back to the ack point and resend from there.
          const uint32_t resent =
              m.next_to_send > m.acked ? m.next_to_send - m.acked : 0;
          stats_.copy_chunk_retransmits += resent;
          if (m.trace != 0) {
            request_tracer_.Span(m.trace, SpanKind::kRetransmit,
                                 sim_.Now() - config_.copy_retransmit_timeout,
                                 sim_.Now(), m.acked);
          }
          m.next_to_send = m.acked;
          SendCopyChunks();
        }
        m.last_observed_ack = m.acked;
        ArmRetransmitTimer();
      });
}

void ClusterCoordinator::PollMigration() {
  Migration& m = migration_;
  switch (m.phase) {
    case Migration::Phase::kCopy:
      if (m.acked >= m.chunks.size()) {
        m.phase = Migration::Phase::kCatchUp;
        tracer_.Instant(kTraceCategory, "copy_done",
                        {{"partition", m.partition},
                         {"chunks", static_cast<uint64_t>(m.chunks.size())}});
      }
      break;
    case Migration::Phase::kCatchUp:
      // Forwarding has been synchronous since the migration started, so
      // catch-up only waits for the forward stream to go quiet (writes
      // admitted at the source are still draining through commit).
      if (m.last_forward == 0 ||
          sim_.Now() - m.last_forward >= config_.migration_poll_interval) {
        m.phase = Migration::Phase::kFrozen;
        m.writes_frozen = true;
        m.frozen_at = sim_.Now();
        tracer_.Instant(kTraceCategory, "freeze", {{"partition", m.partition}});
      }
      break;
    case Migration::Phase::kFrozen:
      // Flip only after a full quiet window under the freeze: every write
      // admitted before the freeze has committed and forwarded by then.
      if (sim_.Now() - std::max(m.frozen_at, m.last_forward) >=
          config_.cutover_quiesce) {
        Flip();
        return;  // no more polls; the migration is gone
      }
      break;
  }
  const uint64_t round = m.round;
  std::shared_ptr<bool> alive = liveness_;
  sim_.ScheduleAt(sim_.Now() + config_.migration_poll_interval,
                  [this, alive, round] {
                    if (*alive && migration_.active &&
                        migration_.round == round) {
                      PollMigration();
                    }
                  });
}

void ClusterCoordinator::OnCommitted(uint32_t group, const LogEntry& entry) {
  if (entry.client_sequence == 0 || !IsWriteOpcode(entry.op.opcode)) {
    return;  // promotion barriers carry no client effect
  }
  if (stats_.migrations_started == 0) {
    return;  // nothing has ever moved; every commit is at its home group
  }
  const uint32_t partition = map_.router().PartitionOf(entry.op.key);
  if (map_.OwnerOf(partition) != group) {
    // A commit at a group that no longer owns the key's partition: a
    // straggler that slipped past the cutover quiesce. Counted, not
    // forwarded — the flip already declared the destination authoritative.
    stats_.late_forwards++;
    return;
  }
  Migration& m = migration_;
  if (!m.active || group != m.from || partition != m.partition) {
    return;
  }
  // Synchronous dual-write: re-read the key's current committed value at the
  // source and install it (or its absence) at the destination, below the
  // destination's log. Re-reading rather than replaying the entry makes
  // forwards idempotent absolute states, so orderings with snapshot chunks
  // and duplicate commits of the same key are all safe.
  ReplicationGroup& source = *groups_[m.from];
  ReplicationGroup& dest = *groups_[m.to];
  const SimTime started = sim_.Now();
  m.touched.insert(entry.op.key);
  m.last_forward = sim_.Now();
  stats_.forwards++;
  KvOperation get;
  get.opcode = Opcode::kGet;
  get.key = entry.op.key;
  KvResultMessage current = source.Execute(get);
  if (current.code == ResultCode::kOk) {
    KVD_CHECK_MSG(dest.Load(entry.op.key, current.value).ok(),
                  "destination out of capacity installing a forward");
  } else {
    // The key may never have reached the destination (deleted before its
    // chunk arrived): a no-op erase is fine.
    (void)dest.Erase(entry.op.key);
  }
  dest.InstallSessionRecord(entry.client_sequence, entry.slot, entry.result);
  if (m.trace != 0) {
    request_tracer_.Span(m.trace, SpanKind::kReplShip, started, sim_.Now(),
                         stats_.forwards);
  }
}

void ClusterCoordinator::Flip() {
  Migration& m = migration_;
  ReplicationGroup& source = *groups_[m.from];
  // Publish the new ownership first: from this instant the source's shard
  // gate bounces the partition (kWrongShard -> destination), so the erase
  // below races no reader.
  map_.epoch++;
  map_.owners[m.partition] = m.to;
  const KeyRouter router = map_.router();
  for (const auto& kv : source.SnapshotPartitionKvs(router, m.partition)) {
    KVD_CHECK(source.Erase(kv.first).ok());
    stats_.keys_erased++;
  }
  stats_.migrations_completed++;
  const uint64_t elapsed_ns =
      static_cast<uint64_t>((sim_.Now() - m.started_at) / kNanosecond);
  migration_ns_.Add(elapsed_ns);
  if (m.trace != 0) {
    request_tracer_.Span(m.trace, SpanKind::kDeadlineWait, m.frozen_at,
                         sim_.Now(), m.partition);
    request_tracer_.Finish(m.trace, ResultCode::kOk);
  }
  tracer_.Instant(kTraceCategory, "cutover",
                  {{"partition", m.partition},
                   {"from", m.from},
                   {"to", m.to},
                   {"map_epoch", map_.epoch},
                   {"elapsed_ns", elapsed_ns}});
  const std::string detail = "partition " + std::to_string(m.partition) +
                             " cut over to group " + std::to_string(m.to) +
                             " at map epoch " + std::to_string(map_.epoch);
  const uint64_t round = m.round;
  migration_ = Migration{};
  migration_.round = round;  // keeps stale-callback guards monotonic
  // The dump after the trace is finished: the completed ring now holds the
  // migration's full span tree.
  flight_recorder_.Trigger(FlightTrigger::kShardCutover, detail);
}

void ClusterCoordinator::ResetLoadCounters() {
  std::fill(partition_ops_.begin(), partition_ops_.end(), 0);
}

std::vector<uint64_t> ClusterCoordinator::GroupLoads() const {
  std::vector<uint64_t> loads(num_groups(), 0);
  for (uint32_t p = 0; p < map_.num_partitions(); p++) {
    loads[map_.OwnerOf(p)] += partition_ops_[p];
  }
  return loads;
}

void ClusterCoordinator::RegisterMetrics() {
  metrics_.RegisterCounter("kvd_cluster_migrations_total",
                           "Live shard migrations completed (cutovers)", {},
                           &stats_.migrations_completed);
  metrics_.RegisterCounter("kvd_cluster_migrations_started_total",
                           "Live shard migrations started", {},
                           &stats_.migrations_started);
  metrics_.RegisterCounter("kvd_cluster_partition_splits_total",
                           "Partition-doubling split events", {},
                           &stats_.partitions_split);
  metrics_.RegisterCounter("kvd_cluster_copy_chunks_total",
                           "Copy-stream chunk transmissions, resends included",
                           {}, &stats_.copy_chunks_sent);
  metrics_.RegisterCounter("kvd_cluster_copy_chunk_retransmits_total",
                           "Copy-stream chunks resent by go-back-N", {},
                           &stats_.copy_chunk_retransmits);
  metrics_.RegisterCounter("kvd_cluster_copy_kvs_total",
                           "KVs installed at destinations from copy chunks", {},
                           &stats_.copy_kvs);
  metrics_.RegisterCounter("kvd_cluster_copy_bytes_total",
                           "Framed copy-stream bytes put on the wire", {},
                           &stats_.copy_bytes);
  metrics_.RegisterCounter("kvd_cluster_copy_stale_chunks_total",
                           "Out-of-order or duplicate copy chunks dropped", {},
                           &stats_.copy_stale_chunks);
  metrics_.RegisterCounter("kvd_cluster_forwards_total",
                           "Committed writes dual-written to a destination", {},
                           &stats_.forwards);
  metrics_.RegisterCounter(
      "kvd_cluster_late_forwards_total",
      "Commits observed at a group after it lost the partition", {},
      &stats_.late_forwards);
  metrics_.RegisterCounter("kvd_cluster_sessions_migrated_total",
                           "Session records installed at destinations", {},
                           &stats_.sessions_migrated);
  metrics_.RegisterCounter("kvd_cluster_keys_erased_total",
                           "Source keys dropped at cutover", {},
                           &stats_.keys_erased);
  metrics_.RegisterCounter("kvd_cluster_map_fetches_total",
                           "Full shard-map fetches served to clients", {},
                           &stats_.map_fetches);
  metrics_.RegisterGauge("kvd_cluster_map_epoch", "Published shard-map epoch",
                         {}, [this] { return static_cast<double>(map_.epoch); });
  metrics_.RegisterGauge(
      "kvd_cluster_num_partitions", "Partitions in the published map", {},
      [this] { return static_cast<double>(map_.num_partitions()); });
  metrics_.RegisterGauge("kvd_cluster_active_groups",
                         "Replication groups accepting partitions", {},
                         [this] {
                           double n = 0;
                           for (const uint8_t a : active_) {
                             n += a;
                           }
                           return n;
                         });
  metrics_.RegisterGauge("kvd_cluster_migration_phase",
                         "0 idle, 1 copy, 2 catch-up, 3 frozen", {}, [this] {
                           return static_cast<double>(migration_phase());
                         });
  metrics_.RegisterHistogram("kvd_cluster_migration_ns",
                             "Migration start-to-cutover duration", {},
                             [this] { return migration_ns_; });
  migration_net_->RegisterMetrics(metrics_);
  migration_fault_->RegisterMetrics(metrics_);
  if (config_.enable_request_tracing) {
    request_tracer_.RegisterMetrics(metrics_);
    flight_recorder_.RegisterMetrics(metrics_);
  }
}

void ClusterCoordinator::RegisterPartitionGauges(uint32_t first,
                                                 uint32_t last_plus_one) {
  for (uint32_t p = first; p < last_plus_one; p++) {
    metrics_.RegisterGauge(
        "kvd_cluster_partition_ops",
        "Ops served for this partition since the last counter reset",
        {{"partition", std::to_string(p)}}, [this, p] {
          return p < partition_ops_.size()
                     ? static_cast<double>(partition_ops_[p])
                     : 0.0;
        });
    metrics_.RegisterGauge(
        "kvd_cluster_partition_owner", "Owning group under the published map",
        {{"partition", std::to_string(p)}}, [this, p] {
          return p < map_.num_partitions()
                     ? static_cast<double>(map_.OwnerOf(p))
                     : -1.0;
        });
  }
}

}  // namespace kvd
