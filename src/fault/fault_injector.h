// Deterministic fault injection (ROADMAP robustness item; paper §3.3.4 ECC,
// kBusy backpressure, out-of-memory handling).
//
// The simulated hardware is lossless by default, which makes every failure
// path dead code. The FaultInjector turns those paths on under test: each
// *site* (a specific place in a hardware model where a fault can strike) asks
// `ShouldInject(site)` once per event, and the injector answers from
//
//   - a per-site Bernoulli probability, drawn from a per-site RNG stream
//     seeded from (plan.seed, site) — sites never perturb each other's
//     sequences, so enabling one fault does not reshuffle another; and
//   - a scripted schedule of "fail the Nth event at site S" entries for
//     pinpoint regression tests.
//
// Determinism: decisions depend only on the per-site event ordinal, and event
// ordinals follow simulator event order, which is itself deterministic
// ((time, sequence)-ordered queue). Replaying a run with the same seed and
// schedule reproduces every fault bit-for-bit.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/random.h"
#include "src/obs/event_tracer.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metric_registry.h"

namespace kvd {

// Every place a fault can be injected. Network sites are per direction so a
// lossy client->server path can be tested against a clean return path.
enum class FaultSite : uint8_t {
  kNetDropToServer = 0,       // request packet lost on the wire
  kNetDropToClient,           // response packet lost on the wire
  kNetDuplicateToServer,      // request delivered twice
  kNetDuplicateToClient,      // response delivered twice
  kNetCorruptToServer,        // request payload bits flipped in flight
  kNetCorruptToClient,        // response payload bits flipped in flight
  kPcieReadCompletion,        // transient DMA read completion error (replayed)
  kPcieWriteCompletion,       // transient DMA write acceptance error (replayed)
  kDramCorrectableFlip,       // single-bit NIC DRAM error (ECC corrects)
  kDramUncorrectableFlip,     // double-bit NIC DRAM error (ECC detects only)
  kReplicaCrash,              // whole-node fail-stop (replication groups);
                              // consulted once per replica per group tick
};
inline constexpr size_t kNumFaultSites =
    static_cast<size_t>(FaultSite::kReplicaCrash) + 1;

// Stable human-readable site name, e.g. "net_drop_to_server".
const char* FaultSiteName(FaultSite site);

// "Fail the `nth` event (1-based) observed at `site`", independent of the
// site's probability. Exact-ordinal matches only.
struct FaultScheduleEntry {
  FaultSite site;
  uint64_t nth;
};

struct FaultPlan {
  uint64_t seed = 1;
  // Per-site Bernoulli fault probability; all zero by default (no injection).
  std::array<double, kNumFaultSites> probability{};
  std::vector<FaultScheduleEntry> schedule;

  double& at(FaultSite site) { return probability[static_cast<size_t>(site)]; }
  double at(FaultSite site) const { return probability[static_cast<size_t>(site)]; }
  bool AnyEnabled() const;
};

struct FaultSiteStats {
  uint64_t events = 0;    // times the site was consulted
  uint64_t injected = 0;  // times a fault was injected
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Consults the site: counts the event, then answers the scripted schedule
  // first and the site probability second. At most one decision per event.
  bool ShouldInject(FaultSite site);

  // The site's private RNG stream, for shaping an injected fault (which bits
  // to flip, ...). Deterministic per site like the decisions themselves.
  Rng& SiteRng(FaultSite site) { return rng_[static_cast<size_t>(site)]; }

  // Flips 1..3 bits of `bytes` using the site's RNG stream (no-op on empty).
  void CorruptBytes(std::span<uint8_t> bytes, FaultSite site);

  // Runtime probability override — scripts loss windows (retry storms, flaky
  // links) mid-run. Deterministic: the site's RNG stream is untouched, only
  // the threshold its draws are compared against changes, so sites still
  // never perturb each other's sequences.
  void SetProbability(FaultSite site, double probability) {
    plan_.at(site) = probability;
  }

  const FaultPlan& plan() const { return plan_; }
  const FaultSiteStats& stats(FaultSite site) const {
    return stats_[static_cast<size_t>(site)];
  }
  uint64_t total_injected() const;

  // Per-site event/injection counters labelled {site="..."}.
  void RegisterMetrics(MetricRegistry& registry) const;
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }
  // Each injection fires the flight recorder — but only when the recorder's
  // config opts in (chaos runs inject thousands of faults by design).
  void SetFlightRecorder(FlightRecorder* recorder) { flight_ = recorder; }

 private:
  FaultPlan plan_;
  EventTracer* tracer_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  std::array<Rng, kNumFaultSites> rng_;
  std::array<FaultSiteStats, kNumFaultSites> stats_{};
  // Scheduled ordinals per site, sorted; consumed front to back.
  std::array<std::vector<uint64_t>, kNumFaultSites> scheduled_;
  std::array<size_t, kNumFaultSites> next_scheduled_{};
};

}  // namespace kvd

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
