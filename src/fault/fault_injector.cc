#include "src/fault/fault_injector.h"

#include <algorithm>

#include "src/common/assert.h"
#include "src/common/hashing.h"

namespace kvd {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kNetDropToServer:
      return "net_drop_to_server";
    case FaultSite::kNetDropToClient:
      return "net_drop_to_client";
    case FaultSite::kNetDuplicateToServer:
      return "net_duplicate_to_server";
    case FaultSite::kNetDuplicateToClient:
      return "net_duplicate_to_client";
    case FaultSite::kNetCorruptToServer:
      return "net_corrupt_to_server";
    case FaultSite::kNetCorruptToClient:
      return "net_corrupt_to_client";
    case FaultSite::kPcieReadCompletion:
      return "pcie_read_completion";
    case FaultSite::kPcieWriteCompletion:
      return "pcie_write_completion";
    case FaultSite::kDramCorrectableFlip:
      return "dram_correctable_flip";
    case FaultSite::kDramUncorrectableFlip:
      return "dram_uncorrectable_flip";
    case FaultSite::kReplicaCrash:
      return "replica_crash";
  }
  return "unknown";
}

bool FaultPlan::AnyEnabled() const {
  if (!schedule.empty()) {
    return true;
  }
  return std::any_of(probability.begin(), probability.end(),
                     [](double p) { return p > 0.0; });
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  for (size_t site = 0; site < kNumFaultSites; site++) {
    KVD_CHECK_MSG(plan_.probability[site] >= 0.0 && plan_.probability[site] <= 1.0,
                  "fault probability out of [0,1]");
    // Independent stream per site: nearby seeds diverge through splitmix64.
    rng_[site].Seed(Mix64(plan_.seed) ^ Mix64(site + 1));
  }
  for (const FaultScheduleEntry& entry : plan_.schedule) {
    KVD_CHECK_MSG(entry.nth >= 1, "scheduled fault ordinals are 1-based");
    scheduled_[static_cast<size_t>(entry.site)].push_back(entry.nth);
  }
  for (auto& ordinals : scheduled_) {
    std::sort(ordinals.begin(), ordinals.end());
  }
}

bool FaultInjector::ShouldInject(FaultSite site) {
  const size_t i = static_cast<size_t>(site);
  FaultSiteStats& stats = stats_[i];
  stats.events++;
  bool inject = false;
  if (next_scheduled_[i] < scheduled_[i].size() &&
      scheduled_[i][next_scheduled_[i]] == stats.events) {
    next_scheduled_[i]++;
    inject = true;
  } else if (plan_.probability[i] > 0.0 &&
             rng_[i].NextBool(plan_.probability[i])) {
    inject = true;
  }
  if (inject) {
    stats.injected++;
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant("fault", FaultSiteName(site), {{"event", stats.events}});
    }
    if (flight_ != nullptr && flight_->config().trigger_on_fault_injection) {
      flight_->Trigger(FlightTrigger::kFaultInjected, FaultSiteName(site));
    }
  }
  return inject;
}

void FaultInjector::CorruptBytes(std::span<uint8_t> bytes, FaultSite site) {
  if (bytes.empty()) {
    return;
  }
  Rng& rng = SiteRng(site);
  const uint64_t flips = rng.NextInRange(1, 3);
  for (uint64_t i = 0; i < flips; i++) {
    const uint64_t bit = rng.NextBelow(bytes.size() * 8);
    bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (const FaultSiteStats& stats : stats_) {
    total += stats.injected;
  }
  return total;
}

void FaultInjector::RegisterMetrics(MetricRegistry& registry) const {
  for (size_t i = 0; i < kNumFaultSites; i++) {
    const char* name = FaultSiteName(static_cast<FaultSite>(i));
    registry.RegisterCounter("kvd_fault_events_total",
                             "Fault-site events consulted", {{"site", name}},
                             &stats_[i].events);
    registry.RegisterCounter("kvd_fault_injected_total", "Faults injected",
                             {{"site", name}}, &stats_[i].injected);
  }
}

}  // namespace kvd
