// Discrete-event simulation core.
//
// All hardware models (PCIe link, NIC DRAM, network, KV-processor clock) are
// driven by one Simulator instance. Events execute in (time, sequence) order;
// the sequence tiebreak makes same-timestamp behaviour deterministic, which
// keeps every benchmark bit-reproducible across runs.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/units.h"

namespace kvd {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` picoseconds from now.
  void Schedule(SimTime delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  // Schedules `fn` at absolute time `when` (must not be in the past).
  void ScheduleAt(SimTime when, Callback fn);

  // Runs the earliest pending event. Returns false when the queue is empty.
  bool Step();

  // Runs events until none remain at or before `deadline`; advances the clock
  // to `deadline` even if the queue drains earlier.
  void RunUntil(SimTime deadline);

  // Runs until the event queue is empty.
  void RunUntilIdle();

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t sequence;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.sequence > b.sequence;
    }
  };

  SimTime now_ = 0;
  uint64_t next_sequence_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace kvd

#endif  // SRC_SIM_SIMULATOR_H_
