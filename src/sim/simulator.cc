#include "src/sim/simulator.h"

#include <utility>

#include "src/common/assert.h"

namespace kvd {

void Simulator::ScheduleAt(SimTime when, Callback fn) {
  KVD_CHECK_MSG(when >= now_, "event scheduled in the past");
  queue_.push(Entry{when, next_sequence_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top() is const; the callback is moved out via const_cast,
  // which is safe because the entry is popped before the callback runs.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.when;
  executed_++;
  entry.fn();
  return true;
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void Simulator::RunUntilIdle() {
  while (Step()) {
  }
}

}  // namespace kvd
