// Counted-resource abstraction for simulated hardware limits.
//
// PCIe DMA tags (64 per engine), posted/non-posted header credits (88/84),
// and reservation-station entries (256) are all fixed pools that requests
// must acquire before issue and release on completion. Waiters are granted
// FIFO, matching the in-order arbitration of the modelled hardware queues.
#ifndef SRC_SIM_TOKEN_POOL_H_
#define SRC_SIM_TOKEN_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/common/assert.h"

namespace kvd {

class TokenPool {
 public:
  TokenPool(std::string name, uint32_t capacity)
      : name_(std::move(name)), capacity_(capacity), available_(capacity) {}

  // Acquires `count` tokens; `granted` runs immediately if they are free,
  // otherwise when enough releases have happened (FIFO among waiters).
  void Acquire(uint32_t count, std::function<void()> granted);

  // Returns tokens to the pool and wakes eligible waiters in order.
  void Release(uint32_t count);

  // Non-blocking acquire; returns false (and takes nothing) if unavailable.
  bool TryAcquire(uint32_t count);

  uint32_t available() const { return available_; }
  uint32_t capacity() const { return capacity_; }
  size_t waiters() const { return waiters_.size(); }
  const std::string& name() const { return name_; }

  // Peak-usage statistics for utilization reporting.
  uint32_t peak_in_use() const { return peak_in_use_; }
  uint64_t total_acquires() const { return total_acquires_; }
  uint64_t total_waits() const { return total_waits_; }

 private:
  struct Waiter {
    uint32_t count;
    std::function<void()> granted;
  };

  void NoteAcquired(uint32_t count);

  std::string name_;
  uint32_t capacity_;
  uint32_t available_;
  uint32_t peak_in_use_ = 0;
  uint64_t total_acquires_ = 0;
  uint64_t total_waits_ = 0;
  std::deque<Waiter> waiters_;
};

}  // namespace kvd

#endif  // SRC_SIM_TOKEN_POOL_H_
