#include "src/sim/token_pool.h"

#include <utility>

namespace kvd {

void TokenPool::NoteAcquired(uint32_t count) {
  available_ -= count;
  total_acquires_++;
  const uint32_t in_use = capacity_ - available_;
  if (in_use > peak_in_use_) {
    peak_in_use_ = in_use;
  }
}

void TokenPool::Acquire(uint32_t count, std::function<void()> granted) {
  KVD_CHECK_MSG(count <= capacity_, "acquire larger than pool capacity");
  // FIFO fairness: if anyone is already waiting, queue behind them even if
  // tokens are currently free (they are reserved for the head waiter).
  if (waiters_.empty() && available_ >= count) {
    NoteAcquired(count);
    granted();
    return;
  }
  total_waits_++;
  waiters_.push_back(Waiter{count, std::move(granted)});
}

bool TokenPool::TryAcquire(uint32_t count) {
  KVD_CHECK(count <= capacity_);
  if (!waiters_.empty() || available_ < count) {
    return false;
  }
  NoteAcquired(count);
  return true;
}

void TokenPool::Release(uint32_t count) {
  available_ += count;
  KVD_CHECK_MSG(available_ <= capacity_, "token double-release");
  while (!waiters_.empty() && available_ >= waiters_.front().count) {
    Waiter waiter = std::move(waiters_.front());
    waiters_.pop_front();
    NoteAcquired(waiter.count);
    waiter.granted();
  }
}

}  // namespace kvd
