#include "src/common/zipf.h"

#include <cmath>

#include "src/common/assert.h"
#include "src/common/hashing.h"

namespace kvd {
namespace {

// zeta(n, theta) = sum_{i=1..n} 1/i^theta. Exact up to a cutoff, then the
// integral approximation; the error is far below workload noise for the sizes
// benchmarks use (up to 2^30 items).
double Zeta(uint64_t n, double theta) {
  constexpr uint64_t kExactCutoff = 1 << 20;
  double sum = 0;
  const uint64_t exact = n < kExactCutoff ? n : kExactCutoff;
  for (uint64_t i = 1; i <= exact; i++) {
    sum += std::pow(1.0 / static_cast<double>(i), theta);
  }
  if (n > exact) {
    // Integral of x^-theta from `exact` to `n`.
    sum += (std::pow(static_cast<double>(n), 1 - theta) -
            std::pow(static_cast<double>(exact), 1 - theta)) /
           (1 - theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t num_items, double theta)
    : num_items_(num_items), theta_(theta) {
  KVD_CHECK(num_items >= 1);
  KVD_CHECK(theta > 0 && theta < 1);
  zetan_ = Zeta(num_items, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1 - std::pow(2.0 / static_cast<double>(num_items), 1 - theta)) /
         (1 - zeta2theta_ / zetan_);
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const auto rank = static_cast<uint64_t>(
      static_cast<double>(num_items_) * std::pow(eta_ * u - eta_ + 1, alpha_));
  return rank < num_items_ ? rank : num_items_ - 1;
}

uint64_t ZipfGenerator::NextScrambled(Rng& rng) const {
  // The constant offset keeps rank 0 from mapping to item 0 (Mix64(0) == 0).
  return Mix64(Next(rng) + 0x9e3779b97f4a7c15ULL) % num_items_;
}

double ZipfGenerator::HeadProbability() const { return 1.0 / zetan_; }

}  // namespace kvd
