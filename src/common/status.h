// Lightweight error propagation types used across the library.
//
// KV-Direct operations fail for well-defined, recoverable reasons (key absent,
// store full, value too large); exceptions are reserved for programming errors.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "src/common/assert.h"

namespace kvd {

// Error categories for key-value and substrate operations.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound,         // key does not exist
  kAlreadyExists,    // insert-only op on existing key
  kOutOfMemory,      // slab allocator or hash index exhausted
  kInvalidArgument,  // malformed key/value/parameters
  kResourceBusy,     // pipeline / reservation station full
  kTimedOut,         // reliable channel exhausted its retransmissions
  kUnimplemented,
  kInternal,
};

// Returns a stable human-readable name, e.g. "NOT_FOUND".
const char* StatusCodeName(StatusCode code);

// Value-semantic status: a code plus an optional message.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfMemory(std::string msg = "") {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a T or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    KVD_CHECK_MSG(!std::get<Status>(data_).ok(), "Result built from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    KVD_CHECK_MSG(ok(), "value() on error Result");
    return std::get<T>(data_);
  }
  T& value() & {
    KVD_CHECK_MSG(ok(), "value() on error Result");
    return std::get<T>(data_);
  }
  T&& value() && {
    KVD_CHECK_MSG(ok(), "value() on error Result");
    return std::move(std::get<T>(data_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace kvd

#endif  // SRC_COMMON_STATUS_H_
