#include "src/common/hashing.h"

#include <cstring>

namespace kvd {
namespace {

constexpr uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
constexpr uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kPrime3 = 0x165667b19e3779f9ULL;

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

uint64_t HashBytes(std::span<const uint8_t> data, uint64_t seed) {
  const uint8_t* p = data.data();
  size_t remaining = data.size();
  uint64_t h = seed + kPrime3 + data.size() * kPrime2;
  while (remaining >= 8) {
    h ^= Mix64(LoadU64(p));
    h *= kPrime1;
    h += kPrime2;
    p += 8;
    remaining -= 8;
  }
  if (remaining > 0) {
    uint64_t tail = 0;
    std::memcpy(&tail, p, remaining);
    h ^= Mix64(tail + remaining);
    h *= kPrime1;
  }
  return Mix64(h);
}

uint64_t HashBytes(const void* data, size_t size, uint64_t seed) {
  return HashBytes(std::span<const uint8_t>(static_cast<const uint8_t*>(data), size), seed);
}

}  // namespace kvd
