#include "src/common/hashing.h"

#include <cstring>

namespace kvd {
namespace {

constexpr uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
constexpr uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kPrime3 = 0x165667b19e3779f9ULL;

// Little-endian lane load, assembled explicitly so the digest is a pure
// function of the input BYTES on every host. A memcpy into a uint64_t reads
// the lane in host order, which would give big-endian machines different
// digests — and, through KeyRouter, different partition owners — for the
// same key. Routing must agree across processes and architectures.
uint64_t LoadU64Le(const uint8_t* p) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; i++) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t LoadTailLe(const uint8_t* p, size_t n) {
  uint64_t v = 0;
  for (size_t i = 0; i < n; i++) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

uint64_t HashBytes(std::span<const uint8_t> data, uint64_t seed) {
  const uint8_t* p = data.data();
  size_t remaining = data.size();
  uint64_t h = seed + kPrime3 + data.size() * kPrime2;
  while (remaining >= 8) {
    h ^= Mix64(LoadU64Le(p));
    h *= kPrime1;
    h += kPrime2;
    p += 8;
    remaining -= 8;
  }
  if (remaining > 0) {
    h ^= Mix64(LoadTailLe(p, remaining) + remaining);
    h *= kPrime1;
  }
  return Mix64(h);
}

uint64_t HashBytes(const void* data, size_t size, uint64_t seed) {
  return HashBytes(std::span<const uint8_t>(static_cast<const uint8_t*>(data), size), seed);
}

}  // namespace kvd
