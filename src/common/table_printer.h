// Fixed-width table output for the benchmark harness: every bench binary
// prints the rows/series of the paper figure it regenerates.
#ifndef SRC_COMMON_TABLE_PRINTER_H_
#define SRC_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace kvd {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string Num(double v, int precision = 2);
  static std::string Int(uint64_t v);

  // Prints to stdout with aligned columns.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kvd

#endif  // SRC_COMMON_TABLE_PRINTER_H_
