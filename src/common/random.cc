#include "src/common/random.h"

#include "src/common/assert.h"

namespace kvd {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  KVD_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  KVD_DCHECK(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

bool Rng::NextBool(double probability_true) { return NextDouble() < probability_true; }

}  // namespace kvd
