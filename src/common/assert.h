// Runtime assertion macros.
//
// KVD_CHECK is always on (release builds included) and is used to guard
// invariants whose violation would corrupt the store or the simulation.
// KVD_DCHECK compiles away in NDEBUG builds and is used on hot paths.
#ifndef SRC_COMMON_ASSERT_H_
#define SRC_COMMON_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace kvd {

[[noreturn]] inline void AssertFail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "KVD_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace kvd

#define KVD_CHECK(cond)                                    \
  do {                                                     \
    if (!(cond)) {                                         \
      ::kvd::AssertFail(#cond, __FILE__, __LINE__, "");    \
    }                                                      \
  } while (0)

#define KVD_CHECK_MSG(cond, msg)                           \
  do {                                                     \
    if (!(cond)) {                                         \
      ::kvd::AssertFail(#cond, __FILE__, __LINE__, (msg)); \
    }                                                      \
  } while (0)

#ifdef NDEBUG
#define KVD_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define KVD_DCHECK(cond) KVD_CHECK(cond)
#endif

#endif  // SRC_COMMON_ASSERT_H_
