// Size and time unit constants shared by the hardware models.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>

namespace kvd {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// Decimal units used for link bandwidths (GB/s means 1e9 bytes per second).
inline constexpr uint64_t kKB = 1000;
inline constexpr uint64_t kMB = 1000 * kKB;
inline constexpr uint64_t kGB = 1000 * kMB;

// Simulation time is carried in integer picoseconds so that a 180 MHz clock
// period (5555.5 ns/1000) and sub-nanosecond link serialization times stay
// exact without floating point drift in the event queue.
using SimTime = uint64_t;

inline constexpr SimTime kPicosecond = 1;
inline constexpr SimTime kNanosecond = 1000;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

// Converts a bandwidth in bytes/second to picoseconds per byte.
constexpr double PicosPerByte(double bytes_per_second) {
  return 1e12 / bytes_per_second;
}

inline constexpr uint64_t kCacheLineBytes = 64;

}  // namespace kvd

#endif  // SRC_COMMON_UNITS_H_
