#include "src/common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "src/common/assert.h"

namespace kvd {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_++;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

void RunningStat::Reset() { *this = RunningStat(); }

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

int LatencyHistogram::BucketFor(uint64_t value) {
  if (value < (1u << kSubBucketBits)) {
    return static_cast<int>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBucketBits;
  const auto sub = static_cast<int>((value >> shift) & ((1u << kSubBucketBits) - 1));
  return ((msb - kSubBucketBits + 1) << kSubBucketBits) + sub;
}

uint64_t LatencyHistogram::BucketUpperBound(int bucket) {
  if (bucket < (1 << kSubBucketBits)) {
    return static_cast<uint64_t>(bucket);
  }
  const int exponent = (bucket >> kSubBucketBits) - 1;
  const int sub = bucket & ((1 << kSubBucketBits) - 1);
  const uint64_t base = uint64_t{1} << (exponent + kSubBucketBits);
  const uint64_t step = uint64_t{1} << exponent;
  return base + static_cast<uint64_t>(sub + 1) * step - 1;
}

void LatencyHistogram::Add(uint64_t value) {
  const int bucket = BucketFor(value);
  KVD_DCHECK(bucket >= 0 && bucket < kNumBuckets);
  buckets_[static_cast<size_t>(bucket)]++;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_++;
  sum_ += value;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double LatencyHistogram::mean() const {
  return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0;
}

uint64_t LatencyHistogram::Percentile(double quantile) const {
  if (count_ == 0) {
    return 0;
  }
  // The scan below finds the bucket holding the target *rank*, which is only
  // defined for ranks 1..count; the extreme quantiles are the exact extremes.
  if (quantile <= 0.0) {
    return min_;
  }
  if (quantile >= 1.0) {
    return max_;
  }
  const auto target = static_cast<uint64_t>(
      std::ceil(quantile * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::vector<std::pair<uint64_t, double>> LatencyHistogram::Cdf() const {
  std::vector<std::pair<uint64_t, double>> out;
  if (count_ == 0) {
    return out;
  }
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    const uint64_t n = buckets_[static_cast<size_t>(i)];
    if (n == 0) {
      continue;
    }
    seen += n;
    out.emplace_back(BucketUpperBound(i),
                     static_cast<double>(seen) / static_cast<double>(count_));
  }
  return out;
}

std::string LatencyHistogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f min=%llu p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.95)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace kvd
