// Statistics accumulators used by the hardware models and the benchmark
// harness: running mean/min/max, and an HDR-style histogram for latency
// percentiles (the paper reports 5th/95th/99th percentiles and tail latency).
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kvd {

// Running scalar statistics (Welford's algorithm for variance).
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double max() const { return count_ > 0 ? max_ : 0; }
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Log-linear histogram: values bucketed with ~1.5% relative error, constant
// memory, O(1) insert. Suitable for latency distributions spanning ns..ms.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Add(uint64_t value);
  void Merge(const LatencyHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const;
  uint64_t min() const { return count_ > 0 ? min_ : 0; }
  uint64_t max() const { return count_ > 0 ? max_ : 0; }

  // quantile in [0, 1]; returns an upper bound of the bucket containing it.
  uint64_t Percentile(double quantile) const;

  // Cumulative distribution sampled at each non-empty bucket: (value, cdf).
  std::vector<std::pair<uint64_t, double>> Cdf() const;

  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per power of two
  static constexpr int kNumBuckets = 64 << kSubBucketBits;

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace kvd

#endif  // SRC_COMMON_STATS_H_
