// Deterministic pseudo-random number generation.
//
// xoshiro256** — fast, high-quality, and reproducible across platforms, which
// matters because every benchmark seeds its workload explicitly.
#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <cstdint>

namespace kvd {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  // Re-seeds via splitmix64 so that nearby seeds give unrelated streams.
  void Seed(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  bool NextBool(double probability_true);

 private:
  uint64_t state_[4];
};

}  // namespace kvd

#endif  // SRC_COMMON_RANDOM_H_
