// Hash functions used by the hash index, the reservation station, and the
// DRAM load dispatcher.
//
// All hashing in the store derives from one 64-bit key hash so the different
// consumers (bucket index, 9-bit secondary hash, reservation-station slot,
// cacheability decision) use independent bit ranges of the same digest.
#ifndef SRC_COMMON_HASHING_H_
#define SRC_COMMON_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace kvd {

// Strong 64-bit mix (splitmix64 finalizer). Invertible, so distinct inputs
// stay distinct — used for key scrambling as well as hashing fixed ints.
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// 64-bit hash of arbitrary bytes (xxHash-style avalanche over 8-byte lanes).
uint64_t HashBytes(std::span<const uint8_t> data, uint64_t seed = 0);

// Convenience overload for string-ish keys.
uint64_t HashBytes(const void* data, size_t size, uint64_t seed = 0);

// The KV processor splits the key digest into fields (paper §3.3.1, §3.3.3):
//   bucket index   — low bits, modulo the bucket count
//   secondary hash — 9 bits compared in parallel during inline slot checking
//   station slot   — 10 bits indexing the 1024-entry reservation station
struct KeyHash {
  uint64_t digest;

  uint64_t BucketIndex(uint64_t num_buckets) const { return digest % num_buckets; }
  uint16_t SecondaryHash() const {
    return static_cast<uint16_t>((digest >> 48) & 0x1ff);  // 9 bits
  }
  uint16_t StationSlot() const {
    return static_cast<uint16_t>((digest >> 32) & 0x3ff);  // 10 bits
  }
};

inline KeyHash HashKey(std::span<const uint8_t> key) {
  return KeyHash{HashBytes(key)};
}

// Address hash deciding DRAM cacheability (paper §3.3.4): the dispatcher
// caches 64-byte lines whose address hash falls below the dispatch ratio.
// A multiplicative hash of the line number gives every line (hash bucket or
// slab alike) an equal chance of being cacheable.
constexpr uint64_t AddressLineHash(uint64_t address) {
  return Mix64(address / 64);
}

}  // namespace kvd

#endif  // SRC_COMMON_HASHING_H_
