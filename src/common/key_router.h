// Stable hash partitioning of the key space across N owners.
//
// Both deployment layers route by key hash: MultiNicClient picks the NIC that
// owns a key's partition (paper §1, Table 3 — sharding across 10 NICs), and
// the cluster control plane (src/cluster) assigns partitions to replication
// groups through its ShardMap. They must agree byte-for-byte, so the logic
// lives here instead of being re-derived privately in each client.
//
// Hash contract (pinned by cluster_test.RoutingStability):
//   - PartitionOf(key) == HashBytes(key, 0x9c1c) % num_partitions. The seed
//     is a compile-time constant, distinct from the in-server bucket hash, so
//     the partition choice is independent of bucket placement inside the
//     owning server and identical in every process.
//   - HashBytes consumes key BYTES in little-endian lane order (no
//     host-endianness dependence), so two machines routing the same key bytes
//     always pick the same partition.
//   - Modulo refinement: h % 2N is either h % N or h % N + N, so doubling
//     num_partitions splits partition p into exactly {p, p + N}. The cluster
//     Rebalancer relies on this to split hot partitions without moving data:
//     both halves inherit p's owner, and only later migrations separate them.
#ifndef SRC_COMMON_KEY_ROUTER_H_
#define SRC_COMMON_KEY_ROUTER_H_

#include <cstdint>
#include <span>

namespace kvd {

class KeyRouter {
 public:
  explicit KeyRouter(uint32_t num_partitions);

  // The partition owning `key`; stable across calls and processes.
  uint32_t PartitionOf(std::span<const uint8_t> key) const;

  uint32_t num_partitions() const { return num_partitions_; }

 private:
  uint32_t num_partitions_;
};

}  // namespace kvd

#endif  // SRC_COMMON_KEY_ROUTER_H_
