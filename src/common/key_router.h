// Stable hash partitioning of the key space across N owners.
//
// Both deployment layers route by key hash: MultiNicClient picks the NIC that
// owns a key's partition (paper §1, Table 3 — sharding across 10 NICs), and
// ReplicatedClient picks the shard whose replication group serves the key.
// They must agree byte-for-byte, so the logic lives here instead of being
// re-derived privately in each client.
//
// The seed is distinct from the in-server bucket hash, keeping the partition
// choice independent of bucket placement inside the owning server.
#ifndef SRC_COMMON_KEY_ROUTER_H_
#define SRC_COMMON_KEY_ROUTER_H_

#include <cstdint>
#include <span>

namespace kvd {

class KeyRouter {
 public:
  explicit KeyRouter(uint32_t num_partitions);

  // The partition owning `key`; stable across calls and processes.
  uint32_t PartitionOf(std::span<const uint8_t> key) const;

  uint32_t num_partitions() const { return num_partitions_; }

 private:
  uint32_t num_partitions_;
};

}  // namespace kvd

#endif  // SRC_COMMON_KEY_ROUTER_H_
