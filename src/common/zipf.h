// Zipf-distributed key sampling for the paper's "long-tail" workload
// (YCSB skewed, exponent 0.99).
//
// Uses Gray et al.'s method from "Quickly Generating Billion-Record Synthetic
// Databases" (the same generator YCSB uses): O(1) per sample after O(1) setup,
// with an optional scramble so popular items are spread over the key space.
#ifndef SRC_COMMON_ZIPF_H_
#define SRC_COMMON_ZIPF_H_

#include <cstdint>

#include "src/common/random.h"

namespace kvd {

class ZipfGenerator {
 public:
  // Items are ranked 0..num_items-1 with rank 0 the most popular.
  ZipfGenerator(uint64_t num_items, double theta);

  // Returns a rank in [0, num_items).
  uint64_t Next(Rng& rng) const;

  // Returns a scrambled item id in [0, num_items): rank popularity preserved,
  // but hot items are scattered across the id space (YCSB "scrambled zipfian").
  uint64_t NextScrambled(Rng& rng) const;

  uint64_t num_items() const { return num_items_; }
  double theta() const { return theta_; }

  // Probability mass of the single most popular item; used by analytic models.
  double HeadProbability() const;

 private:
  uint64_t num_items_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace kvd

#endif  // SRC_COMMON_ZIPF_H_
