#include "src/common/table_printer.h"

#include <algorithm>

#include "src/common/assert.h"

namespace kvd {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  KVD_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Int(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); i++) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); i++) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); i++) {
      std::printf("%-*s%s", static_cast<int>(widths[i]), row[i].c_str(),
                  i + 1 < row.size() ? "  " : "\n");
    }
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  for (size_t i = 0; i + 2 < total; i++) {
    std::printf("-");
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace kvd
