#include "src/common/key_router.h"

#include "src/common/assert.h"
#include "src/common/hashing.h"

namespace kvd {

namespace {
// Kept identical to the seed MultiNicServer::OwnerOf so existing multi-NIC
// placements (and their tests) are unchanged by the extraction.
constexpr uint64_t kPartitionSeed = 0x9c1c;
}  // namespace

KeyRouter::KeyRouter(uint32_t num_partitions) : num_partitions_(num_partitions) {
  KVD_CHECK(num_partitions >= 1);
}

uint32_t KeyRouter::PartitionOf(std::span<const uint8_t> key) const {
  return static_cast<uint32_t>(HashBytes(key.data(), key.size(), kPartitionSeed) %
                               num_partitions_);
}

}  // namespace kvd
