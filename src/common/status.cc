#include "src/common/status.h"

namespace kvd {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfMemory:
      return "OUT_OF_MEMORY";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kResourceBusy:
      return "RESOURCE_BUSY";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace kvd
