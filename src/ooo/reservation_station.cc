#include "src/ooo/reservation_station.h"

namespace kvd {

ReservationStation::ReservationStation(const OooConfig& config)
    : config_(config), slots_(config.station_slots) {
  KVD_CHECK(config.station_slots > 0);
  KVD_CHECK(config.max_inflight > 0);
}

void ReservationStation::NoteInflight(int delta) {
  if (delta > 0) {
    inflight_ += static_cast<uint32_t>(delta);
    if (inflight_ > stats_.peak_inflight) {
      stats_.peak_inflight = inflight_;
    }
  } else {
    KVD_CHECK(inflight_ >= static_cast<uint32_t>(-delta));
    inflight_ -= static_cast<uint32_t>(-delta);
  }
}

ReservationStation::Action ReservationStation::Admit(uint64_t op_id, uint16_t slot_idx,
                                                     uint64_t key_digest,
                                                     bool is_write) {
  KVD_DCHECK(slot_idx < slots_.size());
  Slot& slot = slots_[slot_idx];

  if (slot.state == SlotState::kIdle) {
    if (inflight_ >= config_.max_inflight) {
      stats_.rejected_full++;
      return Action::kRejectFull;
    }
    slot.state = !config_.enable_out_of_order && !is_write
                     ? SlotState::kPipelineShared
                     : SlotState::kPipeline;
    slot.shared_readers = slot.state == SlotState::kPipelineShared ? 1 : 0;
    slot.digest = key_digest;
    slot.dirty = false;
    slot.writeback_inflight = false;
    NoteInflight(1);
    stats_.issued_to_pipeline++;
    return Action::kIssueToPipeline;
  }

  // Stall mode: additional reads join an all-reader slot in parallel — the
  // strawman pipeline only stalls when a PUT is involved (paper §5.1.3).
  if (!config_.enable_out_of_order && slot.state == SlotState::kPipelineShared &&
      !is_write && slot.parked.empty()) {
    if (inflight_ >= config_.max_inflight) {
      stats_.rejected_full++;
      return Action::kRejectFull;
    }
    slot.shared_readers++;
    NoteInflight(1);
    stats_.issued_to_pipeline++;
    return Action::kIssueToPipeline;
  }

  // Data forwarding: the value for this exact key is cached in the station,
  // so the operation retires in one clock cycle without touching memory.
  // Parked entries for *different* keys are false-positive dependencies and
  // carry no ordering constraint against this key; only a parked same-key
  // operation forces this one to queue behind it.
  if (config_.enable_out_of_order && slot.state == SlotState::kCached &&
      slot.digest == key_digest) {
    bool same_key_parked = false;
    for (const Parked& parked : slot.parked) {
      if (parked.key_digest == key_digest) {
        same_key_parked = true;
        break;
      }
    }
    if (!same_key_parked) {
      if (is_write) {
        slot.dirty = true;
      }
      stats_.fast_path_ops++;
      return Action::kFastPath;
    }
  }

  // Conflict eviction: a *different* key claims a quiescent, clean cached
  // slot — the BRAM entry is evicted and the newcomer issues directly. (The
  // hardware keeps cached values until exactly this kind of conflict.)
  if (slot.state == SlotState::kCached && slot.digest != key_digest &&
      slot.parked.empty() && !slot.dirty && !slot.writeback_inflight) {
    if (inflight_ >= config_.max_inflight) {
      stats_.rejected_full++;
      return Action::kRejectFull;
    }
    slot.state = !config_.enable_out_of_order && !is_write
                     ? SlotState::kPipelineShared
                     : SlotState::kPipeline;
    slot.shared_readers = slot.state == SlotState::kPipelineShared ? 1 : 0;
    slot.digest = key_digest;
    NoteInflight(1);
    stats_.issued_to_pipeline++;
    return Action::kIssueToPipeline;
  }

  // Hazard (same key in flight, or a same-slot false positive): park.
  if (inflight_ >= config_.max_inflight) {
    stats_.rejected_full++;
    return Action::kRejectFull;
  }
  slot.parked.push_back(Parked{op_id, key_digest, is_write});
  NoteInflight(1);
  stats_.parked++;
  return Action::kPark;
}

std::vector<uint64_t> ReservationStation::CompletePipeline(uint16_t slot_idx) {
  Slot& slot = slots_[slot_idx];
  if (slot.state == SlotState::kPipelineShared) {
    KVD_CHECK(slot.shared_readers > 0);
    slot.shared_readers--;
    NoteInflight(-1);
    if (slot.shared_readers > 0) {
      return {};  // other reads still in flight; slot stays shared
    }
    slot.state = SlotState::kCached;
    return {};
  }
  KVD_CHECK(slot.state == SlotState::kPipeline);
  slot.state = SlotState::kCached;
  NoteInflight(-1);

  std::vector<uint64_t> fast_path;
  if (!config_.enable_out_of_order) {
    // Strawman: no forwarding; parked operations re-issue one at a time via
    // TryIssueNext, paying full latency each.
    return fast_path;
  }
  // Scan the whole chain and forward every matching-key operation from the
  // cached value ("operations with matching key are executed immediately and
  // removed", §3.3.3). Different-key entries are false positives with no
  // ordering constraint against this key; they keep their relative order.
  for (auto it = slot.parked.begin(); it != slot.parked.end();) {
    if (it->key_digest == slot.digest) {
      if (it->is_write) {
        slot.dirty = true;
      }
      fast_path.push_back(it->op_id);
      NoteInflight(-1);
      stats_.fast_path_ops++;
      it = slot.parked.erase(it);
    } else {
      ++it;
    }
  }
  return fast_path;
}

bool ReservationStation::NeedsWriteback(uint16_t slot_idx) const {
  const Slot& slot = slots_[slot_idx];
  return slot.state == SlotState::kCached && slot.dirty && !slot.writeback_inflight;
}

void ReservationStation::BeginWriteback(uint16_t slot_idx) {
  Slot& slot = slots_[slot_idx];
  KVD_CHECK(NeedsWriteback(slot_idx));
  slot.dirty = false;
  slot.writeback_inflight = true;
  stats_.writebacks++;
}

void ReservationStation::CompleteWriteback(uint16_t slot_idx) {
  Slot& slot = slots_[slot_idx];
  KVD_CHECK(slot.writeback_inflight);
  slot.writeback_inflight = false;
}

std::optional<uint64_t> ReservationStation::TryIssueNext(uint16_t slot_idx) {
  Slot& slot = slots_[slot_idx];
  if (slot.state != SlotState::kCached || slot.dirty || slot.writeback_inflight) {
    return std::nullopt;
  }
  if (slot.parked.empty()) {
    // Quiescent and clean: the cached value stays resident for future
    // same-key fast paths; a different key evicts it at Admit time.
    return std::nullopt;
  }
  const Parked next = slot.parked.front();
  slot.parked.pop_front();
  // The parked operation now owns the slot's pipeline presence; the inflight
  // count is unchanged (parked -> pipeline).
  slot.state = !config_.enable_out_of_order && !next.is_write
                   ? SlotState::kPipelineShared
                   : SlotState::kPipeline;
  slot.shared_readers = slot.state == SlotState::kPipelineShared ? 1 : 0;
  slot.digest = next.key_digest;
  slot.dirty = false;
  stats_.issued_to_pipeline++;
  return next.op_id;
}

bool ReservationStation::SlotIdle(uint16_t slot_idx) const {
  return slots_[slot_idx].state == SlotState::kIdle;
}

size_t ReservationStation::ParkedCount(uint16_t slot_idx) const {
  return slots_[slot_idx].parked.size();
}

void ReservationStation::RegisterMetrics(MetricRegistry& registry) const {
  registry.RegisterCounter("kvd_station_issued_total",
                           "Operations issued to the main pipeline", {},
                           &stats_.issued_to_pipeline);
  registry.RegisterCounter("kvd_station_parked_total",
                           "Operations parked behind a slot hazard", {},
                           &stats_.parked);
  registry.RegisterCounter("kvd_station_fast_path_total",
                           "Operations retired via data forwarding", {},
                           &stats_.fast_path_ops);
  registry.RegisterCounter("kvd_station_rejected_full_total",
                           "Admissions rejected at capacity", {},
                           &stats_.rejected_full);
  registry.RegisterCounter("kvd_station_writebacks_total",
                           "Dirty cached values written back", {},
                           &stats_.writebacks);
  registry.RegisterGauge("kvd_station_inflight", "Operations currently in flight",
                         {}, [this] { return static_cast<double>(inflight_); });
  registry.RegisterGauge("kvd_station_peak_inflight", "Peak in-flight operations",
                         {},
                         [this] { return static_cast<double>(stats_.peak_inflight); });
}

}  // namespace kvd
