// Out-of-order execution engine (paper §3.3.3, Figure 13).
//
// KV operations on the same key are dependent: a GET after a PUT must return
// the new value, and single-key atomics form one long dependency chain. A
// naive pipeline stalls on every such hazard for a full PCIe round trip
// (~1 µs -> ~1 Mops single-key atomics). KV-Direct instead borrows dynamic
// scheduling from computer architecture:
//
//   - A reservation station of `station_slots` (1024) entries indexed by a
//     10-bit key hash tracks all in-flight operations (up to 256).
//   - Operations whose slot holds an in-flight operation are parked in the
//     slot's chain. Same-hash-different-key collisions are treated as
//     dependent (false positives are safe, missed dependencies are not);
//     chains are examined sequentially with full key digests.
//   - When the main pipeline completes, parked operations with a matching key
//     execute immediately against the cached value — the data-forwarding
//     "fast path", one operation per clock cycle — and the updated value is
//     eventually written back by a PUT issued to the main pipeline.
//
// This class is the bookkeeping core: it decides, per operation, whether the
// processor should issue to the main pipeline, park, fast-path, or reject.
// The KvProcessor owns all timing (clock cycles, memory traces).
//
// Slot lifecycle:   Idle -> Pipeline(digest) -> Cached(digest, dirty?)
//                    ^          |                     |
//                    +---- TryIssueNext <--- writeback drained
#ifndef SRC_OOO_RESERVATION_STATION_H_
#define SRC_OOO_RESERVATION_STATION_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/common/assert.h"
#include "src/obs/metric_registry.h"

namespace kvd {

struct OooConfig {
  uint32_t station_slots = 1024;  // 10-bit key hash
  uint32_t max_inflight = 256;    // pipeline + parked operations
  // Ablation switch (Figure 13): false = stall-on-conflict strawman. Parked
  // operations then re-issue to the main pipeline one by one, paying the full
  // memory latency each, and no data forwarding happens.
  bool enable_out_of_order = true;
};

struct OooStats {
  uint64_t issued_to_pipeline = 0;
  uint64_t parked = 0;          // conflicted, queued behind the slot
  uint64_t fast_path_ops = 0;   // executed via data forwarding
  uint64_t rejected_full = 0;
  uint64_t writebacks = 0;
  uint32_t peak_inflight = 0;
};

class ReservationStation {
 public:
  enum class Action : uint8_t {
    kIssueToPipeline,  // no hazard: go to the main pipeline now
    kPark,             // hazard: wait in the slot's chain
    kFastPath,         // value cached in the station: retire in one cycle
    kRejectFull,       // station capacity (256) exhausted
  };

  explicit ReservationStation(const OooConfig& config);

  // Registers an operation on `slot` for a key with `key_digest`.
  // `is_write` marks operations that mutate the value (PUT / atomic).
  Action Admit(uint64_t op_id, uint16_t slot, uint64_t key_digest, bool is_write);

  // The main-pipeline operation for `slot` finished. Transitions the slot to
  // Cached and returns the parked same-key operations to retire via the fast
  // path, in arrival order. (Empty when out-of-order execution is disabled.)
  std::vector<uint64_t> CompletePipeline(uint16_t slot);

  // True if the slot's cached value is dirty and no write-back is in flight.
  bool NeedsWriteback(uint16_t slot) const;
  // Marks the write-back PUT as issued (clears dirty).
  void BeginWriteback(uint16_t slot);
  // The write-back PUT completed.
  void CompleteWriteback(uint16_t slot);

  // After the slot is quiescent (no write-back needed or in flight), pops the
  // next parked operation — a different key that was a false-positive
  // dependency — and re-arms the slot as Pipeline for it. Returns nullopt and
  // idles the slot when nothing is parked.
  std::optional<uint64_t> TryIssueNext(uint16_t slot);

  uint32_t inflight() const { return inflight_; }
  const OooStats& stats() const { return stats_; }
  const OooConfig& config() const { return config_; }

  // Counters backed by stats_; occupancy gauges. Timing-level station events
  // (admit/forward/retire) are emitted by the KvProcessor, which owns time.
  void RegisterMetrics(MetricRegistry& registry) const;

  // Test/introspection helpers.
  bool SlotIdle(uint16_t slot) const;
  size_t ParkedCount(uint16_t slot) const;

 private:
  // kPipelineShared: stall-mode only — concurrent same-slot *reads* proceed
  // in parallel (the paper's strawman stalls only when a PUT is involved).
  enum class SlotState : uint8_t { kIdle, kPipeline, kPipelineShared, kCached };

  struct Parked {
    uint64_t op_id;
    uint64_t key_digest;
    bool is_write;
  };

  struct Slot {
    SlotState state = SlotState::kIdle;
    uint64_t digest = 0;
    bool dirty = false;
    bool writeback_inflight = false;
    uint32_t shared_readers = 0;  // stall mode: reads in flight concurrently
    std::deque<Parked> parked;
  };

  void NoteInflight(int delta);

  OooConfig config_;
  std::vector<Slot> slots_;
  uint32_t inflight_ = 0;
  OooStats stats_;
};

}  // namespace kvd

#endif  // SRC_OOO_RESERVATION_STATION_H_
