#include "src/alloc/allocation_bitmap.h"

namespace kvd {

AllocationBitmap::AllocationBitmap(uint64_t region_size, uint32_t granule_bytes)
    : granule_bytes_(granule_bytes), num_granules_(region_size / granule_bytes) {
  KVD_CHECK(granule_bytes > 0);
  bits_.assign((num_granules_ + 63) / 64, 0);
}

void AllocationBitmap::MarkAllocated(uint64_t offset, uint32_t bytes) {
  const uint64_t first = GranuleIndex(offset);
  const uint64_t count = bytes / granule_bytes_;
  for (uint64_t g = first; g < first + count; g++) {
    KVD_DCHECK(g < num_granules_);
    const uint64_t mask = uint64_t{1} << (g % 64);
    KVD_CHECK_MSG((bits_[g / 64] & mask) == 0, "double allocation");
    bits_[g / 64] |= mask;
  }
  allocated_granules_ += count;
}

void AllocationBitmap::MarkFree(uint64_t offset, uint32_t bytes) {
  const uint64_t first = GranuleIndex(offset);
  const uint64_t count = bytes / granule_bytes_;
  for (uint64_t g = first; g < first + count; g++) {
    KVD_DCHECK(g < num_granules_);
    const uint64_t mask = uint64_t{1} << (g % 64);
    KVD_CHECK_MSG((bits_[g / 64] & mask) != 0, "double free");
    bits_[g / 64] &= ~mask;
  }
  allocated_granules_ -= count;
}

bool AllocationBitmap::IsAllocated(uint64_t offset, uint32_t bytes) const {
  const uint64_t first = GranuleIndex(offset);
  const uint64_t count = bytes / granule_bytes_;
  for (uint64_t g = first; g < first + count; g++) {
    if ((bits_[g / 64] & (uint64_t{1} << (g % 64))) == 0) {
      return false;
    }
  }
  return true;
}

bool AllocationBitmap::IsFree(uint64_t offset, uint32_t bytes) const {
  const uint64_t first = GranuleIndex(offset);
  const uint64_t count = bytes / granule_bytes_;
  for (uint64_t g = first; g < first + count; g++) {
    if ((bits_[g / 64] & (uint64_t{1} << (g % 64))) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace kvd
