// Free-slab merging strategies (paper §3.3.2 "lazy slab merging", §5.1.2,
// Figure 12).
//
// Merging rebuilds larger slabs from freed smaller ones: two free slabs of
// size s whose addresses are buddies (a aligned to 2s, and a+s) coalesce into
// one slab of size 2s. The paper compares two ways to find buddy pairs among
// billions of freed slots:
//   - bitmap: populate an allocation-style bitmap at random offsets, then
//     scan — random memory writes dominate and it does not scale with cores
//   - radix sort: sort the free addresses (multi-core LSD radix sort), then
//     a linear scan finds buddies — 30 s -> 1.8 s on 32 cores in the paper
#ifndef SRC_ALLOC_MERGER_H_
#define SRC_ALLOC_MERGER_H_

#include <cstdint>
#include <span>
#include <vector>

namespace kvd {

struct MergeResult {
  std::vector<uint64_t> merged;    // offsets of coalesced slabs (size 2s)
  std::vector<uint64_t> unmerged;  // offsets whose buddy was not free (size s)
};

class Merger {
 public:
  virtual ~Merger() = default;

  // Coalesces buddy pairs among `free_offsets` (region-relative offsets of
  // free slabs of `slab_bytes` each). Offsets must be distinct multiples of
  // `slab_bytes`.
  virtual MergeResult Merge(std::span<const uint64_t> free_offsets,
                            uint32_t slab_bytes) = 0;

  virtual const char* name() const = 0;
};

// Sets one bit per free slab in a region-sized bitmap (random writes), then
// scans pairs of adjacent bits.
class BitmapMerger final : public Merger {
 public:
  explicit BitmapMerger(uint64_t region_size) : region_size_(region_size) {}

  MergeResult Merge(std::span<const uint64_t> free_offsets,
                    uint32_t slab_bytes) override;
  const char* name() const override { return "bitmap"; }

 private:
  uint64_t region_size_;
};

// Multi-core LSD radix sort over the free addresses followed by a linear
// buddy scan.
class RadixSortMerger final : public Merger {
 public:
  explicit RadixSortMerger(unsigned num_threads = 1) : num_threads_(num_threads) {}

  MergeResult Merge(std::span<const uint64_t> free_offsets,
                    uint32_t slab_bytes) override;
  const char* name() const override { return "radix_sort"; }

  // Exposed for benchmarking the sort phase alone.
  static void ParallelRadixSort(std::vector<uint64_t>& values, unsigned num_threads);

 private:
  unsigned num_threads_;
};

}  // namespace kvd

#endif  // SRC_ALLOC_MERGER_H_
