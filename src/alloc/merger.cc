#include "src/alloc/merger.h"

#include <algorithm>
#include <thread>

#include "src/common/assert.h"

namespace kvd {
namespace {

// Buddy scan over sorted offsets: merge (a, a+s) when a is 2s-aligned.
MergeResult ScanSortedForBuddies(const std::vector<uint64_t>& sorted,
                                 uint32_t slab_bytes) {
  MergeResult result;
  const uint64_t pair_bytes = uint64_t{slab_bytes} * 2;
  size_t i = 0;
  while (i < sorted.size()) {
    if (i + 1 < sorted.size() && sorted[i] % pair_bytes == 0 &&
        sorted[i + 1] == sorted[i] + slab_bytes) {
      result.merged.push_back(sorted[i]);
      i += 2;
    } else {
      result.unmerged.push_back(sorted[i]);
      i += 1;
    }
  }
  return result;
}

}  // namespace

MergeResult BitmapMerger::Merge(std::span<const uint64_t> free_offsets,
                                uint32_t slab_bytes) {
  KVD_CHECK(slab_bytes > 0);
  const uint64_t num_slots = region_size_ / slab_bytes;
  std::vector<uint64_t> bits((num_slots + 63) / 64, 0);
  // Random-offset writes into the full-region bitmap: this pass is what makes
  // the bitmap approach slow at scale (Figure 12).
  for (uint64_t offset : free_offsets) {
    const uint64_t slot = offset / slab_bytes;
    KVD_DCHECK(slot < num_slots);
    bits[slot / 64] |= uint64_t{1} << (slot % 64);
  }
  MergeResult result;
  for (uint64_t slot = 0; slot + 1 < num_slots; slot += 2) {
    const bool lo = (bits[slot / 64] >> (slot % 64)) & 1;
    const bool hi = (bits[(slot + 1) / 64] >> ((slot + 1) % 64)) & 1;
    if (lo && hi) {
      result.merged.push_back(slot * slab_bytes);
    } else if (lo) {
      result.unmerged.push_back(slot * slab_bytes);
    } else if (hi) {
      result.unmerged.push_back((slot + 1) * slab_bytes);
    }
  }
  // Odd trailing slot.
  if (num_slots % 2 == 1) {
    const uint64_t slot = num_slots - 1;
    if ((bits[slot / 64] >> (slot % 64)) & 1) {
      result.unmerged.push_back(slot * slab_bytes);
    }
  }
  return result;
}

void RadixSortMerger::ParallelRadixSort(std::vector<uint64_t>& values,
                                        unsigned num_threads) {
  if (values.size() < 2) {
    return;
  }
  num_threads = std::max(1u, num_threads);
  constexpr int kDigitBits = 8;
  constexpr int kNumBuckets = 1 << kDigitBits;

  // Only sort the digits that vary: find the highest set bit across values.
  uint64_t max_value = 0;
  for (uint64_t v : values) {
    max_value |= v;
  }
  int passes = 0;
  while (max_value != 0) {
    passes++;
    max_value >>= kDigitBits;
  }
  passes = std::max(passes, 1);

  std::vector<uint64_t> scratch(values.size());
  uint64_t* src = values.data();
  uint64_t* dst = scratch.data();
  const size_t n = values.size();

  for (int pass = 0; pass < passes; pass++) {
    const int shift = pass * kDigitBits;
    // Per-thread histograms.
    std::vector<std::vector<uint64_t>> histograms(
        num_threads, std::vector<uint64_t>(kNumBuckets, 0));
    const size_t chunk = (n + num_threads - 1) / num_threads;
    auto histogram_worker = [&](unsigned t) {
      const size_t begin = t * chunk;
      const size_t end = std::min(n, begin + chunk);
      auto& histogram = histograms[t];
      for (size_t i = begin; i < end; i++) {
        histogram[(src[i] >> shift) & (kNumBuckets - 1)]++;
      }
    };
    {
      std::vector<std::thread> workers;
      for (unsigned t = 1; t < num_threads; t++) {
        workers.emplace_back(histogram_worker, t);
      }
      histogram_worker(0);
      for (auto& worker : workers) {
        worker.join();
      }
    }
    // Global bucket offsets, then per-thread starting positions: thread t's
    // items for bucket b land after threads 0..t-1's items for bucket b.
    std::vector<std::vector<uint64_t>> offsets(
        num_threads, std::vector<uint64_t>(kNumBuckets, 0));
    uint64_t running = 0;
    for (int b = 0; b < kNumBuckets; b++) {
      for (unsigned t = 0; t < num_threads; t++) {
        offsets[t][b] = running;
        running += histograms[t][b];
      }
    }
    auto scatter_worker = [&](unsigned t) {
      const size_t begin = t * chunk;
      const size_t end = std::min(n, begin + chunk);
      auto& offset = offsets[t];
      for (size_t i = begin; i < end; i++) {
        dst[offset[(src[i] >> shift) & (kNumBuckets - 1)]++] = src[i];
      }
    };
    {
      std::vector<std::thread> workers;
      for (unsigned t = 1; t < num_threads; t++) {
        workers.emplace_back(scatter_worker, t);
      }
      scatter_worker(0);
      for (auto& worker : workers) {
        worker.join();
      }
    }
    std::swap(src, dst);
  }
  if (src != values.data()) {
    std::copy(src, src + n, values.data());
  }
}

MergeResult RadixSortMerger::Merge(std::span<const uint64_t> free_offsets,
                                   uint32_t slab_bytes) {
  KVD_CHECK(slab_bytes > 0);
  std::vector<uint64_t> sorted(free_offsets.begin(), free_offsets.end());
  ParallelRadixSort(sorted, num_threads_);
  return ScanSortedForBuddies(sorted, slab_bytes);
}

}  // namespace kvd
