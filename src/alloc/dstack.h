// Double-ended stack of slab entries in real memory (paper Figure 8).
//
// Each slab size class has a host-side pool laid out as a double-ended stack
// in the daemon's memory: the *left* end is popped/pushed by the NIC's DMA
// synchronization, the *right* end by the host daemon's split/merge logic.
// "Because each end of a stack is either accessed by the NIC or the host,
// and the data is accessed prior to moving pointers, race conditions would
// not occur" (§4) — the two parties never touch the same end.
//
// Layout inside the backing HostMemory region:
//   [0,8)   left index  (u64): next position the left end would pop
//   [8,16)  right index (u64): one past the last occupied position
//   [16,..) entry ring: capacity x 8-byte entries, indices wrap modulo
//           capacity; occupied range is [left, right) in ring order
#ifndef SRC_ALLOC_DSTACK_H_
#define SRC_ALLOC_DSTACK_H_

#include <cstdint>
#include <span>

#include "src/mem/host_memory.h"

namespace kvd {

class DequeStack {
 public:
  // Manages [base, base + BytesFor(capacity)) of `memory`; initializes empty.
  DequeStack(HostMemory& memory, uint64_t base, uint64_t capacity);

  static uint64_t BytesFor(uint64_t capacity) { return 16 + capacity * 8; }

  uint64_t size() const;
  uint64_t capacity() const { return capacity_; }
  bool empty() const { return size() == 0; }

  // --- left end: the NIC's side of the pool ---
  bool PopLeft(uint64_t* out);
  bool PushLeft(uint64_t value);
  // Batched forms (one logical DMA each); return entries moved.
  uint64_t PopLeftBatch(std::span<uint64_t> out);
  uint64_t PushLeftBatch(std::span<const uint64_t> in);

  // --- right end: the host daemon's side ---
  bool PopRight(uint64_t* out);
  bool PushRight(uint64_t value);

 private:
  uint64_t LoadIndex(uint64_t offset) const;
  void StoreIndex(uint64_t offset, uint64_t value);
  uint64_t EntryAddress(uint64_t index) const {
    return base_ + 16 + (index % capacity_) * 8;
  }

  HostMemory& memory_;
  uint64_t base_;
  uint64_t capacity_;
};

}  // namespace kvd

#endif  // SRC_ALLOC_DSTACK_H_
