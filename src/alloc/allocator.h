// Dynamic-memory allocation interface used by the hash index for non-inline
// KVs and chained hash buckets.
#ifndef SRC_ALLOC_ALLOCATOR_H_
#define SRC_ALLOC_ALLOCATOR_H_

#include <cstdint>

#include "src/common/status.h"

namespace kvd {

class Allocator {
 public:
  virtual ~Allocator() = default;

  // Returns the host-memory address of a block of at least `bytes` bytes.
  virtual Result<uint64_t> Allocate(uint32_t bytes) = 0;

  // Releases a block previously returned by Allocate with the same size.
  virtual void Free(uint64_t address, uint32_t bytes) = 0;
};

}  // namespace kvd

#endif  // SRC_ALLOC_ALLOCATOR_H_
