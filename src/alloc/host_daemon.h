// Host-side slab daemon (paper §3.3.2, §4, Figure 8 right side).
//
// The daemon owns the host-side free-slab stacks (one per size class) —
// real DequeStack structures in the daemon's memory arena — plus the
// global allocation bitmap, and the split/merge machinery:
//   - splitting: when a small pool runs dry, a larger slab is split by
//     copying entries between pools (no computation: the slab type is in the
//     entry itself)
//   - lazy merging: only when a pool is almost empty *and* no larger pool has
//     slabs to split does the daemon coalesce buddies from smaller classes,
//     using a pluggable Merger (radix sort by default — Figure 12)
#ifndef SRC_ALLOC_HOST_DAEMON_H_
#define SRC_ALLOC_HOST_DAEMON_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/alloc/allocation_bitmap.h"
#include "src/alloc/dstack.h"
#include "src/alloc/merger.h"
#include "src/alloc/slab_config.h"

namespace kvd {

struct DaemonStats {
  uint64_t splits = 0;        // one larger slab split into two smaller
  uint64_t merge_passes = 0;  // lazy-merge invocations
  uint64_t slabs_merged = 0;  // buddy pairs coalesced
};

class HostDaemon {
 public:
  explicit HostDaemon(const SlabConfig& config,
                      std::unique_ptr<Merger> merger = nullptr);

  // Pops up to out.size() free slabs of class `cls` into `out`, splitting
  // larger slabs and lazily merging smaller ones as needed. Returns the
  // number of slabs produced (0 means the region is exhausted for this size).
  size_t PopBatch(uint8_t cls, std::span<uint64_t> out);

  // Returns freed slabs of class `cls` from the NIC to the host pool.
  void PushBatch(uint8_t cls, std::span<const uint64_t> addresses);

  // Forces a full merge pass across all classes (maintenance entry point).
  void MergeAll();

  uint64_t StackDepth(uint8_t cls) const { return stacks_[cls].size(); }
  uint64_t FreeBytes() const;

  // The daemon's own memory arena holding the per-class double-ended stacks
  // (Figure 8's host side) — exposed for inspection in tests.
  const HostMemory& stack_arena() const { return arena_; }

  AllocationBitmap& bitmap() { return bitmap_; }
  const AllocationBitmap& bitmap() const { return bitmap_; }
  const DaemonStats& stats() const { return stats_; }
  const SlabConfig& config() const { return config_; }

 private:
  // Splits one slab of some class > cls down to produce one slab of `cls`
  // (intermediate halves land in their pools). Returns false if no larger
  // slab exists.
  bool SplitDownTo(uint8_t cls);

  // Merges buddies upward until class `cls` has at least one slab or no
  // progress can be made. Returns true if class `cls` gained a slab.
  bool LazyMergeUpTo(uint8_t cls);

  static uint64_t ArenaBytes(const SlabConfig& config);

  SlabConfig config_;
  std::unique_ptr<Merger> merger_;
  // The host-side pools live as double-ended stacks in the daemon's own
  // memory (paper Figure 8): the NIC syncs against the left ends, the
  // daemon's split/merge logic works the right ends.
  HostMemory arena_;
  std::vector<DequeStack> stacks_;  // per class
  AllocationBitmap bitmap_;
  DaemonStats stats_;
};

}  // namespace kvd

#endif  // SRC_ALLOC_HOST_DAEMON_H_
