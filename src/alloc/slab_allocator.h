// NIC-side slab allocator (paper §3.3.2, §4, Figure 8 left side).
//
// The allocator the KV processor calls on every non-inline PUT/DELETE. Each
// size class has an on-NIC free-slab stack; allocation and deallocation pop
// and push its top. The stack synchronizes with the host-side pool through
// batched DMA transfers governed by watermarks, so the amortized PCIe cost is
// one DMA per `sync_batch` operations (<0.07 per op with the defaults).
//
// Synchronization DMAs are counted here (`SyncStats`), and the timing layer
// charges them to the PCIe model; they deliberately bypass the DRAM load
// dispatcher because the host-side stacks are daemon metadata, not KVS data.
#ifndef SRC_ALLOC_SLAB_ALLOCATOR_H_
#define SRC_ALLOC_SLAB_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/alloc/allocator.h"
#include "src/alloc/host_daemon.h"
#include "src/alloc/slab_config.h"
#include "src/common/status.h"
#include "src/obs/event_tracer.h"
#include "src/obs/metric_registry.h"

namespace kvd {

struct SyncStats {
  uint64_t allocations = 0;
  uint64_t frees = 0;
  uint64_t sync_dma_reads = 0;   // host stack -> NIC stack batches
  uint64_t sync_dma_writes = 0;  // NIC stack -> host stack batches
  uint64_t entries_fetched = 0;
  uint64_t entries_flushed = 0;

  // DMA operations per allocation/free, the paper's <0.07 figure.
  double AmortizedDmaPerOp() const {
    const uint64_t ops = allocations + frees;
    return ops > 0 ? static_cast<double>(sync_dma_reads + sync_dma_writes) /
                         static_cast<double>(ops)
                   : 0.0;
  }
};

class SlabAllocator final : public Allocator {
 public:
  explicit SlabAllocator(const SlabConfig& config,
                         std::unique_ptr<Merger> merger = nullptr);

  Result<uint64_t> Allocate(uint32_t bytes) override;
  void Free(uint64_t address, uint32_t bytes) override;

  // Rounded allocation size for `bytes` (the slab footprint used for
  // utilization accounting).
  uint32_t FootprintFor(uint32_t bytes) const {
    return config_.ClassBytes(config_.ClassFor(bytes));
  }

  uint64_t FreeBytes() const;
  const SlabConfig& config() const { return config_; }
  const SyncStats& sync_stats() const { return sync_stats_; }

  // Observability: counters backed by sync_stats_, instants for pool syncs.
  void RegisterMetrics(MetricRegistry& registry) const;
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }
  HostDaemon& daemon() { return daemon_; }
  const HostDaemon& daemon() const { return daemon_; }

 private:
  // Refills the NIC stack for `cls` from the host pool; returns entries moved.
  size_t FetchFromHost(uint8_t cls);
  // Flushes a batch from the NIC stack for `cls` back to the host pool.
  void FlushToHost(uint8_t cls);

  SlabConfig config_;
  HostDaemon daemon_;
  std::vector<std::vector<uint64_t>> nic_stacks_;  // per class
  SyncStats sync_stats_;
  EventTracer* tracer_ = nullptr;
};

}  // namespace kvd

#endif  // SRC_ALLOC_SLAB_ALLOCATOR_H_
