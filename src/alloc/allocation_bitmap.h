// Global allocation bitmap (paper §3.3.2).
//
// One bit per minimum-granularity (32 B) granule of the dynamic region,
// set while the granule is allocated. The host daemon consults it when
// merging freed slabs back into larger ones, and tests use it to prove the
// allocator never double-allocates or leaks.
#ifndef SRC_ALLOC_ALLOCATION_BITMAP_H_
#define SRC_ALLOC_ALLOCATION_BITMAP_H_

#include <cstdint>
#include <vector>

#include "src/common/assert.h"

namespace kvd {

class AllocationBitmap {
 public:
  AllocationBitmap(uint64_t region_size, uint32_t granule_bytes);

  void MarkAllocated(uint64_t offset, uint32_t bytes);
  void MarkFree(uint64_t offset, uint32_t bytes);

  // True if every granule of [offset, offset+bytes) is allocated.
  bool IsAllocated(uint64_t offset, uint32_t bytes) const;
  // True if every granule of [offset, offset+bytes) is free.
  bool IsFree(uint64_t offset, uint32_t bytes) const;

  uint64_t allocated_granules() const { return allocated_granules_; }
  uint64_t total_granules() const { return num_granules_; }
  uint32_t granule_bytes() const { return granule_bytes_; }

 private:
  uint64_t GranuleIndex(uint64_t offset) const {
    KVD_DCHECK(offset % granule_bytes_ == 0);
    return offset / granule_bytes_;
  }

  uint32_t granule_bytes_;
  uint64_t num_granules_;
  uint64_t allocated_granules_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace kvd

#endif  // SRC_ALLOC_ALLOCATION_BITMAP_H_
