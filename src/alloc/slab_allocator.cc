#include "src/alloc/slab_allocator.h"

#include <algorithm>
#include <span>
#include <utility>

#include "src/common/assert.h"

namespace kvd {

SlabAllocator::SlabAllocator(const SlabConfig& config, std::unique_ptr<Merger> merger)
    : config_(config), daemon_(config, std::move(merger)) {
  config_.Validate();
  nic_stacks_.resize(config_.NumClasses());
  for (auto& stack : nic_stacks_) {
    stack.reserve(config_.nic_stack_capacity);
  }
}

size_t SlabAllocator::FetchFromHost(uint8_t cls) {
  std::vector<uint64_t> batch(config_.sync_batch);
  const size_t fetched = daemon_.PopBatch(cls, batch);
  if (fetched == 0) {
    return 0;
  }
  sync_stats_.sync_dma_reads++;
  sync_stats_.entries_fetched += fetched;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("slab", "sync_fetch", {{"class", cls}, {"entries", fetched}});
  }
  for (size_t i = 0; i < fetched; i++) {
    nic_stacks_[cls].push_back(batch[i]);
  }
  return fetched;
}

void SlabAllocator::FlushToHost(uint8_t cls) {
  auto& stack = nic_stacks_[cls];
  const size_t count = std::min<size_t>(config_.sync_batch, stack.size());
  KVD_DCHECK(count > 0);
  // The right end of the NIC-side double-ended stack drains to the host
  // (Figure 8): oldest entries leave, the hot top-of-stack stays on the NIC.
  daemon_.PushBatch(cls, std::span<const uint64_t>(stack.data(), count));
  stack.erase(stack.begin(), stack.begin() + static_cast<long>(count));
  sync_stats_.sync_dma_writes++;
  sync_stats_.entries_flushed += count;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("slab", "sync_flush", {{"class", cls}, {"entries", count}});
  }
}

Result<uint64_t> SlabAllocator::Allocate(uint32_t bytes) {
  if (bytes == 0 || bytes > config_.max_slab_bytes) {
    return Status::InvalidArgument("allocation size outside slab range");
  }
  const uint8_t cls = config_.ClassFor(bytes);
  auto& stack = nic_stacks_[cls];
  if (stack.size() < config_.low_watermark && FetchFromHost(cls) == 0 &&
      stack.empty()) {
    return Status::OutOfMemory("slab pool exhausted");
  }
  const uint64_t address = stack.back();
  stack.pop_back();
  daemon_.bitmap().MarkAllocated(address - config_.region_base,
                                 config_.ClassBytes(cls));
  sync_stats_.allocations++;
  return address;
}

void SlabAllocator::Free(uint64_t address, uint32_t bytes) {
  KVD_CHECK(bytes > 0 && bytes <= config_.max_slab_bytes);
  const uint8_t cls = config_.ClassFor(bytes);
  daemon_.bitmap().MarkFree(address - config_.region_base, config_.ClassBytes(cls));
  nic_stacks_[cls].push_back(address);
  sync_stats_.frees++;
  if (nic_stacks_[cls].size() > config_.high_watermark) {
    FlushToHost(cls);
  }
}

uint64_t SlabAllocator::FreeBytes() const { return daemon_.FreeBytes(); }

void SlabAllocator::RegisterMetrics(MetricRegistry& registry) const {
  registry.RegisterCounter("kvd_slab_allocations_total", "Slab allocations", {},
                           &sync_stats_.allocations);
  registry.RegisterCounter("kvd_slab_frees_total", "Slab frees", {},
                           &sync_stats_.frees);
  registry.RegisterCounter("kvd_slab_sync_dma_total", "Pool sync DMA batches",
                           {{"direction", "read"}}, &sync_stats_.sync_dma_reads);
  registry.RegisterCounter("kvd_slab_sync_dma_total", "Pool sync DMA batches",
                           {{"direction", "write"}}, &sync_stats_.sync_dma_writes);
  registry.RegisterCounter("kvd_slab_sync_entries_total", "Pool sync entries moved",
                           {{"direction", "fetched"}}, &sync_stats_.entries_fetched);
  registry.RegisterCounter("kvd_slab_sync_entries_total", "Pool sync entries moved",
                           {{"direction", "flushed"}}, &sync_stats_.entries_flushed);
  registry.RegisterGauge("kvd_slab_dma_per_op",
                         "Amortized sync DMAs per allocation/free", {},
                         [this] { return sync_stats_.AmortizedDmaPerOp(); });
  registry.RegisterGauge("kvd_slab_free_bytes", "Free bytes in the slab heap", {},
                         [this] { return static_cast<double>(FreeBytes()); });
}

}  // namespace kvd
