// Configuration shared by the NIC-side slab allocator and the host daemon.
#ifndef SRC_ALLOC_SLAB_CONFIG_H_
#define SRC_ALLOC_SLAB_CONFIG_H_

#include <bit>
#include <cstdint>

#include "src/common/assert.h"

namespace kvd {

struct SlabConfig {
  // Dynamic region inside host memory (follows the hash index).
  uint64_t region_base = 0;
  uint64_t region_size = 0;

  // Slab size classes are powers of two in [min_slab_bytes, max_slab_bytes].
  // The paper uses 32..512 B; vector values may enable larger classes.
  uint32_t min_slab_bytes = 32;
  uint32_t max_slab_bytes = 512;

  // NIC-side free-slab stack per class (on-chip; entries, not bytes).
  uint32_t nic_stack_capacity = 256;
  // Entries moved per DMA sync with the host-side stack (paper: batching
  // amortizes to <0.07 DMA per allocation).
  uint32_t sync_batch = 32;
  // Fetch from host when the NIC stack drops below `low_watermark`; flush to
  // host when it rises above `high_watermark`.
  uint32_t low_watermark = 8;
  uint32_t high_watermark = 224;

  uint8_t NumClasses() const {
    return static_cast<uint8_t>(std::countr_zero(max_slab_bytes) -
                                std::countr_zero(min_slab_bytes) + 1);
  }
  uint32_t ClassBytes(uint8_t cls) const { return min_slab_bytes << cls; }
  uint8_t ClassFor(uint32_t bytes) const {
    KVD_DCHECK(bytes > 0 && bytes <= max_slab_bytes);
    uint32_t rounded = std::bit_ceil(bytes);
    if (rounded < min_slab_bytes) {
      rounded = min_slab_bytes;
    }
    return static_cast<uint8_t>(std::countr_zero(rounded) -
                                std::countr_zero(min_slab_bytes));
  }

  void Validate() const {
    KVD_CHECK(region_size > 0);
    KVD_CHECK(std::has_single_bit(min_slab_bytes));
    KVD_CHECK(std::has_single_bit(max_slab_bytes));
    KVD_CHECK(min_slab_bytes <= max_slab_bytes);
    KVD_CHECK(region_size % max_slab_bytes == 0);
    KVD_CHECK(sync_batch > 0 && sync_batch <= nic_stack_capacity);
    KVD_CHECK(low_watermark < high_watermark);
    KVD_CHECK(high_watermark <= nic_stack_capacity);
  }
};

// One entry of a free-slab pool: address plus size class. Including the type
// in the entry lets splitting move entries between pools without computation
// (paper §3.3.2). Wire size: 5 B in hardware; 8 B here for alignment, the DMA
// byte accounting uses the hardware size.
struct SlabEntry {
  uint64_t address;
  uint8_t type;
};

inline constexpr uint32_t kSlabEntryWireBytes = 5;

}  // namespace kvd

#endif  // SRC_ALLOC_SLAB_CONFIG_H_
