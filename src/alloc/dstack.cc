#include "src/alloc/dstack.h"

#include <cstring>

#include "src/common/assert.h"

namespace kvd {

DequeStack::DequeStack(HostMemory& memory, uint64_t base, uint64_t capacity)
    : memory_(memory), base_(base), capacity_(capacity) {
  KVD_CHECK(capacity > 0);
  StoreIndex(0, 0);  // left
  StoreIndex(8, 0);  // right
}

uint64_t DequeStack::LoadIndex(uint64_t offset) const {
  uint64_t value;
  uint8_t raw[8];
  memory_.Read(base_ + offset, raw);
  std::memcpy(&value, raw, 8);
  return value;
}

void DequeStack::StoreIndex(uint64_t offset, uint64_t value) {
  uint8_t raw[8];
  std::memcpy(raw, &value, 8);
  memory_.Write(base_ + offset, raw);
}

uint64_t DequeStack::size() const {
  const uint64_t left = LoadIndex(0);
  const uint64_t right = LoadIndex(8);
  KVD_DCHECK(right >= left && right - left <= capacity_);
  return right - left;
}

bool DequeStack::PopLeft(uint64_t* out) {
  const uint64_t left = LoadIndex(0);
  if (left == LoadIndex(8)) {
    return false;
  }
  uint8_t raw[8];
  memory_.Read(EntryAddress(left), raw);
  std::memcpy(out, raw, 8);
  // Data read before the pointer moves (the Figure 8 race-freedom rule).
  StoreIndex(0, left + 1);
  return true;
}

bool DequeStack::PushLeft(uint64_t value) {
  const uint64_t left = LoadIndex(0);
  if (LoadIndex(8) - left >= capacity_ || left == 0) {
    // A full ring, or a left end already at its virtual origin: the latter is
    // re-normalized by pushing on the right instead, preserving LIFO order
    // only approximately — free-slab pools are unordered sets, so any
    // position is equally correct.
    return PushRight(value);
  }
  uint8_t raw[8];
  std::memcpy(raw, &value, 8);
  memory_.Write(EntryAddress(left - 1), raw);
  StoreIndex(0, left - 1);
  return true;
}

uint64_t DequeStack::PopLeftBatch(std::span<uint64_t> out) {
  uint64_t moved = 0;
  while (moved < out.size() && PopLeft(&out[moved])) {
    moved++;
  }
  return moved;
}

uint64_t DequeStack::PushLeftBatch(std::span<const uint64_t> in) {
  uint64_t moved = 0;
  while (moved < in.size() && PushLeft(in[moved])) {
    moved++;
  }
  return moved;
}

bool DequeStack::PopRight(uint64_t* out) {
  const uint64_t right = LoadIndex(8);
  if (right == LoadIndex(0)) {
    return false;
  }
  uint8_t raw[8];
  memory_.Read(EntryAddress(right - 1), raw);
  std::memcpy(out, raw, 8);
  StoreIndex(8, right - 1);
  return true;
}

bool DequeStack::PushRight(uint64_t value) {
  const uint64_t right = LoadIndex(8);
  if (right - LoadIndex(0) >= capacity_) {
    return false;
  }
  uint8_t raw[8];
  std::memcpy(raw, &value, 8);
  memory_.Write(EntryAddress(right), raw);
  StoreIndex(8, right + 1);
  return true;
}

}  // namespace kvd
