#include "src/alloc/host_daemon.h"

#include <algorithm>
#include <utility>

#include "src/common/assert.h"

namespace kvd {

uint64_t HostDaemon::ArenaBytes(const SlabConfig& config) {
  uint64_t total = 0;
  for (uint8_t cls = 0; cls < config.NumClasses(); cls++) {
    total += DequeStack::BytesFor(config.region_size / config.ClassBytes(cls));
  }
  return total;
}

HostDaemon::HostDaemon(const SlabConfig& config, std::unique_ptr<Merger> merger)
    : config_(config),
      merger_(merger ? std::move(merger)
                     : std::make_unique<RadixSortMerger>(/*num_threads=*/1)),
      arena_(ArenaBytes(config)),
      bitmap_(config.region_size, config.min_slab_bytes) {
  config_.Validate();
  // Carve one double-ended stack per class out of the arena, each sized for
  // the worst case of the whole region freed at that class.
  uint64_t base = 0;
  for (uint8_t cls = 0; cls < config_.NumClasses(); cls++) {
    const uint64_t capacity = config_.region_size / config_.ClassBytes(cls);
    stacks_.emplace_back(arena_, base, capacity);
    base += DequeStack::BytesFor(capacity);
  }
  // The whole region starts as free slabs of the largest class, pushed in
  // descending address order so low addresses are handed out first.
  const uint8_t top = static_cast<uint8_t>(config_.NumClasses() - 1);
  const uint32_t top_bytes = config_.ClassBytes(top);
  for (uint64_t offset = config_.region_size; offset >= top_bytes; offset -= top_bytes) {
    KVD_CHECK(stacks_[top].PushRight(config_.region_base + offset - top_bytes));
  }
}

bool HostDaemon::SplitDownTo(uint8_t cls) {
  // Find the nearest larger class with a free slab.
  uint8_t source = cls;
  bool found = false;
  for (uint8_t c = cls + 1; c < config_.NumClasses(); c++) {
    if (!stacks_[c].empty()) {
      source = c;
      found = true;
      break;
    }
  }
  if (!found) {
    return false;
  }
  uint64_t address = 0;
  KVD_CHECK(stacks_[source].PopRight(&address));
  // Halve repeatedly; the upper half of each split lands in its own pool.
  // Slab entries are copied between pools without computation because the
  // type travels with the entry (paper §3.3.2).
  for (uint8_t c = source; c > cls; c--) {
    const uint32_t half = config_.ClassBytes(c) / 2;
    KVD_CHECK(stacks_[c - 1].PushRight(address + half));
    stats_.splits++;
  }
  KVD_CHECK(stacks_[cls].PushRight(address));
  return true;
}

bool HostDaemon::LazyMergeUpTo(uint8_t cls) {
  stats_.merge_passes++;
  bool progressed = false;
  for (uint8_t c = 0; c < cls; c++) {
    if (stacks_[c].size() < 2) {
      continue;
    }
    // Drain the pool from the host end; offsets are region-relative for the
    // merger's buddy alignment checks.
    std::vector<uint64_t> offsets;
    offsets.reserve(stacks_[c].size());
    uint64_t address = 0;
    while (stacks_[c].PopRight(&address)) {
      offsets.push_back(address - config_.region_base);
    }
    MergeResult result = merger_->Merge(offsets, config_.ClassBytes(c));
    if (result.merged.empty()) {
      for (uint64_t offset : offsets) {
        KVD_CHECK(stacks_[c].PushRight(config_.region_base + offset));
      }
      continue;
    }
    progressed = true;
    stats_.slabs_merged += result.merged.size();
    for (uint64_t offset : result.unmerged) {
      KVD_CHECK(stacks_[c].PushRight(config_.region_base + offset));
    }
    for (uint64_t offset : result.merged) {
      KVD_CHECK(stacks_[c + 1].PushRight(config_.region_base + offset));
    }
  }
  return progressed && (!stacks_[cls].empty() || SplitDownTo(cls));
}

size_t HostDaemon::PopBatch(uint8_t cls, std::span<uint64_t> out) {
  KVD_CHECK(cls < config_.NumClasses());
  size_t produced = 0;
  while (produced < out.size()) {
    if (stacks_[cls].empty() && !SplitDownTo(cls) && !LazyMergeUpTo(cls)) {
      break;
    }
    // The NIC's synchronization consumes the pool's left end (Figure 8).
    if (!stacks_[cls].PopLeft(&out[produced])) {
      break;
    }
    produced++;
  }
  return produced;
}

void HostDaemon::PushBatch(uint8_t cls, std::span<const uint64_t> addresses) {
  KVD_CHECK(cls < config_.NumClasses());
  for (uint64_t address : addresses) {
    KVD_CHECK(stacks_[cls].PushLeft(address));
  }
}

void HostDaemon::MergeAll() {
  LazyMergeUpTo(static_cast<uint8_t>(config_.NumClasses() - 1));
}

uint64_t HostDaemon::FreeBytes() const {
  const uint64_t free_granules =
      bitmap_.total_granules() - bitmap_.allocated_granules();
  return free_granules * bitmap_.granule_bytes();
}

}  // namespace kvd
