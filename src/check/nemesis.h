// Seeded nemesis explorer: fault scripts, a seed matrix, and script
// shrinking (DESIGN.md §15).
//
// A FaultScript is a deterministic, self-contained schedule of fault events
// — replica crashes, replication-link partitions, gray links, client-facing
// and copy-stream loss bursts, migration and split triggers — generated from
// one seed. Every event heals itself (a crash carries its restart time, a
// burst its end), so any *subset* of a script is still a well-formed script:
// that is what makes greedy event-removal shrinking sound.
//
// RunClusterScenario plays a script against a live sharded cluster (N
// replication groups on one simulated clock) while recording clients run a
// counter workload, then judges the recorded history with the
// linearizability checker and the session auditors. The whole run is
// deterministic: same seed, same script, bit-identical history fingerprint
// and report.
//
// RunSeedMatrix sweeps seeds until a scenario fails, then shrinks the
// failing script to a minimal reproducer: greedily drop one event, re-run,
// keep the removal iff the violation survives, repeat to fixpoint. The
// result carries the shrunk script and the violating run's report.
#ifndef SRC_CHECK_NEMESIS_H_
#define SRC_CHECK_NEMESIS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/check/linearizability.h"
#include "src/check/session_audit.h"
#include "src/common/units.h"

namespace kvd {

enum class NemesisEventKind : uint8_t {
  kCrashReplica = 0,     // fail-stop one replica; restarts after `duration`
  kPartitionReplica = 1, // both directions of its replication link, healed
  kGrayReplica = 2,      // slow+lossy replication link for `duration`
  kClientLossBurst = 3,  // client-facing drop probability on one group
  kCopyLossBurst = 4,    // drop probability on the migration copy wire
  kStartMigration = 5,   // move one partition to another group
  kSplitPartitions = 6,  // double the partition count (relabeling)
};

constexpr const char* NemesisEventKindName(NemesisEventKind kind) {
  switch (kind) {
    case NemesisEventKind::kCrashReplica:
      return "crash";
    case NemesisEventKind::kPartitionReplica:
      return "partition";
    case NemesisEventKind::kGrayReplica:
      return "gray-link";
    case NemesisEventKind::kClientLossBurst:
      return "client-loss";
    case NemesisEventKind::kCopyLossBurst:
      return "copy-loss";
    case NemesisEventKind::kStartMigration:
      return "migrate";
    case NemesisEventKind::kSplitPartitions:
      return "split";
  }
  return "unknown";
}

struct NemesisEvent {
  SimTime at = 0;  // fire time, relative to scenario start
  NemesisEventKind kind = NemesisEventKind::kCrashReplica;
  uint32_t group = 0;     // taken modulo the live topology at fire time
  uint32_t replica = 0;
  uint32_t partition = 0;
  uint32_t to_group = 0;
  SimTime duration = 0;      // crash/partition/gray/burst heal after this
  double probability = 0.0;  // burst drop / gray-link loss probability
  double multiplier = 1.0;   // gray-link latency multiplier

  std::string ToString() const;
};

struct FaultScript {
  uint64_t seed = 0;
  std::vector<NemesisEvent> events;  // sorted by `at`

  std::string ToString() const;
};

struct ClusterScenarioOptions {
  uint32_t num_groups = 2;
  uint32_t num_replicas = 3;
  uint32_t num_partitions = 4;
  uint32_t num_clients = 2;
  uint32_t num_keys = 12;       // spread round-robin across partitions
  uint32_t rounds = 10;
  uint32_t ops_per_round = 6;   // per client per round
  double get_ratio = 0.375;
  // Script events are generated inside [0, event_horizon).
  SimTime event_horizon = 8 * kMillisecond;
  uint32_t max_script_events = 12;
  // Re-introduce the migration lost-update bug (the touched-key guard is
  // skipped) so tests can prove the harness catches and shrinks it.
  bool inject_lost_update_bug = false;
  CheckOptions check;  // initial_values is filled by the scenario
};

struct ScenarioOutcome {
  bool ok = false;  // no violation (limit-exceeded verdicts do not fail)
  CheckReport linearizability;
  AuditReport session_audit;
  AuditReport exactly_once;
  History history;
  std::string fingerprint;  // history digest — bit-identical per seed
  std::string report;       // script + verdicts; deterministic
};

// Deterministic script generation: same (seed, options) -> same script.
// Always includes at least one migration trigger — the ownership-change path
// is the reason this harness exists.
FaultScript GenerateFaultScript(uint64_t seed,
                                const ClusterScenarioOptions& options);

ScenarioOutcome RunClusterScenario(const ClusterScenarioOptions& options,
                                   const FaultScript& script);

// A scenario under test: returns true when the run is consistent; fills
// `report` (may be null) either way.
using ScenarioFn =
    std::function<bool(const FaultScript& script, std::string* report)>;

// Greedy event-removal shrinking: drop one event, re-run, keep the removal
// iff the scenario still fails; loop to fixpoint (bounded by `max_runs`).
// Returns the minimal script; `runs_used`/`final_report` (nullable) receive
// the run count and the minimal script's violation report.
FaultScript ShrinkFaultScript(const FaultScript& script, const ScenarioFn& fn,
                              uint32_t max_runs, uint32_t* runs_used,
                              std::string* final_report);

struct NemesisOptions {
  ClusterScenarioOptions scenario;
  uint64_t base_seed = 1;
  uint32_t num_seeds = 32;
  uint32_t max_shrink_runs = 96;
};

struct NemesisResult {
  bool ok = true;
  uint32_t seeds_run = 0;
  uint64_t failing_seed = 0;       // valid when !ok
  FaultScript original_script;
  FaultScript shrunk_script;
  uint32_t shrink_runs = 0;
  std::string failure_report;      // the shrunk reproducer's report

  std::string ToString() const;
};

// Sweeps seeds base_seed .. base_seed+num_seeds-1 over the built-in cluster
// scenario (or a custom one), stopping at — and shrinking — the first
// failure.
NemesisResult RunSeedMatrix(const NemesisOptions& options);
NemesisResult RunSeedMatrix(const NemesisOptions& options,
                            const ScenarioFn& fn);

}  // namespace kvd

#endif  // SRC_CHECK_NEMESIS_H_
