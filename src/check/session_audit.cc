#include "src/check/session_audit.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <set>

namespace kvd {
namespace {

void Appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void AppendHex(std::string& out, const std::vector<uint8_t>& bytes,
               size_t max_bytes = 16) {
  static const char kHex[] = "0123456789abcdef";
  const size_t n = std::min(bytes.size(), max_bytes);
  for (size_t i = 0; i < n; i++) {
    out.push_back(kHex[bytes[i] >> 4]);
    out.push_back(kHex[bytes[i] & 0xf]);
  }
  if (bytes.size() > max_bytes) {
    out += "..";
  }
}

uint64_t ReadU64(const std::vector<uint8_t>& v) {
  uint64_t x = 0;
  if (!v.empty()) {
    std::memcpy(&x, v.data(), std::min<size_t>(8, v.size()));
  }
  return x;
}

bool IsAdd(const KvOperation& op) {
  return op.opcode == Opcode::kUpdateScalar && op.function_id == kFnAddU64;
}

// Ambiguity classification mirrors linearizability.cc.
bool Ambiguous(const HistoryOp& h) {
  return !h.returned || IsAmbiguousResult(h.result.code);
}

// Definite rejection without effect — invisible to every auditor.
bool Discarded(const HistoryOp& h) {
  return !Ambiguous(h) && h.result.code != ResultCode::kOk &&
         h.result.code != ResultCode::kNotFound;
}

// Strict real-time precedence: a's effect is definitely visible before b
// begins. Ambiguous ops never strictly precede anything (open interval).
bool Precedes(const HistoryOp& a, const HistoryOp& b) {
  return a.returned && !Ambiguous(a) && a.ret < b.invoke;
}

struct KeyOps {
  std::vector<size_t> indices;  // into history.ops, ascending
  bool has_put = false;         // any put, definite or ambiguous
  bool has_delete = false;
  bool has_add = false;
  std::set<uint64_t> put_sessions;
};

std::map<std::vector<uint8_t>, KeyOps> GroupByKey(const History& history) {
  std::map<std::vector<uint8_t>, KeyOps> keys;
  for (size_t i = 0; i < history.ops.size(); i++) {
    const HistoryOp& h = history.ops[i];
    if (Discarded(h)) {
      continue;
    }
    KeyOps& k = keys[h.op.key];
    k.indices.push_back(i);
    switch (h.op.opcode) {
      case Opcode::kPut:
        k.has_put = true;
        k.put_sessions.insert(h.session);
        break;
      case Opcode::kDelete:
        k.has_delete = true;
        break;
      case Opcode::kUpdateScalar:
        k.has_add = true;
        break;
      default:
        break;
    }
  }
  return keys;
}

void AuditCounterKey(const History& history, const std::vector<uint8_t>& key,
                     const KeyOps& k, AuditReport& report) {
  // For every definite read, the floor it must observe: the largest value
  // its own session definitely established earlier — via an acked fetch-add
  // (original + delta) or an earlier definite read.
  for (size_t gi : k.indices) {
    const HistoryOp& g = history.ops[gi];
    if (g.op.opcode != Opcode::kGet || Ambiguous(g)) {
      continue;
    }
    uint64_t add_floor = 0;
    size_t add_floor_index = 0;
    uint64_t read_floor = 0;
    size_t read_floor_index = 0;
    bool have_add_floor = false;
    bool have_read_floor = false;
    for (size_t ei : k.indices) {
      const HistoryOp& e = history.ops[ei];
      if (e.session != g.session || !Precedes(e, g)) {
        continue;
      }
      if (IsAdd(e.op) && e.result.code == ResultCode::kOk) {
        const uint64_t after = e.result.scalar + e.op.param;
        if (!have_add_floor || after > add_floor) {
          add_floor = after;
          add_floor_index = ei;
          have_add_floor = true;
        }
      } else if (e.op.opcode == Opcode::kGet &&
                 e.result.code == ResultCode::kOk) {
        const uint64_t seen = ReadU64(e.result.value);
        if (!have_read_floor || seen > read_floor) {
          read_floor = seen;
          read_floor_index = ei;
          have_read_floor = true;
        }
      }
    }
    if (!have_add_floor && !have_read_floor) {
      continue;
    }
    const bool not_found = g.result.code == ResultCode::kNotFound;
    const uint64_t value = not_found ? 0 : ReadU64(g.result.value);
    if (have_add_floor && (not_found || value < add_floor)) {
      AuditViolation v;
      v.auditor = "read-your-writes";
      v.session = g.session;
      v.key = key;
      v.hist_index = gi;
      if (not_found) {
        Appendf(v.detail,
                "read observed NOT_FOUND after own acked fetch-add hist[%zu] "
                "established %" PRIu64,
                add_floor_index, add_floor);
      } else {
        Appendf(v.detail,
                "read observed %" PRIu64 " but own acked fetch-add hist[%zu] "
                "established %" PRIu64,
                value, add_floor_index, add_floor);
      }
      report.violations.push_back(std::move(v));
      continue;  // one violation per op — the sharper auditor wins
    }
    if (have_read_floor && (not_found || value < read_floor)) {
      AuditViolation v;
      v.auditor = "monotonic-reads";
      v.session = g.session;
      v.key = key;
      v.hist_index = gi;
      if (not_found) {
        Appendf(v.detail,
                "read observed NOT_FOUND after earlier read hist[%zu] "
                "observed %" PRIu64,
                read_floor_index, read_floor);
      } else {
        Appendf(v.detail,
                "read observed %" PRIu64 " after earlier read hist[%zu] "
                "observed %" PRIu64 " (counter values never decrease)",
                value, read_floor_index, read_floor);
      }
      report.violations.push_back(std::move(v));
    }
  }
}

void AuditRegisterKey(const History& history, const std::vector<uint8_t>& key,
                      const KeyOps& k, AuditReport& report) {
  std::vector<size_t> puts;  // all puts (one session writes this key)
  for (size_t i : k.indices) {
    if (history.ops[i].op.opcode == Opcode::kPut) {
      puts.push_back(i);
    }
  }
  for (size_t gi : k.indices) {
    const HistoryOp& g = history.ops[gi];
    if (g.op.opcode != Opcode::kGet || Ambiguous(g)) {
      continue;
    }
    // An acked put that completed before this read pins the register to some
    // written value: the pre-history base can no longer show through.
    bool acked_put_before = false;
    for (size_t pi : puts) {
      const HistoryOp& p = history.ops[pi];
      if (!Ambiguous(p) && p.result.code == ResultCode::kOk &&
          Precedes(p, g)) {
        acked_put_before = true;
        break;
      }
    }
    if (!acked_put_before) {
      continue;
    }
    if (g.result.code == ResultCode::kNotFound) {
      AuditViolation v;
      v.auditor = "read-your-writes";
      v.session = g.session;
      v.key = key;
      v.hist_index = gi;
      v.detail = "read observed NOT_FOUND after an acked put completed "
                 "(no deletes in this history)";
      report.violations.push_back(std::move(v));
      continue;
    }
    // Which puts could have produced the observed value?
    std::vector<size_t> sources;
    for (size_t pi : puts) {
      if (history.ops[pi].op.value == g.result.value) {
        sources.push_back(pi);
      }
    }
    if (sources.empty()) {
      AuditViolation v;
      v.auditor = "read-your-writes";
      v.session = g.session;
      v.key = key;
      v.hist_index = gi;
      v.detail = "read observed a value no put ever wrote (after an acked "
                 "put completed)";
      report.violations.push_back(std::move(v));
      continue;
    }
    // Stale read: every candidate source was acked and then definitely
    // overwritten by another acked put that completed before this read.
    bool all_overwritten = true;
    size_t example_put = 0;
    size_t example_overwriter = 0;
    for (size_t pi : sources) {
      const HistoryOp& p = history.ops[pi];
      if (Ambiguous(p) || p.result.code != ResultCode::kOk) {
        all_overwritten = false;  // could have landed late — not stale
        break;
      }
      bool overwritten = false;
      for (size_t qi : puts) {
        const HistoryOp& q = history.ops[qi];
        if (qi != pi && !Ambiguous(q) && q.result.code == ResultCode::kOk &&
            Precedes(p, q) && Precedes(q, g)) {
          overwritten = true;
          example_put = pi;
          example_overwriter = qi;
          break;
        }
      }
      if (!overwritten) {
        all_overwritten = false;
        break;
      }
    }
    if (all_overwritten) {
      AuditViolation v;
      v.auditor = "read-your-writes";
      v.session = g.session;
      v.key = key;
      v.hist_index = gi;
      Appendf(v.detail,
              "stale read: observed the value of put hist[%zu], which was "
              "definitely overwritten by put hist[%zu] before this read "
              "began",
              example_put, example_overwriter);
      report.violations.push_back(std::move(v));
    }
  }
  // Monotonic reads: a later read must not observe a definitely-older put
  // than an earlier read by the same session.
  for (size_t ai = 0; ai < k.indices.size(); ai++) {
    const HistoryOp& g1 = history.ops[k.indices[ai]];
    if (g1.op.opcode != Opcode::kGet || Ambiguous(g1) ||
        g1.result.code != ResultCode::kOk) {
      continue;
    }
    for (size_t bi = ai + 1; bi < k.indices.size(); bi++) {
      const HistoryOp& g2 = history.ops[k.indices[bi]];
      if (g2.op.opcode != Opcode::kGet || Ambiguous(g2) ||
          g2.result.code != ResultCode::kOk || g2.session != g1.session ||
          !Precedes(g1, g2)) {
        continue;
      }
      // Only conclusive when each value maps to exactly one definite put.
      auto unique_source = [&](const HistoryOp& g) -> const HistoryOp* {
        const HistoryOp* found = nullptr;
        for (size_t pi : puts) {
          if (history.ops[pi].op.value == g.result.value) {
            if (found != nullptr) {
              return nullptr;
            }
            found = &history.ops[pi];
          }
        }
        if (found == nullptr || Ambiguous(*found) ||
            found->result.code != ResultCode::kOk) {
          return nullptr;
        }
        return found;
      };
      const HistoryOp* p1 = unique_source(g1);
      const HistoryOp* p2 = unique_source(g2);
      if (p1 != nullptr && p2 != nullptr && Precedes(*p2, *p1)) {
        AuditViolation v;
        v.auditor = "monotonic-reads";
        v.session = g2.session;
        v.key = key;
        v.hist_index = k.indices[bi];
        Appendf(v.detail,
                "later read observed an older put than read hist[%zu] "
                "(the observed put returned before the earlier one began)",
                k.indices[ai]);
        report.violations.push_back(std::move(v));
      }
    }
  }
}

}  // namespace

std::string AuditViolation::ToString() const {
  std::string out = auditor;
  std::string key_hex;
  AppendHex(key_hex, key);
  Appendf(out, " violation at hist[%zu] (session %" PRIu64 ", key %s): ",
          hist_index, session, key_hex.c_str());
  out += detail;
  return out;
}

std::string AuditReport::ToString() const {
  std::string out;
  Appendf(out,
          "session audit: %s (%zu counter keys, %zu register keys, "
          "%zu skipped, %zu violations)\n",
          ok() ? "ok" : "violation", counter_keys, register_keys,
          skipped_keys, violations.size());
  for (const AuditViolation& v : violations) {
    out += "  " + v.ToString() + "\n";
  }
  return out;
}

AuditReport AuditSessionGuarantees(const History& history) {
  AuditReport report;
  for (const auto& [key, k] : GroupByKey(history)) {
    if (!k.has_put && !k.has_delete) {
      report.counter_keys++;
      AuditCounterKey(history, key, k, report);
    } else if (!k.has_add && !k.has_delete && k.put_sessions.size() <= 1) {
      report.register_keys++;
      AuditRegisterKey(history, key, k, report);
    } else {
      report.skipped_keys++;
    }
  }
  return report;
}

AuditReport AuditExactlyOnceCounters(
    const History& history,
    const std::map<std::vector<uint8_t>, uint64_t>& base) {
  AuditReport report;
  for (const auto& [key, k] : GroupByKey(history)) {
    if (k.has_put || k.has_delete) {
      report.skipped_keys++;
      continue;
    }
    auto base_it = base.find(key);
    if (base_it == base.end()) {
      report.skipped_keys++;
      continue;
    }
    report.counter_keys++;
    // Final read: the definite read with the latest invoke.
    const HistoryOp* final_read = nullptr;
    size_t final_index = 0;
    for (size_t i : k.indices) {
      const HistoryOp& h = history.ops[i];
      if (h.op.opcode == Opcode::kGet && !Ambiguous(h) &&
          (final_read == nullptr || h.invoke >= final_read->invoke)) {
        final_read = &h;
        final_index = i;
      }
    }
    if (final_read == nullptr) {
      report.skipped_keys++;
      continue;
    }
    // Floor: adds definitely applied before the read began. Ceiling adds the
    // ambiguous and still-in-flight ones (they may land either side of it).
    uint64_t floor = base_it->second;
    uint64_t ceiling = base_it->second;
    size_t pending = 0;
    for (size_t i : k.indices) {
      const HistoryOp& h = history.ops[i];
      if (!IsAdd(h.op)) {
        continue;
      }
      if (!Ambiguous(h) && h.result.code == ResultCode::kOk) {
        ceiling += h.op.param;
        if (Precedes(h, *final_read)) {
          floor += h.op.param;
        } else {
          pending++;
        }
      } else if (Ambiguous(h)) {
        ceiling += h.op.param;
        pending++;
      }
    }
    const bool not_found = final_read->result.code == ResultCode::kNotFound;
    const uint64_t value = not_found ? 0 : ReadU64(final_read->result.value);
    if (!not_found && value >= floor && value <= ceiling) {
      continue;
    }
    AuditViolation v;
    v.auditor = "exactly-once";
    v.session = final_read->session;
    v.key = key;
    v.hist_index = final_index;
    if (not_found) {
      Appendf(v.detail,
              "final read observed NOT_FOUND but the key was loaded with "
              "base %" PRIu64,
              base_it->second);
    } else if (value < floor) {
      Appendf(v.detail,
              "lost acked write: final read observed %" PRIu64
              " but acked fetch-adds guarantee at least %" PRIu64
              " (base %" PRIu64 ", %zu ambiguous/in-flight adds excluded)",
              value, floor, base_it->second, pending);
    } else {
      Appendf(v.detail,
              "duplicated write: final read observed %" PRIu64
              " but even every ambiguous fetch-add applied once caps the "
              "value at %" PRIu64 " (base %" PRIu64 ")",
              value, ceiling, base_it->second);
    }
    report.violations.push_back(std::move(v));
  }
  return report;
}

}  // namespace kvd
