#include "src/check/linearizability.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <unordered_set>
#include <utility>

namespace kvd {
namespace {

void Appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void AppendHex(std::string& out, const std::vector<uint8_t>& bytes,
               size_t max_bytes = 16) {
  static const char kHex[] = "0123456789abcdef";
  const size_t n = std::min(bytes.size(), max_bytes);
  for (size_t i = 0; i < n; i++) {
    out.push_back(kHex[bytes[i] >> 4]);
    out.push_back(kHex[bytes[i] & 0xf]);
  }
  if (bytes.size() > max_bytes) {
    out += "..";
  }
}

enum class OpKind : uint8_t { kGet, kPut, kDelete, kAdd };

// One history op projected onto its key's search.
struct KeyOp {
  size_t hist_index = 0;
  SimTime invoke = 0;
  SimTime ret = kNoReturn;  // kNoReturn for ambiguous ops: open interval
  bool ambiguous = false;
  OpKind kind = OpKind::kGet;
  uint64_t delta = 0;
  std::vector<uint8_t> put_value;
  // Observed response (definite ops only).
  ResultCode code = ResultCode::kOk;
  std::vector<uint8_t> observed_value;
  uint64_t observed_scalar = 0;
};

// The model: one register of bytes, present or absent.
using State = std::optional<std::vector<uint8_t>>;

uint64_t ReadU64(const std::vector<uint8_t>& v) {
  uint64_t x = 0;
  if (!v.empty()) {
    std::memcpy(&x, v.data(), std::min<size_t>(8, v.size()));
  }
  return x;
}

void WriteU64(std::vector<uint8_t>& v, uint64_t x) {
  if (!v.empty()) {
    std::memcpy(v.data(), &x, std::min<size_t>(8, v.size()));
  }
}

std::string StateString(const State& s) {
  if (!s.has_value()) {
    return "<absent>";
  }
  std::string out;
  AppendHex(out, *s);
  return out;
}

// Unconditional server semantics — used when linearizing an ambiguous write,
// whose response (and thus result constraint) was never observed.
void ApplyEffect(State& s, const KeyOp& o) {
  switch (o.kind) {
    case OpKind::kGet:
      break;
    case OpKind::kPut:
      s = o.put_value;
      break;
    case OpKind::kDelete:
      s.reset();
      break;
    case OpKind::kAdd:
      if (s.has_value() && s->size() >= 8) {
        WriteU64(*s, ReadU64(*s) + o.delta);
      }
      break;
  }
}

// Applies a definite op: the observed result must match the model. Returns
// false (state untouched may be partially moot — caller copies) on mismatch;
// `why`, when non-null, receives the mismatch explanation.
bool ApplyDefinite(State& s, const KeyOp& o, std::string* why) {
  auto fail = [&](const char* fmt, auto... args) {
    if (why != nullptr) {
      Appendf(*why, fmt, args...);
    }
    return false;
  };
  switch (o.kind) {
    case OpKind::kGet:
      if (o.code == ResultCode::kOk) {
        if (!s.has_value()) {
          return fail("GET observed a value but the register is absent");
        }
        if (*s != o.observed_value) {
          return fail("GET observed %s but the register holds %s",
                      StateString(State(o.observed_value)).c_str(),
                      StateString(s).c_str());
        }
        return true;
      }
      if (s.has_value()) {
        return fail("GET observed NOT_FOUND but the register holds %s",
                    StateString(s).c_str());
      }
      return true;
    case OpKind::kPut:
      if (o.code != ResultCode::kOk) {
        return fail("PUT observed %s", ResultCodeName(o.code));
      }
      s = o.put_value;
      return true;
    case OpKind::kDelete:
      if (o.code == ResultCode::kOk) {
        if (!s.has_value()) {
          return fail("DELETE acked but the register is absent");
        }
        s.reset();
        return true;
      }
      if (s.has_value()) {
        return fail("DELETE observed NOT_FOUND but the register holds %s",
                    StateString(s).c_str());
      }
      return true;
    case OpKind::kAdd:
      if (o.code == ResultCode::kOk) {
        if (!s.has_value()) {
          return fail("fetch-add observed original %" PRIu64
                      " but the register is absent",
                      o.observed_scalar);
        }
        if (s->size() < 8) {
          return fail("fetch-add on a %zu-byte value", s->size());
        }
        const uint64_t old = ReadU64(*s);
        if (old != o.observed_scalar) {
          return fail("fetch-add observed original %" PRIu64
                      " but the register holds %" PRIu64,
                      o.observed_scalar, old);
        }
        WriteU64(*s, old + o.delta);
        return true;
      }
      if (s.has_value()) {
        return fail("fetch-add observed NOT_FOUND but the register holds %s",
                    StateString(s).c_str());
      }
      return true;
  }
  return false;
}

// Wing & Gong search over one key's ops.
class KeySearcher {
 public:
  KeySearcher(std::vector<KeyOp> ops, State initial, uint64_t budget)
      : ops_(std::move(ops)), initial_(std::move(initial)), budget_(budget) {
    // Deterministic candidate order: by interval, then history position.
    std::sort(ops_.begin(), ops_.end(), [](const KeyOp& a, const KeyOp& b) {
      if (a.invoke != b.invoke) return a.invoke < b.invoke;
      if (a.ret != b.ret) return a.ret < b.ret;
      return a.hist_index < b.hist_index;
    });
    remaining_.assign((ops_.size() + 63) / 64, 0);
    for (size_t i = 0; i < ops_.size(); i++) {
      remaining_[i / 64] |= 1ull << (i % 64);
      if (!ops_[i].ambiguous) {
        remaining_definite_++;
      }
    }
  }

  CheckStatus Run() {
    if (Search(initial_)) {
      return CheckStatus::kOk;
    }
    return limit_hit_ ? CheckStatus::kLimitExceeded : CheckStatus::kViolation;
  }

  uint64_t configurations() const { return configurations_; }

  // The longest linearizable prefix the failed search reached, the state it
  // left the model in, and why each minimal candidate is stuck there.
  std::string FrontierString() const {
    std::string out;
    Appendf(out, "  longest linearizable prefix: %zu of %zu ops\n",
            frontier_order_.size(), ops_.size());
    const size_t start =
        frontier_order_.size() > 8 ? frontier_order_.size() - 8 : 0;
    if (start > 0) {
      Appendf(out, "    ... %zu earlier linearized ops elided\n", start);
    }
    for (size_t i = start; i < frontier_order_.size(); i++) {
      const auto& [index, applied] = frontier_order_[i];
      Appendf(out, "    %s hist[%zu]\n",
              applied ? "linearized" : "dropped   ", ops_[index].hist_index);
    }
    out += "  model state there: " + StateString(frontier_state_) + "\n";
    if (frontier_reasons_.empty()) {
      out += "  no minimal candidate exists (real-time order is cyclic "
             "against the observed results)\n";
    }
    for (const std::string& reason : frontier_reasons_) {
      out += "  stuck: " + reason + "\n";
    }
    return out;
  }

 private:
  bool Taken(size_t i) const {
    return (remaining_[i / 64] & (1ull << (i % 64))) == 0;
  }
  void Take(size_t i) { remaining_[i / 64] &= ~(1ull << (i % 64)); }
  void Put(size_t i) { remaining_[i / 64] |= 1ull << (i % 64); }

  std::string MemoKey(const State& s) const {
    std::string key;
    key.reserve(remaining_.size() * 8 + 1 + (s.has_value() ? s->size() : 0));
    for (uint64_t word : remaining_) {
      for (int b = 0; b < 8; b++) {
        key.push_back(static_cast<char>(word >> (8 * b)));
      }
    }
    key.push_back(s.has_value() ? 1 : 0);
    if (s.has_value()) {
      key.append(s->begin(), s->end());
    }
    return key;
  }

  bool Search(const State& s) {
    if (remaining_definite_ == 0) {
      // Every remaining op is ambiguous; all of them "never happened".
      return true;
    }
    if (++configurations_ > budget_) {
      limit_hit_ = true;
      return false;
    }
    std::string memo = MemoKey(s);
    if (visited_.count(memo) != 0) {
      return false;
    }

    // A remaining op is a linearization candidate iff nothing remaining is
    // real-time ordered before it: its invoke precedes every remaining
    // return.
    SimTime min_ret = kNoReturn;
    for (size_t i = 0; i < ops_.size(); i++) {
      if (!Taken(i)) {
        min_ret = std::min(min_ret, ops_[i].ret);
      }
    }

    // Frontier tracking for the violation report: the deepest node wins.
    bool at_frontier = order_.size() >= frontier_order_.size();
    if (at_frontier) {
      frontier_order_ = order_;
      frontier_state_ = s;
      frontier_reasons_.clear();
    }

    for (size_t i = 0; i < ops_.size(); i++) {
      if (Taken(i) || ops_[i].invoke > min_ret) {
        continue;
      }
      const KeyOp& o = ops_[i];
      if (o.ambiguous) {
        // Branch 1: the write took effect here.
        State applied = s;
        ApplyEffect(applied, o);
        Take(i);
        order_.emplace_back(i, true);
        if (Search(applied)) {
          return true;
        }
        // Branch 2: the write never took effect — consume it with no state
        // change (sound: an unobserved response constrains nothing).
        order_.back().second = false;
        if (Search(s)) {
          return true;
        }
        order_.pop_back();
        Put(i);
      } else {
        State applied = s;
        std::string* why = nullptr;
        std::string reason;
        if (at_frontier && order_.size() + 1 > frontier_order_.size()) {
          // Still the best node: collect the mismatch for the report.
          why = &reason;
        }
        if (ApplyDefinite(applied, o, why)) {
          Take(i);
          remaining_definite_--;
          order_.emplace_back(i, true);
          if (Search(applied)) {
            return true;
          }
          order_.pop_back();
          remaining_definite_++;
          Put(i);
        } else if (why != nullptr && frontier_reasons_.size() < 8) {
          std::string line;
          Appendf(line, "hist[%zu]: ", o.hist_index);
          frontier_reasons_.push_back(line + reason);
        }
      }
      if (at_frontier && order_.size() < frontier_order_.size()) {
        at_frontier = false;  // a deeper node took over the report
      }
      if (limit_hit_) {
        return false;
      }
    }
    visited_.insert(std::move(memo));
    return false;
  }

  std::vector<KeyOp> ops_;
  State initial_;
  uint64_t budget_;
  std::vector<uint64_t> remaining_;  // bit set = not yet linearized
  size_t remaining_definite_ = 0;
  std::vector<std::pair<size_t, bool>> order_;  // (op index, applied?)
  std::unordered_set<std::string> visited_;
  uint64_t configurations_ = 0;
  bool limit_hit_ = false;

  std::vector<std::pair<size_t, bool>> frontier_order_;
  State frontier_state_;
  std::vector<std::string> frontier_reasons_;
};

bool SupportedOpcode(const KvOperation& op) {
  switch (op.opcode) {
    case Opcode::kGet:
    case Opcode::kPut:
    case Opcode::kDelete:
      return true;
    case Opcode::kUpdateScalar:
      return op.function_id == kFnAddU64;
    default:
      return false;
  }
}

OpKind KindOf(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPut:
      return OpKind::kPut;
    case Opcode::kDelete:
      return OpKind::kDelete;
    case Opcode::kUpdateScalar:
      return OpKind::kAdd;
    default:
      return OpKind::kGet;
  }
}

}  // namespace

CheckReport CheckLinearizability(const History& history,
                                 const CheckOptions& options) {
  CheckReport report;

  // Project the history per key (P-compositionality), applying the ambiguity
  // rules from the header.
  std::map<std::vector<uint8_t>, std::vector<KeyOp>> per_key;
  for (size_t i = 0; i < history.ops.size(); i++) {
    const HistoryOp& h = history.ops[i];
    if (!SupportedOpcode(h.op)) {
      report.ops_unsupported++;
      continue;
    }
    const bool ambiguous = !h.returned || IsAmbiguousResult(h.result.code);
    if (ambiguous && !IsWriteOpcode(h.op.opcode)) {
      report.ops_discarded++;  // an unanswered read constrains nothing
      continue;
    }
    if (!ambiguous && h.result.code != ResultCode::kOk &&
        h.result.code != ResultCode::kNotFound) {
      report.ops_discarded++;  // definite rejection without effect
      continue;
    }
    KeyOp op;
    op.hist_index = i;
    op.invoke = h.invoke;
    op.ret = ambiguous ? kNoReturn : h.ret;
    op.ambiguous = ambiguous;
    op.kind = KindOf(h.op.opcode);
    op.delta = h.op.param;
    op.put_value = h.op.value;
    if (!ambiguous) {
      op.code = h.result.code;
      op.observed_value = h.result.value;
      op.observed_scalar = h.result.scalar;
    }
    per_key[h.op.key].push_back(std::move(op));
    report.ops_checked++;
  }

  for (auto& [key, ops] : per_key) {
    report.keys_checked++;
    const size_t num_ops = ops.size();
    const uint64_t budget =
        options.max_configurations > report.configurations
            ? options.max_configurations - report.configurations
            : 0;
    State initial;
    auto seeded = options.initial_values.find(key);
    if (seeded != options.initial_values.end()) {
      initial = seeded->second;
    }
    KeySearcher searcher(std::move(ops), std::move(initial), budget);
    const CheckStatus status = searcher.Run();
    report.configurations += searcher.configurations();
    if (status == CheckStatus::kOk) {
      continue;
    }
    KeyCheckReport key_report;
    key_report.key = key;
    key_report.status = status;
    key_report.ops = num_ops;
    key_report.configurations = searcher.configurations();
    if (status == CheckStatus::kViolation) {
      key_report.detail = searcher.FrontierString();
      key_report.detail += "  sub-history of the key:\n";
      size_t printed = 0;
      for (size_t i = 0;
           i < history.ops.size() && printed < options.max_report_ops; i++) {
        if (history.ops[i].op.key != key) {
          continue;
        }
        std::string line;
        Appendf(line, "    hist[%zu] ", i);
        key_report.detail += line + history.ops[i].ToString() + "\n";
        printed++;
      }
      if (printed == options.max_report_ops && printed < num_ops) {
        key_report.detail += "    ...\n";
      }
    } else {
      key_report.detail = "  search budget exhausted before a verdict\n";
    }
    report.keys.push_back(std::move(key_report));
  }

  for (const KeyCheckReport& key_report : report.keys) {
    if (key_report.status == CheckStatus::kViolation) {
      report.status = CheckStatus::kViolation;
      break;
    }
    report.status = CheckStatus::kLimitExceeded;
  }
  return report;
}

std::string CheckReport::ToString() const {
  std::string out;
  Appendf(out,
          "linearizability: %s (%zu keys, %zu ops checked, %zu discarded, "
          "%zu unsupported, %" PRIu64 " configurations)\n",
          CheckStatusName(status), keys_checked, ops_checked, ops_discarded,
          ops_unsupported, configurations);
  for (const KeyCheckReport& key_report : keys) {
    std::string key_hex;
    AppendHex(key_hex, key_report.key);
    Appendf(out, "key %s: %s (%zu ops, %" PRIu64 " configurations)\n",
            key_hex.c_str(), CheckStatusName(key_report.status),
            key_report.ops, key_report.configurations);
    out += key_report.detail;
  }
  return out;
}

}  // namespace kvd
