// Operation-history capture for consistency checking (DESIGN.md §15).
//
// A HistoryRecorder collects the client-observable truth of a run: for every
// operation, the invoke/return interval in simulated time, the issuing
// session, the operation itself, and the observed result — including the
// failure codes. That interval history is the sole input to the
// linearizability checker (linearizability.h) and the session-guarantee
// auditors (session_audit.h): nothing is read from server state, so the
// checkers judge exactly what a real client could have observed.
//
// Recording sits behind the KvEndpoint interface (RecordingEndpoint), so any
// topology — a single KvDirectServer's Client, a ReplicatedClient, a
// ClusterClient — records for free. The wrapper stamps the invoke at Enqueue
// time and the return when Flush() hands results back, which is coarser than
// the per-packet truth (a whole flush shares one return time). Coarse is
// sound: widening an operation's interval only admits *more* linearization
// orders, so the checker can miss a violation hidden inside one flush but can
// never report a false one. Drivers that need tight intervals (the nemesis
// scenario's split-phase flushes) call the recorder directly.
#ifndef SRC_CHECK_HISTORY_H_
#define SRC_CHECK_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/transport/kv_endpoint.h"

namespace kvd {

// Return timestamp of an operation that never returned (client abandoned the
// run with the op in flight). Such ops are concurrent with everything after
// their invoke.
inline constexpr SimTime kNoReturn = ~SimTime{0};

// One recorded operation: interval, issuer, request, observed response.
struct HistoryOp {
  uint64_t session = 0;        // recorder-assigned client session
  uint64_t op_in_session = 0;  // position within the session
  SimTime invoke = 0;
  SimTime ret = kNoReturn;
  bool returned = false;
  KvOperation op;
  KvResultMessage result;

  std::string ToString() const;  // one deterministic line
};

struct History {
  std::vector<HistoryOp> ops;  // in RecordInvoke order

  // Deterministic multi-line dump; 0 = no cap.
  std::string ToString(size_t max_ops = 0) const;
  // FNV-1a digest over a canonical serialization — two runs with identical
  // observable histories produce identical fingerprints.
  std::string Fingerprint() const;
};

class HistoryRecorder {
 public:
  // Allocates a session id for one client. Ops of one session are assumed to
  // be issued by one logical thread (session guarantees are audited per
  // session).
  uint64_t OpenSession() { return next_session_++; }

  // Records the invocation of `op` at time `now`; returns a handle for
  // RecordReturn. Ops that never get a RecordReturn stay pending
  // (ret = kNoReturn) and are treated as ambiguous by the checker.
  size_t RecordInvoke(uint64_t session, const KvOperation& op, SimTime now);

  // Stamps the observed result and return time of a pending op.
  void RecordReturn(size_t handle, const KvResultMessage& result, SimTime now);

  const History& history() const { return history_; }
  History& mutable_history() { return history_; }

 private:
  History history_;
  uint64_t next_session_ = 0;
  std::vector<uint64_t> ops_in_session_;
};

// KvEndpoint pass-through that records every Enqueue/Flush into a
// HistoryRecorder under one session. See the header comment for the interval
// coarseness argument.
class RecordingEndpoint : public KvEndpoint {
 public:
  RecordingEndpoint(KvEndpoint& inner, HistoryRecorder& recorder)
      : inner_(inner), recorder_(recorder), session_(recorder.OpenSession()) {}

  size_t Enqueue(KvOperation op) override {
    pending_.push_back(recorder_.RecordInvoke(session_, op, inner_.now()));
    return inner_.Enqueue(std::move(op));
  }

  std::vector<KvResultMessage> Flush() override {
    std::vector<KvResultMessage> results = inner_.Flush();
    const SimTime end = inner_.now();
    for (size_t i = 0; i < pending_.size() && i < results.size(); i++) {
      recorder_.RecordReturn(pending_[i], results[i], end);
    }
    pending_.clear();
    return results;
  }

  ReliableSender::Stats endpoint_stats() const override {
    return inner_.endpoint_stats();
  }
  SimTime now() const override { return inner_.now(); }
  bool Step() override { return inner_.Step(); }

  uint64_t session() const { return session_; }

 private:
  KvEndpoint& inner_;
  HistoryRecorder& recorder_;
  uint64_t session_;
  std::vector<size_t> pending_;  // recorder handles of the queued ops
};

}  // namespace kvd

#endif  // SRC_CHECK_HISTORY_H_
