// Per-key linearizability checker (Wing & Gong with memoized configurations).
//
// The checker decides whether a recorded History (history.h) is linearizable
// against the register+RMW model the store implements:
//
//   get(k)        -> value | kNotFound
//   put(k, v)     -> kOk, state := v
//   delete(k)     -> kOk (state := absent) | kNotFound (was absent)
//   fetch-add(k,Δ)-> original u64 | kNotFound; state := old + Δ
//                    (kUpdateScalar with function kFnAddU64)
//
// Linearizability is P-compositional: a history is linearizable iff its
// per-key projections are (Herlihy & Wing), so the checker runs one
// independent search per key — a 100k-op history over many keys checks in
// seconds because each search sees only its own key's ops.
//
// Per key it runs the Wing & Gong search as tightened by Lowe: repeatedly
// pick a *minimal* remaining operation (one whose invoke precedes every
// remaining operation's return — nothing is real-time-ordered before it),
// apply it to the model, and recurse; explored configurations (set of
// linearized ops + model state) are memoized so the search never revisits a
// failed frontier. The history is linearizable iff some order consumes every
// definite operation.
//
// Ambiguity rules (DESIGN.md §15): an operation whose observed result is
// kTimedOut or kDeadlineExceeded — or which never returned — may or may not
// have taken effect (the server may have executed it while the response was
// lost). Ambiguous *writes* stay in the history with an open-ended interval
// and the search branches both ways: linearize the effect anywhere after the
// invoke, or drop it entirely. Ambiguous *reads* constrain nothing and are
// discarded, as are definite no-effect rejections (kBusy, kOverloaded,
// kOutOfMemory, kInvalidArgument, kWrongShard, kMigrating): the server
// answered without executing. kNotFound is a definite answer and must match
// the model (state absent).
#ifndef SRC_CHECK_LINEARIZABILITY_H_
#define SRC_CHECK_LINEARIZABILITY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/check/history.h"

namespace kvd {

struct CheckOptions {
  // Search-work bound across the whole history (configurations = search
  // states entered). On exhaustion the verdict is kLimitExceeded, never a
  // false violation.
  uint64_t max_configurations = 20'000'000;
  // Ops printed per violating key in the report.
  size_t max_report_ops = 64;
  // Pre-history store contents (untimed warm-up Loads happen outside the
  // recorded history): the model's initial state for these keys. Keys not
  // listed start absent.
  std::map<std::vector<uint8_t>, std::vector<uint8_t>> initial_values;
};

enum class CheckStatus : uint8_t {
  kOk = 0,
  kViolation = 1,
  kLimitExceeded = 2,
};

constexpr const char* CheckStatusName(CheckStatus status) {
  switch (status) {
    case CheckStatus::kOk:
      return "ok";
    case CheckStatus::kViolation:
      return "violation";
    case CheckStatus::kLimitExceeded:
      return "limit-exceeded";
  }
  return "unknown";
}

// Verdict for one key that failed (or exhausted) its search.
struct KeyCheckReport {
  std::vector<uint8_t> key;
  CheckStatus status = CheckStatus::kOk;
  size_t ops = 0;              // ops checked for this key
  uint64_t configurations = 0;
  // Human-readable: the longest linearizable prefix found, the model state it
  // reached, why each minimal candidate fails there, and the key's
  // sub-history.
  std::string detail;
};

struct CheckReport {
  CheckStatus status = CheckStatus::kOk;
  std::vector<KeyCheckReport> keys;  // only non-ok keys
  size_t keys_checked = 0;
  size_t ops_checked = 0;      // definite + ambiguous ops fed to searches
  size_t ops_discarded = 0;    // ambiguous reads + definite no-effect failures
  size_t ops_unsupported = 0;  // opcodes outside the register+RMW model
  uint64_t configurations = 0;

  bool ok() const { return status == CheckStatus::kOk; }
  std::string ToString() const;  // deterministic (same history -> same bytes)
};

CheckReport CheckLinearizability(const History& history,
                                 const CheckOptions& options = CheckOptions());

}  // namespace kvd

#endif  // SRC_CHECK_LINEARIZABILITY_H_
