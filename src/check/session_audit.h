// Session-guarantee auditors (DESIGN.md §15).
//
// Cheap linear-time checks that complement the linearizability search with
// pinpoint first-violation reports: instead of "no linearization exists",
// each auditor names the exact op, session, and key where a specific
// guarantee first broke. All rules are sound under the ambiguity model of
// linearizability.h — a timed-out / deadline-exceeded write may or may not
// have taken effect, so every rule is phrased to be violated only when no
// assignment of the ambiguous writes can explain the observation.
//
// Keys are classified by the history's definite acked writes:
//   counter key  — every acked write is a fetch-add (kUpdateScalar+kFnAddU64);
//                  values are monotone, enabling strong per-session rules.
//   register key — every acked write is a put, all from one session
//                  (single-writer); reads are matched against that session's
//                  put values.
// Keys that fit neither shape (mixed ops, multi-writer registers, deletes)
// are skipped — the full checker still covers them.
#ifndef SRC_CHECK_SESSION_AUDIT_H_
#define SRC_CHECK_SESSION_AUDIT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/check/history.h"

namespace kvd {

struct AuditViolation {
  std::string auditor;  // "read-your-writes" | "monotonic-reads" | "exactly-once"
  uint64_t session = 0;
  std::vector<uint8_t> key;
  size_t hist_index = 0;  // the first op that exhibits the violation
  std::string detail;

  std::string ToString() const;
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  size_t counter_keys = 0;
  size_t register_keys = 0;
  size_t skipped_keys = 0;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;  // deterministic
};

// Read-your-writes and monotonic reads, per session:
//   counter keys — after a session's acked fetch-add observed original o with
//     delta d, every later definite read by that session must be >= o + d;
//     and a session's definite reads are non-decreasing in real time.
//   register keys (single writer) — a read by the writer must not observe a
//     definitely-overwritten put (an acked put p strictly followed by another
//     acked put q that returned before the read began), nor a never-written
//     value once an acked put precedes the read.
AuditReport AuditSessionGuarantees(const History& history);

// Exactly-once accounting for counter keys: with `base` the pre-history
// loaded value per key, the last quiescent definite read of each key must
// land in [base + sum(acked deltas), base + sum(acked + ambiguous deltas)].
// Below the floor, an acked fetch-add was lost; above the ceiling, some
// fetch-add was applied twice (a replay slipped past dedup). A key whose
// final read is missing or not quiescent (some write's interval extends past
// it) is skipped.
AuditReport AuditExactlyOnceCounters(
    const History& history,
    const std::map<std::vector<uint8_t>, uint64_t>& base);

}  // namespace kvd

#endif  // SRC_CHECK_SESSION_AUDIT_H_
