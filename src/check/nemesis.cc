#include "src/check/nemesis.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>

#include "src/cluster/cluster_client.h"
#include "src/cluster/coordinator.h"
#include "src/common/assert.h"
#include "src/common/random.h"

namespace kvd {
namespace {

void Appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

std::vector<uint8_t> KeyBytes(uint64_t id) {
  std::vector<uint8_t> key(8);
  std::memcpy(key.data(), &id, 8);
  return key;
}

std::vector<uint8_t> U64Value(uint64_t v) {
  std::vector<uint8_t> value(8);
  std::memcpy(value.data(), &v, 8);
  return value;
}

// Plays one script against a live cluster: schedules every event (with its
// heal) on the shared clock, guarded so that firing against a changed
// topology — a crashed replica, an already-running migration, a split map —
// degrades to a no-op instead of a crash. The guards are what keep every
// subset of a script runnable, which shrinking depends on.
class ScriptPlayer {
 public:
  ScriptPlayer(ClusterCoordinator& cluster, const FaultScript& script)
      : cluster_(cluster), script_(script) {}

  void ScheduleAll() {
    Simulator& sim = cluster_.simulator();
    const SimTime t0 = sim.Now();
    for (const NemesisEvent& event : script_.events) {
      sim.ScheduleAt(t0 + event.at, [this, event] { Fire(event); });
    }
  }

  // The latest instant any scheduled effect is still active.
  SimTime HealDeadline(SimTime t0) const {
    SimTime deadline = t0;
    for (const NemesisEvent& event : script_.events) {
      deadline = std::max(deadline, t0 + event.at + event.duration);
    }
    return deadline;
  }

 private:
  void Fire(const NemesisEvent& event) {
    Simulator& sim = cluster_.simulator();
    const uint32_t g = event.group % cluster_.num_groups();
    ReplicationGroup& group = cluster_.group(g);
    const uint32_t r = event.replica % group.num_replicas();
    switch (event.kind) {
      case NemesisEventKind::kCrashReplica: {
        uint32_t alive = 0;
        for (uint32_t i = 0; i < group.num_replicas(); i++) {
          alive += group.crashed(i) ? 0 : 1;
        }
        if (group.crashed(r) || alive <= 1) {
          return;  // never fail-stop the last replica standing
        }
        group.CrashReplica(r);
        sim.Schedule(event.duration, [&group, r] {
          if (group.crashed(r)) {
            group.RestartReplica(r);
          }
        });
        return;
      }
      case NemesisEventKind::kPartitionReplica: {
        NetworkModel& link = group.replication_network(r);
        link.SetPartitioned(true, true);
        link.SetPartitioned(false, true);
        sim.Schedule(event.duration, [&link] {
          link.SetPartitioned(true, false);
          link.SetPartitioned(false, false);
        });
        return;
      }
      case NemesisEventKind::kGrayReplica: {
        NetworkModel& link = group.replication_network(r);
        const uint64_t seed = script_.seed ^ (event.at * 0x9e3779b9ull);
        link.SetGrayLink(true, event.multiplier, event.probability, seed);
        link.SetGrayLink(false, event.multiplier, event.probability, seed);
        sim.Schedule(event.duration, [&link] {
          link.SetGrayLink(true, 1.0, 0.0);
          link.SetGrayLink(false, 1.0, 0.0);
        });
        return;
      }
      case NemesisEventKind::kClientLossBurst: {
        FaultInjector& faults = group.faults();
        faults.SetProbability(FaultSite::kNetDropToServer, event.probability);
        faults.SetProbability(FaultSite::kNetDropToClient, event.probability);
        sim.Schedule(event.duration, [&faults] {
          faults.SetProbability(FaultSite::kNetDropToServer, 0.0);
          faults.SetProbability(FaultSite::kNetDropToClient, 0.0);
        });
        return;
      }
      case NemesisEventKind::kCopyLossBurst: {
        FaultInjector& faults = cluster_.migration_faults();
        faults.SetProbability(FaultSite::kNetDropToServer, event.probability);
        faults.SetProbability(FaultSite::kNetDropToClient, event.probability);
        sim.Schedule(event.duration, [&faults] {
          faults.SetProbability(FaultSite::kNetDropToServer, 0.0);
          faults.SetProbability(FaultSite::kNetDropToClient, 0.0);
        });
        return;
      }
      case NemesisEventKind::kStartMigration: {
        if (cluster_.migration_active()) {
          return;
        }
        const uint32_t partitions = cluster_.shard_map().num_partitions();
        const uint32_t partition = event.partition % partitions;
        const uint32_t owner = cluster_.shard_map().OwnerOf(partition);
        uint32_t to = event.to_group % cluster_.num_groups();
        if (to == owner) {
          to = (to + 1) % cluster_.num_groups();
        }
        if (to == owner || !cluster_.group_active(to)) {
          return;
        }
        (void)cluster_.StartMigration(partition, to);
        return;
      }
      case NemesisEventKind::kSplitPartitions:
        (void)cluster_.SplitPartitions();
        return;
    }
  }

  ClusterCoordinator& cluster_;
  FaultScript script_;
};

}  // namespace

std::string NemesisEvent::ToString() const {
  std::string out;
  Appendf(out, "at=%" PRIu64 "us %s", at / kMicrosecond,
          NemesisEventKindName(kind));
  switch (kind) {
    case NemesisEventKind::kCrashReplica:
    case NemesisEventKind::kPartitionReplica:
      Appendf(out, " g%u r%u for %" PRIu64 "us", group, replica,
              duration / kMicrosecond);
      break;
    case NemesisEventKind::kGrayReplica:
      Appendf(out, " g%u r%u x%.1f loss=%.2f for %" PRIu64 "us", group,
              replica, multiplier, probability, duration / kMicrosecond);
      break;
    case NemesisEventKind::kClientLossBurst:
      Appendf(out, " g%u p=%.2f for %" PRIu64 "us", group, probability,
              duration / kMicrosecond);
      break;
    case NemesisEventKind::kCopyLossBurst:
      Appendf(out, " p=%.2f for %" PRIu64 "us", probability,
              duration / kMicrosecond);
      break;
    case NemesisEventKind::kStartMigration:
      Appendf(out, " partition %u -> g%u", partition, to_group);
      break;
    case NemesisEventKind::kSplitPartitions:
      break;
  }
  return out;
}

std::string FaultScript::ToString() const {
  std::string out;
  Appendf(out, "fault script (seed %" PRIu64 ", %zu events):\n", seed,
          events.size());
  for (const NemesisEvent& event : events) {
    out += "  " + event.ToString() + "\n";
  }
  return out;
}

FaultScript GenerateFaultScript(uint64_t seed,
                                const ClusterScenarioOptions& options) {
  FaultScript script;
  script.seed = seed;
  Rng rng(seed ^ 0x6e656d65736973ull);  // decorrelated from workload streams
  const SimTime horizon = options.event_horizon;
  auto uniform_time = [&](SimTime lo, SimTime hi) {
    return lo + rng.NextBelow(hi > lo ? hi - lo : 1);
  };

  // Always one migration trigger: ownership change is the path under test.
  {
    NemesisEvent e;
    e.kind = NemesisEventKind::kStartMigration;
    e.at = uniform_time(horizon / 8, horizon / 2);
    e.partition = static_cast<uint32_t>(rng.Next());
    e.to_group = static_cast<uint32_t>(rng.Next());
    script.events.push_back(e);
  }
  const uint32_t extra =
      options.max_script_events > 4
          ? 3 + static_cast<uint32_t>(rng.NextBelow(
                    options.max_script_events - 3))
          : 3;
  for (uint32_t i = 1; i < extra; i++) {
    NemesisEvent e;
    e.at = uniform_time(50 * kMicrosecond, horizon);
    e.group = static_cast<uint32_t>(rng.Next());
    e.replica = static_cast<uint32_t>(rng.Next());
    const uint64_t pick = rng.NextBelow(100);
    if (pick < 25) {
      e.kind = NemesisEventKind::kCrashReplica;
      e.duration = uniform_time(500 * kMicrosecond, 3 * kMillisecond);
    } else if (pick < 40) {
      e.kind = NemesisEventKind::kPartitionReplica;
      e.duration = uniform_time(300 * kMicrosecond, 2 * kMillisecond);
    } else if (pick < 55) {
      e.kind = NemesisEventKind::kGrayReplica;
      e.duration = uniform_time(500 * kMicrosecond, 3 * kMillisecond);
      e.multiplier = 2.0 + static_cast<double>(rng.NextBelow(7));
      e.probability = 0.05 + 0.25 * rng.NextDouble();
    } else if (pick < 70) {
      e.kind = NemesisEventKind::kClientLossBurst;
      e.duration = uniform_time(200 * kMicrosecond, 1200 * kMicrosecond);
      e.probability = 0.3 + 0.5 * rng.NextDouble();
    } else if (pick < 80) {
      e.kind = NemesisEventKind::kCopyLossBurst;
      e.duration = uniform_time(200 * kMicrosecond, 1200 * kMicrosecond);
      e.probability = 0.3 + 0.5 * rng.NextDouble();
    } else if (pick < 90) {
      e.kind = NemesisEventKind::kStartMigration;
      e.partition = static_cast<uint32_t>(rng.Next());
      e.to_group = static_cast<uint32_t>(rng.Next());
    } else {
      e.kind = NemesisEventKind::kSplitPartitions;
    }
    script.events.push_back(e);
  }
  std::stable_sort(script.events.begin(), script.events.end(),
                   [](const NemesisEvent& a, const NemesisEvent& b) {
                     return a.at < b.at;
                   });
  return script;
}

ScenarioOutcome RunClusterScenario(const ClusterScenarioOptions& options,
                                   const FaultScript& script) {
  ClusterConfig config;
  config.num_groups = options.num_groups;
  config.num_partitions = options.num_partitions;
  config.group.num_replicas = options.num_replicas;
  config.group.server.kvs_memory_bytes = 8 * kMiB;
  config.group.server.nic_dram.capacity_bytes = 1 * kMiB;
  // A small, slowly paced copy stream keeps the copy phase open for hundreds
  // of microseconds, so workload rounds (paced across the event horizon
  // below) genuinely overlap it: forwards race chunk installs, which is the
  // window the touched-key guard exists for.
  config.copy_chunk_kvs = 2;
  config.copy_bytes_per_sec = 1e6;
  config.test_bugs.disable_migration_touched_key_guard =
      options.inject_lost_update_bug;
  ClusterCoordinator cluster(config);
  Simulator& sim = cluster.simulator();

  // Keys spread round-robin over partitions, pre-loaded as counters.
  const KeyRouter router = cluster.router();
  std::vector<std::vector<uint8_t>> keys;
  std::map<std::vector<uint8_t>, uint64_t> base;
  uint64_t next_id = 0;
  for (uint32_t j = 0; j < options.num_keys; j++) {
    const uint32_t target = j % options.num_partitions;
    while (router.PartitionOf(KeyBytes(next_id)) != target) {
      next_id++;
    }
    std::vector<uint8_t> key = KeyBytes(next_id++);
    const uint64_t value = 1000 + j;
    KVD_CHECK(cluster.Load(key, U64Value(value)).ok());
    base[key] = value;
    keys.push_back(std::move(key));
  }

  // Recording clients on the shared clock (split-phase flushes, so their
  // packets genuinely interleave).
  HistoryRecorder recorder;
  ClusterClient::Options client_options;
  client_options.timeout = 200 * kMicrosecond;
  client_options.max_attempts = 16;
  std::vector<std::unique_ptr<ClusterClient>> clients;
  std::vector<uint64_t> sessions;
  for (uint32_t c = 0; c < options.num_clients; c++) {
    clients.push_back(
        std::make_unique<ClusterClient>(cluster, client_options));
    sessions.push_back(recorder.OpenSession());
  }

  ScriptPlayer player(cluster, script);
  const SimTime t0 = sim.Now();
  player.ScheduleAll();

  // Rounds are paced across the event horizon so the workload overlaps the
  // scripted faults — a burst that finishes before the first crash or
  // migration event would exercise nothing.
  const SimTime round_gap = options.event_horizon / (options.rounds + 1);
  Rng workload(script.seed ^ 0x776f726b6c6f6164ull);
  for (uint32_t round = 0; round < options.rounds; round++) {
    if (sim.Now() < t0 + round * round_gap) {
      sim.RunUntil(t0 + round * round_gap);
    }
    std::vector<std::vector<size_t>> handles(clients.size());
    for (size_t c = 0; c < clients.size(); c++) {
      for (uint32_t i = 0; i < options.ops_per_round; i++) {
        KvOperation op;
        op.key = keys[workload.NextBelow(keys.size())];
        if (workload.NextBool(options.get_ratio)) {
          op.opcode = Opcode::kGet;
        } else {
          op.opcode = Opcode::kUpdateScalar;
          op.function_id = kFnAddU64;
          op.param = 1 + workload.NextBelow(8);
        }
        handles[c].push_back(
            recorder.RecordInvoke(sessions[c], op, sim.Now()));
        clients[c]->Enqueue(std::move(op));
      }
    }
    for (auto& client : clients) {
      client->BeginFlush();
    }
    auto all_done = [&clients] {
      for (const auto& client : clients) {
        if (!client->flush_done()) {
          return false;
        }
      }
      return true;
    };
    while (!all_done() && sim.Step()) {
    }
    for (size_t c = 0; c < clients.size(); c++) {
      std::vector<KvResultMessage> results = clients[c]->TakeResults();
      KVD_CHECK(results.size() == handles[c].size());
      for (size_t i = 0; i < results.size(); i++) {
        recorder.RecordReturn(handles[c][i], results[i], sim.Now());
      }
    }
  }

  // Let every scheduled effect land and heal, then finish any migration.
  sim.RunUntil(player.HealDeadline(t0) + 1 * kMillisecond);
  if (cluster.migration_active()) {
    cluster.DriveMigrationToCompletion();
  }

  // Quiescent final reads: every key, retried in case a straggler window is
  // still settling. All recorded — a failed attempt is just more history.
  for (int attempt = 0; attempt < 5; attempt++) {
    std::vector<size_t> handles;
    for (const auto& key : keys) {
      KvOperation op;
      op.opcode = Opcode::kGet;
      op.key = key;
      handles.push_back(recorder.RecordInvoke(sessions[0], op, sim.Now()));
      clients[0]->Enqueue(std::move(op));
    }
    std::vector<KvResultMessage> results = clients[0]->Flush();
    bool all_ok = true;
    for (size_t i = 0; i < results.size(); i++) {
      recorder.RecordReturn(handles[i], results[i], sim.Now());
      all_ok = all_ok && results[i].code == ResultCode::kOk;
    }
    if (all_ok) {
      break;
    }
  }

  ScenarioOutcome outcome;
  outcome.history = recorder.history();
  outcome.fingerprint = outcome.history.Fingerprint();
  CheckOptions check = options.check;
  for (const auto& [key, value] : base) {
    check.initial_values[key] = U64Value(value);
  }
  outcome.linearizability = CheckLinearizability(outcome.history, check);
  outcome.session_audit = AuditSessionGuarantees(outcome.history);
  outcome.exactly_once = AuditExactlyOnceCounters(outcome.history, base);
  outcome.ok = outcome.linearizability.status != CheckStatus::kViolation &&
               outcome.session_audit.ok() && outcome.exactly_once.ok();

  outcome.report = script.ToString();
  Appendf(outcome.report, "history: %zu ops, fingerprint %s\n",
          outcome.history.ops.size(), outcome.fingerprint.c_str());
  outcome.report += outcome.linearizability.ToString();
  outcome.report += outcome.session_audit.ToString();
  outcome.report += outcome.exactly_once.ToString();
  return outcome;
}

FaultScript ShrinkFaultScript(const FaultScript& script, const ScenarioFn& fn,
                              uint32_t max_runs, uint32_t* runs_used,
                              std::string* final_report) {
  FaultScript current = script;
  uint32_t runs = 0;
  bool improved = true;
  while (improved && runs < max_runs) {
    improved = false;
    for (size_t i = 0; i < current.events.size() && runs < max_runs;) {
      FaultScript candidate = current;
      candidate.events.erase(candidate.events.begin() + i);
      runs++;
      if (!fn(candidate, nullptr)) {
        current = std::move(candidate);  // still fails without the event
        improved = true;
      } else {
        i++;
      }
    }
  }
  if (final_report != nullptr) {
    runs++;
    const bool still_fails = !fn(current, final_report);
    if (!still_fails) {
      // Greedy shrinking only removes events whose absence preserves the
      // failure, so the minimal script must still fail; flag it if not.
      *final_report += "\nWARNING: shrunk script no longer fails\n";
    }
  }
  if (runs_used != nullptr) {
    *runs_used = runs;
  }
  return current;
}

NemesisResult RunSeedMatrix(const NemesisOptions& options,
                            const ScenarioFn& fn) {
  NemesisResult result;
  for (uint32_t i = 0; i < options.num_seeds; i++) {
    const uint64_t seed = options.base_seed + i;
    FaultScript script = GenerateFaultScript(seed, options.scenario);
    result.seeds_run++;
    std::string report;
    if (fn(script, &report)) {
      continue;
    }
    result.ok = false;
    result.failing_seed = seed;
    result.original_script = script;
    result.shrunk_script =
        ShrinkFaultScript(script, fn, options.max_shrink_runs,
                          &result.shrink_runs, &result.failure_report);
    return result;
  }
  return result;
}

NemesisResult RunSeedMatrix(const NemesisOptions& options) {
  const ClusterScenarioOptions scenario = options.scenario;
  return RunSeedMatrix(
      options, [&scenario](const FaultScript& script, std::string* report) {
        ScenarioOutcome outcome = RunClusterScenario(scenario, script);
        if (report != nullptr) {
          *report = outcome.report;
        }
        return outcome.ok;
      });
}

std::string NemesisResult::ToString() const {
  std::string out;
  if (ok) {
    Appendf(out, "nemesis matrix: %u seeds, no violation\n", seeds_run);
    return out;
  }
  Appendf(out,
          "nemesis matrix: violation at seed %" PRIu64 " (after %u seeds)\n",
          failing_seed, seeds_run);
  Appendf(out, "original script: %zu events; shrunk to %zu in %u runs\n",
          original_script.events.size(), shrunk_script.events.size(),
          shrink_runs);
  out += "minimal reproducer:\n";
  out += failure_report;
  return out;
}

}  // namespace kvd
