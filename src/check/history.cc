#include "src/check/history.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "src/common/assert.h"

namespace kvd {
namespace {

void AppendHex(std::string& out, const std::vector<uint8_t>& bytes,
               size_t max_bytes = 16) {
  static const char kHex[] = "0123456789abcdef";
  const size_t n = std::min(bytes.size(), max_bytes);
  for (size_t i = 0; i < n; i++) {
    out.push_back(kHex[bytes[i] >> 4]);
    out.push_back(kHex[bytes[i] & 0xf]);
  }
  if (bytes.size() > max_bytes) {
    out += "..";
  }
}

void Appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string HistoryOp::ToString() const {
  std::string out;
  Appendf(out, "[s%" PRIu64 "#%" PRIu64 "] ", session, op_in_session);
  if (returned) {
    Appendf(out, "%" PRIu64 "..%" PRIu64 " ", invoke, ret);
  } else {
    Appendf(out, "%" PRIu64 "..pending ", invoke);
  }
  out += OpcodeName(op.opcode);
  out += " k=";
  AppendHex(out, op.key);
  if (op.opcode == Opcode::kPut) {
    out += " v=";
    AppendHex(out, op.value);
  } else if (op.opcode == Opcode::kUpdateScalar) {
    Appendf(out, " fn=%u d=%" PRIu64, op.function_id, op.param);
  }
  out += " -> ";
  if (!returned) {
    out += "?";
    return out;
  }
  out += ResultCodeName(result.code);
  if (result.code == ResultCode::kOk) {
    if (op.opcode == Opcode::kGet) {
      out += " v=";
      AppendHex(out, result.value);
    } else if (op.opcode == Opcode::kUpdateScalar) {
      Appendf(out, " orig=%" PRIu64, result.scalar);
    }
  }
  return out;
}

std::string History::ToString(size_t max_ops) const {
  std::string out;
  const size_t n =
      max_ops == 0 ? ops.size() : std::min(ops.size(), max_ops);
  for (size_t i = 0; i < n; i++) {
    Appendf(out, "%4zu ", i);
    out += ops[i].ToString();
    out += "\n";
  }
  if (n < ops.size()) {
    Appendf(out, "  ... %zu more ops elided\n", ops.size() - n);
  }
  return out;
}

std::string History::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64
  auto mix_byte = [&h](uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ull;
  };
  auto mix_u64 = [&](uint64_t v) {
    for (int i = 0; i < 8; i++) {
      mix_byte(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  auto mix_bytes = [&](const std::vector<uint8_t>& bytes) {
    mix_u64(bytes.size());
    for (uint8_t b : bytes) {
      mix_byte(b);
    }
  };
  mix_u64(ops.size());
  for (const HistoryOp& o : ops) {
    mix_u64(o.session);
    mix_u64(o.invoke);
    mix_u64(o.returned ? o.ret : kNoReturn);
    mix_byte(static_cast<uint8_t>(o.op.opcode));
    mix_bytes(o.op.key);
    mix_bytes(o.op.value);
    mix_u64(o.op.param);
    mix_byte(static_cast<uint8_t>(o.result.code));
    mix_bytes(o.result.value);
    mix_u64(o.result.scalar);
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return buf;
}

size_t HistoryRecorder::RecordInvoke(uint64_t session, const KvOperation& op,
                                     SimTime now) {
  KVD_CHECK_MSG(session < next_session_, "RecordInvoke on an unopened session");
  if (ops_in_session_.size() <= session) {
    ops_in_session_.resize(session + 1, 0);
  }
  HistoryOp rec;
  rec.session = session;
  rec.op_in_session = ops_in_session_[session]++;
  rec.invoke = now;
  rec.op = op;
  history_.ops.push_back(std::move(rec));
  return history_.ops.size() - 1;
}

void HistoryRecorder::RecordReturn(size_t handle,
                                   const KvResultMessage& result, SimTime now) {
  KVD_CHECK(handle < history_.ops.size());
  HistoryOp& rec = history_.ops[handle];
  KVD_CHECK_MSG(!rec.returned, "RecordReturn called twice for one op");
  rec.returned = true;
  rec.ret = now;
  rec.result = result;
  KVD_CHECK_MSG(rec.ret >= rec.invoke, "return precedes invoke");
}

}  // namespace kvd
