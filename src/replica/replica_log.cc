#include "src/replica/replica_log.h"

#include <algorithm>

#include "src/common/assert.h"

namespace kvd {

uint64_t ReplicaLog::EpochAt(uint64_t index) const {
  if (index == 0) {
    return 0;
  }
  if (index == base_) {
    return base_epoch_;
  }
  KVD_CHECK_MSG(Contains(index), "epoch lookup outside the stored log");
  return entries_[index - base_ - 1].epoch;
}

const LogEntry& ReplicaLog::At(uint64_t index) const {
  KVD_CHECK_MSG(Contains(index), "log lookup outside the stored log");
  return entries_[index - base_ - 1];
}

std::vector<LogEntry> ReplicaLog::Window(uint64_t first, uint32_t max_entries) const {
  std::vector<LogEntry> out;
  if (first <= base_ || first > end()) {
    KVD_CHECK_MSG(first > base_, "window starts below the trimmed base");
    return out;
  }
  const uint64_t last = std::min(end(), first + max_entries - 1);
  out.reserve(last - first + 1);
  for (uint64_t index = first; index <= last; index++) {
    out.push_back(entries_[index - base_ - 1]);
  }
  return out;
}

void ReplicaLog::Trim(uint64_t max_entries) {
  while (entries_.size() > max_entries) {
    base_epoch_ = entries_.front().epoch;
    entries_.pop_front();
    base_++;
  }
}

void ReplicaLog::ResetToSnapshot(uint64_t index, uint64_t epoch) {
  entries_.clear();
  base_ = index;
  base_epoch_ = epoch;
}

}  // namespace kvd
