// Primary-backup replication over N KvDirectServer instances (DESIGN.md §9).
//
// A ReplicationGroup turns N independent servers into one fault-tolerant
// key-value service on a single simulated clock:
//
//   - The primary executes client operations through its full timed pipeline,
//     appends every *effective* mutation (result kOk) to a monotonic
//     (epoch, index) log at retirement, and pushes log windows to backups over
//     per-replica replication links (checksummed PR 2 frames). Entries carry
//     the primary's computed result, so every replica stores an identical
//     session record for exactly-once retransmission handling across
//     failover.
//   - Backups append entries in log order and ack cumulatively, but apply an
//     entry to their store only once it is quorum-committed (the commit index
//     rides every append window). A backup's store therefore never shows a
//     write that could still be discarded — no dirty reads at backups. The
//     primary acknowledges a client write once a configurable quorum of
//     replicas (itself included) holds the covering log prefix.
//   - Heartbeats are empty append windows; they double as the retransmission
//     driver (cumulative acks make the protocol idempotent, so loss is healed
//     by the next window instead of per-message timers).
//   - Failover: a backup that misses heartbeats past failure_timeout (plus a
//     deterministic per-id stagger) campaigns with a fresh ballot epoch.
//     Every replica grants each ballot epoch at most once (Raft-style votes,
//     adopting the ballot as its current epoch on grant), and a campaign
//     succeeds only with grants from a majority of ALL replicas — independent
//     of the (possibly smaller) write quorum — so two concurrent coordinators
//     can never both win and at most one replica is ever promoted per epoch.
//     The coordinator promotes the most caught-up granter (ties to the lowest
//     id) at exactly the ballot epoch; a majority of grants intersects every
//     majority write quorum, so the winner holds every quorum-acked entry —
//     no acknowledged write is lost. The new primary appends a no-op barrier
//     entry of its own epoch so the commit index can advance over the
//     inherited tail (older entries commit only transitively through it).
//   - Catch-up: a lagging or rejoining backup replays log windows from its
//     last matching position; if its log diverged (a deposed primary's
//     unacked tail) or the needed entries were trimmed, the primary falls
//     back to a bounded-rate full-partition state transfer.
//
// Crashes are fail-stop with durable state: a crashed replica stops
// communicating (drops every inbound and outbound frame) but its local
// pipeline drains, and a restart rejoins as a backup with its log intact.
#ifndef SRC_REPLICA_REPLICATION_GROUP_H_
#define SRC_REPLICA_REPLICATION_GROUP_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "src/common/key_router.h"
#include "src/common/stats.h"
#include "src/core/kv_direct.h"
#include "src/replica/replica_log.h"
#include "src/replica/replica_wire.h"
#include "src/transport/frame_endpoint.h"

namespace kvd {

struct ReplicationConfig {
  uint32_t num_replicas = 3;
  // Replicas (primary included) that must hold a write before the client is
  // acknowledged. 0 selects a majority: num_replicas / 2 + 1. A quorum below
  // a majority trades durability for latency: acknowledged writes can be
  // lost if every holder crashes. Elections always require a majority
  // (ElectionQuorum) regardless, so a small write quorum can never cause
  // two primaries at the same epoch.
  uint32_t quorum = 0;

  // Applied to every replica. The group forces processor.max_backlog = 0:
  // backups must apply log entries in log order, never bounce them.
  ServerConfig server;
  // One inbound replication link per replica, on the shared clock. The
  // group's own FaultInjector is attached, so scripted drops can lag a
  // backup without perturbing the client-facing fault streams.
  NetworkConfig replication_network;
  // Group-level faults: FaultSite::kReplicaCrash (consulted once per alive
  // replica, in id order, each heartbeat tick) plus replication-link drops.
  FaultPlan faults;

  SimTime heartbeat_interval = 200 * kMicrosecond;
  // A backup that hears nothing from its primary for this long starts an
  // election.
  SimTime failure_timeout = 1 * kMillisecond;
  // How long an election coordinator collects log positions before picking
  // the winner.
  SimTime election_timeout = 400 * kMicrosecond;

  // Gray-failure demotion (overload control, DESIGN.md §12): a backup is
  // demoted out of the *commit* quorum when its acked position lags the
  // primary's log end by more than demote_lag_entries instantly, or by any
  // amount continuously for demote_grace (a gray peer under a trickle of
  // writes never builds a big lag — it just never reaches zero). The quorum
  // requirement relaxes by the demoted count, but never below
  // ElectionQuorum(), so durability still spans a majority. The peer keeps
  // receiving appends and is reinstated after staying fully caught up for
  // demote_grace (hysteresis: an asymmetric link heals and relapses; instant
  // reinstatement would flap every write back onto the gray path).
  // demote_lag_entries == 0 disables demotion entirely (the
  // pre-overload-control behavior).
  uint64_t demote_lag_entries = 0;
  SimTime demote_grace = 2 * kMillisecond;

  uint32_t max_append_entries = 64;  // entries per kAppend window
  // Older entries are trimmed beyond this; a peer needing them falls back to
  // state transfer.
  uint64_t max_log_entries = 1u << 16;
  uint32_t state_transfer_chunk_kvs = 64;
  double state_transfer_bytes_per_sec = 5e9;  // resync rate bound

  // Client replay cache per replica (same semantics as ServerConfig's).
  uint32_t replay_cache_entries = 4096;
  SimTime replay_retain_time = 100 * kMillisecond;
  // Replicated session-result records kept (oldest evicted first).
  uint32_t session_entries = 1u << 16;

  bool enable_tracing = false;

  // Group-level request tracing: one RequestTracer/FlightRecorder pair shared
  // by every replica (the per-server ones are bypassed), so a write's trace
  // follows it from the client through the primary's pipeline, the log, the
  // replication links, and the quorum wait. Off by default.
  bool enable_request_tracing = false;
  SloConfig slo;
  FlightRecorderConfig flight;

  uint32_t EffectiveQuorum() const {
    return quorum != 0 ? quorum : num_replicas / 2 + 1;
  }
  // Grants (coordinator included) a ballot needs before anyone is promoted.
  // Always a majority of all replicas: two majorities must intersect, and a
  // configured write quorum below a majority must not weaken election safety.
  uint32_t ElectionQuorum() const { return num_replicas / 2 + 1; }
};

class ReplicationGroup {
 public:
  // Owns its simulator unless `external_sim` puts several groups (shards) on
  // one clock. Replica 0 starts as primary at epoch 1.
  explicit ReplicationGroup(const ReplicationConfig& config,
                            Simulator* external_sim = nullptr);
  ~ReplicationGroup();

  ReplicationGroup(const ReplicationGroup&) = delete;
  ReplicationGroup& operator=(const ReplicationGroup&) = delete;

  // --- client surface ---
  // Disjoint 2^40 sequence spaces, unique across the whole group.
  uint64_t AcquireClientSequenceBase() { return ++next_client_id_ << 40; }
  // The replica's client-facing network (transport for DeliverClientFrame).
  NetworkModel& client_network(uint32_t replica_id);
  // The replica's *inbound* replication link — the wire its peers' messages
  // arrive on. Scripting a partition or gray link here (SetPartitioned /
  // SetGrayLink, to_server direction) degrades what this replica hears
  // without touching any client-facing path.
  NetworkModel& replication_network(uint32_t replica_id) {
    return *replicas_[replica_id]->repl_net;
  }
  // Delivers a framed GroupRequest to a replica. Pure-read requests execute
  // on any replica that has applied the request's watermark; requests with
  // writes execute on the primary and respond only after quorum replication.
  // Crashed replicas drop the frame (the client's timer covers it).
  void DeliverClientFrame(uint32_t replica_id, std::vector<uint8_t> packet,
                          std::function<void(std::vector<uint8_t>)> respond);

  // --- untimed convenience (warm-up fills, verification) ---
  // Loads a KV into every replica identically, below the log (pre-replication
  // state). Crashed replicas queue the mutation and reconcile on restart
  // (Replica::pending_state); live replicas can still refuse on capacity.
  Status Load(std::span<const uint8_t> key, std::span<const uint8_t> value);
  // Functional read on the current primary (reads only).
  KvResultMessage Execute(const KvOperation& op);

  // --- cluster control-plane hooks (src/cluster, DESIGN.md §14) ---
  // Shard gate: consulted for every *routed* client request (one whose
  // GroupRequest carries a partition) before any execution or redirect.
  // kServe admits the request; kWrongShard / kMigrating bounce it carrying
  // the decision's map context so the client can patch its cached shard map
  // (or back off through a cutover freeze). Bounces are never cached — the
  // next retransmission must re-evaluate against the then-current ownership.
  struct ShardGateDecision {
    enum class Action : uint8_t { kServe, kWrongShard, kMigrating };
    Action action = Action::kServe;
    uint64_t map_epoch = 0;
    uint32_t owner_group = 0;
    uint32_t num_partitions = 0;
  };
  using ShardGate = std::function<ShardGateDecision(
      uint64_t map_epoch, uint32_t partition, bool any_write)>;
  void SetShardGate(ShardGate gate) { shard_gate_ = std::move(gate); }

  // Per-partition load accounting: fired once per routed request at the
  // replica that actually serves it (after gate/redirect/stale-read checks,
  // so a bounced request is never double-counted).
  using LoadListener =
      std::function<void(uint32_t partition, uint32_t num_ops, bool any_write)>;
  void SetLoadListener(LoadListener listener) {
    load_listener_ = std::move(listener);
  }

  // Commit listener: fired at the acting primary, in log order, for each
  // entry as it first becomes quorum-committed there. Live migrations
  // dual-write committed effects through this hook; a write's client ack is
  // released only after its listener call returns, so "acked => forwarded"
  // holds at cutover. A new primary fires it only for entries it commits
  // past its own local commit index (earlier entries were forwarded by the
  // previous reign before their acks were released).
  using CommitListener = std::function<void(const LogEntry& entry)>;
  void SetCommitListener(CommitListener listener) {
    commit_listener_ = std::move(listener);
  }

  // Untimed per-replica delete below the log — Load's dual, used by the
  // migration cutover to drop the moved partition at the source group.
  Status Erase(std::span<const uint8_t> key);
  // Stores a session record on every non-crashed replica: a migrated write's
  // exactly-once record must keep answering retransmissions at the
  // destination group after cutover.
  void InstallSessionRecord(uint64_t sequence, uint16_t slot,
                            const KvResultMessage& result);
  // The primary's live KVs owned by `partition` (deterministic key order).
  std::vector<std::pair<std::vector<uint8_t>, std::vector<uint8_t>>>
  SnapshotPartitionKvs(const KeyRouter& router, uint32_t partition);
  // Session records of writes to `partition`, scanned from the primary's
  // log. Records of trimmed entries are not recoverable here; migrations
  // keep their window well inside max_log_entries.
  struct SessionExport {
    uint64_t sequence = 0;
    uint16_t slot = 0;
    KvResultMessage result;
  };
  std::vector<SessionExport> ExportPartitionSessions(const KeyRouter& router,
                                                     uint32_t partition) const;

  // --- fault control ---
  void CrashReplica(uint32_t id);
  void RestartReplica(uint32_t id);  // rejoins as a backup, log intact
  bool crashed(uint32_t id) const { return replicas_[id]->crashed; }

  // --- introspection ---
  uint32_t num_replicas() const { return static_cast<uint32_t>(replicas_.size()); }
  // The group's view of the current primary (updated at every promotion).
  uint32_t primary_id() const { return primary_view_; }
  bool is_primary(uint32_t id) const { return replicas_[id]->is_primary; }
  uint64_t epoch() const;
  uint64_t commit_index() const;
  // Highest log index whose effects the replica's store reflects. At the
  // primary this equals log_end (execute-then-log); at backups it trails the
  // commit index (entries apply only once quorum-committed).
  uint64_t applied_index(uint32_t id) const;
  uint64_t log_end(uint32_t id) const;
  KvDirectServer& replica(uint32_t id) { return *replicas_[id]->server; }
  Simulator& simulator() { return sim_; }
  const MetricRegistry& metrics() const { return metrics_; }
  EventTracer& tracer() { return tracer_; }
  FaultInjector& faults() { return *fault_; }
  RequestTracer& request_tracer() { return request_tracer_; }
  FlightRecorder& flight_recorder() { return flight_recorder_; }
  LatencyBreakdown& breakdown() { return breakdown_; }
  SloMonitor& slo_monitor() { return slo_monitor_; }
  const ReplicationConfig& config() const { return config_; }

  struct GroupStats {
    uint64_t appends_sent = 0;           // kAppend messages (incl. heartbeats)
    uint64_t entries_shipped = 0;        // log entries inside kAppend windows
    uint64_t entries_applied = 0;        // entries appended+applied at backups
    uint64_t append_acks = 0;
    uint64_t elections = 0;
    uint64_t failovers = 0;              // promotions installed
    uint64_t catchup_requests = 0;
    uint64_t state_transfers = 0;
    uint64_t state_transfer_bytes = 0;
    uint64_t state_transfer_kvs = 0;
    uint64_t snapshot_deferred_writes = 0;  // writes parked by drain-then-cut
    uint64_t crashes = 0;
    uint64_t restarts = 0;
    uint64_t stale_reads = 0;            // reads bounced below the watermark
    uint64_t redirects = 0;              // writes bounced off non-primaries
    uint64_t wrong_shard_bounces = 0;    // routed requests bounced kWrongShard
    uint64_t migrating_bounces = 0;      // routed writes bounced kMigrating
    uint64_t session_dedup_hits = 0;     // retransmits answered from sessions
    uint64_t replayed_responses = 0;     // retransmits answered from the cache
    uint64_t corrupt_client_frames = 0;
    uint64_t corrupt_replica_frames = 0;
    uint64_t stale_retransmits = 0;      // retransmits of in-flight requests
    uint64_t gray_demotions = 0;         // peers dropped from the commit quorum
    uint64_t gray_reinstatements = 0;    // demoted peers that caught back up
    uint64_t last_failover_downtime_ns = 0;
  };
  // By value: the replay/frame counters live in the per-replica transport
  // endpoints and are summed into the snapshot here.
  GroupStats stats() const;

  // Per-group latency histograms — exposed so multi-shard deployments can
  // Merge() them into cluster-wide distributions (exact bucket merge).
  const LatencyHistogram& propagation_lag_ns() const {
    return propagation_lag_ns_;
  }
  const LatencyHistogram& failover_downtime_ns() const {
    return failover_downtime_ns_;
  }
  const LatencyHistogram& commit_wait_ns() const { return commit_wait_ns_; }

 private:
  struct PendingAck {
    uint64_t needed_index = 0;
    uint64_t sequence = 0;
    SimTime appended_at = 0;  // log-append time (commit-wait histogram)
    std::vector<KvResultMessage> results;
    std::function<void(std::vector<uint8_t>)> respond;
  };

  struct Replica {
    uint32_t id = 0;
    std::unique_ptr<KvDirectServer> server;
    std::unique_ptr<NetworkModel> repl_net;  // inbound replication link
    // Client-facing terminus of the reliable channel: framing, checksum, and
    // replay dedup (src/transport). One per replica — a retransmission is
    // answered from the cache only on the replica that produced the response.
    std::unique_ptr<FrameEndpoint> endpoint;

    bool crashed = false;
    bool is_primary = false;
    uint64_t current_epoch = 1;
    // Highest ballot epoch this replica has granted a vote for (or adopted
    // from a primary). Each ballot epoch is granted at most once; always
    // >= current_epoch. This is what makes promotion unique per epoch.
    uint64_t voted_epoch = 1;
    uint32_t believed_primary = 0;
    SimTime last_primary_contact = 0;

    ReplicaLog log;
    uint64_t commit = 0;
    // Highest log index whose entry has been submitted to the store. Backups
    // apply at commit time (applied <= min(commit, log.end())); the primary
    // executes before logging, so its applied always equals log.end().
    uint64_t applied = 0;
    // First log index this replica appended as primary of its current
    // reign. The commit index only advances by counting to an index at or
    // past it (Raft's own-term commit rule); older entries commit
    // transitively.
    uint64_t first_own_index = 1;

    // Primary bookkeeping: per-peer confirmed position (cumulative acks;
    // commit counts these) and optimistic window start (re-aligned to
    // match+1 every heartbeat tick, which is what retransmits lost windows),
    // pending client responses awaiting quorum, and append times for the
    // propagation-lag histogram.
    std::vector<uint64_t> match;
    std::vector<uint64_t> next;
    std::vector<PendingAck> pending;
    std::map<uint64_t, SimTime> append_time;
    // Gray-failure tracking (primary bookkeeping, config.demote_lag_entries):
    // per-peer demoted flag, the start of the peer's current continuous
    // lagging stretch (0 = caught up), and the start of its current
    // continuous caught-up stretch (0 = lagging; drives reinstatement
    // hysteresis). Reset wholesale on every promotion — a new reign
    // re-observes its peers from scratch.
    std::vector<uint8_t> demoted;
    std::vector<SimTime> lag_since;
    std::vector<SimTime> ok_since;

    // Election coordinator state.
    struct ElectionReply {
      bool granted = false;       // vote for this coordinator's ballot epoch
      uint64_t header_epoch = 0;  // replier's current epoch
      uint64_t last_epoch = 0;    // replier's log tail position
      uint64_t last_index = 0;
    };
    bool election_active = false;
    uint64_t election_round = 0;
    uint64_t election_epoch = 0;  // the ballot this round campaigns for
    std::map<uint32_t, ElectionReply> election_replies;

    // Writes submitted to the timed pipeline but not yet retired. A snapshot
    // must not be cut while any are in flight: their effects are in the store
    // but not yet in the log, so the target would replay them twice.
    uint64_t inflight_ops = 0;

    // Outbound state transfer (primary side), one target at a time.
    bool sending_snapshot = false;
    uint32_t snapshot_target = 0;
    // Drain-then-cut: while a snapshot cut waits for the pipeline to
    // quiesce, new client writes are parked here instead of being admitted
    // (otherwise sustained load could postpone the cut forever). They are
    // executed in arrival order once the cut is taken, or dropped (the
    // client retries) if the primary crashes or is deposed first.
    struct DeferredWrite {
      uint64_t sequence = 0;
      std::vector<KvOperation> ops;
      std::function<void(std::vector<uint8_t>)> respond;
    };
    bool draining_for_snapshot = false;
    std::deque<DeferredWrite> deferred_writes;
    // Inbound state transfer (target side).
    bool receiving_snapshot = false;
    uint32_t expected_chunk = 0;

    // Shadow key set: the hash index has no enumeration, so the group tracks
    // live keys per replica for snapshotting (std::set for deterministic
    // order).
    std::set<std::vector<uint8_t>> keys;

    // Below-log state mutations (cluster Load/Erase) that arrived while this
    // replica was crashed: value = upsert, nullopt = erase. Applied on
    // restart, modeling recovery-time state reconciliation — a migration
    // cutover must not stall (or diverge) because one replica is down.
    std::map<std::vector<uint8_t>, std::optional<std::vector<uint8_t>>>
        pending_state;

    // Replicated session results: client sequence -> slot -> result, FIFO
    // evicted. Identical on every replica holding the same log prefix.
    std::map<uint64_t, std::map<uint16_t, KvResultMessage>> sessions;
    std::deque<uint64_t> session_order;
  };

  // --- client path ---
  void HandleClientRequest(Replica& rep, uint64_t sequence, GroupRequest request,
                           std::function<void(std::vector<uint8_t>)> respond);
  void ServeReads(Replica& rep, uint64_t sequence, std::vector<KvOperation> ops,
                  std::function<void(std::vector<uint8_t>)> respond);
  void ServeWrites(Replica& rep, uint64_t sequence, std::vector<KvOperation> ops,
                   std::function<void(std::vector<uint8_t>)> respond);
  void ExecuteWrites(Replica& rep, uint64_t sequence,
                     std::vector<KvOperation> ops,
                     std::function<void(std::vector<uint8_t>)> respond);
  void RespondWrite(Replica& rep, uint64_t sequence, uint64_t needed_index,
                    std::vector<KvResultMessage> results,
                    const std::function<void(std::vector<uint8_t>)>& respond,
                    SimTime appended_at = 0);
  void AppendEffectiveWrite(Replica& rep, uint64_t sequence, uint16_t slot,
                            const KvOperation& op, const KvResultMessage& result);
  void RecordSession(Replica& rep, uint64_t sequence, uint16_t slot,
                     const KvResultMessage& result);
  void TrackKey(Replica& rep, const KvOperation& op);
  void FinishResponse(Replica& rep, uint64_t sequence, GroupResponse response,
                      const std::function<void(std::vector<uint8_t>)>& respond,
                      bool cache);
  void AdmitReplay(Replica& rep, uint64_t sequence);
  void DropInFlight(Replica& rep);  // step-down / crash: forget pending work

  // --- replication path ---
  // `traces` (optional) records a kReplShip span per handle over the frame's
  // wire flight (append windows carrying traced writes).
  void SendReplicaMessage(uint32_t from, uint32_t to, const ReplicaMessage& msg,
                          const std::vector<uint64_t>* traces = nullptr);
  void OnReplicaFrame(uint32_t to, std::vector<uint8_t> packet);
  void OnAppend(Replica& rep, const ReplicaMessage& msg);
  void OnAppendAck(Replica& rep, const ReplicaMessage& msg);
  void OnPromoteQuery(Replica& rep, const ReplicaMessage& msg);
  void OnPromoteReply(Replica& rep, const ReplicaMessage& msg);
  void OnPromote(Replica& rep, const ReplicaMessage& msg);
  void OnCatchupRequest(Replica& rep, const ReplicaMessage& msg);
  void OnStateChunk(Replica& rep, const ReplicaMessage& msg);

  void PushAppends(Replica& primary);  // send a window to every peer
  void SendWindow(Replica& primary, uint32_t peer);
  void TryAdvanceCommit(Replica& primary);
  // Gray-failure watchdog (runs on the primary each tick): demotes peers
  // whose replication lag exceeded demote_lag_entries for demote_grace, and
  // reinstates demoted peers that caught back up.
  void EvaluateGrayPeers(Replica& primary);
  // Appends a received window to the log (skipping already-held entries);
  // application happens separately, at commit time.
  void AppendToLog(Replica& rep, const std::vector<LogEntry>& entries,
                   uint64_t first_index);
  // Submits log entries (applied, target] to the store in log order.
  void ApplyThrough(Replica& rep, uint64_t target);
  void ApplyCommitted(Replica& rep) {
    ApplyThrough(rep, std::min(rep.commit, rep.log.end()));
  }
  // Trims to max_log_entries but never past the applied cursor.
  void TrimLog(Replica& rep);
  void AdoptEpoch(Replica& rep, uint64_t epoch, uint32_t primary);
  void StepDown(Replica& rep);
  void Promote(Replica& rep, uint64_t new_epoch);
  void StartElection(Replica& rep);
  void FinishElection(Replica& rep);
  void RequestCatchup(Replica& rep, uint32_t to);
  void StartStateTransfer(Replica& primary, uint32_t target);
  // Waits for the primary's pipeline to quiesce — parking newly arriving
  // writes meanwhile (drain-then-cut) — then materializes the snapshot
  // chunks and starts streaming them.
  void BuildSnapshot(uint32_t primary_id, uint64_t transfer_epoch);
  // Ends a drain: executes the parked writes (or drops them if the replica
  // is no longer an alive primary; the clients retry).
  void ReleaseSnapshotDrain(Replica& rep);
  void SendNextChunk(uint32_t primary_id, uint64_t transfer_epoch,
                     std::shared_ptr<std::vector<ReplicaMessage>> chunks,
                     size_t next);
  // Deletes every tracked KV and resets log/sessions to empty: the clean
  // slate a state-transfer target starts from (also the abort path).
  void WipeState(Replica& rep);

  void Tick();
  void RegisterMetrics();
  Replica& Primary() { return *replicas_[primary_view_]; }

  ReplicationConfig config_;
  std::unique_ptr<Simulator> owned_sim_;
  Simulator& sim_;
  MetricRegistry metrics_;
  EventTracer tracer_{sim_};
  RequestTracer request_tracer_{sim_};
  LatencyBreakdown breakdown_;
  SloMonitor slo_monitor_{sim_};
  FlightRecorder flight_recorder_{sim_};
  std::unique_ptr<FaultInjector> fault_;
  ShardGate shard_gate_;
  LoadListener load_listener_;
  CommitListener commit_listener_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  uint32_t primary_view_ = 0;
  uint64_t next_client_id_ = 0;
  uint64_t next_repl_sequence_ = 0;
  // Set when the acting primary crashes; consumed by the next promotion to
  // measure failover downtime.
  SimTime failover_started_at_ = 0;
  bool failover_pending_ = false;
  GroupStats stats_;
  LatencyHistogram propagation_lag_ns_;
  LatencyHistogram failover_downtime_ns_;
  LatencyHistogram commit_wait_ns_;  // client write: log append -> quorum
  // Guards the self-rescheduling heartbeat tick against outliving the group
  // on an external simulator.
  std::shared_ptr<bool> liveness_ = std::make_shared<bool>(true);
};

}  // namespace kvd

#endif  // SRC_REPLICA_REPLICATION_GROUP_H_
