#include "src/replica/replication_group.h"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "src/common/assert.h"
#include "src/net/wire_format.h"
#include "src/transport/frame.h"

namespace kvd {
namespace {

constexpr char kTraceCategory[] = "replica";

ReplicaMessage MakeMessage(ReplicaMessageType type, uint64_t epoch, uint32_t sender) {
  ReplicaMessage msg;
  msg.type = type;
  msg.epoch = epoch;
  msg.sender = sender;
  return msg;
}

}  // namespace

ReplicationGroup::ReplicationGroup(const ReplicationConfig& config,
                                   Simulator* external_sim)
    : config_(config),
      owned_sim_(external_sim != nullptr ? nullptr : std::make_unique<Simulator>()),
      sim_(external_sim != nullptr ? *external_sim : *owned_sim_) {
  KVD_CHECK_MSG(config_.num_replicas >= 1, "a group needs at least one replica");
  KVD_CHECK_MSG(config_.EffectiveQuorum() >= 1 &&
                    config_.EffectiveQuorum() <= config_.num_replicas,
                "quorum must fit the replica count");
  tracer_.set_enabled(config_.enable_tracing);
  fault_ = std::make_unique<FaultInjector>(config_.faults);
  fault_->SetTracer(&tracer_);

  // One tracer/recorder pair for the whole group: a write's trace spans the
  // primary's pipeline, the replication links, and the quorum wait, and must
  // survive a mid-flight failover to another replica's server.
  request_tracer_.set_enabled(config_.enable_request_tracing);
  request_tracer_.SetBreakdown(&breakdown_);
  slo_monitor_.Configure(config_.slo);
  request_tracer_.SetSloMonitor(&slo_monitor_);
  flight_recorder_.Configure(config_.flight);
  flight_recorder_.set_enabled(config_.enable_request_tracing);
  flight_recorder_.SetRequestTracer(&request_tracer_);
  flight_recorder_.SetMetricRegistry(&metrics_);
  flight_recorder_.SetEventTracer(&tracer_);
  request_tracer_.set_on_complete(
      [this](const OpTrace& trace) { flight_recorder_.OnTraceComplete(trace); });
  slo_monitor_.set_on_breach([this](const std::string& detail) {
    flight_recorder_.Trigger(FlightTrigger::kSloBreach, detail);
  });
  fault_->SetFlightRecorder(&flight_recorder_);

  ServerConfig server_config = config_.server;
  // Backups apply log entries strictly in log order; a bounded backlog would
  // bounce entries with kBusy and break that.
  server_config.processor.max_backlog = 0;
  // Per-server tracing stays off; every replica is re-pointed at the group
  // tracer below so handles resolve identically on any replica.
  server_config.enable_request_tracing = false;
  for (uint32_t id = 0; id < config_.num_replicas; id++) {
    auto rep = std::make_unique<Replica>();
    rep->id = id;
    rep->server = std::make_unique<KvDirectServer>(server_config, &sim_);
    rep->server->UseRequestTracer(&request_tracer_);
    rep->server->UseFlightRecorder(&flight_recorder_);
    rep->repl_net =
        std::make_unique<NetworkModel>(sim_, config_.replication_network);
    rep->repl_net->SetFaultInjector(fault_.get());
    rep->repl_net->SetTracer(&tracer_);
    rep->repl_net->SetRequestTracer(&request_tracer_);
    rep->endpoint = std::make_unique<FrameEndpoint>(
        sim_, ReplayCache::Config{config_.replay_cache_entries,
                                  config_.replay_retain_time});
    rep->match.assign(config_.num_replicas, 0);
    rep->next.assign(config_.num_replicas, 1);
    rep->demoted.assign(config_.num_replicas, 0);
    rep->lag_since.assign(config_.num_replicas, 0);
    rep->ok_since.assign(config_.num_replicas, 0);
    replicas_.push_back(std::move(rep));
  }
  replicas_[0]->is_primary = true;
  RegisterMetrics();
  fault_->RegisterMetrics(metrics_);
  if (config_.enable_request_tracing) {
    // Keep the default exposition unchanged when tracing is off.
    request_tracer_.RegisterMetrics(metrics_);
    breakdown_.RegisterMetrics(metrics_);
    slo_monitor_.RegisterMetrics(metrics_);
    flight_recorder_.RegisterMetrics(metrics_);
  }

  std::shared_ptr<bool> alive = liveness_;
  sim_.ScheduleAt(sim_.Now() + config_.heartbeat_interval, [this, alive] {
    if (*alive) {
      Tick();
    }
  });
}

ReplicationGroup::~ReplicationGroup() { *liveness_ = false; }

NetworkModel& ReplicationGroup::client_network(uint32_t replica_id) {
  return replicas_[replica_id]->server->network();
}

uint64_t ReplicationGroup::epoch() const {
  return replicas_[primary_view_]->current_epoch;
}

uint64_t ReplicationGroup::commit_index() const {
  return replicas_[primary_view_]->commit;
}

uint64_t ReplicationGroup::applied_index(uint32_t id) const {
  // Entries are submitted to the processor in log order through a FIFO
  // admission queue, so everything at or below `applied` is ordered before
  // any later read on the same replica.
  return replicas_[id]->applied;
}

uint64_t ReplicationGroup::log_end(uint32_t id) const {
  return replicas_[id]->log.end();
}

Status ReplicationGroup::Load(std::span<const uint8_t> key,
                              std::span<const uint8_t> value) {
  for (const auto& rep : replicas_) {
    if (rep->crashed) {
      // Reconciled on restart: the replica is down, not divergent.
      rep->pending_state[std::vector<uint8_t>(key.begin(), key.end())] =
          std::vector<uint8_t>(value.begin(), value.end());
      continue;
    }
    Status status = rep->server->Load(key, value);
    if (!status.ok()) {
      return status;
    }
    rep->keys.insert(std::vector<uint8_t>(key.begin(), key.end()));
  }
  return Status::Ok();
}

KvResultMessage ReplicationGroup::Execute(const KvOperation& op) {
  KVD_CHECK_MSG(!IsWriteOpcode(op.opcode),
                "group Execute is read-only; writes go through the log");
  return Primary().server->Execute(op);
}

Status ReplicationGroup::Erase(std::span<const uint8_t> key) {
  KvOperation del;
  del.opcode = Opcode::kDelete;
  del.key.assign(key.begin(), key.end());
  for (const auto& rep : replicas_) {
    if (rep->crashed) {
      // Reconciled on restart — without this, a restarted replica would keep
      // a migrated-away key and resurrect it if the partition moved back.
      rep->pending_state[del.key] = std::nullopt;
      continue;
    }
    rep->server->Execute(del);  // kNotFound is fine: absent on this replica
    rep->keys.erase(del.key);
  }
  return Status::Ok();
}

void ReplicationGroup::InstallSessionRecord(uint64_t sequence, uint16_t slot,
                                            const KvResultMessage& result) {
  for (const auto& rep : replicas_) {
    if (!rep->crashed) {
      RecordSession(*rep, sequence, slot, result);
    }
  }
}

std::vector<std::pair<std::vector<uint8_t>, std::vector<uint8_t>>>
ReplicationGroup::SnapshotPartitionKvs(const KeyRouter& router,
                                       uint32_t partition) {
  std::vector<std::pair<std::vector<uint8_t>, std::vector<uint8_t>>> kvs;
  Replica& primary = Primary();
  for (const auto& key : primary.keys) {
    if (router.PartitionOf(key) != partition) {
      continue;
    }
    KvOperation get;
    get.opcode = Opcode::kGet;
    get.key = key;
    KvResultMessage value = primary.server->Execute(get);
    if (value.code != ResultCode::kOk) {
      continue;
    }
    kvs.emplace_back(key, std::move(value.value));
  }
  return kvs;
}

std::vector<ReplicationGroup::SessionExport>
ReplicationGroup::ExportPartitionSessions(const KeyRouter& router,
                                          uint32_t partition) const {
  std::vector<SessionExport> exported;
  const Replica& primary = *replicas_[primary_view_];
  for (uint64_t index = primary.log.base() + 1; index <= primary.log.end();
       index++) {
    const LogEntry& entry = primary.log.At(index);
    if (entry.client_sequence == 0 || !IsWriteOpcode(entry.op.opcode)) {
      continue;  // promotion barriers and reads leave no session record
    }
    if (router.PartitionOf(entry.op.key) != partition) {
      continue;
    }
    exported.push_back({entry.client_sequence, entry.slot, entry.result});
  }
  return exported;
}

void ReplicationGroup::CrashReplica(uint32_t id) {
  Replica& rep = *replicas_[id];
  if (rep.crashed) {
    return;
  }
  rep.crashed = true;
  stats_.crashes++;
  tracer_.Instant(kTraceCategory, "crash",
                  {{"replica", id}, {"epoch", rep.current_epoch}});
  if (rep.is_primary) {
    failover_started_at_ = sim_.Now();
    failover_pending_ = true;
  }
  DropInFlight(rep);
  rep.election_active = false;
  rep.election_replies.clear();
  rep.sending_snapshot = false;
  if (rep.receiving_snapshot) {
    // A partial snapshot is unusable; restart from a clean slate on rejoin.
    WipeState(rep);
    rep.receiving_snapshot = false;
    rep.expected_chunk = 0;
  }
}

void ReplicationGroup::RestartReplica(uint32_t id) {
  Replica& rep = *replicas_[id];
  if (!rep.crashed) {
    return;
  }
  rep.crashed = false;
  rep.is_primary = false;
  rep.election_active = false;
  rep.election_replies.clear();
  // Apply below-log mutations that arrived while down (cluster Load/Erase,
  // e.g. a migration cutover's partition sweep) before rejoining: recovery
  // must converge on the state the live replicas already hold.
  for (const auto& [key, value] : rep.pending_state) {
    if (value.has_value()) {
      KVD_CHECK_MSG(rep.server->Load(key, *value).ok(),
                    "restart reconciliation out of capacity");
      rep.keys.insert(key);
    } else {
      KvOperation del;
      del.opcode = Opcode::kDelete;
      del.key = key;
      rep.server->Execute(del);  // kNotFound is fine: never present here
      rep.keys.erase(key);
    }
  }
  rep.pending_state.clear();
  // Grace period: don't suspect the primary before hearing from it once.
  rep.last_primary_contact = sim_.Now();
  stats_.restarts++;
  tracer_.Instant(kTraceCategory, "restart",
                  {{"replica", id}, {"log_end", rep.log.end()}});
}

// --- client path ---

void ReplicationGroup::DeliverClientFrame(
    uint32_t replica_id, std::vector<uint8_t> packet,
    std::function<void(std::vector<uint8_t>)> respond) {
  Replica& rep = *replicas_[replica_id];
  if (rep.crashed) {
    return;  // the client's retransmission timer covers it
  }
  std::optional<Frame> frame = rep.endpoint->Accept(packet, respond);
  if (!frame.has_value()) {
    return;  // corrupt (dropped), replayed (answered), or still in flight
  }
  const uint64_t sequence = frame->sequence;
  Result<GroupRequest> request = DecodeGroupRequest(frame->payload);
  if (!request.ok()) {
    AdmitReplay(rep, sequence);
    KvResultMessage err;
    err.code = ResultCode::kInvalidArgument;
    err.epoch = static_cast<uint32_t>(rep.current_epoch);
    GroupResponse bad;
    bad.epoch = rep.current_epoch;
    bad.primary_id = rep.believed_primary;
    bad.results_payload = EncodeResults({err});
    FinishResponse(rep, sequence, std::move(bad), respond, true);
    return;
  }
  HandleClientRequest(rep, sequence, std::move(request.value()),
                      std::move(respond));
}

void ReplicationGroup::HandleClientRequest(
    Replica& rep, uint64_t sequence, GroupRequest request,
    std::function<void(std::vector<uint8_t>)> respond) {
  std::vector<KvOperation> ops;
  bool malformed = false;
  PacketParser parser(std::move(request.ops_payload));
  while (true) {
    auto next = parser.Next();
    if (!next.ok()) {
      malformed = true;
      break;
    }
    if (!next.value().has_value()) {
      break;
    }
    ops.push_back(std::move(*next.value()));
  }
  if (malformed || ops.empty()) {
    AdmitReplay(rep, sequence);
    KvResultMessage err;
    err.code = ResultCode::kInvalidArgument;
    err.epoch = static_cast<uint32_t>(rep.current_epoch);
    GroupResponse bad;
    bad.epoch = rep.current_epoch;
    bad.primary_id = rep.believed_primary;
    bad.results_payload = EncodeResults({err});
    FinishResponse(rep, sequence, std::move(bad), respond, true);
    return;
  }

  if (request_tracer_.enabled()) {
    // The handles were registered by the replicated client under this
    // sequence; the lookup is non-consuming, so redirects and retransmits
    // resolve to the same trace on whichever replica they land.
    for (size_t i = 0; i < ops.size(); i++) {
      ops[i].trace =
          request_tracer_.LookupOp(sequence, static_cast<uint32_t>(i));
    }
  }

  bool any_write = false;
  for (const KvOperation& op : ops) {
    any_write = any_write || IsWriteOpcode(op.opcode);
  }
  if (request.has_route && shard_gate_) {
    // The gate outranks the redirect check: a request for a partition this
    // group no longer owns must bounce toward the owning group, not toward
    // this group's primary.
    const ShardGateDecision decision =
        shard_gate_(request.map_epoch, request.partition, any_write);
    if (decision.action != ShardGateDecision::Action::kServe) {
      const bool wrong =
          decision.action == ShardGateDecision::Action::kWrongShard;
      (wrong ? stats_.wrong_shard_bounces : stats_.migrating_bounces)++;
      tracer_.Instant(kTraceCategory, wrong ? "wrong_shard" : "migrating",
                      {{"replica", rep.id},
                       {"partition", request.partition},
                       {"map_epoch", decision.map_epoch}});
      KvResultMessage bounce;
      bounce.code = wrong ? ResultCode::kWrongShard : ResultCode::kMigrating;
      bounce.epoch = static_cast<uint32_t>(rep.current_epoch);
      GroupResponse resp;
      resp.flags = wrong ? kGroupWrongShard : kGroupMigrating;
      resp.epoch = rep.current_epoch;
      resp.primary_id = rep.believed_primary;
      resp.map_epoch = decision.map_epoch;
      resp.owner_group = decision.owner_group;
      resp.num_partitions = decision.num_partitions;
      resp.results_payload = EncodeResults({bounce});
      FinishResponse(rep, sequence, std::move(resp), respond, false);
      return;
    }
  }
  if (any_write) {
    if (!rep.is_primary) {
      stats_.redirects++;
      tracer_.Instant(kTraceCategory, "redirect",
                      {{"replica", rep.id}, {"primary", rep.believed_primary}});
      GroupResponse resp;
      resp.flags = kGroupRedirect;
      resp.epoch = rep.current_epoch;
      resp.primary_id = rep.believed_primary;
      // Control responses are never cached: the next retransmission must be
      // re-evaluated against the then-current role.
      FinishResponse(rep, sequence, std::move(resp), respond, false);
      return;
    }
    for (const KvOperation& op : ops) {
      request_tracer_.Point(op.trace, TracePoint::kServerReceive);
    }
    if (request.has_route && load_listener_) {
      load_listener_(request.partition, static_cast<uint32_t>(ops.size()),
                     true);
    }
    ServeWrites(rep, sequence, std::move(ops), std::move(respond));
    return;
  }
  // Gate on the applied cursor: backups apply entries only once committed,
  // so a served read can never expose a write that might still be discarded.
  if (rep.receiving_snapshot || rep.applied < request.required_index) {
    stats_.stale_reads++;
    tracer_.Instant(kTraceCategory, "stale_read",
                    {{"replica", rep.id},
                     {"required", request.required_index},
                     {"applied", rep.applied}});
    GroupResponse resp;
    resp.flags = kGroupStaleRead;
    resp.epoch = rep.current_epoch;
    resp.primary_id = rep.believed_primary;
    FinishResponse(rep, sequence, std::move(resp), respond, false);
    return;
  }
  for (const KvOperation& op : ops) {
    request_tracer_.Point(op.trace, TracePoint::kServerReceive);
  }
  if (request.has_route && load_listener_) {
    load_listener_(request.partition, static_cast<uint32_t>(ops.size()), false);
  }
  ServeReads(rep, sequence, std::move(ops), std::move(respond));
}

void ReplicationGroup::ServeReads(
    Replica& rep, uint64_t sequence, std::vector<KvOperation> ops,
    std::function<void(std::vector<uint8_t>)> respond) {
  AdmitReplay(rep, sequence);
  struct ReadState {
    std::vector<KvResultMessage> results;
    size_t remaining = 0;
    std::function<void(std::vector<uint8_t>)> respond;
  };
  auto state = std::make_shared<ReadState>();
  state->results.resize(ops.size());
  state->remaining = ops.size();
  state->respond = std::move(respond);
  Replica* rp = &rep;
  for (size_t i = 0; i < ops.size(); i++) {
    rep.server->Submit(
        std::move(ops[i]), [this, rp, state, sequence, i](KvResultMessage result) {
          state->results[i] = std::move(result);
          if (--state->remaining > 0) {
            return;
          }
          if (rp->crashed) {
            return;  // response died with the replica
          }
          GroupResponse resp;
          resp.epoch = rp->current_epoch;
          resp.primary_id = rp->believed_primary;
          for (KvResultMessage& r : state->results) {
            r.epoch = static_cast<uint32_t>(rp->current_epoch);
          }
          resp.results_payload = EncodeResults(state->results);
          FinishResponse(*rp, sequence, std::move(resp), state->respond, true);
        });
  }
}

void ReplicationGroup::ServeWrites(
    Replica& rep, uint64_t sequence, std::vector<KvOperation> ops,
    std::function<void(std::vector<uint8_t>)> respond) {
  AdmitReplay(rep, sequence);
  if (rep.draining_for_snapshot) {
    // A snapshot cut is waiting for the pipeline to quiesce; admitting this
    // write now could postpone the cut indefinitely under sustained load.
    stats_.snapshot_deferred_writes++;
    rep.deferred_writes.push_back(
        {sequence, std::move(ops), std::move(respond)});
    return;
  }
  ExecuteWrites(rep, sequence, std::move(ops), std::move(respond));
}

void ReplicationGroup::ExecuteWrites(
    Replica& rep, uint64_t sequence, std::vector<KvOperation> ops,
    std::function<void(std::vector<uint8_t>)> respond) {
  struct WriteState {
    std::vector<KvResultMessage> results;
    size_t remaining = 0;
    uint64_t needed_index = 0;
    bool appended = false;
    SimTime appended_at = 0;
    std::function<void(std::vector<uint8_t>)> respond;
  };
  auto state = std::make_shared<WriteState>();
  state->results.resize(ops.size());
  state->respond = std::move(respond);

  // Replicated session records answer write slots that already executed —
  // possibly under a previous primary — without re-executing them. That is
  // what makes retransmission across failover exactly-once.
  std::vector<size_t> submit;
  auto session = rep.sessions.find(sequence);
  bool session_hit = false;
  for (size_t i = 0; i < ops.size(); i++) {
    if (IsWriteOpcode(ops[i].opcode) && session != rep.sessions.end()) {
      auto stored = session->second.find(static_cast<uint16_t>(i));
      if (stored != session->second.end()) {
        state->results[i] = stored->second;
        stats_.session_dedup_hits++;
        session_hit = true;
        continue;
      }
    }
    submit.push_back(i);
  }
  if (session_hit) {
    // The stored entries sit at or below the current log end; wait for the
    // whole present log to commit (conservative, but simple and safe).
    state->needed_index = rep.log.end();
  }

  Replica* rp = &rep;
  auto finish = [this, rp, sequence, state] {
    if (state->appended) {
      TryAdvanceCommit(*rp);  // a quorum of one commits immediately
    }
    if (rp->commit >= state->needed_index) {
      RespondWrite(*rp, sequence, state->needed_index,
                   std::move(state->results), state->respond,
                   state->appended_at);
    } else {
      PendingAck pending;
      pending.needed_index = state->needed_index;
      pending.sequence = sequence;
      pending.appended_at = state->appended_at;
      pending.results = std::move(state->results);
      pending.respond = state->respond;
      rp->pending.push_back(std::move(pending));
    }
    if (state->appended) {
      PushAppends(*rp);
    }
  };

  if (submit.empty()) {
    finish();
    return;
  }
  state->remaining = submit.size();
  for (size_t i : submit) {
    KvOperation op = ops[i];
    const bool is_write = IsWriteOpcode(op.opcode);
    if (is_write) {
      rep.inflight_ops++;
    }
    rep.server->Submit(
        ops[i], [this, rp, state, sequence, i, is_write, finish,
                 op = std::move(op)](KvResultMessage result) {
          if (is_write) {
            rp->inflight_ops--;
          }
          if (is_write && result.code == ResultCode::kOk) {
            AppendEffectiveWrite(*rp, sequence, static_cast<uint16_t>(i), op,
                                 result);
            state->needed_index = rp->log.end();
            state->appended = true;
            state->appended_at = sim_.Now();
          }
          state->results[i] = std::move(result);
          if (--state->remaining > 0) {
            return;
          }
          if (rp->crashed || !rp->is_primary) {
            return;  // crashed or deposed mid-request; the client retries
          }
          finish();
        });
  }
}

void ReplicationGroup::RespondWrite(
    Replica& rep, uint64_t sequence, uint64_t needed_index,
    std::vector<KvResultMessage> results,
    const std::function<void(std::vector<uint8_t>)>& respond,
    SimTime appended_at) {
  if (appended_at != 0) {
    commit_wait_ns_.Add(
        static_cast<uint64_t>((sim_.Now() - appended_at) / kNanosecond));
  }
  if (request_tracer_.enabled()) {
    for (size_t i = 0; i < results.size(); i++) {
      const uint64_t handle =
          request_tracer_.LookupOp(sequence, static_cast<uint32_t>(i));
      request_tracer_.Point(handle, TracePoint::kReplCommit);
      request_tracer_.Point(handle, TracePoint::kResponseSent);
    }
  }
  GroupResponse resp;
  resp.epoch = rep.current_epoch;
  resp.primary_id = rep.id;
  resp.assigned_index = needed_index;
  for (KvResultMessage& r : results) {
    r.epoch = static_cast<uint32_t>(rep.current_epoch);
  }
  resp.results_payload = EncodeResults(results);
  FinishResponse(rep, sequence, std::move(resp), respond, true);
}

void ReplicationGroup::AppendEffectiveWrite(Replica& rep, uint64_t sequence,
                                            uint16_t slot, const KvOperation& op,
                                            const KvResultMessage& result) {
  request_tracer_.Point(op.trace, TracePoint::kReplAppend);
  LogEntry entry;
  entry.epoch = rep.current_epoch;
  entry.client_sequence = sequence;
  entry.slot = slot;
  entry.op = op;
  // Backups re-execute the entry through their own timed pipeline; the
  // client's live trace must not collect those replica-local spans.
  entry.op.trace = 0;
  entry.result = result;
  rep.log.Append(std::move(entry));
  rep.append_time[rep.log.end()] = sim_.Now();
  rep.match[rep.id] = rep.log.end();
  rep.next[rep.id] = rep.log.end() + 1;
  rep.applied = rep.log.end();  // execute-then-log: effects already in store
  TrackKey(rep, op);
  RecordSession(rep, sequence, slot, result);
  TrimLog(rep);
}

void ReplicationGroup::RecordSession(Replica& rep, uint64_t sequence,
                                     uint16_t slot,
                                     const KvResultMessage& result) {
  auto [it, inserted] = rep.sessions.try_emplace(sequence);
  it->second[slot] = result;
  if (inserted) {
    rep.session_order.push_back(sequence);
    while (rep.session_order.size() > config_.session_entries) {
      rep.sessions.erase(rep.session_order.front());
      rep.session_order.pop_front();
    }
  }
}

void ReplicationGroup::TrackKey(Replica& rep, const KvOperation& op) {
  if (!IsWriteOpcode(op.opcode)) {
    return;  // reads (and the promotion barrier no-op) leave no key behind
  }
  if (op.opcode == Opcode::kDelete) {
    rep.keys.erase(op.key);
  } else {
    rep.keys.insert(op.key);
  }
}

void ReplicationGroup::FinishResponse(
    Replica& rep, uint64_t sequence, GroupResponse response,
    const std::function<void(std::vector<uint8_t>)>& respond, bool cache) {
  respond(rep.endpoint->Complete(sequence, EncodeGroupResponse(response), cache));
}

void ReplicationGroup::AdmitReplay(Replica& rep, uint64_t sequence) {
  rep.endpoint->Admit(sequence);
}

void ReplicationGroup::DropInFlight(Replica& rep) {
  rep.pending.clear();
  rep.append_time.clear();
  // Parked drain writes die with the reign; the clients' timers cover them.
  rep.draining_for_snapshot = false;
  rep.deferred_writes.clear();
  // In-flight replay entries die too: their executions will never respond.
  rep.endpoint->DropInFlight();
}

// --- replication path ---

void ReplicationGroup::SendReplicaMessage(uint32_t from, uint32_t to,
                                          const ReplicaMessage& msg,
                                          const std::vector<uint64_t>* traces) {
  if (replicas_[from]->crashed) {
    return;
  }
  std::vector<uint8_t> frame =
      FramePacket(++next_repl_sequence_, EncodeReplicaMessage(msg));
  std::shared_ptr<bool> alive = liveness_;
  auto deliver = [this, alive, to](std::vector<uint8_t> packet) {
    if (*alive) {
      OnReplicaFrame(to, std::move(packet));
    }
  };
  if (traces != nullptr) {
    replicas_[to]->repl_net->SendPayloadToServer(
        std::move(frame), std::move(deliver), *traces, SpanKind::kReplShip);
  } else {
    replicas_[to]->repl_net->SendPayloadToServer(std::move(frame),
                                                 std::move(deliver));
  }
}

void ReplicationGroup::OnReplicaFrame(uint32_t to, std::vector<uint8_t> packet) {
  Replica& rep = *replicas_[to];
  if (rep.crashed) {
    return;
  }
  Result<Frame> frame = ParseFrame(packet);
  if (!frame.ok()) {
    stats_.corrupt_replica_frames++;
    return;
  }
  Result<ReplicaMessage> decoded = DecodeReplicaMessage(frame.value().payload);
  if (!decoded.ok()) {
    stats_.corrupt_replica_frames++;
    return;
  }
  const ReplicaMessage& msg = decoded.value();
  switch (msg.type) {
    case ReplicaMessageType::kAppend:
      OnAppend(rep, msg);
      break;
    case ReplicaMessageType::kAppendAck:
      OnAppendAck(rep, msg);
      break;
    case ReplicaMessageType::kPromoteQuery:
      OnPromoteQuery(rep, msg);
      break;
    case ReplicaMessageType::kPromoteReply:
      OnPromoteReply(rep, msg);
      break;
    case ReplicaMessageType::kPromote:
      OnPromote(rep, msg);
      break;
    case ReplicaMessageType::kCatchupRequest:
      OnCatchupRequest(rep, msg);
      break;
    case ReplicaMessageType::kStateChunk:
      OnStateChunk(rep, msg);
      break;
  }
}

void ReplicationGroup::OnAppend(Replica& rep, const ReplicaMessage& msg) {
  if (msg.epoch < rep.current_epoch) {
    // Depose the stale primary: an ack carrying a higher epoch does it.
    ReplicaMessage ack = MakeMessage(ReplicaMessageType::kAppendAck,
                                     rep.current_epoch, rep.id);
    SendReplicaMessage(rep.id, msg.sender, ack);
    return;
  }
  AdoptEpoch(rep, msg.epoch, msg.sender);
  rep.last_primary_contact = sim_.Now();
  if (rep.receiving_snapshot) {
    return;  // the log is meaningless mid-transfer
  }
  if (rep.log.end() > msg.leader_end) {
    // Divergent tail: we were the deposed primary and applied entries the
    // new history will overwrite. Applied state cannot be rolled back
    // entry-wise, so ask for resync; the primary sees a position it cannot
    // validate and falls back to state transfer.
    RequestCatchup(rep, msg.sender);
    return;
  }
  const uint64_t prev = msg.first_index - 1;
  if (prev > rep.log.end()) {
    RequestCatchup(rep, msg.sender);  // gap: we missed earlier windows
    return;
  }
  if (prev >= rep.log.base() && rep.log.EpochAt(prev) != msg.prev_epoch) {
    RequestCatchup(rep, msg.sender);
    return;
  }
  for (size_t i = 0; i < msg.entries.size(); i++) {
    const uint64_t index = msg.first_index + i;
    if (rep.log.Contains(index) &&
        rep.log.EpochAt(index) != msg.entries[i].epoch) {
      RequestCatchup(rep, msg.sender);
      return;
    }
  }
  AppendToLog(rep, msg.entries, msg.first_index);
  rep.commit = std::max(rep.commit, std::min(msg.commit_index, rep.log.end()));
  ApplyCommitted(rep);
  TrimLog(rep);
  ReplicaMessage ack =
      MakeMessage(ReplicaMessageType::kAppendAck, rep.current_epoch, rep.id);
  ack.ack_index = rep.log.end();
  SendReplicaMessage(rep.id, msg.sender, ack);
}

void ReplicationGroup::OnAppendAck(Replica& rep, const ReplicaMessage& msg) {
  if (msg.epoch > rep.current_epoch) {
    // We were deposed while our append was in flight. The acker knows the
    // newer epoch; point redirects at it until the new primary's heartbeat
    // arrives.
    rep.current_epoch = msg.epoch;
    rep.voted_epoch = std::max(rep.voted_epoch, msg.epoch);
    rep.believed_primary = msg.sender;
    if (rep.is_primary) {
      StepDown(rep);
    }
    return;
  }
  if (!rep.is_primary || msg.epoch < rep.current_epoch) {
    return;
  }
  stats_.append_acks++;
  rep.match[msg.sender] = std::max(rep.match[msg.sender], msg.ack_index);
  rep.next[msg.sender] = std::max(rep.next[msg.sender], msg.ack_index + 1);
  TryAdvanceCommit(rep);
}

void ReplicationGroup::OnPromoteQuery(Replica& rep, const ReplicaMessage& msg) {
  const uint64_t ballot = msg.new_epoch;
  // Grant each ballot epoch at most once, ever: voted_epoch is monotonic, so
  // two coordinators campaigning for the same epoch split the vote and at
  // most one can reach a majority. A replica mid-snapshot cannot lead and
  // must not decide elections with its meaningless log position.
  const bool granted = !rep.receiving_snapshot && ballot > rep.voted_epoch;
  if (granted) {
    rep.voted_epoch = ballot;
    if (ballot > rep.current_epoch) {
      // Raft currentTerm rule: adopting the ballot stops us from acking (and
      // thus committing) appends of any older primary after our vote — the
      // coordinator decides on the log positions we reported at grant time.
      rep.current_epoch = ballot;
      if (rep.is_primary) {
        StepDown(rep);
      }
    }
    // Abandon any own lower ballot and give this one a full timeout.
    rep.election_active = false;
    rep.election_replies.clear();
    rep.last_primary_contact = sim_.Now();
  }
  ReplicaMessage reply =
      MakeMessage(ReplicaMessageType::kPromoteReply, rep.current_epoch, rep.id);
  reply.new_epoch = ballot;
  reply.granted = granted;
  reply.last_epoch = rep.receiving_snapshot ? 0 : rep.log.EpochAt(rep.log.end());
  reply.last_index = rep.receiving_snapshot ? 0 : rep.log.end();
  SendReplicaMessage(rep.id, msg.sender, reply);
}

void ReplicationGroup::OnPromoteReply(Replica& rep, const ReplicaMessage& msg) {
  if (!rep.election_active || msg.new_epoch != rep.election_epoch) {
    return;  // no campaign, or a vote for a previous ballot of ours
  }
  rep.election_replies[msg.sender] = Replica::ElectionReply{
      msg.granted, msg.epoch, msg.last_epoch, msg.last_index};
}

void ReplicationGroup::OnPromote(Replica& rep, const ReplicaMessage& msg) {
  Promote(rep, msg.new_epoch);
}

void ReplicationGroup::OnCatchupRequest(Replica& rep, const ReplicaMessage& msg) {
  if (!rep.is_primary) {
    return;
  }
  if (rep.sending_snapshot && rep.snapshot_target == msg.sender) {
    return;  // already resyncing this peer
  }
  const uint64_t last = msg.last_index;
  const bool matches = last >= rep.log.base() && last <= rep.log.end() &&
                       rep.log.EpochAt(last) == msg.last_epoch;
  if (!matches) {
    StartStateTransfer(rep, msg.sender);
    return;
  }
  rep.match[msg.sender] = std::max(rep.match[msg.sender], last);
  rep.next[msg.sender] = last + 1;
  SendWindow(rep, msg.sender);
  TryAdvanceCommit(rep);
}

void ReplicationGroup::OnStateChunk(Replica& rep, const ReplicaMessage& msg) {
  if (msg.epoch < rep.current_epoch) {
    return;
  }
  AdoptEpoch(rep, msg.epoch, msg.sender);
  rep.last_primary_contact = sim_.Now();  // no elections mid-transfer
  if (!rep.receiving_snapshot) {
    if ((msg.chunk_flags & kStateChunkFirst) == 0) {
      return;  // stray chunk of an aborted transfer
    }
    if (rep.inflight_ops > 0) {
      // Earlier log entries are still in the timed pipeline; wiping now would
      // let them retire on top of the snapshot and resurrect stale values.
      // Drop the transfer: no appends flow here meanwhile, so the pipeline
      // drains and the primary's next window re-initiates it.
      return;
    }
    WipeState(rep);
    rep.receiving_snapshot = true;
    rep.expected_chunk = 0;
  }
  if (msg.chunk_seq != rep.expected_chunk) {
    // A chunk was lost or reordered. Abort back to a clean empty state; the
    // primary's next append window triggers a fresh catch-up or transfer.
    WipeState(rep);
    rep.receiving_snapshot = false;
    rep.expected_chunk = 0;
    return;
  }
  rep.expected_chunk++;
  for (const auto& [key, value] : msg.kvs) {
    KvOperation put;
    put.opcode = Opcode::kPut;
    put.key = key;
    put.value = value;
    if (rep.server->Execute(put).code == ResultCode::kOk) {
      rep.keys.insert(key);
    }
  }
  if ((msg.chunk_flags & kStateChunkLast) != 0) {
    rep.log.ResetToSnapshot(msg.snapshot_index, msg.snapshot_epoch);
    rep.commit = msg.snapshot_index;
    rep.applied = msg.snapshot_index;  // the snapshot IS the applied state
    rep.receiving_snapshot = false;
    rep.expected_chunk = 0;
    tracer_.Instant(kTraceCategory, "snapshot_installed",
                    {{"replica", rep.id}, {"index", msg.snapshot_index}});
    RequestCatchup(rep, msg.sender);  // resume appends past the snapshot
  }
}

void ReplicationGroup::PushAppends(Replica& primary) {
  for (uint32_t peer = 0; peer < num_replicas(); peer++) {
    if (peer == primary.id ||
        (primary.sending_snapshot && primary.snapshot_target == peer)) {
      continue;
    }
    SendWindow(primary, peer);
  }
}

void ReplicationGroup::SendWindow(Replica& primary, uint32_t peer) {
  const uint64_t first = primary.next[peer];
  if (first <= primary.log.base()) {
    // The entries this peer needs were trimmed: only a snapshot can help.
    StartStateTransfer(primary, peer);
    return;
  }
  KVD_CHECK(first <= primary.log.end() + 1);
  ReplicaMessage msg =
      MakeMessage(ReplicaMessageType::kAppend, primary.current_epoch, primary.id);
  msg.first_index = first;
  msg.prev_epoch = primary.log.EpochAt(first - 1);
  msg.commit_index = primary.commit;
  msg.leader_end = primary.log.end();
  msg.entries = primary.log.Window(first, config_.max_append_entries);
  primary.next[peer] = first + msg.entries.size();
  stats_.appends_sent++;
  stats_.entries_shipped += msg.entries.size();
  std::vector<uint64_t> traces;
  if (request_tracer_.enabled()) {
    for (const LogEntry& entry : msg.entries) {
      if (entry.client_sequence == 0) {
        continue;  // promotion barrier
      }
      const uint64_t handle =
          request_tracer_.LookupOp(entry.client_sequence, entry.slot);
      if (handle != 0) {
        traces.push_back(handle);
      }
    }
  }
  SendReplicaMessage(primary.id, peer, msg,
                     traces.empty() ? nullptr : &traces);
}

void ReplicationGroup::TryAdvanceCommit(Replica& primary) {
  if (!primary.is_primary) {
    return;
  }
  std::vector<uint64_t> positions = primary.match;
  std::sort(positions.begin(), positions.end(), std::greater<uint64_t>());
  uint32_t quorum = config_.EffectiveQuorum();
  if (config_.demote_lag_entries > 0) {
    // Gray degradation: demoted peers are discounted from the commit quorum,
    // but never below the election majority — a committed write must still
    // intersect every future election, or failover could lose it.
    uint32_t demoted_count = 0;
    for (const uint8_t flag : primary.demoted) {
      demoted_count += flag;
    }
    const uint32_t floor_quorum = config_.ElectionQuorum();
    quorum = quorum > demoted_count
                 ? std::max(quorum - demoted_count, floor_quorum)
                 : floor_quorum;
  }
  const uint64_t candidate = positions[quorum - 1];
  if (candidate <= primary.commit) {
    return;
  }
  if (candidate < primary.first_own_index) {
    // Raft's commit rule: never commit inherited entries by counting
    // replicas — a quorum on an old-epoch index can still be overwritten by
    // a rival's later election. The promotion barrier at first_own_index
    // commits the whole inherited prefix with it once it reaches quorum.
    return;
  }
  for (auto it = primary.append_time.begin();
       it != primary.append_time.end() && it->first <= candidate;) {
    propagation_lag_ns_.Add(
        static_cast<uint64_t>((sim_.Now() - it->second) / kNanosecond));
    it = primary.append_time.erase(it);
  }
  const uint64_t previous_commit = primary.commit;
  primary.commit = candidate;
  if (commit_listener_) {
    // Fire before releasing pending client acks: a live migration forwards
    // each committed effect inside the listener, so by the time the client
    // sees the ack the destination group already holds the write.
    for (uint64_t index = previous_commit + 1; index <= candidate; index++) {
      if (primary.log.Contains(index)) {
        commit_listener_(primary.log.At(index));
      }
    }
  }
  std::vector<PendingAck> ready;
  std::vector<PendingAck> still;
  for (PendingAck& pending : primary.pending) {
    if (pending.needed_index <= primary.commit) {
      ready.push_back(std::move(pending));
    } else {
      still.push_back(std::move(pending));
    }
  }
  primary.pending = std::move(still);
  for (PendingAck& pending : ready) {
    RespondWrite(primary, pending.sequence, pending.needed_index,
                 std::move(pending.results), pending.respond,
                 pending.appended_at);
  }
}

void ReplicationGroup::EvaluateGrayPeers(Replica& primary) {
  if (config_.demote_lag_entries == 0 || !primary.is_primary) {
    return;
  }
  const SimTime now = sim_.Now();
  bool demoted_someone = false;
  for (uint32_t peer = 0; peer < num_replicas(); peer++) {
    if (peer == primary.id) {
      continue;
    }
    const uint64_t lag = primary.log.end() - primary.match[peer];
    if (lag == 0) {
      primary.lag_since[peer] = 0;
      if (primary.demoted[peer]) {
        // Reinstate only after a full grace window of being caught up:
        // hysteresis keeps a flapping gray link from dragging every other
        // write back onto the slow path.
        if (primary.ok_since[peer] == 0) {
          primary.ok_since[peer] = now;
        } else if (now - primary.ok_since[peer] >= config_.demote_grace) {
          primary.demoted[peer] = 0;
          primary.ok_since[peer] = 0;
          stats_.gray_reinstatements++;
          tracer_.Instant(kTraceCategory, "gray_reinstate", {{"peer", peer}});
        }
      }
      continue;
    }
    primary.ok_since[peer] = 0;
    if (primary.lag_since[peer] == 0) {
      primary.lag_since[peer] = now;  // grace clock starts
    }
    // Demote on a burst (lag beyond the entry bound) immediately once
    // observed past the grace clock start, or on a stall: any nonzero lag
    // held through a full grace window. A gray peer under a trickle of
    // writes never builds a large lag — it just never reaches zero.
    const bool big_lag = lag > config_.demote_lag_entries;
    const bool stalled = now - primary.lag_since[peer] >= config_.demote_grace;
    if (!primary.demoted[peer] && (big_lag || stalled)) {
      // The peer is gray (slow, lossy, or partitioned — the primary cannot
      // tell which). Stop counting it toward commit so healthy writes stop
      // waiting on it.
      primary.demoted[peer] = 1;
      stats_.gray_demotions++;
      demoted_someone = true;
      tracer_.Instant(kTraceCategory, "gray_demote",
                      {{"peer", peer}, {"lag", lag}});
    }
  }
  if (demoted_someone) {
    // The relaxed quorum may already be satisfied by the healthy peers.
    TryAdvanceCommit(primary);
  }
}

void ReplicationGroup::AppendToLog(Replica& rep,
                                   const std::vector<LogEntry>& entries,
                                   uint64_t first_index) {
  const uint64_t start = rep.log.end() + 1;
  for (size_t i = 0; i < entries.size(); i++) {
    if (first_index + i < start) {
      continue;  // duplicate from a retransmitted window
    }
    rep.log.Append(entries[i]);
  }
}

void ReplicationGroup::ApplyThrough(Replica& rep, uint64_t target) {
  Replica* rp = &rep;
  while (rep.applied < target) {
    const LogEntry& entry = rep.log.At(rep.applied + 1);
    rep.inflight_ops++;
    // Control class: replication applies are exempt from every shedding
    // policy — dropping one would diverge this store from the log.
    rep.server->Submit(entry.op, [rp](KvResultMessage) { rp->inflight_ops--; },
                       OpClass::kControl);
    TrackKey(rep, entry.op);
    if (entry.client_sequence != 0) {  // promotion barriers carry no session
      RecordSession(rep, entry.client_sequence, entry.slot, entry.result);
    }
    stats_.entries_applied++;
    rep.applied++;
  }
}

void ReplicationGroup::TrimLog(Replica& rep) {
  // Never trim past the applied cursor: unapplied committed entries must
  // stay replayable locally (apply-at-commit keeps applied <= end).
  rep.log.Trim(std::max<uint64_t>(config_.max_log_entries,
                                  rep.log.end() - rep.applied));
}

void ReplicationGroup::AdoptEpoch(Replica& rep, uint64_t epoch, uint32_t primary) {
  if (epoch > rep.current_epoch) {
    rep.current_epoch = epoch;
    if (rep.is_primary) {
      StepDown(rep);
    }
  }
  rep.voted_epoch = std::max(rep.voted_epoch, rep.current_epoch);
  rep.believed_primary = primary;
  rep.election_active = false;
  rep.election_replies.clear();
}

void ReplicationGroup::StepDown(Replica& rep) {
  rep.is_primary = false;
  rep.sending_snapshot = false;
  // Forget quorum-waiting responses and in-flight replay entries: every
  // retransmission must be re-evaluated (and redirected) by the new history.
  DropInFlight(rep);
  tracer_.Instant(kTraceCategory, "step_down",
                  {{"replica", rep.id}, {"epoch", rep.current_epoch}});
}

void ReplicationGroup::Promote(Replica& rep, uint64_t new_epoch) {
  // A self-promoting candidate already adopted the ballot as its
  // current_epoch, so equality is valid here; an already-installed primary
  // re-receiving the same kPromote must not re-run the barrier append.
  if (new_epoch < rep.current_epoch ||
      (rep.is_primary && new_epoch == rep.current_epoch) ||
      rep.receiving_snapshot) {
    return;  // stale or duplicate promotion, or a partial snapshot
  }
  rep.voted_epoch = std::max(rep.voted_epoch, new_epoch);
  rep.current_epoch = new_epoch;
  rep.is_primary = true;
  rep.believed_primary = rep.id;
  rep.election_active = false;
  rep.election_replies.clear();
  rep.sending_snapshot = false;
  // Apply the inherited tail (a backup's applied cursor trails its log end),
  // then append a no-op barrier in the new epoch. The barrier is what lets
  // commit advance over inherited entries: TryAdvanceCommit only counts
  // own-epoch indices (Raft's commit rule), so without a fresh entry a
  // write-free reign could never confirm — or serve — the tail it inherited.
  ApplyThrough(rep, rep.log.end());
  LogEntry barrier;
  barrier.epoch = new_epoch;
  barrier.client_sequence = 0;  // no originating client; sessions skip it
  barrier.op.opcode = Opcode::kGet;
  barrier.op.key.assign(8, 0);
  barrier.result.code = ResultCode::kOk;
  rep.log.Append(std::move(barrier));
  rep.first_own_index = rep.log.end();
  ApplyThrough(rep, rep.log.end());
  // Assume nothing about the peers: confirmed positions restart at zero
  // (commit is preserved — never regressed) while windows start optimistically
  // at our end; the first ack or catch-up request corrects either.
  rep.match.assign(num_replicas(), 0);
  rep.match[rep.id] = rep.log.end();
  rep.next.assign(num_replicas(), rep.log.end() + 1);
  rep.append_time.clear();
  // A new reign re-observes peer health from scratch: inherited demotions
  // would let a stale judgement shrink the new primary's quorum.
  rep.demoted.assign(num_replicas(), 0);
  rep.lag_since.assign(num_replicas(), 0);
  rep.ok_since.assign(num_replicas(), 0);
  primary_view_ = rep.id;
  stats_.failovers++;
  if (failover_pending_) {
    const uint64_t downtime_ns = static_cast<uint64_t>(
        (sim_.Now() - failover_started_at_) / kNanosecond);
    failover_downtime_ns_.Add(downtime_ns);
    stats_.last_failover_downtime_ns = downtime_ns;
    failover_pending_ = false;
  }
  tracer_.Instant(kTraceCategory, "promote",
                  {{"replica", rep.id}, {"epoch", new_epoch}});
  PushAppends(rep);
  TryAdvanceCommit(rep);
}

void ReplicationGroup::StartElection(Replica& rep) {
  rep.election_active = true;
  rep.election_replies.clear();
  const uint64_t round = ++rep.election_round;
  // Fresh ballot, offset by replica id so simultaneous candidates (the
  // deterministic clock offers no randomized timeouts) propose distinct
  // epochs: after at most one collision their voted_epochs equalize and the
  // id offset separates every later round. Self-granting consumes the ballot
  // (we never propose or grant this epoch again), and adopting it as
  // current_epoch stops us acking older primaries mid-campaign.
  const uint64_t ballot = std::max(rep.current_epoch, rep.voted_epoch) + 1 + rep.id;
  rep.voted_epoch = ballot;
  rep.current_epoch = ballot;
  rep.election_epoch = ballot;
  stats_.elections++;
  tracer_.Instant(kTraceCategory, "election",
                  {{"replica", rep.id}, {"ballot", ballot}});
  flight_recorder_.Trigger(
      FlightTrigger::kFailover,
      "replica " + std::to_string(rep.id) + " campaigns with ballot " +
          std::to_string(ballot));
  for (uint32_t peer = 0; peer < num_replicas(); peer++) {
    if (peer == rep.id) {
      continue;
    }
    ReplicaMessage query = MakeMessage(ReplicaMessageType::kPromoteQuery,
                                       rep.current_epoch, rep.id);
    query.new_epoch = ballot;
    SendReplicaMessage(rep.id, peer, query);
  }
  std::shared_ptr<bool> alive = liveness_;
  const uint32_t id = rep.id;
  sim_.ScheduleAt(sim_.Now() + config_.election_timeout,
                  [this, alive, id, round] {
                    if (!*alive) {
                      return;
                    }
                    Replica& r = *replicas_[id];
                    if (r.crashed || !r.election_active ||
                        r.election_round != round) {
                      return;
                    }
                    FinishElection(r);
                  });
}

void ReplicationGroup::FinishElection(Replica& rep) {
  rep.election_active = false;
  uint32_t grants = 1;  // the coordinator's self-grant from StartElection
  uint64_t max_seen_epoch = rep.current_epoch;
  for (const auto& [id, reply] : rep.election_replies) {
    max_seen_epoch = std::max(max_seen_epoch, reply.header_epoch);
    if (reply.granted) {
      grants++;
    }
  }
  // Always a majority of ALL replicas, independent of the (possibly smaller)
  // configured write quorum: two majorities must intersect, so at most one
  // campaign per ballot epoch can succeed — and a majority of granters
  // includes a holder of every majority-quorum-acked entry.
  if (grants < config_.ElectionQuorum()) {
    // Learn any higher epoch a denial carried, so the next ballot clears it.
    rep.current_epoch = max_seen_epoch;
    rep.voted_epoch = std::max(rep.voted_epoch, rep.current_epoch);
    rep.election_replies.clear();
    return;  // the failure detector retries with a fresh ballot next tick
  }
  // Most caught-up GRANTER wins (ties to the lowest id). Non-granters are
  // excluded: they promised this ballot to no one, and may still be acking
  // an older primary, so their positions here could go stale.
  uint32_t best_id = rep.id;
  uint64_t best_epoch = rep.log.EpochAt(rep.log.end());
  uint64_t best_index = rep.log.end();
  for (const auto& [id, reply] : rep.election_replies) {
    if (!reply.granted) {
      continue;
    }
    const bool better =
        reply.last_epoch > best_epoch ||
        (reply.last_epoch == best_epoch && reply.last_index > best_index) ||
        (reply.last_epoch == best_epoch && reply.last_index == best_index &&
         id < best_id);
    if (better) {
      best_id = id;
      best_epoch = reply.last_epoch;
      best_index = reply.last_index;
    }
  }
  rep.election_replies.clear();
  if (best_id == rep.id) {
    Promote(rep, rep.election_epoch);
    return;
  }
  ReplicaMessage promote =
      MakeMessage(ReplicaMessageType::kPromote, rep.current_epoch, rep.id);
  promote.new_epoch = rep.election_epoch;
  SendReplicaMessage(rep.id, best_id, promote);
  rep.believed_primary = best_id;  // optimistic; its heartbeat confirms
}

void ReplicationGroup::RequestCatchup(Replica& rep, uint32_t to) {
  stats_.catchup_requests++;
  ReplicaMessage req = MakeMessage(ReplicaMessageType::kCatchupRequest,
                                   rep.current_epoch, rep.id);
  req.last_epoch = rep.log.EpochAt(rep.log.end());
  req.last_index = rep.log.end();
  SendReplicaMessage(rep.id, to, req);
}

void ReplicationGroup::StartStateTransfer(Replica& primary, uint32_t target) {
  if (primary.sending_snapshot) {
    return;  // one transfer at a time; the tick retries other laggards
  }
  primary.sending_snapshot = true;
  primary.snapshot_target = target;
  stats_.state_transfers++;
  tracer_.Instant(kTraceCategory, "state_transfer",
                  {{"from", primary.id},
                   {"to", target},
                   {"keys", static_cast<uint64_t>(primary.keys.size())}});
  BuildSnapshot(primary.id, primary.current_epoch);
}

void ReplicationGroup::BuildSnapshot(uint32_t primary_id, uint64_t transfer_epoch) {
  Replica& primary = *replicas_[primary_id];
  if (primary.crashed || !primary.is_primary ||
      primary.current_epoch != transfer_epoch || !primary.sending_snapshot) {
    primary.sending_snapshot = false;
    ReleaseSnapshotDrain(primary);
    return;
  }
  if (primary.inflight_ops > 0) {
    // Effects of in-flight writes are in the store but not yet in the log;
    // cutting the snapshot now would make the target replay them twice.
    // Park new writes until the cut (drain-then-cut): under sustained load
    // the pipeline would otherwise never be observed quiescent and the
    // transfer could be postponed indefinitely.
    primary.draining_for_snapshot = true;
    std::shared_ptr<bool> alive = liveness_;
    sim_.ScheduleAt(sim_.Now() + config_.heartbeat_interval,
                    [this, alive, primary_id, transfer_epoch] {
                      if (*alive) {
                        BuildSnapshot(primary_id, transfer_epoch);
                      }
                    });
    return;
  }
  ReplicaMessage chunk = MakeMessage(ReplicaMessageType::kStateChunk,
                                     primary.current_epoch, primary.id);
  chunk.snapshot_index = primary.log.end();
  chunk.snapshot_epoch = primary.log.EpochAt(chunk.snapshot_index);
  auto chunks = std::make_shared<std::vector<ReplicaMessage>>();
  for (const auto& key : primary.keys) {
    KvOperation get;
    get.opcode = Opcode::kGet;
    get.key = key;
    KvResultMessage value = primary.server->Execute(get);
    if (value.code != ResultCode::kOk) {
      continue;
    }
    chunk.kvs.emplace_back(key, std::move(value.value));
    if (chunk.kvs.size() >= config_.state_transfer_chunk_kvs) {
      chunks->push_back(chunk);
      chunk.kvs.clear();
    }
  }
  if (!chunk.kvs.empty() || chunks->empty()) {
    chunks->push_back(std::move(chunk));
  }
  for (size_t i = 0; i < chunks->size(); i++) {
    (*chunks)[i].chunk_seq = static_cast<uint32_t>(i);
    (*chunks)[i].chunk_flags = 0;
  }
  chunks->front().chunk_flags |= kStateChunkFirst;
  chunks->back().chunk_flags |= kStateChunkLast;
  SendNextChunk(primary_id, transfer_epoch, chunks, 0);
  // The chunks are fully materialized; writes parked during the drain can
  // resume without perturbing the cut.
  ReleaseSnapshotDrain(primary);
}

void ReplicationGroup::ReleaseSnapshotDrain(Replica& rep) {
  rep.draining_for_snapshot = false;
  if (rep.deferred_writes.empty()) {
    return;
  }
  std::deque<Replica::DeferredWrite> parked = std::move(rep.deferred_writes);
  rep.deferred_writes.clear();
  if (rep.crashed || !rep.is_primary) {
    return;  // the clients' retransmission timers cover the dropped writes
  }
  for (Replica::DeferredWrite& write : parked) {
    ExecuteWrites(rep, write.sequence, std::move(write.ops),
                  std::move(write.respond));
  }
}

void ReplicationGroup::SendNextChunk(
    uint32_t primary_id, uint64_t transfer_epoch,
    std::shared_ptr<std::vector<ReplicaMessage>> chunks, size_t next) {
  Replica& primary = *replicas_[primary_id];
  if (primary.crashed || !primary.is_primary ||
      primary.current_epoch != transfer_epoch || !primary.sending_snapshot) {
    primary.sending_snapshot = false;
    return;
  }
  const ReplicaMessage& chunk = (*chunks)[next];
  const size_t encoded_bytes = EncodeReplicaMessage(chunk).size();
  stats_.state_transfer_bytes += encoded_bytes;
  stats_.state_transfer_kvs += chunk.kvs.size();
  SendReplicaMessage(primary_id, primary.snapshot_target, chunk);
  if (next + 1 == chunks->size()) {
    // Done; appends to the target resume once its catch-up request arrives.
    primary.sending_snapshot = false;
    return;
  }
  // Pace the stream: the next chunk leaves once this one's bytes have had
  // their slot at the configured resync rate.
  const SimTime pace = std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(encoded_bytes) /
                              config_.state_transfer_bytes_per_sec * kSecond));
  std::shared_ptr<bool> alive = liveness_;
  sim_.ScheduleAt(sim_.Now() + pace,
                  [this, alive, primary_id, transfer_epoch, chunks, next] {
                    if (*alive) {
                      SendNextChunk(primary_id, transfer_epoch, chunks, next + 1);
                    }
                  });
}

void ReplicationGroup::WipeState(Replica& rep) {
  for (const auto& key : rep.keys) {
    KvOperation del;
    del.opcode = Opcode::kDelete;
    del.key = key;
    rep.server->Execute(del);
  }
  rep.keys.clear();
  rep.sessions.clear();
  rep.session_order.clear();
  rep.log.ResetToSnapshot(0, 0);
  rep.commit = 0;
  rep.applied = 0;
}

void ReplicationGroup::Tick() {
  // Scripted/stochastic whole-node crashes, one consult per alive replica in
  // id order (keeps FaultPlan schedules deterministic).
  for (uint32_t id = 0; id < num_replicas(); id++) {
    if (!replicas_[id]->crashed &&
        fault_->ShouldInject(FaultSite::kReplicaCrash)) {
      CrashReplica(id);
    }
  }
  for (uint32_t id = 0; id < num_replicas(); id++) {
    Replica& rep = *replicas_[id];
    if (rep.crashed) {
      continue;
    }
    if (rep.is_primary) {
      for (uint32_t peer = 0; peer < num_replicas(); peer++) {
        if (peer == rep.id ||
            (rep.sending_snapshot && rep.snapshot_target == peer)) {
          continue;
        }
        // Re-align to the confirmed position: this is what retransmits
        // windows lost on the wire.
        rep.next[peer] = rep.match[peer] + 1;
        SendWindow(rep, peer);
      }
      EvaluateGrayPeers(rep);
    } else if (!rep.receiving_snapshot && !rep.election_active &&
               sim_.Now() - rep.last_primary_contact >
                   config_.failure_timeout +
                       rep.id * config_.heartbeat_interval) {
      // Per-id stagger: the deterministic clock has no randomized timeouts,
      // so without it every backup campaigns on the same tick and votes for
      // itself, splitting the electorate forever.
      StartElection(rep);
    }
  }
  std::shared_ptr<bool> alive = liveness_;
  sim_.ScheduleAt(sim_.Now() + config_.heartbeat_interval, [this, alive] {
    if (*alive) {
      Tick();
    }
  });
}

ReplicationGroup::GroupStats ReplicationGroup::stats() const {
  GroupStats snapshot = stats_;
  for (const auto& rep : replicas_) {
    const FrameEndpoint::Stats& endpoint = rep->endpoint->stats();
    snapshot.replayed_responses += endpoint.replayed_responses;
    snapshot.corrupt_client_frames += endpoint.corrupt_frames;
    snapshot.stale_retransmits += endpoint.stale_retransmits;
  }
  return snapshot;
}

void ReplicationGroup::RegisterMetrics() {
  metrics_.RegisterCounter("kvd_repl_appends_total",
                           "kAppend windows sent, heartbeats included", {},
                           &stats_.appends_sent);
  metrics_.RegisterCounter("kvd_repl_entries_shipped_total",
                           "Log entries carried inside kAppend windows", {},
                           &stats_.entries_shipped);
  metrics_.RegisterCounter("kvd_repl_entries_applied_total",
                           "Log entries appended and applied at backups", {},
                           &stats_.entries_applied);
  metrics_.RegisterCounter("kvd_repl_append_acks_total",
                           "Cumulative acks processed by primaries", {},
                           &stats_.append_acks);
  metrics_.RegisterCounter("kvd_repl_elections_total",
                           "Failover elections started", {}, &stats_.elections);
  metrics_.RegisterCounter("kvd_repl_failovers_total",
                           "Promotions installed (epoch bumps)", {},
                           &stats_.failovers);
  metrics_.RegisterCounter("kvd_repl_catchup_requests_total",
                           "Catch-up requests sent by backups", {},
                           &stats_.catchup_requests);
  metrics_.RegisterCounter("kvd_repl_state_transfers_total",
                           "Full-partition state transfers started", {},
                           &stats_.state_transfers);
  metrics_.RegisterCounter("kvd_repl_state_transfer_bytes_total",
                           "Encoded snapshot bytes streamed", {},
                           &stats_.state_transfer_bytes);
  metrics_.RegisterCounter("kvd_repl_state_transfer_kvs_total",
                           "KV pairs streamed in snapshots", {},
                           &stats_.state_transfer_kvs);
  metrics_.RegisterCounter("kvd_repl_snapshot_deferred_writes_total",
                           "Client writes parked while a snapshot cut drained",
                           {}, &stats_.snapshot_deferred_writes);
  metrics_.RegisterCounter("kvd_repl_crashes_total", "Replica crashes", {},
                           &stats_.crashes);
  metrics_.RegisterCounter("kvd_repl_restarts_total", "Replica restarts", {},
                           &stats_.restarts);
  metrics_.RegisterCounter("kvd_repl_stale_reads_total",
                           "Reads rejected below the client watermark", {},
                           &stats_.stale_reads);
  metrics_.RegisterCounter("kvd_repl_redirects_total",
                           "Writes redirected off non-primaries", {},
                           &stats_.redirects);
  metrics_.RegisterCounter("kvd_repl_wrong_shard_total",
                           "Routed requests bounced off a non-owning group", {},
                           &stats_.wrong_shard_bounces);
  metrics_.RegisterCounter("kvd_repl_migrating_total",
                           "Routed writes bounced during a cutover freeze", {},
                           &stats_.migrating_bounces);
  metrics_.RegisterCounter("kvd_repl_session_dedup_hits_total",
                           "Write slots answered from replicated sessions", {},
                           &stats_.session_dedup_hits);
  metrics_.RegisterCounter("kvd_repl_gray_demotions_total",
                           "Peers demoted out of the commit quorum", {},
                           &stats_.gray_demotions);
  metrics_.RegisterCounter("kvd_repl_gray_reinstatements_total",
                           "Demoted peers reinstated after catching up", {},
                           &stats_.gray_reinstatements);
  // The replay/frame counters live in the per-replica transport endpoints;
  // expose the group-wide sums.
  metrics_.RegisterCounter("kvd_repl_replayed_responses_total",
                           "Retransmissions answered from the replay cache", {},
                           [this] {
                             uint64_t total = 0;
                             for (const auto& rep : replicas_) {
                               total += rep->endpoint->stats().replayed_responses;
                             }
                             return total;
                           });
  metrics_.RegisterCounter("kvd_repl_corrupt_client_frames_total",
                           "Client frames dropped by checksum/decode", {},
                           [this] {
                             uint64_t total = 0;
                             for (const auto& rep : replicas_) {
                               total += rep->endpoint->stats().corrupt_frames;
                             }
                             return total;
                           });
  metrics_.RegisterCounter("kvd_repl_corrupt_replica_frames_total",
                           "Replication frames dropped by checksum/decode", {},
                           &stats_.corrupt_replica_frames);
  metrics_.RegisterCounter("kvd_repl_stale_retransmits_total",
                           "Retransmissions of still-executing requests", {},
                           [this] {
                             uint64_t total = 0;
                             for (const auto& rep : replicas_) {
                               total += rep->endpoint->stats().stale_retransmits;
                             }
                             return total;
                           });
  metrics_.RegisterCounter("kvd_repl_replay_evict_scan_steps_total",
                           "Replay-cache eviction queue entries examined", {},
                           [this] {
                             uint64_t total = 0;
                             for (const auto& rep : replicas_) {
                               total += rep->endpoint->cache().evict_scan_steps();
                             }
                             return total;
                           });
  metrics_.RegisterGauge("kvd_repl_epoch", "Current epoch at the primary", {},
                         [this] { return static_cast<double>(epoch()); });
  metrics_.RegisterGauge("kvd_repl_commit_index",
                         "Quorum-committed log index at the primary", {},
                         [this] { return static_cast<double>(commit_index()); });
  metrics_.RegisterGauge(
      "kvd_repl_last_failover_downtime_ns",
      "Simulated time from primary crash to next promotion", {}, [this] {
        return static_cast<double>(stats_.last_failover_downtime_ns);
      });
  for (uint32_t id = 0; id < config_.num_replicas; id++) {
    MetricLabels labels{{"replica", std::to_string(id)}};
    metrics_.RegisterGauge("kvd_repl_log_end", "Replica log end (applied index)",
                           labels, [this, id] {
                             return static_cast<double>(replicas_[id]->log.end());
                           });
    metrics_.RegisterGauge("kvd_repl_crashed", "1 while the replica is crashed",
                           labels, [this, id] {
                             return replicas_[id]->crashed ? 1.0 : 0.0;
                           });
    // Replication health: how far this replica trails the primary's view.
    // Lags clamp to zero so a freshly promoted primary with stale peer state
    // never exposes negative values.
    metrics_.RegisterGauge(
        "kvd_repl_match_lag",
        "Primary log end minus this replica's confirmed match index", labels,
        [this, id] {
          const Replica& primary = *replicas_[primary_view_];
          const uint64_t match = primary.match[id];
          const uint64_t end = primary.log.end();
          return static_cast<double>(end > match ? end - match : 0);
        });
    metrics_.RegisterGauge(
        "kvd_repl_applied_lag",
        "Quorum commit index minus this replica's applied index", labels,
        [this, id] {
          const uint64_t commit = commit_index();
          const uint64_t applied = replicas_[id]->applied;
          return static_cast<double>(commit > applied ? commit - applied : 0);
        });
    metrics_.RegisterGauge(
        "kvd_repl_commit_lag",
        "Quorum commit index minus this replica's local commit index", labels,
        [this, id] {
          const uint64_t commit = commit_index();
          const uint64_t local = replicas_[id]->commit;
          return static_cast<double>(commit > local ? commit - local : 0);
        });
  }
  metrics_.RegisterHistogram("kvd_repl_propagation_lag_ns",
                             "Append-to-quorum-commit lag per entry", {},
                             [this] { return propagation_lag_ns_; });
  metrics_.RegisterHistogram("kvd_repl_failover_downtime_ns",
                             "Primary-crash-to-promotion downtime", {},
                             [this] { return failover_downtime_ns_; });
  metrics_.RegisterHistogram(
      "kvd_repl_commit_wait_ns",
      "Client write wait from log append to quorum-commit response", {},
      [this] { return commit_wait_ns_; });
}

}  // namespace kvd
