#include "src/replica/replica_wire.h"

#include <cstring>

namespace kvd {
namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  const size_t at = out.size();
  out.resize(at + 2);
  std::memcpy(out.data() + at, &v, 2);
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  const size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  const size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

void PutBytes(std::vector<uint8_t>& out, const std::vector<uint8_t>& bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

// Bounds-checked little-endian reader; every take reports truncation.
struct Reader {
  const std::vector<uint8_t>& in;
  size_t offset = 0;

  bool Take(void* out, size_t n) {
    if (offset + n > in.size()) {
      return false;
    }
    std::memcpy(out, in.data() + offset, n);
    offset += n;
    return true;
  }
  bool TakeBytes(std::vector<uint8_t>& out, size_t n) {
    if (n > in.size() - offset) {
      return false;
    }
    out.assign(in.begin() + static_cast<long>(offset),
               in.begin() + static_cast<long>(offset + n));
    offset += n;
    return true;
  }
  bool Done() const { return offset == in.size(); }
};

void EncodeEntry(std::vector<uint8_t>& out, const LogEntry& entry) {
  PutU64(out, entry.epoch);
  PutU64(out, entry.client_sequence);
  PutU16(out, entry.slot);
  out.push_back(static_cast<uint8_t>(entry.op.opcode));
  out.push_back(entry.op.element_width);
  out.push_back(entry.op.return_value ? 1 : 0);
  PutU16(out, entry.op.function_id);
  PutU64(out, entry.op.param);
  PutU16(out, static_cast<uint16_t>(entry.op.key.size()));
  PutU32(out, static_cast<uint32_t>(entry.op.value.size()));
  PutBytes(out, entry.op.key);
  PutBytes(out, entry.op.value);
  out.push_back(static_cast<uint8_t>(entry.result.code));
  PutU64(out, entry.result.scalar);
  PutU32(out, static_cast<uint32_t>(entry.result.value.size()));
  PutBytes(out, entry.result.value);
}

bool DecodeEntry(Reader& reader, LogEntry& entry) {
  uint8_t opcode_byte, return_value, code_byte;
  uint16_t key_len;
  uint32_t value_len, result_len;
  if (!reader.Take(&entry.epoch, 8) || !reader.Take(&entry.client_sequence, 8) ||
      !reader.Take(&entry.slot, 2) || !reader.Take(&opcode_byte, 1) ||
      !reader.Take(&entry.op.element_width, 1) || !reader.Take(&return_value, 1) ||
      !reader.Take(&entry.op.function_id, 2) || !reader.Take(&entry.op.param, 8) ||
      !reader.Take(&key_len, 2) || !reader.Take(&value_len, 4)) {
    return false;
  }
  if (opcode_byte > kMaxOpcodeByte) {
    return false;
  }
  entry.op.opcode = static_cast<Opcode>(opcode_byte);
  entry.op.return_value = return_value != 0;
  if (!reader.TakeBytes(entry.op.key, key_len) ||
      !reader.TakeBytes(entry.op.value, value_len) ||
      !reader.Take(&code_byte, 1) || !reader.Take(&entry.result.scalar, 8) ||
      !reader.Take(&result_len, 4)) {
    return false;
  }
  if (code_byte > kMaxResultCodeByte) {
    return false;
  }
  entry.result.code = static_cast<ResultCode>(code_byte);
  return reader.TakeBytes(entry.result.value, result_len);
}

}  // namespace

std::vector<uint8_t> EncodeReplicaMessage(const ReplicaMessage& msg) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(msg.type));
  PutU64(out, msg.epoch);
  PutU32(out, msg.sender);
  switch (msg.type) {
    case ReplicaMessageType::kAppend:
      PutU64(out, msg.first_index);
      PutU64(out, msg.prev_epoch);
      PutU64(out, msg.commit_index);
      PutU64(out, msg.leader_end);
      PutU32(out, static_cast<uint32_t>(msg.entries.size()));
      for (const LogEntry& entry : msg.entries) {
        EncodeEntry(out, entry);
      }
      break;
    case ReplicaMessageType::kAppendAck:
      PutU64(out, msg.ack_index);
      break;
    case ReplicaMessageType::kPromoteQuery:
      PutU64(out, msg.new_epoch);
      break;
    case ReplicaMessageType::kPromoteReply:
      PutU64(out, msg.last_epoch);
      PutU64(out, msg.last_index);
      PutU64(out, msg.new_epoch);
      out.push_back(msg.granted ? 1 : 0);
      break;
    case ReplicaMessageType::kCatchupRequest:
      PutU64(out, msg.last_epoch);
      PutU64(out, msg.last_index);
      break;
    case ReplicaMessageType::kPromote:
      PutU64(out, msg.new_epoch);
      break;
    case ReplicaMessageType::kStateChunk:
      PutU64(out, msg.snapshot_epoch);
      PutU64(out, msg.snapshot_index);
      PutU32(out, msg.chunk_seq);
      out.push_back(msg.chunk_flags);
      PutU32(out, static_cast<uint32_t>(msg.kvs.size()));
      for (const auto& [key, value] : msg.kvs) {
        PutU16(out, static_cast<uint16_t>(key.size()));
        PutU32(out, static_cast<uint32_t>(value.size()));
        PutBytes(out, key);
        PutBytes(out, value);
      }
      break;
  }
  return out;
}

Result<ReplicaMessage> DecodeReplicaMessage(const std::vector<uint8_t>& payload) {
  Reader reader{payload};
  ReplicaMessage msg;
  uint8_t type_byte;
  if (!reader.Take(&type_byte, 1) || !reader.Take(&msg.epoch, 8) ||
      !reader.Take(&msg.sender, 4)) {
    return Status::InvalidArgument("truncated replica message header");
  }
  if (type_byte > kMaxReplicaMessageType) {
    return Status::InvalidArgument("unknown replica message type");
  }
  msg.type = static_cast<ReplicaMessageType>(type_byte);
  switch (msg.type) {
    case ReplicaMessageType::kAppend: {
      uint32_t count;
      if (!reader.Take(&msg.first_index, 8) || !reader.Take(&msg.prev_epoch, 8) ||
          !reader.Take(&msg.commit_index, 8) || !reader.Take(&msg.leader_end, 8) ||
          !reader.Take(&count, 4)) {
        return Status::InvalidArgument("truncated append header");
      }
      msg.entries.reserve(count);
      for (uint32_t i = 0; i < count; i++) {
        LogEntry entry;
        if (!DecodeEntry(reader, entry)) {
          return Status::InvalidArgument("truncated append entry");
        }
        msg.entries.push_back(std::move(entry));
      }
      break;
    }
    case ReplicaMessageType::kAppendAck:
      if (!reader.Take(&msg.ack_index, 8)) {
        return Status::InvalidArgument("truncated append ack");
      }
      break;
    case ReplicaMessageType::kPromoteQuery:
      if (!reader.Take(&msg.new_epoch, 8)) {
        return Status::InvalidArgument("truncated promote query");
      }
      break;
    case ReplicaMessageType::kPromoteReply: {
      uint8_t granted_byte;
      if (!reader.Take(&msg.last_epoch, 8) || !reader.Take(&msg.last_index, 8) ||
          !reader.Take(&msg.new_epoch, 8) || !reader.Take(&granted_byte, 1)) {
        return Status::InvalidArgument("truncated promote reply");
      }
      if (granted_byte > 1) {
        return Status::InvalidArgument("invalid vote byte");
      }
      msg.granted = granted_byte != 0;
      break;
    }
    case ReplicaMessageType::kCatchupRequest:
      if (!reader.Take(&msg.last_epoch, 8) || !reader.Take(&msg.last_index, 8)) {
        return Status::InvalidArgument("truncated log position");
      }
      break;
    case ReplicaMessageType::kPromote:
      if (!reader.Take(&msg.new_epoch, 8)) {
        return Status::InvalidArgument("truncated promote");
      }
      break;
    case ReplicaMessageType::kStateChunk: {
      uint32_t count;
      if (!reader.Take(&msg.snapshot_epoch, 8) ||
          !reader.Take(&msg.snapshot_index, 8) ||
          !reader.Take(&msg.chunk_seq, 4) || !reader.Take(&msg.chunk_flags, 1) ||
          !reader.Take(&count, 4)) {
        return Status::InvalidArgument("truncated state chunk header");
      }
      msg.kvs.reserve(count);
      for (uint32_t i = 0; i < count; i++) {
        uint16_t key_len;
        uint32_t value_len;
        std::vector<uint8_t> key, value;
        if (!reader.Take(&key_len, 2) || !reader.Take(&value_len, 4) ||
            !reader.TakeBytes(key, key_len) || !reader.TakeBytes(value, value_len)) {
          return Status::InvalidArgument("truncated state chunk kv");
        }
        msg.kvs.emplace_back(std::move(key), std::move(value));
      }
      break;
    }
  }
  if (!reader.Done()) {
    return Status::InvalidArgument("trailing bytes in replica message");
  }
  return msg;
}

std::vector<uint8_t> EncodeGroupRequest(const GroupRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(8 + (request.has_route ? 12 : 0) + request.ops_payload.size());
  // The watermark itself must never collide with the route marker bit.
  PutU64(out, (request.required_index & ~kGroupRequestRouted) |
                  (request.has_route ? kGroupRequestRouted : 0));
  if (request.has_route) {
    PutU64(out, request.map_epoch);
    PutU32(out, request.partition);
  }
  PutBytes(out, request.ops_payload);
  return out;
}

Result<GroupRequest> DecodeGroupRequest(const std::vector<uint8_t>& payload) {
  Reader reader{payload};
  GroupRequest request;
  if (!reader.Take(&request.required_index, 8)) {
    return Status::InvalidArgument("truncated group request header");
  }
  if ((request.required_index & kGroupRequestRouted) != 0) {
    request.required_index &= ~kGroupRequestRouted;
    request.has_route = true;
    if (!reader.Take(&request.map_epoch, 8) ||
        !reader.Take(&request.partition, 4)) {
      return Status::InvalidArgument("truncated group request route");
    }
  }
  request.ops_payload.assign(payload.begin() + static_cast<long>(reader.offset),
                             payload.end());
  return request;
}

std::vector<uint8_t> EncodeGroupResponse(const GroupResponse& response) {
  std::vector<uint8_t> out;
  out.reserve(21 + response.results_payload.size());
  out.push_back(response.flags);
  PutU64(out, response.epoch);
  PutU32(out, response.primary_id);
  PutU64(out, response.assigned_index);
  if ((response.flags & (kGroupWrongShard | kGroupMigrating)) != 0) {
    PutU64(out, response.map_epoch);
    PutU32(out, response.owner_group);
    PutU32(out, response.num_partitions);
  }
  PutBytes(out, response.results_payload);
  return out;
}

Result<GroupResponse> DecodeGroupResponse(const std::vector<uint8_t>& payload) {
  Reader reader{payload};
  GroupResponse response;
  if (!reader.Take(&response.flags, 1) || !reader.Take(&response.epoch, 8) ||
      !reader.Take(&response.primary_id, 4) ||
      !reader.Take(&response.assigned_index, 8)) {
    return Status::InvalidArgument("truncated group response header");
  }
  if ((response.flags & ~kGroupKnownFlags) != 0) {
    return Status::InvalidArgument("unknown group response flags");
  }
  if ((response.flags & (kGroupWrongShard | kGroupMigrating)) != 0) {
    if (!reader.Take(&response.map_epoch, 8) ||
        !reader.Take(&response.owner_group, 4) ||
        !reader.Take(&response.num_partitions, 4)) {
      return Status::InvalidArgument("truncated group response shard context");
    }
  }
  response.results_payload.assign(
      payload.begin() + static_cast<long>(reader.offset), payload.end());
  return response;
}

}  // namespace kvd
