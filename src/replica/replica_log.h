// The monotonic (epoch, index) operation log of a replica (DESIGN.md §9).
//
// Indices are 1-based and global across epochs: entry i+1 always follows
// entry i, whatever epoch either carries. A log stores a contiguous suffix
// [base+1, end]; everything at or below `base` has been trimmed (or replaced
// by a snapshot after state transfer) and survives only as `base_epoch`, the
// epoch of the entry that used to sit at `base` — enough to verify that a
// peer's log is a prefix of ours.
#ifndef SRC_REPLICA_REPLICA_LOG_H_
#define SRC_REPLICA_REPLICA_LOG_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/replica/replica_wire.h"

namespace kvd {

class ReplicaLog {
 public:
  // Appends at index end()+1.
  void Append(LogEntry entry) { entries_.push_back(std::move(entry)); }

  uint64_t base() const { return base_; }
  uint64_t base_epoch() const { return base_epoch_; }
  uint64_t end() const { return base_ + entries_.size(); }
  size_t size() const { return entries_.size(); }
  bool Contains(uint64_t index) const { return index > base_ && index <= end(); }

  // Epoch of the entry at `index`. Defined for the trimmed boundary
  // (index == base) and for the empty prefix (index == 0 -> epoch 0).
  uint64_t EpochAt(uint64_t index) const;

  const LogEntry& At(uint64_t index) const;

  // Entries [first, min(end, first + max_entries - 1)]; empty when first > end.
  std::vector<LogEntry> Window(uint64_t first, uint32_t max_entries) const;

  // Drops oldest entries until at most `max_entries` remain (raises base).
  void Trim(uint64_t max_entries);

  // Replaces the whole log with a snapshot boundary: base = index, empty
  // suffix. Used after full-partition state transfer.
  void ResetToSnapshot(uint64_t index, uint64_t epoch);

 private:
  uint64_t base_ = 0;
  uint64_t base_epoch_ = 0;
  std::deque<LogEntry> entries_;
};

}  // namespace kvd

#endif  // SRC_REPLICA_REPLICA_LOG_H_
