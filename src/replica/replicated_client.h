// Client endpoint for a single replication group (DESIGN.md §9.5).
//
// ReplicatedClient routes writes to the primary it currently believes in and
// follows redirects through epoch changes; it load-balances read-only packets
// round-robin across all replicas, attaching a per-key log-index watermark so
// a lagging backup rejects the read instead of serving stale data
// (read-your-writes across flushes). Retransmission reuses the PR 2 frame
// sequence, so a retried request is answered exactly once — from the replay
// cache on the same primary, or from the replicated session records after a
// failover.
//
// Sharded deployments live in src/cluster: a ClusterCoordinator composes one
// ReplicationGroup per group on a shared clock under an epoch-versioned shard
// map, and ClusterClient routes per-partition packets with bounce-driven map
// correction (DESIGN.md §14).
#ifndef SRC_REPLICA_REPLICATED_CLIENT_H_
#define SRC_REPLICA_REPLICATED_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "src/common/key_router.h"
#include "src/replica/replication_group.h"
#include "src/transport/kv_endpoint.h"

namespace kvd {

class ReplicatedClient : public KvEndpoint {
 public:
  struct Options {
    uint32_t batch_payload_bytes = 4096;
    bool enable_compression = true;
    SimTime timeout = 500 * kMicrosecond;  // doubles per retransmission
    // Transmissions of one packet before its operations fail with kTimedOut:
    // sized to ride out a failover (detection + election) under the doubling
    // timeout.
    uint32_t max_attempts = 24;
    // After this many attempts at one replica, rotate to the next — the
    // current target may be crashed.
    uint32_t attempts_per_target = 3;
    // Wait before re-sending after a redirect or stale-read bounce, giving
    // the group a beat to converge instead of hammering it.
    SimTime redirect_backoff = 50 * kMicrosecond;
    // Per-op latency budget: each flushed op is stamped deadline = now +
    // op_budget (unless the caller stamped a tighter one) and the whole
    // stack — sender retransmissions, admission, dequeue, retirement —
    // enforces it. 0 = no deadlines.
    SimTime op_budget = 0;
    // Decorrelated retransmission jitter and the token-bucket retry budget
    // (see ReliableSender::RetryPolicy; 0 disables the budget).
    bool jitter = true;
    uint32_t retry_budget = 0;
    double retry_refill_per_success = 0.1;
    // Deadline-aware hedged reads: if a read packet has no response after
    // the hedge delay, send the same frame (same sequence — replay dedup
    // makes the duplicate harmless) to the next replica and take whichever
    // response lands first. Writes are never hedged: they must go to the
    // primary. The delay adapts to the observed read RTT distribution (p99
    // once 16 samples exist, timeout/2 before that), floored at
    // hedge_min_delay; set hedge_delay to pin it.
    bool hedge_reads = false;
    SimTime hedge_delay = 0;  // 0 = adaptive (p99 of read RTT)
    SimTime hedge_min_delay = 10 * kMicrosecond;
  };

  // packets_sent / retransmits / corrupt_responses / duplicate_responses as
  // in ReliableSender::Stats, plus the group-protocol bounces.
  struct Stats : ReliableSender::Stats {
    uint64_t redirects_followed = 0;  // kGroupRedirect bounces
    uint64_t stale_retries = 0;       // kGroupStaleRead bounces
    uint64_t hedge_wins = 0;          // packets completed by the hedge copy
  };

  explicit ReplicatedClient(ReplicationGroup& group)
      : ReplicatedClient(group, Options()) {}
  ReplicatedClient(ReplicationGroup& group, Options options);

  // Queues an operation for the next flush; returns its result index.
  size_t Enqueue(KvOperation op) override;

  // Sends every queued operation and drives the group's simulator until all
  // responses arrive. Results are in enqueue order.
  std::vector<KvResultMessage> Flush() override;

  ReliableSender::Stats endpoint_stats() const override { return stats_; }
  SimTime now() const override { return group_.simulator().Now(); }
  bool Step() override { return group_.simulator().Step(); }

  // Split-phase flush for multi-shard composition: BeginFlush() transmits
  // without stepping the simulator; the caller steps the (shared) clock until
  // flush_done(), then TakeResults().
  void BeginFlush();
  bool flush_done() const;
  std::vector<KvResultMessage> TakeResults();

  const Stats& stats() const { return stats_; }
  // Observed read round-trip distribution (first transmission -> accepted
  // response, ns) — the source of the adaptive hedge delay.
  const LatencyHistogram& read_rtt_ns() const { return read_rtt_ns_; }

 private:
  struct FlushState;
  struct PacketCtx;

  void OnResponse(const std::shared_ptr<PacketCtx>& ctx,
                  std::vector<uint8_t> packet, bool from_hedge = false);
  // ReliableSender hooks: one wire round trip; retry exhaustion.
  void Wire(const ReliableSender::PacketPtr& packet);
  // One transmission toward an explicit target; `hedge` marks the duplicate
  // copy so its response can be credited as a hedge win.
  void WireTo(const std::shared_ptr<PacketCtx>& ctx, uint32_t target,
              bool hedge);
  void OnFail(const ReliableSender::PacketPtr& packet);
  SimTime HedgeDelay() const;

  ReplicationGroup& group_;
  Options options_;
  std::vector<KvOperation> pending_;
  uint64_t next_sequence_;
  uint32_t believed_primary_ = 0;
  uint32_t next_read_target_ = 0;  // round-robin cursor for read packets
  // Per-key quorum-committed index of this client's acknowledged writes: the
  // watermark a replica must have applied before serving the key back
  // (read-your-writes). std::map for deterministic iteration.
  std::map<std::vector<uint8_t>, uint64_t> watermarks_;
  std::shared_ptr<FlushState> flush_;
  Stats stats_;
  LatencyHistogram read_rtt_ns_;
  ReliableSender sender_;
};

}  // namespace kvd

#endif  // SRC_REPLICA_REPLICATED_CLIENT_H_
