// Wire formats of the replication subsystem (DESIGN.md §9).
//
// Two separate vocabularies share this header:
//
//   - replica <-> replica messages (ReplicaMessage): log propagation,
//     cumulative acks, failover elections, catch-up, and bounded-rate state
//     transfer. All ride inside the PR 2 checksummed framing over the group's
//     replication NetworkModel links; the protocol is idempotent by design
//     (cumulative indices), so loss is healed by the next heartbeat window
//     rather than per-message retransmission timers.
//
//   - client <-> group messages (GroupRequest/GroupResponse): a thin routing
//     header around the existing batched-operation payload. Requests carry
//     the client's read watermark (read-your-writes), responses carry the
//     epoch, the responder's view of the primary (for redirects), and the log
//     index covering the request's writes.
#ifndef SRC_REPLICA_REPLICA_WIRE_H_
#define SRC_REPLICA_REPLICA_WIRE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/net/kv_types.h"

namespace kvd {

// One replicated operation: an effective write exactly as executed at the
// primary, together with the result the primary computed. Shipping the result
// lets every replica store an identical session-result record (for
// exactly-once retransmission handling across failover) without re-deriving
// it from its own execution.
struct LogEntry {
  uint64_t epoch = 0;
  uint64_t client_sequence = 0;  // frame sequence of the originating request
  uint16_t slot = 0;             // op position within that frame
  KvOperation op;
  KvResultMessage result;
};

enum class ReplicaMessageType : uint8_t {
  kAppend = 0,          // log replication; empty entry list == heartbeat
  kAppendAck = 1,       // cumulative: "my log reaches ack_index"
  kPromoteQuery = 2,    // ballot new_epoch: request a vote + log tail position
  kPromoteReply = 3,    // vote (granted at most once per ballot epoch) + tail
  kPromote = 4,         // install the most-caught-up granter at new_epoch
  kCatchupRequest = 5,  // backup asks to be resynced past (last_epoch, last_index)
  kStateChunk = 6,      // bounded-rate full-partition state transfer
};

inline constexpr uint8_t kMaxReplicaMessageType =
    static_cast<uint8_t>(ReplicaMessageType::kStateChunk);

inline constexpr uint8_t kStateChunkFirst = 1u << 0;  // wipe target state first
inline constexpr uint8_t kStateChunkLast = 1u << 1;   // snapshot complete

struct ReplicaMessage {
  ReplicaMessageType type = ReplicaMessageType::kAppend;
  uint64_t epoch = 0;   // sender's epoch
  uint32_t sender = 0;  // sender's replica id

  // kAppend
  uint64_t first_index = 0;  // index of entries[0]
  uint64_t prev_epoch = 0;   // epoch of the sender's entry at first_index - 1
  uint64_t commit_index = 0;
  // The sender's log end. A backup whose log extends past it holds a
  // divergent tail (it was a deposed primary) and must be state-transferred:
  // applied state cannot be rolled back entry-wise.
  uint64_t leader_end = 0;
  std::vector<LogEntry> entries;

  // kAppendAck
  uint64_t ack_index = 0;

  // kPromoteReply / kCatchupRequest: the sender's log tail position
  uint64_t last_epoch = 0;
  uint64_t last_index = 0;

  // kPromoteQuery / kPromoteReply: the ballot epoch being voted on.
  // kPromote: the epoch the target is to assume. A replica grants each
  // ballot epoch at most once (kPromoteReply.granted), so two concurrent
  // coordinators can never both collect a majority for the same epoch.
  uint64_t new_epoch = 0;
  // kPromoteReply: vote outcome for ballot new_epoch.
  bool granted = false;

  // kStateChunk
  uint64_t snapshot_epoch = 0;
  uint64_t snapshot_index = 0;
  uint32_t chunk_seq = 0;
  uint8_t chunk_flags = 0;
  std::vector<std::pair<std::vector<uint8_t>, std::vector<uint8_t>>> kvs;
};

std::vector<uint8_t> EncodeReplicaMessage(const ReplicaMessage& msg);
Result<ReplicaMessage> DecodeReplicaMessage(const std::vector<uint8_t>& payload);

// --- client <-> group messages (ride inside the PR 2 reliable framing) ---

// The read watermark the serving replica must have applied before answering,
// then the standard batched-operation payload (PacketBuilder format).
//
// Cluster-routed requests (src/cluster) additionally carry the client's
// cached shard-map epoch and the partition the packet's keys hash to, so the
// serving group can bounce kWrongShard/kMigrating with enough context for the
// client to patch its map. The extension is flagged in the top bit of the
// required_index field: legacy (unrouted) requests encode byte-identically to
// the pre-cluster format, and log watermarks never approach 2^63.
inline constexpr uint64_t kGroupRequestRouted = 1ull << 63;

struct GroupRequest {
  uint64_t required_index = 0;
  // Shard-map routing extension (present iff has_route).
  bool has_route = false;
  uint64_t map_epoch = 0;
  uint32_t partition = 0;
  std::vector<uint8_t> ops_payload;
};

inline constexpr uint8_t kGroupRedirect = 1u << 0;   // not primary: go there
inline constexpr uint8_t kGroupStaleRead = 1u << 1;  // replica behind watermark
// Shard-map bounces (routed requests only). kGroupWrongShard: this group does
// not own the packet's partition — the response carries the current map
// epoch, the owning group, and the partition count so the client can patch or
// refetch its cached map. kGroupMigrating: the partition is write-frozen for
// a migration cutover window; back off and resend the same frame.
inline constexpr uint8_t kGroupWrongShard = 1u << 2;
inline constexpr uint8_t kGroupMigrating = 1u << 3;

inline constexpr uint8_t kGroupKnownFlags =
    kGroupRedirect | kGroupStaleRead | kGroupWrongShard | kGroupMigrating;

// Routing header, then an EncodeResults payload (empty when a flag rejects
// the request without executing it). The shard-routing fields are encoded
// only when kGroupWrongShard or kGroupMigrating is set, so responses on the
// legacy paths stay byte-identical to the pre-cluster format.
struct GroupResponse {
  uint8_t flags = 0;
  uint64_t epoch = 0;
  uint32_t primary_id = 0;      // the responder's belief, for redirects
  uint64_t assigned_index = 0;  // log index covering the request's writes
  // Shard-map bounce context (kGroupWrongShard / kGroupMigrating only).
  uint64_t map_epoch = 0;
  uint32_t owner_group = 0;     // current owner under map_epoch
  uint32_t num_partitions = 0;  // map granularity (mismatch => full refetch)
  std::vector<uint8_t> results_payload;
};

std::vector<uint8_t> EncodeGroupRequest(const GroupRequest& request);
Result<GroupRequest> DecodeGroupRequest(const std::vector<uint8_t>& payload);
std::vector<uint8_t> EncodeGroupResponse(const GroupResponse& response);
Result<GroupResponse> DecodeGroupResponse(const std::vector<uint8_t>& payload);

}  // namespace kvd

#endif  // SRC_REPLICA_REPLICA_WIRE_H_
