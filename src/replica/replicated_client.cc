#include "src/replica/replicated_client.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/common/assert.h"
#include "src/net/wire_format.h"
#include "src/transport/frame.h"

namespace kvd {

struct ReplicatedClient::FlushState {
  std::vector<KvResultMessage> results;
  size_t outstanding = 0;
};

struct ReplicatedClient::PacketCtx : ReliablePacket {
  std::vector<uint8_t> ops_payload;  // PacketBuilder output
  std::vector<size_t> op_indices;    // flush-result slots, packet order
  std::vector<std::vector<uint8_t>> write_keys;
  uint64_t required = 0;  // max watermark over the packet's keys
  bool is_write = false;
  SimTime sent_at = 0;  // first transmission time (read-RTT sample start)
  std::shared_ptr<FlushState> flush;
};

ReplicatedClient::ReplicatedClient(ReplicationGroup& group, Options options)
    : group_(group),
      options_(options),
      next_sequence_(group.AcquireClientSequenceBase()),
      believed_primary_(group.primary_id()),
      sender_(group.simulator(),
              ReliableSender::RetryPolicy{
                  .timeout = options_.timeout,
                  .max_attempts = options_.max_attempts,
                  .backoff_shift_cap = 6,
                  .attempts_per_target = options_.attempts_per_target,
                  .num_targets = group.num_replicas(),
                  .jitter = options_.jitter,
                  .jitter_seed = next_sequence_,
                  .retry_budget = options_.retry_budget,
                  .retry_refill_per_success = options_.retry_refill_per_success},
              &stats_, [this]() -> RequestTracer& { return group_.request_tracer(); },
              [this](const ReliableSender::PacketPtr& packet) { Wire(packet); },
              [this](const ReliableSender::PacketPtr& packet) { OnFail(packet); }) {
  KVD_CHECK_MSG(options_.batch_payload_bytes > kFrameHeaderBytes + 8 + 64,
                "packet budget too small for the framing and routing headers");
}

size_t ReplicatedClient::Enqueue(KvOperation op) {
  pending_.push_back(std::move(op));
  return pending_.size() - 1;
}

void ReplicatedClient::BeginFlush() {
  KVD_CHECK_MSG(flush_ == nullptr || flush_->outstanding == 0,
                "previous flush still in progress");
  flush_ = std::make_shared<FlushState>();
  flush_->results.resize(pending_.size());
  std::vector<KvOperation> ops = std::move(pending_);
  pending_.clear();
  if (ops.empty()) {
    return;
  }
  if (options_.op_budget != 0) {
    // Stamp the latency budget before packing: the deadline rides the wire
    // and every layer (sender, admission, dequeue, retirement) enforces it.
    const SimTime limit = group_.simulator().Now() + options_.op_budget;
    for (KvOperation& op : ops) {
      op.deadline = op.deadline == 0 ? limit : std::min(op.deadline, limit);
    }
  }

  // Pack greedily in enqueue order; the op budget leaves room for the frame
  // header and the GroupRequest watermark.
  const uint32_t budget = options_.batch_payload_bytes -
                          static_cast<uint32_t>(kFrameHeaderBytes) - 8;
  PacketBuilder builder(budget, options_.enable_compression);
  std::vector<std::shared_ptr<PacketCtx>> packets;
  auto ctx = std::make_shared<PacketCtx>();
  ctx->flush = flush_;
  for (size_t i = 0; i < ops.size(); i++) {
    if (!builder.Add(ops[i])) {
      KVD_CHECK_MSG(!ctx->op_indices.empty(),
                    "operation exceeds the packet budget");
      ctx->ops_payload = builder.Finish();
      packets.push_back(std::move(ctx));
      ctx = std::make_shared<PacketCtx>();
      ctx->flush = flush_;
      KVD_CHECK(builder.Add(ops[i]));
    }
    ctx->op_indices.push_back(i);
    if (ops[i].deadline != 0) {
      ctx->deadline = ctx->deadline == 0
                          ? ops[i].deadline
                          : std::min(ctx->deadline, ops[i].deadline);
    }
    auto mark = watermarks_.find(ops[i].key);
    if (mark != watermarks_.end()) {
      ctx->required = std::max(ctx->required, mark->second);
    }
    if (IsWriteOpcode(ops[i].opcode)) {
      ctx->is_write = true;
      ctx->write_keys.push_back(ops[i].key);
    }
  }
  if (!ctx->op_indices.empty()) {
    ctx->ops_payload = builder.Finish();
    packets.push_back(std::move(ctx));
  }

  flush_->outstanding = packets.size();
  RequestTracer& rt = group_.request_tracer();
  for (const auto& packet : packets) {
    packet->sequence = next_sequence_++;
    if (rt.enabled()) {
      // Unlike the single-server client, the sequence never changes across
      // retransmissions or redirects, so one registration covers them all.
      packet->traces.reserve(packet->op_indices.size());
      for (size_t i = 0; i < packet->op_indices.size(); i++) {
        packet->traces.push_back(rt.Start(ops[packet->op_indices[i]].opcode,
                                          packet->sequence,
                                          static_cast<uint32_t>(i)));
      }
      rt.RegisterPacket(packet->sequence, packet->traces);
    }
    GroupRequest request;
    request.required_index = packet->required;
    request.ops_payload = packet->ops_payload;
    packet->framed = FramePacket(packet->sequence, EncodeGroupRequest(request));
    if (packet->is_write) {
      packet->target = believed_primary_;
    } else {
      packet->target = next_read_target_ % group_.num_replicas();
      next_read_target_++;
    }
    packet->sent_at = group_.simulator().Now();
    stats_.packets_sent++;
    sender_.Send(packet);
    if (options_.hedge_reads && !packet->is_write &&
        group_.num_replicas() > 1) {
      // Deadline-aware hedge: if the read is still unanswered after the
      // adaptive delay (and not already past its deadline), race a duplicate
      // against the next replica. Same frame sequence, so whichever copy
      // loses is absorbed by response dedup / the replay cache.
      auto hedged = packet;
      group_.simulator().Schedule(HedgeDelay(), [this, hedged] {
        if (hedged->completed) {
          return;
        }
        if (hedged->deadline != 0 &&
            group_.simulator().Now() >= hedged->deadline) {
          return;
        }
        stats_.hedged_sends++;
        WireTo(hedged, (hedged->target + 1) % group_.num_replicas(),
               /*hedge=*/true);
      });
    }
  }
}

bool ReplicatedClient::flush_done() const {
  return flush_ == nullptr || flush_->outstanding == 0;
}

std::vector<KvResultMessage> ReplicatedClient::TakeResults() {
  KVD_CHECK_MSG(flush_ != nullptr && flush_->outstanding == 0,
                "flush not complete");
  std::vector<KvResultMessage> results = std::move(flush_->results);
  flush_.reset();
  return results;
}

std::vector<KvResultMessage> ReplicatedClient::Flush() {
  BeginFlush();
  Simulator& sim = group_.simulator();
  while (!flush_done()) {
    KVD_CHECK(sim.Step());  // the group's heartbeat keeps the queue non-empty
  }
  return TakeResults();
}

void ReplicatedClient::Wire(const ReliableSender::PacketPtr& packet) {
  auto ctx = std::static_pointer_cast<PacketCtx>(packet);
  WireTo(ctx, ctx->target, /*hedge=*/false);
}

void ReplicatedClient::WireTo(const std::shared_ptr<PacketCtx>& ctx,
                              uint32_t target, bool hedge) {
  auto deliver = [this, ctx, target, hedge](std::vector<uint8_t> packet) {
    group_.DeliverClientFrame(
        target, std::move(packet),
        [this, ctx, target, hedge](std::vector<uint8_t> response) {
          auto done = [this, ctx, hedge](std::vector<uint8_t> bytes) {
            OnResponse(ctx, std::move(bytes), hedge);
          };
          if (ctx->traces.empty()) {
            group_.client_network(target).SendPayloadToClient(
                std::move(response), std::move(done));
          } else {
            group_.client_network(target).SendPayloadToClient(
                std::move(response), std::move(done), ctx->traces);
          }
        });
  };
  if (ctx->traces.empty()) {
    group_.client_network(target).SendPayloadToServer(ctx->framed,
                                                      std::move(deliver));
  } else {
    group_.client_network(target).SendPayloadToServer(
        ctx->framed, std::move(deliver), ctx->traces);
  }
}

void ReplicatedClient::OnFail(const ReliableSender::PacketPtr& packet) {
  auto ctx = std::static_pointer_cast<PacketCtx>(packet);
  KvResultMessage failed;
  failed.code = ctx->fail_code;  // kTimedOut, or kDeadlineExceeded past budget
  for (size_t index : ctx->op_indices) {
    ctx->flush->results[index] = failed;
  }
  RequestTracer& rt = group_.request_tracer();
  if (!ctx->traces.empty() && rt.enabled()) {
    for (uint64_t handle : ctx->traces) {
      if (handle != 0) {
        rt.Finish(handle, ctx->fail_code);
      }
    }
  }
  ctx->flush->outstanding--;
}

SimTime ReplicatedClient::HedgeDelay() const {
  if (options_.hedge_delay != 0) {
    return options_.hedge_delay;
  }
  // Adaptive: hedge past the tail of observed read RTTs — p99 once the
  // distribution has a little mass, half the retransmission timeout before
  // that (hedging at the timeout itself would duplicate the retry timer).
  SimTime delay = options_.timeout / 2;
  if (read_rtt_ns_.count() >= 16) {
    delay = read_rtt_ns_.Percentile(0.99) * kNanosecond;
  }
  return std::max(delay, options_.hedge_min_delay);
}

void ReplicatedClient::OnResponse(const std::shared_ptr<PacketCtx>& ctx,
                                  std::vector<uint8_t> packet,
                                  bool from_hedge) {
  std::optional<std::vector<uint8_t>> payload =
      sender_.AcceptResponse(ctx, packet);
  if (!payload.has_value()) {
    return;  // duplicate, corrupt, or foreign frame — counted by the sender
  }
  Result<GroupResponse> decoded = DecodeGroupResponse(*payload);
  if (!decoded.ok()) {
    sender_.NoteCorruptResponse();
    return;
  }
  const GroupResponse& response = decoded.value();
  if ((response.flags & (kGroupRedirect | kGroupStaleRead)) != 0) {
    if ((response.flags & kGroupRedirect) != 0) {
      stats_.redirects_followed++;
    } else {
      stats_.stale_retries++;
    }
    // Chase the responder's view of the primary: it always satisfies the
    // watermark, and writes only land there anyway. Back off a beat so the
    // group converges instead of being hammered mid-failover.
    believed_primary_ = response.primary_id;
    sender_.Retarget(ctx, response.primary_id);
    const bool redirect = (response.flags & kGroupRedirect) != 0;
    const SimTime bounced_at = group_.simulator().Now();
    group_.simulator().Schedule(
        options_.redirect_backoff, [this, ctx, redirect, bounced_at] {
          if (ctx->completed) {
            return;
          }
          RequestTracer& rt = group_.request_tracer();
          for (uint64_t handle : ctx->traces) {
            rt.Span(handle, SpanKind::kBusyRetry, bounced_at,
                    group_.simulator().Now(), redirect ? 1 : 2);
          }
          sender_.Resend(ctx);
        });
    return;
  }

  Result<std::vector<KvResultMessage>> results =
      DecodeResults(response.results_payload);
  if (!results.ok()) {
    sender_.NoteCorruptResponse();
    return;  // retransmission timer recovers
  }
  std::vector<KvResultMessage>& slots = results.value();
  if (slots.size() == 1 && slots[0].code == ResultCode::kInvalidArgument &&
      ctx->op_indices.size() != 1) {
    // The server rejected the whole packet with a single error result.
    for (size_t index : ctx->op_indices) {
      ctx->flush->results[index] = slots[0];
    }
  } else if (slots.size() == ctx->op_indices.size()) {
    for (size_t i = 0; i < slots.size(); i++) {
      ctx->flush->results[ctx->op_indices[i]] = std::move(slots[i]);
    }
  } else {
    sender_.NoteCorruptResponse();
    return;
  }
  ctx->completed = true;
  if (!ctx->is_write) {
    read_rtt_ns_.Add(static_cast<uint64_t>(
        (group_.simulator().Now() - ctx->sent_at) / kNanosecond));
  }
  if (from_hedge) {
    stats_.hedge_wins++;
  }
  RequestTracer& rt = group_.request_tracer();
  for (size_t i = 0; i < ctx->traces.size(); i++) {
    rt.Finish(ctx->traces[i],
              ctx->flush->results[ctx->op_indices[i]].code);
  }
  believed_primary_ = response.primary_id;
  for (const auto& key : ctx->write_keys) {
    uint64_t& mark = watermarks_[key];
    mark = std::max(mark, response.assigned_index);
  }
  ctx->flush->outstanding--;
}

}  // namespace kvd
