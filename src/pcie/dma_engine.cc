#include "src/pcie/dma_engine.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/assert.h"
#include "src/common/hashing.h"

namespace kvd {

DmaEngine::DmaEngine(Simulator& sim, const DmaEngineConfig& config)
    : sim_(sim), config_(config), read_tags_("dma/read_tags", config.read_tags) {
  KVD_CHECK(config.num_links >= 1);
  for (uint32_t i = 0; i < config.num_links; i++) {
    links_.push_back(std::make_unique<PcieLink>(sim, config.link,
                                                "pcie" + std::to_string(i),
                                                /*rng_seed=*/0x5eed + i));
  }
}

PcieLink& DmaEngine::PickLink(uint64_t address) {
  // Interleave by 64 B line so both links carry equal load regardless of the
  // KVS layout (hash index low addresses, slab heap high addresses).
  const uint64_t line = address / kCacheLineBytes;
  return *links_[Mix64(line) % links_.size()];
}

void DmaEngine::Read(uint64_t address, uint32_t bytes, std::function<void()> done,
                     bool random_access, uint64_t trace) {
  KVD_CHECK(bytes > 0);
  reads_issued_++;
  const uint32_t max_payload = config_.link.max_payload_bytes;
  const uint32_t num_tlps = (bytes + max_payload - 1) / max_payload;

  // Fan out TLPs; `done` fires when the last completion arrives.
  auto remaining = std::make_shared<uint32_t>(num_tlps);
  auto on_tlp_done = [this, remaining, done = std::move(done)]() mutable {
    read_tags_.Release(1);
    if (--*remaining == 0) {
      done();
    }
  };

  uint32_t offset = 0;
  for (uint32_t i = 0; i < num_tlps; i++) {
    const uint32_t chunk = std::min(max_payload, bytes - offset);
    const uint64_t chunk_address = address + offset;
    offset += chunk;
    // Each in-flight read TLP needs a unique tag to match its completion.
    read_tags_.Acquire(
        1, [this, chunk, chunk_address, random_access, trace, on_tlp_done] {
          SubmitReadTlp(chunk_address, chunk, random_access, 1, trace,
                        on_tlp_done);
        });
  }
}

void DmaEngine::SubmitReadTlp(uint64_t address, uint32_t bytes, bool random_access,
                              uint32_t attempt, uint64_t trace,
                              std::function<void()> on_done) {
  const SimTime start = sim_.Now();
  PickLink(address).SubmitRead(
      bytes, random_access,
      [this, address, bytes, random_access, attempt, trace, start,
       on_done = std::move(on_done)]() mutable {
        if (trace != 0 && request_tracer_ != nullptr) {
          request_tracer_->Span(trace, SpanKind::kDmaTlp, start, sim_.Now(),
                                bytes);
        }
        if (fault_ != nullptr &&
            fault_->ShouldInject(FaultSite::kPcieReadCompletion)) {
          // Transient completion error: replay the TLP. The tag stays held
          // for the whole transaction, exactly as the hardware would keep it
          // allocated until a good completion arrives.
          KVD_CHECK_MSG(attempt < config_.max_tlp_attempts,
                        "PCIe read TLP failed after retry budget");
          read_retries_++;
          SubmitReadTlp(address, bytes, random_access, attempt + 1, trace,
                        std::move(on_done));
          return;
        }
        on_done();
      });
}

void DmaEngine::SubmitWriteTlp(uint64_t address, uint32_t bytes, uint32_t attempt,
                               uint64_t trace, std::function<void()> on_done) {
  const SimTime start = sim_.Now();
  PickLink(address).SubmitWrite(
      bytes, [this, address, bytes, attempt, trace, start,
              on_done = std::move(on_done)]() mutable {
        if (trace != 0 && request_tracer_ != nullptr) {
          request_tracer_->Span(trace, SpanKind::kDmaTlp, start, sim_.Now(),
                                bytes);
        }
        if (fault_ != nullptr &&
            fault_->ShouldInject(FaultSite::kPcieWriteCompletion)) {
          KVD_CHECK_MSG(attempt < config_.max_tlp_attempts,
                        "PCIe write TLP failed after retry budget");
          write_retries_++;
          SubmitWriteTlp(address, bytes, attempt + 1, trace,
                         std::move(on_done));
          return;
        }
        on_done();
      });
}

void DmaEngine::Write(uint64_t address, uint32_t bytes, std::function<void()> done,
                      uint64_t trace) {
  KVD_CHECK(bytes > 0);
  writes_issued_++;
  const uint32_t max_payload = config_.link.max_payload_bytes;
  const uint32_t num_tlps = (bytes + max_payload - 1) / max_payload;

  auto remaining = std::make_shared<uint32_t>(num_tlps);
  auto on_tlp_done = [remaining, done = std::move(done)]() mutable {
    if (--*remaining == 0) {
      done();
    }
  };

  uint32_t offset = 0;
  for (uint32_t i = 0; i < num_tlps; i++) {
    const uint32_t chunk = std::min(max_payload, bytes - offset);
    const uint64_t chunk_address = address + offset;
    offset += chunk;
    SubmitWriteTlp(chunk_address, chunk, 1, trace, on_tlp_done);
  }
}

void DmaEngine::RegisterMetrics(MetricRegistry& registry) const {
  registry.RegisterCounter("kvd_dma_reads_total", "DMA read requests", {},
                           &reads_issued_);
  registry.RegisterCounter("kvd_dma_writes_total", "DMA write requests", {},
                           &writes_issued_);
  registry.RegisterCounter("kvd_dma_retries_total",
                           "TLPs replayed after transient completion errors",
                           {{"kind", "read"}}, &read_retries_);
  registry.RegisterCounter("kvd_dma_retries_total",
                           "TLPs replayed after transient completion errors",
                           {{"kind", "write"}}, &write_retries_);
  registry.RegisterGauge("kvd_dma_read_tags_in_use", "DMA read tags currently held",
                         {}, [this] {
                           return static_cast<double>(read_tags_.capacity() -
                                                      read_tags_.available());
                         });
  registry.RegisterGauge("kvd_dma_read_tags_peak", "Peak DMA read tags held", {},
                         [this] { return static_cast<double>(read_tags_.peak_in_use()); });
  for (const auto& link : links_) {
    link->RegisterMetrics(registry);
  }
}

void DmaEngine::SetTracer(EventTracer* tracer) {
  for (auto& link : links_) {
    link->SetTracer(tracer);
  }
}

LatencyHistogram DmaEngine::AggregateReadLatency() const {
  LatencyHistogram out;
  for (const auto& link : links_) {
    out.Merge(link->read_latency());
  }
  return out;
}

}  // namespace kvd
