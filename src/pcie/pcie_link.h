// Discrete-event model of one PCIe Gen3 x8 endpoint (paper §2.4).
//
// The parameters default to the measurements the paper reports for its
// Stratix V programmable NIC:
//   - 7.87 GB/s theoretical bandwidth per direction per endpoint
//   - 26 B TLP header + padding per transaction (64-bit addressing)
//   - 84 non-posted header credits (DMA reads), 88 posted (DMA writes)
//   - cached DMA read latency ~800 ns; random reads add ~250 ns on average
//     (host DRAM access, refresh, response reordering) — Figure 3b
//
// A read holds a non-posted credit until the host accepts the request and a
// DMA tag (owned by the DmaEngine above this link) until the completion
// returns. Writes are posted: they complete at the requester as soon as the
// TLP is on the wire, and the credit returns after the host consumes it.
#ifndef SRC_PCIE_PCIE_LINK_H_
#define SRC_PCIE_PCIE_LINK_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/obs/event_tracer.h"
#include "src/obs/metric_registry.h"
#include "src/sim/simulator.h"
#include "src/sim/token_pool.h"

namespace kvd {

struct PcieLinkConfig {
  double bandwidth_bytes_per_sec = 7.87e9;  // per direction
  uint32_t tlp_header_bytes = 26;
  uint32_t max_payload_bytes = 256;           // max TLP payload per transaction
  uint32_t nonposted_header_credits = 84;     // read requests in flight
  uint32_t posted_header_credits = 88;        // write requests in flight
  SimTime cached_read_latency = 800 * kNanosecond;
  SimTime random_read_extra_mean = 250 * kNanosecond;  // exponential tail
  SimTime host_consume_latency = 200 * kNanosecond;    // credit return delay
};

class PcieLink {
 public:
  PcieLink(Simulator& sim, const PcieLinkConfig& config, std::string name,
           uint64_t rng_seed = 1);

  // Issues one read TLP of `payload_bytes` (<= max_payload_bytes).
  // `random_access` selects the uncached latency distribution.
  // `done` fires when the completion has fully arrived back at the NIC.
  void SubmitRead(uint32_t payload_bytes, bool random_access, std::function<void()> done);

  // Issues one posted write TLP. `done` fires when the TLP is on the wire.
  void SubmitWrite(uint32_t payload_bytes, std::function<void()> done);

  const PcieLinkConfig& config() const { return config_; }

  // Observability: wire counters and the read-latency histogram, labelled
  // with this link's name. DMA TLP trace events when a tracer is attached.
  void RegisterMetrics(MetricRegistry& registry) const;
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }

  // Wire-level statistics.
  uint64_t read_tlps() const { return read_tlps_; }
  uint64_t write_tlps() const { return write_tlps_; }
  uint64_t upstream_bytes() const { return upstream_bytes_; }     // NIC -> host
  uint64_t downstream_bytes() const { return downstream_bytes_; }  // host -> NIC
  const LatencyHistogram& read_latency() const { return read_latency_; }

 private:
  SimTime SerializeUpstream(uint32_t bytes);    // returns completion time
  SimTime SerializeDownstream(uint32_t bytes);  // returns completion time
  SimTime SampleReadLatency(bool random_access);

  Simulator& sim_;
  PcieLinkConfig config_;
  std::string name_;
  Rng rng_;
  EventTracer* tracer_ = nullptr;
  double picos_per_byte_;

  // Each direction is a serial wire: TLPs occupy it back to back.
  SimTime upstream_free_at_ = 0;
  SimTime downstream_free_at_ = 0;

  TokenPool nonposted_credits_;
  TokenPool posted_credits_;

  uint64_t read_tlps_ = 0;
  uint64_t write_tlps_ = 0;
  uint64_t upstream_bytes_ = 0;
  uint64_t downstream_bytes_ = 0;
  LatencyHistogram read_latency_;
};

}  // namespace kvd

#endif  // SRC_PCIE_PCIE_LINK_H_
